#!/usr/bin/env python3
"""Benchmark regression gate: fresh BENCH_*.json vs a committed baseline.

Compares a freshly produced wck-bench-record against the committed
baseline (perf/BENCH_seed.json) for the same bench name and the same
parameters:

  deterministic outputs (strict, default +/-5%):
      bytes.compressed, bytes.payload, compression_rate_percent,
      error.mean_rel / error.max_rel / error.rmse (when present)
  bytes.original: must match exactly (same params => same input size)
  stage times (loose, default 10x): each stages_seconds entry must not
      exceed baseline * multiplier. CI machines vary wildly, so this only
      catches order-of-magnitude blowups (an accidentally quadratic
      stage), not honest noise.

Records match by their "bench" field; a fresh record whose bench name is
missing from the baseline set is an error (the gate must never silently
compare nothing), as is a params mismatch (different shape => different
numbers, not a regression signal).

Exceptions — baseline-less records that are self-baselining:
  * a record carrying serial_bytes and sharded_bytes in its params
    (bench/micro_deflate): the gate checks that the sharded
    parallel-deflate container is no more than --sharded-tol (default
    2%) larger than the serial stream compressed from the same input.
  * a record carrying simd_best_level in its params
    (bench/micro_kernels): on vector-capable hardware (best level is
    not "scalar") at least --simd-min-kernels of the speedup_<kernel>
    params must reach --simd-speedup (default: 2 kernels at >= 1.5x
    over the scalar reference). On scalar-only hardware the record
    passes vacuously — there is no vector level to gate.

Usage:
  tools/check_bench_regress.py --baseline perf/BENCH_seed.json FRESH.json...
  options: --size-tol=0.05  --time-mult=10.0  --sharded-tol=0.02
           --simd-speedup=1.5  --simd-min-kernels=2

Exits 0 when every fresh record passes; prints one line per violation
otherwise. Used by the `bench-smoke` CI job; no third-party dependencies.
"""

import argparse
import json
import sys

STRICT_KEYS = ("compressed", "payload")
STRICT_ERROR_KEYS = ("mean_rel", "max_rel", "rmse")


def load_records(path):
    """Returns {bench_name: record} for one file (a single record or a list)."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    docs = doc if isinstance(doc, list) else [doc]
    out = {}
    for record in docs:
        if record.get("schema") != "wck-bench-record":
            raise ValueError(f"{path}: not a wck-bench-record")
        out[record["bench"]] = record
    return out


def rel_delta(fresh, base):
    if base == 0:
        return 0.0 if fresh == 0 else float("inf")
    return (fresh - base) / base


class Gate:
    def __init__(self, size_tol, time_mult, sharded_tol,
                 simd_speedup=1.5, simd_min_kernels=2):
        self.size_tol = size_tol
        self.time_mult = time_mult
        self.sharded_tol = sharded_tol
        self.simd_speedup = simd_speedup
        self.simd_min_kernels = simd_min_kernels
        self.violations = []
        self.checks = 0

    def fail(self, msg):
        self.violations.append(msg)

    def check_strict(self, name, what, fresh, base):
        self.checks += 1
        delta = rel_delta(fresh, base)
        if abs(delta) > self.size_tol:
            self.fail(f"{name}: {what} regressed {delta:+.1%} "
                      f"({base} -> {fresh}, tolerance +/-{self.size_tol:.0%})")

    def check_time(self, name, stage, fresh, base):
        self.checks += 1
        # Only blowups gate; being faster is never a regression.
        if base > 0 and fresh > base * self.time_mult:
            self.fail(f"{name}: stage '{stage}' took {fresh:.4f}s vs baseline "
                      f"{base:.4f}s (> {self.time_mult:g}x)")

    def compare(self, name, fresh, base):
        fresh_report = fresh.get("report", {})
        base_report = base.get("report", {})

        fresh_params = fresh_report.get("params", {})
        base_params = base_report.get("params", {})
        if fresh_params != base_params:
            self.fail(f"{name}: params differ from baseline "
                      f"({fresh_params} vs {base_params}); rerun at baseline params")
            return

        fresh_bytes = fresh_report.get("bytes", {})
        base_bytes = base_report.get("bytes", {})
        self.checks += 1
        if fresh_bytes.get("original") != base_bytes.get("original"):
            self.fail(f"{name}: bytes.original changed "
                      f"({base_bytes.get('original')} -> {fresh_bytes.get('original')}) "
                      "with identical params")
        for key in STRICT_KEYS:
            if key in base_bytes and key in fresh_bytes:
                self.check_strict(name, f"bytes.{key}", fresh_bytes[key], base_bytes[key])

        if "compression_rate_percent" in base_report:
            self.check_strict(name, "compression_rate_percent",
                              fresh_report.get("compression_rate_percent", 0.0),
                              base_report["compression_rate_percent"])

        base_error = base_report.get("error")
        fresh_error = fresh_report.get("error")
        if base_error and fresh_error:
            for key in STRICT_ERROR_KEYS:
                if key in base_error:
                    self.check_strict(name, f"error.{key}",
                                      fresh_error.get(key, 0.0), base_error[key])

        base_stages = base_report.get("stages_seconds", {})
        fresh_stages = fresh_report.get("stages_seconds", {})
        for stage, base_time in base_stages.items():
            if stage in fresh_stages:
                self.check_time(name, stage, fresh_stages[stage], base_time)

    def check_sharded_drift(self, name, record):
        """Self-baselining check for records carrying serial/sharded sizes.

        Returns True when the record was handled (both params present),
        so the caller skips the missing-baseline error.
        """
        params = record.get("report", {}).get("params", {})
        if "serial_bytes" not in params or "sharded_bytes" not in params:
            return False
        self.checks += 1
        try:
            serial = int(params["serial_bytes"])
            sharded = int(params["sharded_bytes"])
        except (TypeError, ValueError):
            self.fail(f"{name}: serial_bytes/sharded_bytes are not integers "
                      f"({params.get('serial_bytes')!r}, {params.get('sharded_bytes')!r})")
            return True
        if serial <= 0:
            self.fail(f"{name}: serial_bytes must be positive, got {serial}")
            return True
        drift = sharded / serial - 1.0
        if drift > self.sharded_tol:
            self.fail(f"{name}: sharded container {drift:+.2%} larger than serial "
                      f"({serial} -> {sharded}, tolerance +{self.sharded_tol:.0%})")
        return True

    def check_simd_speedup(self, name, record):
        """Self-baselining check for SIMD kernel throughput records.

        Returns True when the record was handled (simd_best_level
        present), so the caller skips the missing-baseline error.
        """
        params = record.get("report", {}).get("params", {})
        best = params.get("simd_best_level")
        if best is None:
            return False
        self.checks += 1
        if best == "scalar":
            return True  # no vector level on this machine; nothing to gate
        speedups = {}
        for key, value in params.items():
            if not key.startswith("speedup_"):
                continue
            try:
                speedups[key[len("speedup_"):]] = float(value)
            except (TypeError, ValueError):
                self.fail(f"{name}: {key} is not a number ({value!r})")
                return True
        if not speedups:
            self.fail(f"{name}: simd_best_level={best} but no speedup_<kernel> params")
            return True
        fast = sorted(k for k, v in speedups.items() if v >= self.simd_speedup)
        if len(fast) < self.simd_min_kernels:
            self.fail(f"{name}: only {len(fast)} kernel(s) at >= {self.simd_speedup:g}x "
                      f"over scalar ({', '.join(fast) or 'none'}); "
                      f"need {self.simd_min_kernels} with best level {best}")
        return True


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline record (perf/BENCH_seed.json)")
    parser.add_argument("--size-tol", type=float, default=0.05,
                        help="relative tolerance for deterministic outputs (default 0.05)")
    parser.add_argument("--time-mult", type=float, default=10.0,
                        help="stage-time blowup multiplier (default 10)")
    parser.add_argument("--sharded-tol", type=float, default=0.02,
                        help="max sharded-vs-serial compressed-size drift (default 0.02)")
    parser.add_argument("--simd-speedup", type=float, default=1.5,
                        help="required best-level speedup over scalar (default 1.5)")
    parser.add_argument("--simd-min-kernels", type=int, default=2,
                        help="kernels that must reach --simd-speedup (default 2)")
    parser.add_argument("fresh", nargs="+", help="freshly produced BENCH_*.json files")
    args = parser.parse_args(argv[1:])

    try:
        baseline = load_records(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as e:
        print(f"baseline unreadable: {e}", file=sys.stderr)
        return 2

    gate = Gate(args.size_tol, args.time_mult, args.sharded_tol,
                args.simd_speedup, args.simd_min_kernels)
    compared = 0
    for path in args.fresh:
        try:
            fresh = load_records(path)
        except (OSError, ValueError, json.JSONDecodeError, KeyError) as e:
            gate.fail(f"{path}: unreadable ({e})")
            continue
        for bench, record in fresh.items():
            if bench not in baseline:
                if (gate.check_sharded_drift(f"{path}[{bench}]", record)
                        or gate.check_simd_speedup(f"{path}[{bench}]", record)):
                    compared += 1
                else:
                    gate.fail(f"{path}: bench {bench!r} has no baseline record")
                continue
            gate.compare(f"{path}[{bench}]", record, baseline[bench])
            compared += 1

    if compared == 0 and not gate.violations:
        print("no records compared", file=sys.stderr)
        return 2
    for violation in gate.violations:
        print(violation, file=sys.stderr)
    if not gate.violations:
        print(f"regression gate OK: {compared} record(s), {gate.checks} checks "
              f"(size tol +/-{gate.size_tol:.0%}, time mult {gate.time_mult:g}x)")
    return 1 if gate.violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
