// wckpt — command-line front end for the lossy checkpoint compressor.
//
// Subcommands:
//   gen        --shape=AxBxC --out=FILE [--seed=N] [--kind=temperature|smooth|random]
//              Writes a deterministic synthetic field as raw little-endian doubles.
//   compress   --in=FILE --shape=AxBxC --out=FILE [--quantizer=spike|simple]
//              [--n=128] [--d=64] [--levels=1] [--entropy=deflate|gzip-file|none]
//              Compresses a raw double file with the paper's pipeline.
//   decompress --in=FILE --out=FILE
//              Restores raw doubles from a compressed stream.
//   info       --in=FILE
//              Prints shape/parameters/sizes of a compressed stream.
//   verify     --in=FILE --original=FILE [--max-mean-rel=PCT]
//              Decompresses and reports Eq. 5/6 metrics vs the original.
//              Exits 1 when --max-mean-rel is given and exceeded.
//   roundtrip  --in=FILE --shape=AxBxC [compress flags] [--out=FILE]
//              Compress + restore + error metrics in one process — the
//              full paper pipeline in a single telemetry report.
//
// Telemetry flags (every subcommand):
//   --json             emit the RunReport as JSON on stdout instead of text
//   --telemetry=FILE   also write the RunReport JSON to FILE
//   --trace=FILE       write a chrome://tracing span dump to FILE
//
// Both the text and --json paths render the same RunReport aggregate,
// so they can never disagree about the numbers.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "stats/error_metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck::tool {
namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: wckpt <gen|compress|decompress|info|verify|roundtrip> [--key=value ...]\n"
               "  gen        --shape=AxBxC --out=FILE [--seed=N] [--kind=temperature]\n"
               "  compress   --in=FILE --shape=AxBxC --out=FILE [--quantizer=spike|simple]\n"
               "             [--n=128] [--d=64] [--levels=1] [--entropy=deflate|gzip-file|none]\n"
               "  decompress --in=FILE --out=FILE\n"
               "  info       --in=FILE\n"
               "  verify     --in=FILE --original=FILE [--max-mean-rel=PCT]\n"
               "  roundtrip  --in=FILE --shape=AxBxC [compress flags] [--out=FILE]\n"
               "common:      [--json] [--telemetry=FILE] [--trace=FILE]\n");
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) usage(("unexpected argument: " + arg).c_str());
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "1";  // bare boolean flag, e.g. --json
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string require(const std::map<std::string, std::string>& flags, const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) usage(("missing required flag --" + key).c_str());
  return it->second;
}

std::string get_or(const std::map<std::string, std::string>& flags, const std::string& key,
                   const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

Shape parse_shape(const std::string& text) {
  std::vector<std::size_t> extents;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto x = text.find('x', pos);
    const std::string part = text.substr(pos, x == std::string::npos ? x : x - pos);
    const long v = std::strtol(part.c_str(), nullptr, 10);
    if (v <= 0) usage(("bad shape component: " + part).c_str());
    extents.push_back(static_cast<std::size_t>(v));
    if (x == std::string::npos) break;
    pos = x + 1;
  }
  if (extents.empty() || extents.size() > kMaxRank) usage("shape must have rank 1..4");
  Shape s = Shape::of_rank(extents.size());
  for (std::size_t a = 0; a < extents.size(); ++a) s[a] = extents[a];
  return s;
}

Bytes read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw IoError("cannot open " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(data.data()), size);
  if (!f) throw IoError("read failed: " + path);
  return data;
}

void write_file(const std::string& path, std::span<const std::byte> data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw IoError("cannot open " + path + " for writing");
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) throw IoError("write failed: " + path);
}

NdArray<double> read_raw_array(const std::string& path, const Shape& shape) {
  const Bytes data = read_file(path);
  if (data.size() != shape.size() * sizeof(double)) {
    throw InvalidArgumentError(path + " holds " + std::to_string(data.size()) +
                               " bytes but shape " + shape.to_string() + " needs " +
                               std::to_string(shape.size() * sizeof(double)));
  }
  std::vector<double> values(shape.size());
  std::memcpy(values.data(), data.data(), data.size());
  return NdArray<double>(shape, std::move(values));
}

CompressionParams params_from_flags(const std::map<std::string, std::string>& flags) {
  CompressionParams p;
  const std::string q = get_or(flags, "quantizer", "spike");
  if (q == "spike" || q == "proposed") {
    p.quantizer.kind = QuantizerKind::kSpike;
  } else if (q == "simple") {
    p.quantizer.kind = QuantizerKind::kSimple;
  } else {
    usage(("unknown quantizer: " + q).c_str());
  }
  p.quantizer.divisions = static_cast<int>(std::strtol(get_or(flags, "n", "128").c_str(), nullptr, 10));
  p.quantizer.spike_partitions =
      static_cast<int>(std::strtol(get_or(flags, "d", "64").c_str(), nullptr, 10));
  p.wavelet_levels =
      static_cast<int>(std::strtol(get_or(flags, "levels", "1").c_str(), nullptr, 10));
  const std::string e = get_or(flags, "entropy", "deflate");
  if (e == "deflate") {
    p.entropy = EntropyMode::kDeflate;
  } else if (e == "gzip-file") {
    p.entropy = EntropyMode::kTempFileGzip;
  } else if (e == "none") {
    p.entropy = EntropyMode::kNone;
  } else {
    usage(("unknown entropy mode: " + e).c_str());
  }
  return p;
}

void report_params_from_flags(const std::map<std::string, std::string>& flags,
                              telemetry::RunReport& report) {
  for (const char* key : {"shape", "quantizer", "n", "d", "levels", "entropy", "in", "out",
                          "original", "kind", "seed"}) {
    const auto it = flags.find(key);
    if (it != flags.end()) report.params[key] = it->second;
  }
}

void fill_error_summary(const ErrorStats& err, telemetry::RunReport& report) {
  report.has_error_metrics = true;
  report.error.mean_rel = err.mean_rel;
  report.error.max_rel = err.max_rel;
  report.error.max_abs = err.max_abs;
  report.error.rmse = err.rmse;
  report.error.count = err.count;
}

/// Single exit path for every subcommand: snapshots global telemetry
/// into the report, renders it (text or --json), and writes the
/// optional --telemetry / --trace files.
void finish_run(const std::map<std::string, std::string>& flags, telemetry::RunReport& report) {
  report.capture_global();
  if (flags.count("json") != 0) {
    std::printf("%s\n", report.to_json_text().c_str());
  } else {
    std::fputs(report.to_text().c_str(), stdout);
  }
  const auto telemetry_path = flags.find("telemetry");
  if (telemetry_path != flags.end()) {
    telemetry::write_text_file(telemetry_path->second, report.to_json_text() + "\n");
  }
  const auto trace_path = flags.find("trace");
  if (trace_path != flags.end()) {
    telemetry::write_text_file(trace_path->second,
                               telemetry::Tracer::global().chrome_trace_json() + "\n");
  }
}

int cmd_gen(const std::map<std::string, std::string>& flags) {
  const Shape shape = parse_shape(require(flags, "shape"));
  const auto seed =
      static_cast<std::uint64_t>(std::strtoll(get_or(flags, "seed", "2015").c_str(), nullptr, 10));
  const std::string kind = get_or(flags, "kind", "temperature");
  NdArray<double> field;
  if (kind == "temperature") {
    field = make_temperature_field(shape, seed);
  } else if (kind == "smooth") {
    field = make_smooth_field(shape, seed);
  } else if (kind == "random") {
    field = make_random_field(shape, seed);
  } else {
    usage(("unknown field kind: " + kind).c_str());
  }
  write_file(require(flags, "out"), std::as_bytes(field.values()));

  telemetry::RunReport report;
  report.tool = "wckpt gen";
  report_params_from_flags(flags, report);
  report.original_bytes = field.size_bytes();
  report.compressed_bytes = field.size_bytes();
  finish_run(flags, report);
  return 0;
}

int cmd_compress(const std::map<std::string, std::string>& flags) {
  const Shape shape = parse_shape(require(flags, "shape"));
  const NdArray<double> field = read_raw_array(require(flags, "in"), shape);
  const WaveletCompressor compressor(params_from_flags(flags));
  const CompressedArray comp = compressor.compress(field);
  write_file(require(flags, "out"), comp.data);

  telemetry::RunReport report;
  report.tool = "wckpt compress";
  report_params_from_flags(flags, report);
  report.original_bytes = comp.original_bytes;
  report.compressed_bytes = comp.data.size();
  report.payload_bytes = comp.payload_bytes;
  finish_run(flags, report);
  return 0;
}

int cmd_decompress(const std::map<std::string, std::string>& flags) {
  const Bytes data = read_file(require(flags, "in"));
  const NdArray<double> field = WaveletCompressor::decompress(data);
  write_file(require(flags, "out"), std::as_bytes(field.values()));

  telemetry::RunReport report;
  report.tool = "wckpt decompress";
  report_params_from_flags(flags, report);
  report.params["shape"] = field.shape().to_string();
  report.original_bytes = field.size_bytes();
  report.compressed_bytes = data.size();
  finish_run(flags, report);
  return 0;
}

int cmd_info(const std::map<std::string, std::string>& flags) {
  const std::string path = require(flags, "in");
  const Bytes data = read_file(path);
  const NdArray<double> field = WaveletCompressor::decompress(data);

  telemetry::RunReport report;
  report.tool = "wckpt info";
  report_params_from_flags(flags, report);
  report.params["shape"] = field.shape().to_string();
  report.original_bytes = field.size_bytes();
  report.compressed_bytes = data.size();
  finish_run(flags, report);
  return 0;
}

int cmd_verify(const std::map<std::string, std::string>& flags) {
  const Bytes data = read_file(require(flags, "in"));
  const NdArray<double> restored = WaveletCompressor::decompress(data);
  const NdArray<double> original =
      read_raw_array(require(flags, "original"), restored.shape());
  const ErrorStats err = relative_error(original.values(), restored.values());

  telemetry::RunReport report;
  report.tool = "wckpt verify";
  report_params_from_flags(flags, report);
  report.params["shape"] = restored.shape().to_string();
  report.original_bytes = original.size_bytes();
  report.compressed_bytes = data.size();
  fill_error_summary(err, report);
  finish_run(flags, report);

  // Exit code matches the report: with a bound given, exceeding it is a
  // failure (previously the text always reported success via exit 0).
  const auto bound = flags.find("max-mean-rel");
  if (bound != flags.end()) {
    const double limit_pct = std::strtod(bound->second.c_str(), nullptr);
    if (err.mean_rel_percent() > limit_pct) {
      std::fprintf(stderr, "wckpt: mean relative error %.6f %% exceeds bound %.6f %%\n",
                   err.mean_rel_percent(), limit_pct);
      return 1;
    }
  }
  return 0;
}

int cmd_roundtrip(const std::map<std::string, std::string>& flags) {
  const Shape shape = parse_shape(require(flags, "shape"));
  const NdArray<double> field = read_raw_array(require(flags, "in"), shape);
  const WaveletCompressor compressor(params_from_flags(flags));

  const CompressedArray comp = compressor.compress(field);
  const NdArray<double> restored = WaveletCompressor::decompress(comp.data);
  const ErrorStats err = relative_error(field.values(), restored.values());

  const auto out = flags.find("out");
  if (out != flags.end()) write_file(out->second, comp.data);

  telemetry::RunReport report;
  report.tool = "wckpt roundtrip";
  report_params_from_flags(flags, report);
  report.original_bytes = comp.original_bytes;
  report.compressed_bytes = comp.data.size();
  report.payload_bytes = comp.payload_bytes;
  fill_error_summary(err, report);
  finish_run(flags, report);
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv);
  if (cmd == "gen") return cmd_gen(flags);
  if (cmd == "compress") return cmd_compress(flags);
  if (cmd == "decompress") return cmd_decompress(flags);
  if (cmd == "info") return cmd_info(flags);
  if (cmd == "verify") return cmd_verify(flags);
  if (cmd == "roundtrip") return cmd_roundtrip(flags);
  usage(("unknown command: " + cmd).c_str());
}

}  // namespace
}  // namespace wck::tool

int main(int argc, char** argv) {
  try {
    return wck::tool::run(argc, argv);
  } catch (const wck::Error& e) {
    std::fprintf(stderr, "wckpt: %s\n", e.what());
    return 1;
  }
}
