// wckpt — command-line front end for the lossy checkpoint compressor.
//
// Subcommands:
//   gen        --shape=AxBxC --out=FILE [--seed=N] [--kind=temperature|smooth|random]
//              Writes a deterministic synthetic field as raw little-endian doubles.
//   compress   --in=FILE --shape=AxBxC --out=FILE [--quantizer=spike|simple]
//              [--n=128] [--d=64] [--levels=1] [--entropy=deflate|gzip-file|none]
//              [--threads=N] [--block-size=BYTES]
//              Compresses a raw double file with the paper's pipeline.
//              --threads >= 1 (or WCK_THREADS set) selects the sharded
//              parallel deflate container; see src/deflate/parallel.hpp.
//   decompress --in=FILE --out=FILE
//              Restores raw doubles from a compressed stream.
//   info       --in=FILE
//              Prints shape/parameters/sizes of a compressed stream.
//   verify     --in=FILE --original=FILE [--max-mean-rel=PCT]
//              Decompresses and reports Eq. 5/6 metrics vs the original.
//              Exits 1 when --max-mean-rel is given and exceeded.
//   roundtrip  --in=FILE --shape=AxBxC [compress flags] [--out=FILE]
//              Compress + restore + error metrics in one process — the
//              full paper pipeline in a single telemetry report.
//   analyze    --in=COMPRESSED --original=FILE [--d=64] [--name=VAR] [--out=FILE]
//              Per-band quality analysis of a compressed stream against
//              its original: both are wavelet-transformed with the
//              stream's own parameters, every high-frequency band gets
//              error stats + PSNR + quantized fraction, and the spike
//              partition occupancy is re-derived. --json emits the
//              standalone "wck-quality-report" document.
//   soak       --dir=DIR [--cycles=1000] [--shape=32x32] [--keep=3]
//              [--codec=null|gzip|wavelet|fpc] [--fault-plan=SPEC]
//              [--seed=N] [--verify-every=1] [--scrub-every=0]
//              Runs N checkpoint/restart cycles through the resilient
//              CheckpointManager under a fault plan (--fault-plan or
//              WCK_FAULT_PLAN), verifying every restore bit-identical
//              against the committed state for the generation that
//              actually restored. Exits 1 on any silent wrong restore.
//
// Telemetry flags (every subcommand):
//   --json             emit the RunReport as JSON on stdout instead of text
//                      (for analyze: the quality report document)
//   --telemetry=FILE   also write the RunReport JSON to FILE
//   --trace=FILE       write a chrome://tracing span dump to FILE
//   --events=FILE      dump the flight-recorder event log as JSONL to FILE
//   --expose=DIR[,MS]  periodically write metrics.prom + events.jsonl to
//                      DIR every MS milliseconds (default 1000) while
//                      the command runs
//
// Both the text and --json paths render the same RunReport aggregate,
// so they can never disagree about the numbers.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/manager.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "io/fault_injection.hpp"
#include "quality/quality.hpp"
#include "simd/dispatch.hpp"
#include "stats/error_metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck::tool {
namespace {

constexpr const char kUsageText[] =
    "usage: wckpt <command> [--key=value ...]\n"
    "  gen        --shape=AxBxC --out=FILE [--seed=N] [--kind=temperature]\n"
    "  compress   --in=FILE --shape=AxBxC --out=FILE [--quantizer=spike|simple]\n"
    "             [--n=128] [--d=64] [--levels=1] [--entropy=deflate|gzip-file|none]\n"
    "             [--threads=N] [--block-size=BYTES]\n"
    "  decompress --in=FILE --out=FILE\n"
    "  info       --in=FILE\n"
    "  verify     --in=FILE --original=FILE [--max-mean-rel=PCT]\n"
    "  roundtrip  --in=FILE --shape=AxBxC [compress flags] [--out=FILE]\n"
    "  analyze    --in=COMPRESSED --original=FILE [--d=64] [--name=VAR] [--out=FILE]\n"
    "  soak       --dir=DIR [--cycles=1000] [--shape=32x32] [--keep=3]\n"
    "             [--codec=null|gzip|wavelet|fpc] [--fault-plan=SPEC]\n"
    "             [--seed=N] [--verify-every=1] [--scrub-every=0] [--threads=N]\n"
    "             [--server --clients=N --tenants=N --quota=BYTES\n"
    "              --max-inflight=N --admission=block|reject --slow-ms=MS\n"
    "              --kill-every=CYCLES --client-retries=N --client-timeout-ms=MS]\n"
    "             --kill-every > 0 runs the server as a child process and\n"
    "             SIGKILLs + restarts it every CYCLES completed client\n"
    "             cycles, checking startup recovery and the quota ledger\n"
    "             (stat vs a local manifest scan) after each restart.\n"
    "  serve      --socket=PATH --root=DIR [--keep=3] [--quota=BYTES]\n"
    "             [--max-inflight=8] [--admission=block|reject]\n"
    "             [--codec=null|gzip|wavelet|fpc] [--fault-plan=SPEC]\n"
    "             [--read-timeout-ms=30000] [--idle-timeout-ms=120000]\n"
    "             [--write-timeout-ms=30000] [--drain-timeout-ms=5000]\n"
    "             [--slow-ms=1000]\n"
    "             SIGTERM/SIGINT drain gracefully: in-flight requests\n"
    "             finish, telemetry flushes, then the process exits 0.\n"
    "             With --expose=DIR the drain writes a final metrics +\n"
    "             slow-request snapshot into DIR before exiting.\n"
    "  put        --socket=PATH --tenant=NAME --step=N\n"
    "             (--in=FILE --shape=AxBxC | --shape=AxBxC [--seed=N])\n"
    "  get        --socket=PATH --tenant=NAME [--out=FILE]\n"
    "  stat       --socket=PATH [--tenant=NAME]\n"
    "             Reports per-tenant health: quarantined generations,\n"
    "             scrub age, last error kind, quota utilization.\n"
    "  top        --socket=PATH [--interval-ms=1000] [--iterations=0]\n"
    "             [--expose-dir=DIR] [--plain]\n"
    "             Refreshing per-tenant table: generations, quota use,\n"
    "             health, and — with --expose-dir pointed at the\n"
    "             server's --expose directory — puts/s and p95 put\n"
    "             latency from the metrics snapshot. --iterations=0\n"
    "             polls until SIGINT/SIGTERM.\n"
    "  shutdown   --socket=PATH\n"
    "common:      [--json] [--telemetry=FILE] [--trace=FILE] [--events=FILE]\n"
    "             [--expose=DIR[,MS]] [--slow-ms=1000]\n"
    "             [--client-retries=N] [--client-timeout-ms=MS]\n";

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fputs(kUsageText, stderr);
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) usage(("unexpected argument: " + arg).c_str());
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "1";  // bare boolean flag, e.g. --json
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string require(const std::map<std::string, std::string>& flags, const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) usage(("missing required flag --" + key).c_str());
  return it->second;
}

std::string get_or(const std::map<std::string, std::string>& flags, const std::string& key,
                   const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

Shape parse_shape(const std::string& text) {
  std::vector<std::size_t> extents;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto x = text.find('x', pos);
    const std::string part = text.substr(pos, x == std::string::npos ? x : x - pos);
    const long v = std::strtol(part.c_str(), nullptr, 10);
    if (v <= 0) usage(("bad shape component: " + part).c_str());
    extents.push_back(static_cast<std::size_t>(v));
    if (x == std::string::npos) break;
    pos = x + 1;
  }
  if (extents.empty() || extents.size() > kMaxRank) usage("shape must have rank 1..4");
  Shape s = Shape::of_rank(extents.size());
  for (std::size_t a = 0; a < extents.size(); ++a) s[a] = extents[a];
  return s;
}

Bytes read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw IoError("cannot open " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(data.data()), size);
  if (!f) throw IoError("read failed: " + path);
  return data;
}

void write_file(const std::string& path, std::span<const std::byte> data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw IoError("cannot open " + path + " for writing");
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) throw IoError("write failed: " + path);
}

NdArray<double> read_raw_array(const std::string& path, const Shape& shape) {
  const Bytes data = read_file(path);
  if (data.size() != shape.size() * sizeof(double)) {
    throw InvalidArgumentError(path + " holds " + std::to_string(data.size()) +
                               " bytes but shape " + shape.to_string() + " needs " +
                               std::to_string(shape.size() * sizeof(double)));
  }
  std::vector<double> values(shape.size());
  std::memcpy(values.data(), data.data(), data.size());
  return NdArray<double>(shape, std::move(values));
}

CompressionParams params_from_flags(const std::map<std::string, std::string>& flags) {
  CompressionParams p;
  const std::string q = get_or(flags, "quantizer", "spike");
  if (q == "spike" || q == "proposed") {
    p.quantizer.kind = QuantizerKind::kSpike;
  } else if (q == "simple") {
    p.quantizer.kind = QuantizerKind::kSimple;
  } else {
    usage(("unknown quantizer: " + q).c_str());
  }
  p.quantizer.divisions = static_cast<int>(std::strtol(get_or(flags, "n", "128").c_str(), nullptr, 10));
  p.quantizer.spike_partitions =
      static_cast<int>(std::strtol(get_or(flags, "d", "64").c_str(), nullptr, 10));
  p.wavelet_levels =
      static_cast<int>(std::strtol(get_or(flags, "levels", "1").c_str(), nullptr, 10));
  const std::string e = get_or(flags, "entropy", "deflate");
  if (e == "deflate") {
    p.entropy = EntropyMode::kDeflate;
  } else if (e == "gzip-file") {
    p.entropy = EntropyMode::kTempFileGzip;
  } else if (e == "none") {
    p.entropy = EntropyMode::kNone;
  } else {
    usage(("unknown entropy mode: " + e).c_str());
  }
  // --threads=N selects the sharded parallel deflate container (N=1 is
  // sharded but inline); the default 0 defers to WCK_THREADS, and -1
  // forces the legacy serial container. --block-size tunes the shard
  // granularity (bytes of payload per independently compressed block).
  p.threads = static_cast<int>(std::strtol(get_or(flags, "threads", "0").c_str(), nullptr, 10));
  const long block_size = std::strtol(get_or(flags, "block-size", "0").c_str(), nullptr, 10);
  if (block_size < 0) usage("--block-size must be >= 1");
  if (block_size > 0) p.deflate_block_size = static_cast<std::size_t>(block_size);
  return p;
}

void report_params_from_flags(const std::map<std::string, std::string>& flags,
                              telemetry::RunReport& report) {
  for (const char* key : {"shape", "quantizer", "n", "d", "levels", "entropy", "threads",
                          "block-size", "in", "out", "original", "kind", "seed", "dir", "keep",
                          "verify-every", "scrub-every", "socket", "root", "tenant", "step",
                          "quota", "max-inflight", "admission", "clients", "tenants", "cycles"}) {
    const auto it = flags.find(key);
    if (it != flags.end()) report.params[key] = it->second;
  }
  // Every report records which kernel dispatch level processed the data
  // (bit-identical across levels, but essential context for timing).
  report.params["simd_level"] = simd::to_string(simd::active_level());
}

/// The checkpoint-codec chooser shared by soak and serve: any registry
/// codec works behind the manager, the store service, and the soak
/// verifier, because all three only see encode()/decode().
std::unique_ptr<Codec> make_codec(const std::string& name,
                                  const std::map<std::string, std::string>& flags) {
  if (name == "null") return std::make_unique<NullCodec>();
  if (name == "gzip") return std::make_unique<GzipCodec>();
  if (name == "wavelet") {
    CompressionParams p;
    p.quantizer.divisions = 128;
    p.threads =
        static_cast<int>(std::strtol(get_or(flags, "threads", "0").c_str(), nullptr, 10));
    return std::make_unique<WaveletLossyCodec>(p);
  }
  if (name == "fpc") return std::make_unique<FpcCodec>();
  usage(("unknown codec: " + name).c_str());
}

void fill_error_summary(const ErrorStats& err, telemetry::RunReport& report) {
  report.has_error_metrics = true;
  report.error.mean_rel = err.mean_rel;
  report.error.max_rel = err.max_rel;
  report.error.max_abs = err.max_abs;
  report.error.rmse = err.rmse;
  report.error.psnr = err.psnr;
  report.error.count = err.count;
}

/// Single exit path for every subcommand: snapshots global telemetry
/// into the report, renders it (text or --json), and writes the
/// optional --telemetry / --trace files.
void finish_run(const std::map<std::string, std::string>& flags, telemetry::RunReport& report) {
  report.capture_global();
  if (flags.count("json") != 0) {
    std::printf("%s\n", report.to_json_text().c_str());
  } else {
    std::fputs(report.to_text().c_str(), stdout);
  }
  const auto telemetry_path = flags.find("telemetry");
  if (telemetry_path != flags.end()) {
    telemetry::write_text_file(telemetry_path->second, report.to_json_text() + "\n");
  }
  const auto trace_path = flags.find("trace");
  if (trace_path != flags.end()) {
    telemetry::write_text_file(trace_path->second,
                               telemetry::Tracer::global().chrome_trace_json() + "\n");
  }
  const auto events_path = flags.find("events");
  if (events_path != flags.end()) {
    telemetry::EventLog::global().dump_to_file(events_path->second);
  }
}

/// The store subcommands (put/get/stat/shutdown) print their own
/// one-line result instead of a RunReport, but still honor the
/// file-writing observability flags — --trace in particular, so a
/// single `wckpt put --trace=F` leaves a client span that
/// tools/merge_traces.py can correlate with the server's stream.
void write_observability_files(const std::map<std::string, std::string>& flags) {
  const auto trace_path = flags.find("trace");
  if (trace_path != flags.end()) {
    telemetry::write_text_file(trace_path->second,
                               telemetry::Tracer::global().chrome_trace_json() + "\n");
  }
  const auto events_path = flags.find("events");
  if (events_path != flags.end()) {
    telemetry::EventLog::global().dump_to_file(events_path->second);
  }
}

int cmd_gen(const std::map<std::string, std::string>& flags) {
  const Shape shape = parse_shape(require(flags, "shape"));
  const auto seed =
      static_cast<std::uint64_t>(std::strtoll(get_or(flags, "seed", "2015").c_str(), nullptr, 10));
  const std::string kind = get_or(flags, "kind", "temperature");
  NdArray<double> field;
  if (kind == "temperature") {
    field = make_temperature_field(shape, seed);
  } else if (kind == "smooth") {
    field = make_smooth_field(shape, seed);
  } else if (kind == "random") {
    field = make_random_field(shape, seed);
  } else {
    usage(("unknown field kind: " + kind).c_str());
  }
  write_file(require(flags, "out"), std::as_bytes(field.values()));

  telemetry::RunReport report;
  report.tool = "wckpt gen";
  report_params_from_flags(flags, report);
  report.original_bytes = field.size_bytes();
  report.compressed_bytes = field.size_bytes();
  finish_run(flags, report);
  return 0;
}

int cmd_compress(const std::map<std::string, std::string>& flags) {
  const Shape shape = parse_shape(require(flags, "shape"));
  const NdArray<double> field = read_raw_array(require(flags, "in"), shape);
  const WaveletCompressor compressor(params_from_flags(flags));
  const CompressedArray comp = compressor.compress(field);
  write_file(require(flags, "out"), comp.data);

  telemetry::RunReport report;
  report.tool = "wckpt compress";
  report_params_from_flags(flags, report);
  report.original_bytes = comp.original_bytes;
  report.compressed_bytes = comp.data.size();
  report.payload_bytes = comp.payload_bytes;
  finish_run(flags, report);
  return 0;
}

int cmd_decompress(const std::map<std::string, std::string>& flags) {
  const Bytes data = read_file(require(flags, "in"));
  const NdArray<double> field = WaveletCompressor::decompress(data);
  write_file(require(flags, "out"), std::as_bytes(field.values()));

  telemetry::RunReport report;
  report.tool = "wckpt decompress";
  report_params_from_flags(flags, report);
  report.params["shape"] = field.shape().to_string();
  report.original_bytes = field.size_bytes();
  report.compressed_bytes = data.size();
  finish_run(flags, report);
  return 0;
}

int cmd_info(const std::map<std::string, std::string>& flags) {
  const std::string path = require(flags, "in");
  const Bytes data = read_file(path);
  const NdArray<double> field = WaveletCompressor::decompress(data);

  telemetry::RunReport report;
  report.tool = "wckpt info";
  report_params_from_flags(flags, report);
  report.params["shape"] = field.shape().to_string();
  report.original_bytes = field.size_bytes();
  report.compressed_bytes = data.size();
  finish_run(flags, report);
  return 0;
}

int cmd_verify(const std::map<std::string, std::string>& flags) {
  const Bytes data = read_file(require(flags, "in"));
  const NdArray<double> restored = WaveletCompressor::decompress(data);
  const NdArray<double> original =
      read_raw_array(require(flags, "original"), restored.shape());
  const ErrorStats err = relative_error(original.values(), restored.values());

  telemetry::RunReport report;
  report.tool = "wckpt verify";
  report_params_from_flags(flags, report);
  report.params["shape"] = restored.shape().to_string();
  report.original_bytes = original.size_bytes();
  report.compressed_bytes = data.size();
  fill_error_summary(err, report);
  finish_run(flags, report);

  // Exit code matches the report: with a bound given, exceeding it is a
  // failure (previously the text always reported success via exit 0).
  const auto bound = flags.find("max-mean-rel");
  if (bound != flags.end()) {
    const double limit_pct = std::strtod(bound->second.c_str(), nullptr);
    if (err.mean_rel_percent() > limit_pct) {
      std::fprintf(stderr, "wckpt: mean relative error %.6f %% exceeds bound %.6f %%\n",
                   err.mean_rel_percent(), limit_pct);
      return 1;
    }
  }
  return 0;
}

int cmd_roundtrip(const std::map<std::string, std::string>& flags) {
  const Shape shape = parse_shape(require(flags, "shape"));
  const NdArray<double> field = read_raw_array(require(flags, "in"), shape);
  WaveletCompressor compressor(params_from_flags(flags));

  // Per-band quality capture rides along on the compress pass.
  quality::QualityProbe probe("array");
  if (telemetry::enabled()) compressor.attach_observer(&probe);

  const CompressedArray comp = compressor.compress(field);
  const NdArray<double> restored = WaveletCompressor::decompress(comp.data);
  const ErrorStats err = relative_error(field.values(), restored.values());

  const auto out = flags.find("out");
  if (out != flags.end()) write_file(out->second, comp.data);

  telemetry::RunReport report;
  report.tool = "wckpt roundtrip";
  report_params_from_flags(flags, report);
  report.original_bytes = comp.original_bytes;
  report.compressed_bytes = comp.data.size();
  report.payload_bytes = comp.payload_bytes;
  fill_error_summary(err, report);
  if (!probe.variables().empty()) {
    quality::QualityReport qr = probe.take_report();
    qr.variables[0].compressed_bytes = comp.data.size();
    qr.variables[0].bits_per_value =
        8.0 * static_cast<double>(comp.data.size()) / static_cast<double>(field.size());
    qr.variables[0].has_value_error = true;
    qr.variables[0].value_error = err;
    report.quality = qr.to_json();
  }
  finish_run(flags, report);
  return 0;
}

/// Standalone quality analysis: the compressed stream is self-
/// describing, so the transform/quantizer parameters come from the
/// stream itself; only the spike-partition count `d` (not serialized —
/// decompression never needs it) falls back to the --d flag.
int cmd_analyze(const std::map<std::string, std::string>& flags) {
  const Bytes data = read_file(require(flags, "in"));
  const StreamInfo info = WaveletCompressor::inspect(data);
  const NdArray<double> restored = WaveletCompressor::decompress(data);
  const NdArray<double> original =
      read_raw_array(require(flags, "original"), info.shape);

  CompressionParams p;
  p.wavelet_levels = info.levels;
  p.wavelet = info.wavelet;
  p.quantizer.kind = info.quantizer;
  // Effective n is the serialized averages-table size; classification
  // (quantized vs exact) depends only on the spike detection, so a
  // degenerate table does not skew the quantized fractions.
  p.quantizer.divisions =
      static_cast<int>(std::min<std::size_t>(std::max<std::size_t>(info.averages_count, 1), 256));
  p.quantizer.spike_partitions =
      static_cast<int>(std::strtol(get_or(flags, "d", "64").c_str(), nullptr, 10));

  quality::QualityReport qr;
  qr.variables.push_back(quality::analyze_pair(original, restored, p,
                                               get_or(flags, "name", "array"), data.size()));

  telemetry::RunReport report;
  report.tool = "wckpt analyze";
  report_params_from_flags(flags, report);
  report.params["shape"] = info.shape.to_string();
  report.original_bytes = original.size_bytes();
  report.compressed_bytes = data.size();
  report.payload_bytes = info.payload_bytes;
  fill_error_summary(qr.variables[0].value_error, report);
  report.quality = qr.to_json();
  report.capture_global();

  // The primary artifact is the quality document itself; the RunReport
  // (with the same document embedded) still goes to --telemetry.
  if (flags.count("json") != 0) {
    std::printf("%s\n", qr.to_json_text().c_str());
  } else {
    std::fputs(qr.to_text().c_str(), stdout);
  }
  const auto out = flags.find("out");
  if (out != flags.end()) {
    telemetry::write_text_file(out->second, qr.to_json_text() + "\n");
  }
  const auto telemetry_path = flags.find("telemetry");
  if (telemetry_path != flags.end()) {
    telemetry::write_text_file(telemetry_path->second, report.to_json_text() + "\n");
  }
  const auto trace_path = flags.find("trace");
  if (trace_path != flags.end()) {
    telemetry::write_text_file(trace_path->second,
                               telemetry::Tracer::global().chrome_trace_json() + "\n");
  }
  const auto events_path = flags.find("events");
  if (events_path != flags.end()) {
    telemetry::EventLog::global().dump_to_file(events_path->second);
  }
  return 0;
}

/// The soak harness: N deterministic checkpoint/restart cycles through
/// the resilient CheckpointManager under an injected fault plan. The
/// invariant it enforces is the resilience contract itself — a restore
/// either reproduces, bit for bit, the committed state of the
/// generation it reports restoring (possibly an older generation or the
/// parity tier: documented degradation), or it fails loudly. A restore
/// that "succeeds" with different bytes is silent data loss and fails
/// the run.
int cmd_soak_server(const std::map<std::string, std::string>& flags);

int cmd_soak(const std::map<std::string, std::string>& flags) {
  if (flags.count("server") != 0) return cmd_soak_server(flags);
  const std::filesystem::path dir = require(flags, "dir");
  const auto cycles =
      static_cast<std::uint64_t>(std::strtoll(get_or(flags, "cycles", "1000").c_str(), nullptr, 10));
  const Shape shape = parse_shape(get_or(flags, "shape", "32x32"));
  const auto keep = static_cast<std::size_t>(
      std::strtoll(get_or(flags, "keep", "3").c_str(), nullptr, 10));
  const auto seed =
      static_cast<std::uint64_t>(std::strtoll(get_or(flags, "seed", "2015").c_str(), nullptr, 10));
  const auto verify_every = static_cast<std::uint64_t>(
      std::strtoll(get_or(flags, "verify-every", "1").c_str(), nullptr, 10));
  const auto scrub_every = static_cast<std::uint64_t>(
      std::strtoll(get_or(flags, "scrub-every", "0").c_str(), nullptr, 10));

  const std::string codec_name = get_or(flags, "codec", "null");
  const std::unique_ptr<Codec> codec = make_codec(codec_name, flags);

  const std::string plan_spec = get_or(flags, "fault-plan", "");
  const FaultPlan plan =
      plan_spec.empty() ? FaultPlan::from_env() : FaultPlan::parse(plan_spec);
  FaultInjectingBackend fault_io(plan, posix_backend());
  IoBackend& io = plan.empty() ? static_cast<IoBackend&>(posix_backend()) : fault_io;

  std::filesystem::create_directories(dir);

  CheckpointManager::Options options;
  options.keep_generations = keep;
  options.retry.sleep_between_attempts = false;  // keep 1000-cycle soaks fast
  CheckpointManager manager(dir, *codec, options, &io);

  // Peer-memory parity tier: the manager mirrors every committed payload
  // into rank 0 of a two-rank group, so when every on-disk generation is
  // corrupted the restore chain ends at the in-memory copy instead of
  // data loss.
  InMemoryCheckpointStore parity_store(2, 2);
  manager.attach_parity_store(&parity_store, 0);

  NdArray<double> state = make_smooth_field(shape, seed);
  CheckpointRegistry registry;
  registry.add("state", &state);

  // Bit-exact committed images, keyed by step, for every generation the
  // restore chain could legitimately land on.
  std::map<std::uint64_t, std::vector<double>> committed;

  std::uint64_t commits = 0;
  std::uint64_t write_failures = 0;
  std::uint64_t restores = 0;
  std::uint64_t fallback_restores = 0;
  std::uint64_t parity_restores = 0;
  std::uint64_t restore_failures = 0;
  std::uint64_t silent_mismatches = 0;
  std::uint64_t unverifiable = 0;
  quality::DriftTracker drift;

  for (std::uint64_t cycle = 1; cycle <= cycles; ++cycle) {
    // Deterministic state evolution: the soak is replayable from seed.
    Xoshiro256 evolve(seed ^ (cycle * 0x9E3779B97F4A7C15ull));
    for (double& v : state.values()) v += evolve.uniform(-0.01, 0.01);

    try {
      (void)manager.write(registry, cycle);
      ++commits;
      // What a restore of this generation must reproduce: the codec's
      // round-trip of the state (identity for lossless codecs).
      NdArray<double> expected = codec->decode(codec->encode(state));
      // Cross-cycle drift of the codec's own error (zero for lossless
      // codecs): does repeated evolution push the data somewhere the
      // lossy pipeline handles worse?
      if (telemetry::enabled()) {
        drift.record(cycle, relative_error(state.values(), expected.values()));
      }
      WCK_EVENT(kSoakCycle, cycle, "committed");
      committed[cycle] = std::vector<double>(expected.values().begin(),
                                             expected.values().end());
      // Keep images for every generation still on disk (plus slack for
      // quarantined-then-refilled windows).
      while (committed.size() > keep + 2) committed.erase(committed.begin());
    } catch (const IoError&) {
      ++write_failures;  // loud: retries exhausted, counted as a giveup
    }

    if (verify_every > 0 && cycle % verify_every == 0 && commits > 0) {
      NdArray<double> scratch;
      CheckpointRegistry verify_reg;
      verify_reg.add("state", &scratch);
      try {
        const RestoreOutcome outcome = manager.restore(verify_reg);
        ++restores;
        if (outcome.source == RestoreSource::kOlderGeneration) ++fallback_restores;
        if (outcome.source == RestoreSource::kParity) ++parity_restores;
        const auto it = committed.find(outcome.step);
        if (it == committed.end()) {
          ++unverifiable;  // restored a generation older than our window
        } else if (scratch.size() != it->second.size() ||
                   std::memcmp(scratch.values().data(), it->second.data(),
                               it->second.size() * sizeof(double)) != 0) {
          ++silent_mismatches;
          WCK_EVENT(kSoakVerifyFailed, cycle,
                    "restore reported step " + std::to_string(outcome.step) + " (" +
                        restore_source_name(outcome.source) + ") with wrong bytes");
          std::fprintf(stderr,
                       "soak: cycle %llu SILENT MISMATCH — restore reported step %llu "
                       "(%s) but bytes differ from committed state\n",
                       static_cast<unsigned long long>(cycle),
                       static_cast<unsigned long long>(outcome.step),
                       restore_source_name(outcome.source));
        }
      } catch (const Error&) {
        ++restore_failures;  // loud: the chain reported unrestorable
      }
    }

    if (scrub_every > 0 && cycle % scrub_every == 0) {
      try {
        (void)manager.scrub();
      } catch (const Error&) {
        // Scrub I/O trouble is non-fatal; the next restore still guards.
      }
    }
  }

  WCK_COUNTER_ADD("soak.cycles", cycles);
  WCK_COUNTER_ADD("soak.commits", commits);
  WCK_COUNTER_ADD("soak.write_failures", write_failures);
  WCK_COUNTER_ADD("soak.restores", restores);
  WCK_COUNTER_ADD("soak.fallback_restores", fallback_restores);
  WCK_COUNTER_ADD("soak.parity_restores", parity_restores);
  WCK_COUNTER_ADD("soak.restore_failures", restore_failures);
  WCK_COUNTER_ADD("soak.unverifiable_restores", unverifiable);
  WCK_COUNTER_ADD("soak.silent_mismatches", silent_mismatches);
  WCK_COUNTER_ADD("soak.faults_injected", fault_io.fault_count());

  telemetry::RunReport report;
  report.tool = "wckpt soak";
  report_params_from_flags(flags, report);
  report.params["codec"] = codec_name;
  report.params["fault_plan"] =
      plan_spec.empty() ? env::get("WCK_FAULT_PLAN").value_or("") : plan_spec;
  report.params["cycles"] = std::to_string(cycles);
  if (drift.cycles() > 0) {
    quality::QualityReport qr;
    qr.drift = drift.to_json();
    report.quality = qr.to_json();
  }
  finish_run(flags, report);

  // A failed soak dumps its flight recorder next to the checkpoint
  // directory: the post-mortem needs the event sequence (faults, retries,
  // fallbacks) leading up to the failure, not just the aggregates.
  const bool failed = silent_mismatches > 0 || commits == 0;
  if (failed && telemetry::enabled()) {
    const std::filesystem::path recorder = dir / "flight-recorder.jsonl";
    try {
      telemetry::EventLog::global().dump_to_file(recorder.string());
      std::fprintf(stderr, "soak: flight recorder dumped to %s\n",
                   recorder.string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "soak: flight recorder dump failed: %s\n", e.what());
    }
  }

  std::fprintf(stderr,
               "soak: %llu cycles, %llu commits (%llu write giveups), %llu restores "
               "(%llu fallback, %llu parity, %llu failed, %llu unverifiable), "
               "%llu faults injected, %llu silent mismatches\n",
               static_cast<unsigned long long>(cycles),
               static_cast<unsigned long long>(commits),
               static_cast<unsigned long long>(write_failures),
               static_cast<unsigned long long>(restores),
               static_cast<unsigned long long>(fallback_restores),
               static_cast<unsigned long long>(parity_restores),
               static_cast<unsigned long long>(restore_failures),
               static_cast<unsigned long long>(unverifiable),
               static_cast<unsigned long long>(fault_io.fault_count()),
               static_cast<unsigned long long>(silent_mismatches));

  if (silent_mismatches > 0) return 1;
  if (commits == 0) {
    std::fprintf(stderr, "soak: no cycle ever committed — nothing was demonstrated\n");
    return 1;
  }
  return 0;
}

/// Shared by `serve` and `soak --server`: store-service knobs from flags.
server::CheckpointService::Options service_options_from_flags(
    const std::map<std::string, std::string>& flags, const std::filesystem::path& root) {
  server::CheckpointService::Options opts;
  opts.root = root;
  opts.keep_generations = static_cast<std::size_t>(
      std::strtoll(get_or(flags, "keep", "3").c_str(), nullptr, 10));
  opts.tenant_quota_bytes = static_cast<std::uint64_t>(
      std::strtoll(get_or(flags, "quota", "0").c_str(), nullptr, 10));
  opts.max_inflight = static_cast<std::size_t>(
      std::strtoll(get_or(flags, "max-inflight", "8").c_str(), nullptr, 10));
  const std::string admission = get_or(flags, "admission", "block");
  if (admission == "block") {
    opts.admission = server::AdmissionPolicy::kBlock;
  } else if (admission == "reject") {
    opts.admission = server::AdmissionPolicy::kRejectNewest;
  } else {
    usage(("unknown admission policy: " + admission).c_str());
  }
  opts.retry.sleep_between_attempts = false;  // local store: retry immediately
  return opts;
}

/// Shared by `serve` and `soak --server`: connection deadlines.
server::StoreServer::Options server_options_from_flags(
    const std::map<std::string, std::string>& flags) {
  server::StoreServer::Options opts;
  opts.read_timeout_ms = static_cast<int>(
      std::strtol(get_or(flags, "read-timeout-ms", "30000").c_str(), nullptr, 10));
  opts.idle_timeout_ms = static_cast<int>(
      std::strtol(get_or(flags, "idle-timeout-ms", "120000").c_str(), nullptr, 10));
  opts.write_timeout_ms = static_cast<int>(
      std::strtol(get_or(flags, "write-timeout-ms", "30000").c_str(), nullptr, 10));
  opts.drain_timeout_ms = static_cast<int>(
      std::strtol(get_or(flags, "drain-timeout-ms", "5000").c_str(), nullptr, 10));
  opts.slow_request_ms = static_cast<int>(
      std::strtol(get_or(flags, "slow-ms", "1000").c_str(), nullptr, 10));
  return opts;
}

/// Client deadlines + retry for the soak's workers and the store
/// subcommands. Retry is opt-in (--client-retries > 0 extra attempts).
StoreClientOptions client_options_from_flags(const std::map<std::string, std::string>& flags,
                                             std::uint64_t seed) {
  StoreClientOptions opts;
  opts.timeout_ms = static_cast<int>(
      std::strtol(get_or(flags, "client-timeout-ms", "30000").c_str(), nullptr, 10));
  const int retries = static_cast<int>(
      std::strtol(get_or(flags, "client-retries", "0").c_str(), nullptr, 10));
  opts.retry.max_attempts = 1 + std::max(retries, 0);
  opts.retry.initial_backoff_seconds = 0.01;
  opts.retry.max_backoff_seconds = 0.5;
  opts.retry.jitter_fraction = 0.2;  // decorrelate clients that lost the same server
  opts.seed = seed;
  opts.slow_request_ms = static_cast<int>(
      std::strtol(get_or(flags, "slow-ms", "1000").c_str(), nullptr, 10));
  return opts;
}

/// Set by the SIGTERM/SIGINT handler; the serve loop polls it. A
/// volatile sig_atomic_t store is all a signal handler may safely do.
volatile std::sig_atomic_t g_stop_signal = 0;

extern "C" void handle_stop_signal(int sig) { g_stop_signal = sig; }

/// `wckpt serve` — run the multi-tenant checkpoint store on a Unix
/// socket until a client sends Shutdown (wckpt's other store
/// subcommands, or any StoreClient, can do so).
int cmd_serve(const std::map<std::string, std::string>& flags) {
  const std::string socket_path = require(flags, "socket");
  const std::filesystem::path root = require(flags, "root");
  const std::string codec_name = get_or(flags, "codec", "null");
  const std::unique_ptr<Codec> codec = make_codec(codec_name, flags);

  const std::string plan_spec = get_or(flags, "fault-plan", "");
  const FaultPlan plan =
      plan_spec.empty() ? FaultPlan::from_env() : FaultPlan::parse(plan_spec);
  FaultInjectingBackend fault_io(plan, posix_backend());
  IoBackend* io = plan.empty() ? nullptr : &fault_io;

  server::CheckpointService service(*codec, service_options_from_flags(flags, root), io);
  const server::RecoveryReport& rec = service.recovery();
  if (rec.tenants > 0) {
    std::fprintf(stderr,
                 "wckpt serve: recovered %zu tenants (%zu generations, %zu tmp files "
                 "swept, %zu quarantined)\n",
                 rec.tenants, rec.generations, rec.tmp_swept, rec.quarantined);
  }
  server::StoreServer::Options server_opts = server_options_from_flags(flags);
  // When the operator exposes live snapshots (--expose=DIR[,MS]), the
  // graceful drain writes one final snapshot into the same directory so
  // the last word on disk describes the shut-down state, not the state
  // one interval ago.
  const auto expose_flag = flags.find("expose");
  if (expose_flag != flags.end()) {
    std::string dir = expose_flag->second;
    const auto comma = dir.find(',');
    if (comma != std::string::npos) dir.resize(comma);
    if (!dir.empty()) server_opts.drain_snapshot_dir = dir;
  }
  server::StoreServer server(service, socket_path, server_opts);
  std::fprintf(stderr,
               "wckpt serve: listening on %s (root %s, codec %s, keep %zu, quota %llu)\n",
               socket_path.c_str(), root.string().c_str(), codec_name.c_str(),
               service.options().keep_generations,
               static_cast<unsigned long long>(service.options().tenant_quota_bytes));

  // Park until a client asks for shutdown or the operator signals.
  // Either way the exit path is the same graceful drain: stop() lets
  // in-flight requests finish before forcing anything, and telemetry
  // flushes below before the process exits.
  g_stop_signal = 0;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  while (!server.wait_for_shutdown_for(100)) {
    if (g_stop_signal != 0) {
      std::fprintf(stderr, "wckpt serve: signal %d — draining\n",
                   static_cast<int>(g_stop_signal));
      break;
    }
  }
  server.stop();
  std::fprintf(stderr, "wckpt serve: shut down after %llu connections\n",
               static_cast<unsigned long long>(server.connections_accepted()));

  telemetry::RunReport report;
  report.tool = "wckpt serve";
  report_params_from_flags(flags, report);
  finish_run(flags, report);
  return 0;
}

int cmd_put(const std::map<std::string, std::string>& flags) {
  const Shape shape = parse_shape(require(flags, "shape"));
  const auto step = static_cast<std::uint64_t>(
      std::strtoll(get_or(flags, "step", "1").c_str(), nullptr, 10));
  const auto seed =
      static_cast<std::uint64_t>(std::strtoll(get_or(flags, "seed", "2015").c_str(), nullptr, 10));
  const NdArray<double> array = flags.count("in") != 0
                                    ? read_raw_array(require(flags, "in"), shape)
                                    : make_smooth_field(shape, seed);

  StoreClient client =
      StoreClient::connect(require(flags, "socket"), client_options_from_flags(flags, 0));
  const net::PutOkResponse resp = client.put(require(flags, "tenant"), step, array);
  std::printf("put: step=%llu stored_bytes=%llu tenant_bytes=%llu generations=%u\n",
              static_cast<unsigned long long>(resp.step),
              static_cast<unsigned long long>(resp.stored_bytes),
              static_cast<unsigned long long>(resp.total_bytes), resp.generations);
  write_observability_files(flags);
  return 0;
}

int cmd_get(const std::map<std::string, std::string>& flags) {
  StoreClient client =
      StoreClient::connect(require(flags, "socket"), client_options_from_flags(flags, 0));
  const StoreClient::GetResult got = client.get(require(flags, "tenant"));
  std::printf("get: step=%llu source=%s shape=%s\n",
              static_cast<unsigned long long>(got.step), restore_source_name(got.source),
              got.array.shape().to_string().c_str());
  const auto out = flags.find("out");
  if (out != flags.end()) write_file(out->second, std::as_bytes(got.array.values()));
  write_observability_files(flags);
  return 0;
}

int cmd_shutdown(const std::map<std::string, std::string>& flags) {
  StoreClient client =
      StoreClient::connect(require(flags, "socket"), client_options_from_flags(flags, 0));
  client.shutdown_server();
  std::printf("shutdown: acknowledged\n");
  write_observability_files(flags);
  return 0;
}

/// Renders one TenantStat's health suffix: quarantined generations,
/// scrub age ("never" until a scrub has run), last error kind ("-" when
/// the tenant has never failed), quota utilization ("-" when unlimited).
std::string render_tenant_health(const net::TenantStat& s) {
  std::string out = " quarantined=" + std::to_string(s.quarantined);
  out += " scrub_age=";
  if (s.scrub_age_ms == net::TenantStat::kNeverScrubbed) {
    out += "never";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fs", static_cast<double>(s.scrub_age_ms) / 1e3);
    out += buf;
  }
  out += " last_error=";
  out += s.last_error.empty() ? "-" : s.last_error.c_str();
  out += " quota_used=";
  if (s.quota_bytes == 0) {
    out += "-";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%",
                  100.0 * static_cast<double>(s.stored_bytes) /
                      static_cast<double>(s.quota_bytes));
    out += buf;
  }
  return out;
}

int cmd_stat(const std::map<std::string, std::string>& flags) {
  StoreClient client =
      StoreClient::connect(require(flags, "socket"), client_options_from_flags(flags, 0));
  const net::StatOkResponse resp = client.stat(get_or(flags, "tenant", ""));
  std::printf("stat: %llu tenants\n", static_cast<unsigned long long>(resp.tenants));
  for (const net::TenantStat& s : resp.stats) {
    std::printf("  %-20s generations=%llu bytes=%llu quota=%llu newest_step=%llu%s\n",
                s.name.c_str(), static_cast<unsigned long long>(s.generations),
                static_cast<unsigned long long>(s.stored_bytes),
                static_cast<unsigned long long>(s.quota_bytes),
                static_cast<unsigned long long>(s.newest_step),
                render_tenant_health(s).c_str());
  }
  write_observability_files(flags);
  return 0;
}

/// Reads a Prometheus-style exposition file into name → value. Only
/// the plain "name value" lines matter; comments and HELP/TYPE lines
/// are skipped. Missing/unreadable file → empty map (the server may
/// not have written its first snapshot yet).
std::map<std::string, double> read_prom_metrics(const std::filesystem::path& file) {
  std::map<std::string, double> out;
  std::ifstream f(file);
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos || sp + 1 >= line.size()) continue;
    out[line.substr(0, sp)] = std::strtod(line.c_str() + sp + 1, nullptr);
  }
  return out;
}

/// Mirrors telemetry::prometheus_name so `top` can look up the
/// server's per-tenant counters: "wck_" prefix, every byte outside
/// [a-zA-Z0-9_] becomes '_'.
std::string prometheus_metric_name(std::string name) {
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return "wck_" + name;
}

/// `wckpt top` — live per-tenant view of a running store. Each poll
/// asks the server for stat() (generations, bytes, health) and, with
/// --expose-dir pointed at the server's --expose directory, reads the
/// metrics.prom snapshot to derive rates (puts/s from counter deltas
/// between polls) and the server-side p95 put latency.
int cmd_top(const std::map<std::string, std::string>& flags) {
  const std::string socket_path = require(flags, "socket");
  const long interval_ms =
      std::strtol(get_or(flags, "interval-ms", "1000").c_str(), nullptr, 10);
  if (interval_ms <= 0) usage("--interval-ms must be >= 1");
  const long iterations = std::strtol(get_or(flags, "iterations", "0").c_str(), nullptr, 10);
  const bool plain = flags.count("plain") != 0;
  const std::string expose_dir = get_or(flags, "expose-dir", "");

  g_stop_signal = 0;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  std::map<std::string, double> prev_puts;  ///< tenant → puts counter at the last poll
  auto prev_time = std::chrono::steady_clock::now();
  for (long iter = 0; iterations == 0 || iter < iterations; ++iter) {
    if (iter > 0) {
      // Sleep in small slices so a signal interrupts the wait, not
      // just the next poll.
      for (long slept = 0; slept < interval_ms && g_stop_signal == 0; slept += 50) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min<long>(50, interval_ms - slept)));
      }
    }
    if (g_stop_signal != 0) break;

    net::StatOkResponse stat;
    try {
      StoreClient client =
          StoreClient::connect(socket_path, client_options_from_flags(flags, 0));
      stat = client.stat();
    } catch (const Error& e) {
      std::fprintf(stderr, "wckpt top: stat failed: %s\n", e.what());
      return 1;
    }
    std::map<std::string, double> prom;
    if (!expose_dir.empty()) {
      prom = read_prom_metrics(std::filesystem::path(expose_dir) / "metrics.prom");
    }
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - prev_time).count();

    if (!plain) std::fputs("\x1b[H\x1b[2J", stdout);  // cursor home + clear
    std::printf("wckpt top — %s  tenants=%llu", socket_path.c_str(),
                static_cast<unsigned long long>(stat.tenants));
    const auto p95 = prom.find("wck_server_rpc_put_seconds_p95");
    if (p95 != prom.end()) std::printf("  p95_put=%.2fms", p95->second * 1e3);
    std::printf("\n%-20s %6s %12s %8s %8s %6s %10s %s\n", "TENANT", "GENS", "BYTES",
                "QUOTA%", "PUTS/S", "QUAR", "SCRUB_AGE", "LAST_ERR");
    for (const net::TenantStat& s : stat.stats) {
      char quota_buf[16];
      if (s.quota_bytes == 0) {
        std::snprintf(quota_buf, sizeof quota_buf, "-");
      } else {
        std::snprintf(quota_buf, sizeof quota_buf, "%.1f",
                      100.0 * static_cast<double>(s.stored_bytes) /
                          static_cast<double>(s.quota_bytes));
      }
      char rate_buf[16];
      std::snprintf(rate_buf, sizeof rate_buf, "-");
      const auto puts_it =
          prom.find(prometheus_metric_name("server.tenant." + s.name + ".puts"));
      if (puts_it != prom.end()) {
        const auto prev = prev_puts.find(s.name);
        if (prev != prev_puts.end() && dt > 0) {
          std::snprintf(rate_buf, sizeof rate_buf, "%.1f",
                        std::max(0.0, puts_it->second - prev->second) / dt);
        }
        prev_puts[s.name] = puts_it->second;
      }
      char scrub_buf[16];
      if (s.scrub_age_ms == net::TenantStat::kNeverScrubbed) {
        std::snprintf(scrub_buf, sizeof scrub_buf, "never");
      } else {
        std::snprintf(scrub_buf, sizeof scrub_buf, "%.1fs",
                      static_cast<double>(s.scrub_age_ms) / 1e3);
      }
      std::printf("%-20s %6llu %12llu %8s %8s %6llu %10s %s\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.generations),
                  static_cast<unsigned long long>(s.stored_bytes), quota_buf, rate_buf,
                  static_cast<unsigned long long>(s.quarantined), scrub_buf,
                  s.last_error.empty() ? "-" : s.last_error.c_str());
    }
    std::fflush(stdout);
    prev_time = now;
  }
  return 0;
}

/// One tenant's quota ledger recomputed straight from its on-disk
/// MANIFEST — the ground truth a crash-restarted server must agree
/// with. Tenants whose directory exists but holds no readable manifest
/// count as empty (a first write that never committed).
struct TenantLedger {
  std::uint64_t generations = 0;
  std::uint64_t bytes = 0;
  std::uint64_t newest_step = 0;
};

std::map<std::string, TenantLedger> scan_ledgers(const std::filesystem::path& root) {
  std::map<std::string, TenantLedger> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    TenantLedger ledger;
    std::ifstream f(entry.path() / "MANIFEST");
    std::string line;
    if (f && std::getline(f, line) && line == "wck-manifest v1") {
      while (std::getline(f, line)) {
        if (line.empty()) continue;
        std::istringstream ls(line);
        std::uint64_t step = 0;
        std::uint64_t size = 0;
        std::string crc;
        std::string file;
        if (!(ls >> step >> crc >> size >> file)) continue;
        ++ledger.generations;
        ledger.bytes += size;
        ledger.newest_step = std::max(ledger.newest_step, step);
      }
    }
    out[entry.path().filename().string()] = ledger;
  }
  return out;
}

/// Forks + execs this binary as `wckpt serve` on the given socket/root
/// (the process the reaper SIGKILLs). Throws IoError when fork fails.
pid_t spawn_server_process(const std::map<std::string, std::string>& flags,
                           const std::string& socket_path, const std::filesystem::path& root,
                           const std::filesystem::path& dir, std::uint64_t generation) {
  std::vector<std::string> args = {
      "wckpt",
      "serve",
      "--socket=" + socket_path,
      "--root=" + root.string(),
      "--codec=" + get_or(flags, "codec", "null"),
      "--keep=" + get_or(flags, "keep", "3"),
      "--quota=" + get_or(flags, "quota", "0"),
      "--max-inflight=" + get_or(flags, "max-inflight", "8"),
      "--admission=" + get_or(flags, "admission", "block"),
      "--events=" + (dir / ("server-events." + std::to_string(generation) + ".jsonl")).string(),
  };
  const std::string plan = get_or(flags, "fault-plan", "");
  if (!plan.empty()) args.push_back("--fault-plan=" + plan);
  const auto slow_ms = flags.find("slow-ms");
  if (slow_ms != flags.end()) args.push_back("--slow-ms=" + slow_ms->second);
  const pid_t pid = ::fork();
  if (pid < 0) throw IoError(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv("/proc/self/exe", argv.data());
    std::perror("wckpt soak --server: execv /proc/self/exe");
    ::_exit(127);
  }
  return pid;
}

/// Blocks until the spawned server answers a ping (its recovery scan
/// runs before the socket binds, so a pong implies recovery finished).
void wait_for_server_ready(const std::string& socket_path) {
  StoreClientOptions opts;
  opts.timeout_ms = 2000;
  opts.retry.max_attempts = 200;  // ~10 s at the 50 ms cap below
  opts.retry.initial_backoff_seconds = 0.01;
  opts.retry.max_backoff_seconds = 0.05;
  opts.seed = 1;  // determinism over decorrelation: one waiter, no thundering herd
  StoreClient client = StoreClient::connect(socket_path, opts);
  client.ping();
}

/// Pauses the soak's worker threads at cycle boundaries while the
/// reaper kills/restarts the server, so the post-restart ledger check
/// compares a quiescent store. Plain std primitives: tools are outside
/// the src/ lock-annotation regime.
struct KillGate {
  std::mutex mu;
  std::condition_variable cv;
  bool paused = false;
  std::size_t parked = 0;
  std::size_t active = 0;  ///< workers still running (not yet finished)
};

/// `wckpt soak --server` — the store service's proving ground: an
/// in-process StoreServer plus N client threads hammering put/get over
/// real sockets (optionally under a fault plan and a tight quota).
/// With --kill-every=C the server instead runs as a child process that
/// the soak SIGKILLs and restarts every C completed client cycles,
/// proving startup recovery: after each restart the quota ledger the
/// server reports (stat) must equal one recomputed from the on-disk
/// manifests, and every restore must still verify bit-for-bit.
///
/// The oracle is regeneration, not history: tenant t's state at step s
/// is a pure function of (seed, t, s), so any client can verify any
/// restored generation bit-for-bit against the codec's deterministic
/// round-trip of that state — including generations written by *other*
/// clients of a shared tenant. Typed QuotaExceeded/Busy/Io rejections
/// are counted (they are the contract under pressure); a restore that
/// reports success with wrong bytes is a silent mismatch and fails the
/// run.
int cmd_soak_server(const std::map<std::string, std::string>& flags) {
  const std::filesystem::path dir = require(flags, "dir");
  const auto cycles = static_cast<std::uint64_t>(
      std::strtoll(get_or(flags, "cycles", "50").c_str(), nullptr, 10));
  const auto clients = static_cast<std::size_t>(
      std::strtoll(get_or(flags, "clients", "8").c_str(), nullptr, 10));
  const auto tenants = static_cast<std::size_t>(std::strtoll(
      get_or(flags, "tenants", std::to_string(clients)).c_str(), nullptr, 10));
  const Shape shape = parse_shape(get_or(flags, "shape", "16x16"));
  const auto seed =
      static_cast<std::uint64_t>(std::strtoll(get_or(flags, "seed", "2015").c_str(), nullptr, 10));
  if (cycles == 0 || clients == 0 || tenants == 0) {
    usage("soak --server needs --cycles, --clients, --tenants all >= 1");
  }
  const auto kill_every = static_cast<std::uint64_t>(
      std::strtoll(get_or(flags, "kill-every", "0").c_str(), nullptr, 10));
  const bool reaper = kill_every > 0;

  const std::string codec_name = get_or(flags, "codec", "null");
  const std::unique_ptr<Codec> codec = make_codec(codec_name, flags);

  const std::string plan_spec = get_or(flags, "fault-plan", "");
  const FaultPlan plan =
      plan_spec.empty() ? FaultPlan::from_env() : FaultPlan::parse(plan_spec);
  FaultInjectingBackend fault_io(plan, posix_backend());
  IoBackend* io = plan.empty() ? nullptr : &fault_io;

  std::filesystem::create_directories(dir);
  const std::filesystem::path tenants_root = dir / "tenants";
  const std::string socket_path = get_or(flags, "socket", (dir / "wckpt.sock").string());

  // In-process server (default), or a child `wckpt serve` the reaper
  // can SIGKILL (--kill-every). The child inherits the fault plan via
  // its own --fault-plan flag; the in-parent fault_io stays idle then.
  std::unique_ptr<server::CheckpointService> service;
  std::unique_ptr<server::StoreServer> server;
  pid_t child = -1;
  std::uint64_t server_generation = 0;
  if (reaper) {
    child = spawn_server_process(flags, socket_path, tenants_root, dir, server_generation++);
    wait_for_server_ready(socket_path);
  } else {
    service = std::make_unique<server::CheckpointService>(
        *codec, service_options_from_flags(flags, tenants_root), io);
    server = std::make_unique<server::StoreServer>(*service, socket_path,
                                                   server_options_from_flags(flags));
  }

  /// Deterministic per-(tenant, step) state: the verification oracle.
  const auto tenant_state = [&](std::size_t tenant_idx, std::uint64_t step) {
    const std::uint64_t mix = seed ^ ((tenant_idx + 1) * 0xA24BAED4963EE407ull) ^
                              (step * 0x9E3779B97F4A7C15ull);
    return make_smooth_field(shape, mix);
  };

  struct ClientStats {
    std::uint64_t puts_ok = 0;
    std::uint64_t quota_rejected = 0;
    std::uint64_t busy_rejected = 0;
    std::uint64_t io_failures = 0;
    std::uint64_t gets_ok = 0;
    std::uint64_t not_found = 0;
    std::uint64_t fallback_restores = 0;
    std::uint64_t parity_restores = 0;
    std::uint64_t restore_failures = 0;
    std::uint64_t silent_mismatches = 0;
    std::uint64_t aborts = 0;  ///< client thread died (connect/protocol)
  };
  std::vector<ClientStats> stats(clients);

  // Reaper-mode workers retry by default: transport failures during a
  // kill window are the exercise, not a test failure.
  std::map<std::string, std::string> client_flags = flags;
  if (reaper && client_flags.count("client-retries") == 0) {
    client_flags["client-retries"] = "8";
  }

  KillGate gate;
  gate.active = clients;
  std::atomic<std::uint64_t> progress{0};  ///< completed cycles, all workers

  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    workers.emplace_back([&, i] {
      ClientStats& st = stats[i];
      const std::size_t tenant_idx = i % tenants;
      const std::string tenant = "t" + std::to_string(tenant_idx);
      try {
        StoreClient client = StoreClient::connect(
            socket_path,
            client_options_from_flags(client_flags,
                                      seed ^ ((i + 1) * 0x9E3779B97F4A7C15ull)));
        for (std::uint64_t cycle = 1; cycle <= cycles; ++cycle) {
          {
            // Cycle boundary: park while the reaper swaps the server.
            std::unique_lock<std::mutex> lk(gate.mu);
            if (gate.paused) {
              ++gate.parked;
              gate.cv.notify_all();
              gate.cv.wait(lk, [&gate] { return !gate.paused; });
              --gate.parked;
            }
          }
          try {
            (void)client.put(tenant, cycle, tenant_state(tenant_idx, cycle));
            ++st.puts_ok;
          } catch (const QuotaExceededError&) {
            ++st.quota_rejected;
          } catch (const BusyError&) {
            ++st.busy_rejected;
          } catch (const IoError&) {
            ++st.io_failures;
          }
          try {
            const StoreClient::GetResult got = client.get(tenant);
            ++st.gets_ok;
            if (got.source == RestoreSource::kOlderGeneration) ++st.fallback_restores;
            if (got.source == RestoreSource::kParity) ++st.parity_restores;
            const NdArray<double> expected =
                codec->decode(codec->encode(tenant_state(tenant_idx, got.step)));
            if (expected.size() != got.array.size() ||
                std::memcmp(expected.values().data(), got.array.values().data(),
                            expected.size() * sizeof(double)) != 0) {
              ++st.silent_mismatches;
              WCK_EVENT(kSoakVerifyFailed, got.step,
                        tenant + " restored with wrong bytes (" +
                            restore_source_name(got.source) + ")");
              std::fprintf(stderr,
                           "soak --server: SILENT MISMATCH — tenant %s step %llu (%s) "
                           "restored with wrong bytes\n",
                           tenant.c_str(), static_cast<unsigned long long>(got.step),
                           restore_source_name(got.source));
            }
          } catch (const NotFoundError&) {
            ++st.not_found;  // legal: e.g. every put so far quota-rejected
          } catch (const BusyError&) {
            ++st.busy_rejected;
          } catch (const Error&) {
            ++st.restore_failures;  // loud failure, never silent corruption
          }
          progress.fetch_add(1, std::memory_order_relaxed);
        }
        client.close();
      } catch (const std::exception& e) {
        ++st.aborts;
        std::fprintf(stderr, "soak --server: client %zu aborted: %s\n", i, e.what());
      }
      std::lock_guard<std::mutex> lk(gate.mu);
      --gate.active;
      gate.cv.notify_all();
    });
  }

  // The reaper: every kill_every completed cycles, park all workers at
  // their cycle boundary, SIGKILL the server, restart it, and check
  // that the recovered quota ledger (stat) equals one recomputed from
  // the on-disk manifests — byte for byte, step for step.
  std::uint64_t kills = 0;
  std::uint64_t ledger_mismatches = 0;
  if (reaper) {
    std::uint64_t next_kill = kill_every;
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(gate.mu);
        if (gate.active == 0) break;
      }
      if (progress.load(std::memory_order_relaxed) < next_kill) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      {
        std::unique_lock<std::mutex> lk(gate.mu);
        gate.paused = true;
        gate.cv.wait(lk, [&gate] { return gate.parked == gate.active; });
        if (gate.active == 0) {
          gate.paused = false;
          gate.cv.notify_all();
          break;
        }
      }

      ::kill(child, SIGKILL);
      int status = 0;
      ::waitpid(child, &status, 0);
      ++kills;
      WCK_COUNTER_ADD("soak.server.kills", 1);

      child = spawn_server_process(flags, socket_path, tenants_root, dir, server_generation++);
      try {
        wait_for_server_ready(socket_path);
        // The store is quiescent (workers parked, server idle), so the
        // disk scan and the server's stat describe the same instant.
        const std::map<std::string, TenantLedger> disk = scan_ledgers(tenants_root);
        StoreClient verifier = StoreClient::connect(socket_path);
        const net::StatOkResponse stat = verifier.stat();
        std::map<std::string, net::TenantStat> reported;
        for (const net::TenantStat& s : stat.stats) reported[s.name] = s;
        for (const auto& [name, ledger] : disk) {
          const auto it = reported.find(name);
          const bool missing = it == reported.end();
          if (missing || it->second.generations != ledger.generations ||
              it->second.stored_bytes != ledger.bytes ||
              it->second.newest_step != ledger.newest_step) {
            ++ledger_mismatches;
            std::fprintf(
                stderr,
                "soak --server: LEDGER MISMATCH after restart %llu — tenant %s disk "
                "(%llu gens, %llu bytes, step %llu) vs reported (%llu gens, %llu bytes, "
                "step %llu)\n",
                static_cast<unsigned long long>(kills), name.c_str(),
                static_cast<unsigned long long>(ledger.generations),
                static_cast<unsigned long long>(ledger.bytes),
                static_cast<unsigned long long>(ledger.newest_step),
                static_cast<unsigned long long>(missing ? 0 : it->second.generations),
                static_cast<unsigned long long>(missing ? 0 : it->second.stored_bytes),
                static_cast<unsigned long long>(missing ? 0 : it->second.newest_step));
          }
        }
        if (stat.tenants < disk.size()) {
          ++ledger_mismatches;
          std::fprintf(stderr,
                       "soak --server: LEDGER MISMATCH after restart %llu — server knows "
                       "%llu tenants, disk holds %zu\n",
                       static_cast<unsigned long long>(kills),
                       static_cast<unsigned long long>(stat.tenants), disk.size());
        }
      } catch (const std::exception& e) {
        ++ledger_mismatches;
        std::fprintf(stderr, "soak --server: post-restart check failed: %s\n", e.what());
      }

      {
        std::lock_guard<std::mutex> lk(gate.mu);
        gate.paused = false;
        gate.cv.notify_all();
      }
      next_kill = progress.load(std::memory_order_relaxed) + kill_every;
    }
  }
  for (std::thread& t : workers) t.join();

  ClientStats total;
  for (const ClientStats& st : stats) {
    total.puts_ok += st.puts_ok;
    total.quota_rejected += st.quota_rejected;
    total.busy_rejected += st.busy_rejected;
    total.io_failures += st.io_failures;
    total.gets_ok += st.gets_ok;
    total.not_found += st.not_found;
    total.fallback_restores += st.fallback_restores;
    total.parity_restores += st.parity_restores;
    total.restore_failures += st.restore_failures;
    total.silent_mismatches += st.silent_mismatches;
    total.aborts += st.aborts;
  }

  // Final accounting pass over a fresh connection, then shut the server
  // down through the protocol (the ShutdownOk handshake is part of what
  // the soak proves).
  std::uint64_t reported_tenants = 0;
  try {
    StoreClient client = StoreClient::connect(socket_path);
    const net::StatOkResponse stat = client.stat();
    reported_tenants = stat.tenants;
    client.shutdown_server();
  } catch (const Error& e) {
    std::fprintf(stderr, "soak --server: final stat/shutdown failed: %s\n", e.what());
  }
  if (reaper) {
    // The protocol shutdown above makes the child's serve loop drain
    // and exit; give it a few seconds, then force the issue.
    int status = 0;
    bool reaped = false;
    for (int i = 0; i < 500; ++i) {
      const pid_t got = ::waitpid(child, &status, WNOHANG);
      if (got == child || got < 0) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!reaped) {
      ::kill(child, SIGKILL);
      ::waitpid(child, &status, 0);
    }
  } else {
    server->wait_for_shutdown();
    server->stop();
  }

  WCK_COUNTER_ADD("soak.server.puts", total.puts_ok);
  WCK_COUNTER_ADD("soak.server.quota_rejections", total.quota_rejected);
  WCK_COUNTER_ADD("soak.server.busy_rejections", total.busy_rejected);
  WCK_COUNTER_ADD("soak.server.io_failures", total.io_failures);
  WCK_COUNTER_ADD("soak.server.gets", total.gets_ok);
  WCK_COUNTER_ADD("soak.server.not_found", total.not_found);
  WCK_COUNTER_ADD("soak.server.fallback_restores", total.fallback_restores);
  WCK_COUNTER_ADD("soak.server.parity_restores", total.parity_restores);
  WCK_COUNTER_ADD("soak.server.restore_failures", total.restore_failures);
  WCK_COUNTER_ADD("soak.server.silent_mismatches", total.silent_mismatches);
  WCK_COUNTER_ADD("soak.server.client_aborts", total.aborts);
  WCK_COUNTER_ADD("soak.server.faults_injected", fault_io.fault_count());
  WCK_COUNTER_ADD("soak.server.ledger_mismatches", ledger_mismatches);

  telemetry::RunReport report;
  report.tool = "wckpt soak --server";
  report_params_from_flags(flags, report);
  report.params["codec"] = codec_name;
  report.params["fault_plan"] =
      plan_spec.empty() ? env::get("WCK_FAULT_PLAN").value_or("") : plan_spec;
  report.params["kill_every"] = std::to_string(kill_every);
  finish_run(flags, report);

  const bool failed = total.silent_mismatches > 0 || total.puts_ok == 0 ||
                      total.aborts > 0 || ledger_mismatches > 0;
  if (failed && telemetry::enabled()) {
    const std::filesystem::path recorder = dir / "flight-recorder.jsonl";
    try {
      telemetry::EventLog::global().dump_to_file(recorder.string());
      std::fprintf(stderr, "soak --server: flight recorder dumped to %s\n",
                   recorder.string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "soak --server: flight recorder dump failed: %s\n", e.what());
    }
  }

  std::fprintf(stderr,
               "soak --server: %zu clients x %llu cycles over %zu tenants (%llu known to "
               "server): %llu puts (%llu quota-rejected, %llu busy, %llu io), %llu gets "
               "(%llu not-found, %llu fallback, %llu parity, %llu failed), %llu faults, "
               "%llu client aborts, %llu silent mismatches, %llu kills, %llu ledger "
               "mismatches\n",
               clients, static_cast<unsigned long long>(cycles), tenants,
               static_cast<unsigned long long>(reported_tenants),
               static_cast<unsigned long long>(total.puts_ok),
               static_cast<unsigned long long>(total.quota_rejected),
               static_cast<unsigned long long>(total.busy_rejected),
               static_cast<unsigned long long>(total.io_failures),
               static_cast<unsigned long long>(total.gets_ok),
               static_cast<unsigned long long>(total.not_found),
               static_cast<unsigned long long>(total.fallback_restores),
               static_cast<unsigned long long>(total.parity_restores),
               static_cast<unsigned long long>(total.restore_failures),
               static_cast<unsigned long long>(fault_io.fault_count()),
               static_cast<unsigned long long>(total.aborts),
               static_cast<unsigned long long>(total.silent_mismatches),
               static_cast<unsigned long long>(kills),
               static_cast<unsigned long long>(ledger_mismatches));

  if (total.silent_mismatches > 0) return 1;
  if (ledger_mismatches > 0) return 1;
  if (reaper && kills == 0) {
    std::fprintf(stderr, "soak --server: --kill-every set but no kill ever fired\n");
    return 1;
  }
  if (total.aborts > 0) return 1;
  if (total.puts_ok == 0) {
    std::fprintf(stderr, "soak --server: no put ever committed — nothing was demonstrated\n");
    return 1;
  }
  return 0;
}

int dispatch(const std::string& cmd, const std::map<std::string, std::string>& flags) {
  if (cmd == "gen") return cmd_gen(flags);
  if (cmd == "compress") return cmd_compress(flags);
  if (cmd == "decompress") return cmd_decompress(flags);
  if (cmd == "info") return cmd_info(flags);
  if (cmd == "verify") return cmd_verify(flags);
  if (cmd == "roundtrip") return cmd_roundtrip(flags);
  if (cmd == "analyze") return cmd_analyze(flags);
  if (cmd == "soak") return cmd_soak(flags);
  if (cmd == "serve") return cmd_serve(flags);
  if (cmd == "put") return cmd_put(flags);
  if (cmd == "get") return cmd_get(flags);
  if (cmd == "stat") return cmd_stat(flags);
  if (cmd == "top") return cmd_top(flags);
  if (cmd == "shutdown") return cmd_shutdown(flags);
  usage(("unknown command: " + cmd).c_str());
}

int run(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    std::fputs(kUsageText, stdout);  // asked-for help is success, not an error
    return 0;
  }
  const auto flags = parse_flags(argc, argv);

  // --expose=DIR[,MS]: background metrics/event exposition for the
  // lifetime of the command (the destructor performs a final dump even
  // when the command throws).
  std::unique_ptr<telemetry::PeriodicSnapshotWriter> expose;
  const auto expose_flag = flags.find("expose");
  if (expose_flag != flags.end()) {
    std::string dir = expose_flag->second;
    telemetry::PeriodicSnapshotWriter::Options opt;
    const auto comma = dir.find(',');
    if (comma != std::string::npos) {
      const long ms = std::strtol(dir.c_str() + comma + 1, nullptr, 10);
      if (ms <= 0) usage("bad --expose interval (want DIR[,MS] with MS >= 1)");
      opt.interval = std::chrono::milliseconds(ms);
      dir.resize(comma);
    }
    if (dir.empty()) usage("bad --expose directory");
    expose = std::make_unique<telemetry::PeriodicSnapshotWriter>(dir, opt);
    expose->start();
  }

  const int rc = dispatch(cmd, flags);
  if (expose != nullptr) expose->stop();
  return rc;
}

}  // namespace
}  // namespace wck::tool

int main(int argc, char** argv) {
  try {
    return wck::tool::run(argc, argv);
  } catch (const wck::Error& e) {
    std::fprintf(stderr, "wckpt: %s\n", e.what());
    return 1;
  }
}
