// wck_lint — the project-invariant linter (see TOOLING.md "Project
// linter").
//
// clang-tidy enforces general C++ hygiene; wck_lint enforces the small
// set of invariants that are *this project's* conventions and that no
// off-the-shelf check knows about:
//
//   R1 ignored-result   Results of error-reporting calls (remove_file,
//                       exists, scrub, write_async, submit, ...) must be
//                       consumed; an explicit `(void)` cast is the
//                       sanctioned discard.
//   R2 raw-file-io      All file I/O outside src/io/ must go through an
//                       IoBackend — no std::ofstream/std::ifstream/
//                       fopen/::open in the rest of src/, or fault
//                       injection silently loses coverage.
//   R3 naked-mutex      No std::mutex / std::lock_guard / std::unique_lock
//                       / std::condition_variable in src/ outside
//                       src/util/thread_annotations.hpp: shared state
//                       uses the annotated wck::Mutex wrappers so Clang's
//                       thread-safety analysis sees every lock.
//   R4 metric-name      String-literal metric names passed to the
//                       telemetry macros / registry must be
//                       dotted.lowercase ("ckpt.async.queue_depth").
//   R5 getenv           std::getenv only inside src/util/env.hpp — every
//                       other read goes through the race-free wck::env
//                       cache.
//   R6 raw-socket       socket()/bind()/connect()/accept()/listen() only
//                       inside src/net/ — the rest of the tree speaks
//                       frames and messages through UnixStream/
//                       UnixListener (src/net/socket.hpp).
//   R7 raw-simd        Intrinsics headers (immintrin.h, emmintrin.h,
//                       arm_neon.h, ...) only inside src/simd/ — the
//                       rest of the tree calls vector code through the
//                       runtime-dispatched kernel table
//                       (src/simd/dispatch.hpp), so bit-identity tests
//                       and the WCK_SIMD override cover every kernel.
//
// The scanner is a token-level pass over comment/string-blanked text —
// deliberately not a real C++ parser. It favors false negatives over
// false positives, and anything it cannot decide (non-literal metric
// names, calls in expression position) it skips. Findings not in
// tools/wck_lint_baseline.txt fail the gate, mirroring the clang-tidy
// baseline contract in tools/run_tidy.sh.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace wck::lint {

struct Finding {
  std::string file;  ///< repo-relative, '/'-separated
  int line = 0;      ///< 1-based
  std::string message;
  std::string rule;  ///< "ignored-result", "raw-file-io", ...

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// "file:line: message [rule]" — the baseline/report format (matches the
/// normalized clang-tidy format of tools/run_tidy.sh).
[[nodiscard]] std::string format(const Finding& f);

/// Scans one file's contents. `rel_path` is the repo-relative path with
/// '/' separators; it decides which rules apply (e.g. R2 exempts
/// src/io/, R3/R5 exempt their sanctioned homes). Findings come back in
/// line order.
[[nodiscard]] std::vector<Finding> scan_file(const std::string& rel_path,
                                             std::string_view text);

/// Scans every .cpp/.hpp/.h under <root>/src, <root>/tools and
/// <root>/bench (tests are intentionally out of scope — they may poke at
/// raw primitives on purpose). Findings are sorted by file, then line.
[[nodiscard]] std::vector<Finding> scan_tree(const std::filesystem::path& root);

/// Loads a baseline file: one formatted finding per line, blank lines
/// and '#' comments ignored. A missing file is an empty baseline.
[[nodiscard]] std::set<std::string> load_baseline(const std::filesystem::path& path);

}  // namespace wck::lint
