#!/usr/bin/env python3
"""Splice chrome://tracing dumps from several processes into one timeline.

Each input file is a trace written by wckpt's --trace flag (a
``{"traceEvents": [...]}`` document). The merge assigns every input its
own pid (inputs keep their internal tid lanes) and emits process_name
metadata so chrome://tracing / Perfetto labels each lane with the file
it came from. Span events carry ``args.trace_id`` (a 16-digit hex
string); because the client sends that id over the wire and the server
continues it, a put's client span and server span share a trace_id and
line up visually across the two process lanes.

    python3 tools/merge_traces.py client.trace.json server.trace.json \
        --out merged.trace.json --require-shared-traces

--require-shared-traces turns the merge into an assertion: every
client.rpc.* span's trace_id must also appear on some server.rpc.* span
(across all inputs), i.e. context propagation actually worked end to
end. Exit 1 (listing the orphaned ids) when any client RPC span never
showed up server-side, or when no traced client RPC exists at all —
an empty check proves nothing.
"""

import argparse
import json
import os
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        raise ValueError(f"{path}: expected a traceEvents array")
    return events


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="merge per-process chrome trace files into one timeline"
    )
    parser.add_argument("inputs", nargs="+", help="trace JSON files (from --trace)")
    parser.add_argument("--out", required=True, help="merged trace JSON output path")
    parser.add_argument(
        "--require-shared-traces",
        action="store_true",
        help="fail unless every client.rpc.* trace_id also appears on a "
        "server.rpc.* span",
    )
    args = parser.parse_args(argv)

    merged = []
    client_ids = {}  # trace_id -> first client span name (for error messages)
    server_ids = set()
    for pid, path in enumerate(args.inputs):
        events = load_events(path)
        merged.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": os.path.basename(path)},
            }
        )
        for event in events:
            event = dict(event)
            event["pid"] = pid
            merged.append(event)
            name = event.get("name", "")
            trace_id = (event.get("args") or {}).get("trace_id")
            if not trace_id:
                continue
            if name.startswith("client.rpc."):
                client_ids.setdefault(trace_id, name)
            elif name.startswith("server.rpc."):
                server_ids.add(trace_id)

    doc = {"traceEvents": merged, "displayTimeUnit": "ms"}
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")

    span_count = sum(1 for e in merged if e.get("ph") == "X")
    print(
        f"merge_traces: {len(args.inputs)} files, {span_count} spans, "
        f"{len(client_ids)} client RPC trace ids, {len(server_ids)} "
        f"server RPC trace ids -> {args.out}"
    )

    if args.require_shared_traces:
        if not client_ids:
            print(
                "merge_traces: --require-shared-traces but no client.rpc.* span "
                "carries a trace_id — nothing was demonstrated",
                file=sys.stderr,
            )
            return 1
        orphaned = {tid: name for tid, name in client_ids.items() if tid not in server_ids}
        if orphaned:
            for tid, name in sorted(orphaned.items()):
                print(
                    f"merge_traces: trace_id {tid} ({name}) has no matching "
                    "server.rpc.* span",
                    file=sys.stderr,
                )
            return 1
        print(
            f"merge_traces: all {len(client_ids)} client trace ids matched "
            "server-side"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
