// Deterministic decode-robustness fuzz driver.
//
// Builds a corpus of valid encoded artifacts — a Fig. 5 payload, full
// WaveletCompressor streams (serial and sharded-parallel), a multi-field
// checkpoint, raw DEFLATE with the gzip/zlib/WCKP containers, FPC and
// chunked streams — then applies seeded random
// mutations (bit flips, truncations, length-field corruption; see
// util/mutate.hpp) and feeds each mutant to its decoder. The contract:
// every decoder either throws a typed wck::Error or returns a valid
// result. Any other exception, crash, or sanitizer report is a defect.
//
// Run under ASan/UBSan for the real assurance:
//   cmake --preset asan-ubsan && cmake --build --preset asan-ubsan
//   ./build/asan-ubsan/tools/wckpt_fuzz --mutations 10000 --seed 42
//
// Exit code 0 = all mutants handled cleanly; 1 = contract violation.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "core/chunked.hpp"
#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "core/truncation.hpp"
#include "deflate/deflate.hpp"
#include "deflate/huffman_only.hpp"
#include "deflate/parallel.hpp"
#include "encode/payload.hpp"
#include "fpc/fpc.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "util/error.hpp"
#include "util/mutate.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

struct CorpusEntry {
  std::string name;
  Bytes data;
  std::function<void(const Bytes&)> decode;
};

LossyPayload reference_payload() {
  LossyPayload p;
  p.shape = Shape{16, 8};
  p.levels = 1;
  p.averages = {0.0, 0.5, -0.5, 1.25, 2.0};
  p.low_band.resize(32);
  for (std::size_t i = 0; i < p.low_band.size(); ++i) {
    p.low_band[i] = 0.125 * static_cast<double>(i);
  }
  p.quantized = Bitmap(96);
  for (std::size_t i = 0; i < 96; i += 3) p.quantized.set(i, true);  // 32 set
  for (std::size_t i = 0; i < 32; ++i) {
    p.indices.push_back(static_cast<std::uint8_t>(i % p.averages.size()));
  }
  p.exact_values.resize(96 - 32, -7.5);
  return p;
}

std::vector<CorpusEntry> build_corpus() {
  std::vector<CorpusEntry> corpus;

  corpus.push_back({"payload", encode_payload(reference_payload()),
                    [](const Bytes& b) { (void)decode_payload(b); }});

  const auto field = make_smooth_field(Shape{32, 32}, 11);
  for (const auto& [mode, name] :
       {std::pair{EntropyMode::kDeflate, "wavelet-deflate"},
        std::pair{EntropyMode::kHuffmanOnly, "wavelet-huffman"},
        std::pair{EntropyMode::kNone, "wavelet-raw"}}) {
    CompressionParams params;
    params.quantizer.divisions = 64;
    params.entropy = mode;
    corpus.push_back({name, WaveletCompressor(params).compress(field).data,
                      [](const Bytes& b) { (void)WaveletCompressor::decompress(b); }});
  }

  {
    NdArray<double> a = make_smooth_field(Shape{24, 24}, 21);
    NdArray<double> b = make_temperature_field(Shape{16, 16}, 22);
    CheckpointRegistry reg;
    reg.add("alpha", &a);
    reg.add("beta", &b);
    corpus.push_back({"checkpoint-gzip", serialize_checkpoint(reg, GzipCodec{}, 5),
                      [](const Bytes& bytes) {
                        NdArray<double> ra;
                        NdArray<double> rb;
                        CheckpointRegistry rreg;
                        rreg.add("alpha", &ra);
                        rreg.add("beta", &rb);
                        (void)restore_checkpoint(bytes, rreg);
                      }});
    corpus.push_back({"checkpoint-lossy", serialize_checkpoint(reg, WaveletLossyCodec{}, 6),
                      [](const Bytes& bytes) {
                        NdArray<double> ra;
                        NdArray<double> rb;
                        CheckpointRegistry rreg;
                        rreg.add("alpha", &ra);
                        rreg.add("beta", &rb);
                        (void)restore_checkpoint(bytes, rreg);
                      }});
  }

  Bytes text(6000);
  Xoshiro256 fill(33);
  for (std::size_t i = 0; i < text.size(); ++i) {
    text[i] = (i % 48 < 40) ? static_cast<std::byte>('a' + i % 17)
                            : static_cast<std::byte>(fill.bounded(256));
  }
  corpus.push_back({"deflate-raw", deflate_compress(text, {}),
                    [](const Bytes& b) { (void)deflate_decompress(b); }});
  corpus.push_back({"gzip", gzip_compress(text, {}),
                    [](const Bytes& b) { (void)gzip_decompress(b); }});
  corpus.push_back({"zlib", zlib_compress(text, {}),
                    [](const Bytes& b) { (void)zlib_decompress(b); }});
  corpus.push_back({"huffman-only", huffman_only_compress(text),
                    [](const Bytes& b) { (void)huffman_only_decompress(b); }});

  // Sharded parallel-deflate frame (WCKP): mutants hit the frame header,
  // per-block table, and block bodies, driving the parallel decode path.
  corpus.push_back({"sharded-deflate", sharded_deflate_compress(text, {6, 1024, 2}),
                    [](const Bytes& b) { (void)sharded_deflate_decompress(b, 2); }});
  {
    CompressionParams params;
    params.quantizer.divisions = 64;
    params.threads = 2;
    params.deflate_block_size = 2048;
    corpus.push_back({"wavelet-sharded", WaveletCompressor(params).compress(field).data,
                      [](const Bytes& b) { (void)WaveletCompressor::decompress(b); }});
  }

  corpus.push_back({"fpc", fpc_compress(field.values()),
                    [](const Bytes& b) { (void)fpc_decompress(b); }});
  corpus.push_back({"truncation", truncation_compress(field, 20),
                    [](const Bytes& b) { (void)truncation_decompress(b); }});
  {
    ChunkedParams cp;
    corpus.push_back({"chunked", chunked_compress(field, cp).data,
                      [](const Bytes& b) { (void)chunked_decompress(b); }});
  }

  // Store-service wire frames: mutants hit the frame header (magic,
  // version, length, CRC) and the message body decoders. The one-shot
  // decode_frame + decode_message pair is exactly what the server runs
  // per request, so "typed errors only" here is the service's
  // malformed-client guarantee.
  const auto decode_wire = [](const Bytes& b) {
    const net::Frame frame = net::decode_frame(b);
    (void)net::decode_message(frame);
  };
  {
    net::PutRequest put;
    put.tenant = "fuzz-tenant";
    put.step = 42;
    put.request_id = 0x1122334455667788ull;  // exercise the idempotency token bytes
    put.shape = Shape{8, 4};
    put.values.assign(put.shape.size(), 1.5);
    corpus.push_back({"net-put",
                      net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPut),
                                        net::encode(put)),
                      decode_wire});
  }
  {
    net::PutOkResponse ok;
    ok.step = 42;
    ok.generations = 3;
    ok.stored_bytes = 8192;
    ok.total_bytes = 24576;
    ok.request_id = 0x8877665544332211ull;
    ok.deduplicated = true;
    corpus.push_back({"net-put-ok",
                      net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPutOk),
                                        net::encode(ok)),
                      decode_wire});
  }
  {
    net::StatOkResponse stat;
    stat.tenants = 3;
    for (int i = 0; i < 3; ++i) {
      net::TenantStat s;
      s.name = "t" + std::to_string(i);
      s.generations = 2;
      s.stored_bytes = 4096;
      s.quota_bytes = 65536;
      s.newest_step = 17;
      stat.stats.push_back(std::move(s));
    }
    corpus.push_back({"net-stat-ok",
                      net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kStatOk),
                                        net::encode(stat)),
                      decode_wire});
  }
  {
    net::GetOkResponse get;
    get.step = 9;
    get.source = 1;
    get.shape = Shape{4, 4, 2};
    get.values.assign(get.shape.size(), -2.25);
    // The incremental decoder sees the same mutants, byte-dribbled, so
    // its header-first validation and buffering logic get coverage the
    // one-shot path cannot give.
    corpus.push_back({"net-get-ok-streamed",
                      net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kGetOk),
                                        net::encode(get)),
                      [](const Bytes& b) {
                        net::FrameDecoder decoder;
                        std::size_t off = 0;
                        while (off < b.size()) {
                          const std::size_t n = std::min<std::size_t>(7, b.size() - off);
                          decoder.feed(std::span<const std::byte>(b).subspan(off, n));
                          off += n;
                          while (const std::optional<net::Frame> f = decoder.next()) {
                            (void)net::decode_message(*f);
                          }
                        }
                      }});
  }
  {
    // Requests carrying a trace-context suffix (3 × u64 after the base
    // body): mutants land on the suffix boundary, where the decoder
    // must distinguish "absent" (exhausted) from "truncated" (1..23
    // trailing bytes, typed FormatError) from "trailing garbage".
    net::PutRequest put;
    put.tenant = "fuzz-tenant";
    put.step = 43;
    put.request_id = 0x1122334455667789ull;
    put.shape = Shape{4, 4};
    put.values.assign(put.shape.size(), 0.5);
    put.trace = {0xAABBCCDDEEFF0011ull, 0x2233445566778899ull, 0x99AABBCCDDEEFF00ull};
    corpus.push_back({"net-put-traced",
                      net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPut),
                                        net::encode(put)),
                      decode_wire});
    net::GetRequest get;
    get.tenant = "fuzz-tenant";
    get.trace = {0x0102030405060708ull, 0x1112131415161718ull, 0};
    corpus.push_back({"net-get-traced",
                      net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kGet),
                                        net::encode(get)),
                      decode_wire});
  }
  {
    // StatOk with the trailing per-tenant health block (parallel
    // arrays after the base entries): mutants probe the optional-block
    // boundary and the health strings.
    net::StatOkResponse stat;
    stat.tenants = 2;
    for (int i = 0; i < 2; ++i) {
      net::TenantStat s;
      s.name = "h" + std::to_string(i);
      s.generations = 4;
      s.stored_bytes = 2048;
      s.quota_bytes = 32768;
      s.newest_step = 21;
      s.quarantined = static_cast<std::uint64_t>(i);
      s.scrub_age_ms = i == 0 ? net::TenantStat::kNeverScrubbed : 1500;
      s.last_error = i == 0 ? "" : "quota-exceeded";
      stat.stats.push_back(std::move(s));
    }
    corpus.push_back({"net-stat-ok-health",
                      net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kStatOk),
                                        net::encode(stat)),
                      decode_wire});
  }
  {
    // A frame cut off mid-body: the incremental decoder must park it as
    // pending (or reject the header) without reading past the end.
    net::PingRequest ping;
    Bytes whole = net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPing),
                                    net::encode(ping));
    net::GetRequest get;
    get.tenant = "fuzz-tenant";
    Bytes cut = net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kGet),
                                  net::encode(get));
    cut.resize(cut.size() - cut.size() / 3);
    Bytes truncated = whole;
    truncated.insert(truncated.end(), cut.begin(), cut.end());
    corpus.push_back({"net-truncated-frame", std::move(truncated), [](const Bytes& b) {
                        net::FrameDecoder decoder;
                        decoder.feed(b);
                        while (const std::optional<net::Frame> f = decoder.next()) {
                          (void)net::decode_message(*f);
                        }
                      }});
  }
  {
    // Garbage bytes, then "reconnect": the first decoder poisons on the
    // junk (typed FormatError, swallowed — the client would hang up),
    // and a fresh decoder takes the rest of the bytes as a new
    // connection. This is exactly StoreClient::ensure_connected's
    // contract: a reconnect never inherits buffered bytes or poisoning.
    Bytes garbage(48);
    Xoshiro256 junk(77);
    for (std::byte& byte : garbage) byte = static_cast<std::byte>(junk.bounded(256));
    garbage[0] = std::byte{0xFF};  // never a valid magic byte
    const Bytes pong = net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPong),
                                         net::encode(net::PongResponse{}));
    Bytes both = garbage;
    both.insert(both.end(), pong.begin(), pong.end());
    corpus.push_back({"net-garbage-then-reconnect", std::move(both), [](const Bytes& b) {
                        const std::size_t split = std::min<std::size_t>(48, b.size());
                        const auto bytes = std::span<const std::byte>(b);
                        {
                          net::FrameDecoder first;
                          try {
                            first.feed(bytes.subspan(0, split));
                            while (const std::optional<net::Frame> f = first.next()) {
                              (void)net::decode_message(*f);
                            }
                          } catch (const Error&) {
                            // Poisoned stream: the client drops the connection.
                          }
                        }
                        net::FrameDecoder fresh;  // the reconnect
                        fresh.feed(bytes.subspan(split));
                        while (const std::optional<net::Frame> f = fresh.next()) {
                          (void)net::decode_message(*f);
                        }
                      }});
  }
  return corpus;
}

int run(std::uint64_t mutations, std::uint64_t seed, bool verbose) {
  const std::vector<CorpusEntry> corpus = build_corpus();
  Xoshiro256 rng(seed);
  std::uint64_t rejected = 0;
  std::uint64_t accepted = 0;

  for (std::uint64_t t = 0; t < mutations; ++t) {
    const CorpusEntry& entry = corpus[t % corpus.size()];
    Bytes bad = entry.data;
    const int n_mut = 1 + static_cast<int>(rng.bounded(3));
    std::string desc;
    for (int i = 0; i < n_mut; ++i) {
      const Mutation m = mutate(bad, rng);
      if (!desc.empty()) desc += ", ";
      desc += describe(m);
    }
    try {
      entry.decode(bad);
      ++accepted;
    } catch (const Error&) {
      ++rejected;
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "FAIL: %s: non-library exception (%s) on trial %llu seed %llu [%s]\n",
                   entry.name.c_str(), e.what(), static_cast<unsigned long long>(t),
                   static_cast<unsigned long long>(seed), desc.c_str());
      return 1;
    } catch (...) {
      std::fprintf(stderr, "FAIL: %s: unknown exception on trial %llu seed %llu [%s]\n",
                   entry.name.c_str(), static_cast<unsigned long long>(t),
                   static_cast<unsigned long long>(seed), desc.c_str());
      return 1;
    }
    if (verbose && (t + 1) % 1000 == 0) {
      std::fprintf(stderr, "  %llu/%llu mutants...\n", static_cast<unsigned long long>(t + 1),
                   static_cast<unsigned long long>(mutations));
    }
  }

  std::printf("wckpt_fuzz: %llu mutants over %zu artifacts (seed %llu): "
              "%llu rejected, %llu decoded, 0 contract violations\n",
              static_cast<unsigned long long>(mutations), corpus.size(),
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(accepted));
  return 0;
}

}  // namespace
}  // namespace wck

int main(int argc, char** argv) {
  std::uint64_t mutations = 10000;
  std::uint64_t seed = 0xC0FFEE;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_u64 = [&](const char* flag) -> std::uint64_t {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (arg == "--mutations") {
      mutations = next_u64("--mutations");
    } else if (arg == "--seed") {
      seed = next_u64("--seed");
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: wckpt_fuzz [--mutations N] [--seed S] [--verbose]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  try {
    return wck::run(mutations, seed, verbose);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: corpus construction threw: %s\n", e.what());
    return 1;
  }
}
