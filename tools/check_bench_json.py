#!/usr/bin/env python3
"""Schema validator for the telemetry JSON artifacts.

Validates files against the v1 schemas emitted by the repo:

  wck-run-report     -- one run of the pipeline (wckpt --telemetry, RunReport)
  wck-bench-record   -- a bench harness record wrapping a run report
                        (bench/* --bench-json, perf/BENCH_*.json)
  wck-quality-report -- per-band compression-quality analysis
                        (wckpt analyze --json, or embedded as a run
                        report's optional `quality` section)

Usage: tools/check_bench_json.py FILE [FILE...]
Exits 0 when every file validates; prints one line per problem otherwise.
Used by the `bench-smoke` CI job; no third-party dependencies.
"""

import json
import re
import sys

RUN_REPORT_SCHEMA = "wck-run-report"
BENCH_RECORD_SCHEMA = "wck-bench-record"
QUALITY_REPORT_SCHEMA = "wck-quality-report"
SCHEMA_VERSION = 1


class Problems:
    def __init__(self, path):
        self.path = path
        self.items = []

    def add(self, msg):
        self.items.append(f"{self.path}: {msg}")


def _expect(problems, cond, msg):
    if not cond:
        problems.add(msg)
    return cond


def _is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


# Registry naming convention: dotted lowercase families, at least two
# segments ("server.rpc.put.seconds", "soak.commits"). Later segments may
# carry digits and dashes because per-tenant metrics embed the tenant name
# ("server.tenant.rank-07.puts").
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_-]+)+$")


def _check_metric_names(problems, obj, where):
    if not isinstance(obj, dict):
        return
    for name in obj:
        if isinstance(name, str):
            _expect(problems, METRIC_NAME_RE.fullmatch(name) is not None,
                    f"{where} key {name!r} must be a dotted lowercase "
                    "metric name (e.g. 'server.rpc.put.seconds')")


def _check_str_map(problems, obj, where, value_check, value_desc):
    if not _expect(problems, isinstance(obj, dict), f"{where} must be an object"):
        return
    for k, v in obj.items():
        _expect(problems, isinstance(k, str) and k,
                f"{where} key {k!r} must be a non-empty string")
        _expect(problems, value_check(v),
                f"{where}[{k!r}] must be {value_desc} (got {v!r})")


def _is_num_or_null(v):
    """PSNR convention: +inf (exact reconstruction) serializes as null."""
    return v is None or _is_num(v)


def _check_error_stats(problems, e, where):
    if not _expect(problems, isinstance(e, dict), f"{where} must be an object"):
        return
    for key in ("mean_rel", "max_rel", "max_abs", "rmse", "value_range"):
        _expect(problems, _is_num(e.get(key)), f"{where}.{key} must be a number")
    if "psnr" in e:
        _expect(problems, _is_num_or_null(e["psnr"]),
                f"{where}.psnr must be a number or null")
    count = e.get("count")
    _expect(problems, _is_num(count) and count >= 0,
            f"{where}.count must be a non-negative number")


def check_quality_report(problems, doc, *, where="$"):
    if not _expect(problems, isinstance(doc, dict), f"{where} must be an object"):
        return
    _expect(problems, doc.get("schema") == QUALITY_REPORT_SCHEMA,
            f"{where}.schema must be {QUALITY_REPORT_SCHEMA!r} (got {doc.get('schema')!r})")
    _expect(problems, doc.get("schema_version") == SCHEMA_VERSION,
            f"{where}.schema_version must be {SCHEMA_VERSION}")

    variables = doc.get("variables")
    if _expect(problems, isinstance(variables, list), f"{where}.variables must be an array"):
        for i, v in enumerate(variables):
            vw = f"{where}.variables[{i}]"
            if not _expect(problems, isinstance(v, dict), f"{vw} must be an object"):
                continue
            _expect(problems, isinstance(v.get("name"), str) and v["name"],
                    f"{vw}.name must be a non-empty string")
            _expect(problems, isinstance(v.get("shape"), str) and v["shape"],
                    f"{vw}.shape must be a non-empty string")
            for key in ("original_bytes", "compressed_bytes"):
                _expect(problems, _is_num(v.get(key)) and v[key] >= 0,
                        f"{vw}.{key} must be a non-negative number")
            _expect(problems, _is_num(v.get("bits_per_value")) and v["bits_per_value"] >= 0,
                    f"{vw}.bits_per_value must be a non-negative number")
            _check_error_stats(problems, v.get("coefficient_error"),
                               f"{vw}.coefficient_error")
            if "value_error" in v:
                _check_error_stats(problems, v["value_error"], f"{vw}.value_error")

            bands = v.get("bands")
            if not _expect(problems, isinstance(bands, list) and bands,
                           f"{vw}.bands must be a non-empty array"):
                continue
            for j, b in enumerate(bands):
                bw = f"{vw}.bands[{j}]"
                if not _expect(problems, isinstance(b, dict), f"{bw} must be an object"):
                    continue
                _expect(problems, isinstance(b.get("name"), str) and b["name"],
                        f"{bw}.name must be a non-empty string")
                _expect(problems, _is_num(b.get("level")) and b["level"] >= 1,
                        f"{bw}.level must be >= 1")
                _expect(problems, _is_num(b.get("axis_mask")) and b["axis_mask"] >= 1,
                        f"{bw}.axis_mask must be >= 1")
                count = b.get("count")
                quantized = b.get("quantized")
                _expect(problems, _is_num(count) and count > 0,
                        f"{bw}.count must be a positive number")
                _expect(problems, _is_num(quantized) and 0 <= quantized <= (count or 0),
                        f"{bw}.quantized must be in [0, count]")
                frac = b.get("quantized_fraction")
                _expect(problems, _is_num(frac) and 0.0 <= frac <= 1.0,
                        f"{bw}.quantized_fraction must be in [0, 1]")
                _check_error_stats(problems, b.get("error"), f"{bw}.error")
                _expect(problems, _is_num_or_null(b.get("psnr")),
                        f"{bw}.psnr must be a number or null")

            spike = v.get("spike")
            if spike is not None:
                sw = f"{vw}.spike"
                if _expect(problems, isinstance(spike, dict), f"{sw} must be an object"):
                    partitions = spike.get("partitions")
                    occupied = spike.get("occupied")
                    _expect(problems, _is_num(partitions) and partitions >= 0,
                            f"{sw}.partitions must be a non-negative number")
                    _expect(problems,
                            _is_num(occupied) and 0 <= occupied <= (partitions or 0),
                            f"{sw}.occupied must be in [0, partitions]")
                    occupancy = spike.get("occupancy")
                    _expect(problems, _is_num(occupancy) and 0.0 <= occupancy <= 1.0,
                            f"{sw}.occupancy must be in [0, 1]")
                    for key in ("quant_min", "quant_max", "domain_min", "domain_max"):
                        _expect(problems, _is_num(spike.get(key)),
                                f"{sw}.{key} must be a number")

    drift = doc.get("drift")
    if drift is not None:
        dw = f"{where}.drift"
        if _expect(problems, isinstance(drift, dict), f"{dw} must be an object"):
            _expect(problems, _is_num(drift.get("cycles")) and drift["cycles"] > 0,
                    f"{dw}.cycles must be a positive number")
            for key in ("first", "last", "worst"):
                point = drift.get(key)
                pw = f"{dw}.{key}"
                if _expect(problems, isinstance(point, dict), f"{pw} must be an object"):
                    for field in ("cycle", "mean_rel", "rmse"):
                        _expect(problems, _is_num(point.get(field)),
                                f"{pw}.{field} must be a number")
                    _expect(problems, _is_num_or_null(point.get("psnr")),
                            f"{pw}.psnr must be a number or null")
            _expect(problems, isinstance(drift.get("points"), list),
                    f"{dw}.points must be an array")


def check_run_report(problems, doc, *, where="report"):
    if not _expect(problems, isinstance(doc, dict), f"{where} must be an object"):
        return
    _expect(problems, doc.get("schema") == RUN_REPORT_SCHEMA,
            f"{where}.schema must be {RUN_REPORT_SCHEMA!r} (got {doc.get('schema')!r})")
    _expect(problems, doc.get("schema_version") == SCHEMA_VERSION,
            f"{where}.schema_version must be {SCHEMA_VERSION}")
    _expect(problems, isinstance(doc.get("tool"), str) and doc["tool"],
            f"{where}.tool must be a non-empty string")

    _check_str_map(problems, doc.get("params", {}), f"{where}.params",
                   lambda v: isinstance(v, str), "a string")
    _check_str_map(problems, doc.get("stages_seconds", {}), f"{where}.stages_seconds",
                   lambda v: _is_num(v) and v >= 0, "a non-negative number")

    bytes_obj = doc.get("bytes")
    if _expect(problems, isinstance(bytes_obj, dict), f"{where}.bytes must be an object"):
        for key in ("original", "compressed", "payload"):
            v = bytes_obj.get(key)
            _expect(problems, isinstance(v, int) and not isinstance(v, bool) and v >= 0,
                    f"{where}.bytes.{key} must be a non-negative integer (got {v!r})")

    if "compression_rate_percent" in doc:
        _expect(problems, _is_num(doc["compression_rate_percent"]),
                f"{where}.compression_rate_percent must be a number")

    error = doc.get("error")
    if error is not None:
        if _expect(problems, isinstance(error, dict), f"{where}.error must be an object"):
            for key in ("mean_rel", "max_rel", "max_abs", "rmse"):
                _expect(problems, _is_num(error.get(key)),
                        f"{where}.error.{key} must be a number")
            if "psnr" in error:
                _expect(problems, _is_num_or_null(error["psnr"]),
                        f"{where}.error.psnr must be a number or null")
            count = error.get("count")
            _expect(problems, isinstance(count, int) and count >= 0,
                    f"{where}.error.count must be a non-negative integer")

    metrics = doc.get("metrics")
    if _expect(problems, isinstance(metrics, dict), f"{where}.metrics must be an object"):
        _check_str_map(problems, metrics.get("counters", {}), f"{where}.metrics.counters",
                       lambda v: isinstance(v, int) and v >= 0, "a non-negative integer")
        _check_str_map(problems, metrics.get("gauges", {}), f"{where}.metrics.gauges",
                       _is_num, "a number")
        _check_metric_names(problems, metrics.get("counters", {}),
                            f"{where}.metrics.counters")
        _check_metric_names(problems, metrics.get("gauges", {}),
                            f"{where}.metrics.gauges")
        _check_metric_names(problems, metrics.get("histograms", {}),
                            f"{where}.metrics.histograms")
        hists = metrics.get("histograms", {})
        if _expect(problems, isinstance(hists, dict),
                   f"{where}.metrics.histograms must be an object"):
            for name, h in hists.items():
                if not _expect(problems, isinstance(h, dict),
                               f"{where}.metrics.histograms[{name!r}] must be an object"):
                    continue
                for key in ("count", "sum", "min", "max", "mean"):
                    _expect(problems, _is_num(h.get(key)),
                            f"{where}.metrics.histograms[{name!r}].{key} must be a number")
                # Quantiles and bucket layout are optional (added in v1
                # without a version bump: consumers ignore unknown keys).
                for key in ("p50", "p95", "p99"):
                    if key in h:
                        _expect(problems, _is_num(h[key]),
                                f"{where}.metrics.histograms[{name!r}].{key} "
                                "must be a number")
                if "bounds" in h or "buckets" in h:
                    bounds = h.get("bounds")
                    buckets = h.get("buckets")
                    ok = (isinstance(bounds, list) and isinstance(buckets, list)
                          and len(buckets) == len(bounds) + 1
                          and all(_is_num(x) for x in bounds)
                          and all(isinstance(x, int) and x >= 0 for x in buckets))
                    _expect(problems, ok,
                            f"{where}.metrics.histograms[{name!r}] bounds/buckets "
                            "must be arrays with len(buckets) == len(bounds) + 1")

    span_count = doc.get("span_count")
    _expect(problems, isinstance(span_count, int) and span_count >= 0,
            f"{where}.span_count must be a non-negative integer")

    quality = doc.get("quality")
    if quality is not None:
        check_quality_report(problems, quality, where=f"{where}.quality")


def check_bench_record(problems, doc):
    _expect(problems, doc.get("schema_version") == SCHEMA_VERSION,
            f"schema_version must be {SCHEMA_VERSION}")
    _expect(problems, isinstance(doc.get("bench"), str) and doc["bench"],
            "bench must be a non-empty string")
    check_run_report(problems, doc.get("report"), where="report")


def check_file(path):
    problems = Problems(path)
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.add(f"unreadable or invalid JSON: {e}")
        return problems

    if not isinstance(doc, dict):
        problems.add("top level must be a JSON object")
        return problems

    schema = doc.get("schema")
    if schema == BENCH_RECORD_SCHEMA:
        check_bench_record(problems, doc)
    elif schema == RUN_REPORT_SCHEMA:
        check_run_report(problems, doc, where="$")
    elif schema == QUALITY_REPORT_SCHEMA:
        check_quality_report(problems, doc, where="$")
    else:
        problems.add(f"unknown schema {schema!r} (expected {BENCH_RECORD_SCHEMA!r}, "
                     f"{RUN_REPORT_SCHEMA!r}, or {QUALITY_REPORT_SCHEMA!r})")
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        problems = check_file(path)
        if problems.items:
            failures += 1
            for item in problems.items:
                print(item, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
