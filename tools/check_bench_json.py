#!/usr/bin/env python3
"""Schema validator for the telemetry JSON artifacts.

Validates files against the v1 schemas emitted by the repo:

  wck-run-report   -- one run of the pipeline (wckpt --telemetry, RunReport)
  wck-bench-record -- a bench harness record wrapping a run report
                      (bench/* --bench-json, perf/BENCH_*.json)

Usage: tools/check_bench_json.py FILE [FILE...]
Exits 0 when every file validates; prints one line per problem otherwise.
Used by the `bench-smoke` CI job; no third-party dependencies.
"""

import json
import sys

RUN_REPORT_SCHEMA = "wck-run-report"
BENCH_RECORD_SCHEMA = "wck-bench-record"
SCHEMA_VERSION = 1


class Problems:
    def __init__(self, path):
        self.path = path
        self.items = []

    def add(self, msg):
        self.items.append(f"{self.path}: {msg}")


def _expect(problems, cond, msg):
    if not cond:
        problems.add(msg)
    return cond


def _is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _check_str_map(problems, obj, where, value_check, value_desc):
    if not _expect(problems, isinstance(obj, dict), f"{where} must be an object"):
        return
    for k, v in obj.items():
        _expect(problems, isinstance(k, str) and k,
                f"{where} key {k!r} must be a non-empty string")
        _expect(problems, value_check(v),
                f"{where}[{k!r}] must be {value_desc} (got {v!r})")


def check_run_report(problems, doc, *, where="report"):
    if not _expect(problems, isinstance(doc, dict), f"{where} must be an object"):
        return
    _expect(problems, doc.get("schema") == RUN_REPORT_SCHEMA,
            f"{where}.schema must be {RUN_REPORT_SCHEMA!r} (got {doc.get('schema')!r})")
    _expect(problems, doc.get("schema_version") == SCHEMA_VERSION,
            f"{where}.schema_version must be {SCHEMA_VERSION}")
    _expect(problems, isinstance(doc.get("tool"), str) and doc["tool"],
            f"{where}.tool must be a non-empty string")

    _check_str_map(problems, doc.get("params", {}), f"{where}.params",
                   lambda v: isinstance(v, str), "a string")
    _check_str_map(problems, doc.get("stages_seconds", {}), f"{where}.stages_seconds",
                   lambda v: _is_num(v) and v >= 0, "a non-negative number")

    bytes_obj = doc.get("bytes")
    if _expect(problems, isinstance(bytes_obj, dict), f"{where}.bytes must be an object"):
        for key in ("original", "compressed", "payload"):
            v = bytes_obj.get(key)
            _expect(problems, isinstance(v, int) and not isinstance(v, bool) and v >= 0,
                    f"{where}.bytes.{key} must be a non-negative integer (got {v!r})")

    if "compression_rate_percent" in doc:
        _expect(problems, _is_num(doc["compression_rate_percent"]),
                f"{where}.compression_rate_percent must be a number")

    error = doc.get("error")
    if error is not None:
        if _expect(problems, isinstance(error, dict), f"{where}.error must be an object"):
            for key in ("mean_rel", "max_rel", "max_abs", "rmse"):
                _expect(problems, _is_num(error.get(key)),
                        f"{where}.error.{key} must be a number")
            count = error.get("count")
            _expect(problems, isinstance(count, int) and count >= 0,
                    f"{where}.error.count must be a non-negative integer")

    metrics = doc.get("metrics")
    if _expect(problems, isinstance(metrics, dict), f"{where}.metrics must be an object"):
        _check_str_map(problems, metrics.get("counters", {}), f"{where}.metrics.counters",
                       lambda v: isinstance(v, int) and v >= 0, "a non-negative integer")
        _check_str_map(problems, metrics.get("gauges", {}), f"{where}.metrics.gauges",
                       _is_num, "a number")
        hists = metrics.get("histograms", {})
        if _expect(problems, isinstance(hists, dict),
                   f"{where}.metrics.histograms must be an object"):
            for name, h in hists.items():
                if not _expect(problems, isinstance(h, dict),
                               f"{where}.metrics.histograms[{name!r}] must be an object"):
                    continue
                for key in ("count", "sum", "min", "max", "mean"):
                    _expect(problems, _is_num(h.get(key)),
                            f"{where}.metrics.histograms[{name!r}].{key} must be a number")

    span_count = doc.get("span_count")
    _expect(problems, isinstance(span_count, int) and span_count >= 0,
            f"{where}.span_count must be a non-negative integer")


def check_bench_record(problems, doc):
    _expect(problems, doc.get("schema_version") == SCHEMA_VERSION,
            f"schema_version must be {SCHEMA_VERSION}")
    _expect(problems, isinstance(doc.get("bench"), str) and doc["bench"],
            "bench must be a non-empty string")
    check_run_report(problems, doc.get("report"), where="report")


def check_file(path):
    problems = Problems(path)
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.add(f"unreadable or invalid JSON: {e}")
        return problems

    if not isinstance(doc, dict):
        problems.add("top level must be a JSON object")
        return problems

    schema = doc.get("schema")
    if schema == BENCH_RECORD_SCHEMA:
        check_bench_record(problems, doc)
    elif schema == RUN_REPORT_SCHEMA:
        check_run_report(problems, doc, where="$")
    else:
        problems.add(f"unknown schema {schema!r} "
                     f"(expected {BENCH_RECORD_SCHEMA!r} or {RUN_REPORT_SCHEMA!r})")
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        problems = check_file(path)
        if problems.items:
            failures += 1
            for item in problems.items:
                print(item, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
