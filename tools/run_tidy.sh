#!/usr/bin/env bash
# clang-tidy gate over src/ (config: .clang-tidy at the repo root).
#
# Usage:
#   tools/run_tidy.sh [build-dir]
#
# The build dir (default: $WCK_BUILD_DIR, then ./build) must contain
# compile_commands.json (the root CMakeLists exports it unconditionally).
#
# Behavior:
#   * Runs clang-tidy over every src/**/*.cpp translation unit; headers
#     under src/ are covered via HeaderFilterRegex.
#   * Findings are normalized (paths made repo-relative, columns dropped)
#     and compared against tools/tidy_baseline.txt. Any finding NOT in
#     the baseline fails the gate; baseline entries that no longer fire
#     are reported so the baseline can shrink, but do not fail.
#   * If no clang-tidy binary exists (e.g. a gcc-only container), prints
#     a notice and exits 0 — the gate is enforced where clang-tidy is
#     installed (CI's tidy job), not silently everywhere.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${WCK_BUILD_DIR:-${repo_root}/build}}"
baseline="${repo_root}/tools/tidy_baseline.txt"

find_tidy() {
  if [ -n "${CLANG_TIDY:-}" ] && command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
    echo "${CLANG_TIDY}"
    return 0
  fi
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      echo "${candidate}"
      return 0
    fi
  done
  return 1
}

tidy_bin="$(find_tidy)" || {
  echo "run_tidy.sh: clang-tidy not found; SKIPPING static-analysis gate" >&2
  echo "             (install clang-tidy or set CLANG_TIDY to enforce locally)" >&2
  exit 0
}

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "run_tidy.sh: ${build_dir}/compile_commands.json not found." >&2
  echo "             Configure first: cmake --preset relwithdebinfo" >&2
  exit 2
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
if [ "${#sources[@]}" -eq 0 ]; then
  echo "run_tidy.sh: no sources under src/ — nothing to do" >&2
  exit 2
fi

echo "run_tidy.sh: $("${tidy_bin}" --version | head -n 2 | tail -n 1 | sed 's/^ *//')"
echo "run_tidy.sh: checking ${#sources[@]} translation units against ${baseline#"${repo_root}"/}"

raw_log="$(mktemp)"
trap 'rm -f "${raw_log}" "${raw_log}.findings" "${raw_log}.new"' EXIT

status=0
for src in "${sources[@]}"; do
  "${tidy_bin}" -p "${build_dir}" --quiet "${src}" >> "${raw_log}" 2>/dev/null || status=$?
done

# Normalize: keep only "file:line: warning/error: message [check]" lines,
# strip the repo prefix and the column number (stable across versions).
sed -E -n "s|^${repo_root}/||; s|^([^:]+):([0-9]+):[0-9]+: (warning\|error): |\1:\2: |p" \
  "${raw_log}" | sort -u > "${raw_log}.findings"

grep -v -E '^[[:space:]]*(#|$)' "${baseline}" 2>/dev/null | sort -u > "${raw_log}.baseline" || true

new_findings="$(comm -23 "${raw_log}.findings" "${raw_log}.baseline")"
stale_entries="$(comm -13 "${raw_log}.findings" "${raw_log}.baseline")"

if [ -n "${stale_entries}" ]; then
  echo "run_tidy.sh: NOTE: baseline entries that no longer fire (consider removing):"
  echo "${stale_entries}" | sed 's/^/  /'
fi

if [ -n "${new_findings}" ]; then
  echo "run_tidy.sh: FAIL — new clang-tidy findings not in the baseline:" >&2
  echo "${new_findings}" | sed 's/^/  /' >&2
  echo "Fix them, or (with justification) append to tools/tidy_baseline.txt." >&2
  exit 1
fi

echo "run_tidy.sh: OK — no new findings"
exit 0
