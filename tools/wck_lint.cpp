// wck_lint — command-line driver for the project-invariant linter.
//
// Usage:
//   wck_lint [--root DIR] [--baseline FILE] [--list]
//
// Scans src/, tools/ and bench/ under --root (default: the current
// directory) and compares the findings against the committed baseline
// (default: <root>/tools/wck_lint_baseline.txt). Mirrors the
// tools/run_tidy.sh contract: any finding NOT in the baseline fails the
// gate (exit 1); baseline entries that no longer fire are reported but
// do not fail. --list prints every finding, ignoring the baseline.
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "wck_lint_core.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--root DIR] [--baseline FILE] [--list]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::filesystem::path baseline_path;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--list") {
      list_only = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!std::filesystem::is_directory(root / "src")) {
    std::fprintf(stderr, "wck_lint: %s does not look like the repo root (no src/)\n",
                 root.string().c_str());
    return 2;
  }
  if (baseline_path.empty()) baseline_path = root / "tools" / "wck_lint_baseline.txt";

  const std::vector<wck::lint::Finding> findings = wck::lint::scan_tree(root);

  if (list_only) {
    for (const auto& f : findings) std::printf("%s\n", wck::lint::format(f).c_str());
    std::printf("wck_lint: %zu finding(s)\n", findings.size());
    return findings.empty() ? 0 : 1;
  }

  const std::set<std::string> baseline = wck::lint::load_baseline(baseline_path);
  std::set<std::string> fired;
  std::vector<std::string> fresh;
  for (const auto& f : findings) {
    const std::string line = wck::lint::format(f);
    if (baseline.count(line) != 0) {
      fired.insert(line);
    } else {
      fresh.push_back(line);
    }
  }

  for (const auto& entry : baseline) {
    if (fired.count(entry) == 0) {
      std::printf("wck_lint: NOTE: baseline entry no longer fires (consider removing):\n  %s\n",
                  entry.c_str());
    }
  }
  if (!fresh.empty()) {
    std::fprintf(stderr, "wck_lint: FAIL — new findings not in the baseline:\n");
    for (const auto& line : fresh) std::fprintf(stderr, "  %s\n", line.c_str());
    std::fprintf(stderr,
                 "Fix them, or (with justification) append to %s.\n",
                 baseline_path.string().c_str());
    return 1;
  }
  std::printf("wck_lint: OK — no new findings (%zu baselined)\n", fired.size());
  return 0;
}
