#include "wck_lint_core.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <functional>
#include <iterator>
#include <regex>
#include <sstream>
#include <tuple>

namespace wck::lint {
namespace {

[[nodiscard]] bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// A string literal found during blanking: `pos` is the offset of the
/// opening quote in the blanked text (same offsets as the original).
struct Literal {
  std::size_t pos = 0;
  std::string content;
};

/// Comment- and literal-blanked view of one file. Offsets and line
/// structure are identical to the input: comments become spaces
/// (newlines kept), string/char literal *contents* become spaces while
/// the quotes stay, so token searches cannot match inside either.
struct Scanned {
  std::string blank;
  std::vector<Literal> literals;
  std::vector<std::size_t> line_starts;  ///< offset of each line's first char
};

[[nodiscard]] int line_of(const Scanned& s, std::size_t pos) {
  const auto it = std::upper_bound(s.line_starts.begin(), s.line_starts.end(), pos);
  return static_cast<int>(it - s.line_starts.begin());
}

[[nodiscard]] Scanned preprocess(std::string_view text) {
  Scanned out;
  out.blank.assign(text.begin(), text.end());
  out.line_starts.push_back(0);
  const std::size_t n = text.size();
  auto blank_at = [&](std::size_t i) {
    if (out.blank[i] != '\n') out.blank[i] = ' ';
  };
  std::size_t i = 0;
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      out.line_starts.push_back(i + 1);
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') blank_at(i++);
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      blank_at(i++);
      blank_at(i++);
      while (i < n && !(text[i] == '*' && i + 1 < n && text[i + 1] == '/')) {
        if (text[i] == '\n') out.line_starts.push_back(i + 1);
        blank_at(i++);
      }
      if (i < n) {
        blank_at(i++);
        blank_at(i++);
      }
      continue;
    }
    if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
        (i == 0 || !is_ident(text[i - 1]))) {
      // Raw string literal: R"delim( ... )delim"
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      if (j >= n) break;  // malformed; stop scanning
      const std::string closer = ")" + delim + "\"";
      const std::size_t body = j + 1;
      const std::size_t end = text.find(closer, body);
      const std::size_t stop = end == std::string_view::npos ? n : end;
      out.literals.push_back({i + 1, std::string(text.substr(body, stop - body))});
      for (std::size_t k = body; k < stop; ++k) {
        if (text[k] == '\n') out.line_starts.push_back(k + 1);
        blank_at(k);
      }
      i = end == std::string_view::npos ? n : end + closer.size();
      continue;
    }
    if (c == '"') {
      const std::size_t open = i++;
      std::string content;
      while (i < n && text[i] != '"' && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) {
          content += text[i];
          blank_at(i++);
        }
        content += text[i];
        blank_at(i++);
      }
      out.literals.push_back({open, std::move(content)});
      if (i < n && text[i] == '"') ++i;
      continue;
    }
    if (c == '\'') {
      // Digit separator (1'000'000) is not a literal.
      if (i > 0 && i + 1 < n && is_ident(text[i - 1]) && is_ident(text[i + 1])) {
        ++i;
        continue;
      }
      ++i;
      while (i < n && text[i] != '\'' && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) blank_at(i++);
        blank_at(i++);
      }
      if (i < n && text[i] == '\'') ++i;
      continue;
    }
    ++i;
  }
  return out;
}

[[nodiscard]] std::size_t skip_spaces(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0)
    ++i;
  return i;
}

/// Last non-whitespace offset strictly before `i`, or npos.
[[nodiscard]] std::size_t prev_sig(const std::string& s, std::size_t i) {
  while (i > 0) {
    --i;
    if (std::isspace(static_cast<unsigned char>(s[i])) == 0) return i;
  }
  return std::string::npos;
}

/// Offset just past the `)` matching the `(` at `open`, or npos.
[[nodiscard]] std::size_t match_forward(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Offset of the `(`/`[` matching the closer at `close`, or npos.
[[nodiscard]] std::size_t match_backward(const std::string& s, std::size_t close,
                                         char open_c, char close_c) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (s[i] == close_c) ++depth;
    if (s[i] == open_c && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Walks a call chain backwards from the first char of the called name
/// (`io().submit` → start of `io`) and reports the significant char
/// before the whole chain ('\0' for start-of-file, '?' for anything the
/// scanner cannot decode — callers must then skip the site).
[[nodiscard]] char char_before_chain(const std::string& s, std::size_t name_start) {
  std::size_t pos = name_start;
  for (;;) {
    const std::size_t q = prev_sig(s, pos);
    if (q == std::string::npos) return '\0';
    std::size_t primary_end;  // last char of the receiver primary
    if (s[q] == '.' && (q == 0 || s[q - 1] != '.')) {
      primary_end = prev_sig(s, q);
    } else if (s[q] == '>' && q > 0 && s[q - 1] == '-') {
      primary_end = prev_sig(s, q - 1);
    } else if (s[q] == ':' && q > 0 && s[q - 1] == ':') {
      primary_end = prev_sig(s, q - 1);
    } else {
      return s[q];
    }
    if (primary_end == std::string::npos) return '?';
    // Step back over the receiver: ident, call (), or index [].
    std::size_t r = primary_end;
    if (s[r] == ')' || s[r] == ']') {
      const std::size_t open =
          match_backward(s, r, s[r] == ')' ? '(' : '[', s[r]);
      if (open == std::string::npos) return '?';
      const std::size_t before = prev_sig(s, open);
      if (before == std::string::npos) return '\0';
      r = before;
      if (!is_ident(s[r])) return s[r];  // e.g. `(a + b).submit(...)`
    }
    if (!is_ident(s[r])) return '?';
    while (r > 0 && is_ident(s[r - 1])) --r;
    pos = r;
  }
}

/// Word-bounded occurrences of `token` in `s`. Tokens may contain
/// punctuation ("std::mutex", ".counter"); the boundary check applies to
/// whichever end is an identifier char.
void for_each_token(const std::string& s, std::string_view token,
                    const std::function<void(std::size_t)>& fn) {
  std::size_t i = 0;
  while ((i = s.find(token, i)) != std::string::npos) {
    const bool left_ok =
        !is_ident(token.front()) || i == 0 || !is_ident(s[i - 1]);
    const std::size_t end = i + token.size();
    const bool right_ok =
        !is_ident(token.back()) || end >= s.size() || !is_ident(s[end]);
    if (left_ok && right_ok) fn(i);
    i += token.size();
  }
}

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// ---------------------------------------------------------------- rules

/// R1 ignored-result: a call to one of these names in statement position
/// whose result falls on the floor. `(void)` casts and any expression
/// context (assignment, return, condition, argument) are consumed.
constexpr std::array<std::string_view, 9> kMustConsume = {
    "read_file", "remove_file", "exists",      "retrieve", "rank_alive",
    "xor_recover", "write_async", "submit",    "scrub"};

void rule_ignored_result(const std::string& rel, const Scanned& sc,
                         std::vector<Finding>& out) {
  for (const std::string_view name : kMustConsume) {
    for_each_token(sc.blank, name, [&](std::size_t pos) {
      const std::size_t open = skip_spaces(sc.blank, pos + name.size());
      if (open >= sc.blank.size() || sc.blank[open] != '(') return;
      const std::size_t after = match_forward(sc.blank, open);
      if (after == std::string::npos) return;
      const std::size_t next = skip_spaces(sc.blank, after);
      if (next >= sc.blank.size() || sc.blank[next] != ';') return;
      const char before = char_before_chain(sc.blank, pos);
      if (before != ';' && before != '{' && before != '}' && before != '\0') return;
      out.push_back({rel, line_of(sc, pos),
                     "result of " + std::string(name) +
                         "() is discarded; consume it or cast to (void)",
                     "ignored-result"});
    });
  }
}

/// R2 raw-file-io: file I/O primitives outside src/io/.
void rule_raw_file_io(const std::string& rel, const Scanned& sc,
                      std::vector<Finding>& out) {
  if (!starts_with(rel, "src/") || starts_with(rel, "src/io/")) return;
  constexpr std::array<std::string_view, 5> kTokens = {
      "std::ofstream", "std::ifstream", "std::fstream", "fopen", "::open"};
  for (const std::string_view token : kTokens) {
    for_each_token(sc.blank, token, [&](std::size_t pos) {
      if (token == "fopen" || token == "::open") {
        const std::size_t next = skip_spaces(sc.blank, pos + token.size());
        if (next >= sc.blank.size() || sc.blank[next] != '(') return;
      }
      out.push_back({rel, line_of(sc, pos),
                     "raw file I/O (" + std::string(token) +
                         ") outside src/io/; route through an IoBackend",
                     "raw-file-io"});
    });
  }
}

/// R3 naked-mutex: std synchronization primitives in src/ outside the
/// annotated wrappers.
void rule_naked_mutex(const std::string& rel, const Scanned& sc,
                      std::vector<Finding>& out) {
  if (!starts_with(rel, "src/") || rel == "src/util/thread_annotations.hpp") return;
  constexpr std::array<std::string_view, 9> kTokens = {
      "std::mutex",          "std::recursive_mutex",
      "std::shared_mutex",   "std::timed_mutex",
      "std::condition_variable", "std::condition_variable_any",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock"};
  for (const std::string_view token : kTokens) {
    for_each_token(sc.blank, token, [&](std::size_t pos) {
      out.push_back({rel, line_of(sc, pos),
                     "naked " + std::string(token) +
                         "; use the annotated wrappers in "
                         "src/util/thread_annotations.hpp",
                     "naked-mutex"});
    });
  }
}

/// R4 metric-name: string-literal metric names must be dotted.lowercase.
void rule_metric_name(const std::string& rel, const Scanned& sc,
                      std::vector<Finding>& out) {
  static const std::regex kName("^[a-z][a-z0-9_]*(\\.[a-z0-9_]+)+$");
  constexpr std::array<std::string_view, 6> kSinks = {
      "WCK_COUNTER_ADD", "WCK_GAUGE_SET", "WCK_HISTOGRAM_RECORD",
      ".counter",        ".gauge",        ".histogram"};
  for (const std::string_view sink : kSinks) {
    for_each_token(sc.blank, sink, [&](std::size_t pos) {
      const std::size_t open = skip_spaces(sc.blank, pos + sink.size());
      if (open >= sc.blank.size() || sc.blank[open] != '(') return;
      const std::size_t arg = skip_spaces(sc.blank, open + 1);
      if (arg >= sc.blank.size() || sc.blank[arg] != '"') return;  // dynamic name
      // Only judge a literal that is the ENTIRE argument — a literal
      // prefix of a concatenation ("stage." + name) is a dynamic name.
      const std::size_t close = sc.blank.find('"', arg + 1);
      if (close == std::string::npos) return;
      const std::size_t after_lit = skip_spaces(sc.blank, close + 1);
      if (after_lit >= sc.blank.size() ||
          (sc.blank[after_lit] != ',' && sc.blank[after_lit] != ')'))
        return;
      const auto lit = std::find_if(sc.literals.begin(), sc.literals.end(),
                                    [&](const Literal& l) { return l.pos == arg; });
      if (lit == sc.literals.end()) return;
      if (std::regex_match(lit->content, kName)) return;
      out.push_back({rel, line_of(sc, pos),
                     "metric name \"" + lit->content +
                         "\" is not dotted.lowercase",
                     "metric-name"});
    });
  }
}

/// R5 getenv: only src/util/env.hpp may call it.
void rule_getenv(const std::string& rel, const Scanned& sc,
                 std::vector<Finding>& out) {
  if (rel == "src/util/env.hpp") return;
  for_each_token(sc.blank, "getenv", [&](std::size_t pos) {
    const std::size_t next = skip_spaces(sc.blank, pos + 6);
    if (next >= sc.blank.size() || sc.blank[next] != '(') return;
    out.push_back({rel, line_of(sc, pos),
                   "getenv outside the env cache; use wck::env::get "
                   "(src/util/env.hpp)",
                   "getenv"});
  });
}

/// R6 raw-socket: socket syscalls outside src/net/. Everything above the
/// net layer talks frames/messages through UnixStream/UnixListener, so
/// connection teardown, EINTR handling, and lint-visible I/O confinement
/// all live in one place (mirroring R2's src/io/ contract).
void rule_raw_socket(const std::string& rel, const Scanned& sc,
                     std::vector<Finding>& out) {
  if (starts_with(rel, "src/net/")) return;
  constexpr std::array<std::string_view, 6> kCalls = {"socket", "bind",    "connect",
                                                      "accept", "accept4", "listen"};
  for (const std::string_view name : kCalls) {
    for_each_token(sc.blank, name, [&](std::size_t pos) {
      const std::size_t open = skip_spaces(sc.blank, pos + name.size());
      if (open >= sc.blank.size() || sc.blank[open] != '(') return;
      // The syscall is a free function: bare `connect(...)` or the
      // global-scope `::connect(...)`. Member calls (sig.connect(...))
      // and class-qualified names (std::bind, UnixStream::connect_to)
      // are someone else's connect.
      if (pos >= 2 && sc.blank[pos - 1] == ':' && sc.blank[pos - 2] == ':') {
        if (pos >= 3 && is_ident(sc.blank[pos - 3])) return;  // A::name(...)
      } else {
        const std::size_t before = prev_sig(sc.blank, pos);
        // Member calls (x.connect), other qualifications, and
        // declarations (`StoreClient connect(...)` — preceded by an
        // identifier) are not the syscall. Favors false negatives
        // (`return connect(...)`) over flagging every method named like
        // one, per the scanner's philosophy.
        if (before != std::string::npos &&
            (sc.blank[before] == '.' || sc.blank[before] == '>' ||
             sc.blank[before] == ':' || is_ident(sc.blank[before]))) {
          return;
        }
      }
      out.push_back({rel, line_of(sc, pos),
                     "raw socket call " + std::string(name) +
                         "() outside src/net/; use UnixStream/UnixListener "
                         "(src/net/socket.hpp)",
                     "raw-socket"});
    });
  }
}

/// R7 raw-simd: intrinsics headers outside src/simd/. Vector code lives
/// behind the runtime-dispatched kernel table so every kernel is
/// bit-identity-tested against the scalar reference and forcible to
/// scalar via WCK_SIMD; a stray `#include <immintrin.h>` elsewhere
/// escapes both. Catches the angle form in the blanked text and the
/// (unconventional) quoted form via the recorded literal contents.
void rule_raw_simd(const std::string& rel, const Scanned& sc,
                   std::vector<Finding>& out) {
  // src/simd/ is the sanctioned home; this file holds the header-name
  // table itself (string literals that would self-flag, like R5's
  // sanctioned-caller exemption for env.hpp).
  if (starts_with(rel, "src/simd/") || rel == "tools/wck_lint_core.cpp") return;
  constexpr std::array<std::string_view, 14> kHeaders = {
      "immintrin.h", "emmintrin.h", "xmmintrin.h", "pmmintrin.h",
      "tmmintrin.h", "smmintrin.h", "nmmintrin.h", "ammintrin.h",
      "wmmintrin.h", "avxintrin.h", "avx2intrin.h", "x86intrin.h",
      "arm_neon.h",  "arm_sve.h"};
  auto flag = [&](std::string_view header, std::size_t pos) {
    out.push_back({rel, line_of(sc, pos),
                   "raw SIMD intrinsics header " + std::string(header) +
                       " outside src/simd/; call through the dispatch "
                       "table (src/simd/dispatch.hpp)",
                   "raw-simd"});
  };
  for (const std::string_view header : kHeaders) {
    for_each_token(sc.blank, header, [&](std::size_t pos) { flag(header, pos); });
    for (const Literal& lit : sc.literals) {
      if (lit.content == header) flag(header, lit.pos);
    }
  }
}

}  // namespace

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.message + " [" +
         f.rule + "]";
}

std::vector<Finding> scan_file(const std::string& rel_path, std::string_view text) {
  const Scanned sc = preprocess(text);
  std::vector<Finding> out;
  rule_ignored_result(rel_path, sc, out);
  rule_raw_file_io(rel_path, sc, out);
  rule_naked_mutex(rel_path, sc, out);
  rule_metric_name(rel_path, sc, out);
  rule_getenv(rel_path, sc, out);
  rule_raw_socket(rel_path, sc, out);
  rule_raw_simd(rel_path, sc, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  return out;
}

std::vector<Finding> scan_tree(const std::filesystem::path& root) {
  std::vector<Finding> out;
  for (const char* top : {"src", "tools", "bench"}) {
    const std::filesystem::path dir = root / top;
    if (!std::filesystem::is_directory(dir)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string rel =
          std::filesystem::relative(entry.path(), root).generic_string();
      std::vector<Finding> file_findings = scan_file(rel, buf.str());
      out.insert(out.end(), std::make_move_iterator(file_findings.begin()),
                 std::make_move_iterator(file_findings.end()));
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return out;
}

std::set<std::string> load_baseline(const std::filesystem::path& path) {
  std::set<std::string> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    out.insert(line.substr(first, last - first + 1));
  }
  return out;
}

}  // namespace wck::lint
