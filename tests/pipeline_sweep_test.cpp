// Property sweep across the pipeline's full configuration space:
// every (wavelet kind x quantizer x entropy mode x transform depth x
// division number) combination must round-trip with bounded error,
// self-describe, and respect its structural invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "util/rng.hpp"
#include "wavelet/haar.hpp"

namespace wck {
namespace {

using SweepParam = std::tuple<WaveletKind, QuantizerKind, EntropyMode, int /*levels*/,
                              int /*divisions*/>;

class PipelineSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  [[nodiscard]] CompressionParams params() const {
    const auto& [wavelet, quantizer, entropy, levels, divisions] = GetParam();
    CompressionParams p;
    p.wavelet = wavelet;
    p.quantizer.kind = quantizer;
    p.quantizer.divisions = divisions;
    p.quantizer.spike_partitions = 64;
    p.wavelet_levels = levels;
    p.entropy = entropy;
    return p;
  }
};

TEST_P(PipelineSweep, RoundTripBoundedErrorOnSmoothData) {
  const auto field = make_temperature_field(Shape{48, 30, 3}, 11);
  const WaveletCompressor c(params());
  const auto rt = c.round_trip(field);
  EXPECT_EQ(rt.reconstructed.shape(), field.shape());
  // Error bound scaled to the configuration: n=1 collapses every
  // quantized coefficient to one value (tens of percent on deep
  // transforms); n=128 keeps the error well under a percent.
  const double bound = std::get<4>(GetParam()) == 1 ? 40.0 : 1.0;
  EXPECT_LT(rt.error.mean_rel_percent(), bound);
  EXPECT_GT(rt.compressed.data.size(), 0u);
  EXPECT_LE(rt.compressed.quantized_count, rt.compressed.high_count);
}

TEST_P(PipelineSweep, StreamSelfDescribes) {
  const auto field = make_smooth_field(Shape{33, 17}, 12);
  const auto comp = WaveletCompressor(params()).compress(field);
  // Static decompress — no parameters from the encoding side.
  const auto back = WaveletCompressor::decompress(comp.data);
  EXPECT_EQ(back.shape(), field.shape());
}

TEST_P(PipelineSweep, DeterministicStreams) {
  const auto field = make_smooth_field(Shape{20, 20, 2}, 13);
  const WaveletCompressor c(params());
  // Temp-file gzip writes through the filesystem; output bytes must
  // still be identical across runs.
  const auto a = c.compress(field);
  const auto b = c.compress(field);
  EXPECT_EQ(a.data, b.data);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, PipelineSweep,
    ::testing::Combine(
        ::testing::Values(WaveletKind::kHaar, WaveletKind::kCdf53, WaveletKind::kCdf97),
        ::testing::Values(QuantizerKind::kSimple, QuantizerKind::kSpike),
        ::testing::Values(EntropyMode::kNone, EntropyMode::kDeflate,
                          EntropyMode::kHuffmanOnly),
        ::testing::Values(1, 2),
        ::testing::Values(1, 128)));

// The temp-file path is slower; cover it separately with one config per
// quantizer instead of the full cross product.
class TempFileSweep : public ::testing::TestWithParam<QuantizerKind> {};

TEST_P(TempFileSweep, RoundTripThroughFilesystem) {
  CompressionParams p;
  p.quantizer.kind = GetParam();
  p.quantizer.divisions = 64;
  p.entropy = EntropyMode::kTempFileGzip;
  const auto field = make_temperature_field(Shape{40, 20, 2}, 14);
  const auto rt = WaveletCompressor(p).round_trip(field);
  EXPECT_LT(rt.error.mean_rel_percent(), 5.0);
}

INSTANTIATE_TEST_SUITE_P(Quantizers, TempFileSweep,
                         ::testing::Values(QuantizerKind::kSimple, QuantizerKind::kSpike));

// Shape edge-case sweep: every rank, odd extents, degenerate axes.
class ShapeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeSweep, RoundTripsAtDefaultParams) {
  const Shape& shape = GetParam();
  const auto field = make_smooth_field(shape, 15 + shape.size());
  CompressionParams p;
  p.quantizer.divisions = 64;
  const auto rt = WaveletCompressor(p).round_trip(field);
  EXPECT_EQ(rt.reconstructed.shape(), shape);
  EXPECT_LT(rt.error.mean_rel_percent(), 10.0) << shape.to_string();
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Values(Shape{1}, Shape{2}, Shape{7}, Shape{4096},
                                           Shape{1, 1}, Shape{1, 100}, Shape{100, 1},
                                           Shape{31, 33}, Shape{5, 5, 5}, Shape{2, 3, 4, 5},
                                           Shape{1156, 82, 2}));

// Seeds sweep: the invariants must hold across many random fields, not
// one lucky instance.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, ErrorAlwaysWithinQuantizerCellBound) {
  // For the simple quantizer every high-band coefficient moves at most
  // one partition width; after the inverse transform the per-value
  // error is bounded by levels * rank * width (loose union bound).
  const std::uint64_t seed = GetParam();
  const auto field = make_smooth_field(Shape{32, 32}, seed, /*roughness=*/0.05);
  CompressionParams p;
  p.quantizer.kind = QuantizerKind::kSimple;
  p.quantizer.divisions = 64;
  const auto rt = WaveletCompressor(p).round_trip(field);
  EXPECT_LT(rt.error.max_rel, 0.5) << "seed=" << seed;
  EXPECT_GT(rt.error.mean_rel, 0.0) << "seed=" << seed;  // genuinely lossy
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace wck
