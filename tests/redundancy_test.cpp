// Tests for XOR parity encoding and the in-memory checkpoint store.
#include <gtest/gtest.h>

#include "redundancy/xor_parity.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

Bytes random_payload(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes b(n);
  for (auto& v : b) v = static_cast<std::byte>(rng.bounded(256));
  return b;
}

TEST(XorParity, RecoverAnySingleMember) {
  std::vector<Bytes> group;
  for (std::uint64_t i = 0; i < 4; ++i) group.push_back(random_payload(1000, i + 1));
  const ParityBlock pb = xor_encode(group);
  for (std::size_t missing = 0; missing < group.size(); ++missing) {
    const Bytes rec = xor_recover(pb, group, missing);
    EXPECT_EQ(rec, group[missing]) << "missing=" << missing;
  }
}

TEST(XorParity, MixedSizesHandled) {
  std::vector<Bytes> group = {random_payload(100, 1), random_payload(1, 2),
                              random_payload(5000, 3), Bytes{}};
  const ParityBlock pb = xor_encode(group);
  EXPECT_EQ(pb.parity.size(), 5000u);
  for (std::size_t missing = 0; missing < group.size(); ++missing) {
    EXPECT_EQ(xor_recover(pb, group, missing), group[missing]);
  }
}

TEST(XorParity, ParityOverheadIsOneMaxPayload) {
  std::vector<Bytes> group = {random_payload(300, 1), random_payload(200, 2)};
  const ParityBlock pb = xor_encode(group);
  EXPECT_EQ(pb.parity.size(), 300u);
}

TEST(XorParity, InvalidInputsRejected) {
  EXPECT_THROW((void)xor_encode({}), InvalidArgumentError);
  std::vector<Bytes> group = {random_payload(10, 1), random_payload(10, 2)};
  const ParityBlock pb = xor_encode(group);
  EXPECT_THROW((void)xor_recover(pb, group, 2), InvalidArgumentError);
  std::vector<Bytes> wrong_size = {random_payload(11, 1), random_payload(10, 2)};
  EXPECT_THROW((void)xor_recover(pb, wrong_size, 1), InvalidArgumentError);
}

TEST(InMemoryStore, RetrieveAliveRank) {
  InMemoryCheckpointStore store(6, 3);
  store.store(2, random_payload(500, 7));
  const auto got = store.retrieve(2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, random_payload(500, 7));
}

TEST(InMemoryStore, RecoverSingleFailurePerGroup) {
  InMemoryCheckpointStore store(6, 3);
  std::vector<Bytes> payloads;
  for (std::size_t r = 0; r < 6; ++r) {
    payloads.push_back(random_payload(200 + r * 10, r + 1));
    store.store(r, payloads.back());
  }
  // One failure in each group (groups: {0,1,2}, {3,4,5}).
  store.fail_rank(1);
  store.fail_rank(5);
  for (std::size_t r = 0; r < 6; ++r) {
    const auto got = store.retrieve(r);
    ASSERT_TRUE(got.has_value()) << "rank " << r;
    EXPECT_EQ(*got, payloads[r]) << "rank " << r;
  }
}

TEST(InMemoryStore, DoubleFailureInGroupUnrecoverable) {
  InMemoryCheckpointStore store(6, 3);
  for (std::size_t r = 0; r < 6; ++r) store.store(r, random_payload(100, r + 1));
  store.fail_rank(0);
  store.fail_rank(2);  // same group as 0
  EXPECT_FALSE(store.retrieve(0).has_value());
  EXPECT_FALSE(store.retrieve(2).has_value());
  // The other group is unaffected.
  EXPECT_TRUE(store.retrieve(4).has_value());
}

TEST(InMemoryStore, FailuresInDifferentGroupsIndependent) {
  InMemoryCheckpointStore store(9, 3);
  for (std::size_t r = 0; r < 9; ++r) store.store(r, random_payload(64, r + 1));
  store.fail_rank(0);
  store.fail_rank(3);
  store.fail_rank(8);
  for (std::size_t r = 0; r < 9; ++r) {
    EXPECT_TRUE(store.retrieve(r).has_value()) << "rank " << r;
  }
}

TEST(InMemoryStore, NeverStoredRankYieldsNothing) {
  InMemoryCheckpointStore store(4, 2);
  EXPECT_FALSE(store.retrieve(3).has_value());
}

TEST(InMemoryStore, StoredBytesIncludesParityOverhead) {
  InMemoryCheckpointStore store(4, 2);
  store.store(0, random_payload(1000, 1));
  store.store(1, random_payload(1000, 2));
  // 2 payloads + 1 parity in group 0 (group 1 parity is empty).
  EXPECT_GE(store.stored_bytes(), 3000u);
  EXPECT_LT(store.stored_bytes(), 3100u);
}

TEST(InMemoryStore, UpdateRefreshesParity) {
  InMemoryCheckpointStore store(2, 2);
  store.store(0, random_payload(100, 1));
  store.store(1, random_payload(100, 2));
  const Bytes updated = random_payload(100, 3);
  store.store(0, updated);
  store.fail_rank(0);
  const auto got = store.retrieve(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, updated);  // not the stale payload
}

TEST(InMemoryStore, InvalidConfigRejected) {
  EXPECT_THROW(InMemoryCheckpointStore(0, 2), InvalidArgumentError);
  EXPECT_THROW(InMemoryCheckpointStore(4, 1), InvalidArgumentError);
  InMemoryCheckpointStore store(4, 2);
  EXPECT_THROW(store.store(4, {}), InvalidArgumentError);
  EXPECT_THROW(store.fail_rank(9), InvalidArgumentError);
  EXPECT_THROW((void)store.retrieve(17), InvalidArgumentError);
}

}  // namespace
}  // namespace wck
