// Resilience-layer tests: fault plans, the fault-injecting backend, the
// durable commit path, CheckpointManager retry/rotation/fallback/scrub,
// async-writer degradation, and distributed parity-group recovery — all
// under deterministic fault plans (no timing or randomness in the
// assertions).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "ckpt/async_writer.hpp"
#include "ckpt/manager.hpp"
#include "climate/distributed.hpp"
#include "core/synthetic.hpp"
#include "io/fault_injection.hpp"
#include "redundancy/xor_parity.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("wck_resil_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

std::uint64_t counter_value(const std::string& name) {
  const auto snap = telemetry::MetricsRegistry::global().snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// Flips one byte of a file in place (out-of-band corruption, as a
/// failing disk would).
void corrupt_file(const std::filesystem::path& path, std::size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

CheckpointManager::Options fast_options(std::size_t keep = 3, int attempts = 4) {
  CheckpointManager::Options options;
  options.keep_generations = keep;
  options.retry.max_attempts = attempts;
  options.retry.sleep_between_attempts = false;
  return options;
}

NdArray<double> test_field(std::uint64_t seed = 7) {
  return make_smooth_field(Shape{16, 16}, seed);
}

// ---------------------------------------------------------------- plans

TEST(FaultPlan, ParsesFullGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "write:torn@5:every=9:byte=100;fsync:fail@4:count=2;"
      "read:flip@2:bit=3:byte=7:seed=99;rename:fail@1:path=MANIFEST");
  ASSERT_EQ(plan.rules.size(), 4u);
  EXPECT_EQ(plan.rules[0].op, IoOp::kWrite);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kTorn);
  EXPECT_EQ(plan.rules[0].nth, 5u);
  EXPECT_EQ(plan.rules[0].every, 9u);
  EXPECT_EQ(plan.rules[0].byte_offset, 100u);
  EXPECT_TRUE(plan.rules[0].has_byte);
  EXPECT_EQ(plan.rules[1].op, IoOp::kFsync);
  EXPECT_EQ(plan.rules[1].count, 2u);
  EXPECT_EQ(plan.rules[2].bit, 3);
  EXPECT_TRUE(plan.rules[2].has_bit);
  EXPECT_EQ(plan.rules[2].seed, 99u);
  EXPECT_EQ(plan.rules[3].path_substr, "MANIFEST");
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("write:fail"), InvalidArgumentError);
  EXPECT_THROW((void)FaultPlan::parse("bogus:fail@1"), InvalidArgumentError);
  EXPECT_THROW((void)FaultPlan::parse("write:bogus@1"), InvalidArgumentError);
  EXPECT_THROW((void)FaultPlan::parse("write:fail@0"), InvalidArgumentError);
  EXPECT_THROW((void)FaultPlan::parse("write:fail@1:frob=2"), InvalidArgumentError);
  EXPECT_THROW((void)FaultPlan::parse("read:torn@1"), InvalidArgumentError);
  EXPECT_THROW((void)FaultPlan::parse("write:flip@1"), InvalidArgumentError);
  EXPECT_THROW((void)FaultPlan::parse("read:flip@1:bit=8"), InvalidArgumentError);
}

// -------------------------------------------------------------- backend

TEST(FaultBackend, FailsExactlyTheConfiguredWrites) {
  TempDir dir;
  FaultInjectingBackend io(FaultPlan::parse("write:fail@2:every=3"), posix_backend());
  const Bytes data{std::byte{1}, std::byte{2}, std::byte{3}};
  int failures = 0;
  for (int i = 1; i <= 8; ++i) {
    try {
      io.write_file(dir.path() / ("f" + std::to_string(i)), data);
    } catch (const IoError&) {
      ++failures;
      EXPECT_TRUE(i == 2 || i == 5 || i == 8) << "unexpected failure at write " << i;
    }
  }
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(io.fault_count(), 3u);
}

TEST(FaultBackend, TornWriteLeavesExactPrefix) {
  TempDir dir;
  FaultInjectingBackend io(FaultPlan::parse("write:torn@1:byte=5"), posix_backend());
  Bytes data(64);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i);
  const auto path = dir.path() / "torn";
  EXPECT_THROW(io.write_file(path, data), IoError);
  const Bytes on_disk = posix_backend().read_file(path);
  ASSERT_EQ(on_disk.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(on_disk[i], data[i]);
}

TEST(FaultBackend, ReadFlipIsDeterministic) {
  TempDir dir;
  Bytes data(256);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i);
  const auto path = dir.path() / "blob";
  posix_backend().write_file(path, data);

  FaultInjectingBackend a(FaultPlan::parse("read:flip@1:seed=42"), posix_backend());
  FaultInjectingBackend b(FaultPlan::parse("read:flip@1:seed=42"), posix_backend());
  const Bytes ra = a.read_file(path);
  const Bytes rb = b.read_file(path);
  EXPECT_NE(ra, data);  // one bit differs
  EXPECT_EQ(ra, rb);    // but the same bit both times
}

TEST(FaultBackend, PathFilterScopesRules) {
  TempDir dir;
  FaultInjectingBackend io(FaultPlan::parse("write:fail@1:every=1:path=victim"),
                           posix_backend());
  const Bytes data{std::byte{9}};
  EXPECT_NO_THROW(io.write_file(dir.path() / "bystander", data));
  EXPECT_THROW(io.write_file(dir.path() / "victim", data), IoError);
  EXPECT_NO_THROW(io.write_file(dir.path() / "bystander2", data));
}

TEST(AtomicWriteDurable, NoTempResidueAfterFault) {
  TempDir dir;
  FaultInjectingBackend io(FaultPlan::parse("fsync:fail@1"), posix_backend());
  Bytes data(32, std::byte{7});
  const auto target = dir.path() / "commit.bin";
  EXPECT_THROW(atomic_write_durable(io, target, data), IoError);
  // Target untouched, temp removed.
  EXPECT_FALSE(posix_backend().exists(target));
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path())) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 0u);
  // A clean retry commits.
  EXPECT_NO_THROW(atomic_write_durable(io, target, data));
  EXPECT_EQ(posix_backend().read_file(target), data);
}

TEST(WriteCheckpoint, ConcurrentWritersToSamePathCannotCollide) {
  // Regression for the fixed shared-".tmp" commit: many writers racing
  // on one target must all succeed and leave a valid, complete file.
  TempDir dir;
  NdArray<double> field = test_field();
  const NullCodec codec;
  const auto path = dir.path() / "shared.wck";
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      CheckpointRegistry reg;
      NdArray<double> copy = field;
      copy[0] = static_cast<double>(t);
      reg.add("state", &copy);
      (void)write_checkpoint(path, reg, codec, static_cast<std::uint64_t>(t));
    });
  }
  for (auto& t : threads) t.join();

  NdArray<double> restored;
  CheckpointRegistry reg;
  reg.add("state", &restored);
  const CheckpointInfo info = read_checkpoint(path, reg);
  EXPECT_LT(info.step, 8u);
  EXPECT_DOUBLE_EQ(restored[0], static_cast<double>(info.step));
  // No temp residue.
  for (const auto& e : std::filesystem::directory_iterator(dir.path())) {
    EXPECT_EQ(e.path(), path) << "leftover " << e.path();
  }
}

// -------------------------------------------------------------- manager

TEST(CheckpointManager, RetriesTransientWriteFaults) {
  TempDir dir;
  FaultInjectingBackend io(FaultPlan::parse("write:fail@1:count=2"), posix_backend());
  const NullCodec codec;
  CheckpointManager manager(dir.path(), codec, fast_options(), &io);
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);

  const std::uint64_t retries_before = counter_value("ckpt.write.retries");
  EXPECT_NO_THROW((void)manager.write(reg, 1));
  EXPECT_GE(counter_value("ckpt.write.retries"), retries_before + 1);

  NdArray<double> restored;
  CheckpointRegistry rreg;
  rreg.add("state", &restored);
  const RestoreOutcome outcome = manager.restore(rreg);
  EXPECT_EQ(outcome.source, RestoreSource::kPrimary);
  EXPECT_EQ(outcome.step, 1u);
  EXPECT_EQ(restored, state);
}

TEST(CheckpointManager, FlightRecorderCapturesFaultRetryCommitSequence) {
  // The flight recorder must preserve the *order* of what happened: the
  // injected fault, the retry it caused, and the commit that finally
  // succeeded — that sequence is what a post-mortem reconstructs.
  telemetry::set_enabled(true);
  TempDir dir;
  FaultInjectingBackend io(FaultPlan::parse("write:fail@1:count=2"), posix_backend());
  const NullCodec codec;
  CheckpointManager manager(dir.path(), codec, fast_options(), &io);
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);

  auto& log = telemetry::EventLog::global();
  const std::uint64_t first_seq = log.total();
  EXPECT_NO_THROW((void)manager.write(reg, 1));
  NdArray<double> restored;
  CheckpointRegistry rreg;
  rreg.add("state", &restored);
  (void)manager.restore(rreg);

  std::vector<telemetry::Event> events;
  for (const telemetry::Event& e : log.snapshot()) {
    if (e.seq >= first_seq) events.push_back(e);
  }
  const auto index_of = [&](telemetry::EventKind kind) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind == kind) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };
  const std::ptrdiff_t begin = index_of(telemetry::EventKind::kCkptBegin);
  const std::ptrdiff_t fault = index_of(telemetry::EventKind::kFaultInjected);
  const std::ptrdiff_t retry = index_of(telemetry::EventKind::kCkptRetry);
  const std::ptrdiff_t commit = index_of(telemetry::EventKind::kCkptCommit);
  const std::ptrdiff_t done = index_of(telemetry::EventKind::kRestoreDone);
  ASSERT_GE(begin, 0);
  ASSERT_GE(fault, 0);
  ASSERT_GE(retry, 0);
  ASSERT_GE(commit, 0);
  ASSERT_GE(done, 0);
  EXPECT_LT(begin, fault);
  EXPECT_LT(fault, retry);
  EXPECT_LT(retry, commit);
  EXPECT_LT(commit, done);
  EXPECT_EQ(events[static_cast<std::size_t>(commit)].step, 1u);
  // The fault event names the op and kind for the post-mortem reader.
  EXPECT_NE(events[static_cast<std::size_t>(fault)].detail.find("write:fail"),
            std::string::npos);
}

TEST(CheckpointManager, GivesUpAfterMaxAttempts) {
  TempDir dir;
  FaultInjectingBackend io(FaultPlan::parse("write:fail@1:every=1"), posix_backend());
  const NullCodec codec;
  CheckpointManager manager(dir.path(), codec, fast_options(3, 3), &io);
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);

  const std::uint64_t giveups_before = counter_value("ckpt.write.giveups");
  EXPECT_THROW((void)manager.write(reg, 1), IoError);
  EXPECT_EQ(counter_value("ckpt.write.giveups"), giveups_before + 1);
  // Exactly max_attempts writes were attempted for the generation file.
  EXPECT_GE(io.fault_count(), 3u);
}

TEST(CheckpointManager, RotationKeepsNewestK) {
  TempDir dir;
  const NullCodec codec;
  CheckpointManager manager(dir.path(), codec, fast_options(3), &posix_backend());
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  for (std::uint64_t step = 1; step <= 6; ++step) {
    state[0] = static_cast<double>(step);
    (void)manager.write(reg, step);
  }
  ASSERT_EQ(manager.generations().size(), 3u);
  EXPECT_EQ(manager.generations()[0].step, 6u);
  EXPECT_EQ(manager.generations()[2].step, 4u);
  EXPECT_FALSE(posix_backend().exists(dir.path() / "ckpt.1.wck"));
  EXPECT_FALSE(posix_backend().exists(dir.path() / "ckpt.3.wck"));
  EXPECT_TRUE(posix_backend().exists(dir.path() / "ckpt.4.wck"));
  EXPECT_TRUE(posix_backend().exists(dir.path() / "ckpt.6.wck"));
}

TEST(CheckpointManager, RestoreFallsBackAcrossCorruptGenerations) {
  TempDir dir;
  const NullCodec codec;
  CheckpointManager manager(dir.path(), codec, fast_options(3), &posix_backend());
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  std::vector<NdArray<double>> committed;
  for (std::uint64_t step = 1; step <= 3; ++step) {
    state[0] = 100.0 + static_cast<double>(step);
    (void)manager.write(reg, step);
    committed.push_back(state);
  }
  // Corrupt the two newest generations out-of-band.
  corrupt_file(dir.path() / "ckpt.3.wck", 40);
  corrupt_file(dir.path() / "ckpt.2.wck", 40);

  const std::uint64_t fallbacks_before = counter_value("ckpt.restore.fallbacks");
  NdArray<double> restored;
  CheckpointRegistry rreg;
  rreg.add("state", &restored);
  const RestoreOutcome outcome = manager.restore(rreg);
  EXPECT_EQ(outcome.source, RestoreSource::kOlderGeneration);
  EXPECT_EQ(outcome.step, 1u);
  EXPECT_EQ(outcome.generations_tried, 3u);
  EXPECT_EQ(restored, committed[0]);
  EXPECT_EQ(counter_value("ckpt.restore.fallbacks"), fallbacks_before + 1);
}

TEST(CheckpointManager, ParityReconstructionWhenAllGenerationsLost) {
  TempDir dir;
  const NullCodec codec;
  CheckpointManager manager(dir.path(), codec, fast_options(2), &posix_backend());
  InMemoryCheckpointStore store(2, 2);
  manager.attach_parity_store(&store, 0);

  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  (void)manager.write(reg, 1);
  state[0] = 42.0;
  (void)manager.write(reg, 2);
  const NdArray<double> committed = state;

  corrupt_file(dir.path() / "ckpt.1.wck", 30);
  corrupt_file(dir.path() / "ckpt.2.wck", 30);
  // Lose the rank's own in-memory copy too: retrieval must XOR-recover
  // it from the parity group.
  store.fail_rank(0);
  ASSERT_FALSE(store.rank_alive(0));

  const std::uint64_t parity_before = counter_value("ckpt.restore.parity_reconstructions");
  NdArray<double> restored;
  CheckpointRegistry rreg;
  rreg.add("state", &restored);
  const RestoreOutcome outcome = manager.restore(rreg);
  EXPECT_EQ(outcome.source, RestoreSource::kParity);
  EXPECT_EQ(outcome.step, 2u);
  EXPECT_EQ(restored, committed);
  EXPECT_EQ(counter_value("ckpt.restore.parity_reconstructions"), parity_before + 1);
}

TEST(CheckpointManager, ThrowsWhenNothingIsRestorable) {
  TempDir dir;
  const NullCodec codec;
  CheckpointManager manager(dir.path(), codec, fast_options(2), &posix_backend());
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  (void)manager.write(reg, 1);
  corrupt_file(dir.path() / "ckpt.1.wck", 30);

  NdArray<double> restored;
  CheckpointRegistry rreg;
  rreg.add("state", &restored);
  EXPECT_THROW((void)manager.restore(rreg), CorruptDataError);
}

TEST(CheckpointManager, ManifestSurvivesRestart) {
  TempDir dir;
  const NullCodec codec;
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  {
    CheckpointManager manager(dir.path(), codec, fast_options(3), &posix_backend());
    for (std::uint64_t step = 1; step <= 4; ++step) (void)manager.write(reg, step);
  }
  CheckpointManager reborn(dir.path(), codec, fast_options(3), &posix_backend());
  ASSERT_EQ(reborn.generations().size(), 3u);
  EXPECT_EQ(reborn.generations()[0].step, 4u);

  NdArray<double> restored;
  CheckpointRegistry rreg;
  rreg.add("state", &restored);
  EXPECT_EQ(reborn.restore(rreg).step, 4u);
}

TEST(CheckpointManager, RebuildsFromScanWhenManifestLost) {
  TempDir dir;
  const NullCodec codec;
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  {
    CheckpointManager manager(dir.path(), codec, fast_options(3), &posix_backend());
    for (std::uint64_t step = 1; step <= 3; ++step) (void)manager.write(reg, step);
  }
  ASSERT_TRUE(posix_backend().remove_file(dir.path() / "MANIFEST"));

  CheckpointManager reborn(dir.path(), codec, fast_options(3), &posix_backend());
  ASSERT_EQ(reborn.generations().size(), 3u);
  NdArray<double> restored;
  CheckpointRegistry rreg;
  rreg.add("state", &restored);
  const RestoreOutcome outcome = reborn.restore(rreg);
  EXPECT_EQ(outcome.step, 3u);
  EXPECT_EQ(restored, state);
}

// Regression test for the monitor introduced with the thread-safety
// annotation pass: CheckpointManager previously had no lock at all, so
// concurrent write() calls raced on the generation list and manifest
// commits could interleave. Under the monitor, every write must land as
// its own generation and the manifest must stay loadable.
TEST(CheckpointManager, ConcurrentWritersKeepGenerationsConsistent) {
  TempDir dir;
  const NullCodec codec;
  constexpr int kThreads = 4;
  constexpr int kStepsPerThread = 6;
  constexpr std::size_t kTotal = kThreads * kStepsPerThread;
  CheckpointManager manager(dir.path(), codec, fast_options(kTotal), &posix_backend());

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&manager, t] {
      NdArray<double> state = test_field(static_cast<std::uint64_t>(t + 1));
      CheckpointRegistry reg;
      reg.add("state", &state);
      for (int s = 0; s < kStepsPerThread; ++s) {
        const auto step = static_cast<std::uint64_t>(t * kStepsPerThread + s + 1);
        (void)manager.write(reg, step);
      }
    });
  }
  for (auto& w : writers) w.join();

  // Every write made it in, with no duplicated or lost steps.
  const auto generations = manager.generations();
  ASSERT_EQ(generations.size(), kTotal);
  std::set<std::uint64_t> steps;
  for (const auto& gen : generations) steps.insert(gen.step);
  EXPECT_EQ(steps.size(), kTotal);
  EXPECT_EQ(*steps.rbegin(), kTotal);

  // The manifest the interleaved writers committed is what a fresh
  // manager loads, and the newest generation restores.
  CheckpointManager reborn(dir.path(), codec, fast_options(kTotal), &posix_backend());
  ASSERT_EQ(reborn.generations().size(), kTotal);
  NdArray<double> restored;
  CheckpointRegistry rreg;
  rreg.add("state", &restored);
  EXPECT_EQ(reborn.restore(rreg).step, kTotal);
}

TEST(CheckpointManager, ScrubQuarantinesCorruptGenerations) {
  TempDir dir;
  const NullCodec codec;
  CheckpointManager manager(dir.path(), codec, fast_options(3), &posix_backend());
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  for (std::uint64_t step = 1; step <= 3; ++step) (void)manager.write(reg, step);
  corrupt_file(dir.path() / "ckpt.2.wck", 25);

  const ScrubReport report = manager.scrub();
  EXPECT_EQ(report.checked, 3u);
  EXPECT_EQ(report.corrupt, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_TRUE(posix_backend().exists(report.quarantined[0]));
  EXPECT_FALSE(posix_backend().exists(dir.path() / "ckpt.2.wck"));
  ASSERT_EQ(manager.generations().size(), 2u);

  // The restore chain no longer touches the quarantined generation.
  NdArray<double> restored;
  CheckpointRegistry rreg;
  rreg.add("state", &restored);
  EXPECT_EQ(manager.restore(rreg).step, 3u);

  // A clean store scrubs clean.
  const ScrubReport again = manager.scrub();
  EXPECT_EQ(again.corrupt, 0u);
}

// --------------------------------------------------------- async writer

TEST(AsyncWriterResilience, WorkerSurvivesThrowingWriteAndDrainKeepsError) {
  TempDir dir;
  FaultInjectingBackend io(FaultPlan::parse("write:fail@1:every=1:path=doomed"),
                           posix_backend());
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  const NullCodec codec;
  AsyncCheckpointWriter writer(codec, {}, &io);

  auto doomed = writer.write_async(dir.path() / "doomed.wck", reg, 1);
  auto healthy1 = writer.write_async(dir.path() / "ok1.wck", reg, 2);
  auto healthy2 = writer.write_async(dir.path() / "ok2.wck", reg, 3);
  writer.drain();

  // drain() must not swallow the stored exception — it is still in the
  // future afterwards — and the worker kept serving later jobs.
  EXPECT_THROW((void)doomed.get(), IoError);
  EXPECT_EQ(healthy1.get().step, 2u);
  EXPECT_EQ(healthy2.get().step, 3u);
  EXPECT_TRUE(posix_backend().exists(dir.path() / "ok2.wck"));
  EXPECT_TRUE(writer.healthy());
}

/// Backend whose writes block until released — makes queue-buildup
/// deterministic for backpressure tests.
class GatedBackend final : public IoBackend {
 public:
  Bytes read_file(const std::filesystem::path& path) override {
    return posix_backend().read_file(path);
  }
  void write_file(const std::filesystem::path& path,
                  std::span<const std::byte> data) override {
    entered_.fetch_add(1);
    std::unique_lock lk(mu_);
    cv_.wait(lk, [this] { return open_; });
    posix_backend().write_file(path, data);
  }
  void fsync_file(const std::filesystem::path& path) override {
    posix_backend().fsync_file(path);
  }
  void fsync_dir(const std::filesystem::path& dir) override {
    posix_backend().fsync_dir(dir);
  }
  void rename_file(const std::filesystem::path& from,
                   const std::filesystem::path& to) override {
    posix_backend().rename_file(from, to);
  }
  bool remove_file(const std::filesystem::path& path) override {
    return posix_backend().remove_file(path);
  }
  bool exists(const std::filesystem::path& path) override {
    return posix_backend().exists(path);
  }
  void open_gate() {
    {
      std::lock_guard lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  /// Writers that have entered write_file (i.e. were dequeued by the
  /// worker) — lets tests wait until the queue state is deterministic.
  [[nodiscard]] int entered() const noexcept { return entered_.load(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<int> entered_{0};
};

TEST(AsyncWriterResilience, RejectNewestBackpressureFailsFutureExplicitly) {
  TempDir dir;
  GatedBackend io;
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  const NullCodec codec;
  AsyncWriterOptions options;
  options.max_queue = 1;
  options.backpressure = AsyncWriterOptions::Backpressure::kRejectNewest;
  AsyncCheckpointWriter writer(codec, options, &io);

  auto first = writer.write_async(dir.path() / "a.wck", reg, 1);  // worker blocks on gate
  // Wait until the worker has dequeued the first job (it is blocked
  // inside write_file on the gate) so the queue state is deterministic.
  while (io.entered() < 1) std::this_thread::yield();
  auto queued = writer.write_async(dir.path() / "b.wck", reg, 2);    // fills the queue
  auto rejected = writer.write_async(dir.path() / "c.wck", reg, 3);  // over capacity

  EXPECT_THROW((void)rejected.get(), IoError);  // fails fast, pre-gate
  io.open_gate();
  writer.drain();
  EXPECT_EQ(first.get().step, 1u);
  EXPECT_EQ(queued.get().step, 2u);
  EXPECT_FALSE(posix_backend().exists(dir.path() / "c.wck"));
}

TEST(AsyncWriterResilience, DropOldestBackpressureEvictsWithError) {
  TempDir dir;
  GatedBackend io;
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  const NullCodec codec;
  AsyncWriterOptions options;
  options.max_queue = 1;
  options.backpressure = AsyncWriterOptions::Backpressure::kDropOldest;
  AsyncCheckpointWriter writer(codec, options, &io);

  auto first = writer.write_async(dir.path() / "a.wck", reg, 1);
  while (io.entered() < 1) std::this_thread::yield();
  auto evicted = writer.write_async(dir.path() / "b.wck", reg, 2);
  auto kept = writer.write_async(dir.path() / "c.wck", reg, 3);  // evicts b

  EXPECT_THROW((void)evicted.get(), IoError);
  io.open_gate();
  writer.drain();
  EXPECT_EQ(first.get().step, 1u);
  EXPECT_EQ(kept.get().step, 3u);
  EXPECT_FALSE(posix_backend().exists(dir.path() / "b.wck"));
}

TEST(AsyncWriterResilience, PersistentFailuresFlipHealthAndFailFast) {
  TempDir dir;
  FaultInjectingBackend io(FaultPlan::parse("write:fail@1:every=1"), posix_backend());
  NdArray<double> state = test_field();
  CheckpointRegistry reg;
  reg.add("state", &state);
  const NullCodec codec;
  AsyncWriterOptions options;
  options.unhealthy_after = 2;
  AsyncCheckpointWriter writer(codec, options, &io);

  auto f1 = writer.write_async(dir.path() / "x1.wck", reg, 1);
  auto f2 = writer.write_async(dir.path() / "x2.wck", reg, 2);
  writer.drain();
  EXPECT_THROW((void)f1.get(), IoError);
  EXPECT_THROW((void)f2.get(), IoError);
  EXPECT_FALSE(writer.healthy());
  EXPECT_EQ(writer.consecutive_failures(), 2u);

  // Unhealthy: the job is never attempted, the error is immediate and
  // names the health state.
  auto f3 = writer.write_async(dir.path() / "x3.wck", reg, 3);
  try {
    (void)f3.get();
    FAIL() << "expected fail-fast rejection";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("unhealthy"), std::string::npos);
  }
  EXPECT_EQ(writer.pending(), 0u);
}

// --------------------------------------------------- distributed ranks

ClimateConfig small_grid() {
  ClimateConfig cfg;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.nz = 2;
  return cfg;
}

TEST(DistributedResilience, PerRankFaultInjectionIsScopedToTheRank) {
  TempDir dir;
  const NullCodec codec;
  World world(2);
  world.run([&](Comm& comm) {
    DistributedClimate model(small_grid(), comm);
    model.run(3);
    // Rank 0's storage path is broken; rank 1's is healthy.
    FaultInjectingBackend faulty(FaultPlan::parse("write:fail@1:every=1"),
                                 posix_backend());
    IoBackend* io = comm.rank() == 0 ? static_cast<IoBackend*>(&faulty) : nullptr;
    if (comm.rank() == 0) {
      EXPECT_THROW((void)model.write_local_checkpoint(dir.path(), codec, io), IoError);
    } else {
      EXPECT_NO_THROW((void)model.write_local_checkpoint(dir.path(), codec, io));
    }
    comm.barrier();
    EXPECT_FALSE(posix_backend().exists(dir.path() / "rank_0_step_3.wck"));
    EXPECT_TRUE(posix_backend().exists(dir.path() / "rank_1_step_3.wck"));
  });
}

TEST(DistributedResilience, ParityGroupRecoversALostRank) {
  const NullCodec codec;
  constexpr std::size_t kRanks = 4;
  InMemoryCheckpointStore store(kRanks, 2);
  World world(kRanks);

  std::vector<NdArray<double>> zeta_at_ckpt(kRanks);
  std::vector<NdArray<double>> temp_at_ckpt(kRanks);

  world.run([&](Comm& comm) {
    DistributedClimate model(small_grid(), comm);
    model.run(5);
    model.store_checkpoint_in_memory(store, codec);
    zeta_at_ckpt[comm.rank()] = model.local_vorticity();
    temp_at_ckpt[comm.rank()] = model.local_temperature();
    comm.barrier();

    // Diverge past the checkpoint, then lose rank 1's memory.
    model.run(4);
    comm.barrier();
    if (comm.rank() == 0) store.fail_rank(1);
    comm.barrier();

    const bool reconstructed = model.restore_checkpoint_from_memory(store);
    EXPECT_EQ(reconstructed, comm.rank() == 1);
    EXPECT_EQ(model.step_count(), 5u);
    EXPECT_EQ(model.local_vorticity(), zeta_at_ckpt[comm.rank()]);
    EXPECT_EQ(model.local_temperature(), temp_at_ckpt[comm.rank()]);

    // The restored ensemble keeps stepping identically to an unfailed
    // reference (collective health check).
    model.run(2);
  });
}

TEST(DistributedResilience, DoubleFailureInGroupIsLoud) {
  const NullCodec codec;
  InMemoryCheckpointStore store(4, 2);
  World world(4);
  world.run([&](Comm& comm) {
    DistributedClimate model(small_grid(), comm);
    model.run(2);
    model.store_checkpoint_in_memory(store, codec);
    comm.barrier();
    if (comm.rank() == 0) {
      store.fail_rank(0);
      store.fail_rank(1);  // both members of group 0
    }
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_THROW((void)model.restore_checkpoint_from_memory(store), CorruptDataError);
    }
  });
}

}  // namespace
}  // namespace wck
