// End-to-end tests for the checkpoint store service over a real
// Unix-domain socket: StoreServer + StoreClient round-trips, typed
// error mapping across the wire, malformed-frame handling, shutdown
// semantics, and a small multi-client concurrency smoke (the full-size
// version lives in `wckpt soak --server`).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <optional>
#include <thread>
#include <variant>
#include <vector>

#include "ckpt/codec.hpp"
#include "core/synthetic.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("wck_srv_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

/// Service + server wired into a TempDir, with the socket inside it.
struct Harness {
  explicit Harness(server::CheckpointService::Options opts = {})
      : options([&] {
          opts.root = dir.path() / "store";
          opts.retry.sleep_between_attempts = false;
          return opts;
        }()),
        service(codec, options),
        server(service, (dir.path() / "store.sock").string()) {}

  TempDir dir;
  NullCodec codec;
  server::CheckpointService::Options options;
  server::CheckpointService service;
  server::StoreServer server;
};

NdArray<double> field_for(std::uint64_t seed) {
  return make_smooth_field(Shape{10, 14}, seed);
}

TEST(StoreServer, PingPutGetStatRoundTrip) {
  Harness h;
  StoreClient client = StoreClient::connect(h.server.socket_path());
  client.ping();

  const NdArray<double> state = field_for(7);
  const net::PutOkResponse ok = client.put("alpha", 7, state);
  EXPECT_EQ(ok.step, 7u);
  EXPECT_EQ(ok.generations, 1u);
  EXPECT_GT(ok.stored_bytes, 0u);

  const StoreClient::GetResult got = client.get("alpha");
  EXPECT_EQ(got.step, 7u);
  EXPECT_EQ(got.source, RestoreSource::kPrimary);
  ASSERT_EQ(got.array.shape(), state.shape());
  // NullCodec end to end: the restore is bit-exact.
  EXPECT_TRUE(std::equal(got.array.values().begin(), got.array.values().end(),
                         state.values().begin()));

  const net::StatOkResponse stat = client.stat();
  ASSERT_EQ(stat.stats.size(), 1u);
  EXPECT_EQ(stat.stats[0].name, "alpha");
  EXPECT_EQ(stat.stats[0].generations, 1u);
  EXPECT_EQ(stat.stats[0].newest_step, 7u);
}

TEST(StoreServer, TypedErrorsCrossTheWire) {
  server::CheckpointService::Options opts;
  opts.keep_generations = 2;
  Harness h(opts);
  StoreClient client = StoreClient::connect(h.server.socket_path());

  EXPECT_THROW((void)client.get("nosuch"), NotFoundError);
  EXPECT_THROW((void)client.stat("nosuch"), NotFoundError);
  EXPECT_THROW((void)client.put("Bad Tenant!", 1, field_for(1)), InvalidArgumentError);
  // The connection survives every typed rejection.
  client.ping();
}

TEST(StoreServer, QuotaExceededArrivesTyped) {
  // Probe one generation's size, then allot exactly that much.
  std::uint64_t gen = 0;
  {
    Harness probe;
    StoreClient client = StoreClient::connect(probe.server.socket_path());
    gen = client.put("t", 1, field_for(1)).stored_bytes;
  }

  server::CheckpointService::Options opts;
  opts.keep_generations = 2;
  opts.tenant_quota_bytes = gen;
  Harness h(opts);
  StoreClient client = StoreClient::connect(h.server.socket_path());

  (void)client.put("t", 1, field_for(1));
  EXPECT_THROW((void)client.put("t", 2, field_for(2)), QuotaExceededError);
  // The store is intact, not corrupted: step 1 still restores.
  EXPECT_EQ(client.get("t").step, 1u);
}

TEST(StoreServer, MalformedBodyKeepsStreamMalformedFrameEndsIt) {
  Harness h;
  net::UnixStream stream = net::UnixStream::connect_to(h.server.socket_path());
  net::FrameDecoder decoder;
  const auto read_reply = [&]() -> net::AnyMessage {
    for (;;) {
      if (std::optional<net::Frame> f = decoder.next()) return net::decode_message(*f);
      Bytes chunk;
      if (stream.recv_some(chunk, 4096) == 0) throw IoError("eof");
      decoder.feed(chunk);
    }
  };

  // A well-framed request with an unassigned type byte: typed
  // BadRequest reply, stream stays usable.
  stream.send_all(net::encode_frame(0x30, Bytes{}));
  {
    const net::AnyMessage reply = read_reply();
    const auto* err = std::get_if<net::ErrorResponse>(&reply);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, net::ErrorCode::kBadRequest);
  }
  stream.send_all(net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPing),
                                    net::encode(net::PingRequest{})));
  EXPECT_TRUE(std::holds_alternative<net::PongResponse>(read_reply()));

  // A frame with a corrupted header has no resynchronization point: the
  // server answers BadRequest once, then hangs up.
  Bytes bad = net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPing), Bytes{});
  bad[0] = std::byte{0x00};
  stream.send_all(bad);
  {
    const net::AnyMessage reply = read_reply();
    const auto* err = std::get_if<net::ErrorResponse>(&reply);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, net::ErrorCode::kBadRequest);
  }
  Bytes rest;
  EXPECT_EQ(stream.recv_some(rest, 4096), 0u) << "server kept a poisoned stream open";
}

TEST(StoreServer, ClientShutdownStopsTheServer) {
  Harness h;
  {
    StoreClient client = StoreClient::connect(h.server.socket_path());
    (void)client.put("t", 1, field_for(1));
    client.shutdown_server();  // acknowledged before the server acts
  }
  h.server.wait_for_shutdown();
  h.server.stop();
  EXPECT_THROW((void)StoreClient::connect(h.server.socket_path()), IoError);
  // The data the server accepted is durable past its lifetime.
  EXPECT_TRUE(std::filesystem::exists(h.options.root / "t" / "MANIFEST"));
}

TEST(StoreServer, ConcurrentClientsSmoke) {
  Harness h;
  constexpr int kClients = 4;
  constexpr std::uint64_t kCycles = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      StoreClient client = StoreClient::connect(h.server.socket_path());
      const std::string tenant = "rank-" + std::to_string(c);
      for (std::uint64_t step = 1; step <= kCycles; ++step) {
        const std::uint64_t seed = static_cast<std::uint64_t>(c) * 1000 + step;
        (void)client.put(tenant, step, field_for(seed));
        const StoreClient::GetResult got = client.get(tenant);
        const NdArray<double> expect =
            field_for(static_cast<std::uint64_t>(c) * 1000 + got.step);
        if (!std::equal(got.array.values().begin(), got.array.values().end(),
                        expect.values().begin())) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(h.server.connections_accepted(), static_cast<std::uint64_t>(kClients));

  StoreClient client = StoreClient::connect(h.server.socket_path());
  EXPECT_EQ(client.stat().stats.size(), static_cast<std::size_t>(kClients));
}

}  // namespace
}  // namespace wck
