// End-to-end tests for the checkpoint store service over a real
// Unix-domain socket: StoreServer + StoreClient round-trips, typed
// error mapping across the wire, malformed-frame handling, shutdown
// semantics, and a small multi-client concurrency smoke (the full-size
// version lives in `wckpt soak --server`).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <variant>
#include <vector>

#include "ckpt/codec.hpp"
#include "core/synthetic.hpp"
#include "io/io_backend.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("wck_srv_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

/// Service + server wired into a TempDir, with the socket inside it.
struct Harness {
  explicit Harness(server::CheckpointService::Options opts = {},
                   server::StoreServer::Options server_opts = {},
                   IoBackend* io = nullptr)
      : options([&] {
          opts.root = dir.path() / "store";
          opts.retry.sleep_between_attempts = false;
          return opts;
        }()),
        service(codec, options, io),
        server(service, (dir.path() / "store.sock").string(), server_opts) {}

  TempDir dir;
  NullCodec codec;
  server::CheckpointService::Options options;
  server::CheckpointService service;
  server::StoreServer server;
};

NdArray<double> field_for(std::uint64_t seed) {
  return make_smooth_field(Shape{10, 14}, seed);
}

TEST(StoreServer, PingPutGetStatRoundTrip) {
  Harness h;
  StoreClient client = StoreClient::connect(h.server.socket_path());
  client.ping();

  const NdArray<double> state = field_for(7);
  const net::PutOkResponse ok = client.put("alpha", 7, state);
  EXPECT_EQ(ok.step, 7u);
  EXPECT_EQ(ok.generations, 1u);
  EXPECT_GT(ok.stored_bytes, 0u);

  const StoreClient::GetResult got = client.get("alpha");
  EXPECT_EQ(got.step, 7u);
  EXPECT_EQ(got.source, RestoreSource::kPrimary);
  ASSERT_EQ(got.array.shape(), state.shape());
  // NullCodec end to end: the restore is bit-exact.
  EXPECT_TRUE(std::equal(got.array.values().begin(), got.array.values().end(),
                         state.values().begin()));

  const net::StatOkResponse stat = client.stat();
  ASSERT_EQ(stat.stats.size(), 1u);
  EXPECT_EQ(stat.stats[0].name, "alpha");
  EXPECT_EQ(stat.stats[0].generations, 1u);
  EXPECT_EQ(stat.stats[0].newest_step, 7u);
}

TEST(StoreServer, TypedErrorsCrossTheWire) {
  server::CheckpointService::Options opts;
  opts.keep_generations = 2;
  Harness h(opts);
  StoreClient client = StoreClient::connect(h.server.socket_path());

  EXPECT_THROW((void)client.get("nosuch"), NotFoundError);
  EXPECT_THROW((void)client.stat("nosuch"), NotFoundError);
  EXPECT_THROW((void)client.put("Bad Tenant!", 1, field_for(1)), InvalidArgumentError);
  // The connection survives every typed rejection.
  client.ping();
}

TEST(StoreServer, QuotaExceededArrivesTyped) {
  // Probe one generation's size, then allot exactly that much.
  std::uint64_t gen = 0;
  {
    Harness probe;
    StoreClient client = StoreClient::connect(probe.server.socket_path());
    gen = client.put("t", 1, field_for(1)).stored_bytes;
  }

  server::CheckpointService::Options opts;
  opts.keep_generations = 2;
  opts.tenant_quota_bytes = gen;
  Harness h(opts);
  StoreClient client = StoreClient::connect(h.server.socket_path());

  (void)client.put("t", 1, field_for(1));
  EXPECT_THROW((void)client.put("t", 2, field_for(2)), QuotaExceededError);
  // The store is intact, not corrupted: step 1 still restores.
  EXPECT_EQ(client.get("t").step, 1u);
}

TEST(StoreServer, MalformedBodyKeepsStreamMalformedFrameEndsIt) {
  Harness h;
  net::UnixStream stream = net::UnixStream::connect_to(h.server.socket_path());
  net::FrameDecoder decoder;
  const auto read_reply = [&]() -> net::AnyMessage {
    for (;;) {
      if (std::optional<net::Frame> f = decoder.next()) return net::decode_message(*f);
      Bytes chunk;
      if (stream.recv_some(chunk, 4096) == 0) throw IoError("eof");
      decoder.feed(chunk);
    }
  };

  // A well-framed request with an unassigned type byte: typed
  // BadRequest reply, stream stays usable.
  stream.send_all(net::encode_frame(0x30, Bytes{}));
  {
    const net::AnyMessage reply = read_reply();
    const auto* err = std::get_if<net::ErrorResponse>(&reply);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, net::ErrorCode::kBadRequest);
  }
  stream.send_all(net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPing),
                                    net::encode(net::PingRequest{})));
  EXPECT_TRUE(std::holds_alternative<net::PongResponse>(read_reply()));

  // A frame with a corrupted header has no resynchronization point: the
  // server answers BadRequest once, then hangs up.
  Bytes bad = net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPing), Bytes{});
  bad[0] = std::byte{0x00};
  stream.send_all(bad);
  {
    const net::AnyMessage reply = read_reply();
    const auto* err = std::get_if<net::ErrorResponse>(&reply);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, net::ErrorCode::kBadRequest);
  }
  Bytes rest;
  EXPECT_EQ(stream.recv_some(rest, 4096), 0u) << "server kept a poisoned stream open";
}

TEST(StoreServer, ClientShutdownStopsTheServer) {
  Harness h;
  {
    StoreClient client = StoreClient::connect(h.server.socket_path());
    (void)client.put("t", 1, field_for(1));
    client.shutdown_server();  // acknowledged before the server acts
  }
  h.server.wait_for_shutdown();
  h.server.stop();
  EXPECT_THROW((void)StoreClient::connect(h.server.socket_path()), IoError);
  // The data the server accepted is durable past its lifetime.
  EXPECT_TRUE(std::filesystem::exists(h.options.root / "t" / "MANIFEST"));
}

TEST(StoreServer, ConcurrentClientsSmoke) {
  Harness h;
  constexpr int kClients = 4;
  constexpr std::uint64_t kCycles = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      StoreClient client = StoreClient::connect(h.server.socket_path());
      const std::string tenant = "rank-" + std::to_string(c);
      for (std::uint64_t step = 1; step <= kCycles; ++step) {
        const std::uint64_t seed = static_cast<std::uint64_t>(c) * 1000 + step;
        (void)client.put(tenant, step, field_for(seed));
        const StoreClient::GetResult got = client.get(tenant);
        const NdArray<double> expect =
            field_for(static_cast<std::uint64_t>(c) * 1000 + got.step);
        if (!std::equal(got.array.values().begin(), got.array.values().end(),
                        expect.values().begin())) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(h.server.connections_accepted(), static_cast<std::uint64_t>(kClients));

  StoreClient client = StoreClient::connect(h.server.socket_path());
  EXPECT_EQ(client.stat().stats.size(), static_cast<std::size_t>(kClients));
}

// ----------------------------------------- deadlines, drain, retries

TEST(StoreServer, IdleConnectionReapedWhileOthersProgress) {
  server::StoreServer::Options so;
  so.idle_timeout_ms = 150;  // aggressive, so the test is quick
  Harness h({}, so);

  // A connection that never sends a byte: the hung peer.
  net::UnixStream hung = net::UnixStream::connect_to(h.server.socket_path());

  // Another client keeps making progress the whole time. It gets the
  // same aggressive reaping as the hung peer, so it needs the retry
  // layer to reconnect when its own idle connection is collected.
  StoreClient::Options copts;
  copts.retry.max_attempts = 3;
  copts.retry.sleep_between_attempts = false;
  StoreClient client = StoreClient::connect(h.server.socket_path(), copts);
  (void)client.put("live", 1, field_for(1));

  // The hung peer is reaped within its deadline: EOF, not a hang. The
  // 5s recv bound is the test's own safety net, not the expectation.
  Bytes chunk;
  EXPECT_EQ(hung.recv_some(chunk, 4096, 5000), 0u);
  EXPECT_GE(h.server.connections_idle_reaped(), 1u);

  // Reaping one connection cost the others nothing.
  (void)client.put("live", 2, field_for(2));
  EXPECT_EQ(client.get("live").step, 2u);
}

TEST(StoreServer, MidFrameStallGetsTypedTimeoutThenHangup) {
  server::StoreServer::Options so;
  so.read_timeout_ms = 150;
  Harness h({}, so);

  net::UnixStream stream = net::UnixStream::connect_to(h.server.socket_path());
  net::FrameDecoder decoder;
  const auto read_reply = [&]() -> net::AnyMessage {
    for (;;) {
      if (std::optional<net::Frame> f = decoder.next()) return net::decode_message(*f);
      Bytes chunk;
      if (stream.recv_some(chunk, 4096) == 0) throw IoError("eof");
      decoder.feed(chunk);
    }
  };

  // A frame that starts arriving and then stalls: a slow-loris sender.
  const Bytes frame = net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPing),
                                        net::encode(net::PingRequest{}));
  ASSERT_GT(frame.size(), 1u);
  stream.send_all(std::span<const std::byte>(frame).first(frame.size() - 1));

  // The server names the problem (typed kTimeout), then hangs up — a
  // half-delivered frame has no resynchronization point.
  const net::AnyMessage reply = read_reply();
  const auto* err = std::get_if<net::ErrorResponse>(&reply);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, net::ErrorCode::kTimeout);
  Bytes rest;
  EXPECT_EQ(stream.recv_some(rest, 4096, 5000), 0u);
}

TEST(StoreServer, SilentServerSurfacesTypedTimeout) {
  // A listener that accepts and reads but never replies — the pure
  // "silent server". The client's reply deadline must turn this into a
  // typed TimeoutError, never a hang, even with retry disabled.
  TempDir dir;
  const std::string path = (dir.path() / "dead.sock").string();
  net::UnixListener listener = net::UnixListener::bind_and_listen(path);
  std::thread sink([&] {
    try {
      net::UnixStream peer = listener.accept_next();
      Bytes chunk;
      while (peer.recv_some(chunk, 4096) != 0) {
      }
    } catch (const Error&) {
    }
  });

  StoreClient::Options opts;
  opts.timeout_ms = 150;
  ASSERT_EQ(opts.retry.max_attempts, 1);  // the default: no retry
  {
    StoreClient client = StoreClient::connect(path, opts);
    EXPECT_THROW(client.ping(), TimeoutError);
  }
  listener.close();
  sink.join();
}

TEST(StoreServer, ClientDeathMidPutLeavesStoreConsistent) {
  Harness h;
  StoreClient client = StoreClient::connect(h.server.socket_path());
  (void)client.put("t", 1, field_for(1));

  {
    // A client that dies halfway through sending a put: the server must
    // treat the torn frame as a dead peer, not as data.
    net::UnixStream dying = net::UnixStream::connect_to(h.server.socket_path());
    net::PutRequest req;
    req.tenant = "t";
    req.step = 2;
    req.request_id = 99;
    const NdArray<double> field = field_for(2);
    req.shape = field.shape();
    req.values.assign(field.values().begin(), field.values().end());
    const Bytes frame =
        net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPut), net::encode(req));
    dying.send_all(std::span<const std::byte>(frame).first(frame.size() / 2));
    dying.close();
  }

  // Nothing was committed, nothing was corrupted: step 1 still serves,
  // and the tenant accepts new work.
  EXPECT_EQ(client.get("t").step, 1u);
  (void)client.put("t", 2, field_for(2));
  EXPECT_EQ(client.get("t").step, 2u);
}

TEST(StoreServer, ClientRetryReconnectsAcrossServerRestart) {
  TempDir dir;
  NullCodec codec;
  server::CheckpointService::Options opts;
  opts.root = dir.path() / "store";
  opts.retry.sleep_between_attempts = false;
  server::CheckpointService service(codec, opts);
  const std::string path = (dir.path() / "store.sock").string();

  auto server = std::make_unique<server::StoreServer>(service, path);
  StoreClient::Options copts;
  copts.retry.max_attempts = 5;
  copts.retry.sleep_between_attempts = false;
  StoreClient client = StoreClient::connect(path, copts);
  (void)client.put("t", 1, field_for(1));

  // The server dies and comes back (same service, same disk). The
  // client's next request rides its dead stream into an IoError, and
  // the retry layer reconnects and resends without the caller noticing.
  server.reset();
  server = std::make_unique<server::StoreServer>(service, path);

  const net::PutOkResponse ok = client.put("t", 2, field_for(2));
  EXPECT_FALSE(ok.deduplicated);  // the first send never committed
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(client.get("t").step, 2u);
}

TEST(StoreServer, DuplicatePutByteStreamCommitsOnce) {
  Harness h;
  net::UnixStream stream = net::UnixStream::connect_to(h.server.socket_path());
  net::FrameDecoder decoder;
  const auto read_reply = [&]() -> net::AnyMessage {
    for (;;) {
      if (std::optional<net::Frame> f = decoder.next()) return net::decode_message(*f);
      Bytes chunk;
      if (stream.recv_some(chunk, 4096) == 0) throw IoError("eof");
      decoder.feed(chunk);
    }
  };

  net::PutRequest req;
  req.tenant = "dup";
  req.step = 3;
  req.request_id = 77;
  const NdArray<double> field = field_for(3);
  req.shape = field.shape();
  req.values.assign(field.values().begin(), field.values().end());
  const Bytes frame =
      net::encode_frame(static_cast<std::uint8_t>(net::MessageType::kPut), net::encode(req));

  // The exact byte stream a retrying client produces when the first
  // response is lost: the same put frame, twice, on one connection.
  stream.send_all(frame);
  const net::AnyMessage first = read_reply();
  const auto* ok1 = std::get_if<net::PutOkResponse>(&first);
  ASSERT_NE(ok1, nullptr);
  EXPECT_FALSE(ok1->deduplicated);
  EXPECT_EQ(ok1->request_id, 77u);

  stream.send_all(frame);
  const net::AnyMessage second = read_reply();
  const auto* ok2 = std::get_if<net::PutOkResponse>(&second);
  ASSERT_NE(ok2, nullptr);
  EXPECT_TRUE(ok2->deduplicated);
  EXPECT_EQ(ok2->request_id, 77u);
  EXPECT_EQ(ok2->step, ok1->step);
  EXPECT_EQ(ok2->generations, ok1->generations);
  EXPECT_EQ(ok2->stored_bytes, ok1->stored_bytes);
  EXPECT_EQ(ok2->total_bytes, ok1->total_bytes);

  // Exactly one commit reached the store.
  StoreClient client = StoreClient::connect(h.server.socket_path());
  const net::StatOkResponse stat = client.stat("dup");
  ASSERT_EQ(stat.stats.size(), 1u);
  EXPECT_EQ(stat.stats[0].generations, 1u);
  EXPECT_EQ(stat.stats[0].stored_bytes, ok1->stored_bytes);
}

/// Delegates to the POSIX backend, but blocks the first write_file
/// until release() — a deterministic way to hold a put in flight while
/// the server is told to stop.
class BlockingBackend final : public IoBackend {
 public:
  void wait_for_write() {
    std::unique_lock<std::mutex> lk(mu_);
    entered_cv_.wait(lk, [&] { return entered_; });
  }
  void release() {
    const std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

  Bytes read_file(const std::filesystem::path& path) override {
    return posix_backend().read_file(path);
  }
  void write_file(const std::filesystem::path& path,
                  std::span<const std::byte> data) override {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (!entered_) {
        entered_ = true;
        entered_cv_.notify_all();
        release_cv_.wait(lk, [&] { return released_; });
      }
    }
    posix_backend().write_file(path, data);
  }
  void fsync_file(const std::filesystem::path& path) override {
    posix_backend().fsync_file(path);
  }
  void fsync_dir(const std::filesystem::path& dir) override {
    posix_backend().fsync_dir(dir);
  }
  void rename_file(const std::filesystem::path& from,
                   const std::filesystem::path& to) override {
    posix_backend().rename_file(from, to);
  }
  bool remove_file(const std::filesystem::path& path) override {
    return posix_backend().remove_file(path);
  }
  bool exists(const std::filesystem::path& path) override {
    return posix_backend().exists(path);
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(StoreServer, StopDrainsInFlightRequestToCompletion) {
  BlockingBackend io;
  Harness h({}, {}, &io);  // default drain budget: 5s, plenty
  StoreClient client = StoreClient::connect(h.server.socket_path());

  std::atomic<bool> put_ok{false};
  std::thread putter([&] {
    const net::PutOkResponse ok = client.put("t", 1, field_for(1));
    put_ok = ok.step == 1;
  });
  io.wait_for_write();  // the put is now in flight inside the service

  std::thread stopper([&] { h.server.stop(); });
  // stop() has half-closed the connection; the in-flight put must still
  // run to completion and its reply must still depart.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  io.release();
  stopper.join();
  putter.join();
  EXPECT_TRUE(put_ok.load());

  // The commit the drain protected is durable.
  EXPECT_TRUE(std::filesystem::exists(h.options.root / "t" / "MANIFEST"));
}

TEST(StoreServer, ForcedDrainSurfacesTypedErrorToClient) {
  BlockingBackend io;
  server::StoreServer::Options so;
  so.drain_timeout_ms = 100;  // a budget the gated put will overrun
  Harness h({}, so, &io);
  StoreClient client = StoreClient::connect(h.server.socket_path());

  std::atomic<bool> typed{false};
  std::thread putter([&] {
    try {
      (void)client.put("t", 1, field_for(1));
    } catch (const IoError&) {
      typed = true;  // includes TimeoutError — the acceptable outcomes
    }
  });
  io.wait_for_write();

  std::thread stopper([&] { h.server.stop(); });
  // stop() closes the listener first (unlinking the socket path), then
  // waits out the drain budget. Wait for that marker, then outwait the
  // budget so the force has happened before the write is released.
  while (std::filesystem::exists(h.server.socket_path())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  io.release();
  stopper.join();
  putter.join();

  // The abandoned client saw a typed transport error, never a hang or
  // a garbled reply.
  EXPECT_TRUE(typed.load());
}

TEST(StoreServer, ServerSpanContinuesClientTraceContext) {
  telemetry::set_enabled(true);
  telemetry::Tracer::global().clear();
  Harness h;
  StoreClient client = StoreClient::connect(h.server.socket_path());
  (void)client.put("alpha", 1, field_for(1));

  // In-process server: client and server spans land in the same global
  // Tracer, exactly like `wckpt soak --server`'s single trace file.
  const std::vector<telemetry::SpanRecord> spans = telemetry::Tracer::global().snapshot();
  const telemetry::SpanRecord* client_span = nullptr;
  const telemetry::SpanRecord* server_span = nullptr;
  for (const telemetry::SpanRecord& s : spans) {
    if (s.name == "client.rpc.put") client_span = &s;
    if (s.name == "server.rpc.put") server_span = &s;
  }
  ASSERT_NE(client_span, nullptr);
  ASSERT_NE(server_span, nullptr);
  // The wire propagated the client's trace: same trace_id, and the
  // server span is a child of the client span, with its own span id.
  EXPECT_NE(client_span->trace_id, 0u);
  EXPECT_EQ(server_span->trace_id, client_span->trace_id);
  EXPECT_EQ(server_span->parent_span_id, client_span->span_id);
  EXPECT_NE(server_span->span_id, 0u);
  EXPECT_NE(server_span->span_id, client_span->span_id);
}

TEST(StoreServer, SlowRequestLogRecordsStructuredDetail) {
  telemetry::set_enabled(true);
  server::StoreServer::Options so;
  so.slow_request_ms = 0;  // log every RPC
  Harness h({}, so);
  StoreClientOptions co;
  co.slow_request_ms = 0;
  StoreClient client = StoreClient::connect(h.server.socket_path(), co);
  (void)client.put("slowtenant", 3, field_for(3));

  bool server_logged = false;
  bool client_logged = false;
  for (const telemetry::Event& e : telemetry::EventLog::global().snapshot()) {
    if (e.kind == telemetry::EventKind::kServerSlowRequest &&
        e.detail.find("\"tenant\":\"slowtenant\"") != std::string::npos) {
      server_logged = true;
      EXPECT_EQ(e.step, 3u);
      EXPECT_NE(e.detail.find("\"type\":\"put\""), std::string::npos);
      EXPECT_NE(e.detail.find("\"trace_id\":\""), std::string::npos);
      EXPECT_NE(e.detail.find("\"error\":false"), std::string::npos);
    }
    if (e.kind == telemetry::EventKind::kClientSlowRequest &&
        e.detail.find("\"tenant\":\"slowtenant\"") != std::string::npos) {
      client_logged = true;
      EXPECT_NE(e.detail.find("\"retries\":0"), std::string::npos);
    }
  }
  EXPECT_TRUE(server_logged);
  EXPECT_TRUE(client_logged);
}

TEST(StoreServer, GracefulDrainWritesFinalSnapshot) {
  telemetry::set_enabled(true);
  TempDir snap_dir;
  const std::filesystem::path snap = snap_dir.path() / "exposed";
  server::StoreServer::Options so;
  so.slow_request_ms = 0;
  so.drain_snapshot_dir = snap;
  Harness h({}, so);
  {
    StoreClientOptions co;
    co.slow_request_ms = 0;
    StoreClient client = StoreClient::connect(h.server.socket_path(), co);
    (void)client.put("draintenant", 1, field_for(1));
  }
  ASSERT_FALSE(std::filesystem::exists(snap / "metrics.prom"));
  h.server.stop();

  // The drain wrote all three exposition files, and they describe this
  // server's RPCs: the metrics snapshot carries the per-RPC histogram
  // with its percentile companions, the slow-request log is valid
  // JSONL filtered to *.slow_request events.
  ASSERT_TRUE(std::filesystem::exists(snap / "metrics.prom"));
  ASSERT_TRUE(std::filesystem::exists(snap / "events.jsonl"));
  ASSERT_TRUE(std::filesystem::exists(snap / "slow-requests.jsonl"));

  std::ifstream prom(snap / "metrics.prom");
  const std::string prom_text((std::istreambuf_iterator<char>(prom)),
                              std::istreambuf_iterator<char>());
  EXPECT_NE(prom_text.find("wck_server_rpc_put_seconds"), std::string::npos);
  EXPECT_NE(prom_text.find("wck_server_rpc_put_seconds_p95"), std::string::npos);
  EXPECT_NE(prom_text.find("wck_server_tenant_draintenant_puts"), std::string::npos);

  std::ifstream slow(snap / "slow-requests.jsonl");
  std::string line;
  bool found = false;
  while (std::getline(slow, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("slow_request") != std::string::npos &&
        line.find("draintenant") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace wck
