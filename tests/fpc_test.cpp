// Tests for the FPC-style predictive lossless FP compressor.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/synthetic.hpp"
#include "fpc/fpc.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

std::vector<double> to_vec(const NdArray<double>& a) {
  return {a.values().begin(), a.values().end()};
}

TEST(Fpc, RoundTripEmptyAndSmall) {
  EXPECT_EQ(fpc_decompress(fpc_compress({})), std::vector<double>{});
  const std::vector<double> one = {3.25};
  EXPECT_EQ(fpc_decompress(fpc_compress(one)), one);
  const std::vector<double> two = {1.0, -1.0};
  EXPECT_EQ(fpc_decompress(fpc_compress(two)), two);
}

TEST(Fpc, RoundTripBitExactOnSpecials) {
  // Losslessness must hold for every bit pattern, including negative
  // zero, infinities, denormals and NaN payloads.
  std::vector<double> specials = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      std::numeric_limits<double>::epsilon(),
  };
  const auto back = fpc_decompress(fpc_compress(specials));
  ASSERT_EQ(back.size(), specials.size());
  for (std::size_t i = 0; i < specials.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]), std::bit_cast<std::uint64_t>(specials[i]))
        << "i=" << i;
  }
}

TEST(Fpc, RoundTripRandomBitPatterns) {
  Xoshiro256 rng(1);
  std::vector<double> values(20000);
  for (auto& v : values) v = std::bit_cast<double>(rng());
  const auto back = fpc_decompress(fpc_compress(values));
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]), std::bit_cast<std::uint64_t>(values[i]));
  }
}

TEST(Fpc, RoundTripSmoothField) {
  const auto field = make_temperature_field(Shape{128, 82, 2}, 2);
  const auto values = to_vec(field);
  EXPECT_EQ(fpc_decompress(fpc_compress(values)), values);
}

TEST(Fpc, CompressesSmoothDataBelowRaw) {
  const auto field = make_temperature_field(Shape{128, 82, 2}, 3);
  const auto values = to_vec(field);
  const Bytes comp = fpc_compress(values);
  EXPECT_LT(comp.size(), values.size() * sizeof(double));
}

TEST(Fpc, ConstantDataCompressesExtremelyWell) {
  const std::vector<double> values(100000, 42.0);
  const Bytes comp = fpc_compress(values);
  // One header nibble + ~1 residual byte for the first few values, then
  // perfect predictions: ~0.5-1.5 bytes per value.
  EXPECT_LT(comp.size(), values.size() * 2);
}

TEST(Fpc, TableSizeTradesRatio) {
  const auto field = make_smooth_field(Shape{64, 64, 8}, 4);
  const auto values = to_vec(field);
  for (const int log2 : {8, 12, 16, 20}) {
    const Bytes comp = fpc_compress(values, FpcOptions{log2});
    EXPECT_EQ(fpc_decompress(comp), values) << "table_log2=" << log2;
  }
}

TEST(Fpc, InvalidOptionsRejected) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW((void)fpc_compress(v, FpcOptions{3}), InvalidArgumentError);
  EXPECT_THROW((void)fpc_compress(v, FpcOptions{25}), InvalidArgumentError);
}

TEST(Fpc, MalformedStreamsRejected) {
  EXPECT_THROW((void)fpc_decompress({}), FormatError);
  Bytes junk(16, std::byte{0x5A});
  EXPECT_THROW((void)fpc_decompress(junk), FormatError);

  const std::vector<double> v = {1.0, 2.0, 3.0};
  Bytes good = fpc_compress(v);
  Bytes cut(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(good.size() - 2));
  EXPECT_THROW((void)fpc_decompress(cut), FormatError);

  Bytes extended = good;
  extended.push_back(std::byte{0});
  EXPECT_THROW((void)fpc_decompress(extended), FormatError);
}

}  // namespace
}  // namespace wck
