// Tests for the burst-buffer storage model.
#include <gtest/gtest.h>

#include "iomodel/burst_buffer.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

BurstBufferConfig small_bb() {
  BurstBufferConfig c;
  c.bb_bandwidth_bytes_per_s = 100.0;
  c.pfs_bandwidth_bytes_per_s = 10.0;
  c.capacity_bytes = 1000.0;
  return c;
}

TEST(BurstBuffer, AbsorbedWriteRunsAtBufferSpeed) {
  BurstBufferModel bb(small_bb());
  const double t = bb.write(500.0);
  // 500 B at 100 B/s = 5 s; during those 5 s the PFS drains 50 B.
  EXPECT_DOUBLE_EQ(t, 5.0);
  EXPECT_DOUBLE_EQ(bb.fill_bytes(), 450.0);
}

TEST(BurstBuffer, OverflowThrottledToPfs) {
  BurstBufferModel bb(small_bb());
  const double t = bb.write(1500.0);
  // 1000 B absorbed at 100 B/s (10 s) + 500 B overflow at 10 B/s (50 s).
  EXPECT_DOUBLE_EQ(t, 60.0);
}

TEST(BurstBuffer, ComputePhaseDrains) {
  BurstBufferModel bb(small_bb());
  (void)bb.write(500.0);  // fill 450 after self-drain
  bb.compute(10.0);       // drains 100 B
  EXPECT_DOUBLE_EQ(bb.fill_bytes(), 350.0);
  bb.compute(1000.0);
  EXPECT_DOUBLE_EQ(bb.fill_bytes(), 0.0);
}

TEST(BurstBuffer, RepeatedBurstsWithoutDrainEventuallyOverflow) {
  BurstBufferModel bb(small_bb());
  const double t1 = bb.write(600.0);
  const double t2 = bb.write(600.0);  // only ~460 B of room left
  EXPECT_GT(t2, t1);
}

TEST(BurstBuffer, SteadyStateSustainability) {
  BurstBufferModel bb(small_bb());
  EXPECT_TRUE(bb.sustainable(100.0, 20.0));   // 5 B/s average << 10 B/s drain
  EXPECT_FALSE(bb.sustainable(300.0, 20.0));  // 15 B/s average > drain
  EXPECT_FALSE(bb.sustainable(1.0, 0.0));
}

TEST(BurstBuffer, FasterThanPfsForCheckpointBursts) {
  // The ref [30] claim in model form: the visible checkpoint time with a
  // burst buffer is far below a direct PFS write.
  BurstBufferConfig c;
  c.bb_bandwidth_bytes_per_s = 400e9;
  c.pfs_bandwidth_bytes_per_s = 20e9;
  c.capacity_bytes = 1e12;
  BurstBufferModel bb(c);
  const double ckpt_bytes = 100e9;
  const double bb_time = bb.write(ckpt_bytes);
  const double pfs_time = ckpt_bytes / c.pfs_bandwidth_bytes_per_s;
  EXPECT_LT(bb_time, pfs_time / 10.0);
}

TEST(BurstBuffer, InvalidConfigRejected) {
  BurstBufferConfig c = small_bb();
  c.bb_bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(BurstBufferModel{c}, InvalidArgumentError);
  c = small_bb();
  c.capacity_bytes = -1.0;
  EXPECT_THROW(BurstBufferModel{c}, InvalidArgumentError);
  BurstBufferModel bb(small_bb());
  EXPECT_THROW((void)bb.write(-1.0), InvalidArgumentError);
  EXPECT_THROW(bb.compute(-1.0), InvalidArgumentError);
}

}  // namespace
}  // namespace wck
