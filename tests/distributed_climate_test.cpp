// Tests for the domain-decomposed MiniClimate: exact agreement with the
// serial model, and per-rank checkpoint/restart.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "ckpt/codec.hpp"
#include "climate/distributed.hpp"
#include "stats/error_metrics.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

ClimateConfig grid() {
  ClimateConfig cfg;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.nz = 2;
  return cfg;
}

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("wck_dist_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(DistributedClimate, MatchesSerialBitwise) {
  // The decisive property: for any rank count, the distributed
  // trajectory equals the serial one exactly (same FP operations).
  MiniClimate serial(grid());
  serial.run(25);

  for (const std::size_t ranks : {1u, 2u, 4u}) {
    World world(ranks);
    world.run([&](Comm& comm) {
      DistributedClimate dist(grid(), comm);
      dist.run(25);
      const auto zeta = dist.gather_vorticity(0);
      const auto temp = dist.gather_temperature(0);
      if (comm.rank() == 0) {
        EXPECT_EQ(zeta, serial.vorticity()) << ranks << " ranks";
        EXPECT_EQ(temp, serial.temperature()) << ranks << " ranks";
      }
    });
  }
}

TEST(DistributedClimate, LocalSlabsPartitionTheGlobalField) {
  World world(4);
  world.run([&](Comm& comm) {
    DistributedClimate dist(grid(), comm);
    dist.run(3);
    const auto slab = dist.local_temperature();
    EXPECT_EQ(slab.shape(), Shape({2, 4, 32}));
    EXPECT_EQ(dist.local_rows(), 4u);
    EXPECT_EQ(dist.first_row(), comm.rank() * 4);
  });
}

TEST(DistributedClimate, PerRankCheckpointRestartExactWithLosslessCodec) {
  TempDir dir;
  World world(2);
  world.run([&](Comm& comm) {
    const GzipCodec codec;
    DistributedClimate model(grid(), comm);
    model.run(10);
    (void)model.write_local_checkpoint(dir.path(), codec);
    const auto zeta_at_ckpt = model.local_vorticity();
    model.run(7);  // diverge
    model.read_local_checkpoint(dir.path(), 10);
    EXPECT_EQ(model.step_count(), 10u);
    EXPECT_EQ(model.local_vorticity(), zeta_at_ckpt);

    // Continued run equals an unperturbed twin (bitwise determinism).
    DistributedClimate twin(grid(), comm);
    twin.run(10);
    model.run(5);
    twin.run(5);
    EXPECT_EQ(model.local_temperature(), twin.local_temperature());
  });
}

TEST(DistributedClimate, PerRankLossyRestartBoundsError) {
  TempDir dir;
  World world(2);
  world.run([&](Comm& comm) {
    CompressionParams p;
    p.quantizer.divisions = 128;
    const WaveletLossyCodec codec(p);
    DistributedClimate model(grid(), comm);
    model.run(10);
    const auto before = model.local_temperature();
    (void)model.write_local_checkpoint(dir.path(), codec);
    model.read_local_checkpoint(dir.path(), 10);
    const auto err = relative_error(before.values(), model.local_temperature().values());
    EXPECT_GT(err.mean_rel, 0.0);
    EXPECT_LT(err.mean_rel_percent(), 1.0);
  });
}

TEST(DistributedClimate, EveryRankWritesItsOwnFile) {
  TempDir dir;
  World world(4);
  world.run([&](Comm& comm) {
    const NullCodec codec;
    DistributedClimate model(grid(), comm);
    model.run(2);
    (void)model.write_local_checkpoint(dir.path(), codec);
    comm.barrier();
    if (comm.rank() == 0) {
      std::size_t files = 0;
      for ([[maybe_unused]] const auto& e : std::filesystem::directory_iterator(dir.path())) {
        ++files;
      }
      EXPECT_EQ(files, 4u);
    }
  });
}

TEST(DistributedClimate, IndivisibleGridRejected) {
  World world(3);
  EXPECT_THROW(world.run([&](Comm& comm) {
    DistributedClimate model(grid(), comm);  // ny=16 not divisible by 3
    (void)model;
  }),
               InvalidArgumentError);
}

TEST(DistributedClimate, RestoreShapeValidated) {
  World world(2);
  world.run([&](Comm& comm) {
    DistributedClimate model(grid(), comm);
    NdArray<double> wrong(Shape{2, 3, 32});
    EXPECT_THROW(model.restore_local(wrong, wrong, 0), InvalidArgumentError);
  });
}

}  // namespace
}  // namespace wck
