// Tests for the asynchronous (non-blocking) checkpoint writer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "ckpt/async_writer.hpp"
#include "core/synthetic.hpp"

namespace wck {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("wck_async_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(AsyncWriter, CheckpointReflectsSnapshotNotLaterMutations) {
  TempDir dir;
  NdArray<double> state = make_smooth_field(Shape{64, 64}, 1);
  CheckpointRegistry reg;
  reg.add("state", &state);
  const NdArray<double> at_snapshot = state;

  const GzipCodec codec;
  AsyncCheckpointWriter writer(codec);
  auto future = writer.write_async(dir.path() / "a.wck", reg, 5);

  // Mutate immediately — the non-blocking point of the design.
  for (auto& v : state.values()) v += 1000.0;

  const CheckpointInfo info = future.get();
  EXPECT_EQ(info.step, 5u);

  NdArray<double> restored(at_snapshot.shape());
  CheckpointRegistry rreg;
  rreg.add("state", &restored);
  (void)read_checkpoint(dir.path() / "a.wck", rreg);
  EXPECT_EQ(restored, at_snapshot);
}

TEST(AsyncWriter, MultipleQueuedWritesAllLand) {
  TempDir dir;
  NdArray<double> state = make_smooth_field(Shape{32, 32}, 2);
  CheckpointRegistry reg;
  reg.add("state", &state);

  const NullCodec codec;
  AsyncCheckpointWriter writer(codec);
  std::vector<std::future<CheckpointInfo>> futures;
  for (int i = 0; i < 8; ++i) {
    state[0] = static_cast<double>(i);
    futures.push_back(
        writer.write_async(dir.path() / ("c" + std::to_string(i) + ".wck"), reg,
                           static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().step, static_cast<std::uint64_t>(i));
  }
  // Each file holds its own snapshot.
  for (int i = 0; i < 8; ++i) {
    NdArray<double> restored(state.shape());
    CheckpointRegistry rreg;
    rreg.add("state", &restored);
    (void)read_checkpoint(dir.path() / ("c" + std::to_string(i) + ".wck"), rreg);
    EXPECT_DOUBLE_EQ(restored[0], static_cast<double>(i));
  }
}

TEST(AsyncWriter, DrainWaitsForCompletion) {
  TempDir dir;
  NdArray<double> state = make_smooth_field(Shape{64, 64}, 3);
  CheckpointRegistry reg;
  reg.add("state", &state);

  CompressionParams p;
  p.quantizer.divisions = 128;
  const WaveletLossyCodec codec(p);
  AsyncCheckpointWriter writer(codec);
  for (int i = 0; i < 4; ++i) {
    (void)writer.write_async(dir.path() / ("d" + std::to_string(i) + ".wck"), reg,
                             static_cast<std::uint64_t>(i));
  }
  writer.drain();
  EXPECT_EQ(writer.pending(), 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::filesystem::exists(dir.path() / ("d" + std::to_string(i) + ".wck")));
  }
}

TEST(AsyncWriter, ErrorsSurfaceThroughFuture) {
  NdArray<double> state = make_smooth_field(Shape{8, 8}, 4);
  CheckpointRegistry reg;
  reg.add("state", &state);
  const NullCodec codec;
  AsyncCheckpointWriter writer(codec);
  auto future = writer.write_async("/nonexistent/dir/x.wck", reg, 1);
  EXPECT_THROW((void)future.get(), IoError);
}

TEST(AsyncWriter, DestructorDrainsQueue) {
  TempDir dir;
  NdArray<double> state = make_smooth_field(Shape{32, 32}, 5);
  CheckpointRegistry reg;
  reg.add("state", &state);
  {
    const GzipCodec codec;
    AsyncCheckpointWriter writer(codec);
    for (int i = 0; i < 3; ++i) {
      (void)writer.write_async(dir.path() / ("e" + std::to_string(i) + ".wck"), reg,
                               static_cast<std::uint64_t>(i));
    }
    // Destructor must finish all queued work before returning.
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::filesystem::exists(dir.path() / ("e" + std::to_string(i) + ".wck")));
  }
}

}  // namespace
}  // namespace wck
