// Robustness fuzzing: every decoder in the stack must reject arbitrary
// byte blobs with a typed Error — never crash, hang, or silently accept
// garbage — and must survive random mutations of valid streams.
#include <gtest/gtest.h>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "core/chunked.hpp"
#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "core/truncation.hpp"
#include "deflate/deflate.hpp"
#include "deflate/huffman_only.hpp"
#include "encode/payload.hpp"
#include "fpc/fpc.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

Bytes random_blob(std::size_t n, Xoshiro256& rng) {
  Bytes b(n);
  for (auto& v : b) v = static_cast<std::byte>(rng.bounded(256));
  return b;
}

/// Runs `decode` over many random blobs; any outcome except a crash is
/// acceptable (typed Error expected, silent success tolerated only for
/// formats where random bytes can be valid, e.g. raw deflate).
template <typename Fn>
void fuzz_decoder(const char* name, Fn&& decode, std::uint64_t seed, int trials = 200) {
  Xoshiro256 rng(seed);
  for (int t = 0; t < trials; ++t) {
    const auto size = static_cast<std::size_t>(rng.bounded(300));
    const Bytes blob = random_blob(size, rng);
    try {
      decode(blob);
    } catch (const Error&) {
      // expected
    } catch (const std::exception& e) {
      FAIL() << name << ": non-library exception on trial " << t << ": " << e.what();
    }
  }
}

TEST(Fuzz, DeflateDecodersRejectGarbage) {
  fuzz_decoder("deflate", [](const Bytes& b) { (void)deflate_decompress(b); }, 1);
  fuzz_decoder("gzip", [](const Bytes& b) { (void)gzip_decompress(b); }, 2);
  fuzz_decoder("zlib", [](const Bytes& b) { (void)zlib_decompress(b); }, 3);
  fuzz_decoder("huffman-only", [](const Bytes& b) { (void)huffman_only_decompress(b); }, 4);
}

TEST(Fuzz, PayloadAndStreamDecodersRejectGarbage) {
  fuzz_decoder("payload", [](const Bytes& b) { (void)decode_payload(b); }, 5);
  fuzz_decoder("compressor", [](const Bytes& b) { (void)WaveletCompressor::decompress(b); }, 6);
  fuzz_decoder("chunked", [](const Bytes& b) { (void)chunked_decompress(b); }, 7);
  fuzz_decoder("fpc", [](const Bytes& b) { (void)fpc_decompress(b); }, 8);
  fuzz_decoder("truncation", [](const Bytes& b) { (void)truncation_decompress(b); }, 9);
}

TEST(Fuzz, CheckpointRestoreRejectsGarbage) {
  NdArray<double> state(Shape{4, 4});
  CheckpointRegistry reg;
  reg.add("state", &state);
  fuzz_decoder("checkpoint", [&](const Bytes& b) { (void)restore_checkpoint(b, reg); }, 10);
}

/// Mutation fuzzing: flip bytes of *valid* streams at random positions;
/// decoders must throw or produce a (possibly different) valid result —
/// never crash. Integrity-protected layers must detect every mutation.
TEST(Fuzz, MutatedCompressorStreamsNeverCrash) {
  const auto field = make_smooth_field(Shape{24, 16}, 20);
  CompressionParams p;
  p.quantizer.divisions = 32;
  const auto comp = WaveletCompressor(p).compress(field);
  Xoshiro256 rng(21);
  int detected = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    Bytes bad = comp.data;
    const int flips = 1 + static_cast<int>(rng.bounded(3));
    for (int f = 0; f < flips; ++f) {
      bad[rng.bounded(bad.size())] ^= static_cast<std::byte>(1 + rng.bounded(255));
    }
    try {
      (void)WaveletCompressor::decompress(bad);
    } catch (const Error&) {
      ++detected;
    }
  }
  // The zlib container (Adler-32) + payload CRC catch essentially all
  // mutations; allow a tiny residue for flips in genuinely ignored bits.
  EXPECT_GT(detected, trials * 95 / 100);
}

TEST(Fuzz, MutatedCheckpointsAlwaysDetected) {
  NdArray<double> state = make_smooth_field(Shape{16, 16}, 22);
  CheckpointRegistry reg;
  reg.add("state", &state);
  const Bytes data = serialize_checkpoint(reg, GzipCodec{}, 3);
  Xoshiro256 rng(23);
  for (int t = 0; t < 200; ++t) {
    Bytes bad = data;
    bad[rng.bounded(bad.size())] ^= static_cast<std::byte>(1 + rng.bounded(255));
    NdArray<double> target(state.shape());
    CheckpointRegistry rreg;
    rreg.add("state", &target);
    EXPECT_THROW((void)restore_checkpoint(bad, rreg), Error) << "trial " << t;
  }
}

}  // namespace
}  // namespace wck
