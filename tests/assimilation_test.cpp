// Tests for nudging data assimilation (the Sec. II-B mechanism).
#include <gtest/gtest.h>

#include "climate/assimilation.hpp"
#include "stats/error_metrics.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

ClimateConfig grid() {
  ClimateConfig cfg;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.nz = 2;
  return cfg;
}

double temp_error(const MiniClimate& a, const MiniClimate& b) {
  return relative_error(a.temperature().values(), b.temperature().values()).mean_rel;
}

TEST(Assimilation, SingleCycleReducesError) {
  MiniClimate truth(grid());
  truth.run(50);
  MiniClimate model(grid());
  // Perturb the model: restart it from a coarse state.
  NdArray<double> zeta = truth.vorticity();
  NdArray<double> temp = truth.temperature();
  for (auto& v : temp.values()) v += 0.5;
  model.restore(zeta, temp, truth.step_count());

  const double before = temp_error(truth, model);
  AssimilationConfig cfg;
  cfg.stride = 1;  // dense observations
  cfg.nudging_strength = 0.5;
  NudgingAssimilator da(cfg);
  da.assimilate(model, truth);
  const double after = temp_error(truth, model);
  EXPECT_LT(after, before * 0.6);
  EXPECT_EQ(da.cycles(), 1u);
}

TEST(Assimilation, SparseObservationsStillHelpOverCycles) {
  MiniClimate truth(grid());
  MiniClimate model(grid());
  truth.run(100);
  NdArray<double> temp = truth.temperature();
  for (auto& v : temp.values()) v += 1.0;
  model.restore(truth.vorticity(), temp, truth.step_count());

  AssimilationConfig cfg;
  cfg.stride = 4;
  cfg.nudging_strength = 0.5;
  NudgingAssimilator da(cfg);
  const double before = temp_error(truth, model);
  for (int cycle = 0; cycle < 10; ++cycle) {
    truth.run(5);
    model.run(5);
    da.assimilate(model, truth);
  }
  EXPECT_LT(temp_error(truth, model), before);
}

TEST(Assimilation, BoundsLossyRestartErrorGrowth) {
  // The headline property: with assimilation, a perturbed twin stays
  // close to the truth instead of diverging chaotically.
  MiniClimate truth(grid());
  truth.run(200);

  auto perturbed_copy = [&] {
    MiniClimate m(grid());
    NdArray<double> zeta = truth.vorticity();
    zeta[0] += 1e-4;
    m.restore(zeta, truth.temperature(), truth.step_count());
    return m;
  };

  MiniClimate free_run = perturbed_copy();
  MiniClimate da_run = perturbed_copy();
  MiniClimate truth_for_da(grid());
  truth_for_da.restore(truth.vorticity(), truth.temperature(), truth.step_count());

  AssimilationConfig cfg;
  cfg.stride = 2;
  cfg.nudging_strength = 0.3;
  NudgingAssimilator da(cfg);

  for (int cycle = 0; cycle < 30; ++cycle) {
    truth.run(20);
    free_run.run(20);
    truth_for_da.run(20);
    da_run.run(20);
    da.assimilate(da_run, truth_for_da);
  }
  EXPECT_LT(temp_error(truth_for_da, da_run), temp_error(truth, free_run) + 1e-12);
}

TEST(Assimilation, NoiseLimitsAchievableError) {
  MiniClimate truth(grid());
  MiniClimate model(grid());
  truth.run(50);
  model.restore(truth.vorticity(), truth.temperature(), truth.step_count());

  AssimilationConfig cfg;
  cfg.stride = 1;
  cfg.nudging_strength = 1.0;
  cfg.observation_noise = 0.5;  // noisy sensors
  NudgingAssimilator da(cfg);
  da.assimilate(model, truth);
  // With strength 1 and noisy sensors, the model now carries the noise.
  const auto err = relative_error(truth.temperature().values(),
                                  model.temperature().values());
  EXPECT_GT(err.max_abs, 0.1);
  EXPECT_LT(err.max_abs, 5.0);
}

TEST(Assimilation, GridMismatchRejected) {
  MiniClimate a(grid());
  ClimateConfig other = grid();
  other.nx = 64;
  MiniClimate b(other);
  NudgingAssimilator da(AssimilationConfig{});
  EXPECT_THROW(da.assimilate(a, b), InvalidArgumentError);
}

TEST(Assimilation, InvalidConfigRejected) {
  AssimilationConfig cfg;
  cfg.nudging_strength = 0.0;
  EXPECT_THROW(NudgingAssimilator{cfg}, InvalidArgumentError);
  cfg = AssimilationConfig{};
  cfg.nudging_strength = 1.5;
  EXPECT_THROW(NudgingAssimilator{cfg}, InvalidArgumentError);
  cfg = AssimilationConfig{};
  cfg.stride = 0;
  EXPECT_THROW(NudgingAssimilator{cfg}, InvalidArgumentError);
  cfg = AssimilationConfig{};
  cfg.observation_noise = -1.0;
  EXPECT_THROW(NudgingAssimilator{cfg}, InvalidArgumentError);
}

}  // namespace
}  // namespace wck
