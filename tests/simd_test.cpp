// Bit-identity proofs for the SIMD kernel layer: every kernel, at every
// level available on this machine, against the scalar reference — on
// odd lengths, empty/1-element inputs, denormal/NaN/±0/±inf-bearing
// data — plus dispatch resolution (WCK_SIMD through the env cache) and
// end-to-end compressed-output equality across levels.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/compressor.hpp"
#include "encode/bitmap.hpp"
#include "quantize/quantizer.hpp"
#include "simd/dispatch.hpp"
#include "telemetry/metrics.hpp"
#include "util/checksum.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "wavelet/haar.hpp"

namespace wck {
namespace {

using simd::KernelTable;
using simd::Level;

/// Non-scalar levels runnable here (kernels to compare against scalar).
std::vector<Level> vector_levels() {
  std::vector<Level> out;
  for (const Level lv : simd::available_levels()) {
    if (lv != Level::kScalar) out.push_back(lv);
  }
  return out;
}

const KernelTable& scalar() { return simd::kernels_for(Level::kScalar); }

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

/// Deterministic doubles spanning magnitudes, denormals, and exact ties.
std::vector<double> mixed_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1e3, 1e3);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 7) {
      case 0:
        v[i] = uni(rng);
        break;
      case 1:
        v[i] = uni(rng) * 1e-300;  // subnormal after scaling
        break;
      case 2:
        v[i] = kDenorm * static_cast<double>(1 + i % 9);
        break;
      case 3:
        v[i] = (i % 2 == 1) ? -0.0 : 0.0;
        break;
      case 4:
        v[i] = uni(rng) * 1e100;
        break;
      default:
        v[i] = uni(rng);
        break;
    }
  }
  return v;
}

void expect_bits_equal(std::span<const double> got, std::span<const double> want,
                       const char* what, Level lv) {
  ASSERT_EQ(got.size(), want.size()) << what << " @ " << simd::to_string(lv);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]), std::bit_cast<std::uint64_t>(want[i]))
        << what << " lane " << i << " @ " << simd::to_string(lv) << ": got " << got[i]
        << ", want " << want[i];
  }
}

const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 63, 64, 65, 127, 1000, 1001};

TEST(SimdDispatch, ParseAndPrint) {
  EXPECT_EQ(simd::parse_level("scalar"), Level::kScalar);
  EXPECT_EQ(simd::parse_level("sse2"), Level::kSse2);
  EXPECT_EQ(simd::parse_level("avx2"), Level::kAvx2);
  EXPECT_FALSE(simd::parse_level("auto").has_value());
  EXPECT_FALSE(simd::parse_level("").has_value());
  EXPECT_FALSE(simd::parse_level("AVX2").has_value());
  EXPECT_STREQ(simd::to_string(Level::kScalar), "scalar");
  EXPECT_STREQ(simd::to_string(Level::kSse2), "sse2");
  EXPECT_STREQ(simd::to_string(Level::kAvx2), "avx2");
}

TEST(SimdDispatch, AvailableLevelsStartAtScalarAndEndAtBest) {
  const auto levels = simd::available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  EXPECT_EQ(levels.back(), simd::detected_best());
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
  }
}

TEST(SimdDispatch, EnvOverrideResolvesThroughEnvCache) {
  // The ambient environment may itself carry WCK_SIMD (CI's
  // forced-scalar leg runs this very test), so capture what it
  // resolves to before layering overrides on top.
  simd::reset_active_level_for_test();
  const Level ambient = simd::active_level();

  env::set_override("WCK_SIMD", "scalar");
  simd::reset_active_level_for_test();
  EXPECT_EQ(simd::active_level(), Level::kScalar);

  // Unknown values behave as auto.
  env::set_override("WCK_SIMD", "bogus");
  simd::reset_active_level_for_test();
  EXPECT_EQ(simd::active_level(), simd::detected_best());

  // A request above hardware support clamps down instead of failing.
  env::set_override("WCK_SIMD", "avx2");
  simd::reset_active_level_for_test();
  EXPECT_LE(static_cast<int>(simd::active_level()), static_cast<int>(simd::detected_best()));

  env::clear_override("WCK_SIMD");
  simd::reset_active_level_for_test();
  EXPECT_EQ(simd::active_level(), ambient);
}

TEST(SimdDispatch, ActiveLevelPublishesGauge) {
  simd::set_active_level_for_test(Level::kScalar);
  const auto snap = telemetry::MetricsRegistry::global().snapshot();
  const auto it = snap.gauges.find("simd.level");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_EQ(it->second, 0.0);
  simd::reset_active_level_for_test();
}

TEST(SimdDispatch, KernelsForRejectsUnavailableLevel) {
  if (simd::detected_best() == Level::kAvx2) GTEST_SKIP() << "every level available here";
  EXPECT_THROW((void)simd::kernels_for(Level::kAvx2), InvalidArgumentError);
}

TEST(SimdKernels, HaarForwardPairsBitIdentical) {
  for (const Level lv : vector_levels()) {
    const KernelTable& k = simd::kernels_for(lv);
    for (const std::size_t pairs : kLengths) {
      auto src = mixed_values(2 * pairs, 17 + pairs);
      if (!src.empty()) src[src.size() / 2] = kNaN;
      std::vector<double> lo_ref(pairs), hi_ref(pairs), lo(pairs), hi(pairs);
      scalar().haar_forward_pairs(src.data(), lo_ref.data(), hi_ref.data(), pairs);
      k.haar_forward_pairs(src.data(), lo.data(), hi.data(), pairs);
      expect_bits_equal(lo, lo_ref, "haar_forward low", lv);
      expect_bits_equal(hi, hi_ref, "haar_forward high", lv);
    }
  }
}

TEST(SimdKernels, HaarInversePairsBitIdentical) {
  for (const Level lv : vector_levels()) {
    const KernelTable& k = simd::kernels_for(lv);
    for (const std::size_t pairs : kLengths) {
      const auto lo = mixed_values(pairs, 23 + pairs);
      const auto hi = mixed_values(pairs, 29 + pairs);
      std::vector<double> dst_ref(2 * pairs), dst(2 * pairs);
      scalar().haar_inverse_pairs(lo.data(), hi.data(), dst_ref.data(), pairs);
      k.haar_inverse_pairs(lo.data(), hi.data(), dst.data(), pairs);
      expect_bits_equal(dst, dst_ref, "haar_inverse", lv);
    }
  }
}

TEST(SimdKernels, HaarRoundTripIsExactForDyadicData) {
  // (a+b)/2 ± (a-b)/2 reconstructs exactly when inputs are representable
  // sums; integers are, at any level.
  for (const Level lv : simd::available_levels()) {
    const KernelTable& k = simd::kernels_for(lv);
    std::vector<double> src(64);
    for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<double>(i * 3 % 41);
    std::vector<double> lo(32), hi(32), back(64);
    k.haar_forward_pairs(src.data(), lo.data(), hi.data(), 32);
    k.haar_inverse_pairs(lo.data(), hi.data(), back.data(), 32);
    expect_bits_equal(back, src, "haar round trip", lv);
  }
}

TEST(SimdKernels, RangeMinMaxBitIdentical) {
  for (const Level lv : vector_levels()) {
    const KernelTable& k = simd::kernels_for(lv);
    for (const std::size_t n : kLengths) {
      if (n == 0) continue;  // contract requires n > 0
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto v = mixed_values(n, seed * 31 + n);
        if (seed == 2 && n > 2) {
          v[1] = kNaN;  // NaN off the seed position: ignored
          v[n - 1] = kNaN;
        }
        if (seed == 3) {
          v[0] = kNaN;  // NaN seed: sticky at every level
        }
        double lo_ref = 1.0, hi_ref = -1.0, lo = 2.0, hi = -2.0;
        scalar().range_min_max(v.data(), n, &lo_ref, &hi_ref);
        k.range_min_max(v.data(), n, &lo, &hi);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(lo), std::bit_cast<std::uint64_t>(lo_ref))
            << "min n=" << n << " seed=" << seed << " @ " << simd::to_string(lv);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(hi), std::bit_cast<std::uint64_t>(hi_ref))
            << "max n=" << n << " seed=" << seed << " @ " << simd::to_string(lv);
      }
    }
  }
}

TEST(SimdKernels, RangeMinMaxCanonicalizesNegativeZero) {
  // Whatever order lanes fold in, a zero extremum must come out +0.0.
  const std::vector<double> v = {-0.0, 0.0, -0.0, 0.0, -0.0, 5.0, -0.0, 0.0, -0.0};
  for (const Level lv : simd::available_levels()) {
    double lo = -1.0, hi = -1.0;
    simd::kernels_for(lv).range_min_max(v.data(), v.size(), &lo, &hi);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(lo), std::bit_cast<std::uint64_t>(0.0))
        << simd::to_string(lv);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(hi), std::bit_cast<std::uint64_t>(5.0))
        << simd::to_string(lv);
  }
}

TEST(SimdKernels, GridIndexBatchBitIdentical) {
  const double lo = -3.25;
  const double width = 7.5;
  for (const std::int32_t divisions : {1, 2, 7, 64, 256}) {
    const double inv = divisions / width;
    for (const Level lv : vector_levels()) {
      const KernelTable& k = simd::kernels_for(lv);
      for (const std::size_t n : kLengths) {
        auto v = mixed_values(n, 7 * n + static_cast<std::size_t>(divisions));
        if (n >= 8) {
          v[0] = kNaN;
          v[1] = kInf;
          v[2] = -kInf;
          v[3] = lo - 100.0;  // below range
          v[4] = lo + width + 100.0;  // above range
          v[5] = lo;
          v[6] = lo + width;
          v[7] = kDenorm;
        }
        std::vector<std::int32_t> ref(n, -7), got(n, -9);
        scalar().grid_index_batch(v.data(), n, lo, inv, divisions, ref.data());
        k.grid_index_batch(v.data(), n, lo, inv, divisions, got.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i], ref[i]) << "i=" << i << " v=" << v[i] << " n=" << divisions << " @ "
                                    << simd::to_string(lv);
          // The scalar batch is itself defined by the one-value reference.
          ASSERT_EQ(ref[i], simd::grid_index_one(v[i], lo, inv, divisions));
          ASSERT_GE(ref[i], 0);
          ASSERT_LT(ref[i], divisions);
        }
      }
    }
  }
}

TEST(SimdKernels, BitmapPackGe0BitIdentical) {
  std::mt19937_64 rng(99);
  for (const Level lv : vector_levels()) {
    const KernelTable& k = simd::kernels_for(lv);
    for (const std::size_t n : kLengths) {
      std::vector<std::int32_t> idx(n);
      for (auto& x : idx) {
        x = (rng() % 3 == 0) ? -1 : static_cast<std::int32_t>(rng() % 256);
      }
      const std::size_t nwords = (n + 63) / 64;
      std::vector<std::uint64_t> ref(nwords, 0xDEADBEEFull), got(nwords, 0x12345678ull);
      scalar().bitmap_pack_ge0(idx.data(), n, ref.data());
      k.bitmap_pack_ge0(idx.data(), n, got.data());
      EXPECT_EQ(got, ref) << "n=" << n << " @ " << simd::to_string(lv);
      // Stale contents must be fully overwritten, padding bits cleared.
      if (n % 64 != 0 && nwords > 0) {
        EXPECT_EQ(ref.back() >> (n % 64), 0u);
      }
    }
  }
}

TEST(SimdKernels, BitmapSelectBitIdentical) {
  std::mt19937_64 rng(1234);
  for (const Level lv : vector_levels()) {
    const KernelTable& k = simd::kernels_for(lv);
    // Densities chosen to produce all-ones words, all-zeros words, and
    // mixed words (the three word-level paths).
    for (const double density : {0.0, 0.03, 0.5, 0.97, 1.0}) {
      for (const std::size_t n : kLengths) {
        std::vector<std::uint64_t> words((n + 63) / 64, 0);
        std::vector<std::uint8_t> indices;
        std::vector<double> exact;
        const auto averages = mixed_values(256, 5);
        std::uniform_real_distribution<double> uni(0.0, 1.0);
        for (std::size_t i = 0; i < n; ++i) {
          if (uni(rng) < density) {
            words[i / 64] |= 1ull << (i % 64);
            indices.push_back(static_cast<std::uint8_t>(rng() % 256));
          } else {
            exact.push_back(static_cast<double>(i) * 1.25 - 3.0);
          }
        }
        std::vector<double> ref(n, -1.0), got(n, -2.0);
        scalar().bitmap_select(words.data(), n, averages.data(), indices.data(), exact.data(),
                               ref.data());
        k.bitmap_select(words.data(), n, averages.data(), indices.data(), exact.data(),
                        got.data());
        expect_bits_equal(got, ref, "bitmap_select", lv);
      }
    }
  }
}

TEST(SimdKernels, PackUnpackF64BitIdentical) {
  for (const Level lv : vector_levels()) {
    const KernelTable& k = simd::kernels_for(lv);
    for (const std::size_t n : kLengths) {
      auto v = mixed_values(n, 3 * n + 1);
      if (!v.empty()) v[0] = kNaN;
      std::vector<std::byte> ref(n * 8, std::byte{0xAA}), got(n * 8, std::byte{0x55});
      scalar().pack_f64_le(v.data(), n, ref.data());
      k.pack_f64_le(v.data(), n, got.data());
      // memcmp on an empty vector's data() is a null pointer — UB even for
      // length 0, so only compare when there are bytes to compare.
      if (n != 0) {
        EXPECT_EQ(std::memcmp(got.data(), ref.data(), n * 8), 0)
            << "pack n=" << n << " @ " << simd::to_string(lv);
      }
      std::vector<double> back_ref(n), back(n);
      scalar().unpack_f64_le(ref.data(), n, back_ref.data());
      k.unpack_f64_le(ref.data(), n, back.data());
      expect_bits_equal(back, back_ref, "unpack_f64_le", lv);
      expect_bits_equal(back_ref, v, "pack/unpack round trip", lv);
    }
  }
}

TEST(SimdKernels, Crc32BitIdenticalAndKnownVector) {
  // Reflected CRC-32 of "123456789" is the classic check value.
  const char* check = "123456789";
  EXPECT_EQ(crc32(check, 9), 0xCBF43926u);

  std::mt19937_64 rng(777);
  for (const Level lv : vector_levels()) {
    const KernelTable& k = simd::kernels_for(lv);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7},
                                std::size_t{8}, std::size_t{9}, std::size_t{64},
                                std::size_t{1000}, std::size_t{65537}}) {
      std::vector<unsigned char> buf(n);
      for (auto& b : buf) b = static_cast<unsigned char>(rng());
      const std::uint32_t ref = scalar().crc32_update(0xFFFFFFFFu, buf.data(), n);
      EXPECT_EQ(k.crc32_update(0xFFFFFFFFu, buf.data(), n), ref)
          << "n=" << n << " @ " << simd::to_string(lv);
      // Split updates must continue the same register.
      const std::size_t cut = n / 3;
      const std::uint32_t mid = k.crc32_update(0xFFFFFFFFu, buf.data(), cut);
      EXPECT_EQ(k.crc32_update(mid, buf.data() + cut, n - cut), ref);
    }
  }
}

TEST(SimdKernels, Adler32BitIdenticalAndKnownVector) {
  // adler32("Wikipedia") from the algorithm's reference example.
  EXPECT_EQ(adler32("Wikipedia", 9), 0x11E60398u);

  std::mt19937_64 rng(4242);
  for (const Level lv : vector_levels()) {
    const KernelTable& k = simd::kernels_for(lv);
    // Sizes straddling the 16/32-byte vector width and the 5552-byte
    // modular-reduction block.
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{15}, std::size_t{16},
                                std::size_t{17}, std::size_t{31}, std::size_t{33},
                                std::size_t{5551}, std::size_t{5552}, std::size_t{5553},
                                std::size_t{100000}}) {
      std::vector<unsigned char> buf(n);
      for (auto& b : buf) b = static_cast<unsigned char>(rng());
      // All-0xFF stresses the worst-case accumulator growth.
      if (n == 5552) std::fill(buf.begin(), buf.end(), static_cast<unsigned char>(0xFF));
      std::uint32_t a_ref = 1, b_ref = 0, a = 1, b = 0;
      scalar().adler32_update(&a_ref, &b_ref, buf.data(), n);
      k.adler32_update(&a, &b, buf.data(), n);
      EXPECT_EQ(a, a_ref) << "n=" << n << " @ " << simd::to_string(lv);
      EXPECT_EQ(b, b_ref) << "n=" << n << " @ " << simd::to_string(lv);
      // Split updates continue the running pair.
      std::uint32_t a2 = 1, b2 = 0;
      const std::size_t cut = (n * 2) / 5;
      k.adler32_update(&a2, &b2, buf.data(), cut);
      k.adler32_update(&a2, &b2, buf.data() + cut, n - cut);
      EXPECT_EQ(a2, a_ref);
      EXPECT_EQ(b2, b_ref);
    }
  }
}

TEST(SimdQuantizer, ClassifyBatchMatchesClassifyAtEveryLevel) {
  auto values = mixed_values(10007, 6);
  values[17] = kNaN;
  for (const Level lv : simd::available_levels()) {
    simd::set_active_level_for_test(lv);
    for (const QuantizerKind kind : {QuantizerKind::kSimple, QuantizerKind::kSpike}) {
      QuantizerConfig cfg;
      cfg.kind = kind;
      cfg.divisions = 128;
      const auto scheme = QuantizationScheme::analyze(values, cfg);
      std::vector<std::int32_t> batch(values.size());
      scheme.classify_batch(values, batch);
      for (std::size_t i = 0; i < values.size(); ++i) {
        ASSERT_EQ(batch[i], scheme.classify(values[i]))
            << "i=" << i << " kind=" << static_cast<int>(kind) << " @ " << simd::to_string(lv);
      }
    }
  }
  simd::reset_active_level_for_test();
}

TEST(SimdQuantizer, ClassifyBatchSizeMismatchThrows) {
  const auto scheme = QuantizationScheme::analyze_simple(mixed_values(64, 8), 16);
  std::vector<std::int32_t> out(63);
  EXPECT_THROW(scheme.classify_batch(mixed_values(64, 8), out), InvalidArgumentError);
}

TEST(SimdQuantizer, AnalyzeIsLevelInvariant) {
  // The whole scheme — averages table included — must not depend on the
  // dispatch level.
  auto values = mixed_values(20011, 12);
  std::vector<std::vector<double>> tables;
  for (const Level lv : simd::available_levels()) {
    simd::set_active_level_for_test(lv);
    QuantizerConfig cfg;  // spike defaults
    tables.push_back(QuantizationScheme::analyze(values, cfg).averages());
  }
  simd::reset_active_level_for_test();
  for (std::size_t i = 1; i < tables.size(); ++i) {
    expect_bits_equal(tables[i], tables[0], "averages", simd::available_levels()[i]);
  }
}

TEST(SimdWavelet, TransformBitIdenticalAcrossLevelsOnStridedLines) {
  // Odd extents in 1-D/2-D/3-D: the innermost axis takes the stride-1
  // kernel fast path, outer axes exercise the strided scalar path, and
  // subblock recursion mixes both.
  const std::vector<Shape> shapes = {Shape{129}, Shape{33, 17}, Shape{9, 7, 11}};
  for (const Shape& shape : shapes) {
    std::vector<NdArray<double>> results;
    for (const Level lv : simd::available_levels()) {
      simd::set_active_level_for_test(lv);
      NdArray<double> a(shape);
      auto vals = mixed_values(a.size(), 51);
      std::copy(vals.begin(), vals.end(), a.values().begin());
      haar_forward(a.view(), 3);
      haar_inverse(a.view(), 3);
      results.push_back(std::move(a));
    }
    simd::reset_active_level_for_test();
    for (std::size_t i = 1; i < results.size(); ++i) {
      expect_bits_equal(results[i].values(), results[0].values(), "haar transform",
                        simd::available_levels()[i]);
    }
  }
}

TEST(SimdEncode, BitmapFromClassificationMatchesSetLoop) {
  std::mt19937_64 rng(31337);
  for (const Level lv : simd::available_levels()) {
    simd::set_active_level_for_test(lv);
    for (const std::size_t n : kLengths) {
      std::vector<std::int32_t> cls(n);
      for (auto& c : cls) c = (rng() % 4 == 0) ? -1 : static_cast<std::int32_t>(rng() % 256);
      Bitmap expected(n);
      for (std::size_t i = 0; i < n; ++i) expected.set(i, cls[i] >= 0);
      EXPECT_EQ(Bitmap::from_classification(cls), expected)
          << "n=" << n << " @ " << simd::to_string(lv);
    }
  }
  simd::reset_active_level_for_test();
}

TEST(SimdEndToEnd, CompressedBytesIdenticalAcrossLevels) {
  const Shape shape{37, 29};
  NdArray<double> input(shape);
  auto vals = mixed_values(input.size(), 2026);
  std::copy(vals.begin(), vals.end(), input.values().begin());

  for (const EntropyMode entropy : {EntropyMode::kNone, EntropyMode::kDeflate}) {
    std::vector<Bytes> streams;
    for (const Level lv : simd::available_levels()) {
      simd::set_active_level_for_test(lv);
      CompressionParams params;
      params.entropy = entropy;
      const WaveletCompressor compressor(params);
      streams.push_back(compressor.compress(input).data);
    }
    simd::reset_active_level_for_test();
    for (std::size_t i = 1; i < streams.size(); ++i) {
      EXPECT_EQ(streams[i], streams[0])
          << "entropy=" << static_cast<int>(entropy) << " @ "
          << simd::to_string(simd::available_levels()[i]);
    }

    // Cross-level decode: a stream compressed at the best level must
    // reconstruct bit-identically when decompressed at scalar.
    simd::set_active_level_for_test(Level::kScalar);
    const NdArray<double> back = WaveletCompressor::decompress(streams.back());
    simd::reset_active_level_for_test();
    const NdArray<double> back_native = WaveletCompressor::decompress(streams.back());
    expect_bits_equal(back.values(), back_native.values(), "cross-level decompress",
                      simd::active_level());
  }
}

}  // namespace
}  // namespace wck
