// Unit tests for the FFT and the spectral Poisson solver.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "fft/fft.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

using Cplx = std::complex<double>;

std::vector<Cplx> random_signal(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Cplx> v(n);
  for (auto& x : v) x = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return v;
}

TEST(Fft, PowerOfTwoCheck) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(96));
}

TEST(Fft, NonPowerOfTwoRejected) {
  std::vector<Cplx> v(6);
  EXPECT_THROW(fft_inplace(v, false), InvalidArgumentError);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<Cplx> v(8, {0.0, 0.0});
  v[0] = {1.0, 0.0};
  fft_inplace(v, false);
  for (const auto& x : v) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleModeHasSingleBin) {
  const std::size_t n = 64;
  std::vector<Cplx> v(n);
  const int k = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * std::numbers::pi * k * static_cast<double>(i) / n;
    v[i] = {std::cos(phase), std::sin(phase)};
  }
  fft_inplace(v, false);
  for (std::size_t b = 0; b < n; ++b) {
    const double mag = std::abs(v[b]);
    if (b == static_cast<std::size_t>(k)) {
      EXPECT_NEAR(mag, static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

TEST(Fft, InverseRecoversSignal) {
  for (const std::size_t n : {1u, 2u, 8u, 256u, 4096u}) {
    auto v = random_signal(n, n);
    const auto orig = v;
    fft_inplace(v, false);
    fft_inplace(v, true);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-10) << "n=" << n;
      EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-10) << "n=" << n;
    }
  }
}

TEST(Fft, ParsevalHolds) {
  const std::size_t n = 512;
  auto v = random_signal(n, 3);
  double time_energy = 0.0;
  for (const auto& x : v) time_energy += std::norm(x);
  fft_inplace(v, false);
  double freq_energy = 0.0;
  for (const auto& x : v) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-9 * time_energy * static_cast<double>(n));
}

TEST(Fft, LinearityHolds) {
  const std::size_t n = 128;
  auto a = random_signal(n, 4);
  auto b = random_signal(n, 5);
  std::vector<Cplx> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  fft_inplace(a, false);
  fft_inplace(b, false);
  fft_inplace(sum, false);
  for (std::size_t i = 0; i < n; ++i) {
    const Cplx want = 2.0 * a[i] + 3.0 * b[i];
    EXPECT_NEAR(std::abs(sum[i] - want), 0.0, 1e-9);
  }
}

TEST(Fft2d, InverseRecoversField) {
  const std::size_t ny = 16;
  const std::size_t nx = 32;
  auto v = random_signal(ny * nx, 6);
  const auto orig = v;
  fft2d_inplace(v, ny, nx, false);
  fft2d_inplace(v, ny, nx, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(std::abs(v[i] - orig[i]), 0.0, 1e-10);
  }
}

TEST(Fft2d, SizeMismatchRejected) {
  std::vector<Cplx> v(15);
  EXPECT_THROW(fft2d_inplace(v, 4, 4, false), InvalidArgumentError);
}

TEST(Poisson, SolvesDiscreteLaplacianExactly) {
  // Property: applying the 5-point Laplacian to the solution recovers
  // the (zero-mean) right-hand side to machine precision.
  const std::size_t ny = 32;
  const std::size_t nx = 64;
  const double dy = 0.7;
  const double dx = 1.3;
  Xoshiro256 rng(7);
  std::vector<double> rhs(ny * nx);
  double mean = 0.0;
  for (auto& r : rhs) {
    r = rng.uniform(-1.0, 1.0);
    mean += r;
  }
  mean /= static_cast<double>(rhs.size());
  for (auto& r : rhs) r -= mean;  // solvability

  const PoissonSolver solver(ny, nx, dy, dx);
  std::vector<double> psi(ny * nx);
  solver.solve(rhs, psi);

  for (std::size_t j = 0; j < ny; ++j) {
    const std::size_t jp = (j + 1) % ny;
    const std::size_t jm = (j + ny - 1) % ny;
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t ip = (i + 1) % nx;
      const std::size_t im = (i + nx - 1) % nx;
      const double lap =
          (psi[j * nx + ip] + psi[j * nx + im] - 2.0 * psi[j * nx + i]) / (dx * dx) +
          (psi[jp * nx + i] + psi[jm * nx + i] - 2.0 * psi[j * nx + i]) / (dy * dy);
      EXPECT_NEAR(lap, rhs[j * nx + i], 1e-9);
    }
  }
}

TEST(Poisson, SolutionHasZeroMean) {
  const PoissonSolver solver(16, 16, 1.0, 1.0);
  Xoshiro256 rng(8);
  std::vector<double> rhs(256);
  for (auto& r : rhs) r = rng.uniform(-1.0, 1.0);
  std::vector<double> psi(256);
  solver.solve(rhs, psi);
  double mean = 0.0;
  for (const double p : psi) mean += p;
  EXPECT_NEAR(mean / 256.0, 0.0, 1e-12);
}

TEST(Poisson, SinusoidalModeAnalytic) {
  // For rhs = sin(2 pi x / nx), the discrete solution is
  // rhs / lambda with lambda = (2 cos(2 pi / nx) - 2) / dx^2.
  const std::size_t ny = 8;
  const std::size_t nx = 64;
  const PoissonSolver solver(ny, nx, 1.0, 1.0);
  std::vector<double> rhs(ny * nx);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      rhs[j * nx + i] =
          std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(nx));
    }
  }
  std::vector<double> psi(ny * nx);
  solver.solve(rhs, psi);
  const double lambda = 2.0 * std::cos(2.0 * std::numbers::pi / static_cast<double>(nx)) - 2.0;
  for (std::size_t c = 0; c < rhs.size(); ++c) {
    EXPECT_NEAR(psi[c], rhs[c] / lambda, 1e-9);
  }
}

TEST(Poisson, AliasingInputsAllowed) {
  const PoissonSolver solver(8, 8, 1.0, 1.0);
  Xoshiro256 rng(9);
  std::vector<double> field(64);
  for (auto& r : field) r = rng.uniform(-1.0, 1.0);
  std::vector<double> expect(64);
  solver.solve(field, expect);
  solver.solve(field, field);  // aliased
  EXPECT_EQ(field, expect);
}

TEST(Poisson, InvalidArgsRejected) {
  EXPECT_THROW(PoissonSolver(7, 8, 1.0, 1.0), InvalidArgumentError);
  EXPECT_THROW(PoissonSolver(8, 8, 0.0, 1.0), InvalidArgumentError);
  const PoissonSolver solver(8, 8, 1.0, 1.0);
  std::vector<double> bad(63);
  std::vector<double> out(64);
  EXPECT_THROW(solver.solve(bad, out), InvalidArgumentError);
}

}  // namespace
}  // namespace wck
