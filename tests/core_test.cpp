// Integration tests for the full lossy compression pipeline (Fig. 1):
// wavelet -> quantization -> encoding -> formatting -> deflate.
#include <gtest/gtest.h>

#include <cmath>

#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "deflate/deflate.hpp"
#include "util/error.hpp"
#include "wavelet/haar.hpp"

namespace wck {
namespace {

CompressionParams spike_params(int n, EntropyMode entropy = EntropyMode::kDeflate) {
  CompressionParams p;
  p.quantizer.kind = QuantizerKind::kSpike;
  p.quantizer.divisions = n;
  p.quantizer.spike_partitions = 64;
  p.entropy = entropy;
  return p;
}

CompressionParams simple_params(int n, EntropyMode entropy = EntropyMode::kDeflate) {
  CompressionParams p = spike_params(n, entropy);
  p.quantizer.kind = QuantizerKind::kSimple;
  return p;
}

TEST(Compressor, RoundTripShapeAndErrorSmall) {
  const auto field = make_smooth_field(Shape{64, 32, 4}, 1);
  const WaveletCompressor c(spike_params(128));
  const auto rt = c.round_trip(field);
  EXPECT_EQ(rt.reconstructed.shape(), field.shape());
  // Smooth data, n = 128, spike quantizer: mean relative error well
  // under 1 % (paper reports ~0.0056 % for temperature).
  EXPECT_LT(rt.error.mean_rel_percent(), 1.0);
  EXPECT_LT(rt.compressed.compression_rate_percent(), 60.0);
}

TEST(Compressor, LossyBeatsGzipOnSmoothFloats) {
  // The Fig. 6 claim in miniature: lossy compression achieves a far
  // smaller compression rate than straight deflate on FP mesh data.
  const auto field = make_temperature_field(Shape{96, 48, 4}, 2);
  const WaveletCompressor c(spike_params(128));
  const auto lossy = c.compress(field);

  // Lossless baseline: deflate over the raw array bytes.
  const auto raw = std::as_bytes(field.values());
  const Bytes gz = zlib_compress(raw);
  const double lossless_rate = 100.0 * static_cast<double>(gz.size()) /
                               static_cast<double>(field.size_bytes());
  EXPECT_LT(lossy.compression_rate_percent(), lossless_rate / 2.0)
      << "lossy=" << lossy.compression_rate_percent() << "% lossless=" << lossless_rate << "%";
}

TEST(Compressor, ErrorDecreasesWithDivisions) {
  // Fig. 8 trend.
  const auto field = make_smooth_field(Shape{64, 64}, 3);
  double prev = 1e300;
  for (const int n : {1, 4, 16, 64, 256}) {
    const WaveletCompressor c(simple_params(n));
    const auto rt = c.round_trip(field);
    EXPECT_LE(rt.error.mean_rel, prev * 1.05) << "n=" << n;
    prev = rt.error.mean_rel;
  }
}

TEST(Compressor, SpikeQuantizerLowerErrorThanSimple) {
  // Fig. 8: proposed quantization has lower error at every n.
  const auto field = make_temperature_field(Shape{64, 32, 4}, 4);
  for (const int n : {1, 16, 128}) {
    const auto simple = WaveletCompressor(simple_params(n)).round_trip(field);
    const auto spike = WaveletCompressor(spike_params(n)).round_trip(field);
    EXPECT_LT(spike.error.mean_rel, simple.error.mean_rel) << "n=" << n;
    EXPECT_LT(spike.error.max_rel, simple.error.max_rel) << "n=" << n;
  }
}

TEST(Compressor, SpikeQuantizerCostsModestlyMoreSpace) {
  // Fig. 7: proposed quantization's compression rate is larger (worse)
  // than simple, but in the same regime.
  const auto field = make_temperature_field(Shape{64, 32, 4}, 5);
  const auto simple = WaveletCompressor(simple_params(128)).compress(field);
  const auto spike = WaveletCompressor(spike_params(128)).compress(field);
  EXPECT_GE(spike.data.size(), simple.data.size());
  EXPECT_LT(spike.data.size(), simple.data.size() * 4);
}

TEST(Compressor, AllEntropyModesRoundTrip) {
  const auto field = make_smooth_field(Shape{32, 32}, 6);
  for (const auto mode :
       {EntropyMode::kNone, EntropyMode::kDeflate, EntropyMode::kTempFileGzip}) {
    const WaveletCompressor c(spike_params(64, mode));
    const auto rt = c.round_trip(field);
    EXPECT_EQ(rt.reconstructed.shape(), field.shape());
    EXPECT_LT(rt.error.mean_rel_percent(), 1.0);
  }
}

TEST(Compressor, EntropyStageShrinksPayload) {
  const auto field = make_smooth_field(Shape{64, 64}, 7);
  const auto none = WaveletCompressor(spike_params(64, EntropyMode::kNone)).compress(field);
  const auto defl = WaveletCompressor(spike_params(64, EntropyMode::kDeflate)).compress(field);
  EXPECT_LT(defl.data.size(), none.data.size());
}

TEST(Compressor, StreamIsSelfDescribing) {
  // Decompression needs no parameters: a differently-configured
  // decompressor call reads any stream.
  const auto field = make_smooth_field(Shape{16, 8, 4}, 8);
  const auto comp = WaveletCompressor(simple_params(16)).compress(field);
  const auto back = WaveletCompressor::decompress(comp.data);
  EXPECT_EQ(back.shape(), field.shape());
}

TEST(Compressor, MultiLevelTransformSupported) {
  const auto field = make_smooth_field(Shape{64, 64}, 9);
  CompressionParams p = spike_params(128);
  p.wavelet_levels = 3;
  const auto rt = WaveletCompressor(p).round_trip(field);
  EXPECT_LT(rt.error.mean_rel_percent(), 2.0);
}

TEST(Compressor, Rank1AndRank4Supported) {
  for (const Shape& shape : {Shape{1000}, Shape{8, 6, 5, 4}}) {
    const auto field = make_smooth_field(shape, 10 + shape.rank());
    const auto rt = WaveletCompressor(spike_params(64)).round_trip(field);
    EXPECT_EQ(rt.reconstructed.shape(), shape);
    EXPECT_LT(rt.error.mean_rel_percent(), 2.0);
  }
}

TEST(Compressor, PaperShapeNicamArray) {
  // The exact array shape the paper compresses: 1156 x 82 x 2 doubles.
  const auto field = make_temperature_field(Shape{1156, 82, 2}, 11);
  const auto rt = WaveletCompressor(spike_params(128)).round_trip(field);
  EXPECT_LT(rt.error.mean_rel_percent(), 0.5);
  EXPECT_LT(rt.compressed.compression_rate_percent(), 70.0);
}

TEST(Compressor, StageTimesCoverPipeline) {
  const auto field = make_smooth_field(Shape{128, 128}, 12);
  const auto comp = WaveletCompressor(spike_params(128)).compress(field);
  EXPECT_GT(comp.times.get("wavelet"), 0.0);
  EXPECT_GT(comp.times.get("quantize_encode"), 0.0);
  EXPECT_GT(comp.times.get("gzip"), 0.0);

  const auto tmpfile =
      WaveletCompressor(spike_params(128, EntropyMode::kTempFileGzip)).compress(field);
  EXPECT_GT(tmpfile.times.get("temp_file_write"), 0.0);
}

TEST(Compressor, DiagnosticsConsistent) {
  const auto field = make_smooth_field(Shape{32, 32}, 13);
  const auto comp = WaveletCompressor(spike_params(64)).compress(field);
  EXPECT_EQ(comp.original_bytes, field.size_bytes());
  EXPECT_GT(comp.payload_bytes, 0u);
  EXPECT_LE(comp.quantized_count, comp.high_count);
  EXPECT_EQ(comp.high_count + WaveletPlan::create(field.shape(), 1).low_count(), field.size());
}

TEST(Compressor, EmptyAndInvalidInputsRejected) {
  EXPECT_THROW((void)WaveletCompressor(spike_params(0)), InvalidArgumentError);
  CompressionParams p = spike_params(64);
  p.wavelet_levels = 0;
  EXPECT_THROW(WaveletCompressor{p}, InvalidArgumentError);
  NdArray<double> empty;
  EXPECT_THROW((void)WaveletCompressor(spike_params(64)).compress(empty),
               InvalidArgumentError);
}

TEST(Compressor, CorruptedStreamRejected) {
  const auto field = make_smooth_field(Shape{32, 32}, 14);
  auto comp = WaveletCompressor(spike_params(64)).compress(field);
  comp.data[comp.data.size() / 2] ^= std::byte{0x10};
  EXPECT_THROW((void)WaveletCompressor::decompress(comp.data), Error);
  EXPECT_THROW((void)WaveletCompressor::decompress({}), FormatError);
}

TEST(Compressor, RandomDataStillRoundTrips) {
  // White noise: poor compression but correctness must hold.
  const auto field = make_random_field(Shape{40, 40}, 15);
  const auto rt = WaveletCompressor(spike_params(128)).round_trip(field);
  EXPECT_EQ(rt.reconstructed.shape(), field.shape());
  EXPECT_LT(rt.error.max_rel, 1.0);
}

TEST(ErrorBound, PicksSmallestSufficientN) {
  const auto field = make_temperature_field(Shape{64, 32, 4}, 16);
  const auto tight = compress_with_error_bound(field, 1e-4);
  EXPECT_TRUE(tight.met_bound);
  EXPECT_LE(tight.error.mean_rel, 1e-4);

  const auto loose = compress_with_error_bound(field, 1e-2);
  EXPECT_TRUE(loose.met_bound);
  EXPECT_LE(loose.chosen_divisions, tight.chosen_divisions);
}

TEST(ErrorBound, UnreachableBoundReportsBestEffort) {
  const auto field = make_random_field(Shape{64, 64}, 20);  // noise: hard
  const auto r = compress_with_error_bound(field, 1e-12);
  EXPECT_FALSE(r.met_bound);
  EXPECT_GT(r.chosen_divisions, 0);
  EXPECT_GT(r.error.mean_rel, 1e-12);
  // The stream is still valid and decompressible.
  EXPECT_EQ(WaveletCompressor::decompress(r.compressed.data).shape(), field.shape());
}

TEST(ErrorBound, InvalidBoundRejected) {
  const auto field = make_smooth_field(Shape{8, 8}, 17);
  EXPECT_THROW((void)compress_with_error_bound(field, 0.0), InvalidArgumentError);
  EXPECT_THROW((void)compress_with_error_bound(field, -1.0), InvalidArgumentError);
}

TEST(Synthetic, SmoothFieldIsSmooth) {
  const auto field = make_smooth_field(Shape{256}, 18);
  double total_step = 0.0;
  double range_lo = field[0];
  double range_hi = field[0];
  for (std::size_t i = 1; i < field.size(); ++i) {
    total_step += std::abs(field[i] - field[i - 1]);
    range_lo = std::min(range_lo, field[i]);
    range_hi = std::max(range_hi, field[i]);
  }
  const double mean_step = total_step / static_cast<double>(field.size() - 1);
  EXPECT_LT(mean_step, (range_hi - range_lo) / 10.0);
}

TEST(Synthetic, DeterministicForSeed) {
  const auto a = make_smooth_field(Shape{32, 32}, 42);
  const auto b = make_smooth_field(Shape{32, 32}, 42);
  EXPECT_EQ(a, b);
  const auto c = make_smooth_field(Shape{32, 32}, 43);
  EXPECT_FALSE(a == c);
}

TEST(Synthetic, TemperatureHasLapseRateTrend) {
  const auto t = make_temperature_field(Shape{8, 8, 16}, 19);
  // Mean over the first vertical level must exceed the last.
  double first = 0.0;
  double last = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      first += t(i, j, 0);
      last += t(i, j, 15);
    }
  }
  EXPECT_GT(first, last);
}

}  // namespace
}  // namespace wck
