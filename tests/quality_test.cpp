// Tests for the compression-quality analyzer (src/quality): band-identity
// walker vs the serialization-order walker, per-band error attribution,
// the pair analyzer vs the compress-time probe, drift tracking bounds,
// and the wck-quality-report JSON schema.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "quality/quality.hpp"
#include "telemetry/json.hpp"
#include "util/error.hpp"
#include "wavelet/haar.hpp"

namespace wck::quality {
namespace {

using telemetry::Json;

CompressionParams spike_params(int n = 128, int levels = 1) {
  CompressionParams p;
  p.wavelet_levels = levels;
  p.quantizer.kind = QuantizerKind::kSpike;
  p.quantizer.divisions = n;
  p.quantizer.spike_partitions = 64;
  return p;
}

// ---------------------------------------------------------------- walker

TEST(BandWalker, VisitsExactlyTheHighElementsInOrder) {
  const auto plan = WaveletPlan::create(Shape{8, 6}, 2);
  std::size_t visits = 0;
  std::size_t last_ordinal = 0;
  for_each_high_band_id(plan, [&](std::size_t ordinal, int level, unsigned mask) {
    EXPECT_EQ(ordinal, visits) << "ordinals must be dense and increasing";
    EXPECT_GE(level, 1);
    EXPECT_LE(level, plan.levels());
    EXPECT_NE(mask, 0u) << "a high element is high along at least one axis";
    EXPECT_LT(mask, 4u) << "rank-2 masks use two bits";
    last_ordinal = ordinal;
    ++visits;
  });
  EXPECT_EQ(visits, plan.high_count());
  EXPECT_EQ(last_ordinal + 1, plan.high_count());
}

TEST(BandWalker, ZipsWithForEachHighBand) {
  // Tag every element of an array with its row-major linear offset, then
  // walk both ways: the value sequence seen by for_each_high_band must
  // be position-identical to the ordinal sequence of the id walker.
  const Shape shape{6, 4, 2};
  const auto plan = WaveletPlan::create(shape, 2);
  NdArray<double> a(shape);
  for (std::size_t i = 0; i < a.size(); ++i) a.values()[i] = static_cast<double>(i);

  std::vector<double> by_value;
  for_each_high_band(a.cview(), plan.final_low_extents(),
                     [&](double v) { by_value.push_back(v); });

  std::vector<std::pair<int, unsigned>> by_id(by_value.size());
  std::size_t seen = 0;
  for_each_high_band_id(plan, [&](std::size_t ordinal, int level, unsigned mask) {
    ASSERT_LT(ordinal, by_id.size());
    by_id[ordinal] = {level, mask};
    ++seen;
  });
  ASSERT_EQ(seen, by_value.size());

  // Re-derive each visited element's identity from its linear offset and
  // check the walker agrees — the walker is pure geometry, this is the
  // ground truth from the array side.
  for (std::size_t ordinal = 0; ordinal < by_value.size(); ++ordinal) {
    std::size_t off = static_cast<std::size_t>(by_value[ordinal]);
    Shape idx{0, 0, 0};
    for (std::size_t ax = shape.rank(); ax-- > 0;) {
      idx[ax] = off % shape[ax];
      off /= shape[ax];
    }
    int level = 0;
    while (level < plan.levels()) {
      const Shape& low = plan.low_extents(level);
      bool in = true;
      for (std::size_t ax = 0; ax < shape.rank(); ++ax) in = in && idx[ax] < low[ax];
      if (!in) break;
      ++level;
    }
    ASSERT_LT(level, plan.levels()) << "final-low element visited as high";
    unsigned mask = 0;
    for (std::size_t ax = 0; ax < shape.rank(); ++ax) {
      if (idx[ax] >= plan.low_extents(level)[ax]) mask |= 1u << ax;
    }
    EXPECT_EQ(by_id[ordinal].first, level + 1) << "ordinal " << ordinal;
    EXPECT_EQ(by_id[ordinal].second, mask) << "ordinal " << ordinal;
  }
}

TEST(BandWalker, OneDimensionalDegenerateAxes) {
  // Extent-1 axes can never be high: a {16,1} plan behaves like 1D.
  const auto plan = WaveletPlan::create(Shape{16, 1}, 2);
  for_each_high_band_id(plan, [&](std::size_t, int, unsigned mask) {
    EXPECT_EQ(mask, 1u) << "only axis 0 can be high";
  });
}

TEST(BandName, FormatsLevelAndAxisLetters) {
  EXPECT_EQ(band_name(1, 0b01, 2), "l1.HL");
  EXPECT_EQ(band_name(1, 0b10, 2), "l1.LH");
  EXPECT_EQ(band_name(2, 0b11, 2), "l2.HH");
  EXPECT_EQ(band_name(3, 0b101, 3), "l3.HLH");
  EXPECT_EQ(band_name(1, 0b1, 1), "l1.H");
}

// ----------------------------------------------------------- analyze_pair

TEST(AnalyzePair, MatchesRoundTripErrorAndBandGeometry) {
  const auto field = make_smooth_field(Shape{32, 16}, 7);
  const CompressionParams params = spike_params(128, 2);
  const WaveletCompressor c(params);
  const auto rt = c.round_trip(field);

  const VariableQuality v =
      analyze_pair(field, rt.reconstructed, params, "t", rt.compressed.data.size());

  EXPECT_EQ(v.name, "t");
  EXPECT_EQ(v.original_bytes, field.size_bytes());
  EXPECT_EQ(v.compressed_bytes, rt.compressed.data.size());
  EXPECT_GT(v.bits_per_value, 0.0);
  EXPECT_LT(v.bits_per_value, 64.0) << "compression must beat raw doubles here";

  // Value-domain error agrees with the compressor's own round-trip stats.
  ASSERT_TRUE(v.has_value_error);
  EXPECT_DOUBLE_EQ(v.value_error.mean_rel, rt.error.mean_rel);
  EXPECT_DOUBLE_EQ(v.value_error.rmse, rt.error.rmse);

  // Band bookkeeping: per-band counts partition the high elements, and
  // the combined coefficient error covers all of them.
  const auto plan = WaveletPlan::create(field.shape(), params.wavelet_levels);
  std::size_t band_total = 0;
  std::size_t quantized_total = 0;
  int prev_level = 0;
  unsigned prev_mask = 0;
  for (const BandQuality& b : v.bands) {
    EXPECT_GT(b.count, 0u) << b.name;
    EXPECT_LE(b.quantized, b.count) << b.name;
    EXPECT_EQ(b.name, band_name(b.level, b.axis_mask, field.shape().rank()));
    // Canonical order: level ascending, mask ascending within a level.
    EXPECT_TRUE(b.level > prev_level || (b.level == prev_level && b.axis_mask > prev_mask))
        << b.name;
    prev_level = b.level;
    prev_mask = b.axis_mask;
    band_total += b.count;
    quantized_total += b.quantized;
  }
  EXPECT_EQ(band_total, plan.high_count());
  EXPECT_EQ(v.coefficient_error.count, plan.high_count());

  // Spike view present for the spike quantizer, with a sane occupancy.
  ASSERT_TRUE(v.has_spike);
  EXPECT_EQ(v.spike.partitions, params.quantizer.spike_partitions);
  EXPECT_GT(v.spike.occupied, 0);
  EXPECT_LE(v.spike.occupied, v.spike.partitions);
  EXPECT_GT(quantized_total, 0u) << "smooth data must quantize something";
}

TEST(AnalyzePair, RejectsMismatchedShapesAndEmpty) {
  const auto a = make_smooth_field(Shape{8, 8}, 1);
  const auto b = make_smooth_field(Shape{8, 4}, 1);
  EXPECT_THROW((void)analyze_pair(a, b, spike_params()), InvalidArgumentError);
  const NdArray<double> empty;
  EXPECT_THROW((void)analyze_pair(empty, empty, spike_params()), InvalidArgumentError);
}

TEST(QualityProbe, AgreesWithAnalyzePairOnQuantization) {
  // The probe sees the exact scheme the payload was built with; the pair
  // analyzer re-derives it deterministically from the original alone.
  // Both must attribute the same quantized counts to the same bands.
  const auto field = make_temperature_field(Shape{24, 16, 2}, 3);
  const CompressionParams params = spike_params(64, 1);
  WaveletCompressor c(params);
  QualityProbe probe("t2m");
  c.attach_observer(&probe);
  const auto compressed = c.compress(field);
  const auto reconstructed = WaveletCompressor::decompress(compressed.data);

  ASSERT_EQ(probe.variables().size(), 1u);
  const VariableQuality& observed = probe.variables()[0];
  const VariableQuality derived = analyze_pair(field, reconstructed, params, "t2m");

  EXPECT_EQ(observed.name, "t2m");
  ASSERT_EQ(observed.bands.size(), derived.bands.size());
  for (std::size_t i = 0; i < observed.bands.size(); ++i) {
    EXPECT_EQ(observed.bands[i].name, derived.bands[i].name);
    EXPECT_EQ(observed.bands[i].count, derived.bands[i].count);
    EXPECT_EQ(observed.bands[i].quantized, derived.bands[i].quantized) << derived.bands[i].name;
  }
  EXPECT_EQ(observed.spike.occupied, derived.spike.occupied);

  // Quantized counts also agree with the compressor's own header stat.
  std::size_t observed_quantized = 0;
  for (const BandQuality& b : observed.bands) observed_quantized += b.quantized;
  EXPECT_EQ(observed_quantized, compressed.quantized_count);

  // take_report moves and clears.
  const QualityReport report = probe.take_report();
  EXPECT_EQ(report.variables.size(), 1u);
  EXPECT_TRUE(probe.variables().empty());
}

TEST(QualityProbe, NamesRepeatCallsDistinctly) {
  const auto field = make_smooth_field(Shape{16, 8}, 2);
  WaveletCompressor c(spike_params());
  QualityProbe probe("v");
  c.attach_observer(&probe);
  (void)c.compress(field);
  (void)c.compress(field);
  ASSERT_EQ(probe.variables().size(), 2u);
  EXPECT_EQ(probe.variables()[0].name, "v");
  EXPECT_NE(probe.variables()[1].name, "v");
}

// ----------------------------------------------------------------- drift

TEST(DriftTracker, BoundedReservoirKeepsAggregatesExact) {
  DriftTracker drift;
  ErrorStats e;
  constexpr std::uint64_t kCycles = 10000;
  for (std::uint64_t cycle = 1; cycle <= kCycles; ++cycle) {
    e.mean_rel = (cycle == 4242) ? 0.5 : 1e-6 * static_cast<double>(cycle);
    e.rmse = e.mean_rel;
    e.psnr = 60.0;
    drift.record(cycle, e);
  }
  EXPECT_EQ(drift.cycles(), kCycles);
  EXPECT_LE(drift.points().size(), DriftTracker::kMaxPoints);
  EXPECT_GE(drift.points().size(), DriftTracker::kMaxPoints / 2)
      << "decimation must not collapse the reservoir";

  const Json doc = drift.to_json();
  EXPECT_EQ(doc.at("cycles").as_number(), static_cast<double>(kCycles));
  // first/last/worst aggregates are exact regardless of decimation.
  EXPECT_DOUBLE_EQ(doc.at("first").at("mean_rel").as_number(), 1e-6);
  EXPECT_DOUBLE_EQ(doc.at("last").at("cycle").as_number(), static_cast<double>(kCycles));
  EXPECT_DOUBLE_EQ(doc.at("worst").at("mean_rel").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(doc.at("worst").at("cycle").as_number(), 4242.0);
  EXPECT_LE(doc.at("points").as_array().size(), DriftTracker::kMaxPoints);
}

TEST(DriftTracker, EmptyRendersNull) {
  const DriftTracker drift;
  EXPECT_TRUE(drift.to_json().is_null());
}

// ---------------------------------------------------------------- schema

TEST(QualityReport, JsonSchemaShape) {
  const auto field = make_smooth_field(Shape{16, 16}, 5);
  const CompressionParams params = spike_params(64, 1);
  const auto rt = WaveletCompressor(params).round_trip(field);

  QualityReport report;
  report.variables.push_back(
      analyze_pair(field, rt.reconstructed, params, "x", rt.compressed.data.size()));
  DriftTracker drift;
  drift.record(1, rt.error);
  report.drift = drift.to_json();

  const Json doc = Json::parse(report.to_json_text());
  EXPECT_EQ(doc.at("schema").as_string(), QualityReport::kSchemaName);
  EXPECT_EQ(doc.at("schema_version").as_number(), QualityReport::kSchemaVersion);
  const auto& vars = doc.at("variables").as_array();
  ASSERT_EQ(vars.size(), 1u);
  const Json& v = vars[0];
  EXPECT_EQ(v.at("name").as_string(), "x");
  EXPECT_GT(v.at("compressed_bytes").as_number(), 0.0);
  EXPECT_GT(v.at("bits_per_value").as_number(), 0.0);
  for (const char* key : {"mean_rel", "max_rel", "max_abs", "rmse", "value_range", "count"}) {
    EXPECT_TRUE(v.at("value_error").find(key) != nullptr) << key;
    EXPECT_TRUE(v.at("coefficient_error").find(key) != nullptr) << key;
  }
  const auto& bands = v.at("bands").as_array();
  ASSERT_FALSE(bands.empty());
  for (const Json& b : bands) {
    EXPECT_FALSE(b.at("name").as_string().empty());
    EXPECT_GE(b.at("quantized_fraction").as_number(), 0.0);
    EXPECT_LE(b.at("quantized_fraction").as_number(), 1.0);
    // psnr is number-or-null (null = +inf, an exact band).
    const Json* psnr = b.find("psnr");
    ASSERT_NE(psnr, nullptr);
    EXPECT_TRUE(psnr->is_null() || psnr->as_number() > 0.0);
  }
  EXPECT_FALSE(doc.at("drift").is_null());

  // The text rendering mentions every band by name.
  const std::string text = report.to_text();
  for (const Json& b : bands) {
    EXPECT_NE(text.find(b.at("name").as_string()), std::string::npos);
  }
}

TEST(QualityReport, ExactBandSerializesPsnrAsNull) {
  // A band reconstructed exactly has rmse 0 -> psnr +inf -> JSON null.
  BandQuality band;
  band.name = "l1.H";
  band.level = 1;
  band.axis_mask = 1;
  band.count = 4;
  band.error.psnr = std::numeric_limits<double>::infinity();
  VariableQuality v;
  v.name = "x";
  v.bands.push_back(band);
  const Json doc = v.to_json();
  EXPECT_TRUE(doc.at("bands").as_array()[0].at("psnr").is_null());
}

}  // namespace
}  // namespace wck::quality
