// Tests for the ZFP-inspired block-transform codec.
#include <gtest/gtest.h>

#include <cmath>

#include "core/synthetic.hpp"
#include "stats/error_metrics.hpp"
#include "util/error.hpp"
#include "zfplike/block_codec.hpp"

namespace wck {
namespace {

TEST(ZfpLike, RoundTripErrorBoundedOnSmoothData) {
  const auto field = make_temperature_field(Shape{64, 32, 4}, 1);
  for (const int precision : {12, 20, 28}) {
    const Bytes comp = zfplike_compress(field, ZfpLikeOptions{precision, 6});
    const auto back = zfplike_decompress(comp);
    ASSERT_EQ(back.shape(), field.shape());
    const auto err = relative_error(field.values(), back.values());
    // Block-relative precision: max error shrinks ~2x per extra bit.
    // The constant absorbs the lifting transform's bit loss across
    // three axis passes and the block-max vs array-range denominators.
    const double bound = std::pow(2.0, 9 - precision);
    EXPECT_LT(err.max_rel, bound) << "precision=" << precision;
  }
}

TEST(ZfpLike, MorePrecisionMeansLessError) {
  const auto field = make_smooth_field(Shape{48, 48}, 2);
  double prev = 1e300;
  for (const int precision : {10, 16, 22, 28}) {
    const auto back = zfplike_decompress(zfplike_compress(field, {precision, 6}));
    const auto err = relative_error(field.values(), back.values());
    EXPECT_LT(err.mean_rel, prev) << "precision=" << precision;
    prev = err.mean_rel;
  }
}

TEST(ZfpLike, SmoothDataCompressesWell) {
  const auto field = make_temperature_field(Shape{128, 82, 2}, 3);
  const Bytes comp = zfplike_compress(field, ZfpLikeOptions{16, 6});
  EXPECT_LT(comp.size(), field.size_bytes() / 4);
}

TEST(ZfpLike, NonMultipleOfFourShapes) {
  for (const Shape& shape : {Shape{5}, Shape{7, 9}, Shape{6, 5, 3}, Shape{3, 3, 3, 3},
                             Shape{1156, 82, 2}}) {
    const auto field = make_smooth_field(shape, 4 + shape.rank());
    const auto back = zfplike_decompress(zfplike_compress(field, {24, 6}));
    ASSERT_EQ(back.shape(), shape);
    const auto err = relative_error(field.values(), back.values());
    EXPECT_LT(err.max_rel, 1e-4) << shape.to_string();
  }
  // A single-element array (zero range) round-trips to high absolute
  // accuracy.
  const NdArray<double> one(Shape{1, 1}, 42.5);
  const auto back = zfplike_decompress(zfplike_compress(one, {24, 6}));
  EXPECT_NEAR(back(0, 0), 42.5, 42.5 * 1e-5);
}

TEST(ZfpLike, ZeroBlocksNearlyFree) {
  const NdArray<double> zeros(Shape{64, 64}, 0.0);
  const Bytes comp = zfplike_compress(zeros, {20, 6});
  EXPECT_LT(comp.size(), 200u);
  const auto back = zfplike_decompress(comp);
  for (const double v : back.values()) EXPECT_EQ(v, 0.0);
}

TEST(ZfpLike, NonFiniteBlocksStoredRaw) {
  auto field = make_smooth_field(Shape{16, 16}, 5);
  field(2, 2) = std::numeric_limits<double>::infinity();
  const auto back = zfplike_decompress(zfplike_compress(field, {20, 6}));
  EXPECT_TRUE(std::isinf(back(2, 2)));
  // The rest of that block is exact (raw storage).
  EXPECT_DOUBLE_EQ(back(2, 3), field(2, 3));
}

TEST(ZfpLike, MixedMagnitudeBlocksKeepLocalAccuracy) {
  // Block-floating-point's selling point: a small-magnitude region far
  // from a large-magnitude one keeps its own relative accuracy.
  NdArray<double> field(Shape{8, 8}, 0.0);
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t i = 0; i < 4; ++i) {
      field(j, i) = 1e6 + static_cast<double>(i + j);       // block A: huge
      field(j + 4, i + 4) = 1e-6 * (1.0 + 0.1 * (i + j));   // block B: tiny
    }
  }
  const auto back = zfplike_decompress(zfplike_compress(field, {24, 6}));
  for (std::size_t j = 4; j < 8; ++j) {
    for (std::size_t i = 4; i < 8; ++i) {
      const double rel = std::abs(back(j, i) - field(j, i)) / field(j, i);
      EXPECT_LT(rel, 1e-4) << j << "," << i;
    }
  }
}

TEST(ZfpLike, Deterministic) {
  const auto field = make_temperature_field(Shape{32, 16, 2}, 6);
  EXPECT_EQ(zfplike_compress(field, {20, 6}), zfplike_compress(field, {20, 6}));
}

TEST(ZfpLike, InvalidInputsRejected) {
  const auto field = make_smooth_field(Shape{8}, 7);
  EXPECT_THROW((void)zfplike_compress(field, {7, 6}), InvalidArgumentError);
  EXPECT_THROW((void)zfplike_compress(field, {31, 6}), InvalidArgumentError);
  NdArray<double> empty;
  EXPECT_THROW((void)zfplike_compress(empty, {20, 6}), InvalidArgumentError);
}

TEST(ZfpLike, MalformedStreamsRejected) {
  EXPECT_THROW((void)zfplike_decompress({}), Error);
  Bytes junk(60, std::byte{0x21});
  EXPECT_THROW((void)zfplike_decompress(junk), Error);
  const auto field = make_smooth_field(Shape{16, 16}, 8);
  Bytes comp = zfplike_compress(field, {20, 6});
  comp.resize(comp.size() - 4);
  EXPECT_THROW((void)zfplike_decompress(comp), Error);
}

}  // namespace
}  // namespace wck
