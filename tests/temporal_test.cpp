// Tests for temporal (inter-checkpoint delta) compression.
#include <gtest/gtest.h>

#include "climate/mini_climate.hpp"
#include "core/temporal.hpp"
#include "stats/error_metrics.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

TemporalParams params(std::size_t key_every = 8) {
  TemporalParams p;
  p.base.quantizer.divisions = 128;
  p.key_every = key_every;
  return p;
}

/// A short stream of genuinely evolving climate states.
std::vector<NdArray<double>> climate_stream(int count, int stride = 10) {
  ClimateConfig cfg;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.nz = 2;
  MiniClimate model(cfg);
  std::vector<NdArray<double>> states;
  for (int i = 0; i < count; ++i) {
    model.run(static_cast<std::uint64_t>(stride));
    states.push_back(model.temperature());
  }
  return states;
}

TEST(Temporal, FirstCheckpointIsKey) {
  const auto states = climate_stream(1);
  TemporalCompressor tc(params());
  const auto c = tc.add(states[0]);
  EXPECT_TRUE(c.is_key);
  EXPECT_EQ(c.sequence, 0u);
}

TEST(Temporal, DeltasAreMuchSmallerThanKeys) {
  const auto states = climate_stream(4);
  TemporalCompressor tc(params());
  const auto key = tc.add(states[0]);
  const auto d1 = tc.add(states[1]);
  const auto d2 = tc.add(states[2]);
  EXPECT_FALSE(d1.is_key);
  EXPECT_LT(d1.data.size(), key.data.size() * 7 / 10);
  EXPECT_LT(d2.data.size(), key.data.size() * 7 / 10);
}

TEST(Temporal, RestoreChainMatchesCompressorReconstruction) {
  const auto states = climate_stream(5);
  TemporalCompressor tc(params());
  std::vector<TemporalCheckpoint> chain;
  for (const auto& s : states) chain.push_back(tc.add(s));
  const auto restored = temporal_restore(chain);
  EXPECT_EQ(restored, tc.last_reconstruction());
}

TEST(Temporal, ErrorsDoNotAccumulateAcrossDeltas) {
  // The design property: every reconstruction is within one
  // quantization of the true state, regardless of chain position.
  const auto states = climate_stream(7);
  TemporalCompressor tc(params(/*key_every=*/100));  // one key, many deltas
  std::vector<TemporalCheckpoint> chain;
  double first_err = 0.0;
  double last_err = 0.0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    chain.push_back(tc.add(states[i]));
    const auto err =
        relative_error(states[i].values(), tc.last_reconstruction().values());
    if (i == 0) first_err = err.mean_rel;
    last_err = err.mean_rel;
    EXPECT_LT(err.mean_rel_percent(), 0.5) << "i=" << i;
  }
  EXPECT_LT(last_err, first_err * 20.0 + 1e-6);  // same order, no blow-up
}

TEST(Temporal, KeyCadenceRespected) {
  const auto states = climate_stream(7, 5);
  TemporalCompressor tc(params(/*key_every=*/3));
  std::vector<bool> keys;
  for (const auto& s : states) keys.push_back(tc.add(s).is_key);
  EXPECT_EQ(keys, (std::vector<bool>{true, false, false, true, false, false, true}));
}

TEST(Temporal, ShapeChangeForcesKey) {
  TemporalCompressor tc(params(/*key_every=*/100));
  NdArray<double> a(Shape{8, 8}, 1.0);
  NdArray<double> b(Shape{4, 4}, 2.0);
  EXPECT_TRUE(tc.add(a).is_key);
  EXPECT_TRUE(tc.add(b).is_key);  // shape changed mid-stream
}

TEST(Temporal, ChainValidation) {
  const auto states = climate_stream(3);
  TemporalCompressor tc(params());
  const auto key = tc.add(states[0]);
  const auto delta = tc.add(states[1]);

  EXPECT_THROW((void)temporal_restore({}), InvalidArgumentError);
  std::vector<TemporalCheckpoint> starts_with_delta = {delta};
  EXPECT_THROW((void)temporal_restore(starts_with_delta), FormatError);
  std::vector<TemporalCheckpoint> key_mid_chain = {key, key};
  EXPECT_THROW((void)temporal_restore(key_mid_chain), FormatError);
}

TEST(Temporal, CorruptedRecordRejected) {
  const auto states = climate_stream(2);
  TemporalCompressor tc(params());
  auto key = tc.add(states[0]);
  auto delta = tc.add(states[1]);
  delta.data[delta.data.size() / 2] ^= std::byte{0x20};
  std::vector<TemporalCheckpoint> chain = {key, delta};
  EXPECT_THROW((void)temporal_restore(chain), Error);
}

TEST(Temporal, InvalidConfigRejected) {
  TemporalParams p = params();
  p.key_every = 0;
  EXPECT_THROW(TemporalCompressor{p}, InvalidArgumentError);
  TemporalCompressor tc(params());
  EXPECT_THROW((void)tc.last_reconstruction(), InvalidArgumentError);
}

}  // namespace
}  // namespace wck
