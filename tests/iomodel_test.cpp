// Tests for the storage and checkpoint cost models behind Fig. 9.
#include <gtest/gtest.h>

#include <cmath>

#include "iomodel/cost_model.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

/// The paper's Fig. 9 setting: 1.5 MB per process, cr = 19 %, 20 GB/s.
CheckpointCostModel paper_model(double compression_seconds) {
  StageTimes stages;
  stages.add("wavelet", compression_seconds * 0.1);
  stages.add("quantize_encode", compression_seconds * 0.15);
  stages.add("temp_file_write", compression_seconds * 0.25);
  stages.add("gzip", compression_seconds * 0.45);
  stages.add("other", compression_seconds * 0.05);
  return CheckpointCostModel(1.5e6, 0.19, stages, StorageModel{20e9, 0.0});
}

TEST(StorageModel, WriteTimeLinearInBytes) {
  const StorageModel s{10e9, 0.001};
  EXPECT_DOUBLE_EQ(s.write_time(0.0), 0.001);
  EXPECT_DOUBLE_EQ(s.write_time(10e9), 1.001);
  EXPECT_DOUBLE_EQ(s.write_time(20e9), 2.001);
}

TEST(CostModel, WithoutCompressionScalesLinearly) {
  const auto m = paper_model(0.02);
  const double t1 = m.time_without_compression(256);
  const double t2 = m.time_without_compression(512);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-12);
}

TEST(CostModel, CompressionTimeIndependentOfParallelism) {
  // The paper: per-process compression is embarrassingly parallel, so
  // the compression component is constant; only I/O grows.
  const auto m = paper_model(0.02);
  const double io256 = m.time_with_compression(256) - m.compression_time();
  const double io512 = m.time_with_compression(512) - m.compression_time();
  EXPECT_NEAR(io512, 2.0 * io256, 1e-12);
}

TEST(CostModel, CrosspointMatchesAnalyticSolution) {
  const auto m = paper_model(0.02);
  const auto cp = m.crosspoint();
  ASSERT_TRUE(cp.has_value());
  // At the crosspoint both strategies cost the same.
  const double p = *cp;
  const double with = m.compression_time() + 1.5e6 * 0.19 * p / 20e9;
  const double without = 1.5e6 * p / 20e9;
  EXPECT_NEAR(with, without, 1e-9);
  // Below: compression not viable; above: viable (Fig. 9 shape).
  const auto below = static_cast<std::size_t>(p * 0.5);
  const auto above = static_cast<std::size_t>(p * 2.0);
  EXPECT_FALSE(m.compression_viable(below));
  EXPECT_TRUE(m.compression_viable(above));
}

TEST(CostModel, PaperScaleCrosspointNearHundredsOfProcesses) {
  // With stage times in the paper's regime (tens of ms), the crosspoint
  // lands in the hundreds of processes, as in Fig. 9 (~768).
  const auto m = paper_model(0.047);
  const auto cp = m.crosspoint();
  ASSERT_TRUE(cp.has_value());
  EXPECT_GT(*cp, 100.0);
  EXPECT_LT(*cp, 2000.0);
}

TEST(CostModel, AsymptoticReductionIsOneMinusCr) {
  const auto m = paper_model(0.02);
  EXPECT_DOUBLE_EQ(m.asymptotic_reduction(), 0.81);  // the paper's 81 %
  // reduction_at approaches the asymptote from below as P grows.
  const double r2048 = m.reduction_at(2048);
  const double r1e6 = m.reduction_at(1000000);
  EXPECT_LT(r2048, 0.81);
  EXPECT_LT(r1e6, 0.81);
  EXPECT_GT(r1e6, r2048);
  EXPECT_NEAR(r1e6, 0.81, 0.01);
}

TEST(CostModel, ReductionAt2048MatchesPaperBallpark) {
  // The paper reports ~55 % reduction at P = 2048 with their measured
  // compression time; verify the model reproduces that with a
  // compression time in their regime.
  const auto m = paper_model(0.040);
  const double r = m.reduction_at(2048);
  EXPECT_GT(r, 0.3);
  EXPECT_LT(r, 0.81);
}

TEST(CostModel, SweepRowsConsistent) {
  const auto m = paper_model(0.02);
  const auto rows = m.sweep({256, 512, 1024, 2048});
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_NEAR(row.with_compression_s, m.time_with_compression(row.parallelism), 1e-12);
    EXPECT_NEAR(row.without_compression_s, m.time_without_compression(row.parallelism), 1e-12);
    EXPECT_NEAR(row.stage_breakdown.total() + row.io_s, row.with_compression_s, 1e-12);
  }
  // Monotone in P.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].with_compression_s, rows[i - 1].with_compression_s);
    EXPECT_GT(rows[i].without_compression_s, rows[i - 1].without_compression_s);
  }
}

TEST(CostModel, NoCrosspointWhenCompressionDoesNotShrink) {
  StageTimes stages;
  stages.add("gzip", 0.01);
  const CheckpointCostModel m(1.5e6, 1.0, stages, StorageModel{20e9, 0.0});
  EXPECT_FALSE(m.crosspoint().has_value());
  EXPECT_FALSE(m.compression_viable(1 << 20));
}

TEST(CostModel, InvalidArgumentsRejected) {
  StageTimes stages;
  EXPECT_THROW(CheckpointCostModel(0.0, 0.2, stages, StorageModel{}), InvalidArgumentError);
  EXPECT_THROW(CheckpointCostModel(1e6, -0.1, stages, StorageModel{}), InvalidArgumentError);
  EXPECT_THROW(CheckpointCostModel(1e6, 0.2, stages, StorageModel{0.0, 0.0}),
               InvalidArgumentError);
}

TEST(CostModel, LatencyShiftsBothCurves) {
  StageTimes stages;
  stages.add("gzip", 0.01);
  const CheckpointCostModel no_lat(1.5e6, 0.2, stages, StorageModel{20e9, 0.0});
  const CheckpointCostModel lat(1.5e6, 0.2, stages, StorageModel{20e9, 0.5});
  EXPECT_NEAR(lat.time_without_compression(100) - no_lat.time_without_compression(100), 0.5,
              1e-12);
  EXPECT_NEAR(lat.time_with_compression(100) - no_lat.time_with_compression(100), 0.5, 1e-12);
}

}  // namespace
}  // namespace wck
