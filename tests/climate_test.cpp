// Tests for the MiniClimate model: determinism, smoothness, physical
// sanity, conservation in the inviscid limit, chaos, and restart
// semantics — the properties the paper's evaluation depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "climate/mini_climate.hpp"
#include "stats/error_metrics.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

ClimateConfig small_config() {
  ClimateConfig cfg;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.nz = 3;
  return cfg;
}

TEST(MiniClimate, DeterministicForSeed) {
  MiniClimate a(small_config());
  MiniClimate b(small_config());
  a.run(20);
  b.run(20);
  EXPECT_EQ(a.temperature(), b.temperature());
  EXPECT_EQ(a.vorticity(), b.vorticity());
  EXPECT_EQ(a.pressure(), b.pressure());
}

TEST(MiniClimate, DifferentSeedsDiverge) {
  ClimateConfig cfg = small_config();
  MiniClimate a(cfg);
  cfg.seed += 1;
  MiniClimate b(cfg);
  EXPECT_FALSE(a.vorticity() == b.vorticity());
}

TEST(MiniClimate, StateShapesAreLevelMajor) {
  const MiniClimate m(small_config());
  const Shape want{3, 16, 32};
  EXPECT_EQ(m.temperature().shape(), want);
  EXPECT_EQ(m.vorticity().shape(), want);
  EXPECT_EQ(m.pressure().shape(), want);
  EXPECT_EQ(m.wind_u().shape(), want);
}

TEST(MiniClimate, StepCountAdvances) {
  MiniClimate m(small_config());
  EXPECT_EQ(m.step_count(), 0u);
  m.run(7);
  EXPECT_EQ(m.step_count(), 7u);
}

TEST(MiniClimate, StateStaysFiniteAndBounded) {
  MiniClimate m(small_config());
  m.run(300);
  for (const double v : m.vorticity().values()) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LT(std::abs(v), 100.0);
  }
  for (const double t : m.temperature().values()) {
    ASSERT_TRUE(std::isfinite(t));
    ASSERT_GT(t, 150.0);  // plausible Kelvin range
    ASSERT_LT(t, 400.0);
  }
  for (const double p : m.pressure().values()) {
    ASSERT_GT(p, 1000.0);
    ASSERT_LT(p, 2e5);
  }
}

TEST(MiniClimate, FieldsAreSpatiallySmooth) {
  // The property the wavelet front-end needs: neighbouring values are
  // close relative to the global range (paper Sec. II-C).
  MiniClimate m(small_config());
  m.run(100);
  const auto& t = m.temperature();
  const std::size_t nx = 32;
  const std::size_t ny = 16;
  double max_step = 0.0;
  double lo = t[0];
  double hi = t[0];
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i + 1 < nx; ++i) {
        max_step = std::max(max_step, std::abs(t(k, j, i + 1) - t(k, j, i)));
      }
    }
  }
  for (const double v : t.values()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(max_step, (hi - lo) / 3.0);
}

TEST(MiniClimate, ArakawaConservesEnergyAndEnstrophyInviscid) {
  // With forcing, drag, viscosity, coupling and relaxation off, the
  // Arakawa spatial discretization conserves kinetic energy and
  // enstrophy exactly; SSP RK3 adds an O(dt^3)-per-step drift. Check the
  // drift is small, and that halving dt shrinks it by ~2^3 over the same
  // physical time (third-order convergence).
  ClimateConfig cfg = small_config();
  cfg.nz = 1;
  cfg.viscosity = 0.0;
  cfg.drag = 0.0;
  cfg.forcing_amplitude = 0.0;
  cfg.vertical_coupling = 0.0;
  cfg.thermal_relaxation = 0.0;
  cfg.thermal_diffusivity = 0.0;

  // Enstrophy sum(zeta^2) is the exactly conserved invariant of the
  // Arakawa scheme; its drift comes purely from RK3 and converges at
  // third order in dt.
  auto enstrophy_drift = [&](double dt, std::uint64_t steps) {
    ClimateConfig c = cfg;
    c.dt = dt;
    MiniClimate m(c);
    const double z0 = m.enstrophy();
    m.run(steps);
    return std::abs(m.enstrophy() - z0) / z0;
  };
  const double coarse = enstrophy_drift(0.02, 100);
  EXPECT_LT(coarse, 1e-4);
  const double fine = enstrophy_drift(0.01, 200);  // same physical time
  EXPECT_LT(fine, coarse / 4.0);  // high-order convergence

  // The kinetic-energy diagnostic (central-difference winds) is close
  // to but not identical to the conserved energy functional; its drift
  // stays bounded and small.
  ClimateConfig c = cfg;
  c.dt = 0.02;
  MiniClimate m(c);
  const double e0 = m.kinetic_energy();
  m.run(100);
  EXPECT_NEAR(m.kinetic_energy(), e0, 0.02 * e0);
}

TEST(MiniClimate, DragDissipatesEnergyWithoutForcing) {
  ClimateConfig cfg = small_config();
  cfg.forcing_amplitude = 0.0;
  cfg.drag = 0.05;
  MiniClimate m(cfg);
  const double e0 = m.kinetic_energy();
  m.run(200);
  EXPECT_LT(m.kinetic_energy(), e0);
}

TEST(MiniClimate, SensitiveDependenceOnInitialConditions) {
  // Chaos: a tiny perturbation grows by orders of magnitude — the
  // mechanism behind the paper's Fig. 10 error growth after a lossy
  // restart.
  ClimateConfig cfg = small_config();
  cfg.nz = 1;
  MiniClimate a(cfg);
  MiniClimate b(cfg);

  NdArray<double> zeta = b.vorticity();
  zeta[0] += 1e-9;
  b.restore(zeta, b.temperature(), 0);

  const double initial_diff = 1e-9;
  a.run(4000);
  b.run(4000);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < zeta.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a.vorticity()[i] - b.vorticity()[i]));
  }
  EXPECT_GT(max_diff, 100.0 * initial_diff);
}

TEST(MiniClimate, RestoreRoundTripIsExact) {
  MiniClimate a(small_config());
  a.run(50);
  const NdArray<double> zeta = a.vorticity();
  const NdArray<double> temp = a.temperature();
  const std::uint64_t step = a.step_count();

  MiniClimate b(small_config());
  b.restore(zeta, temp, step);
  EXPECT_EQ(b.step_count(), step);
  EXPECT_EQ(b.vorticity(), a.vorticity());
  EXPECT_EQ(b.temperature(), a.temperature());
  // Diagnostics recomputed from the same prognostics must agree.
  EXPECT_EQ(b.pressure(), a.pressure());
  EXPECT_EQ(b.wind_u(), a.wind_u());

  // Continued evolution must match exactly (bitwise determinism).
  a.run(25);
  b.run(25);
  EXPECT_EQ(a.temperature(), b.temperature());
}

TEST(MiniClimate, RestoreShapeMismatchRejected) {
  MiniClimate m(small_config());
  NdArray<double> wrong(Shape{2, 16, 32});
  EXPECT_THROW(m.restore(wrong, m.temperature(), 0), InvalidArgumentError);
}

TEST(MiniClimate, FieldsListControlsCheckpointContract) {
  MiniClimate m(small_config());
  const auto fields = m.fields();
  ASSERT_EQ(fields.size(), 6u);
  EXPECT_EQ(fields[0].name, "vorticity");
  EXPECT_TRUE(fields[0].prognostic);
  EXPECT_EQ(fields[1].name, "temperature");
  EXPECT_TRUE(fields[1].prognostic);
  for (std::size_t i = 2; i < fields.size(); ++i) {
    EXPECT_FALSE(fields[i].prognostic) << fields[i].name;
  }
  for (const auto& f : fields) {
    EXPECT_NE(f.array, nullptr);
    EXPECT_EQ(f.array->shape(), m.temperature().shape());
  }
}

TEST(MiniClimate, WindDiagnosticsMatchStreamfunctionDerivatives) {
  // u = -dpsi/dy and v = dpsi/dx imply du/dx + dv/dy = 0 discretely:
  // the diagnosed horizontal flow is divergence-free.
  MiniClimate m(small_config());
  m.run(30);
  const auto& u = m.wind_u();
  const auto& v = m.wind_v();
  const std::size_t nx = 32;
  const std::size_t ny = 16;
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      const std::size_t jp = (j + 1) % ny;
      const std::size_t jm = (j + ny - 1) % ny;
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t ip = (i + 1) % nx;
        const std::size_t im = (i + nx - 1) % nx;
        const double div =
            (u(k, j, ip) - u(k, j, im)) / 2.0 + (v(k, jp, i) - v(k, jm, i)) / 2.0;
        ASSERT_NEAR(div, 0.0, 1e-10);
      }
    }
  }
}

TEST(MiniClimate, PressureDecreasesWithHeight) {
  MiniClimate m(small_config());
  m.run(20);
  const auto& p = m.pressure();
  double mean0 = 0.0;
  double mean2 = 0.0;
  for (std::size_t j = 0; j < 16; ++j) {
    for (std::size_t i = 0; i < 32; ++i) {
      mean0 += p(0, j, i);
      mean2 += p(2, j, i);
    }
  }
  EXPECT_GT(mean0, mean2);
}

TEST(MiniClimate, InvalidConfigRejected) {
  ClimateConfig cfg = small_config();
  cfg.nx = 33;  // not a power of two
  EXPECT_THROW(MiniClimate{cfg}, InvalidArgumentError);
  cfg = small_config();
  cfg.dt = 0.0;
  EXPECT_THROW(MiniClimate{cfg}, InvalidArgumentError);
  cfg = small_config();
  cfg.nz = 0;
  EXPECT_THROW(MiniClimate{cfg}, InvalidArgumentError);
}

TEST(MiniClimate, SingleLevelSupported) {
  ClimateConfig cfg = small_config();
  cfg.nz = 1;
  MiniClimate m(cfg);
  m.run(10);
  for (const double w : m.wind_w().values()) EXPECT_DOUBLE_EQ(w, 0.0);
}

}  // namespace
}  // namespace wck
