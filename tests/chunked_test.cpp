// Tests for chunked (parallel) compression of a single array.
#include <gtest/gtest.h>

#include "core/chunked.hpp"
#include "core/synthetic.hpp"
#include "stats/error_metrics.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

ChunkedParams params_with(std::size_t chunks, int n = 128) {
  ChunkedParams p;
  p.base.quantizer.divisions = n;
  p.chunks = chunks;
  return p;
}

TEST(Chunked, RoundTripSequential) {
  const auto field = make_temperature_field(Shape{64, 32, 4}, 1);
  for (const std::size_t chunks : {1u, 2u, 5u, 64u}) {
    const auto comp = chunked_compress(field, params_with(chunks));
    const auto back = chunked_decompress(comp.data);
    EXPECT_EQ(back.shape(), field.shape()) << chunks;
    const auto err = relative_error(field.values(), back.values());
    EXPECT_LT(err.mean_rel_percent(), 0.5) << chunks;
  }
}

TEST(Chunked, RoundTripParallelMatchesSequentialBytes) {
  // Determinism: the stream must not depend on the thread count.
  const auto field = make_temperature_field(Shape{60, 32, 4}, 2);
  const auto seq = chunked_compress(field, params_with(6));
  ThreadPool pool(4);
  const auto par = chunked_compress(field, params_with(6), &pool);
  EXPECT_EQ(seq.data, par.data);

  const auto back_seq = chunked_decompress(seq.data);
  const auto back_par = chunked_decompress(par.data, &pool);
  EXPECT_EQ(back_seq, back_par);
}

TEST(Chunked, ChunkCountClampedToRows) {
  const auto field = make_smooth_field(Shape{3, 64}, 3);
  const auto comp = chunked_compress(field, params_with(100));
  const auto back = chunked_decompress(comp.data);
  EXPECT_EQ(back.shape(), field.shape());
}

TEST(Chunked, Rank1Supported) {
  const auto field = make_smooth_field(Shape{10000}, 4);
  const auto comp = chunked_compress(field, params_with(8));
  const auto back = chunked_decompress(comp.data);
  const auto err = relative_error(field.values(), back.values());
  EXPECT_LT(err.mean_rel_percent(), 1.0);
}

TEST(Chunked, RateCloseToUnchunked) {
  // Per-chunk tables and lost cross-chunk correlation cost a little
  // space, but the rate must stay in the same regime.
  const auto field = make_temperature_field(Shape{128, 32, 4}, 5);
  const WaveletCompressor whole(params_with(1).base);
  const auto whole_comp = whole.compress(field);
  const auto chunked = chunked_compress(field, params_with(8));
  EXPECT_LT(chunked.data.size(), whole_comp.data.size() * 3 / 2);
}

TEST(Chunked, DiagnosticsAggregate) {
  const auto field = make_temperature_field(Shape{64, 32, 2}, 6);
  const auto comp = chunked_compress(field, params_with(4));
  EXPECT_EQ(comp.original_bytes, field.size_bytes());
  EXPECT_GT(comp.payload_bytes, 0u);
  EXPECT_LE(comp.quantized_count, comp.high_count);
  EXPECT_GT(comp.times.get("wavelet"), 0.0);
}

TEST(Chunked, AutoChunksUsesPoolWidth) {
  const auto field = make_temperature_field(Shape{64, 16, 2}, 7);
  ThreadPool pool(3);
  ChunkedParams p = params_with(0);
  const auto comp = chunked_compress(field, p, &pool);
  const auto back = chunked_decompress(comp.data, &pool);
  EXPECT_EQ(back.shape(), field.shape());
}

TEST(Chunked, MalformedStreamsRejected) {
  EXPECT_THROW((void)chunked_decompress({}), FormatError);
  const auto field = make_smooth_field(Shape{16, 16}, 8);
  auto comp = chunked_compress(field, params_with(2));
  comp.data[10] ^= std::byte{0x01};
  EXPECT_THROW((void)chunked_decompress(comp.data), Error);
  Bytes cut(comp.data.begin(), comp.data.begin() + 20);
  EXPECT_THROW((void)chunked_decompress(cut), Error);
}

TEST(Chunked, EmptyInputRejected) {
  NdArray<double> empty;
  EXPECT_THROW((void)chunked_compress(empty, params_with(2)), InvalidArgumentError);
}

}  // namespace
}  // namespace wck
