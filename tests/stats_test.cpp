// Unit tests for the Eq. 5 / Eq. 6 evaluation metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/error_metrics.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

TEST(RelativeError, ExactReconstructionIsZero) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const auto s = relative_error(x, x);
  EXPECT_DOUBLE_EQ(s.mean_rel, 0.0);
  EXPECT_DOUBLE_EQ(s.max_rel, 0.0);
  EXPECT_DOUBLE_EQ(s.rmse, 0.0);
  EXPECT_EQ(s.count, 3u);
}

TEST(RelativeError, Equation6Definition) {
  // rei = |xi - x~i| / (max - min); range here is 10 - 0 = 10.
  const std::vector<double> x = {0.0, 5.0, 10.0};
  const std::vector<double> y = {1.0, 5.0, 10.0};  // abs err 1 at i=0
  const auto s = relative_error(x, y);
  EXPECT_DOUBLE_EQ(s.value_range, 10.0);
  EXPECT_DOUBLE_EQ(s.max_rel, 0.1);
  EXPECT_DOUBLE_EQ(s.mean_rel, 0.1 / 3.0);
  EXPECT_DOUBLE_EQ(s.max_abs, 1.0);
}

TEST(RelativeError, PercentAccessors) {
  const std::vector<double> x = {0.0, 1.0};
  const std::vector<double> y = {0.012, 1.0};
  const auto s = relative_error(x, y);
  EXPECT_NEAR(s.max_rel_percent(), 1.2, 1e-12);
}

TEST(RelativeError, ConstantOriginalHandled) {
  const std::vector<double> x = {5.0, 5.0};
  const auto exact = relative_error(x, x);
  EXPECT_DOUBLE_EQ(exact.mean_rel, 0.0);
  const std::vector<double> y = {5.0, 6.0};
  const auto off = relative_error(x, y);
  EXPECT_GT(off.max_rel, 0.0);  // error reported, no division by zero
  EXPECT_TRUE(std::isfinite(off.max_rel));
}

TEST(RelativeError, SizeMismatchRejected) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW((void)relative_error(x, y), InvalidArgumentError);
}

TEST(RelativeError, EmptyInputIsZero) {
  const auto s = relative_error({}, {});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean_rel, 0.0);
}

TEST(RelativeError, RmseMatchesHandComputation) {
  const std::vector<double> x = {0.0, 0.0, 0.0, 10.0};
  const std::vector<double> y = {3.0, -4.0, 0.0, 10.0};
  const auto s = relative_error(x, y);
  EXPECT_DOUBLE_EQ(s.rmse, std::sqrt((9.0 + 16.0) / 4.0));
}

TEST(Psnr, ConventionCoversDegenerateInputs) {
  // Zero range (constant signal): PSNR is undefined, reported as 0.
  EXPECT_DOUBLE_EQ(psnr_db(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(psnr_db(-1.0, 1.0), 0.0);
  // Exact reconstruction: +infinity, the serialization layer turns it
  // into JSON null.
  EXPECT_TRUE(std::isinf(psnr_db(10.0, 0.0)));
  EXPECT_GT(psnr_db(10.0, 0.0), 0.0);
  // Normal case: 20 log10(range / rmse).
  EXPECT_DOUBLE_EQ(psnr_db(100.0, 1.0), 40.0);
  EXPECT_NEAR(psnr_db(1.0, 0.01), 40.0, 1e-12);
}

TEST(Psnr, RelativeErrorFillsPsnrConsistently) {
  const std::vector<double> x = {0.0, 5.0, 10.0};
  const std::vector<double> y = {1.0, 5.0, 10.0};
  const auto s = relative_error(x, y);
  EXPECT_DOUBLE_EQ(s.psnr, psnr_db(s.value_range, s.rmse));
  // Exact pair: +inf.
  EXPECT_TRUE(std::isinf(relative_error(x, x).psnr));
  // Empty pair: degenerate, 0.
  EXPECT_DOUBLE_EQ(relative_error({}, {}).psnr, 0.0);
}

TEST(CompressionRate, Equation5) {
  EXPECT_DOUBLE_EQ(compression_rate_percent(1000, 120), 12.0);
  EXPECT_DOUBLE_EQ(compression_rate_percent(1000, 1000), 100.0);
  EXPECT_DOUBLE_EQ(compression_rate_percent(0, 10), 0.0);
}

TEST(RunningStatsTest, MomentsMatchDirectComputation) {
  RunningStats rs;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

}  // namespace
}  // namespace wck
