// Unit tests for shapes, dense arrays, strided views and line iteration.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "ndarray/ndarray.hpp"
#include "ndarray/shape.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{4, 3, 2};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.size(), 24u);
  EXPECT_EQ(s[0], 4u);
  EXPECT_EQ(s.extent(2), 2u);
  EXPECT_EQ(s.to_string(), "[4x3x2]");
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, RowMajorStrides) {
  const Shape s{4, 3, 2};
  const auto st = s.row_major_strides();
  EXPECT_EQ(st[0], 6u);
  EXPECT_EQ(st[1], 2u);
  EXPECT_EQ(st[2], 1u);
}

TEST(Shape, InvalidRankRejected) {
  EXPECT_THROW(Shape({}), InvalidArgumentError);
  EXPECT_THROW(Shape({1, 2, 3, 4, 5}), InvalidArgumentError);
  EXPECT_THROW((void)Shape::of_rank(0), InvalidArgumentError);
}

TEST(Shape, AxisOutOfRangeRejected) {
  const Shape s{2, 2};
  EXPECT_THROW((void)s.extent(2), InvalidArgumentError);
}

TEST(NdArray, IndexingIsRowMajor) {
  NdArray<double> a(Shape{2, 3});
  std::iota(a.values().begin(), a.values().end(), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 2), 5.0);
}

TEST(NdArray, ConstructFromVectorValidatesSize) {
  std::vector<double> v(5, 1.0);
  EXPECT_THROW(NdArray<double>(Shape{2, 3}, v), InvalidArgumentError);
  EXPECT_NO_THROW(NdArray<double>(Shape{5}, v));
}

TEST(NdSpan, SubblockSelectsWindow) {
  NdArray<double> a(Shape{4, 4});
  std::iota(a.values().begin(), a.values().end(), 0.0);
  const std::size_t offs[] = {1, 2};
  const std::size_t exts[] = {2, 2};
  auto sub = a.view().subblock(offs, exts);
  EXPECT_DOUBLE_EQ(sub(0, 0), a(1, 2));
  EXPECT_DOUBLE_EQ(sub(1, 1), a(2, 3));
  sub(0, 0) = -1.0;
  EXPECT_DOUBLE_EQ(a(1, 2), -1.0);
}

TEST(NdSpan, SubblockOutOfRangeRejected) {
  NdArray<double> a(Shape{4, 4});
  const std::size_t offs[] = {3, 0};
  const std::size_t exts[] = {2, 2};
  EXPECT_THROW((void)a.view().subblock(offs, exts), InvalidArgumentError);
}

TEST(NdSpan, ForEachLineAxis0CoversAllColumns) {
  NdArray<double> a(Shape{3, 4});
  std::iota(a.values().begin(), a.values().end(), 0.0);
  std::size_t lines = 0;
  a.view().for_each_line(0, [&](const Line<double>& ln) {
    EXPECT_EQ(ln.count, 3u);
    EXPECT_EQ(ln.stride, 4);
    ++lines;
  });
  EXPECT_EQ(lines, 4u);  // one line per column
}

TEST(NdSpan, ForEachLineAxis1CoversAllRows) {
  NdArray<double> a(Shape{3, 4});
  std::size_t lines = 0;
  a.view().for_each_line(1, [&](const Line<double>& ln) {
    EXPECT_EQ(ln.count, 4u);
    EXPECT_EQ(ln.stride, 1);
    ++lines;
  });
  EXPECT_EQ(lines, 3u);
}

TEST(NdSpan, ForEachLineVisitsEveryElementExactlyOnce) {
  // Property: over all axes, each element is touched (rank) times total,
  // once per axis.
  for (const Shape& shape : {Shape{5}, Shape{3, 4}, Shape{2, 3, 4}, Shape{2, 2, 2, 3}}) {
    NdArray<int> a(shape, 0);
    for (std::size_t ax = 0; ax < shape.rank(); ++ax) {
      a.view().for_each_line(ax, [&](const Line<int>& ln) {
        for (std::size_t i = 0; i < ln.count; ++i) ln[i] += 1;
      });
    }
    for (const int v : a.values()) {
      EXPECT_EQ(v, static_cast<int>(shape.rank())) << shape.to_string();
    }
  }
}

TEST(NdSpan, ForEachLineRank1IsSingleLine) {
  NdArray<double> a(Shape{7});
  std::size_t lines = 0;
  a.view().for_each_line(0, [&](const Line<double>& ln) {
    EXPECT_EQ(ln.count, 7u);
    ++lines;
  });
  EXPECT_EQ(lines, 1u);
}

TEST(NdSpan, ForEachLineOnSubblockUsesParentStrides) {
  NdArray<double> a(Shape{4, 6});
  std::iota(a.values().begin(), a.values().end(), 0.0);
  const std::size_t offs[] = {1, 1};
  const std::size_t exts[] = {2, 3};
  auto sub = a.view().subblock(offs, exts);
  std::vector<double> seen;
  sub.for_each_line(1, [&](const Line<double>& ln) {
    for (std::size_t i = 0; i < ln.count; ++i) seen.push_back(ln[i]);
  });
  EXPECT_EQ(seen, (std::vector<double>{7, 8, 9, 13, 14, 15}));
}

TEST(NdSpan, VisitRowMajorOrder) {
  NdArray<double> a(Shape{2, 2, 2});
  std::iota(a.values().begin(), a.values().end(), 0.0);
  std::vector<double> seen;
  a.view().visit_row_major([&](double& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(NdSpan, CopyToFromRoundTripOnStridedView) {
  NdArray<double> a(Shape{4, 4});
  std::iota(a.values().begin(), a.values().end(), 0.0);
  const std::size_t offs[] = {0, 0};
  const std::size_t exts[] = {2, 2};
  auto sub = a.view().subblock(offs, exts);

  std::vector<double> flat(4);
  sub.copy_to(flat);
  EXPECT_EQ(flat, (std::vector<double>{0, 1, 4, 5}));

  const std::vector<double> repl = {9, 8, 7, 6};
  sub.copy_from(repl);
  EXPECT_DOUBLE_EQ(a(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 6.0);
  EXPECT_DOUBLE_EQ(a(2, 2), 10.0);  // outside the window: untouched
}

TEST(NdSpan, AtValidatesIndices) {
  NdArray<double> a(Shape{2, 3});
  const std::size_t good[] = {1, 2};
  const std::size_t bad[] = {1, 3};
  EXPECT_NO_THROW((void)a.view().at(good));
  EXPECT_THROW((void)a.view().at(bad), InvalidArgumentError);
}

TEST(NdArray, EqualityComparesShapeAndData) {
  NdArray<double> a(Shape{2, 2}, 1.0);
  NdArray<double> b(Shape{2, 2}, 1.0);
  NdArray<double> c(Shape{4}, 1.0);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  b(1, 1) = 2.0;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace wck
