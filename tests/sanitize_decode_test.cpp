// Decoder robustness under targeted corruption, designed to run under
// ASan/UBSan: every mutation of a valid stream must be rejected with a
// typed wck::Error (or, where checksums genuinely cannot see it, decoded
// to *some* valid result) — never an over-read, crash, or partial write
// into application state. Mutations come from util/mutate.hpp so each
// case replays deterministically from its seed.
#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "deflate/deflate.hpp"
#include "encode/payload.hpp"
#include "util/error.hpp"
#include "util/mutate.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

/// A hand-built, internally consistent Fig. 5 payload whose section
/// offsets we can compute exactly (shape 8x8 => 16 low + 48 high).
LossyPayload reference_payload() {
  LossyPayload p;
  p.shape = Shape{8, 8};
  p.levels = 1;
  p.wavelet = WaveletKind::kHaar;
  p.quantizer = QuantizerKind::kSpike;
  p.averages = {0.0, 0.5, -0.5, 1.25};
  p.low_band.resize(16);
  for (std::size_t i = 0; i < p.low_band.size(); ++i) {
    p.low_band[i] = 0.01 * static_cast<double>(i);
  }
  p.quantized = Bitmap(48);
  for (std::size_t i = 0; i < 48; i += 2) p.quantized.set(i, true);  // 24 set
  for (std::size_t i = 0; i < 24; ++i) {
    p.indices.push_back(static_cast<std::uint8_t>(i % p.averages.size()));
  }
  p.exact_values.resize(24, 3.5);
  return p;
}

/// Byte ranges of the Fig. 5 sections inside encode_payload() output.
struct PayloadLayout {
  std::size_t header_end;    // magic..count varints
  std::size_t averages_end;  // averages[] table
  std::size_t low_end;       // raw low band
  std::size_t bitmap_end;    // quantization bitmap
  std::size_t index_end;     // 1-byte indexes
  std::size_t exact_end;     // exact doubles (CRC follows)
};

PayloadLayout layout_of(const LossyPayload& p) {
  PayloadLayout l{};
  // magic(4) version(1) quantizer(1) wavelet(1) rank(1) levels(1) +
  // one varint byte per extent (extents < 128) + 4 count varints (< 128).
  l.header_end = 9 + p.shape.rank() + 4;
  l.averages_end = l.header_end + 8 * p.averages.size();
  l.low_end = l.averages_end + 8 * p.low_band.size();
  l.bitmap_end = l.low_end + p.quantized.byte_size();
  l.index_end = l.bitmap_end + p.indices.size();
  l.exact_end = l.index_end + 8 * p.exact_values.size();
  return l;
}

TEST(SanitizeDecode, PayloadLayoutMatchesEncoder) {
  const LossyPayload p = reference_payload();
  const Bytes enc = encode_payload(p);
  EXPECT_EQ(enc.size(), layout_of(p).exact_end + 4);  // + trailing CRC
  const LossyPayload back = decode_payload(enc);
  EXPECT_EQ(back.low_band, p.low_band);
  EXPECT_EQ(back.indices, p.indices);
}

/// Mutations restricted to each Fig. 5 section must all be detected:
/// the trailing CRC-32 covers every byte before it.
TEST(SanitizeDecode, PayloadSectionCorruptionAlwaysRejected) {
  const LossyPayload p = reference_payload();
  const Bytes enc = encode_payload(p);
  const PayloadLayout l = layout_of(p);
  const std::pair<std::size_t, std::size_t> sections[] = {
      {0, l.header_end},           {l.header_end, l.averages_end},
      {l.averages_end, l.low_end}, {l.low_end, l.bitmap_end},
      {l.bitmap_end, l.index_end}, {l.index_end, l.exact_end},
  };
  std::uint64_t seed = 1000;
  for (const auto& [lo, hi] : sections) {
    Xoshiro256 rng(seed++);
    for (int t = 0; t < 300; ++t) {
      Bytes bad = enc;
      const Mutation m = mutate(bad, rng, lo, hi);
      if (bad == enc) continue;  // some kinds can be no-ops (e.g. zeroing zeros)
      try {
        (void)decode_payload(bad);
        FAIL() << "accepted corrupt payload: " << describe(m) << " section [" << lo << "," << hi
               << ") seed " << seed - 1 << " trial " << t;
      } catch (const Error&) {
        // detected, as required
      }
    }
  }
}

TEST(SanitizeDecode, PayloadEveryPrefixRejected) {
  const Bytes enc = encode_payload(reference_payload());
  for (std::size_t n = 0; n < enc.size(); ++n) {
    const Bytes prefix(enc.begin(), enc.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_THROW((void)decode_payload(prefix), Error) << "prefix length " << n;
  }
}

/// Full compressed stream (payload + DEFLATE container): mutations land
/// in the entropy-coded bytes, exercising BitReader / HuffmanDecoder /
/// match-copy bounds. Error or (rarely) a clean decode are both fine;
/// anything else is a defect.
TEST(SanitizeDecode, CompressorStreamMutationsNeverCrash) {
  const auto field = make_smooth_field(Shape{32, 24}, 77);
  CompressionParams params;
  params.quantizer.divisions = 64;
  const Bytes stream = WaveletCompressor(params).compress(field).data;
  Xoshiro256 rng(2024);
  int rejected = 0;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    Bytes bad = stream;
    const int n_mut = 1 + static_cast<int>(rng.bounded(3));
    Mutation last;
    for (int i = 0; i < n_mut; ++i) last = mutate(bad, rng);
    try {
      (void)WaveletCompressor::decompress(bad);
    } catch (const Error&) {
      ++rejected;
    } catch (const std::exception& e) {
      FAIL() << "non-library exception after " << describe(last) << " trial " << t << ": "
             << e.what();
    }
  }
  // zlib Adler-32 + payload CRC make silent acceptance essentially
  // impossible; a tiny residue covers flips in ignored header bits.
  EXPECT_GT(rejected, trials * 95 / 100);
}

/// Raw DEFLATE (no container checksum): corrupt streams may decode to
/// garbage, but must never over-read or escape the typed-error contract.
TEST(SanitizeDecode, RawDeflateMutationsNeverCrash) {
  Bytes input(4096);
  Xoshiro256 fill(5);
  for (std::size_t i = 0; i < input.size(); ++i) {
    // Compressible mix: long runs + noise, so all block types appear.
    input[i] = (i % 64 < 48) ? std::byte{0x41} : static_cast<std::byte>(fill.bounded(256));
  }
  for (const int level : {1, 6, 9}) {
    const Bytes stream = deflate_compress(input, DeflateOptions{level});
    Xoshiro256 rng(3000 + static_cast<std::uint64_t>(level));
    for (int t = 0; t < 400; ++t) {
      Bytes bad = stream;
      const Mutation m = mutate(bad, rng);
      try {
        (void)deflate_decompress(bad);
      } catch (const Error&) {
      } catch (const std::exception& e) {
        FAIL() << "level " << level << " trial " << t << " (" << describe(m)
               << "): " << e.what();
      }
    }
  }
}

/// Sharded (WCKP) container: mutations land in the frame header, the
/// per-block table, or the concatenated block bodies — parallel decode
/// must reject them with a typed error (per-block CRC-32 catches body
/// corruption) or, where a flip is genuinely invisible (reserved flags
/// byte), decode cleanly. Never a crash, over-read, or allocation bomb.
TEST(SanitizeDecode, ShardedContainerMutationsNeverCrash) {
  const auto field = make_smooth_field(Shape{48, 32}, 33);
  CompressionParams params;
  params.quantizer.divisions = 64;
  params.threads = 2;
  params.deflate_block_size = 2048;  // several blocks
  const Bytes stream = WaveletCompressor(params).compress(field).data;
  ASSERT_EQ(static_cast<std::uint8_t>(stream[0]), 4);  // sharded tag
  Xoshiro256 rng(6060);
  int rejected = 0;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    Bytes bad = stream;
    const int n_mut = 1 + static_cast<int>(rng.bounded(3));
    Mutation last;
    for (int i = 0; i < n_mut; ++i) last = mutate(bad, rng);
    try {
      (void)WaveletCompressor::decompress(bad);
    } catch (const Error&) {
      ++rejected;
    } catch (const std::exception& e) {
      FAIL() << "non-library exception after " << describe(last) << " trial " << t << ": "
             << e.what();
    }
  }
  // Per-block CRC-32 + payload CRC leave only reserved-bit flips
  // undetected.
  EXPECT_GT(rejected, trials * 95 / 100);
}

/// Restores must be transactional: after a rejected checkpoint, every
/// registered array still holds its pre-restore contents — even when the
/// corruption hits a *later* field than the ones already decoded.
TEST(SanitizeDecode, CheckpointRestoreIsAtomicUnderCorruption) {
  NdArray<double> a = make_smooth_field(Shape{16, 16}, 1);
  NdArray<double> b = make_smooth_field(Shape{8, 8}, 2);
  CheckpointRegistry reg;
  reg.add("alpha", &a);
  reg.add("beta", &b);
  const Bytes good = serialize_checkpoint(reg, GzipCodec{}, 7);

  Xoshiro256 rng(4242);
  for (int t = 0; t < 400; ++t) {
    Bytes bad = good;
    const Mutation m = mutate(bad, rng);
    NdArray<double> ra(Shape{16, 16}, -1.0);
    NdArray<double> rb(Shape{8, 8}, -2.0);
    CheckpointRegistry rreg;
    rreg.add("alpha", &ra);
    rreg.add("beta", &rb);
    bool threw = false;
    try {
      (void)restore_checkpoint(bad, rreg);
    } catch (const Error&) {
      threw = true;
    } catch (const std::exception& e) {
      FAIL() << "non-library exception, trial " << t << " (" << describe(m) << "): " << e.what();
    }
    if (threw) {
      // No partial output: both targets untouched.
      EXPECT_EQ(ra[0], -1.0) << "partial restore, trial " << t << " (" << describe(m) << ")";
      EXPECT_EQ(rb[0], -2.0) << "partial restore, trial " << t << " (" << describe(m) << ")";
    }
  }
}

}  // namespace
}  // namespace wck
