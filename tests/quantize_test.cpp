// Unit and property tests for the two quantization methods
// (paper Sec. III-B, Fig. 4, Eq. 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "quantize/quantizer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

/// High-band-like data: a large spike near zero plus sparse heavy tails —
/// the distribution shape sketched in the paper's Fig. 4.
std::vector<double> spiky_values(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.95) {
      v.push_back(rng.normal() * 0.01);  // the spike
    } else {
      v.push_back(rng.uniform(-10.0, 10.0));  // the tails
    }
  }
  return v;
}

TEST(SimpleQuantizer, AllValuesQuantized) {
  const auto values = spiky_values(10000, 1);
  const auto s = QuantizationScheme::analyze_simple(values, 16);
  for (const double v : values) {
    EXPECT_NE(s.classify(v), QuantizationScheme::kUnquantized);
  }
}

TEST(SimpleQuantizer, AtMostNDistinctRepresentatives) {
  const auto values = spiky_values(10000, 2);
  for (const int n : {1, 2, 4, 8, 128}) {
    const auto s = QuantizationScheme::analyze_simple(values, n);
    std::set<int> used;
    for (const double v : values) used.insert(s.classify(v));
    EXPECT_LE(static_cast<int>(used.size()), n);
    EXPECT_EQ(static_cast<int>(s.averages().size()), n);
  }
}

TEST(SimpleQuantizer, RepresentativeIsPartitionMean) {
  // Two well-separated clusters with n=2: each average must be the
  // cluster mean.
  const std::vector<double> values = {0.0, 1.0, 2.0, 10.0, 11.0, 12.0};
  const auto s = QuantizationScheme::analyze_simple(values, 2);
  EXPECT_DOUBLE_EQ(s.averages()[0], 1.0);
  EXPECT_DOUBLE_EQ(s.averages()[1], 11.0);
  EXPECT_EQ(s.classify(0.5), 0);
  EXPECT_EQ(s.classify(11.5), 1);
}

TEST(SimpleQuantizer, MaxValueMapsToLastPartition) {
  const std::vector<double> values = {0.0, 0.5, 1.0};
  const auto s = QuantizationScheme::analyze_simple(values, 4);
  EXPECT_EQ(s.classify(1.0), 3);
  EXPECT_EQ(s.classify(0.0), 0);
}

TEST(SimpleQuantizer, QuantizationErrorBoundedByPartitionWidth) {
  const auto values = spiky_values(5000, 3);
  const auto [lo, hi] =
      std::minmax_element(values.begin(), values.end());
  for (const int n : {4, 16, 64}) {
    const auto s = QuantizationScheme::analyze_simple(values, n);
    const double width = (*hi - *lo) / n;
    for (const double v : values) {
      const double rep = s.averages()[static_cast<std::size_t>(s.classify(v))];
      EXPECT_LE(std::abs(v - rep), width + 1e-12) << "n=" << n;
    }
  }
}

TEST(SimpleQuantizer, ErrorShrinksAsNGrows) {
  // The paper's Fig. 8 trend: larger division number -> smaller error.
  const auto values = spiky_values(20000, 4);
  double prev_err = 1e300;
  for (const int n : {1, 4, 16, 64, 256}) {
    const auto s = QuantizationScheme::analyze_simple(values, n);
    double err = 0.0;
    for (const double v : values) {
      err += std::abs(v - s.averages()[static_cast<std::size_t>(s.classify(v))]);
    }
    EXPECT_LE(err, prev_err * 1.001) << "n=" << n;
    prev_err = err;
  }
}

TEST(SimpleQuantizer, ConstantInputDegenerate) {
  const std::vector<double> values(100, 7.5);
  const auto s = QuantizationScheme::analyze_simple(values, 8);
  EXPECT_EQ(s.classify(7.5), 0);
  EXPECT_DOUBLE_EQ(s.averages()[0], 7.5);
}

TEST(SimpleQuantizer, EmptyInputYieldsEmptyScheme) {
  const auto s = QuantizationScheme::analyze_simple({}, 8);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.classify(1.0), QuantizationScheme::kUnquantized);
}

TEST(SimpleQuantizer, InvalidDivisionsRejected) {
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_THROW((void)QuantizationScheme::analyze_simple(values, 0), InvalidArgumentError);
  EXPECT_THROW((void)QuantizationScheme::analyze_simple(values, 257), InvalidArgumentError);
}

TEST(SpikeQuantizer, DetectsSpikePartitions) {
  const auto values = spiky_values(50000, 5);
  const auto s = QuantizationScheme::analyze_spike(values, 16, 64);
  // The spike near 0 must be detected.
  EXPECT_NE(s.classify(0.0), QuantizationScheme::kUnquantized);
  // Eq. 4: the detected partitions hold at least Ntotal/d values each.
  const Histogram h = Histogram::build(values, 64);
  const double threshold = static_cast<double>(values.size()) / 64;
  for (std::size_t p = 0; p < 64; ++p) {
    EXPECT_EQ(s.spike_mask()[p],
              static_cast<double>(h.counts[p]) >= threshold)
        << "partition " << p;
  }
}

TEST(SpikeQuantizer, TailValuesStayExact) {
  const auto values = spiky_values(50000, 6);
  const auto s = QuantizationScheme::analyze_spike(values, 16, 64);
  // Extreme tail values sit in sparse partitions: unquantized.
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  EXPECT_EQ(s.classify(*lo), QuantizationScheme::kUnquantized);
  EXPECT_EQ(s.classify(*hi), QuantizationScheme::kUnquantized);
}

TEST(SpikeQuantizer, QuantizedFractionIsLarge) {
  // 95% of the mass is in the spike; nearly all values should quantize.
  const auto values = spiky_values(50000, 7);
  const auto s = QuantizationScheme::analyze_spike(values, 32, 64);
  std::size_t quantized = 0;
  for (const double v : values) {
    quantized += s.classify(v) != QuantizationScheme::kUnquantized;
  }
  EXPECT_GT(quantized, values.size() * 90 / 100);
  EXPECT_LT(quantized, values.size());  // but not everything
}

TEST(SpikeQuantizer, LowerErrorThanSimpleAtSameN) {
  // The paper's headline claim (Fig. 8): proposed quantization reduces
  // error versus simple quantization at comparable n.
  const auto values = spiky_values(50000, 8);
  for (const int n : {4, 16, 128}) {
    const auto simple = QuantizationScheme::analyze_simple(values, n);
    const auto spike = QuantizationScheme::analyze_spike(values, n, 64);
    auto total_err = [&](const QuantizationScheme& s) {
      double err = 0.0;
      for (const double v : values) {
        const int idx = s.classify(v);
        if (idx != QuantizationScheme::kUnquantized) {
          err += std::abs(v - s.averages()[static_cast<std::size_t>(idx)]);
        }
      }
      return err;
    };
    EXPECT_LT(total_err(spike), total_err(simple)) << "n=" << n;
  }
}

TEST(SpikeQuantizer, PerfectlyUniformDataQuantizesEverything) {
  // Evenly spaced values: every partition holds exactly the average
  // count, so Eq. 4 detects all partitions and behaviour matches simple
  // quantization.
  std::vector<double> values(8000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i) / static_cast<double>(values.size());
  }
  const auto s = QuantizationScheme::analyze_spike(values, 16, 8);
  for (const double v : values) {
    EXPECT_NE(s.classify(v), QuantizationScheme::kUnquantized);
  }
}

TEST(SpikeQuantizer, RandomUniformDataQuantizesAboutHalf) {
  // With random uniform data each partition's count fluctuates around
  // the mean, so roughly half the partitions clear the Eq. 4 threshold.
  Xoshiro256 rng(9);
  std::vector<double> values(100000);
  for (auto& v : values) v = rng.uniform(0.0, 1.0);
  const auto s = QuantizationScheme::analyze_spike(values, 16, 8);
  std::size_t quantized = 0;
  for (const double v : values) {
    quantized += s.classify(v) != QuantizationScheme::kUnquantized;
  }
  EXPECT_GT(quantized, values.size() / 10);
  EXPECT_LT(quantized, values.size());
}

TEST(SpikeQuantizer, RepresentativeCountBounded) {
  const auto values = spiky_values(20000, 10);
  for (const int n : {1, 8, 256}) {
    const auto s = QuantizationScheme::analyze_spike(values, n, 64);
    EXPECT_EQ(static_cast<int>(s.averages().size()), n);
    for (const double v : values) {
      const int idx = s.classify(v);
      if (idx != QuantizationScheme::kUnquantized) {
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, n);
      }
    }
  }
}

TEST(SpikeQuantizer, InvalidParamsRejected) {
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_THROW((void)QuantizationScheme::analyze_spike(values, 0, 64), InvalidArgumentError);
  EXPECT_THROW((void)QuantizationScheme::analyze_spike(values, 16, 0), InvalidArgumentError);
}

TEST(QuantizerConfig, AnalyzeDispatches) {
  const auto values = spiky_values(1000, 11);
  QuantizerConfig cfg;
  cfg.kind = QuantizerKind::kSimple;
  cfg.divisions = 8;
  EXPECT_EQ(QuantizationScheme::analyze(values, cfg).kind(), QuantizerKind::kSimple);
  cfg.kind = QuantizerKind::kSpike;
  EXPECT_EQ(QuantizationScheme::analyze(values, cfg).kind(), QuantizerKind::kSpike);
}

TEST(HistogramTest, CountsSumToInput) {
  const auto values = spiky_values(12345, 12);
  const Histogram h = Histogram::build(values, 64);
  std::uint64_t total = 0;
  for (const auto c : h.counts) total += c;
  EXPECT_EQ(total, values.size());
}

TEST(HistogramTest, BinOfClampsToEdges) {
  const std::vector<double> values = {0.0, 1.0};
  const Histogram h = Histogram::build(values, 4);
  EXPECT_EQ(h.bin_of(-5.0), 0);
  EXPECT_EQ(h.bin_of(5.0), 3);
  EXPECT_EQ(h.bin_of(0.0), 0);
  EXPECT_EQ(h.bin_of(1.0), 3);
}

TEST(HistogramTest, InvalidBinsRejected) {
  EXPECT_THROW((void)Histogram::build({}, 0), InvalidArgumentError);
}

}  // namespace
}  // namespace wck
