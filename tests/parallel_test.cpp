// Unit tests for the thread pool and simulated-rank harness.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/rank_set.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw InvalidArgumentError("boom"); });
  EXPECT_THROW((void)f.get(), InvalidArgumentError);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw CorruptDataError("bad rank");
                                 }),
               CorruptDataError);
}

TEST(ThreadPoolTest, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i) {
    futs.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(done.load(), 500);
}

TEST(RankSetTest, RunVisitsEveryRank) {
  RankSet ranks(17, 4);
  std::vector<std::atomic<int>> hits(17);
  ranks.run([&](std::size_t r) { hits[r].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RankSetTest, MapGathersPerRankResults) {
  RankSet ranks(8, 2);
  const auto out = ranks.map<std::size_t>([](std::size_t r) { return r * r; });
  for (std::size_t r = 0; r < 8; ++r) EXPECT_EQ(out[r], r * r);
}

}  // namespace
}  // namespace wck
