// Fixture: direct environment reads outside the env cache.
const char* violations() {
  const char* threads = std::getenv("WCK_THREADS");
  if (getenv("WCK_TELEMETRY") != nullptr) return threads;
  return nullptr;
}
