// Fixture: file I/O routed through the backend; mentions of raw
// primitives in comments (std::ofstream, fopen) and string literals
// must not count, nor must identifiers that merely contain the token.
void clean(wck::IoBackend& io, const std::filesystem::path& path, wck::Bytes data) {
  io.write_file(path, data);
  const wck::Bytes back = io.read_file(path);
  log("do not use std::ofstream or fopen( here");
  reopen(path);  // 'open' inside another identifier
}
