// Fixture: conforming metric names, plus dynamic names (which the
// scanner must skip — it only judges whole-literal arguments).
void clean(wck::telemetry::MetricsRegistry& registry, const std::string& op) {
  WCK_COUNTER_ADD("ckpt.async.jobs_completed", 1);
  WCK_GAUGE_SET("deflate.threads", 4.0);
  WCK_HISTOGRAM_RECORD("stage.deflate.block.seconds", 0.5);
  registry.counter("io.fault." + op).add(1);
  registry.counter(dynamic_name()).add(1);
  registry.histogram("ckpt.write.seconds").record(0.25);
}
