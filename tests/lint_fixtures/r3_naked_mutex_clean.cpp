// Fixture: the annotated wrappers; comments naming std::mutex and
// string literals ("std::lock_guard") must not count.
class Guarded {
  void poke() {
    wck::MutexLock lk(mu_);  // not a std::lock_guard
    cv_.notify_all();
    log("std::mutex is banned outside util/thread_annotations.hpp");
  }
  wck::Mutex mu_;
  wck::CondVar cv_;
  int value_ WCK_GUARDED_BY(mu_) = 0;
};
