// Fixture: socket work routed through the net layer; member calls,
// class-qualified names, std::bind, comments ("call connect() here"),
// and identifiers that merely contain the tokens must not count.
void clean(wck::net::UnixListener& listener, Signal& sig) {
  auto stream = wck::net::UnixStream::connect_to("/tmp/s.sock");
  auto server = wck::net::UnixListener::bind_and_listen("/tmp/s.sock");
  auto conn = listener.accept_next();
  sig.connect(on_ready);
  handler->accept(visitor);
  auto bound = std::bind(on_ready, 1);
  log("never call socket( or bind( directly");
  reconnect(stream);  // 'connect' inside another identifier
  int socket_count = 0;
  (void)socket_count;
}
