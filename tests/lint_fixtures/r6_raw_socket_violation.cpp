// Fixture: raw socket syscalls that bypass src/net/.
void violations(const sockaddr* addr, unsigned len) {
  int fd = socket(1, 1, 0);
  int fd2 = ::socket(1, 1, 0);
  bind(fd, addr, len);
  ::bind(fd, addr, len);
  connect(fd, addr, len);
  listen(fd, 8);
  int client = accept(fd, nullptr, nullptr);
  int client2 = ::accept4(fd, nullptr, nullptr, 0);
}
