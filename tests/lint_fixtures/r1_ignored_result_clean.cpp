// Fixture: every must-consume result below is consumed (or explicitly
// discarded with the sanctioned (void) cast).
bool clean(Backend& backend, Pool& pool, Manager& manager) {
  (void)backend.remove_file(path);
  const bool present = backend.exists(path);
  futures.push_back(pool.submit(job));
  if (io().exists(p)) {
    use(store->retrieve(key));
  }
  // A declaration is not a call site:
  // bool remove_file(const std::filesystem::path& path) override;
  return manager.scrub().ok && present;
}
ScrubReport Manager::scrub() { return do_scrub(); }
