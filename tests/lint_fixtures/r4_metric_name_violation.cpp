// Fixture: metric names that break the dotted.lowercase convention.
void violations(wck::telemetry::MetricsRegistry& registry) {
  WCK_COUNTER_ADD("CkptAsyncJobs", 1);
  WCK_GAUGE_SET("deflate.Threads", 4.0);
  WCK_HISTOGRAM_RECORD("stage_deflate_seconds", 0.5);
  registry.counter("soak.").add(1);
  registry.gauge("io.fault-count").set(2.0);
}
