// Fixture: raw standard-library synchronization primitives that the
// thread-safety analysis cannot see.
class Racy {
  void poke() {
    std::lock_guard<std::mutex> lk(mu_);
    std::unique_lock ul(other_);
    cv_.notify_all();
  }
  std::mutex mu_;
  std::mutex other_;
  std::condition_variable cv_;
};
