// Fixture: the sanctioned way to reach vector code — the dispatch
// table — plus lookalikes that must not trip the header tokens.
// A comment naming immintrin.h is fine, as is a diagnostic string.
#include "simd/dispatch.hpp"

#include <cstdio>

void report() {
  // emmintrin.h mentioned in a comment only.
  std::printf("build does not include immintrin.h directly\n");
  const char* my_immintrin_hpp = "not_the_header";
  (void)my_immintrin_hpp;
}
