// Fixture: intrinsics headers pulled in outside src/simd/.
#include <immintrin.h>
#include <emmintrin.h>
#include "xmmintrin.h"
#include <arm_neon.h>

void use_vectors() {}
