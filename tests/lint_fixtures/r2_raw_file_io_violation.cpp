// Fixture: raw file I/O that bypasses the IoBackend layer.
void violations(const char* path) {
  std::ofstream out(path, std::ios::binary);
  std::ifstream in(path);
  FILE* f = fopen(path, "w");
  int fd = ::open(path, 0);
}
