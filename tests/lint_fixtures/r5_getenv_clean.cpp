// Fixture: environment reads through the cache; getenv in comments and
// string literals must not count.
std::optional<std::string> clean() {
  // std::getenv is banned here; wck::env::get memoizes it race-free.
  log("never call getenv( directly");
  return wck::env::get("WCK_THREADS");
}
