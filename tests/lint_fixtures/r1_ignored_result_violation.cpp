// Fixture: every statement below discards a must-consume result.
// (Not compiled — parsed by wck_lint_test through lint::scan_file.)
void violations(Backend& backend, Pool& pool, Manager& manager) {
  backend.remove_file(path);
  pool.submit(job);
  manager.scrub();
  io().exists(p);
  store->retrieve(key);
}
