// Tests for incremental checkpointing (dirty-block deltas).
#include <gtest/gtest.h>

#include "ckpt/incremental.hpp"
#include "core/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

struct App {
  NdArray<double> a = make_smooth_field(Shape{32, 32}, 1);
  NdArray<double> b = make_smooth_field(Shape{16, 16}, 2);
  CheckpointRegistry registry;
  App() {
    registry.add("a", &a);
    registry.add("b", &b);
  }
};

TEST(Image, GatherScatterRoundTrip) {
  App app;
  const Bytes image = gather_image(app.registry);
  App other;
  other.a = NdArray<double>(app.a.shape(), 0.0);
  other.b = NdArray<double>(app.b.shape(), 0.0);
  scatter_image(image, other.registry);
  EXPECT_EQ(other.a, app.a);
  EXPECT_EQ(other.b, app.b);
}

TEST(Image, UnknownFieldRejected) {
  App app;
  const Bytes image = gather_image(app.registry);
  CheckpointRegistry partial;
  NdArray<double> a(app.a.shape());
  partial.add("a", &a);
  EXPECT_THROW(scatter_image(image, partial), FormatError);
}

TEST(Incremental, FirstCheckpointIsFull) {
  App app;
  IncrementalCheckpointer inc(1024);
  const auto c = inc.checkpoint(app.registry, 10);
  EXPECT_TRUE(c.is_full);
  EXPECT_EQ(c.dirty_blocks, c.total_blocks);
  EXPECT_EQ(c.step, 10u);
}

TEST(Incremental, NoChangeYieldsEmptyDelta) {
  App app;
  IncrementalCheckpointer inc(1024);
  (void)inc.checkpoint(app.registry, 1);
  const auto c = inc.checkpoint(app.registry, 2);
  EXPECT_FALSE(c.is_full);
  EXPECT_EQ(c.dirty_blocks, 0u);
  // Delta with zero blocks is tiny.
  EXPECT_LT(c.data.size(), 64u);
}

TEST(Incremental, LocalizedChangeYieldsSmallDelta) {
  App app;
  IncrementalCheckpointer inc(512);
  (void)inc.checkpoint(app.registry, 1);
  app.a(3, 3) += 1.0;  // one block dirty (maybe two if straddling)
  const auto c = inc.checkpoint(app.registry, 2);
  EXPECT_FALSE(c.is_full);
  EXPECT_GE(c.dirty_blocks, 1u);
  EXPECT_LE(c.dirty_blocks, 2u);
  EXPECT_LT(c.data.size(), 4 * 512 + 64);
}

TEST(Incremental, FullImageChangeDirtiesEverything) {
  // The paper's argument against incremental checkpointing for CFD:
  // physical arrays update everywhere every step.
  App app;
  IncrementalCheckpointer inc(1024);
  (void)inc.checkpoint(app.registry, 1);
  for (auto& v : app.a.values()) v += 0.001;
  for (auto& v : app.b.values()) v += 0.001;
  const auto c = inc.checkpoint(app.registry, 2);
  EXPECT_FALSE(c.is_full);
  EXPECT_EQ(c.dirty_blocks, c.total_blocks);
  EXPECT_GE(c.data.size(), c.image_bytes);  // no saving at all
}

TEST(Incremental, RestoreChainReconstructsLatestState) {
  App app;
  IncrementalCheckpointer inc(512);
  std::vector<IncrementalCheckpoint> chain;
  chain.push_back(inc.checkpoint(app.registry, 1));

  Xoshiro256 rng(3);
  for (int step = 2; step <= 5; ++step) {
    // Mutate a few random cells.
    for (int k = 0; k < 5; ++k) {
      app.a[rng.bounded(app.a.size())] += 0.5;
    }
    chain.push_back(inc.checkpoint(app.registry, static_cast<std::uint64_t>(step)));
  }

  App restored;
  restored.a = NdArray<double>(app.a.shape(), 0.0);
  restored.b = NdArray<double>(app.b.shape(), 0.0);
  const CheckpointInfo info = IncrementalCheckpointer::restore_chain(chain, restored.registry);
  EXPECT_EQ(info.step, 5u);
  EXPECT_EQ(restored.a, app.a);
  EXPECT_EQ(restored.b, app.b);
}

TEST(Incremental, PeriodicFullCheckpointsCutChains) {
  App app;
  IncrementalCheckpointer inc(512, /*full_every=*/3);
  EXPECT_TRUE(inc.checkpoint(app.registry, 1).is_full);
  app.a(0, 0) += 1;
  EXPECT_FALSE(inc.checkpoint(app.registry, 2).is_full);
  app.a(0, 0) += 1;
  EXPECT_FALSE(inc.checkpoint(app.registry, 3).is_full);
  app.a(0, 0) += 1;
  EXPECT_TRUE(inc.checkpoint(app.registry, 4).is_full);  // F D D F pattern
  app.a(0, 0) += 1;
  EXPECT_FALSE(inc.checkpoint(app.registry, 5).is_full);
}

TEST(Incremental, ChainValidation) {
  App app;
  IncrementalCheckpointer inc(512);
  auto full = inc.checkpoint(app.registry, 1);
  app.a(0, 0) += 1;
  auto delta = inc.checkpoint(app.registry, 2);

  // Empty chain.
  EXPECT_THROW((void)IncrementalCheckpointer::restore_chain({}, app.registry),
               InvalidArgumentError);
  // Chain starting with a delta.
  std::vector<IncrementalCheckpoint> bad = {delta};
  EXPECT_THROW((void)IncrementalCheckpointer::restore_chain(bad, app.registry), FormatError);
  // Full record appearing mid-chain.
  std::vector<IncrementalCheckpoint> bad2 = {full, full};
  EXPECT_THROW((void)IncrementalCheckpointer::restore_chain(bad2, app.registry), FormatError);
}

TEST(Incremental, CorruptionDetectedByImageCrc) {
  App app;
  IncrementalCheckpointer inc(512);
  auto full = inc.checkpoint(app.registry, 1);
  app.a(5, 5) += 2.0;
  auto delta = inc.checkpoint(app.registry, 2);
  delta.data[delta.data.size() / 2] ^= std::byte{0x04};
  std::vector<IncrementalCheckpoint> chain = {full, delta};
  EXPECT_THROW((void)IncrementalCheckpointer::restore_chain(chain, app.registry), Error);
}

TEST(Incremental, InvalidConstructionRejected) {
  EXPECT_THROW(IncrementalCheckpointer(0, 1), InvalidArgumentError);
  EXPECT_THROW(IncrementalCheckpointer(512, 0), InvalidArgumentError);
}

}  // namespace
}  // namespace wck
