// Tests for src/telemetry: metric semantics, concurrent recording
// through the ThreadPool (exercised under the tsan preset via the
// `sanitize` label), span nesting/ordering, RunReport JSON round-trip,
// and the zero-allocation guarantee of disabled instrumentation macros.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter for the zero-allocation guard test. Counting
// is relaxed-atomic so the override stays safe in multithreaded tests.
namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched
// pair even though malloc/free are consistently used here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow variants must be replaced too: libstdc++'s temporary
// buffers (std::stable_sort) allocate through nothrow new but release
// through plain operator delete — leaving these to the runtime would
// mix allocators (and trip ASan's alloc-dealloc-mismatch check).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace wck::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    MetricsRegistry::global().reset();
    Tracer::global().clear();
  }
};

TEST_F(TelemetryTest, CounterSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, GaugeSemantics) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST_F(TelemetryTest, HistogramBucketsAndStats) {
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  Histogram h{std::span<const double>(bounds)};
  EXPECT_EQ(h.count(), 0u);
  // Empty histogram: all derived stats are zero, not NaN/inf.
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  for (double x : {0.5, 1.0, 5.0, 50.0, 1000.0}) h.record(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1056.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1056.5 / 5.0);

  // Bounds are upper edges (inclusive); final bucket is overflow.
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), bounds.size() + 1);
  EXPECT_EQ(buckets[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(buckets[1], 1u);  // 5.0
  EXPECT_EQ(buckets[2], 1u);  // 50.0
  EXPECT_EQ(buckets[3], 1u);  // 1000.0 overflows
}

TEST_F(TelemetryTest, RegistryReturnsStableReferences) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("test.counter");
  Counter& b = reg.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.add(7);

  reg.gauge("test.gauge").set(2.25);
  reg.histogram("test.hist").record(0.5);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.counter"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge"), 2.25);
  EXPECT_EQ(snap.histograms.at("test.hist").count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("test.hist").sum, 0.5);
}

TEST_F(TelemetryTest, ConcurrentIncrementsThroughThreadPool) {
  auto& reg = MetricsRegistry::global();
  Counter& counter = reg.counter("test.concurrent");
  Histogram& hist = reg.histogram("test.concurrent.hist");

  constexpr std::size_t kItems = 20000;
  ThreadPool pool(4);
  pool.parallel_for(0, kItems, [&](std::size_t i) {
    counter.add(1);
    hist.record(static_cast<double>(i % 7) * 1e-6);
    // Also drive the macro path (enabled; registration raced on first use).
    WCK_COUNTER_ADD("test.concurrent.macro", 1);
  });

  EXPECT_EQ(counter.value(), kItems);
  EXPECT_EQ(hist.count(), kItems);
  EXPECT_EQ(reg.counter("test.concurrent.macro").value(), kItems);
  // ThreadPool's own instrumentation saw the submitted chunks.
  EXPECT_GT(reg.counter("pool.tasks_executed").value(), 0u);
}

TEST_F(TelemetryTest, SpanNestingAndOrdering) {
  {
    WCK_TRACE_SPAN("outer");
    {
      WCK_TRACE_SPAN("inner");
    }
    {
      WCK_TRACE_SPAN("inner2");
    }
  }
  const auto spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Snapshot is ordered by (tid, start): outer started first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "inner2");
  EXPECT_EQ(spans[2].depth, 1u);
  // Children are contained in the parent interval.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_LE(spans[1].start_us + spans[1].dur_us,
            spans[0].start_us + spans[0].dur_us + 1.0);
  // Chrome export is syntactically sane and mentions every span.
  const std::string chrome = Tracer::global().chrome_trace_json();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"outer\""), std::string::npos);
  EXPECT_NE(chrome.find("\"inner2\""), std::string::npos);
  const Json parsed = Json::parse(chrome);  // must not throw
  EXPECT_EQ(parsed.at("traceEvents").as_array().size(), 3u);
}

TEST_F(TelemetryTest, SpansFromMultipleThreadsKeepDistinctTids) {
  ThreadPool pool(3);
  pool.parallel_for(0, 64, [&](std::size_t) { WCK_TRACE_SPAN("worker"); });
  const auto spans = Tracer::global().snapshot();
  ASSERT_GE(spans.size(), 64u);  // pool instrumentation may add more
  for (std::size_t i = 1; i < spans.size(); ++i) {
    // (tid, start) ordering holds across stream boundaries.
    if (spans[i - 1].tid == spans[i].tid) {
      EXPECT_LE(spans[i - 1].start_us, spans[i].start_us);
    } else {
      EXPECT_LT(spans[i - 1].tid, spans[i].tid);
    }
  }
}

TEST_F(TelemetryTest, RunReportJsonRoundTrip) {
  RunReport report;
  report.tool = "telemetry_test";
  report.params["shape"] = "64x32x8";
  report.params["quantizer"] = "spike";
  report.stages_seconds["wavelet"] = 1.5e-3;
  report.stages_seconds["deflate"] = 4.25e-3;
  report.original_bytes = 131072;
  report.compressed_bytes = 44629;
  report.payload_bytes = 49730;
  report.has_error_metrics = true;
  report.error.mean_rel = 1e-4;
  report.error.max_rel = 5e-4;
  report.error.max_abs = 0.03;
  report.error.rmse = 0.0088;
  report.error.count = 16384;
  report.span_count = 6;

  const std::string text = report.to_json_text();
  const RunReport back = RunReport::from_json(Json::parse(text));
  EXPECT_EQ(back.tool, report.tool);
  EXPECT_EQ(back.params, report.params);
  EXPECT_EQ(back.stages_seconds, report.stages_seconds);
  EXPECT_EQ(back.original_bytes, report.original_bytes);
  EXPECT_EQ(back.compressed_bytes, report.compressed_bytes);
  EXPECT_EQ(back.payload_bytes, report.payload_bytes);
  EXPECT_TRUE(back.has_error_metrics);
  EXPECT_DOUBLE_EQ(back.error.mean_rel, report.error.mean_rel);
  EXPECT_DOUBLE_EQ(back.error.max_rel, report.error.max_rel);
  EXPECT_DOUBLE_EQ(back.error.max_abs, report.error.max_abs);
  EXPECT_DOUBLE_EQ(back.error.rmse, report.error.rmse);
  EXPECT_EQ(back.error.count, report.error.count);
  EXPECT_EQ(back.span_count, report.span_count);
  EXPECT_DOUBLE_EQ(back.compression_rate_percent(),
                   report.compression_rate_percent());
}

TEST_F(TelemetryTest, RunReportRejectsWrongSchema) {
  RunReport report;
  Json doc = Json::parse(report.to_json_text());
  doc.as_object()["schema"] = Json("not-a-run-report");
  EXPECT_THROW(RunReport::from_json(doc), std::runtime_error);
  Json doc2 = Json::parse(report.to_json_text());
  doc2.as_object()["schema_version"] = Json(99.0);
  EXPECT_THROW(RunReport::from_json(doc2), std::runtime_error);
}

TEST_F(TelemetryTest, CaptureGlobalExtractsStageHistograms) {
  auto& reg = MetricsRegistry::global();
  reg.histogram("stage.wavelet.seconds").record(2e-3);
  reg.histogram("stage.wavelet.seconds").record(4e-3);
  reg.counter("compress.calls").add(2);
  {
    WCK_TRACE_SPAN("compress");
  }
  RunReport report;
  report.capture_global();
  EXPECT_DOUBLE_EQ(report.stages_seconds.at("wavelet"), 6e-3);
  EXPECT_EQ(report.metrics.counters.at("compress.calls"), 2u);
  EXPECT_GE(report.span_count, 1u);
}

TEST_F(TelemetryTest, JsonParserHandlesEscapesAndNesting) {
  const Json v = Json::parse(
      R"({"s":"a\"b\\c\ndA","arr":[1,2.5,-3e2,true,false,null],"o":{"k":{}}})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\ndA");
  const auto& arr = v.at("arr").as_array();
  ASSERT_EQ(arr.size(), 6u);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(arr[2].as_number(), -300.0);
  EXPECT_TRUE(arr[3].as_bool());
  EXPECT_TRUE(arr[5].is_null());
  // dump -> parse round-trips.
  const Json again = Json::parse(v.dump());
  EXPECT_EQ(again.at("s").as_string(), "a\"b\\c\ndA");
  EXPECT_THROW(Json::parse("{broken"), std::runtime_error);
}

TEST_F(TelemetryTest, DisabledMacrosAllocateNothing) {
  set_enabled(false);
  // Warm nothing: the whole point is that the disabled path never reaches
  // registration. Measure a tight loop over all three macro kinds plus
  // the RAII span.
  const std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    WCK_COUNTER_ADD("test.disabled.counter", 1);
    WCK_GAUGE_SET("test.disabled.gauge", 1.0);
    WCK_HISTOGRAM_RECORD("test.disabled.hist", 1.0);
    WCK_TRACE_SPAN("test.disabled.span");
  }
  const std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  set_enabled(true);
  // And nothing was registered.
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.count("test.disabled.counter"), 0u);
  EXPECT_EQ(snap.histograms.count("test.disabled.hist"), 0u);
}

}  // namespace
}  // namespace wck::telemetry
