// Tests for src/telemetry: metric semantics, concurrent recording
// through the ThreadPool (exercised under the tsan preset via the
// `sanitize` label), span nesting/ordering, RunReport JSON round-trip,
// and the zero-allocation guarantee of disabled instrumentation macros.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "parallel/thread_pool.hpp"
#include "server/observe.hpp"
#include "telemetry/telemetry.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter for the zero-allocation guard test. Counting
// is relaxed-atomic so the override stays safe in multithreaded tests.
namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched
// pair even though malloc/free are consistently used here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow variants must be replaced too: libstdc++'s temporary
// buffers (std::stable_sort) allocate through nothrow new but release
// through plain operator delete — leaving these to the runtime would
// mix allocators (and trip ASan's alloc-dealloc-mismatch check).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace wck::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    MetricsRegistry::global().reset();
    Tracer::global().clear();
  }
};

TEST_F(TelemetryTest, CounterSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, GaugeSemantics) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST_F(TelemetryTest, HistogramBucketsAndStats) {
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  Histogram h{std::span<const double>(bounds)};
  EXPECT_EQ(h.count(), 0u);
  // Empty histogram: all derived stats are zero, not NaN/inf.
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  for (double x : {0.5, 1.0, 5.0, 50.0, 1000.0}) h.record(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1056.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1056.5 / 5.0);

  // Bounds are upper edges (inclusive); final bucket is overflow.
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), bounds.size() + 1);
  EXPECT_EQ(buckets[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(buckets[1], 1u);  // 5.0
  EXPECT_EQ(buckets[2], 1u);  // 50.0
  EXPECT_EQ(buckets[3], 1u);  // 1000.0 overflows
}

TEST_F(TelemetryTest, RegistryReturnsStableReferences) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("test.counter");
  Counter& b = reg.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.add(7);

  reg.gauge("test.gauge").set(2.25);
  reg.histogram("test.hist").record(0.5);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.counter"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge"), 2.25);
  EXPECT_EQ(snap.histograms.at("test.hist").count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("test.hist").sum, 0.5);
}

TEST_F(TelemetryTest, ConcurrentIncrementsThroughThreadPool) {
  auto& reg = MetricsRegistry::global();
  Counter& counter = reg.counter("test.concurrent");
  Histogram& hist = reg.histogram("test.concurrent.hist");

  constexpr std::size_t kItems = 20000;
  ThreadPool pool(4);
  pool.parallel_for(0, kItems, [&](std::size_t i) {
    counter.add(1);
    hist.record(static_cast<double>(i % 7) * 1e-6);
    // Also drive the macro path (enabled; registration raced on first use).
    WCK_COUNTER_ADD("test.concurrent.macro", 1);
  });

  EXPECT_EQ(counter.value(), kItems);
  EXPECT_EQ(hist.count(), kItems);
  EXPECT_EQ(reg.counter("test.concurrent.macro").value(), kItems);
  // ThreadPool's own instrumentation saw the submitted chunks.
  EXPECT_GT(reg.counter("pool.tasks_executed").value(), 0u);
}

TEST_F(TelemetryTest, SpanNestingAndOrdering) {
  {
    WCK_TRACE_SPAN("outer");
    {
      WCK_TRACE_SPAN("inner");
    }
    {
      WCK_TRACE_SPAN("inner2");
    }
  }
  const auto spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Snapshot is ordered by (tid, start): outer started first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "inner2");
  EXPECT_EQ(spans[2].depth, 1u);
  // Children are contained in the parent interval.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_LE(spans[1].start_us + spans[1].dur_us,
            spans[0].start_us + spans[0].dur_us + 1.0);
  // Chrome export is syntactically sane and mentions every span.
  const std::string chrome = Tracer::global().chrome_trace_json();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"outer\""), std::string::npos);
  EXPECT_NE(chrome.find("\"inner2\""), std::string::npos);
  const Json parsed = Json::parse(chrome);  // must not throw
  EXPECT_EQ(parsed.at("traceEvents").as_array().size(), 3u);
}

TEST_F(TelemetryTest, SpansFromMultipleThreadsKeepDistinctTids) {
  ThreadPool pool(3);
  pool.parallel_for(0, 64, [&](std::size_t) { WCK_TRACE_SPAN("worker"); });
  const auto spans = Tracer::global().snapshot();
  ASSERT_GE(spans.size(), 64u);  // pool instrumentation may add more
  for (std::size_t i = 1; i < spans.size(); ++i) {
    // (tid, start) ordering holds across stream boundaries.
    if (spans[i - 1].tid == spans[i].tid) {
      EXPECT_LE(spans[i - 1].start_us, spans[i].start_us);
    } else {
      EXPECT_LT(spans[i - 1].tid, spans[i].tid);
    }
  }
}

TEST_F(TelemetryTest, RunReportJsonRoundTrip) {
  RunReport report;
  report.tool = "telemetry_test";
  report.params["shape"] = "64x32x8";
  report.params["quantizer"] = "spike";
  report.stages_seconds["wavelet"] = 1.5e-3;
  report.stages_seconds["deflate"] = 4.25e-3;
  report.original_bytes = 131072;
  report.compressed_bytes = 44629;
  report.payload_bytes = 49730;
  report.has_error_metrics = true;
  report.error.mean_rel = 1e-4;
  report.error.max_rel = 5e-4;
  report.error.max_abs = 0.03;
  report.error.rmse = 0.0088;
  report.error.count = 16384;
  report.span_count = 6;

  const std::string text = report.to_json_text();
  const RunReport back = RunReport::from_json(Json::parse(text));
  EXPECT_EQ(back.tool, report.tool);
  EXPECT_EQ(back.params, report.params);
  EXPECT_EQ(back.stages_seconds, report.stages_seconds);
  EXPECT_EQ(back.original_bytes, report.original_bytes);
  EXPECT_EQ(back.compressed_bytes, report.compressed_bytes);
  EXPECT_EQ(back.payload_bytes, report.payload_bytes);
  EXPECT_TRUE(back.has_error_metrics);
  EXPECT_DOUBLE_EQ(back.error.mean_rel, report.error.mean_rel);
  EXPECT_DOUBLE_EQ(back.error.max_rel, report.error.max_rel);
  EXPECT_DOUBLE_EQ(back.error.max_abs, report.error.max_abs);
  EXPECT_DOUBLE_EQ(back.error.rmse, report.error.rmse);
  EXPECT_EQ(back.error.count, report.error.count);
  EXPECT_EQ(back.span_count, report.span_count);
  EXPECT_DOUBLE_EQ(back.compression_rate_percent(),
                   report.compression_rate_percent());
}

TEST_F(TelemetryTest, RunReportRejectsWrongSchema) {
  RunReport report;
  Json doc = Json::parse(report.to_json_text());
  doc.as_object()["schema"] = Json("not-a-run-report");
  EXPECT_THROW(RunReport::from_json(doc), std::runtime_error);
  Json doc2 = Json::parse(report.to_json_text());
  doc2.as_object()["schema_version"] = Json(99.0);
  EXPECT_THROW(RunReport::from_json(doc2), std::runtime_error);
}

TEST_F(TelemetryTest, CaptureGlobalExtractsStageHistograms) {
  auto& reg = MetricsRegistry::global();
  reg.histogram("stage.wavelet.seconds").record(2e-3);
  reg.histogram("stage.wavelet.seconds").record(4e-3);
  reg.counter("compress.calls").add(2);
  {
    WCK_TRACE_SPAN("compress");
  }
  RunReport report;
  report.capture_global();
  EXPECT_DOUBLE_EQ(report.stages_seconds.at("wavelet"), 6e-3);
  EXPECT_EQ(report.metrics.counters.at("compress.calls"), 2u);
  EXPECT_GE(report.span_count, 1u);
}

TEST_F(TelemetryTest, JsonParserHandlesEscapesAndNesting) {
  const Json v = Json::parse(
      R"({"s":"a\"b\\c\ndA","arr":[1,2.5,-3e2,true,false,null],"o":{"k":{}}})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\ndA");
  const auto& arr = v.at("arr").as_array();
  ASSERT_EQ(arr.size(), 6u);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(arr[2].as_number(), -300.0);
  EXPECT_TRUE(arr[3].as_bool());
  EXPECT_TRUE(arr[5].is_null());
  // dump -> parse round-trips.
  const Json again = Json::parse(v.dump());
  EXPECT_EQ(again.at("s").as_string(), "a\"b\\c\ndA");
  EXPECT_THROW(Json::parse("{broken"), std::runtime_error);
}

TEST_F(TelemetryTest, HistogramQuantilesInterpolateWithinBuckets) {
  const std::array<double, 3> bounds{10.0, 20.0, 30.0};
  Histogram h{std::span<const double>(bounds)};
  // 100 samples spread evenly into the first three buckets.
  for (int i = 0; i < 50; ++i) h.record(5.0);    // <= 10
  for (int i = 0; i < 40; ++i) h.record(15.0);   // <= 20
  for (int i = 0; i < 10; ++i) h.record(25.0);   // <= 30
  // p50 lands exactly on the edge of the first bucket.
  EXPECT_NEAR(h.quantile(0.5), 10.0, 1e-9);
  // p90 consumes all of bucket 2: its upper edge.
  EXPECT_NEAR(h.quantile(0.9), 20.0, 1e-9);
  // p75 is halfway through bucket 2 (rank 75 of 50+40): 10 + 25/40 * 10.
  EXPECT_NEAR(h.quantile(0.75), 16.25, 1e-9);
  // Quantiles are clamped to the observed range, not bucket edges.
  EXPECT_GE(h.quantile(0.0), 5.0);
  EXPECT_LE(h.quantile(1.0), 25.0);

  // The same interpolation is reachable from snapshot data alone.
  auto& reg = MetricsRegistry::global();
  Histogram& rh = reg.histogram("test.quant", std::span<const double>(bounds));
  for (int i = 0; i < 50; ++i) rh.record(5.0);
  for (int i = 0; i < 50; ++i) rh.record(15.0);
  const auto snap = reg.snapshot();
  const auto& stats = snap.histograms.at("test.quant");
  ASSERT_EQ(stats.buckets.size(), stats.bounds.size() + 1);
  EXPECT_DOUBLE_EQ(stats.p50, histogram_quantile(stats.bounds, stats.buckets, stats.min,
                                                 stats.max, 0.5));
  EXPECT_GT(stats.p95, stats.p50);
  EXPECT_GE(stats.p99, stats.p95);
  EXPECT_LE(stats.p99, stats.max);
}

TEST_F(TelemetryTest, QuantileOfEmptyHistogramIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

// ------------------------------------------------------- flight recorder

TEST_F(TelemetryTest, EventLogRecordsInOrderWithMonotonicSeq) {
  EventLog log(8);
  log.record(EventKind::kCkptBegin, 1);
  log.record(EventKind::kCkptCommit, 1, "gen file");
  log.record(EventKind::kRestoreDone, 1, "primary");
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[0].kind, EventKind::kCkptBegin);
  EXPECT_EQ(events[1].detail, "gen file");
  EXPECT_LE(events[0].t_us, events[1].t_us);
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST_F(TelemetryTest, EventLogRingOverwritesOldestAndCountsDropped) {
  EventLog log(4);
  for (std::uint64_t i = 0; i < 10; ++i) log.record(EventKind::kSoakCycle, i);
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Newest 4 survive, oldest first.
  EXPECT_EQ(events[0].step, 6u);
  EXPECT_EQ(events[3].step, 9u);
  EXPECT_EQ(events[0].seq, 6u);

  log.clear();
  EXPECT_TRUE(log.snapshot().empty());
  // Sequence numbering continues after clear.
  log.record(EventKind::kSoakCycle, 11);
  EXPECT_EQ(log.snapshot()[0].seq, 10u);
}

TEST_F(TelemetryTest, EventLogJsonlIsParseablePerLine) {
  EventLog log(8);
  log.record(EventKind::kCkptRetry, 7, "attempt 2/5 \"quoted\"");
  log.record(EventKind::kFaultInjected, 0, "write:fail rule#0");
  const std::string jsonl = log.to_jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "every event line is newline-terminated";
    const Json v = Json::parse(jsonl.substr(start, end - start));
    EXPECT_TRUE(v.find("seq") && v.find("t_us") && v.find("kind") && v.find("step") &&
                v.find("detail"));
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  // Kind names are the stable dotted spellings.
  EXPECT_NE(jsonl.find("\"ckpt.retry\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"fault.injected\""), std::string::npos);
  // max_events keeps only the newest tail.
  const std::string tail = log.to_jsonl(1);
  EXPECT_EQ(tail.find("ckpt.retry"), std::string::npos);
  EXPECT_NE(tail.find("fault.injected"), std::string::npos);
}

TEST_F(TelemetryTest, EventKindNamesAreStable) {
  // Part of the JSONL schema: spot-check both ends of the enum.
  EXPECT_STREQ(event_kind_name(EventKind::kCkptBegin), "ckpt.begin");
  EXPECT_STREQ(event_kind_name(EventKind::kRestoreParity), "restore.parity");
  EXPECT_STREQ(event_kind_name(EventKind::kQueueDropOldest), "queue.drop_oldest");
  EXPECT_STREQ(event_kind_name(EventKind::kSoakVerifyFailed), "soak.verify_failed");
}

TEST_F(TelemetryTest, DisabledEventMacroRecordsNothing) {
  set_enabled(false);
  const std::uint64_t before = EventLog::global().total();
  WCK_EVENT(kCkptBegin, 1, "suppressed");
  EXPECT_EQ(EventLog::global().total(), before);
  set_enabled(true);
  WCK_EVENT(kCkptBegin, 1, "recorded");
  EXPECT_EQ(EventLog::global().total(), before + 1);
}

// ------------------------------------------------------------ exposition

TEST_F(TelemetryTest, PrometheusNameSanitization) {
  EXPECT_EQ(prometheus_name("ckpt.write.retries"), "wck_ckpt_write_retries");
  EXPECT_EQ(prometheus_name("stage.gzip.seconds"), "wck_stage_gzip_seconds");
  EXPECT_EQ(prometheus_name("weird-name with spaces"), "wck_weird_name_with_spaces");
}

TEST_F(TelemetryTest, PrometheusTextRendersAllMetricKinds) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.prom.counter").add(42);
  reg.gauge("test.prom.gauge").set(2.5);
  const std::array<double, 2> bounds{1.0, 10.0};
  Histogram& h = reg.histogram("test.prom.hist", std::span<const double>(bounds));
  h.record(0.5);
  h.record(5.0);
  h.record(100.0);  // overflow bucket

  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE wck_test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("wck_test_prom_counter 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wck_test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("wck_test_prom_gauge 2.5"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == count.
  EXPECT_NE(text.find("# TYPE wck_test_prom_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("wck_test_prom_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("wck_test_prom_hist_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("wck_test_prom_hist_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("wck_test_prom_hist_count 3"), std::string::npos);
  EXPECT_NE(text.find("wck_test_prom_hist_sum"), std::string::npos);
  // Quantiles ride along as separate gauges.
  EXPECT_NE(text.find("wck_test_prom_hist_p50"), std::string::npos);
  EXPECT_NE(text.find("wck_test_prom_hist_p99"), std::string::npos);
  // Every line is either a comment or "name[{labels}] value".
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    start = end + 1;
  }
}

TEST_F(TelemetryTest, PeriodicSnapshotWriterWritesBothFiles) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("wck_expo_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  MetricsRegistry::global().counter("test.expo.counter").add(5);
  EventLog::global().record(EventKind::kSoakCycle, 3, "for exposition");

  PeriodicSnapshotWriter::Options options;
  options.interval = std::chrono::milliseconds(3600 * 1000);  // never fires
  PeriodicSnapshotWriter writer(dir, options);
  EXPECT_TRUE(writer.write_once());
  EXPECT_GE(writer.writes(), 1u);
  EXPECT_TRUE(fs::exists(dir / "metrics.prom"));
  EXPECT_TRUE(fs::exists(dir / "events.jsonl"));

  std::ifstream prom(dir / "metrics.prom");
  const std::string text((std::istreambuf_iterator<char>(prom)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("wck_test_expo_counter 5"), std::string::npos);

  // start/stop is clean and performs a final write.
  const std::uint64_t before = writer.writes();
  writer.start();
  writer.stop();
  EXPECT_GT(writer.writes(), before);
  fs::remove_all(dir);
}

// Regression test for a double-join defect the thread-safety annotation
// pass surfaced: stop() used to join thread_ without claiming it under
// the lock, so two concurrent stop() calls could both reach join() on
// the same std::thread (std::terminate). Now exactly one caller moves
// the handle out under the mutex and joins its local copy.
TEST_F(TelemetryTest, StopIsConcurrencySafe) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("wck_expo_stop_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  PeriodicSnapshotWriter::Options options;
  options.interval = std::chrono::milliseconds(1);
  PeriodicSnapshotWriter writer(dir, options);

  for (int round = 0; round < 3; ++round) {
    writer.start();
    std::vector<std::thread> stoppers;
    stoppers.reserve(4);
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([&writer] { writer.stop(); });
    }
    for (auto& t : stoppers) t.join();
  }
  // Each round's winning stop() performed the final dump.
  EXPECT_GE(writer.writes(), 3u);
  EXPECT_TRUE(fs::exists(dir / "metrics.prom"));
  fs::remove_all(dir);
}

// -------------------------------------------------------- json edge cases

TEST_F(TelemetryTest, JsonDepthLimitRejectsPathologicalNesting) {
  // 200 nested arrays: beyond kMaxParseDepth, must throw (not overflow).
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW((void)Json::parse(deep), std::runtime_error);
  // Moderate nesting stays fine.
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_NO_THROW((void)Json::parse(ok));
}

TEST_F(TelemetryTest, JsonTruncatedInputsThrow) {
  for (const char* text : {"{\"a\":", "[1,2", "\"unterminated", "{\"a\":1,", "tru", "-",
                           "1e", "{\"a\" 1}", ""}) {
    EXPECT_THROW((void)Json::parse(text), std::runtime_error) << text;
  }
  // Trailing garbage after a valid document is rejected too.
  EXPECT_THROW((void)Json::parse("{} {}"), std::runtime_error);
}

TEST_F(TelemetryTest, JsonDuplicateKeysLastWins) {
  const Json v = Json::parse(R"({"k":1,"k":2,"k":3})");
  EXPECT_DOUBLE_EQ(v.at("k").as_number(), 3.0);
  EXPECT_EQ(v.as_object().size(), 1u);
}

TEST_F(TelemetryTest, JsonNonFiniteNumbersSerializeAsNull) {
  Json::Object o;
  o["inf"] = std::numeric_limits<double>::infinity();
  o["nan"] = std::numeric_limits<double>::quiet_NaN();
  o["fin"] = 1.5;
  const std::string text = Json(std::move(o)).dump();
  const Json back = Json::parse(text);
  EXPECT_TRUE(back.at("inf").is_null());
  EXPECT_TRUE(back.at("nan").is_null());
  EXPECT_DOUBLE_EQ(back.at("fin").as_number(), 1.5);
}

TEST_F(TelemetryTest, RunReportPsnrRoundTripsIncludingInfinity) {
  RunReport report;
  report.has_error_metrics = true;
  report.error.rmse = 0.01;
  report.error.psnr = 62.5;
  RunReport back = RunReport::from_json(Json::parse(report.to_json_text()));
  EXPECT_DOUBLE_EQ(back.error.psnr, 62.5);

  // Exact reconstruction: psnr +inf -> JSON null -> +inf again.
  report.error.psnr = std::numeric_limits<double>::infinity();
  const std::string text = report.to_json_text();
  EXPECT_EQ(text.find("inf"), std::string::npos) << "must not emit bare inf tokens";
  back = RunReport::from_json(Json::parse(text));
  EXPECT_TRUE(std::isinf(back.error.psnr));
}

TEST_F(TelemetryTest, RunReportCarriesQualitySectionOpaquely) {
  RunReport report;
  report.tool = "roundtrip";
  Json::Object q;
  q["schema"] = std::string("wck-quality-report");
  q["schema_version"] = 1.0;
  report.quality = Json(std::move(q));
  const RunReport back = RunReport::from_json(Json::parse(report.to_json_text()));
  ASSERT_FALSE(back.quality.is_null());
  EXPECT_EQ(back.quality.at("schema").as_string(), "wck-quality-report");
  // Absent quality stays null (older reports parse unchanged).
  RunReport bare;
  EXPECT_TRUE(RunReport::from_json(Json::parse(bare.to_json_text())).quality.is_null());
}

TEST_F(TelemetryTest, DisabledMacrosAllocateNothing) {
  set_enabled(false);
  // Warm nothing: the whole point is that the disabled path never reaches
  // registration. Measure a tight loop over all three macro kinds plus
  // the RAII span.
  const std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    WCK_COUNTER_ADD("test.disabled.counter", 1);
    WCK_GAUGE_SET("test.disabled.gauge", 1.0);
    WCK_HISTOGRAM_RECORD("test.disabled.hist", 1.0);
    WCK_TRACE_SPAN("test.disabled.span");
  }
  const std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  set_enabled(true);
  // And nothing was registered.
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.count("test.disabled.counter"), 0u);
  EXPECT_EQ(snap.histograms.count("test.disabled.hist"), 0u);
}

TEST_F(TelemetryTest, DisabledServerRpcPathAllocatesNothing) {
  // The full server-side observability path — boundary scope, metric
  // recording, per-tenant counters/gauges — must cost zero allocations
  // with telemetry off: the wire still round-trips trace contexts, but
  // a WCK_TELEMETRY=off server spends nothing observing them.
  net::AnyMessage request = net::GetRequest{"zero-alloc-tenant", {}};
  set_enabled(false);
  const std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    server::ServerRpcScope rpc(request, 64, /*slow_request_ms=*/0);
    rpc.finish(128, false);
    server::add_tenant_counter("zero-alloc-tenant", "puts");
    server::set_tenant_gauge("zero-alloc-tenant", "quota_utilization", 0.5);
  }
  const std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  set_enabled(true);
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.count("server.tenant.zero-alloc-tenant.puts"), 0u);
  EXPECT_EQ(snap.histograms.count("server.rpc.get.seconds"), 0u);
}

}  // namespace
}  // namespace wck::telemetry
