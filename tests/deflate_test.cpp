// Unit and property tests for the from-scratch DEFLATE implementation,
// including cross-validation against the system zlib when available.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>

#include "deflate/deflate.hpp"
#include "deflate/deflate_tables.hpp"
#include "deflate/huffman.hpp"
#include "deflate/lz77.hpp"
#include "util/bitio.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#ifdef WCK_HAVE_ZLIB
#include <zlib.h>
#endif

namespace wck {
namespace {

Bytes make_bytes(const std::string& s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes b(n);
  for (auto& v : b) v = static_cast<std::byte>(rng.bounded(256));
  return b;
}

/// Highly compressible data resembling formatted checkpoint payloads:
/// long runs, repeated structures, slowly varying values.
Bytes structured_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes b;
  b.reserve(n);
  while (b.size() < n) {
    const auto mode = rng.bounded(3);
    if (mode == 0) {
      const auto run = 4 + rng.bounded(64);
      const auto v = static_cast<std::byte>(rng.bounded(8));
      for (std::uint64_t i = 0; i < run && b.size() < n; ++i) b.push_back(v);
    } else if (mode == 1) {
      for (int i = 0; i < 16 && b.size() < n; ++i) {
        b.push_back(static_cast<std::byte>(i));
      }
    } else {
      b.push_back(static_cast<std::byte>(rng.bounded(256)));
    }
  }
  return b;
}

// ---------------------------------------------------------------------
// Huffman primitives
// ---------------------------------------------------------------------

TEST(Huffman, CodeLengthsSatisfyKraft) {
  std::vector<std::uint64_t> freqs = {45, 13, 12, 16, 9, 5};
  const auto lengths = build_code_lengths(freqs, 15);
  double kraft = 0.0;
  for (const auto l : lengths) {
    ASSERT_GT(l, 0u);
    kraft += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_DOUBLE_EQ(kraft, 1.0);
}

TEST(Huffman, OptimalForClassicExample) {
  // Frequencies from the textbook example; total cost must equal the
  // unrestricted Huffman optimum (224 bits here).
  std::vector<std::uint64_t> freqs = {45, 13, 12, 16, 9, 5};
  const auto lengths = build_code_lengths(freqs, 15);
  std::uint64_t cost = 0;
  for (std::size_t i = 0; i < freqs.size(); ++i) cost += freqs[i] * lengths[i];
  EXPECT_EQ(cost, 45u * 1 + 13 * 3 + 12 * 3 + 16 * 3 + 9 * 4 + 5 * 4);
}

TEST(Huffman, LengthLimitRespected) {
  // Exponential frequencies force long codes without a limit.
  std::vector<std::uint64_t> freqs(12);
  std::uint64_t f = 1;
  for (auto& v : freqs) {
    v = f;
    f *= 3;
  }
  const auto lengths = build_code_lengths(freqs, 5);
  for (const auto l : lengths) {
    EXPECT_LE(l, 5u);
    EXPECT_GT(l, 0u);
  }
  double kraft = 0.0;
  for (const auto l : lengths) kraft += std::pow(2.0, -static_cast<double>(l));
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(Huffman, SingleSymbolGetsLengthOne) {
  std::vector<std::uint64_t> freqs = {0, 0, 42, 0};
  const auto lengths = build_code_lengths(freqs, 15);
  EXPECT_EQ(lengths, (std::vector<std::uint8_t>{0, 0, 1, 0}));
}

TEST(Huffman, EmptyAlphabetAllZero) {
  std::vector<std::uint64_t> freqs = {0, 0, 0};
  const auto lengths = build_code_lengths(freqs, 15);
  EXPECT_EQ(lengths, (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(Huffman, TooSmallLimitRejected) {
  std::vector<std::uint64_t> freqs(9, 1);  // 9 symbols cannot fit 3 bits
  EXPECT_THROW((void)build_code_lengths(freqs, 3), InvalidArgumentError);
}

TEST(Huffman, CanonicalCodesAreRfc1951Example) {
  // RFC 1951 3.2.2 example: lengths (3,3,3,3,3,2,4,4) yield the listed
  // canonical codes.
  const std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  const auto cc = CanonicalCode::from_lengths(lengths);
  const std::vector<std::uint16_t> want = {0b010, 0b011, 0b100,  0b101,
                                           0b110, 0b00,  0b1110, 0b1111};
  EXPECT_EQ(cc.codes, want);
}

TEST(Huffman, EncodeDecodeRoundTripAllSymbols) {
  const std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  const auto cc = CanonicalCode::from_lengths(lengths);
  const HuffmanDecoder dec(lengths);

  std::vector<std::byte> buf;
  BitWriter bw(buf);
  for (int s = 0; s < 8; ++s) cc.emit(bw, s);
  bw.align_to_byte();

  BitReader br(buf);
  for (int s = 0; s < 8; ++s) EXPECT_EQ(dec.decode(br), s);
}

TEST(Huffman, DecoderSlowPathForLongCodes) {
  // A skewed alphabet that produces codes longer than the fast-table
  // width (10 bits) when limited to 15.
  std::vector<std::uint64_t> freqs(20);
  std::uint64_t f = 1;
  for (auto& v : freqs) {
    v = f;
    f = f * 2 + 1;
  }
  const auto lengths = build_code_lengths(freqs, 15);
  EXPECT_GT(*std::max_element(lengths.begin(), lengths.end()), 10);

  const auto cc = CanonicalCode::from_lengths(lengths);
  const HuffmanDecoder dec(lengths);
  std::vector<std::byte> buf;
  BitWriter bw(buf);
  for (int s = 0; s < 20; ++s) cc.emit(bw, s);
  bw.align_to_byte();
  BitReader br(buf);
  for (int s = 0; s < 20; ++s) EXPECT_EQ(dec.decode(br), s);
}

TEST(Huffman, OversubscribedLengthsRejected) {
  const std::vector<std::uint8_t> lengths = {1, 1, 1};  // 3 codes of length 1
  EXPECT_THROW(HuffmanDecoder dec(lengths), FormatError);
}

TEST(Huffman, IncompleteCodeRejectedUnlessAllowed) {
  const std::vector<std::uint8_t> lengths = {2, 0, 0};  // only half the space
  EXPECT_THROW(HuffmanDecoder dec(lengths), FormatError);
  const std::vector<std::uint8_t> single = {1, 0, 0};
  EXPECT_NO_THROW(HuffmanDecoder dec(single, /*allow_incomplete=*/true));
}

// ---------------------------------------------------------------------
// Symbol tables
// ---------------------------------------------------------------------

TEST(DeflateTables, LengthCodeCoversFullRange) {
  namespace dt = deflate_tables;
  for (int len = dt::kMinMatch; len <= dt::kMaxMatch; ++len) {
    const int c = dt::length_to_code(len);
    ASSERT_GE(c, 0);
    ASSERT_LE(c, 28);
    const auto& e = dt::kLengthCodes[static_cast<std::size_t>(c)];
    EXPECT_GE(len, static_cast<int>(e.base));
    EXPECT_LT(len - e.base, 1 << e.extra) << "len=" << len;
  }
  EXPECT_EQ(dt::length_to_code(258), 28);
}

TEST(DeflateTables, DistCodeCoversFullRange) {
  namespace dt = deflate_tables;
  for (int dist = 1; dist <= dt::kWindowSize; ++dist) {
    const int c = dt::dist_to_code(dist);
    ASSERT_GE(c, 0);
    ASSERT_LE(c, 29);
    const auto& e = dt::kDistCodes[static_cast<std::size_t>(c)];
    EXPECT_GE(dist, static_cast<int>(e.base));
    EXPECT_LT(dist - e.base, 1 << e.extra) << "dist=" << dist;
  }
}

// ---------------------------------------------------------------------
// LZ77
// ---------------------------------------------------------------------

std::size_t reconstructed_size(const std::vector<Lz77Token>& tokens) {
  std::size_t n = 0;
  for (const auto& t : tokens) n += t.is_match() ? static_cast<std::size_t>(t.length()) : 1;
  return n;
}

Bytes reconstruct(const std::vector<Lz77Token>& tokens) {
  Bytes out;
  for (const auto& t : tokens) {
    if (t.is_match()) {
      const std::size_t start = out.size() - static_cast<std::size_t>(t.distance());
      for (int i = 0; i < t.length(); ++i) out.push_back(out[start + static_cast<std::size_t>(i)]);
    } else {
      out.push_back(static_cast<std::byte>(t.literal_byte()));
    }
  }
  return out;
}

class Lz77Levels : public ::testing::TestWithParam<int> {};

TEST_P(Lz77Levels, ParseReconstructsInput) {
  const auto params = lz77_params_for_level(GetParam());
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Bytes input = structured_bytes(20000, seed);
    const auto tokens = lz77_parse(input, params);
    EXPECT_EQ(reconstruct(tokens), input) << "seed=" << seed;
  }
}

TEST_P(Lz77Levels, MatchesShrinkTokenCountOnRepetitiveData) {
  const Bytes input = make_bytes(std::string(5000, 'x'));
  const auto tokens = lz77_parse(input, lz77_params_for_level(GetParam()));
  EXPECT_EQ(reconstructed_size(tokens), input.size());
  EXPECT_LT(tokens.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, Lz77Levels, ::testing::Values(1, 3, 6, 9));

TEST(Lz77, TokenPackingLimits) {
  const auto lit = Lz77Token::literal(0xFF);
  EXPECT_FALSE(lit.is_match());
  EXPECT_EQ(lit.literal_byte(), 0xFF);

  const auto m = Lz77Token::match(258, 32768);
  EXPECT_TRUE(m.is_match());
  EXPECT_EQ(m.length(), 258);
  EXPECT_EQ(m.distance(), 32768);

  const auto m2 = Lz77Token::match(3, 1);
  EXPECT_EQ(m2.length(), 3);
  EXPECT_EQ(m2.distance(), 1);
}

TEST(Lz77, InvalidLevelRejected) {
  EXPECT_THROW((void)lz77_params_for_level(0), InvalidArgumentError);
  EXPECT_THROW((void)lz77_params_for_level(10), InvalidArgumentError);
}

TEST(Lz77, MatchesRespectWindow) {
  // Two identical 1 KiB blocks separated by > 32 KiB must not match
  // across the window.
  Bytes input = structured_bytes(1024, 5);
  const Bytes filler = random_bytes(40000, 6);
  input.insert(input.end(), filler.begin(), filler.end());
  const Bytes head = structured_bytes(1024, 5);
  input.insert(input.end(), head.begin(), head.end());
  const auto tokens = lz77_parse(input, lz77_params_for_level(6));
  for (const auto& t : tokens) {
    if (t.is_match()) {
      EXPECT_LE(t.distance(), 32768);
    }
  }
  EXPECT_EQ(reconstruct(tokens), input);
}

// ---------------------------------------------------------------------
// DEFLATE round trips
// ---------------------------------------------------------------------

struct RoundTripCase {
  const char* name;
  Bytes data;
};

std::vector<RoundTripCase> round_trip_cases() {
  std::vector<RoundTripCase> cases;
  cases.push_back({"empty", {}});
  cases.push_back({"one_byte", make_bytes("A")});
  cases.push_back({"short_text", make_bytes("hello, hello, hello world")});
  cases.push_back({"all_same", make_bytes(std::string(100000, 'z'))});
  cases.push_back({"random_small", random_bytes(500, 42)});
  cases.push_back({"random_large", random_bytes(300000, 43)});
  cases.push_back({"structured_large", structured_bytes(300000, 44)});
  // All 256 byte values, repeated (exercises 9-bit fixed codes).
  Bytes all;
  for (int r = 0; r < 40; ++r) {
    for (int v = 0; v < 256; ++v) all.push_back(static_cast<std::byte>(v));
  }
  cases.push_back({"all_byte_values", std::move(all)});
  return cases;
}

TEST(Deflate, RoundTripAllCases) {
  for (const auto& c : round_trip_cases()) {
    SCOPED_TRACE(c.name);
    const Bytes comp = deflate_compress(c.data);
    const Bytes back = deflate_decompress(comp, c.data.size());
    EXPECT_EQ(back, c.data);
  }
}

TEST(Deflate, RoundTripAllLevels) {
  const Bytes data = structured_bytes(100000, 7);
  for (int level = 1; level <= 9; ++level) {
    SCOPED_TRACE(level);
    const Bytes comp = deflate_compress(data, DeflateOptions{level});
    EXPECT_EQ(deflate_decompress(comp), data);
  }
}

TEST(Deflate, HigherLevelNeverMuchWorse) {
  const Bytes data = structured_bytes(200000, 8);
  const auto size1 = deflate_compress(data, DeflateOptions{1}).size();
  const auto size9 = deflate_compress(data, DeflateOptions{9}).size();
  EXPECT_LE(size9, size1 + size1 / 10);
}

TEST(Deflate, IncompressibleDataFallsBackNearStored) {
  const Bytes data = random_bytes(100000, 9);
  const Bytes comp = deflate_compress(data);
  // Stored-block overhead is 5 bytes / 65535: expansion must be tiny.
  EXPECT_LE(comp.size(), data.size() + data.size() / 100 + 64);
  EXPECT_EQ(deflate_decompress(comp), data);
}

TEST(Deflate, CompressibleDataActuallyShrinks) {
  const Bytes data = make_bytes(std::string(65536, 'q'));
  const Bytes comp = deflate_compress(data);
  EXPECT_LT(comp.size(), data.size() / 100);
}

TEST(Deflate, MultiBlockInputs) {
  // > 64K tokens of literals forces multiple blocks.
  const Bytes data = random_bytes(200000, 10);
  const Bytes comp = deflate_compress(data, DeflateOptions{1});
  EXPECT_EQ(deflate_decompress(comp), data);
}

TEST(Deflate, MalformedStreamsRejected) {
  EXPECT_THROW((void)deflate_decompress({}), FormatError);

  Bytes junk = random_bytes(64, 11);
  // Force reserved block type 11 in the first block header.
  junk[0] = static_cast<std::byte>(0x06);  // BFINAL=0, BTYPE=11
  EXPECT_THROW((void)deflate_decompress(junk), FormatError);
}

TEST(Deflate, TruncatedStreamRejected) {
  const Bytes data = structured_bytes(50000, 12);
  Bytes comp = deflate_compress(data);
  comp.resize(comp.size() / 2);
  EXPECT_THROW((void)deflate_decompress(comp), FormatError);
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

TEST(Gzip, RoundTrip) {
  const Bytes data = structured_bytes(80000, 13);
  const Bytes gz = gzip_compress(data);
  EXPECT_EQ(gzip_decompress(gz), data);
  // gzip magic.
  EXPECT_EQ(static_cast<unsigned>(gz[0]), 0x1Fu);
  EXPECT_EQ(static_cast<unsigned>(gz[1]), 0x8Bu);
}

TEST(Gzip, CorruptedBodyDetected) {
  const Bytes data = structured_bytes(50000, 14);
  Bytes gz = gzip_compress(data);
  gz[gz.size() / 2] ^= std::byte{0x01};
  EXPECT_THROW((void)gzip_decompress(gz), Error);  // Format or Corrupt
}

TEST(Gzip, CorruptedCrcDetected) {
  const Bytes data = structured_bytes(50000, 15);
  Bytes gz = gzip_compress(data);
  gz[gz.size() - 5] ^= std::byte{0x01};  // inside the CRC field
  EXPECT_THROW((void)gzip_decompress(gz), CorruptDataError);
}

TEST(Gzip, BadMagicRejected) {
  Bytes junk = make_bytes("not a gzip stream at all");
  EXPECT_THROW((void)gzip_decompress(junk), FormatError);
}

TEST(Zlib, RoundTrip) {
  const Bytes data = structured_bytes(80000, 16);
  const Bytes z = zlib_compress(data);
  EXPECT_EQ(zlib_decompress(z), data);
  // CMF/FLG checksum property.
  EXPECT_EQ((static_cast<unsigned>(z[0]) * 256 + static_cast<unsigned>(z[1])) % 31, 0u);
}

TEST(Zlib, AdlerMismatchDetected) {
  const Bytes data = structured_bytes(50000, 17);
  Bytes z = zlib_compress(data);
  z[z.size() - 1] ^= std::byte{0x01};
  EXPECT_THROW((void)zlib_decompress(z), CorruptDataError);
}

// ---------------------------------------------------------------------
// Truncated / corrupt-header decode paths: each must reject with a typed
// error and produce no output — never over-read or return partial data.
// ---------------------------------------------------------------------

TEST(Gzip, EveryHeaderPrefixTruncationRejected) {
  const Bytes gz = gzip_compress(structured_bytes(5000, 18));
  // The fixed header is 10 bytes; also cut inside body and trailer.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, std::size_t{5}, std::size_t{9}, std::size_t{10},
        gz.size() / 2, gz.size() - 8, gz.size() - 4, gz.size() - 1}) {
    Bytes cut(gz.begin(), gz.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)gzip_decompress(cut), Error) << "keep=" << keep;
  }
}

TEST(Gzip, UnsupportedMethodAndFlagExtensionsHandled) {
  const Bytes gz = gzip_compress(structured_bytes(2000, 19));
  {
    Bytes bad = gz;
    bad[2] = std::byte{9};  // CM != 8 (deflate)
    EXPECT_THROW((void)gzip_decompress(bad), FormatError);
  }
  {
    // FNAME flag set but no NUL-terminated name present: the z-string
    // skipper must hit the bounds check, not walk off the buffer.
    Bytes bad(gz.begin(), gz.begin() + 10);
    bad[3] = std::byte{0x08};  // FLG = FNAME
    EXPECT_THROW((void)gzip_decompress(bad), Error);
  }
  {
    // FEXTRA with an XLEN that overruns the stream.
    Bytes bad = gz;
    bad[3] = std::byte{0x04};  // FLG = FEXTRA
    bad.resize(12);
    bad[10] = std::byte{0xFF};  // XLEN = 0xFFFF
    bad[11] = std::byte{0xFF};
    EXPECT_THROW((void)gzip_decompress(bad), Error);
  }
}

TEST(Zlib, CorruptHeaderRejected) {
  const Bytes z = zlib_compress(structured_bytes(2000, 20));
  {
    Bytes bad = z;
    bad[0] = std::byte{0x79};  // breaks the FCHECK divisibility
    EXPECT_THROW((void)zlib_decompress(bad), FormatError);
  }
  {
    Bytes bad = z;
    bad[0] = static_cast<std::byte>((static_cast<unsigned>(bad[0]) & 0xF0u) | 0x09u);  // CM=9
    EXPECT_THROW((void)zlib_decompress(bad), FormatError);
  }
  {
    // FDICT set (with FCHECK re-balanced): preset dictionaries are
    // unsupported and must be rejected, not misparsed.
    Bytes bad = z;
    std::uint8_t flg = static_cast<std::uint8_t>(bad[1]);
    flg = static_cast<std::uint8_t>(flg | 0x20u);
    flg = static_cast<std::uint8_t>(flg & ~0x1Fu);
    const int rem = (0x78 * 256 + flg) % 31;
    if (rem != 0) flg = static_cast<std::uint8_t>(flg + (31 - rem));
    bad[1] = static_cast<std::byte>(flg);
    EXPECT_THROW((void)zlib_decompress(bad), FormatError);
  }
  for (const std::size_t keep : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    Bytes cut(z.begin(), z.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)zlib_decompress(cut), Error) << "keep=" << keep;
  }
}

TEST(Deflate, CorruptBlockStructureRejected) {
  {
    // Reserved block type 11.
    Bytes bad;
    BitWriter bw(bad);
    bw.put(1, 1);     // BFINAL
    bw.put(0b11, 2);  // BTYPE = reserved
    bw.align_to_byte();
    EXPECT_THROW((void)deflate_decompress(bad), FormatError);
  }
  {
    // Stored block with LEN/NLEN mismatch.
    Bytes bad;
    BitWriter bw(bad);
    bw.put(1, 1);
    bw.put(0b00, 2);
    bw.align_to_byte();
    bw.put(0x0004, 16);  // LEN = 4
    bw.put(0x1234, 16);  // NLEN != ~LEN
    bw.align_to_byte();
    EXPECT_THROW((void)deflate_decompress(bad), FormatError);
  }
  {
    // Stored block whose LEN runs past the end of the stream.
    Bytes bad;
    BitWriter bw(bad);
    bw.put(1, 1);
    bw.put(0b00, 2);
    bw.align_to_byte();
    const std::uint16_t len = 1000;
    bw.put(len, 16);
    bw.put(static_cast<std::uint16_t>(~len), 16);
    bw.put(0xAB, 8);  // only 1 of the promised 1000 bytes
    bw.align_to_byte();
    EXPECT_THROW((void)deflate_decompress(bad), FormatError);
  }
  {
    // Dynamic block with HLIT beyond the 286-symbol alphabet.
    Bytes bad;
    BitWriter bw(bad);
    bw.put(1, 1);
    bw.put(0b10, 2);
    bw.put(31, 5);  // HLIT = 288 > 286
    bw.put(0, 5);
    bw.put(0, 4);
    bw.align_to_byte();
    EXPECT_THROW((void)deflate_decompress(bad), FormatError);
  }
  {
    // Truncated mid code-length tables.
    const Bytes comp = deflate_compress(structured_bytes(60000, 21));
    Bytes cut(comp.begin(), comp.begin() + 4);
    EXPECT_THROW((void)deflate_decompress(cut), FormatError);
  }
  {
    // Empty input: not even a block header.
    EXPECT_THROW((void)deflate_decompress(Bytes{}), FormatError);
  }
}

TEST(Deflate, MatchDistanceBeforeStreamStartRejected) {
  // Fixed-Huffman block whose first symbol is a match: the distance
  // necessarily reaches before the (empty) output. Symbol 257 (len 3) is
  // code 0b0000001 (7 bits); distance code 0 is 00000 (5 bits).
  Bytes bad;
  BitWriter bw(bad);
  bw.put(1, 1);
  bw.put(0b01, 2);
  bw.put_huffman(0b0000001, 7);  // litlen symbol 257: length 3
  bw.put_huffman(0b00000, 5);    // distance symbol 0: distance 1
  bw.align_to_byte();
  EXPECT_THROW((void)deflate_decompress(bad), FormatError);
}

// ---------------------------------------------------------------------
// Cross-validation against system zlib (reference implementation)
// ---------------------------------------------------------------------

#ifdef WCK_HAVE_ZLIB
Bytes zlib_ref_compress(std::span<const std::byte> input, int level) {
  uLongf bound = compressBound(static_cast<uLong>(input.size()));
  Bytes out(bound);
  EXPECT_EQ(compress2(reinterpret_cast<Bytef*>(out.data()), &bound,
                      reinterpret_cast<const Bytef*>(input.data()),
                      static_cast<uLong>(input.size()), level),
            Z_OK);
  out.resize(bound);
  return out;
}

Bytes zlib_ref_decompress(std::span<const std::byte> input, std::size_t expected) {
  Bytes out(expected);
  uLongf out_len = static_cast<uLongf>(expected);
  EXPECT_EQ(uncompress(reinterpret_cast<Bytef*>(out.data()), &out_len,
                       reinterpret_cast<const Bytef*>(input.data()),
                       static_cast<uLong>(input.size())),
            Z_OK);
  out.resize(out_len);
  return out;
}

TEST(ZlibInterop, ReferenceDecodesOurStreams) {
  for (const auto& c : round_trip_cases()) {
    SCOPED_TRACE(c.name);
    const Bytes ours = zlib_compress(c.data);
    EXPECT_EQ(zlib_ref_decompress(ours, c.data.size()), c.data);
  }
}

TEST(ZlibInterop, WeDecodeReferenceStreams) {
  for (const auto& c : round_trip_cases()) {
    SCOPED_TRACE(c.name);
    for (const int level : {1, 6, 9}) {
      const Bytes theirs = zlib_ref_compress(c.data, level);
      EXPECT_EQ(zlib_decompress(theirs), c.data) << "level=" << level;
    }
  }
}

TEST(ZlibInterop, CompressionRatioCompetitive) {
  const Bytes data = structured_bytes(500000, 21);
  const auto ours = zlib_compress(data, DeflateOptions{6}).size();
  const auto theirs = zlib_ref_compress(data, 6).size();
  // We do not need to beat zlib, but we must be in the same league.
  EXPECT_LE(ours, theirs * 3 / 2) << "ours=" << ours << " theirs=" << theirs;
}
#endif  // WCK_HAVE_ZLIB

}  // namespace
}  // namespace wck
