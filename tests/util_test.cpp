// Unit tests for the util subsystem: checksums, byte/bit I/O, RNG.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "util/backoff.hpp"
#include "util/bitio.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace wck {
namespace {

std::span<const std::byte> bytes_of(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST(Crc32, KnownVectors) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const char* msg = "The quick brown fox jumps over the lazy dog";
  const auto all = bytes_of(msg);
  Crc32 inc;
  // Split at awkward boundaries to exercise the slice-by-4 remainder.
  inc.update(all.subspan(0, 1));
  inc.update(all.subspan(1, 6));
  inc.update(all.subspan(7));
  EXPECT_EQ(inc.value(), crc32(all));
}

TEST(Crc32, ResetRestartsState) {
  Crc32 c;
  c.update(bytes_of("garbage"));
  c.reset();
  c.update(bytes_of("123456789"));
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Adler32, KnownVectors) {
  EXPECT_EQ(adler32(bytes_of("Wikipedia")), 0x11E60398u);
  EXPECT_EQ(adler32(bytes_of("")), 1u);  // initial state
}

TEST(Adler32, LargeInputModularReduction) {
  // > 5552 bytes forces the block-wise modular reduction path.
  std::vector<std::byte> big(100000, std::byte{0xAB});
  Adler32 inc;
  inc.update(std::span<const std::byte>(big).subspan(0, 12345));
  inc.update(std::span<const std::byte>(big).subspan(12345));
  EXPECT_EQ(inc.value(), adler32(std::span<const std::byte>(big)));
}

TEST(ByteWriterReader, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.f32(2.5f);
  w.str("checkpoint");
  const Bytes buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
  EXPECT_FLOAT_EQ(r.f32(), 2.5f);
  EXPECT_EQ(r.str(), "checkpoint");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteWriterReader, VarintRoundTrip) {
  ByteWriter w;
  const std::uint64_t cases[] = {0,          1,          127,        128,
                                 300,        16383,      16384,      ~0ull,
                                 1ull << 32, 1ull << 63, 0xDEADBEEFCAFEull};
  for (const auto v : cases) w.varint(v);
  const Bytes buf = w.take();
  ByteReader r(buf);
  for (const auto v : cases) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteWriterReader, F64ArrayRoundTrip) {
  std::vector<double> vals = {1.0, -2.5, 1e300, -1e-300, 0.0};
  ByteWriter w;
  w.f64_array(vals);
  const Bytes buf = w.take();
  ByteReader r(buf);
  std::vector<double> back(vals.size());
  r.f64_array(back);
  EXPECT_EQ(back, vals);
}

TEST(ByteReader, TruncationThrowsFormatError) {
  ByteWriter w;
  w.u16(7);
  const Bytes buf = w.take();
  ByteReader r(buf);
  EXPECT_NO_THROW((void)r.u16());
  EXPECT_THROW((void)r.u8(), FormatError);
}

TEST(ByteReader, VarintOverflowRejected) {
  Bytes buf(11, std::byte{0xFF});  // 11 continuation bytes: > 64 bits
  ByteReader r(buf);
  EXPECT_THROW((void)r.varint(), FormatError);
}

TEST(ByteWriter, ExternalBufferAppends) {
  Bytes buf;
  buf.push_back(std::byte{0x01});
  ByteWriter w(buf);
  w.u8(0x02);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_THROW((void)w.take(), InvalidArgumentError);
}

TEST(BitIo, SingleBitsRoundTrip) {
  std::vector<std::byte> buf;
  BitWriter bw(buf);
  const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (const int b : pattern) bw.put(static_cast<std::uint32_t>(b), 1);
  bw.align_to_byte();

  BitReader br(buf);
  for (const int b : pattern) EXPECT_EQ(br.get(1), static_cast<std::uint32_t>(b));
}

TEST(BitIo, MultiBitFieldsRoundTrip) {
  std::vector<std::byte> buf;
  BitWriter bw(buf);
  bw.put(0b101, 3);
  bw.put(0xFFFF, 16);
  bw.put(0, 0);  // zero-width write is a no-op
  bw.put(0x12345, 20);
  bw.align_to_byte();

  BitReader br(buf);
  EXPECT_EQ(br.get(3), 0b101u);
  EXPECT_EQ(br.get(16), 0xFFFFu);
  EXPECT_EQ(br.get(20), 0x12345u);
}

TEST(BitIo, PeekDoesNotConsume) {
  std::vector<std::byte> buf;
  BitWriter bw(buf);
  bw.put(0x5A, 8);
  bw.align_to_byte();
  BitReader br(buf);
  EXPECT_EQ(br.peek(4), 0xAu);
  EXPECT_EQ(br.peek(4), 0xAu);
  EXPECT_EQ(br.get(8), 0x5Au);
}

TEST(BitIo, ReverseBits) {
  EXPECT_EQ(BitWriter::reverse(0b1, 1), 0b1u);
  EXPECT_EQ(BitWriter::reverse(0b100, 3), 0b001u);
  EXPECT_EQ(BitWriter::reverse(0b1101, 4), 0b1011u);
}

TEST(BitIo, PutZeroCountWritesNothing) {
  Bytes buf;
  BitWriter bw(buf);
  // mask(0) is empty: the value operand must be ignored entirely.
  bw.put(0xFFFFFFFFu, 0);
  EXPECT_EQ(bw.bit_count(), 0u);
  bw.put(0b101, 3);
  bw.put(0xDEADBEEFu, 0);
  bw.align_to_byte();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(static_cast<std::uint8_t>(buf[0]), 0b101u);
}

TEST(BitIo, PutFullWordRoundTrips) {
  Bytes buf;
  BitWriter bw(buf);
  bw.put(0xDEADBEEFu, 32);  // count == 32 must not overflow the mask
  bw.put(1, 1);             // force a non-aligned tail over the 32-bit put
  bw.put(0xCAFEBABEu, 32);
  bw.align_to_byte();
  BitReader br(buf);
  EXPECT_EQ(br.get(32), 0xDEADBEEFu);
  EXPECT_EQ(br.get(1), 1u);
  EXPECT_EQ(br.get(32), 0xCAFEBABEu);
}

TEST(BitIo, WriterRejectsCountOutOfRange) {
  Bytes buf;
  BitWriter bw(buf);
  EXPECT_THROW(bw.put(0, -1), InvalidArgumentError);
  EXPECT_THROW(bw.put(0, 33), InvalidArgumentError);
  EXPECT_THROW(bw.put(0, 64), InvalidArgumentError);
  // A rejected put must not have committed any bits.
  EXPECT_EQ(bw.bit_count(), 0u);
  bw.put(0x7, 3);
  EXPECT_EQ(bw.bit_count(), 3u);
}

TEST(BitIo, ReaderRejectsCountOutOfRange) {
  const Bytes data(8, std::byte{0xFF});
  BitReader br(data);
  EXPECT_THROW((void)br.get(-1), InvalidArgumentError);
  EXPECT_THROW((void)br.get(33), InvalidArgumentError);
  EXPECT_THROW((void)br.peek(33), InvalidArgumentError);
  EXPECT_THROW(br.consume(-1), InvalidArgumentError);
  // The reader is still usable after a precondition failure.
  EXPECT_EQ(br.get(8), 0xFFu);
}

TEST(BitIo, TruncatedReadThrows) {
  std::vector<std::byte> buf = {std::byte{0xFF}};
  BitReader br(buf);
  EXPECT_EQ(br.get(8), 0xFFu);
  EXPECT_THROW((void)br.get(1), FormatError);
}

TEST(BitIo, AlignedRawReadAfterBits) {
  std::vector<std::byte> buf;
  BitWriter bw(buf);
  bw.put(0b1, 1);
  bw.align_to_byte();
  bw.put(0xAB, 8);
  bw.put(0xCD, 8);

  BitReader br(buf);
  EXPECT_EQ(br.get(1), 1u);
  br.align_to_byte();
  std::byte out[2];
  br.read_aligned(out, 2);
  EXPECT_EQ(static_cast<unsigned>(out[0]), 0xABu);
  EXPECT_EQ(static_cast<unsigned>(out[1]), 0xCDu);
}

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(12345);
  Xoshiro256 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsPlausible) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(StageTimes, AccumulatesAndMerges) {
  StageTimes t;
  t.add("wavelet", 1.0);
  t.add("wavelet", 0.5);
  t.add("gzip", 2.0);
  EXPECT_DOUBLE_EQ(t.get("wavelet"), 1.5);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 3.5);

  StageTimes u;
  u.add("gzip", 1.0);
  t.merge(u);
  EXPECT_DOUBLE_EQ(t.get("gzip"), 3.0);
}

TEST(ScopedStageTimer, MeasuresScope) {
  StageTimes t;
  {
    ScopedStage s(t, "work");
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + 1.0;
  }
  EXPECT_GT(t.get("work"), 0.0);
}

TEST(Backoff, LadderDoublesAndCaps) {
  BackoffPolicy policy;
  policy.max_attempts = 100;  // the ladder, not the budget, under test
  policy.initial_backoff_seconds = 0.002;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.012;
  policy.sleep_between_attempts = false;
  Backoff backoff(policy);

  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.002);
  ASSERT_TRUE(backoff.try_again());
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.004);
  ASSERT_TRUE(backoff.try_again());
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.008);
  ASSERT_TRUE(backoff.try_again());
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.012);  // capped
  ASSERT_TRUE(backoff.try_again());
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.012);  // stays capped
  EXPECT_EQ(backoff.failures(), 4);
}

TEST(Backoff, BudgetCountsEveryAttempt) {
  BackoffPolicy policy;
  policy.max_attempts = 3;
  policy.sleep_between_attempts = false;
  Backoff backoff(policy);

  // max_attempts = 3 means: first try, then two retries.
  EXPECT_TRUE(backoff.try_again());
  EXPECT_TRUE(backoff.try_again());
  EXPECT_FALSE(backoff.try_again());
  EXPECT_FALSE(backoff.try_again());  // exhausted stays exhausted
}

TEST(Backoff, SingleAttemptPolicyNeverRetries) {
  BackoffPolicy policy;
  policy.max_attempts = 1;
  policy.sleep_between_attempts = false;
  Backoff backoff(policy);
  EXPECT_FALSE(backoff.try_again());
}

TEST(Backoff, JitterIsDeterministicForSeed) {
  // Two cursors with the same (policy, seed) must walk identical
  // schedules — a soak's retry cadence is replayable.
  BackoffPolicy policy;
  policy.max_attempts = 10;
  policy.jitter_fraction = 0.25;
  policy.sleep_between_attempts = false;
  Backoff a(policy, 42);
  Backoff b(policy, 42);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.try_again(), b.try_again());
    EXPECT_DOUBLE_EQ(a.next_delay_seconds(), b.next_delay_seconds());
  }
}

TEST(Backoff, SleepsRoughlyTheConfiguredDelay) {
  BackoffPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_seconds = 0.02;
  Backoff backoff(policy);
  WallTimer timer;
  ASSERT_TRUE(backoff.try_again());  // sleeps ~20ms
  // Generous lower bound only: schedulers overshoot, never undershoot.
  EXPECT_GE(timer.seconds(), 0.015);
}

}  // namespace
}  // namespace wck
