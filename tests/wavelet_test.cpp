// Unit and property tests for the Haar wavelet transformation
// (paper Sec. III-A, Eq. 2-3, Fig. 2-3).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ndarray/ndarray.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wavelet/haar.hpp"

namespace wck {
namespace {

NdArray<double> random_array(const Shape& shape, std::uint64_t seed) {
  NdArray<double> a(shape);
  Xoshiro256 rng(seed);
  for (auto& v : a.values()) v = rng.uniform(-100.0, 100.0);
  return a;
}

/// Dyadic values (small integers / 2^k) make the Haar averages exactly
/// representable, so forward+inverse is bit-exact.
NdArray<double> dyadic_array(const Shape& shape, std::uint64_t seed) {
  NdArray<double> a(shape);
  Xoshiro256 rng(seed);
  for (auto& v : a.values()) v = static_cast<double>(rng.bounded(4096)) / 16.0;
  return a;
}

TEST(Haar1D, PaperEquations) {
  // Eq. 2 / Eq. 3 on a concrete pair sequence.
  NdArray<double> a(Shape{6}, std::vector<double>{2.0, 4.0, 10.0, 6.0, 1.0, 3.0});
  haar_forward(a.view(), 1);
  // L = [(2+4)/2, (10+6)/2, (1+3)/2], H = [(2-4)/2, (10-6)/2, (1-3)/2]
  EXPECT_DOUBLE_EQ(a(0), 3.0);
  EXPECT_DOUBLE_EQ(a(1), 8.0);
  EXPECT_DOUBLE_EQ(a(2), 2.0);
  EXPECT_DOUBLE_EQ(a(3), -1.0);
  EXPECT_DOUBLE_EQ(a(4), 2.0);
  EXPECT_DOUBLE_EQ(a(5), -1.0);
}

TEST(Haar1D, InverseRecoversExactlyOnDyadicData) {
  const NdArray<double> orig = dyadic_array(Shape{1024}, 1);
  NdArray<double> a = orig;
  haar_forward(a.view(), 1);
  haar_inverse(a.view(), 1);
  EXPECT_EQ(a, orig);
}

TEST(Haar1D, OddLengthKeepsUnpairedElement) {
  NdArray<double> a(Shape{5}, std::vector<double>{1.0, 3.0, 5.0, 7.0, 9.0});
  haar_forward(a.view(), 1);
  // L = [2, 6, 9] (last element unpaired), H = [-1, -1]
  EXPECT_DOUBLE_EQ(a(0), 2.0);
  EXPECT_DOUBLE_EQ(a(1), 6.0);
  EXPECT_DOUBLE_EQ(a(2), 9.0);
  EXPECT_DOUBLE_EQ(a(3), -1.0);
  EXPECT_DOUBLE_EQ(a(4), -1.0);
  haar_inverse(a.view(), 1);
  EXPECT_DOUBLE_EQ(a(0), 1.0);
  EXPECT_DOUBLE_EQ(a(4), 9.0);
}

TEST(Haar1D, Length1IsIdentity) {
  NdArray<double> a(Shape{1}, std::vector<double>{42.0});
  haar_forward(a.view(), 1);
  EXPECT_DOUBLE_EQ(a(0), 42.0);
  haar_inverse(a.view(), 1);
  EXPECT_DOUBLE_EQ(a(0), 42.0);
}

TEST(Haar2D, QuadrantStructure) {
  // A constant array transforms to: LL = constant, all high bands = 0.
  NdArray<double> a(Shape{4, 4}, 5.0);
  haar_forward(a.view(), 1);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i < 2 && j < 2) {
        EXPECT_DOUBLE_EQ(a(i, j), 5.0);
      } else {
        EXPECT_DOUBLE_EQ(a(i, j), 0.0);
      }
    }
  }
}

TEST(Haar2D, SmoothDataConcentratesEnergyInLowBand) {
  // The property the paper's compression relies on: for smooth data the
  // high bands are near zero.
  NdArray<double> a(Shape{64, 64});
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      a(i, j) = std::sin(0.05 * static_cast<double>(i)) +
                std::cos(0.04 * static_cast<double>(j));
    }
  }
  haar_forward(a.view(), 1);
  const WaveletPlan plan = WaveletPlan::create(a.shape(), 1);
  double low_energy = 0.0;
  double high_energy = 0.0;
  for_each_low_band(a.view(), plan.final_low_extents(),
                    [&](double& v) { low_energy += v * v; });
  for_each_high_band(a.view(), plan.final_low_extents(),
                     [&](double& v) { high_energy += v * v; });
  EXPECT_GT(low_energy, 1000.0 * high_energy);
}

class HaarRoundTrip
    : public ::testing::TestWithParam<std::tuple<Shape, int>> {};

TEST_P(HaarRoundTrip, ForwardInverseIsNearIdentity) {
  const auto& [shape, levels] = GetParam();
  const NdArray<double> orig = random_array(shape, 7 + shape.size());
  NdArray<double> a = orig;
  haar_forward(a.view(), levels);
  haar_inverse(a.view(), levels);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], orig[i], 1e-9 * std::abs(orig[i]) + 1e-12) << "i=" << i;
  }
}

TEST_P(HaarRoundTrip, ExactOnDyadicData) {
  const auto& [shape, levels] = GetParam();
  const NdArray<double> orig = dyadic_array(shape, 11 + shape.size());
  NdArray<double> a = orig;
  haar_forward(a.view(), levels);
  haar_inverse(a.view(), levels);
  EXPECT_EQ(a, orig);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndLevels, HaarRoundTrip,
    ::testing::Values(
        std::make_tuple(Shape{64}, 1), std::make_tuple(Shape{64}, 3),
        std::make_tuple(Shape{63}, 1), std::make_tuple(Shape{63}, 2),
        std::make_tuple(Shape{1}, 1), std::make_tuple(Shape{2}, 4),
        std::make_tuple(Shape{16, 16}, 1), std::make_tuple(Shape{16, 16}, 2),
        std::make_tuple(Shape{15, 17}, 2), std::make_tuple(Shape{1, 9}, 1),
        std::make_tuple(Shape{8, 8, 8}, 1), std::make_tuple(Shape{8, 8, 8}, 2),
        std::make_tuple(Shape{7, 9, 5}, 3),
        // The paper's NICAM array shape.
        std::make_tuple(Shape{1156, 82, 2}, 1),
        std::make_tuple(Shape{3, 4, 5, 6}, 2)));

TEST(WaveletPlan, LowExtentsHalveCeiling) {
  const WaveletPlan p = WaveletPlan::create(Shape{9, 8}, 2);
  EXPECT_EQ(p.low_extents(0), Shape({5, 4}));
  EXPECT_EQ(p.low_extents(1), Shape({3, 2}));
  EXPECT_EQ(p.low_count(), 6u);
  EXPECT_EQ(p.high_count(), 72u - 6u);
}

TEST(WaveletPlan, SaturatesAtExtentOne) {
  const WaveletPlan p = WaveletPlan::create(Shape{2, 3}, 5);
  EXPECT_EQ(p.final_low_extents(), Shape({1, 1}));
}

TEST(WaveletPlan, InvalidLevelsRejected) {
  EXPECT_THROW((void)WaveletPlan::create(Shape{4}, 0), InvalidArgumentError);
  NdArray<double> a(Shape{4});
  EXPECT_THROW(haar_forward(a.view(), 0), InvalidArgumentError);
  EXPECT_THROW(haar_inverse(a.view(), -1), InvalidArgumentError);
}

TEST(BandIteration, HighPlusLowCoversArrayOnce) {
  for (const Shape& shape : {Shape{10}, Shape{5, 6}, Shape{4, 5, 6}}) {
    for (int levels = 1; levels <= 2; ++levels) {
      const WaveletPlan plan = WaveletPlan::create(shape, levels);
      NdArray<int> marks(shape, 0);
      // Mark low and high elements through int views.
      NdSpan<int> v = marks.view();
      std::size_t low_seen = 0;
      std::size_t high_seen = 0;
      for_each_low_band(v, plan.final_low_extents(), [&](int& m) {
        ++m;
        ++low_seen;
      });
      for_each_high_band(v, plan.final_low_extents(), [&](int& m) {
        ++m;
        ++high_seen;
      });
      EXPECT_EQ(low_seen, plan.low_count());
      EXPECT_EQ(high_seen, plan.high_count());
      for (const int m : marks.values()) EXPECT_EQ(m, 1);
    }
  }
}

TEST(BandIteration, HighBandOrderIsRowMajor) {
  // 1D, n=4, low corner = 2: high elements are positions 2, 3.
  NdArray<double> a(Shape{4}, std::vector<double>{0.0, 1.0, 2.0, 3.0});
  const WaveletPlan plan = WaveletPlan::create(a.shape(), 1);
  std::vector<double> seen;
  for_each_high_band(a.view(), plan.final_low_extents(),
                     [&](double& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<double>{2.0, 3.0}));
}

TEST(Haar, EnergyPreservationOfAveragesAndDifferences) {
  // Parseval-like invariant of the paper's (unnormalized) Haar variant:
  // for each pair, a^2 + b^2 = 2 * (L^2 + H^2).
  const NdArray<double> orig = random_array(Shape{512}, 23);
  NdArray<double> a = orig;
  haar_forward(a.view(), 1);
  for (std::size_t i = 0; i < 256; ++i) {
    const double lhs = orig[2 * i] * orig[2 * i] + orig[2 * i + 1] * orig[2 * i + 1];
    const double rhs = 2.0 * (a[i] * a[i] + a[256 + i] * a[256 + i]);
    EXPECT_NEAR(lhs, rhs, 1e-9 * std::abs(lhs));
  }
}

TEST(Haar, MultiLevelMatchesRepeatedSingleLevel) {
  const NdArray<double> orig = random_array(Shape{16, 16}, 31);
  NdArray<double> multi = orig;
  haar_forward(multi.view(), 2);

  NdArray<double> twice = orig;
  haar_forward(twice.view(), 1);
  const std::size_t offs[] = {0, 0};
  const std::size_t exts[] = {8, 8};
  haar_forward(twice.view().subblock(offs, exts), 1);

  for (std::size_t i = 0; i < multi.size(); ++i) {
    EXPECT_DOUBLE_EQ(multi[i], twice[i]);
  }
}

}  // namespace
}  // namespace wck
