// Tests for the selectable wavelet transforms (Haar / CDF 5/3 / CDF 9/7).
#include <gtest/gtest.h>

#include <cmath>

#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "util/rng.hpp"
#include "wavelet/transform.hpp"

namespace wck {
namespace {

NdArray<double> random_array(const Shape& shape, std::uint64_t seed) {
  NdArray<double> a(shape);
  Xoshiro256 rng(seed);
  for (auto& v : a.values()) v = rng.uniform(-10.0, 10.0);
  return a;
}

TEST(Transforms, KindNames) {
  EXPECT_STREQ(wavelet_kind_name(WaveletKind::kHaar), "haar");
  EXPECT_STREQ(wavelet_kind_name(WaveletKind::kCdf53), "cdf53");
  EXPECT_STREQ(wavelet_kind_name(WaveletKind::kCdf97), "cdf97");
}

TEST(Transforms, HaarDispatchMatchesDirectCalls) {
  NdArray<double> a = random_array(Shape{32, 16}, 1);
  NdArray<double> b = a;
  wavelet_forward(a.view(), WaveletKind::kHaar, 2);
  haar_forward(b.view(), 2);
  EXPECT_EQ(a, b);
}

class TransformRoundTrip
    : public ::testing::TestWithParam<std::tuple<WaveletKind, Shape, int>> {};

TEST_P(TransformRoundTrip, ForwardInverseIsNearIdentity) {
  const auto& [kind, shape, levels] = GetParam();
  const NdArray<double> orig = random_array(shape, 3 + shape.size());
  NdArray<double> a = orig;
  wavelet_forward(a.view(), kind, levels);
  wavelet_inverse(a.view(), kind, levels);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], orig[i], 1e-8) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsShapesLevels, TransformRoundTrip,
    ::testing::Combine(
        ::testing::Values(WaveletKind::kHaar, WaveletKind::kCdf53, WaveletKind::kCdf97),
        ::testing::Values(Shape{64}, Shape{63}, Shape{2}, Shape{3}, Shape{16, 16},
                          Shape{15, 17}, Shape{8, 6, 4}, Shape{1156, 82, 2}),
        ::testing::Values(1, 2)));

TEST(Transforms, LongerFiltersConcentrateEnergyBetterOnSmoothData) {
  // The reason to offer CDF transforms: on smooth data, their high bands
  // hold (much) less energy than Haar's.
  const auto field = make_smooth_field(Shape{128, 128}, 5);
  const WaveletPlan plan = WaveletPlan::create(field.shape(), 1);

  auto high_energy = [&](WaveletKind kind) {
    NdArray<double> a = field;
    wavelet_forward(a.view(), kind, 1);
    double e = 0.0;
    for_each_high_band(a.view(), plan.final_low_extents(), [&](double& v) { e += v * v; });
    return e;
  };
  const double haar = high_energy(WaveletKind::kHaar);
  const double cdf53 = high_energy(WaveletKind::kCdf53);
  const double cdf97 = high_energy(WaveletKind::kCdf97);
  EXPECT_LT(cdf53, haar);
  EXPECT_LT(cdf97, haar);
}

TEST(Transforms, Cdf53ConstantSignalHasZeroHighBand) {
  NdArray<double> a(Shape{64}, 7.0);
  wavelet_forward(a.view(), WaveletKind::kCdf53, 1);
  for (std::size_t i = 32; i < 64; ++i) EXPECT_NEAR(a[i], 0.0, 1e-12);
  // Low band of a constant stays constant for 5/3 (no scaling step).
  for (std::size_t i = 0; i < 32; ++i) EXPECT_NEAR(a[i], 7.0, 1e-12);
}

TEST(Transforms, Cdf97LinearSignalHasTinyHighBand) {
  // 9/7 has two vanishing moments: linear ramps produce (near-)zero
  // detail away from boundaries.
  NdArray<double> a(Shape{128});
  for (std::size_t i = 0; i < 128; ++i) a[i] = 3.0 + 0.25 * static_cast<double>(i);
  wavelet_forward(a.view(), WaveletKind::kCdf97, 1);
  for (std::size_t i = 66; i < 126; ++i) {  // interior of the H band
    EXPECT_NEAR(a[i], 0.0, 1e-9) << "i=" << i;
  }
}

TEST(Transforms, PipelineRoundTripsWithEveryKind) {
  const auto field = make_temperature_field(Shape{64, 32, 4}, 6);
  for (const auto kind : {WaveletKind::kHaar, WaveletKind::kCdf53, WaveletKind::kCdf97}) {
    CompressionParams p;
    p.quantizer.divisions = 128;
    p.wavelet = kind;
    const auto rt = WaveletCompressor(p).round_trip(field);
    EXPECT_EQ(rt.reconstructed.shape(), field.shape()) << wavelet_kind_name(kind);
    EXPECT_LT(rt.error.mean_rel_percent(), 0.5) << wavelet_kind_name(kind);
  }
}

TEST(Transforms, StreamRecordsWaveletKind) {
  // Decompression picks the transform from the stream, not from any
  // decoder-side parameter.
  const auto field = make_smooth_field(Shape{32, 32}, 7);
  CompressionParams p;
  p.wavelet = WaveletKind::kCdf97;
  const auto comp = WaveletCompressor(p).compress(field);
  const auto back = WaveletCompressor::decompress(comp.data);
  const auto err = relative_error(field.values(), back.values());
  EXPECT_LT(err.mean_rel_percent(), 1.0);
}

TEST(Transforms, InvalidLevelsRejected) {
  NdArray<double> a(Shape{8});
  EXPECT_THROW(wavelet_forward(a.view(), WaveletKind::kCdf53, 0), InvalidArgumentError);
  EXPECT_THROW(wavelet_inverse(a.view(), WaveletKind::kCdf97, 0), InvalidArgumentError);
}

}  // namespace
}  // namespace wck
