// Tests for the sharded parallel deflate engine (src/deflate/parallel):
// round trips, bit-determinism across thread counts, frame-format
// robustness (truncation, CRC corruption, implausible headers), and the
// compressor integration (tag-4 streams, WCK_THREADS resolution, size
// parity with the serial container).
#include "deflate/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "core/chunked.hpp"
#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "deflate/deflate.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

Bytes make_payload(std::size_t size, std::uint64_t seed = 7) {
  Xoshiro256 rng(seed);
  Bytes data(size);
  // Mildly compressible: runs of a few repeated bytes.
  std::size_t i = 0;
  while (i < size) {
    const auto value = static_cast<std::byte>(rng() & 0xFF);
    const std::size_t run = 1 + (rng() % 8);
    for (std::size_t r = 0; r < run && i < size; ++r) data[i++] = value;
  }
  return data;
}

/// Scoped environment variable override (removed on destruction).
/// Production code reads WCK_* variables through the wck::env cache,
/// which memoizes the first real lookup — plain setenv would be masked
/// by the cache, so this goes through the cache's test override hook.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    env::set_override(name_, value == nullptr
                                 ? std::nullopt
                                 : std::optional<std::string>(value));
  }
  ~ScopedEnv() { env::clear_override(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
};

TEST(ShardedDeflate, RoundTripsAcrossSizes) {
  // Exercises: empty, sub-block, exact multiples, one-past boundaries.
  const std::size_t block = 1024;
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{1023}, std::size_t{1024}, std::size_t{1025},
        std::size_t{4096}, std::size_t{10000}}) {
    const Bytes input = make_payload(size);
    const Bytes packed = sharded_deflate_compress(input, {6, block, 2});
    EXPECT_TRUE(is_sharded_deflate(packed));
    const Bytes restored = sharded_deflate_decompress(packed, 2);
    EXPECT_EQ(restored, input) << "size " << size;
  }
}

TEST(ShardedDeflate, EmptyInputYieldsValidZeroBlockContainer) {
  const Bytes packed = sharded_deflate_compress({}, {6, 4096, 4});
  EXPECT_TRUE(is_sharded_deflate(packed));
  const Bytes restored = sharded_deflate_decompress(packed);
  EXPECT_TRUE(restored.empty());
}

TEST(ShardedDeflate, BitDeterministicAcrossThreadCounts) {
  const Bytes input = make_payload(100 * 1024);
  const Bytes reference = sharded_deflate_compress(input, {6, 8192, 1});
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const Bytes packed = sharded_deflate_compress(input, {6, 8192, threads});
    EXPECT_EQ(packed, reference) << "threads=" << threads;
  }
}

TEST(ShardedDeflate, BlockSizeChangesBytesButNotContent) {
  const Bytes input = make_payload(64 * 1024);
  const Bytes a = sharded_deflate_compress(input, {6, 4096, 2});
  const Bytes b = sharded_deflate_compress(input, {6, 16384, 2});
  EXPECT_NE(a, b);  // different framing
  EXPECT_EQ(sharded_deflate_decompress(a), input);
  EXPECT_EQ(sharded_deflate_decompress(b), input);
}

TEST(ShardedDeflate, SizeWithinTwoPercentOfSerial) {
  // The per-block window reset must not cost more than the gated 2%
  // drift at the default block size on a checkpoint-like payload.
  const NdArray<double> field = make_temperature_field(Shape{256, 128}, 11);
  const auto raw = std::as_bytes(field.values());
  const Bytes serial = zlib_compress(raw, {});
  const Bytes sharded = sharded_deflate_compress(Bytes(raw.begin(), raw.end()), {});
  EXPECT_LE(static_cast<double>(sharded.size()),
            static_cast<double>(serial.size()) * 1.02)
      << "sharded " << sharded.size() << " vs serial " << serial.size();
}

TEST(ShardedDeflate, RejectsBadMagicAndVersion) {
  const Bytes packed = sharded_deflate_compress(make_payload(100), {6, 64, 1});
  Bytes bad_magic = packed;
  bad_magic[0] = static_cast<std::byte>(0x00);
  EXPECT_THROW((void)sharded_deflate_decompress(bad_magic), FormatError);
  Bytes bad_version = packed;
  bad_version[4] = static_cast<std::byte>(9);
  EXPECT_THROW((void)sharded_deflate_decompress(bad_version), FormatError);
  EXPECT_FALSE(is_sharded_deflate(bad_magic));
  EXPECT_FALSE(is_sharded_deflate({}));
}

TEST(ShardedDeflate, RejectsTruncatedFrames) {
  // Every proper prefix must fail loudly with a typed error, never
  // crash or return data.
  const Bytes packed = sharded_deflate_compress(make_payload(5000), {6, 1024, 2});
  for (std::size_t len = 0; len < packed.size(); ++len) {
    const std::span<const std::byte> prefix(packed.data(), len);
    EXPECT_THROW((void)sharded_deflate_decompress(prefix), Error) << "prefix " << len;
  }
}

TEST(ShardedDeflate, RejectsCorruptedBlockCrc) {
  const Bytes input = make_payload(8192);
  const Bytes packed = sharded_deflate_compress(input, {6, 1024, 2});
  // Flip one byte in the last block's body: frame parsing stays valid,
  // so the corruption must be caught by that block's CRC-32.
  Bytes corrupt = packed;
  corrupt[corrupt.size() - 1] ^= static_cast<std::byte>(0x01);
  EXPECT_THROW((void)sharded_deflate_decompress(corrupt), Error);
}

TEST(ShardedDeflate, RejectsImplausibleBlockCount) {
  // A hand-built header claiming 2^40 output bytes from a tiny input
  // must be rejected before any allocation (allocation-bomb guard).
  ByteWriter w;
  w.u32(0x504B4357);
  w.u8(1);
  w.u8(0);
  w.varint(1024);                      // block_size
  w.varint(1ull << 40);                // total: absurd for a tiny container
  w.varint((1ull << 40) / 1024);       // matching block count
  EXPECT_THROW((void)sharded_deflate_decompress(w.buffer()), FormatError);
}

TEST(ShardedDeflate, RejectsBlockCountMismatch) {
  const Bytes packed = sharded_deflate_compress(make_payload(4096), {6, 1024, 1});
  // Rebuild the header with an off-by-one block count; table/body bytes
  // no longer agree with the derived count.
  ByteReader r(packed);
  (void)r.u32();
  (void)r.u8();
  (void)r.u8();
  const std::uint64_t block_size = r.varint();
  const std::uint64_t total = r.varint();
  const std::uint64_t count = r.varint();
  ByteWriter w;
  w.u32(0x504B4357);
  w.u8(1);
  w.u8(0);
  w.varint(block_size);
  w.varint(total);
  w.varint(count + 1);
  w.raw(packed.data() + r.position(), packed.size() - r.position());
  EXPECT_THROW((void)sharded_deflate_decompress(w.buffer()), FormatError);
}

TEST(ShardedDeflate, RejectsTrailingBytes) {
  Bytes packed = sharded_deflate_compress(make_payload(2048), {6, 512, 1});
  packed.push_back(std::byte{0});
  EXPECT_THROW((void)sharded_deflate_decompress(packed), FormatError);
}

TEST(ResolveDeflateSharding, ExplicitRequestWins) {
  const ScopedEnv env("WCK_THREADS", "8");
  EXPECT_EQ(resolve_deflate_sharding(3), std::size_t{3});
  EXPECT_EQ(resolve_deflate_sharding(1), std::size_t{1});
  EXPECT_EQ(resolve_deflate_sharding(-1), std::nullopt);  // explicit opt-out
}

TEST(ResolveDeflateSharding, EnvControlsDefault) {
  {
    const ScopedEnv env("WCK_THREADS", nullptr);
    EXPECT_EQ(resolve_deflate_sharding(0), std::nullopt);
  }
  {
    const ScopedEnv env("WCK_THREADS", "");
    EXPECT_EQ(resolve_deflate_sharding(0), std::nullopt);
  }
  {
    const ScopedEnv env("WCK_THREADS", "4");
    EXPECT_EQ(resolve_deflate_sharding(0), std::size_t{4});
  }
  {
    const ScopedEnv env("WCK_THREADS", "nonsense");
    EXPECT_EQ(resolve_deflate_sharding(0), std::nullopt);
  }
  {
    const ScopedEnv env("WCK_THREADS", "max");
    const auto resolved = resolve_deflate_sharding(0);
    ASSERT_TRUE(resolved.has_value());
    EXPECT_GE(*resolved, std::size_t{1});
  }
}

TEST(CompressorSharded, RoundTripsWithTag4) {
  const NdArray<double> field = make_temperature_field(Shape{64, 48}, 5);
  CompressionParams p;
  p.threads = 2;
  p.deflate_block_size = 4096;  // small enough for several blocks
  const WaveletCompressor compressor(p);
  const CompressedArray comp = compressor.compress(field);
  EXPECT_EQ(static_cast<std::uint8_t>(comp.data[0]), 4);  // kTagSharded
  EXPECT_EQ(WaveletCompressor::inspect(comp.data).entropy_tag, 4);

  const NdArray<double> restored = WaveletCompressor::decompress(comp.data);
  // Restore must be bit-identical to the serial container's restore:
  // sharding only changes the lossless stage.
  CompressionParams serial = p;
  serial.threads = -1;
  const WaveletCompressor serial_compressor(serial);
  const CompressedArray serial_comp = serial_compressor.compress(field);
  EXPECT_EQ(static_cast<std::uint8_t>(serial_comp.data[0]), 1);  // kTagZlib
  const NdArray<double> serial_restored = WaveletCompressor::decompress(serial_comp.data);
  ASSERT_EQ(restored.shape(), serial_restored.shape());
  EXPECT_TRUE(std::equal(restored.values().begin(), restored.values().end(),
                         serial_restored.values().begin()));

  // And the sharded stream must stay within 2% of the serial one.
  EXPECT_LE(static_cast<double>(comp.data.size()),
            static_cast<double>(serial_comp.data.size()) * 1.02);
}

TEST(CompressorSharded, TempFileGzipModeShards) {
  const NdArray<double> field = make_temperature_field(Shape{48, 32}, 9);
  CompressionParams p;
  p.entropy = EntropyMode::kTempFileGzip;
  p.threads = 2;
  p.deflate_block_size = 4096;
  const WaveletCompressor compressor(p);
  const CompressedArray comp = compressor.compress(field);
  EXPECT_EQ(static_cast<std::uint8_t>(comp.data[0]), 4);
  const NdArray<double> restored = WaveletCompressor::decompress(comp.data);
  EXPECT_EQ(restored.shape(), field.shape());
}

TEST(CompressorSharded, IdenticalStreamsForAnyWckThreadsValue) {
  // WCK_THREADS only picks the worker count; every explicit setting must
  // produce byte-identical compressed streams (the acceptance criterion
  // that lets soak/fuzz/regression infra run under any matrix leg).
  const NdArray<double> field = make_temperature_field(Shape{96, 64}, 3);
  CompressionParams p;  // threads = 0: defer to environment
  p.deflate_block_size = 8192;
  std::vector<Bytes> streams;
  for (const char* value : {"1", "2", "8"}) {
    const ScopedEnv env("WCK_THREADS", value);
    const WaveletCompressor compressor(p);
    streams.push_back(compressor.compress(field).data);
    EXPECT_EQ(static_cast<std::uint8_t>(streams.back()[0]), 4) << "WCK_THREADS=" << value;
  }
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
}

TEST(CompressorSharded, UnsetEnvKeepsLegacySerialContainer) {
  const ScopedEnv env("WCK_THREADS", nullptr);
  const NdArray<double> field = make_temperature_field(Shape{32, 32}, 1);
  const WaveletCompressor compressor{CompressionParams{}};
  const CompressedArray comp = compressor.compress(field);
  EXPECT_EQ(static_cast<std::uint8_t>(comp.data[0]), 1);  // legacy kTagZlib
}

TEST(CompressorSharded, LegacySerialStreamStillDecodes) {
  // Old-container round-trip through the new decode path: streams
  // written before (or without) sharding must keep restoring.
  const NdArray<double> field = make_temperature_field(Shape{40, 24}, 2);
  CompressionParams serial;
  serial.threads = -1;
  const WaveletCompressor compressor(serial);
  const CompressedArray comp = compressor.compress(field);
  const NdArray<double> restored = WaveletCompressor::decompress(comp.data);
  EXPECT_EQ(restored.shape(), field.shape());
  EXPECT_EQ(WaveletCompressor::inspect(comp.data).entropy_tag, 1);
}

TEST(CompressorSharded, ChunkedComposesWithSharding) {
  // Slab-level parallelism (caller's pool) nested over shard-level
  // parallelism (the engine's own pool) must round-trip and stay
  // deterministic.
  const NdArray<double> field = make_temperature_field(Shape{64, 64}, 13);
  ThreadPool pool(2);
  ChunkedParams params;
  params.chunks = 4;
  params.threads = 2;
  params.base.deflate_block_size = 2048;
  const CompressedArray a = chunked_compress(field, params, &pool);
  const CompressedArray b = chunked_compress(field, params, nullptr);
  EXPECT_EQ(a.data, b.data);
  const NdArray<double> restored = chunked_decompress(a.data, &pool);
  ASSERT_EQ(restored.shape(), field.shape());
  const NdArray<double> reference = chunked_decompress(a.data, nullptr);
  EXPECT_TRUE(std::equal(restored.values().begin(), restored.values().end(),
                         reference.values().begin()));
}

TEST(QuantizeFusion, PrecomputedRangeIsBitIdentical) {
  // The compressor now folds min/max during band collection and hands
  // the range to analyze(); both paths must produce identical schemes.
  Xoshiro256 rng(21);
  std::vector<double> values(10000);
  for (double& v : values) v = rng.uniform(-3.0, 5.0);
  double lo = values[0];
  double hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const ValueRange range{lo, hi};
  for (const QuantizerKind kind : {QuantizerKind::kSimple, QuantizerKind::kSpike}) {
    QuantizerConfig cfg;
    cfg.kind = kind;
    const QuantizationScheme with = QuantizationScheme::analyze(values, cfg, &range);
    const QuantizationScheme without = QuantizationScheme::analyze(values, cfg);
    EXPECT_EQ(with.averages(), without.averages());
    EXPECT_EQ(with.quant_min(), without.quant_min());
    EXPECT_EQ(with.quant_max(), without.quant_max());
    for (const double v : values) {
      ASSERT_EQ(with.classify(v), without.classify(v));
    }
  }
}

}  // namespace
}  // namespace wck
