// Unit tests for the bitmap and the Fig. 5 payload serialization.
#include <gtest/gtest.h>

#include "encode/bitmap.hpp"
#include "encode/payload.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

TEST(BitmapTest, SetGetAcrossWordBoundaries) {
  Bitmap bm(130);
  bm.set(0, true);
  bm.set(63, true);
  bm.set(64, true);
  bm.set(129, true);
  EXPECT_TRUE(bm.get(0));
  EXPECT_FALSE(bm.get(1));
  EXPECT_TRUE(bm.get(63));
  EXPECT_TRUE(bm.get(64));
  EXPECT_TRUE(bm.get(129));
  EXPECT_EQ(bm.count(), 4u);
  bm.set(64, false);
  EXPECT_FALSE(bm.get(64));
  EXPECT_EQ(bm.count(), 3u);
}

TEST(BitmapTest, PushBackGrows) {
  Bitmap bm;
  for (int i = 0; i < 100; ++i) bm.push_back(i % 3 == 0);
  EXPECT_EQ(bm.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(bm.get(static_cast<std::size_t>(i)), i % 3 == 0);
}

TEST(BitmapTest, SerializeDeserializeRoundTrip) {
  Xoshiro256 rng(1);
  for (const std::size_t size : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    Bitmap bm(size);
    for (std::size_t i = 0; i < size; ++i) bm.set(i, rng.uniform() < 0.5);
    std::vector<std::byte> bytes;
    bm.serialize_to(bytes);
    EXPECT_EQ(bytes.size(), (size + 7) / 8);
    const Bitmap back = Bitmap::deserialize(bytes, size);
    EXPECT_EQ(back, bm) << "size=" << size;
  }
}

TEST(BitmapTest, DeserializeTruncatedRejected) {
  std::vector<std::byte> bytes(1);
  EXPECT_THROW((void)Bitmap::deserialize(bytes, 9), FormatError);
}

TEST(BitmapTest, OutOfRangeAccessRejected) {
  Bitmap bm(8);
  EXPECT_THROW((void)bm.get(8), InvalidArgumentError);
  EXPECT_THROW(bm.set(8, true), InvalidArgumentError);
}

LossyPayload sample_payload() {
  LossyPayload p;
  p.shape = Shape{4, 4};
  p.levels = 1;
  p.quantizer = QuantizerKind::kSpike;
  p.averages = {0.5, -0.5, 0.0};
  p.low_band = {1.0, 2.0, 3.0, 4.0};  // 2x2 low corner of a 4x4 array
  p.quantized = Bitmap(12);           // 16 - 4 high elements
  // Quantize elements 0, 2, 5; others exact.
  p.quantized.set(0, true);
  p.quantized.set(2, true);
  p.quantized.set(5, true);
  p.indices = {0, 2, 1};
  p.exact_values = {9.0, 8.0, 7.0, 6.0, 5.0, 4.5, 3.5, 2.5, 1.5};
  return p;
}

TEST(Payload, RoundTrip) {
  const LossyPayload p = sample_payload();
  const Bytes data = encode_payload(p);
  const LossyPayload q = decode_payload(data);
  EXPECT_EQ(q.shape, p.shape);
  EXPECT_EQ(q.levels, p.levels);
  EXPECT_EQ(q.quantizer, p.quantizer);
  EXPECT_EQ(q.averages, p.averages);
  EXPECT_EQ(q.low_band, p.low_band);
  EXPECT_EQ(q.quantized, p.quantized);
  EXPECT_EQ(q.indices, p.indices);
  EXPECT_EQ(q.exact_values, p.exact_values);
}

TEST(Payload, EncodeValidatesConsistency) {
  LossyPayload p = sample_payload();
  p.indices.push_back(0);  // one more index than set bits
  EXPECT_THROW((void)encode_payload(p), InvalidArgumentError);

  p = sample_payload();
  p.exact_values.pop_back();
  EXPECT_THROW((void)encode_payload(p), InvalidArgumentError);
}

TEST(Payload, CrcDetectsBitFlipAnywhere) {
  const Bytes data = encode_payload(sample_payload());
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes bad = data;
    bad[rng.bounded(bad.size())] ^= std::byte{0x40};
    EXPECT_THROW((void)decode_payload(bad), Error);
  }
}

TEST(Payload, TruncationRejected) {
  const Bytes data = encode_payload(sample_payload());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{10}, data.size() - 1}) {
    Bytes cut(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)decode_payload(cut), Error) << "keep=" << keep;
  }
}

TEST(Payload, BadMagicRejected) {
  Bytes data = encode_payload(sample_payload());
  data[0] = std::byte{0x00};
  EXPECT_THROW((void)decode_payload(data), Error);
}

TEST(Payload, IndexBeyondTableRejected) {
  LossyPayload p = sample_payload();
  p.indices[0] = 200;  // averages table has 3 entries
  const Bytes data = encode_payload(p);
  EXPECT_THROW((void)decode_payload(data), FormatError);
}

TEST(Payload, TrailingGarbageRejected) {
  // Valid payload + CRC, then junk: the CRC check fails because it now
  // covers the junk; the combined effect must be an error either way.
  Bytes data = encode_payload(sample_payload());
  data.push_back(std::byte{0xAA});
  data.push_back(std::byte{0xBB});
  EXPECT_THROW((void)decode_payload(data), Error);
}

/// Recomputes the trailing CRC-32 after a deliberate corruption, so the
/// decoder gets past the integrity check and its *structural* validation
/// paths are the ones under test.
Bytes resign(Bytes data) {
  const std::uint32_t crc =
      crc32(std::span<const std::byte>(data).subspan(0, data.size() - 4));
  for (int i = 0; i < 4; ++i) {
    data[data.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((crc >> (8 * i)) & 0xFFu);
  }
  return data;
}

TEST(Payload, CorruptHeaderFieldsRejectedEvenWithValidCrc) {
  const Bytes good = encode_payload(sample_payload());
  // Header layout: magic(4) version(1) quantizer(1) wavelet(1) rank(1)
  // levels(1) extents... — corrupt each byte to an invalid value and
  // re-sign, so rejection comes from the field validator, not the CRC.
  const struct {
    std::size_t offset;
    std::uint8_t value;
    const char* what;
  } cases[] = {
      {4, 99, "unsupported version"}, {5, 7, "unknown quantizer kind"},
      {6, 9, "unknown wavelet kind"}, {7, 0, "rank zero"},
      {7, 200, "rank beyond kMaxRank"}, {8, 0, "zero transform depth"},
      {9, 0, "zero extent"},
  };
  for (const auto& c : cases) {
    Bytes bad = good;
    bad[c.offset] = static_cast<std::byte>(c.value);
    EXPECT_THROW((void)decode_payload(resign(std::move(bad))), FormatError) << c.what;
  }
}

TEST(Payload, CorruptCountFieldsRejectedEvenWithValidCrc) {
  // Count varints for sample_payload() (all < 128, 1 byte each) sit at
  // offsets 11..14: n_avg, n_low, n_high, n_idx.
  const Bytes good = encode_payload(sample_payload());
  const struct {
    std::size_t offset;
    std::uint8_t value;
    const char* what;
  } cases[] = {
      {11, 120, "averages count inflated past stream size"},
      {12, 3, "band sizes no longer sum to array size"},
      {13, 90, "high-band count inflated"},
      {14, 12, "more indexes than set bitmap bits"},
      {14, 0, "fewer indexes than set bitmap bits"},
  };
  for (const auto& c : cases) {
    Bytes bad = good;
    bad[c.offset] = static_cast<std::byte>(c.value);
    EXPECT_THROW((void)decode_payload(resign(std::move(bad))), FormatError) << c.what;
  }
}

TEST(Payload, EveryPrefixTruncationRejected) {
  const Bytes data = encode_payload(sample_payload());
  for (std::size_t keep = 0; keep < data.size(); ++keep) {
    Bytes cut(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)decode_payload(cut), Error) << "keep=" << keep;
  }
}

TEST(Payload, OversizedAveragesTableRejected) {
  LossyPayload p = sample_payload();
  p.averages.resize(300, 0.0);
  EXPECT_THROW((void)encode_payload(p), InvalidArgumentError);
}

TEST(Payload, BandSizesMustSumToArraySize) {
  LossyPayload p = sample_payload();
  p.low_band.push_back(5.0);  // 5 low + 12 high != 16
  const Bytes data = encode_payload(p);
  EXPECT_THROW((void)decode_payload(data), FormatError);
}

}  // namespace
}  // namespace wck
