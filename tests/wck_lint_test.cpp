// Tests for the project-invariant linter (tools/wck_lint_core): each
// rule is exercised against a violating and a clean fixture under
// tests/lint_fixtures/, scope exemptions are checked by re-scanning the
// same text under an exempt path, and the live source tree must be
// clean modulo the committed baseline (tools/wck_lint_baseline.txt).
#include "wck_lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace wck::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(WCK_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> of_rule(const std::vector<Finding>& findings,
                             const std::string& rule) {
  std::vector<Finding> out;
  std::copy_if(findings.begin(), findings.end(), std::back_inserter(out),
               [&](const Finding& f) { return f.rule == rule; });
  return out;
}

TEST(WckLintFormat, MatchesBaselineShape) {
  const Finding f{"src/a.cpp", 12, "something happened", "raw-file-io"};
  EXPECT_EQ(format(f), "src/a.cpp:12: something happened [raw-file-io]");
}

TEST(WckLintIgnoredResult, FlagsStatementPositionDiscards) {
  const auto findings =
      scan_file("src/ckpt/fx.cpp", read_fixture("r1_ignored_result_violation.cpp"));
  const auto r1 = of_rule(findings, "ignored-result");
  ASSERT_EQ(r1.size(), 5u);
  std::vector<int> lines;
  for (const Finding& f : r1) lines.push_back(f.line);
  EXPECT_EQ(lines, (std::vector<int>{4, 5, 6, 7, 8}));
  EXPECT_EQ(findings.size(), r1.size()) << "fixture tripped an unrelated rule";
}

TEST(WckLintIgnoredResult, AcceptsConsumedAndVoidCastResults) {
  const auto findings =
      scan_file("src/ckpt/fx.cpp", read_fixture("r1_ignored_result_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << format(findings.front());
}

TEST(WckLintRawFileIo, FlagsRawPrimitivesOutsideIoLayer) {
  const std::string text = read_fixture("r2_raw_file_io_violation.cpp");
  const auto findings = scan_file("src/telemetry/fx.cpp", text);
  EXPECT_EQ(of_rule(findings, "raw-file-io").size(), 4u);
  // The same text inside src/io/ is the sanctioned home...
  EXPECT_TRUE(of_rule(scan_file("src/io/fx.cpp", text), "raw-file-io").empty());
  // ...and tools are whitelisted entirely.
  EXPECT_TRUE(of_rule(scan_file("tools/fx.cpp", text), "raw-file-io").empty());
}

TEST(WckLintRawFileIo, IgnoresCommentsStringsAndSubtokens) {
  const auto findings =
      scan_file("src/telemetry/fx.cpp", read_fixture("r2_raw_file_io_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << format(findings.front());
}

TEST(WckLintNakedMutex, FlagsStdPrimitivesInSrc) {
  const std::string text = read_fixture("r3_naked_mutex_violation.cpp");
  const auto findings = scan_file("src/parallel/fx.cpp", text);
  EXPECT_EQ(of_rule(findings, "naked-mutex").size(), 6u);
  // The wrapper header itself is the one sanctioned user.
  EXPECT_TRUE(
      of_rule(scan_file("src/util/thread_annotations.hpp", text), "naked-mutex")
          .empty());
}

TEST(WckLintNakedMutex, AcceptsAnnotatedWrappers) {
  const auto findings =
      scan_file("src/parallel/fx.cpp", read_fixture("r3_naked_mutex_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << format(findings.front());
}

TEST(WckLintMetricName, FlagsNonDottedLowercaseLiterals) {
  const auto findings =
      scan_file("src/telemetry/fx.cpp", read_fixture("r4_metric_name_violation.cpp"));
  EXPECT_EQ(of_rule(findings, "metric-name").size(), 5u);
}

TEST(WckLintMetricName, AcceptsConformingAndDynamicNames) {
  const auto findings =
      scan_file("src/telemetry/fx.cpp", read_fixture("r4_metric_name_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << format(findings.front());
}

TEST(WckLintGetenv, FlagsDirectReadsOutsideEnvCache) {
  const std::string text = read_fixture("r5_getenv_violation.cpp");
  const auto findings = scan_file("tools/fx.cpp", text);
  EXPECT_EQ(of_rule(findings, "getenv").size(), 2u);
  // src/util/env.hpp holds the one sanctioned call.
  EXPECT_TRUE(of_rule(scan_file("src/util/env.hpp", text), "getenv").empty());
}

TEST(WckLintGetenv, AcceptsEnvCacheReads) {
  const auto findings =
      scan_file("tools/fx.cpp", read_fixture("r5_getenv_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << format(findings.front());
}

TEST(WckLintRawSocket, FlagsSyscallsOutsideNetLayer) {
  const std::string text = read_fixture("r6_raw_socket_violation.cpp");
  const auto findings = scan_file("src/server/fx.cpp", text);
  EXPECT_EQ(of_rule(findings, "raw-socket").size(), 8u);
  // The rule also guards tools/ and bench/ (unlike R2): a CLI opening a
  // socket behind the net layer's back is the same bypass.
  EXPECT_EQ(of_rule(scan_file("tools/fx.cpp", text), "raw-socket").size(), 8u);
  // src/net/ is the sanctioned home.
  EXPECT_TRUE(of_rule(scan_file("src/net/socket.cpp", text), "raw-socket").empty());
}

TEST(WckLintRawSocket, AcceptsNetLayerApiAndLookalikes) {
  const auto findings =
      scan_file("src/server/fx.cpp", read_fixture("r6_raw_socket_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << format(findings.front());
}

TEST(WckLintRawSimd, FlagsIntrinsicsHeadersOutsideSimdLayer) {
  const std::string text = read_fixture("r7_raw_simd_violation.cpp");
  const auto findings = scan_file("src/wavelet/fx.cpp", text);
  EXPECT_EQ(of_rule(findings, "raw-simd").size(), 4u);
  // The rule also guards tools/ and bench/: a CLI or bench reaching for
  // intrinsics directly bypasses dispatch and bit-identity coverage.
  EXPECT_EQ(of_rule(scan_file("tools/fx.cpp", text), "raw-simd").size(), 4u);
  EXPECT_EQ(of_rule(scan_file("bench/fx.cpp", text), "raw-simd").size(), 4u);
  // src/simd/ is the sanctioned home.
  EXPECT_TRUE(
      of_rule(scan_file("src/simd/kernels_avx2.cpp", text), "raw-simd").empty());
}

TEST(WckLintRawSimd, AcceptsDispatchTableAndLookalikes) {
  const auto findings =
      scan_file("src/wavelet/fx.cpp", read_fixture("r7_raw_simd_clean.cpp"));
  EXPECT_TRUE(findings.empty()) << format(findings.front());
}

// The gate the `lint` target and CI enforce, as a unit test: the live
// tree must produce no finding that is not in the committed baseline.
TEST(WckLintTree, LiveTreeIsBaselineClean) {
  const std::filesystem::path root = WCK_LINT_SOURCE_ROOT;
  ASSERT_TRUE(std::filesystem::is_directory(root / "src"));
  const std::set<std::string> baseline =
      load_baseline(root / "tools" / "wck_lint_baseline.txt");
  std::vector<std::string> fresh;
  for (const Finding& f : scan_tree(root)) {
    const std::string line = format(f);
    if (baseline.count(line) == 0) fresh.push_back(line);
  }
  EXPECT_TRUE(fresh.empty()) << "new wck_lint findings:\n  " +
                                    [&] {
                                      std::string joined;
                                      for (const auto& l : fresh) joined += l + "\n  ";
                                      return joined;
                                    }();
}

}  // namespace
}  // namespace wck::lint
