// Tests for checkpoint codecs, the registry, the file format, restart
// semantics and failure injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "core/synthetic.hpp"
#include "stats/error_metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("wck_test_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(Codecs, NullCodecRoundTripIsExact) {
  const auto field = make_temperature_field(Shape{16, 8, 4}, 1);
  const NullCodec codec;
  const Bytes data = codec.encode(field);
  EXPECT_EQ(codec.decode(data), field);
  EXPECT_FALSE(codec.lossy());
  // Raw representation: shape header + doubles.
  EXPECT_GE(data.size(), field.size_bytes());
}

TEST(Codecs, GzipCodecRoundTripIsExact) {
  const auto field = make_temperature_field(Shape{32, 16, 2}, 2);
  const GzipCodec codec;
  const Bytes data = codec.encode(field);
  EXPECT_EQ(codec.decode(data), field);
  EXPECT_FALSE(codec.lossy());
}

TEST(Codecs, GzipOnFloatingPointCompressesPoorly) {
  // The paper's Fig. 6 observation: lossless gzip on FP mesh data leaves
  // the bulk of the size (they measured ~87 %).
  const auto field = make_temperature_field(Shape{64, 32, 4}, 3);
  const GzipCodec codec;
  const Bytes data = codec.encode(field);
  const double rate =
      100.0 * static_cast<double>(data.size()) / static_cast<double>(field.size_bytes());
  EXPECT_GT(rate, 50.0);
}

TEST(Codecs, LossyCodecRoundTripsWithSmallError) {
  const auto field = make_temperature_field(Shape{64, 32, 4}, 4);
  CompressionParams params;
  params.quantizer.divisions = 128;
  const WaveletLossyCodec codec(params);
  EXPECT_TRUE(codec.lossy());
  const Bytes data = codec.encode(field);
  const auto back = codec.decode(data);
  const auto err = relative_error(field.values(), back.values());
  EXPECT_LT(err.mean_rel_percent(), 0.5);
  EXPECT_LT(data.size(), field.size_bytes() / 2);
}

TEST(Codecs, StageTimesAccumulated) {
  const auto field = make_temperature_field(Shape{64, 32, 4}, 5);
  const WaveletLossyCodec codec;
  StageTimes times;
  (void)codec.encode(field, &times);
  EXPECT_GT(times.get("wavelet"), 0.0);
  EXPECT_GT(times.get("quantize_encode"), 0.0);
}

TEST(Codecs, DecoderRegistryResolvesNames) {
  for (const char* name :
       {"null", "gzip", "wavelet-lossy", "fpc", "truncation", "szlike", "zfplike"}) {
    EXPECT_EQ(codec_for_decoding(name).name(), name);
  }
  EXPECT_THROW((void)codec_for_decoding("bzip2"), FormatError);
}

TEST(Codecs, EveryLossyCodecRoundTripsThroughCheckpoints) {
  const auto field = make_temperature_field(Shape{32, 16, 2}, 20);
  NdArray<double> state = field;
  CheckpointRegistry reg;
  reg.add("state", &state);
  const WaveletLossyCodec wavelet;
  const SzLikeCodec szlike(1e-2);
  const ZfpLikeCodec zfplike(20);
  const TruncationCodec truncation(20);
  for (const Codec* codec :
       {static_cast<const Codec*>(&wavelet), static_cast<const Codec*>(&szlike),
        static_cast<const Codec*>(&zfplike), static_cast<const Codec*>(&truncation)}) {
    state = field;
    const Bytes data = serialize_checkpoint(reg, *codec, 1);
    state = NdArray<double>(field.shape(), 0.0);
    (void)restore_checkpoint(data, reg);
    const auto err = relative_error(field.values(), state.values());
    EXPECT_LT(err.mean_rel_percent(), 1.0) << codec->name();
  }
}

TEST(Registry, RejectsDuplicatesAndNulls) {
  NdArray<double> a(Shape{4});
  CheckpointRegistry reg;
  reg.add("a", &a);
  EXPECT_THROW(reg.add("a", &a), InvalidArgumentError);
  EXPECT_THROW(reg.add("b", nullptr), InvalidArgumentError);
  EXPECT_THROW(reg.add("", &a), InvalidArgumentError);
  EXPECT_EQ(reg.find("a"), &a);
  EXPECT_EQ(reg.find("missing"), nullptr);
  EXPECT_EQ(reg.total_bytes(), 4 * sizeof(double));
}

struct TwoFieldApp {
  NdArray<double> temp = make_temperature_field(Shape{24, 12, 2}, 7);
  NdArray<double> pressure = make_smooth_field(Shape{24, 12, 2}, 8);
  CheckpointRegistry registry;

  TwoFieldApp() {
    registry.add("temperature", &temp);
    registry.add("pressure", &pressure);
  }
};

TEST(Checkpoint, InMemoryRoundTripExactWithNullCodec) {
  TwoFieldApp app;
  CheckpointInfo winfo;
  const Bytes data = serialize_checkpoint(app.registry, NullCodec{}, 720, &winfo);
  EXPECT_EQ(winfo.step, 720u);
  EXPECT_EQ(winfo.field_count, 2u);
  EXPECT_EQ(winfo.original_bytes, app.registry.total_bytes());

  TwoFieldApp other;
  other.temp = NdArray<double>(app.temp.shape(), 0.0);
  other.pressure = NdArray<double>(app.pressure.shape(), 0.0);
  const CheckpointInfo rinfo = restore_checkpoint(data, other.registry);
  EXPECT_EQ(rinfo.step, 720u);
  EXPECT_EQ(other.temp, app.temp);
  EXPECT_EQ(other.pressure, app.pressure);
}

TEST(Checkpoint, LossyRoundTripBoundsError) {
  TwoFieldApp app;
  CompressionParams params;
  params.quantizer.divisions = 128;
  const Bytes data = serialize_checkpoint(app.registry, WaveletLossyCodec{params}, 1);

  TwoFieldApp other;
  (void)restore_checkpoint(data, other.registry);
  const auto terr = relative_error(app.temp.values(), other.temp.values());
  EXPECT_GT(terr.mean_rel, 0.0);  // lossy
  EXPECT_LT(terr.mean_rel_percent(), 1.0);
}

TEST(Checkpoint, CompressionRateReported) {
  TwoFieldApp app;
  CheckpointInfo info;
  (void)serialize_checkpoint(app.registry, WaveletLossyCodec{}, 1, &info);
  EXPECT_GT(info.compression_rate_percent(), 0.0);
  EXPECT_LT(info.compression_rate_percent(), 100.0);

  CheckpointInfo raw_info;
  (void)serialize_checkpoint(app.registry, NullCodec{}, 1, &raw_info);
  EXPECT_GE(raw_info.compression_rate_percent(), 100.0);
}

TEST(Checkpoint, FileRoundTrip) {
  TempDir dir;
  TwoFieldApp app;
  const auto path = dir.path() / "state.wck";
  const CheckpointInfo winfo = write_checkpoint(path, app.registry, GzipCodec{}, 42);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(winfo.stored_bytes, 0u);

  TwoFieldApp other;
  other.temp = NdArray<double>(app.temp.shape(), 0.0);
  const CheckpointInfo rinfo = read_checkpoint(path, other.registry);
  EXPECT_EQ(rinfo.step, 42u);
  EXPECT_EQ(other.temp, app.temp);
  EXPECT_EQ(other.pressure, app.pressure);
}

TEST(Checkpoint, MissingFileThrowsIoError) {
  TwoFieldApp app;
  EXPECT_THROW((void)read_checkpoint("/nonexistent/dir/x.wck", app.registry), IoError);
  EXPECT_THROW((void)write_checkpoint("/nonexistent/dir/x.wck", app.registry, NullCodec{}, 0),
               IoError);
}

TEST(Checkpoint, UnregisteredFieldRejected) {
  TwoFieldApp app;
  const Bytes data = serialize_checkpoint(app.registry, NullCodec{}, 1);
  CheckpointRegistry partial;
  NdArray<double> temp_only(app.temp.shape());
  partial.add("temperature", &temp_only);
  EXPECT_THROW((void)restore_checkpoint(data, partial), FormatError);
}

TEST(Checkpoint, ShapeMismatchRejected) {
  TwoFieldApp app;
  const Bytes data = serialize_checkpoint(app.registry, NullCodec{}, 1);
  CheckpointRegistry reg;
  NdArray<double> temp(Shape{3, 3});  // wrong shape, nonempty
  NdArray<double> pressure(app.pressure.shape());
  reg.add("temperature", &temp);
  reg.add("pressure", &pressure);
  EXPECT_THROW((void)restore_checkpoint(data, reg), FormatError);
}

TEST(Checkpoint, CorruptionDetectedAnywhere) {
  TwoFieldApp app;
  const Bytes data = serialize_checkpoint(app.registry, GzipCodec{}, 1);
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 24; ++trial) {
    Bytes bad = data;
    bad[rng.bounded(bad.size())] ^= std::byte{0x08};
    TwoFieldApp other;
    EXPECT_THROW((void)restore_checkpoint(bad, other.registry), Error) << "trial " << trial;
  }
}

TEST(Checkpoint, TruncationDetected) {
  TwoFieldApp app;
  const Bytes data = serialize_checkpoint(app.registry, NullCodec{}, 1);
  for (const double frac : {0.1, 0.5, 0.95}) {
    Bytes cut(data.begin(),
              data.begin() + static_cast<std::ptrdiff_t>(static_cast<double>(data.size()) * frac));
    TwoFieldApp other;
    EXPECT_THROW((void)restore_checkpoint(cut, other.registry), Error);
  }
}

TEST(Checkpoint, MixedCodecsAcrossCheckpointsDecodable) {
  // A restart may read checkpoints written with different codecs over
  // the application's lifetime; the codec name travels with the file.
  TwoFieldApp app;
  const Bytes lossless = serialize_checkpoint(app.registry, GzipCodec{}, 1);
  const Bytes lossy = serialize_checkpoint(app.registry, WaveletLossyCodec{}, 2);
  TwoFieldApp other;
  EXPECT_EQ(restore_checkpoint(lossless, other.registry).step, 1u);
  EXPECT_EQ(restore_checkpoint(lossy, other.registry).step, 2u);
}

}  // namespace
}  // namespace wck
