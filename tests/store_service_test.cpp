// Tests for the multi-tenant store core: CheckpointManager byte quotas
// at their edges (exact hit, mid-batch exceed, accounting across keep-K
// rotation and scrub quarantine) and CheckpointService policy
// (tenant validation, typed quota rejection, admission control, put
// coalescing) — all without a socket in sight.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "ckpt/codec.hpp"
#include "ckpt/manager.hpp"
#include "core/synthetic.hpp"
#include "io/io_backend.hpp"
#include "server/service.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("wck_store_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

void corrupt_file(const std::filesystem::path& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

RetryPolicy instant_retry() {
  RetryPolicy retry;
  retry.sleep_between_attempts = false;
  return retry;
}

/// One generation's on-disk size for the canonical single-field
/// registry under NullCodec — deterministic, so quota edges can be hit
/// exactly.
std::uint64_t generation_bytes(const NullCodec& codec) {
  TempDir probe;
  CheckpointManager::Options opts;
  opts.retry = instant_retry();
  CheckpointManager mgr(probe.path(), codec, opts);
  NdArray<double> state = make_smooth_field(Shape{16, 16}, 1);
  CheckpointRegistry reg;
  reg.add("state", &state);
  (void)mgr.write(reg, 1);
  return mgr.total_stored_bytes();
}

std::size_t checkpoint_files_in(const std::filesystem::path& dir) {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt.", 0) == 0 && name.find("quarantined") == std::string::npos) ++n;
  }
  return n;
}

// ----------------------------------------------- manager crash sweep

TEST(ManagerRecovery, StaleTmpFilesSweptOnOpen) {
  const NullCodec codec;
  TempDir dir;
  CheckpointManager::Options opts;
  opts.retry = instant_retry();
  NdArray<double> state = make_smooth_field(Shape{16, 16}, 1);
  CheckpointRegistry reg;
  reg.add("state", &state);
  {
    CheckpointManager mgr(dir.path(), codec, opts);
    (void)mgr.write(reg, 1);
    EXPECT_EQ(mgr.tmp_files_swept(), 0u);  // clean commits leave no debris
  }

  // A process SIGKILL'd mid-commit leaves atomic_write_durable's staging
  // files behind; the next open must sweep them.
  { std::ofstream f(dir.path() / "ckpt.2.wck.tmp.1234.7"); f << "half a checkpoint"; }
  { std::ofstream f(dir.path() / "MANIFEST.tmp.1234.8"); f << "half a manifest"; }

  CheckpointManager mgr(dir.path(), codec, opts);
  EXPECT_EQ(mgr.tmp_files_swept(), 2u);
  EXPECT_FALSE(std::filesystem::exists(dir.path() / "ckpt.2.wck.tmp.1234.7"));
  EXPECT_FALSE(std::filesystem::exists(dir.path() / "MANIFEST.tmp.1234.8"));
  // The committed generation is untouched by the sweep.
  ASSERT_EQ(mgr.generations().size(), 1u);
  EXPECT_EQ(mgr.generations().front().step, 1u);
}

// ------------------------------------------------ manager quota edges

TEST(ManagerQuota, ExactHitAcceptedOneGenerationMoreRejected) {
  const NullCodec codec;
  const std::uint64_t gen = generation_bytes(codec);
  NdArray<double> state = make_smooth_field(Shape{16, 16}, 1);
  CheckpointRegistry reg;
  reg.add("state", &state);

  TempDir dir;
  CheckpointManager::Options opts;
  opts.keep_generations = 3;
  opts.retry = instant_retry();
  opts.max_total_bytes = gen;  // room for exactly one generation
  CheckpointManager mgr(dir.path(), codec, opts);

  (void)mgr.write(reg, 1);  // exact quota hit: allowed
  EXPECT_EQ(mgr.total_stored_bytes(), gen);

  EXPECT_THROW((void)mgr.write(reg, 2), QuotaExceededError);
  // The rejection left the store untouched: same generations, same
  // bytes, no stray file.
  EXPECT_EQ(mgr.generations().size(), 1u);
  EXPECT_EQ(mgr.total_stored_bytes(), gen);
  EXPECT_EQ(checkpoint_files_in(dir.path()), 1u);
}

TEST(ManagerQuota, OneByteShortRejectsTheFirstWrite) {
  const NullCodec codec;
  const std::uint64_t gen = generation_bytes(codec);
  NdArray<double> state = make_smooth_field(Shape{16, 16}, 1);
  CheckpointRegistry reg;
  reg.add("state", &state);

  TempDir dir;
  CheckpointManager::Options opts;
  opts.retry = instant_retry();
  opts.max_total_bytes = gen - 1;
  CheckpointManager mgr(dir.path(), codec, opts);

  EXPECT_THROW((void)mgr.write(reg, 1), QuotaExceededError);
  EXPECT_TRUE(mgr.generations().empty());
  EXPECT_EQ(checkpoint_files_in(dir.path()), 0u);
}

TEST(ManagerQuota, AccountingFollowsKeepKRotation) {
  const NullCodec codec;
  const std::uint64_t gen = generation_bytes(codec);
  NdArray<double> state = make_smooth_field(Shape{16, 16}, 1);
  CheckpointRegistry reg;
  reg.add("state", &state);

  TempDir dir;
  CheckpointManager::Options opts;
  opts.keep_generations = 2;
  opts.retry = instant_retry();
  opts.max_total_bytes = 2 * gen;
  CheckpointManager mgr(dir.path(), codec, opts);

  // Rotation returns the evicted generation's bytes to the budget, so a
  // quota of exactly keep_generations * size admits writes forever.
  for (std::uint64_t step = 1; step <= 6; ++step) {
    (void)mgr.write(reg, step);
    EXPECT_LE(mgr.generations().size(), 2u);
    EXPECT_LE(mgr.total_stored_bytes(), 2 * gen);
  }
  const auto gens = mgr.generations();
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_EQ(gens.front().step, 6u);
}

TEST(ManagerQuota, MidBatchExceedLeavesStoreUntouched) {
  const NullCodec codec;
  const std::uint64_t gen = generation_bytes(codec);

  // Two fields serialize to more than one field's quota: the combined
  // payload must be rejected up front, never half-committed.
  NdArray<double> a = make_smooth_field(Shape{16, 16}, 1);
  NdArray<double> b = make_smooth_field(Shape{16, 16}, 2);
  CheckpointRegistry both;
  both.add("state", &a);
  both.add("extra", &b);

  TempDir dir;
  CheckpointManager::Options opts;
  opts.retry = instant_retry();
  opts.max_total_bytes = gen + gen / 2;
  CheckpointManager mgr(dir.path(), codec, opts);

  EXPECT_THROW((void)mgr.write(both, 1), QuotaExceededError);
  EXPECT_TRUE(mgr.generations().empty());
  EXPECT_EQ(checkpoint_files_in(dir.path()), 0u);

  // The single-field payload fits the same budget.
  CheckpointRegistry single;
  single.add("state", &a);
  (void)mgr.write(single, 2);
  EXPECT_EQ(mgr.generations().size(), 1u);
}

TEST(ManagerQuota, ScrubQuarantineReturnsBytesToBudget) {
  const NullCodec codec;
  const std::uint64_t gen = generation_bytes(codec);
  NdArray<double> state = make_smooth_field(Shape{16, 16}, 1);
  CheckpointRegistry reg;
  reg.add("state", &state);

  TempDir dir;
  CheckpointManager::Options opts;
  opts.keep_generations = 4;  // > quota in generations: quota binds first
  opts.retry = instant_retry();
  opts.max_total_bytes = 3 * gen;
  CheckpointManager mgr(dir.path(), codec, opts);

  for (std::uint64_t step = 1; step <= 3; ++step) (void)mgr.write(reg, step);
  EXPECT_EQ(mgr.total_stored_bytes(), 3 * gen);
  EXPECT_THROW((void)mgr.write(reg, 4), QuotaExceededError);

  // Quarantining a corrupt generation must return its bytes.
  corrupt_file(dir.path() / "ckpt.2.wck", 40);
  const ScrubReport report = mgr.scrub();
  EXPECT_EQ(report.checked, 3u);
  EXPECT_EQ(report.corrupt, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_TRUE(std::filesystem::exists(report.quarantined.front()));
  EXPECT_EQ(mgr.total_stored_bytes(), 2 * gen);

  (void)mgr.write(reg, 4);  // fits again
  EXPECT_EQ(mgr.generations().size(), 3u);
  EXPECT_EQ(mgr.total_stored_bytes(), 3 * gen);
}

// -------------------------------------------------- service policies

server::CheckpointService::Options service_options(const std::filesystem::path& root) {
  server::CheckpointService::Options opts;
  opts.root = root;
  opts.keep_generations = 2;
  opts.retry = instant_retry();
  return opts;
}

net::PutRequest put_request(const std::string& tenant, std::uint64_t step) {
  const NdArray<double> field = make_smooth_field(Shape{12, 12}, step);
  net::PutRequest req;
  req.tenant = tenant;
  req.step = step;
  req.shape = field.shape();
  req.values.assign(field.values().begin(), field.values().end());
  return req;
}

TEST(StoreService, TenantNameValidation) {
  EXPECT_TRUE(server::valid_tenant_name("rank-03"));
  EXPECT_TRUE(server::valid_tenant_name("a"));
  EXPECT_TRUE(server::valid_tenant_name("x_9-z"));
  EXPECT_FALSE(server::valid_tenant_name(""));
  EXPECT_FALSE(server::valid_tenant_name("UPPER"));
  EXPECT_FALSE(server::valid_tenant_name("a/b"));
  EXPECT_FALSE(server::valid_tenant_name(".."));
  EXPECT_FALSE(server::valid_tenant_name("a.b"));
  EXPECT_FALSE(server::valid_tenant_name(std::string(65, 'a')));

  const NullCodec codec;
  TempDir dir;
  server::CheckpointService service(codec, service_options(dir.path()));
  EXPECT_THROW((void)service.put(put_request("../escape", 1)), InvalidArgumentError);
  EXPECT_THROW((void)service.get(net::GetRequest{"No Such"}), InvalidArgumentError);
}

TEST(StoreService, PutGetStatRoundTrip) {
  const NullCodec codec;
  TempDir dir;
  server::CheckpointService service(codec, service_options(dir.path()));

  const net::PutOkResponse ok1 = service.put(put_request("alpha", 1));
  EXPECT_EQ(ok1.step, 1u);
  EXPECT_GT(ok1.stored_bytes, 0u);
  const net::PutOkResponse ok2 = service.put(put_request("alpha", 2));
  EXPECT_EQ(ok2.generations, 2u);
  (void)service.put(put_request("beta", 5));

  const net::GetOkResponse got = service.get(net::GetRequest{"alpha"});
  EXPECT_EQ(got.step, 2u);
  EXPECT_EQ(got.source, static_cast<std::uint8_t>(RestoreSource::kPrimary));
  EXPECT_EQ(got.values, put_request("alpha", 2).values);  // NullCodec: bit-exact

  const net::StatOkResponse one = service.stat(net::StatRequest{"alpha"});
  ASSERT_EQ(one.stats.size(), 1u);
  EXPECT_EQ(one.tenants, 2u);
  EXPECT_EQ(one.stats[0].generations, 2u);
  EXPECT_EQ(one.stats[0].newest_step, 2u);
  EXPECT_EQ(one.stats[0].stored_bytes, ok2.total_bytes);

  const net::StatOkResponse all = service.stat(net::StatRequest{});
  ASSERT_EQ(all.stats.size(), 2u);  // map order: alpha, beta
  EXPECT_EQ(all.stats[0].name, "alpha");
  EXPECT_EQ(all.stats[1].name, "beta");

  EXPECT_THROW((void)service.get(net::GetRequest{"nosuch"}), NotFoundError);
  EXPECT_THROW((void)service.stat(net::StatRequest{"nosuch"}), NotFoundError);
}

TEST(StoreService, QuotaRejectionIsTypedAndLeavesTenantIntact) {
  const NullCodec codec;
  TempDir dir;

  std::uint64_t gen = 0;
  {
    server::CheckpointService probe(codec, service_options(dir.path() / "probe"));
    gen = probe.put(put_request("t", 1)).stored_bytes;
  }

  auto opts = service_options(dir.path() / "real");
  opts.tenant_quota_bytes = gen;  // one generation exactly
  server::CheckpointService service(codec, opts);

  (void)service.put(put_request("t", 1));
  EXPECT_THROW((void)service.put(put_request("t", 2)), QuotaExceededError);

  const net::StatOkResponse stat = service.stat(net::StatRequest{"t"});
  EXPECT_EQ(stat.stats[0].generations, 1u);
  EXPECT_EQ(stat.stats[0].stored_bytes, gen);
  EXPECT_EQ(stat.stats[0].quota_bytes, gen);
  const net::GetOkResponse got = service.get(net::GetRequest{"t"});
  EXPECT_EQ(got.step, 1u);  // the rejected put never replaced anything
}

TEST(StoreService, RecoveryRebuildsTenantsFromDisk) {
  const NullCodec codec;
  TempDir dir;
  const std::filesystem::path root = dir.path() / "store";
  std::uint64_t alpha_bytes = 0;
  {
    server::CheckpointService service(codec, service_options(root));
    // A fresh root recovers nothing.
    EXPECT_EQ(service.recovery().tenants, 0u);
    (void)service.put(put_request("alpha", 1));
    alpha_bytes = service.put(put_request("alpha", 2)).total_bytes;
    (void)service.put(put_request("beta", 5));
    (void)service.put(put_request("beta", 6));
  }  // "crash": the service is gone, only the disk remains

  // Crash debris, one unreadable generation, and a directory no put
  // could have created.
  { std::ofstream f(root / "alpha" / "ckpt.3.wck.tmp.99.1"); f << "torn"; }
  corrupt_file(root / "beta" / "ckpt.6.wck", 40);
  std::filesystem::create_directories(root / "Not A Tenant");

  server::CheckpointService service(codec, service_options(root));
  const server::RecoveryReport& rec = service.recovery();
  EXPECT_EQ(rec.tenants, 2u);       // alpha, beta; the invalid name was ignored
  EXPECT_EQ(rec.generations, 3u);   // alpha's two + beta's surviving one
  EXPECT_EQ(rec.tmp_swept, 1u);
  EXPECT_EQ(rec.quarantined, 1u);   // beta's corrupted step 6

  // The namespaces are live before any put: restores and accounting
  // come straight from the rebuilt ledgers.
  const net::GetOkResponse alpha = service.get(net::GetRequest{"alpha"});
  EXPECT_EQ(alpha.step, 2u);
  EXPECT_EQ(alpha.values, put_request("alpha", 2).values);
  const net::GetOkResponse beta = service.get(net::GetRequest{"beta"});
  EXPECT_EQ(beta.step, 5u);  // step 6 was quarantined, step 5 restores

  const net::StatOkResponse stat = service.stat(net::StatRequest{});
  EXPECT_EQ(stat.tenants, 2u);
  ASSERT_EQ(stat.stats.size(), 2u);
  EXPECT_EQ(stat.stats[0].name, "alpha");
  EXPECT_EQ(stat.stats[0].generations, 2u);
  EXPECT_EQ(stat.stats[0].newest_step, 2u);
  EXPECT_EQ(stat.stats[0].stored_bytes, alpha_bytes);  // ledger rebuilt exactly
  EXPECT_EQ(stat.stats[1].generations, 1u);

  // The recovered store accepts new work as if it never went down.
  (void)service.put(put_request("alpha", 3));
  EXPECT_EQ(service.get(net::GetRequest{"alpha"}).step, 3u);
}

TEST(StoreService, RecoveredQuotaLedgerStillBinds) {
  const NullCodec codec;
  TempDir dir;

  std::uint64_t gen = 0;
  {
    server::CheckpointService probe(codec, service_options(dir.path() / "probe"));
    gen = probe.put(put_request("t", 1)).stored_bytes;
  }

  auto opts = service_options(dir.path() / "real");
  opts.tenant_quota_bytes = 2 * gen;
  {
    server::CheckpointService service(codec, opts);
    (void)service.put(put_request("t", 1));
    (void)service.put(put_request("t", 2));
  }

  // After restart the rebuilt ledger must enforce the same budget: the
  // quota was full before the crash, so it is full after it.
  server::CheckpointService service(codec, opts);
  EXPECT_EQ(service.recovery().generations, 2u);
  auto big = put_request("t", 3);
  big.shape = Shape{24, 24};  // larger than one rotation slot frees
  const NdArray<double> field = make_smooth_field(big.shape, 3);
  big.values.assign(field.values().begin(), field.values().end());
  EXPECT_THROW((void)service.put(big), QuotaExceededError);
  EXPECT_EQ(service.stat(net::StatRequest{"t"}).stats[0].stored_bytes, 2 * gen);
}

TEST(StoreService, DuplicatePutRequestIdReplaysWithoutRecommit) {
  const NullCodec codec;
  TempDir dir;
  server::CheckpointService service(codec, service_options(dir.path()));

  net::PutRequest req = put_request("t", 1);
  req.request_id = 42;
  const net::PutOkResponse first = service.put(req);
  EXPECT_FALSE(first.deduplicated);
  EXPECT_EQ(first.request_id, 42u);

  // The same bytes again — a client retry whose first response was
  // lost. The original outcome is replayed, nothing is re-committed.
  const net::PutOkResponse replay = service.put(req);
  EXPECT_TRUE(replay.deduplicated);
  EXPECT_EQ(replay.step, first.step);
  EXPECT_EQ(replay.generations, first.generations);
  EXPECT_EQ(replay.stored_bytes, first.stored_bytes);
  EXPECT_EQ(replay.total_bytes, first.total_bytes);
  const net::StatOkResponse stat = service.stat(net::StatRequest{"t"});
  EXPECT_EQ(stat.stats[0].generations, 1u);
  EXPECT_EQ(stat.stats[0].stored_bytes, first.stored_bytes);

  // A different request_id on the same step is a different client's
  // write, not a replay: it commits.
  net::PutRequest other = put_request("t", 1);
  other.request_id = 43;
  const net::PutOkResponse fresh = service.put(other);
  EXPECT_FALSE(fresh.deduplicated);
  EXPECT_EQ(fresh.request_id, 43u);

  // request_id 0 is the "no token" sentinel (pre-retry clients): never
  // remembered, never deduplicated.
  net::PutRequest untagged = put_request("t", 2);
  EXPECT_FALSE(service.put(untagged).deduplicated);
  EXPECT_FALSE(service.put(untagged).deduplicated);
}

/// Delegates to the POSIX backend, but the next `gate_next_writes(n)`
/// write_file calls block until release_all() — a deterministic way to
/// hold a request in flight.
class GatedBackend final : public IoBackend {
 public:
  void gate_next_writes(int n) {
    const std::lock_guard<std::mutex> lk(mu_);
    gated_ = n;
  }
  void wait_until_blocked(int n) {
    std::unique_lock<std::mutex> lk(mu_);
    entered_cv_.wait(lk, [&] { return blocked_ >= n; });
  }
  void release_all() {
    const std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

  Bytes read_file(const std::filesystem::path& path) override {
    return posix_backend().read_file(path);
  }
  void write_file(const std::filesystem::path& path,
                  std::span<const std::byte> data) override {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (gated_ > 0 && !released_) {
        --gated_;
        ++blocked_;
        entered_cv_.notify_all();
        release_cv_.wait(lk, [&] { return released_; });
      }
    }
    posix_backend().write_file(path, data);
  }
  void fsync_file(const std::filesystem::path& path) override {
    posix_backend().fsync_file(path);
  }
  void fsync_dir(const std::filesystem::path& dir) override {
    posix_backend().fsync_dir(dir);
  }
  void rename_file(const std::filesystem::path& from,
                   const std::filesystem::path& to) override {
    posix_backend().rename_file(from, to);
  }
  bool remove_file(const std::filesystem::path& path) override {
    return posix_backend().remove_file(path);
  }
  bool exists(const std::filesystem::path& path) override {
    return posix_backend().exists(path);
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  int gated_ = 0;
  int blocked_ = 0;
  bool released_ = false;
};

TEST(StoreService, AdmissionRejectNewestWhileSlotsAreHeld) {
  const NullCodec codec;
  TempDir dir;
  GatedBackend io;
  auto opts = service_options(dir.path());
  opts.max_inflight = 1;
  opts.admission = server::AdmissionPolicy::kRejectNewest;
  server::CheckpointService service(codec, opts, &io);

  io.gate_next_writes(1);
  std::thread holder([&] { (void)service.put(put_request("a", 1)); });
  io.wait_until_blocked(1);  // the put owns the only admission slot

  EXPECT_THROW((void)service.stat(net::StatRequest{}), BusyError);
  EXPECT_THROW((void)service.put(put_request("b", 1)), BusyError);

  io.release_all();
  holder.join();
  // Slot released: requests are admitted again.
  EXPECT_EQ(service.stat(net::StatRequest{"a"}).stats[0].generations, 1u);
}

TEST(StoreService, ConcurrentPutsOnOneTenantCoalesceWithTypedOutcomes) {
  const NullCodec codec;
  TempDir dir;
  GatedBackend io;
  server::CheckpointService service(codec, service_options(dir.path()), &io);

  io.gate_next_writes(1);
  std::atomic<int> ok{0};
  std::atomic<int> busy{0};
  const auto try_put = [&](std::uint64_t step) {
    try {
      (void)service.put(put_request("shared", step));
      ++ok;
    } catch (const BusyError&) {
      ++busy;  // superseded by a newer snapshot — loud, typed
    }
  };

  std::thread t1(try_put, 1);
  io.wait_until_blocked(1);  // step-1 put is mid-write
  std::thread t2(try_put, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread t3(try_put, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  io.release_all();
  t1.join();
  t2.join();
  t3.join();

  // The in-flight put and the final parked put commit; at most one
  // waiter was superseded. Nothing is ever silently dropped.
  EXPECT_EQ(ok.load() + busy.load(), 3);
  EXPECT_GE(ok.load(), 2);
  EXPECT_LE(busy.load(), 1);

  const net::GetOkResponse got = service.get(net::GetRequest{"shared"});
  EXPECT_EQ(got.values, put_request("shared", got.step).values);
}

// ------------------------------------------------------ tenant health

TEST(StoreService, StatReportsScrubHealthAfterRecovery) {
  const NullCodec codec;
  TempDir dir;
  const std::filesystem::path root = dir.path() / "store";
  {
    server::CheckpointService service(codec, service_options(root));
    (void)service.put(put_request("sick", 1));
    (void)service.put(put_request("sick", 2));
    (void)service.put(put_request("well", 1));
  }
  corrupt_file(root / "sick" / "ckpt.2.wck", 40);

  server::CheckpointService service(codec, service_options(root));
  const net::StatOkResponse stat = service.stat(net::StatRequest{});
  ASSERT_EQ(stat.stats.size(), 2u);
  EXPECT_EQ(stat.stats[0].name, "sick");
  EXPECT_EQ(stat.stats[0].quarantined, 1u);
  // Both tenants were scrubbed by recovery, so the age is a real
  // (small) number, not the never-scrubbed sentinel.
  EXPECT_NE(stat.stats[0].scrub_age_ms, net::TenantStat::kNeverScrubbed);
  EXPECT_LT(stat.stats[0].scrub_age_ms, 60'000u);
  EXPECT_EQ(stat.stats[1].name, "well");
  EXPECT_EQ(stat.stats[1].quarantined, 0u);
  EXPECT_NE(stat.stats[1].scrub_age_ms, net::TenantStat::kNeverScrubbed);

  // A tenant born from a put (no recovery scrub) reports the sentinel.
  (void)service.put(put_request("fresh", 1));
  const net::StatOkResponse fresh = service.stat(net::StatRequest{"fresh"});
  EXPECT_EQ(fresh.stats[0].scrub_age_ms, net::TenantStat::kNeverScrubbed);
}

TEST(StoreService, StatReportsLastErrorKind) {
  const NullCodec codec;
  TempDir dir;

  std::uint64_t gen = 0;
  {
    server::CheckpointService probe(codec, service_options(dir.path() / "probe"));
    gen = probe.put(put_request("t", 1)).stored_bytes;
  }

  auto opts = service_options(dir.path() / "real");
  opts.tenant_quota_bytes = gen;
  server::CheckpointService service(codec, opts);

  (void)service.put(put_request("t", 1));
  EXPECT_TRUE(service.stat(net::StatRequest{"t"}).stats[0].last_error.empty());

  EXPECT_THROW((void)service.put(put_request("t", 2)), QuotaExceededError);
  EXPECT_EQ(service.stat(net::StatRequest{"t"}).stats[0].last_error, "quota-exceeded");
}

TEST(StoreService, PerTenantCountersTrackOutcomes) {
  telemetry::set_enabled(true);
  auto& registry = telemetry::MetricsRegistry::global();
  const NullCodec codec;
  TempDir dir;

  std::uint64_t gen = 0;
  {
    server::CheckpointService probe(codec, service_options(dir.path() / "probe"));
    gen = probe.put(put_request("t", 1)).stored_bytes;
  }

  auto opts = service_options(dir.path() / "real");
  opts.tenant_quota_bytes = 2 * gen;
  server::CheckpointService service(codec, opts);

  // Unique tenant name per run keeps this independent of counter state
  // left behind by other tests in the same process.
  const std::string tenant = "ctr" + std::to_string(::getpid() % 1000);
  const std::string prefix = "server.tenant." + tenant + ".";

  net::PutRequest first = put_request(tenant, 1);
  first.request_id = 77;
  (void)service.put(first);
  EXPECT_EQ(registry.counter(prefix + "puts").value(), 1u);
  // Quota gauge: one of two permitted generations is used.
  EXPECT_NEAR(registry.gauge(prefix + "quota_utilization").value(), 0.5, 0.01);

  // Replaying the same request_id is a dedup, not a second put.
  (void)service.put(first);
  EXPECT_EQ(registry.counter(prefix + "dedup_replays").value(), 1u);
  EXPECT_EQ(registry.counter(prefix + "puts").value(), 1u);

  (void)service.get(net::GetRequest{tenant});
  EXPECT_EQ(registry.counter(prefix + "gets").value(), 1u);

  (void)service.put(put_request(tenant, 2));
  auto big = put_request(tenant, 3);
  big.shape = Shape{24, 24};  // larger than one rotation slot frees
  const NdArray<double> field = make_smooth_field(big.shape, 3);
  big.values.assign(field.values().begin(), field.values().end());
  EXPECT_THROW((void)service.put(big), QuotaExceededError);
  EXPECT_EQ(registry.counter(prefix + "rejects").value(), 1u);
}

}  // namespace
}  // namespace wck
