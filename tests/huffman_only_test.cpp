// Tests for the order-0 Huffman entropy coder (fast-mode alternative to
// deflate, paper Sec. IV-D future work).
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "deflate/huffman_only.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

Bytes make_bytes(const std::string& s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

TEST(HuffmanOnly, RoundTripBasicCases) {
  for (const auto& data :
       {Bytes{}, make_bytes("a"), make_bytes("hello world"),
        make_bytes(std::string(100000, 'z'))}) {
    EXPECT_EQ(huffman_only_decompress(huffman_only_compress(data)), data);
  }
}

TEST(HuffmanOnly, RoundTripRandomBytes) {
  Xoshiro256 rng(1);
  Bytes data(50000);
  for (auto& b : data) b = static_cast<std::byte>(rng.bounded(256));
  EXPECT_EQ(huffman_only_decompress(huffman_only_compress(data)), data);
}

TEST(HuffmanOnly, SkewedDistributionCompresses) {
  // Index-stream-like data: a few dominant byte values.
  Xoshiro256 rng(2);
  Bytes data(100000);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.uniform() < 0.9 ? rng.bounded(4) : rng.bounded(256));
  }
  const Bytes comp = huffman_only_compress(data);
  EXPECT_LT(comp.size(), data.size() / 2);
  EXPECT_EQ(huffman_only_decompress(comp), data);
}

TEST(HuffmanOnly, IncompressibleDataStoredWithoutBlowup) {
  Xoshiro256 rng(3);
  Bytes data(10000);
  for (auto& b : data) b = static_cast<std::byte>(rng.bounded(256));
  const Bytes comp = huffman_only_compress(data);
  EXPECT_LE(comp.size(), data.size() + 16);
}

TEST(HuffmanOnly, AllByteValuesRoundTrip) {
  Bytes data;
  for (int rep = 0; rep < 5; ++rep) {
    for (int v = 0; v < 256; ++v) data.push_back(static_cast<std::byte>(v));
  }
  EXPECT_EQ(huffman_only_decompress(huffman_only_compress(data)), data);
}

TEST(HuffmanOnly, MalformedInputRejected) {
  EXPECT_THROW((void)huffman_only_decompress({}), FormatError);
  Bytes junk(40, std::byte{0x77});
  EXPECT_THROW((void)huffman_only_decompress(junk), FormatError);

  Xoshiro256 rng(4);
  Bytes data(5000);
  for (auto& b : data) b = static_cast<std::byte>(rng.bounded(8));
  Bytes comp = huffman_only_compress(data);
  comp.resize(comp.size() / 2);  // truncate mid-bitstream
  EXPECT_THROW((void)huffman_only_decompress(comp), FormatError);
}

}  // namespace
}  // namespace wck
