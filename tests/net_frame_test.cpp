// Tests for the store-service wire layer (src/net): frame encoding and
// the one-shot/incremental decoders, and the protocol message codecs.
// The contract under test is the same one the fuzz driver enforces at
// scale: malformed bytes produce typed errors, never misparses.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <variant>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "util/error.hpp"

namespace wck::net {
namespace {

Bytes sample_payload() {
  Bytes payload(37);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 7 + 3);
  }
  return payload;
}

TEST(Frame, RoundTripPreservesTypeAndPayload) {
  const Bytes payload = sample_payload();
  const Bytes wire = encode_frame(0x2A, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());

  const Frame frame = decode_frame(wire);
  EXPECT_EQ(frame.type, 0x2A);
  EXPECT_EQ(frame.payload, payload);
}

TEST(Frame, EmptyPayloadRoundTrips) {
  const Bytes wire = encode_frame(0x01, Bytes{});
  EXPECT_EQ(wire.size(), kFrameHeaderBytes);
  const Frame frame = decode_frame(wire);
  EXPECT_EQ(frame.type, 0x01);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Frame, RejectsBadMagicVersionAndReserved) {
  const Bytes good = encode_frame(0x02, sample_payload());

  Bytes bad_magic = good;
  bad_magic[0] = static_cast<std::byte>(0x00);
  EXPECT_THROW((void)decode_frame(bad_magic), FormatError);

  Bytes bad_version = good;
  bad_version[4] = static_cast<std::byte>(kFrameVersion + 1);
  EXPECT_THROW((void)decode_frame(bad_version), FormatError);

  Bytes bad_reserved = good;
  bad_reserved[6] = static_cast<std::byte>(0x01);
  EXPECT_THROW((void)decode_frame(bad_reserved), FormatError);
}

TEST(Frame, RejectsTruncationAndTrailingBytes) {
  const Bytes good = encode_frame(0x02, sample_payload());

  for (const std::size_t keep : {std::size_t{0}, std::size_t{7}, kFrameHeaderBytes,
                                 good.size() - 1}) {
    Bytes truncated(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)decode_frame(truncated), FormatError) << "keep=" << keep;
  }

  Bytes trailing = good;
  trailing.push_back(static_cast<std::byte>(0xFF));
  EXPECT_THROW((void)decode_frame(trailing), FormatError);
}

TEST(Frame, CrcMismatchIsCorruptDataNotMisparse) {
  Bytes wire = encode_frame(0x02, sample_payload());
  wire[kFrameHeaderBytes + 5] ^= static_cast<std::byte>(0x10);  // flip a payload bit
  EXPECT_THROW((void)decode_frame(wire), CorruptDataError);

  wire = encode_frame(0x02, sample_payload());
  wire[12] ^= static_cast<std::byte>(0x01);  // flip a CRC-field bit
  EXPECT_THROW((void)decode_frame(wire), CorruptDataError);
}

TEST(Frame, HostileLengthFieldIsRejectedFromHeaderAlone) {
  Bytes wire = encode_frame(0x02, sample_payload());
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(wire.data() + 8, &huge, sizeof huge);
  // One-shot decoder: typed error, no attempt to honor the length.
  EXPECT_THROW((void)decode_frame(wire), FormatError);
  // Incremental decoder: rejected as soon as the 16-byte header is
  // visible — it must not wait for (or allocate) 4 GiB.
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(std::span<const std::byte>(wire).first(kFrameHeaderBytes)),
               FormatError);
}

TEST(Frame, EncodeRejectsOversizedPayload) {
  // Can't materialize 256 MiB in a unit test; exercise the guard via a
  // fake span with an in-range pointer and an out-of-range length. The
  // encoder must throw before reading a single payload byte.
  const Bytes tiny(1);
  const std::span<const std::byte> oversized(tiny.data(), kMaxFramePayload + 1);
  EXPECT_THROW((void)encode_frame(0x02, oversized), InvalidArgumentError);
}

TEST(FrameDecoder, ReassemblesFramesFedOneByteAtATime) {
  const Bytes a = encode_frame(0x11, sample_payload());
  const Bytes b = encode_frame(0x12, Bytes{});
  Bytes stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const std::byte byte : stream) {
    decoder.feed(std::span<const std::byte>(&byte, 1));
    while (std::optional<Frame> f = decoder.next()) frames.push_back(*std::move(f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, 0x11);
  EXPECT_EQ(frames[0].payload, sample_payload());
  EXPECT_EQ(frames[1].type, 0x12);
  EXPECT_TRUE(frames[1].payload.empty());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoder, TwoFramesInOneFeedBothComeOut) {
  const Bytes a = encode_frame(0x21, Bytes(3, std::byte{0x5A}));
  const Bytes b = encode_frame(0x22, Bytes(5, std::byte{0xA5}));
  Bytes stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  FrameDecoder decoder;
  decoder.feed(stream);
  const std::optional<Frame> f1 = decoder.next();
  const std::optional<Frame> f2 = decoder.next();
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f1->type, 0x21);
  EXPECT_EQ(f2->type, 0x22);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameDecoder, PoisonedAfterBadHeaderStaysPoisoned) {
  FrameDecoder decoder;
  Bytes bad = encode_frame(0x01, Bytes{});
  bad[0] = static_cast<std::byte>(0x00);
  EXPECT_THROW(decoder.feed(bad), FormatError);
  // A subsequent valid frame must not resynchronize the stream.
  EXPECT_THROW(decoder.feed(encode_frame(0x01, Bytes{})), FormatError);
}

TEST(FrameDecoder, PoisonedAfterCrcMismatch) {
  FrameDecoder decoder;
  Bytes bad = encode_frame(0x02, sample_payload());
  bad[kFrameHeaderBytes] ^= static_cast<std::byte>(0x01);
  decoder.feed(bad);  // header itself is valid
  EXPECT_THROW((void)decoder.next(), CorruptDataError);
  EXPECT_THROW(decoder.feed(encode_frame(0x01, Bytes{})), FormatError);
}

// ------------------------------------------------------------ messages

template <typename T>
T round_trip(MessageType type, const T& msg) {
  Frame frame;
  frame.type = static_cast<std::uint8_t>(type);
  frame.payload = encode(msg);
  AnyMessage decoded = decode_message(frame);
  EXPECT_TRUE(std::holds_alternative<T>(decoded));
  return std::get<T>(std::move(decoded));
}

TEST(Protocol, PutRequestRoundTrip) {
  PutRequest msg;
  msg.tenant = "rank-03";
  msg.step = 1234567890123ull;
  msg.shape = Shape{5, 7};
  msg.values.resize(35);
  for (std::size_t i = 0; i < msg.values.size(); ++i) {
    msg.values[i] = 0.25 * static_cast<double>(i) - 3.5;
  }
  const PutRequest out = round_trip(MessageType::kPut, msg);
  EXPECT_EQ(out.tenant, msg.tenant);
  EXPECT_EQ(out.step, msg.step);
  EXPECT_EQ(out.shape, msg.shape);
  EXPECT_EQ(out.values, msg.values);
}

TEST(Protocol, GetOkResponseRoundTrip) {
  GetOkResponse msg;
  msg.step = 99;
  msg.source = 2;
  msg.shape = Shape{2, 3, 4};
  msg.values.assign(24, -1.0);
  const GetOkResponse out = round_trip(MessageType::kGetOk, msg);
  EXPECT_EQ(out.step, msg.step);
  EXPECT_EQ(out.source, msg.source);
  EXPECT_EQ(out.shape, msg.shape);
  EXPECT_EQ(out.values, msg.values);
}

TEST(Protocol, StatOkResponseRoundTrip) {
  StatOkResponse msg;
  msg.tenants = 2;
  msg.stats.push_back({"alpha", 3, 3000, 10000, 17, 0, TenantStat::kNeverScrubbed, ""});
  msg.stats.push_back({"beta", 0, 0, 0, 0, 0, TenantStat::kNeverScrubbed, ""});
  const StatOkResponse out = round_trip(MessageType::kStatOk, msg);
  ASSERT_EQ(out.stats.size(), 2u);
  EXPECT_EQ(out.tenants, 2u);
  EXPECT_EQ(out.stats[0].name, "alpha");
  EXPECT_EQ(out.stats[0].stored_bytes, 3000u);
  EXPECT_EQ(out.stats[0].quota_bytes, 10000u);
  EXPECT_EQ(out.stats[1].name, "beta");
  EXPECT_EQ(out.stats[1].generations, 0u);
}

TEST(Protocol, EmptyBodiedMessagesRoundTrip) {
  (void)round_trip(MessageType::kPing, PingRequest{});
  (void)round_trip(MessageType::kShutdown, ShutdownRequest{});
  (void)round_trip(MessageType::kPong, PongResponse{});
  (void)round_trip(MessageType::kShutdownOk, ShutdownOkResponse{});
}

TEST(Protocol, ErrorResponseRoundTripAndNames) {
  ErrorResponse msg;
  msg.code = ErrorCode::kQuotaExceeded;
  msg.message = "tenant over budget";
  const ErrorResponse out = round_trip(MessageType::kError, msg);
  EXPECT_EQ(out.code, ErrorCode::kQuotaExceeded);
  EXPECT_EQ(out.message, msg.message);

  EXPECT_STREQ(error_code_name(ErrorCode::kBusy), "busy");
  EXPECT_STREQ(error_code_name(ErrorCode::kQuotaExceeded), "quota-exceeded");
}

TEST(Protocol, UnknownFrameTypeIsFormatError) {
  Frame frame;
  frame.type = 0x3F;  // unassigned request slot
  EXPECT_THROW((void)decode_message(frame), FormatError);
}

TEST(Protocol, TruncatedAndTrailingPayloadsAreFormatErrors) {
  PutRequest msg;
  msg.tenant = "t";
  msg.shape = Shape{4};
  msg.values.assign(4, 1.0);
  Frame frame;
  frame.type = static_cast<std::uint8_t>(MessageType::kPut);
  frame.payload = encode(msg);

  Frame truncated = frame;
  truncated.payload.pop_back();
  EXPECT_THROW((void)decode_message(truncated), FormatError);

  Frame trailing = frame;
  trailing.payload.push_back(std::byte{0});
  EXPECT_THROW((void)decode_message(trailing), FormatError);
}

// ------------------------------------------------- trace context wire

TEST(Protocol, TraceContextRoundTripsOnEveryRequest) {
  const TraceContext ctx{0xDEADBEEFCAFEF00Dull, 0x0123456789ABCDEFull,
                         0xFEDCBA9876543210ull};

  PingRequest ping;
  ping.trace = ctx;
  EXPECT_EQ(round_trip(MessageType::kPing, ping).trace, ctx);

  PutRequest put;
  put.tenant = "t";
  put.step = 5;
  put.shape = Shape{2};
  put.values = {1.0, 2.0};
  put.trace = ctx;
  EXPECT_EQ(round_trip(MessageType::kPut, put).trace, ctx);

  GetRequest get;
  get.tenant = "t";
  get.trace = ctx;
  EXPECT_EQ(round_trip(MessageType::kGet, get).trace, ctx);

  StatRequest stat;
  stat.trace = ctx;
  EXPECT_EQ(round_trip(MessageType::kStat, stat).trace, ctx);

  ShutdownRequest shutdown;
  shutdown.trace = ctx;
  EXPECT_EQ(round_trip(MessageType::kShutdown, shutdown).trace, ctx);
}

TEST(Protocol, ZeroTraceContextEncodesAsOldWireFormat) {
  // A zero context must be byte-identical to the pre-trace encoding:
  // that IS the backward-compatibility story (old servers reject
  // nothing, old clients parse every reply).
  GetRequest traced;
  traced.tenant = "rank-07";
  GetRequest untraced = traced;
  traced.trace = TraceContext{};  // explicit zero == absent
  EXPECT_EQ(encode(traced), encode(untraced));

  // Hand-build the old-format body (just the tenant string) and check
  // a new decoder accepts it with a zero context.
  ByteWriter w;
  w.str("rank-07");
  Frame frame;
  frame.type = static_cast<std::uint8_t>(MessageType::kGet);
  frame.payload = w.take();
  const AnyMessage decoded = decode_message(frame);
  const auto* get = std::get_if<GetRequest>(&decoded);
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->tenant, "rank-07");
  EXPECT_TRUE(get->trace.zero());
}

TEST(Protocol, TruncatedTraceContextIsFormatError) {
  GetRequest msg;
  msg.tenant = "t";
  msg.trace = TraceContext{1, 2, 3};
  const Bytes whole = encode(msg);

  // Every strictly-partial suffix length (1..23 of the 24 trace bytes)
  // must be rejected: it is neither "absent" nor a full context.
  for (std::size_t cut = 1; cut < 24; ++cut) {
    Frame frame;
    frame.type = static_cast<std::uint8_t>(MessageType::kGet);
    frame.payload = Bytes(whole.begin(), whole.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_message(frame), FormatError) << "cut=" << cut;
  }

  // Bytes after a complete suffix are trailing garbage, same as ever.
  Frame trailing;
  trailing.type = static_cast<std::uint8_t>(MessageType::kGet);
  trailing.payload = whole;
  trailing.payload.push_back(std::byte{0x7F});
  EXPECT_THROW((void)decode_message(trailing), FormatError);
}

// --------------------------------------------- per-tenant health wire

TEST(Protocol, StatOkHealthFieldsRoundTrip) {
  StatOkResponse msg;
  msg.tenants = 2;
  TenantStat sick;
  sick.name = "sick";
  sick.generations = 1;
  sick.stored_bytes = 512;
  sick.quota_bytes = 1024;
  sick.newest_step = 9;
  sick.quarantined = 3;
  sick.scrub_age_ms = 2500;
  sick.last_error = "quota-exceeded";
  TenantStat fresh;
  fresh.name = "fresh";  // never scrubbed, never failed: all defaults
  msg.stats.push_back(sick);
  msg.stats.push_back(fresh);

  const StatOkResponse out = round_trip(MessageType::kStatOk, msg);
  ASSERT_EQ(out.stats.size(), 2u);
  EXPECT_EQ(out.stats[0].quarantined, 3u);
  EXPECT_EQ(out.stats[0].scrub_age_ms, 2500u);
  EXPECT_EQ(out.stats[0].last_error, "quota-exceeded");
  EXPECT_EQ(out.stats[1].quarantined, 0u);
  EXPECT_EQ(out.stats[1].scrub_age_ms, TenantStat::kNeverScrubbed);
  EXPECT_TRUE(out.stats[1].last_error.empty());
}

TEST(Protocol, StatOkWithoutHealthBlockDecodesToDefaults) {
  // An old server's StatOk stops after the base entries. A new client
  // must fill the health fields with their "unknown" defaults instead
  // of rejecting the reply.
  ByteWriter w;
  w.u64(1);  // total tenants
  w.varint(1);
  w.str("legacy");
  w.u64(4);    // generations
  w.u64(800);  // stored bytes
  w.u64(0);    // quota
  w.u64(12);   // newest step
  Frame frame;
  frame.type = static_cast<std::uint8_t>(MessageType::kStatOk);
  frame.payload = w.take();

  const AnyMessage decoded = decode_message(frame);
  const auto* stat = std::get_if<StatOkResponse>(&decoded);
  ASSERT_NE(stat, nullptr);
  ASSERT_EQ(stat->stats.size(), 1u);
  EXPECT_EQ(stat->stats[0].name, "legacy");
  EXPECT_EQ(stat->stats[0].generations, 4u);
  EXPECT_EQ(stat->stats[0].quarantined, 0u);
  EXPECT_EQ(stat->stats[0].scrub_age_ms, TenantStat::kNeverScrubbed);
  EXPECT_TRUE(stat->stats[0].last_error.empty());
}

TEST(Protocol, HostileValueCountCannotAllocationBomb) {
  // Hand-craft a Put body declaring a terabyte-scale shape (and a
  // matching value count) with no value bytes behind it. The decoder
  // must reject it from the sizes actually present, never trust the
  // count and allocate.
  ByteWriter w;
  w.str("t");
  w.u64(7);                // step
  w.u8(1);                 // rank
  w.varint(1ull << 40);    // extent
  w.varint(1ull << 40);    // value count, consistent with the shape
  Frame frame;
  frame.type = static_cast<std::uint8_t>(MessageType::kPut);
  frame.payload = w.take();
  EXPECT_THROW((void)decode_message(frame), FormatError);
}

}  // namespace
}  // namespace wck::net
