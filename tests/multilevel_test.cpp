// Tests for multi-level checkpointing and the interval-optimization
// models.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "core/synthetic.hpp"
#include "multilevel/interval_model.hpp"
#include "multilevel/multilevel.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("wck_ml_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

// ---------------- interval models ----------------

TEST(IntervalModel, YoungFormula) {
  EXPECT_DOUBLE_EQ(young_interval(10.0, 7200.0), std::sqrt(2.0 * 10.0 * 7200.0));
}

TEST(IntervalModel, DalyReducesToYoungWithoutRestart) {
  const double y = young_interval(10.0, 7200.0);
  const double d = daly_interval(10.0, 0.0, 7200.0);
  EXPECT_NEAR(d, y - 10.0, 1e-9);
}

TEST(IntervalModel, EfficiencyPeaksNearYoungInterval) {
  const double c = 10.0;
  const double mtbf = 7200.0;
  const double tau_star = young_interval(c, mtbf);
  const double at_opt = checkpoint_efficiency(tau_star, c, 0.0, mtbf);
  EXPECT_GT(at_opt, checkpoint_efficiency(tau_star / 4.0, c, 0.0, mtbf));
  EXPECT_GT(at_opt, checkpoint_efficiency(tau_star * 4.0, c, 0.0, mtbf));
}

TEST(IntervalModel, OptimizerMatchesAnalyticOptimum) {
  const double c = 10.0;
  const double mtbf = 7200.0;
  const auto opt = optimize_interval(c, 30.0, mtbf);
  // First-order model: the optimum is Young's interval regardless of R.
  EXPECT_NEAR(opt.interval_seconds, young_interval(c, mtbf), young_interval(c, mtbf) * 0.01);
  EXPECT_GT(opt.efficiency, 0.9);
}

TEST(IntervalModel, CheaperCheckpointsRaiseEfficiency) {
  // The paper's point: lossy compression cuts C ~5x, so the optimal
  // strategy both checkpoints more often and wastes less time.
  const double mtbf = 3600.0;  // "a few hours" projected exascale MTBF
  const auto raw = optimize_interval(50.0, 60.0, mtbf);
  const auto lossy = optimize_interval(10.0, 15.0, mtbf);
  EXPECT_GT(lossy.efficiency, raw.efficiency);
  EXPECT_LT(lossy.interval_seconds, raw.interval_seconds);
}

TEST(IntervalModel, EfficiencyDegradesAsMtbfShrinks) {
  double prev = 1.0;
  for (const double mtbf : {86400.0, 14400.0, 3600.0, 900.0}) {
    const auto opt = optimize_interval(20.0, 30.0, mtbf);
    EXPECT_LT(opt.efficiency, prev);
    prev = opt.efficiency;
  }
}

TEST(IntervalModel, SweepShapes) {
  const std::vector<Strategy> strategies = {{"raw", 50.0, 60.0}, {"lossy", 10.0, 15.0}};
  const auto rows = sweep_strategies(strategies, {3600.0, 7200.0});
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].by_strategy.size(), 2u);
  // Lossy strictly better at every MTBF.
  for (const auto& row : rows) {
    EXPECT_GT(row.by_strategy[1].efficiency, row.by_strategy[0].efficiency);
  }
}

TEST(TwoLevelModel, ReducesToSingleLevelWhenSharedEveryIsOne) {
  // With shared_every = 1 every checkpoint hits both levels; the model
  // must behave like a single level of combined cost.
  TwoLevelParams p{};
  p.local_checkpoint_seconds = 5.0;
  p.shared_checkpoint_seconds = 20.0;
  p.local_restart_seconds = 5.0;
  p.shared_restart_seconds = 20.0;
  p.mtbf_seconds = 7200.0;
  p.local_failure_fraction = 0.8;
  const double tau = 300.0;
  const double two = two_level_efficiency(p, tau, 1);
  // Equivalent single level: C = c1 + c2, rework mixes restarts only.
  const double ckpt = (5.0 + 20.0) / tau;
  const double rework = (0.8 * (tau / 2 + 5.0) + 0.2 * (tau / 2 + 20.0)) / 7200.0;
  EXPECT_NEAR(two, 1.0 - ckpt - rework, 1e-12);
}

TEST(TwoLevelModel, HierarchyBeatsSharedOnlyWhenLocalFailuresDominate) {
  // The multi-level premise (paper Sec. V): cheap local checkpoints for
  // frequent mild failures beat writing everything to shared storage.
  TwoLevelParams p{};
  p.local_checkpoint_seconds = 2.0;
  p.shared_checkpoint_seconds = 60.0;
  p.local_restart_seconds = 2.0;
  p.shared_restart_seconds = 60.0;
  p.mtbf_seconds = 1800.0;
  p.local_failure_fraction = 0.9;  // 90% of failures are process-level
  const auto best = optimize_two_level(p);
  EXPECT_GT(best.shared_every, 1);  // shared checkpoints are rarer

  // Shared-only alternative: every checkpoint costs c2.
  TwoLevelParams shared_only = p;
  shared_only.local_checkpoint_seconds = 60.0;  // always pay shared cost
  shared_only.local_failure_fraction = 1.0;
  const auto so = optimize_two_level(shared_only);
  EXPECT_GT(best.efficiency, so.efficiency);
}

TEST(TwoLevelModel, OptimizerBeatsNaiveGrid) {
  TwoLevelParams p{};
  p.local_checkpoint_seconds = 3.0;
  p.shared_checkpoint_seconds = 30.0;
  p.local_restart_seconds = 3.0;
  p.shared_restart_seconds = 30.0;
  p.mtbf_seconds = 3600.0;
  p.local_failure_fraction = 0.75;
  const auto best = optimize_two_level(p);
  for (const double tau : {30.0, 100.0, 300.0, 1000.0}) {
    for (const int every : {1, 2, 8, 32}) {
      EXPECT_GE(best.efficiency + 1e-9, two_level_efficiency(p, tau, every));
    }
  }
}

TEST(TwoLevelModel, InvalidArgsRejected) {
  TwoLevelParams p{};
  p.local_checkpoint_seconds = 1.0;
  p.shared_checkpoint_seconds = 1.0;
  p.mtbf_seconds = 100.0;
  p.local_failure_fraction = 0.5;
  EXPECT_THROW((void)two_level_efficiency(p, 0.0, 1), InvalidArgumentError);
  EXPECT_THROW((void)two_level_efficiency(p, 10.0, 0), InvalidArgumentError);
  p.local_failure_fraction = 1.5;
  EXPECT_THROW((void)two_level_efficiency(p, 10.0, 2), InvalidArgumentError);
}

TEST(IntervalModel, InvalidInputsRejected) {
  EXPECT_THROW((void)young_interval(0.0, 100.0), InvalidArgumentError);
  EXPECT_THROW((void)young_interval(1.0, 0.0), InvalidArgumentError);
  EXPECT_THROW((void)daly_interval(1.0, -1.0, 100.0), InvalidArgumentError);
  EXPECT_THROW((void)checkpoint_efficiency(0.0, 1.0, 0.0, 100.0), InvalidArgumentError);
}

// ---------------- multi-level checkpointing ----------------

struct App {
  NdArray<double> state = make_temperature_field(Shape{24, 12, 2}, 5);
  CheckpointRegistry registry;
  App() { registry.add("state", &state); }
};

TEST(MultiLevel, CadencesControlWrites) {
  TempDir dir;
  App app;
  const NullCodec codec;
  MultiLevelCheckpointer ml(
      {
          LevelSpec{"local", dir.path() / "l1", 1, 1},
          LevelSpec{"shared", dir.path() / "l2", 3, 2},
      },
      codec);

  // Opportunity 1: local only. Opportunity 3: both.
  auto w1 = ml.checkpoint(app.registry, 100);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_EQ(w1[0].level, "local");
  auto w2 = ml.checkpoint(app.registry, 200);
  EXPECT_EQ(w2.size(), 1u);
  auto w3 = ml.checkpoint(app.registry, 300);
  ASSERT_EQ(w3.size(), 2u);
  EXPECT_EQ(w3[1].level, "shared");
}

TEST(MultiLevel, MildFailureRestartsFromNewestLocal) {
  TempDir dir;
  App app;
  const NullCodec codec;
  MultiLevelCheckpointer ml(
      {
          LevelSpec{"local", dir.path() / "l1", 1, 1},
          LevelSpec{"shared", dir.path() / "l2", 3, 2},
      },
      codec);
  ml.checkpoint(app.registry, 100);
  ml.checkpoint(app.registry, 200);
  ml.checkpoint(app.registry, 300);  // shared also written here
  ml.checkpoint(app.registry, 400);  // local newest

  const auto r = ml.restart_after_failure(1, app.registry);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->level, "local");
  EXPECT_EQ(r->step, 400u);
}

TEST(MultiLevel, SevereFailureFallsBackToSharedLevel) {
  TempDir dir;
  App app;
  const NullCodec codec;
  MultiLevelCheckpointer ml(
      {
          LevelSpec{"local", dir.path() / "l1", 1, 1},
          LevelSpec{"shared", dir.path() / "l2", 3, 2},
      },
      codec);
  ml.checkpoint(app.registry, 100);
  ml.checkpoint(app.registry, 200);
  ml.checkpoint(app.registry, 300);
  ml.checkpoint(app.registry, 400);

  // Severity 2 (node loss): local checkpoints gone.
  const auto r = ml.restart_after_failure(2, app.registry);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->level, "shared");
  EXPECT_EQ(r->step, 300u);
  // Local level reports no checkpoint anymore.
  const auto latest = ml.latest_steps();
  EXPECT_FALSE(latest[0].second.has_value());
  EXPECT_TRUE(latest[1].second.has_value());
}

TEST(MultiLevel, CatastrophicFailureHasNoSurvivor) {
  TempDir dir;
  App app;
  const NullCodec codec;
  MultiLevelCheckpointer ml({LevelSpec{"local", dir.path() / "l1", 1, 1}}, codec);
  ml.checkpoint(app.registry, 100);
  EXPECT_FALSE(ml.restart_after_failure(3, app.registry).has_value());
}

TEST(MultiLevel, RestoredStateMatchesCheckpointedState) {
  TempDir dir;
  App app;
  const GzipCodec codec;
  MultiLevelCheckpointer ml({LevelSpec{"shared", dir.path() / "l2", 1, 9}}, codec);
  ml.checkpoint(app.registry, 1);
  const auto want = app.state;
  app.state = NdArray<double>(want.shape(), -1.0);  // diverge, then restore
  const auto r = ml.restart_after_failure(1, app.registry);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(app.state, want);
}

TEST(MultiLevel, KeepsOnlyNewestPerLevel) {
  TempDir dir;
  App app;
  const NullCodec codec;
  MultiLevelCheckpointer ml({LevelSpec{"local", dir.path() / "l1", 1, 1}}, codec);
  ml.checkpoint(app.registry, 1);
  ml.checkpoint(app.registry, 2);
  ml.checkpoint(app.registry, 3);
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir.path() / "l1")) {
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(MultiLevel, InvalidConfigurationRejected) {
  TempDir dir;
  const NullCodec codec;
  EXPECT_THROW(MultiLevelCheckpointer({}, codec), InvalidArgumentError);
  EXPECT_THROW(MultiLevelCheckpointer({LevelSpec{"x", dir.path(), 0, 1}}, codec),
               InvalidArgumentError);
  EXPECT_THROW(MultiLevelCheckpointer({LevelSpec{"", dir.path(), 1, 1}}, codec),
               InvalidArgumentError);
}

}  // namespace
}  // namespace wck
