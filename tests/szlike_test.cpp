// Tests for the SZ-style Lorenzo-predictor error-bounded compressor.
#include <gtest/gtest.h>

#include <cmath>

#include "core/synthetic.hpp"
#include "szlike/lorenzo.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

void expect_bounded(const NdArray<double>& orig, const NdArray<double>& recon, double eb) {
  ASSERT_EQ(recon.shape(), orig.shape());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    ASSERT_LE(std::abs(orig[i] - recon[i]), eb * (1.0 + 1e-12)) << "i=" << i;
  }
}

TEST(SzLike, PointwiseBoundHoldsOnSmoothData) {
  const auto field = make_temperature_field(Shape{64, 32, 4}, 1);
  for (const double eb : {1.0, 1e-2, 1e-5}) {
    const Bytes comp = szlike_compress(field, SzLikeOptions{eb, 6});
    expect_bounded(field, szlike_decompress(comp), eb);
  }
}

TEST(SzLike, PointwiseBoundHoldsOnNoise) {
  // White noise defeats the predictor; correctness must survive via
  // escapes even when compression does not.
  const auto field = make_random_field(Shape{40, 40}, 2, -100.0, 100.0);
  const double eb = 1e-3;
  const Bytes comp = szlike_compress(field, SzLikeOptions{eb, 6});
  expect_bounded(field, szlike_decompress(comp), eb);
}

TEST(SzLike, SmoothDataCompressesWell) {
  const auto field = make_temperature_field(Shape{128, 82, 2}, 3);
  const Bytes comp = szlike_compress(field, SzLikeOptions{1e-2, 6});
  // Lorenzo on smooth data: most codes are the zero code.
  EXPECT_LT(comp.size(), field.size_bytes() / 10);
}

TEST(SzLike, TighterBoundCostsMoreSpace) {
  const auto field = make_temperature_field(Shape{64, 64}, 4);
  std::size_t prev = 0;
  for (const double eb : {1.0, 1e-2, 1e-4, 1e-8}) {
    const auto size = szlike_compress(field, SzLikeOptions{eb, 6}).size();
    if (prev != 0) {
      EXPECT_GE(size, prev) << "eb=" << eb;
    }
    prev = size;
  }
}

TEST(SzLike, AllRanksSupported) {
  for (const Shape& shape : {Shape{100}, Shape{10, 11}, Shape{4, 5, 6}, Shape{3, 4, 5, 2}}) {
    const auto field = make_smooth_field(shape, 5 + shape.rank());
    const Bytes comp = szlike_compress(field, SzLikeOptions{1e-4, 6});
    expect_bounded(field, szlike_decompress(comp), 1e-4);
  }
}

TEST(SzLike, ConstantFieldNearlyFree) {
  const NdArray<double> field(Shape{100, 100}, 3.14);
  const Bytes comp = szlike_compress(field, SzLikeOptions{1e-6, 6});
  EXPECT_LT(comp.size(), 600u);
}

TEST(SzLike, EscapesKeepOutliersExact) {
  auto field = make_smooth_field(Shape{32, 32}, 6);
  field(16, 16) = 1e12;  // wild outlier: code range cannot reach it
  const Bytes comp = szlike_compress(field, SzLikeOptions{1e-4, 6});
  const auto recon = szlike_decompress(comp);
  EXPECT_DOUBLE_EQ(recon(16, 16), 1e12);
  expect_bounded(field, recon, 1e-4);
}

TEST(SzLike, NonFiniteValuesStoredExactly) {
  auto field = make_smooth_field(Shape{16, 16}, 7);
  field(3, 3) = std::numeric_limits<double>::infinity();
  const Bytes comp = szlike_compress(field, SzLikeOptions{1e-3, 6});
  const auto recon = szlike_decompress(comp);
  EXPECT_TRUE(std::isinf(recon(3, 3)));
}

TEST(SzLike, InvalidInputsRejected) {
  const auto field = make_smooth_field(Shape{8}, 8);
  EXPECT_THROW((void)szlike_compress(field, SzLikeOptions{0.0, 6}), InvalidArgumentError);
  EXPECT_THROW((void)szlike_compress(field, SzLikeOptions{-1.0, 6}), InvalidArgumentError);
  NdArray<double> empty;
  EXPECT_THROW((void)szlike_compress(empty, SzLikeOptions{}), InvalidArgumentError);
}

TEST(SzLike, MalformedStreamsRejected) {
  EXPECT_THROW((void)szlike_decompress({}), Error);
  Bytes junk(50, std::byte{0x3C});
  EXPECT_THROW((void)szlike_decompress(junk), Error);
  const auto field = make_smooth_field(Shape{16, 16}, 9);
  Bytes comp = szlike_compress(field, SzLikeOptions{1e-3, 6});
  comp.resize(comp.size() - 3);
  EXPECT_THROW((void)szlike_decompress(comp), Error);
}

TEST(SzLike, Deterministic) {
  const auto field = make_temperature_field(Shape{32, 16, 2}, 10);
  EXPECT_EQ(szlike_compress(field, SzLikeOptions{1e-3, 6}),
            szlike_compress(field, SzLikeOptions{1e-3, 6}));
}

}  // namespace
}  // namespace wck
