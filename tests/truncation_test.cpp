// Tests for the mantissa-truncation lossy baseline.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "core/synthetic.hpp"
#include "core/truncation.hpp"
#include "stats/error_metrics.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

TEST(Truncation, Keep52IsIdentity) {
  auto field = make_smooth_field(Shape{32, 32}, 1);
  const auto orig = field;
  truncate_mantissa(field.values(), 52);
  EXPECT_EQ(field, orig);
}

TEST(Truncation, RelativeErrorBounded) {
  // Dropping (52 - k) mantissa bits bounds the pointwise relative error
  // by 2^-k (truncation toward zero in magnitude).
  auto field = make_temperature_field(Shape{64, 32, 2}, 2);
  const auto orig = field;
  const int keep = 20;
  truncate_mantissa(field.values(), keep);
  const double bound = std::pow(2.0, -keep);
  for (std::size_t i = 0; i < field.size(); ++i) {
    const double rel = std::abs(field[i] - orig[i]) / std::abs(orig[i]);
    EXPECT_LE(rel, bound) << "i=" << i;
  }
}

TEST(Truncation, LowBitsActuallyZeroed) {
  auto field = make_smooth_field(Shape{16, 16}, 3);
  truncate_mantissa(field.values(), 12);
  const std::uint64_t low_mask = (std::uint64_t{1} << 40) - 1;  // 52-12 bits
  for (const double v : field.values()) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(v) & low_mask, 0u);
  }
}

TEST(Truncation, CompressDecompressRoundTrip) {
  const auto field = make_temperature_field(Shape{48, 24, 2}, 4);
  const Bytes data = truncation_compress(field, 16);
  const auto back = truncation_decompress(data);
  EXPECT_EQ(back.shape(), field.shape());
  // Decompress returns exactly the truncated values.
  auto truncated = field;
  truncate_mantissa(truncated.values(), 16);
  EXPECT_EQ(back, truncated);
}

TEST(Truncation, FewerBitsCompressBetter) {
  const auto field = make_temperature_field(Shape{64, 32, 2}, 5);
  std::size_t prev = 0;
  for (const int keep : {40, 24, 8}) {
    const auto size = truncation_compress(field, keep).size();
    if (prev != 0) {
      EXPECT_LT(size, prev) << "keep=" << keep;
    }
    prev = size;
  }
}

TEST(Truncation, ErrorVsSizeTradeoffMonotone) {
  const auto field = make_temperature_field(Shape{64, 32, 2}, 6);
  double prev_err = -1.0;
  for (const int keep : {36, 24, 12}) {
    const auto back = truncation_decompress(truncation_compress(field, keep));
    const auto err = relative_error(field.values(), back.values());
    EXPECT_GT(err.mean_rel, prev_err) << "keep=" << keep;
    prev_err = err.mean_rel;
  }
}

TEST(Truncation, InvalidArgumentsRejected) {
  const auto field = make_smooth_field(Shape{8}, 7);
  EXPECT_THROW((void)truncation_compress(field, -1), InvalidArgumentError);
  EXPECT_THROW((void)truncation_compress(field, 53), InvalidArgumentError);
}

TEST(Truncation, MalformedStreamRejected) {
  Bytes junk(32, std::byte{0x11});
  EXPECT_THROW((void)truncation_decompress(junk), Error);
  EXPECT_THROW((void)truncation_decompress({}), Error);
}

}  // namespace
}  // namespace wck
