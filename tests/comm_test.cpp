// Tests for the MPI-like in-process communication runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/communicator.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

Bytes bytes_of(const std::string& s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::string str_of(const Bytes& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

TEST(Comm, PointToPointRing) {
  World world(4);
  world.run([](Comm& comm) {
    const std::size_t next = (comm.rank() + 1) % comm.size();
    const std::size_t prev = (comm.rank() + comm.size() - 1) % comm.size();
    const Bytes msg = bytes_of("from " + std::to_string(comm.rank()));
    comm.send(next, 7, msg);
    const Bytes got = comm.recv(prev, 7);
    EXPECT_EQ(str_of(got), "from " + std::to_string(prev));
  });
}

TEST(Comm, TagMatchingSeparatesStreams) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, bytes_of("tag1"));
      comm.send(1, 2, bytes_of("tag2"));
    } else {
      // Receive in reverse tag order: matching must pick by tag.
      EXPECT_EQ(str_of(comm.recv(0, 2)), "tag2");
      EXPECT_EQ(str_of(comm.recv(0, 1)), "tag1");
    }
  });
}

TEST(Comm, FifoOrderWithinTag) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send(1, 5, bytes_of(std::to_string(i)));
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(str_of(comm.recv(0, 5)), std::to_string(i));
      }
    }
  });
}

TEST(Comm, SelfSendWorks) {
  World world(1);
  world.run([](Comm& comm) {
    comm.send(0, 3, bytes_of("loop"));
    EXPECT_EQ(str_of(comm.recv(0, 3)), "loop");
  });
}

TEST(Comm, TypedSendRecv) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> v = {1.5, -2.5, 3.75};
      comm.send_values<double>(1, 9, v);
    } else {
      std::vector<double> v(3);
      comm.recv_values<double>(0, 9, v);
      EXPECT_EQ(v, (std::vector<double>{1.5, -2.5, 3.75}));
    }
  });
}

TEST(Comm, BarrierSynchronizes) {
  World world(4);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  world.run([&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != 4) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(Comm, AllreduceSumAndMax) {
  World world(5);
  world.run([](Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(mine), 15.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_max(mine), 5.0);
    // Back-to-back collectives must not interfere.
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(1.0), 5.0);
  });
}

TEST(Comm, GatherCollectsAtRoot) {
  World world(3);
  world.run([](Comm& comm) {
    const Bytes mine = bytes_of(std::string(comm.rank() + 1, 'x'));
    const auto all = comm.gather(mine, 1);
    if (comm.rank() == 1) {
      ASSERT_EQ(all.size(), 3u);
      for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(all[r].size(), r + 1);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, BroadcastDistributesRootValue) {
  World world(4);
  world.run([](Comm& comm) {
    const Bytes mine = comm.rank() == 2 ? bytes_of("the value") : bytes_of("ignored");
    const Bytes got = comm.broadcast(mine, 2);
    EXPECT_EQ(str_of(got), "the value");
  });
}

TEST(Comm, RankExceptionPropagates) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
    comm.barrier();  // everyone reaches the barrier...
    if (comm.rank() == 1) throw CorruptDataError("rank 1 died");
  }),
               CorruptDataError);
}

TEST(Comm, UndeliveredMessagesDetected) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 1, Bytes(4));
    // rank 1 never receives it
  }),
               Error);
}

TEST(Comm, InvalidRanksRejected) {
  World world(2);
  world.run([](Comm& comm) {
    EXPECT_THROW(comm.send(5, 0, Bytes{}), InvalidArgumentError);
    EXPECT_THROW((void)comm.recv(5, 0), InvalidArgumentError);
    EXPECT_THROW((void)comm.gather(Bytes{}, 9), InvalidArgumentError);
  });
  EXPECT_THROW(World{0}, InvalidArgumentError);
}

TEST(Comm, ReusableAcrossRuns) {
  World world(2);
  for (int round = 0; round < 3; ++round) {
    world.run([round](Comm& comm) {
      const double sum = comm.allreduce_sum(static_cast<double>(round));
      EXPECT_DOUBLE_EQ(sum, 2.0 * round);
    });
  }
}

}  // namespace
}  // namespace wck
