#include "comm/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <limits>
#include <thread>

namespace wck {

World::World(std::size_t ranks) : ranks_(ranks), mailboxes_(ranks) {
  if (ranks == 0) throw InvalidArgumentError("World needs at least one rank");
  // No rank threads exist yet, but the slots are guarded fields; taking
  // the (uncontended) lock keeps the discipline uniform.
  MutexLock lk(coll_.mu);
  coll_.reduce_slots.resize(ranks, 0.0);
  coll_.gather_slots.resize(ranks, nullptr);
}

void World::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(ranks_);
  Mutex error_mu;
  std::exception_ptr first_error;

  for (std::size_t r = 0; r < ranks_; ++r) {
    threads.emplace_back([this, r, &fn, &error_mu, &first_error] {
      Comm comm(*this, r);
      try {
        fn(comm);
      } catch (...) {
        MutexLock lk(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  for (auto& mb : mailboxes_) {
    MutexLock lk(mb.mu);
    if (!mb.messages.empty()) {
      throw Error("World::run finished with undelivered messages");
    }
  }
}

void Comm::send(std::size_t dest, int tag, std::span<const std::byte> data) {
  if (dest >= size()) throw InvalidArgumentError("send: destination rank out of range");
  World::Mailbox& mb = world_.mailboxes_[dest];
  {
    MutexLock lk(mb.mu);
    mb.messages.push_back(World::Message{rank_, tag, Bytes(data.begin(), data.end())});
  }
  mb.cv.notify_all();
}

Bytes Comm::recv(std::size_t src, int tag) {
  if (src >= size()) throw InvalidArgumentError("recv: source rank out of range");
  World::Mailbox& mb = world_.mailboxes_[rank_];
  MutexLock lk(mb.mu);
  for (;;) {
    const auto it = std::find_if(mb.messages.begin(), mb.messages.end(),
                                 [&](const World::Message& m) {
                                   return m.src == src && m.tag == tag;
                                 });
    if (it != mb.messages.end()) {
      Bytes data = std::move(it->data);
      mb.messages.erase(it);
      return data;
    }
    mb.cv.wait(lk);
  }
}

void Comm::barrier() {
  World::Collectives& c = world_.coll_;
  MutexLock lk(c.mu);
  const std::uint64_t gen = c.barrier_generation;
  if (++c.barrier_waiting == size()) {
    c.barrier_waiting = 0;
    ++c.barrier_generation;
    c.cv.notify_all();
  } else {
    c.cv.wait(lk, [&] {
      c.mu.assert_held();
      return c.barrier_generation != gen;
    });
  }
}

template <typename Op>
double Comm::allreduce(double value, Op op, double init) {
  World::Collectives& c = world_.coll_;
  {
    MutexLock lk(c.mu);
    c.reduce_slots[rank_] = value;
  }
  barrier();
  double result = init;
  {
    MutexLock lk(c.mu);
    // Fold in rank order: deterministic regardless of scheduling.
    for (const double v : c.reduce_slots) result = op(result, v);
  }
  barrier();  // keep slots alive until everyone has read them
  return result;
}

double Comm::allreduce_sum(double value) {
  return allreduce(value, [](double a, double b) { return a + b; }, 0.0);
}

double Comm::allreduce_max(double value) {
  return allreduce(
      value, [](double a, double b) { return std::max(a, b); },
      -std::numeric_limits<double>::infinity());
}

std::vector<Bytes> Comm::gather(std::span<const std::byte> data, std::size_t root) {
  if (root >= size()) throw InvalidArgumentError("gather: root out of range");
  World::Collectives& c = world_.coll_;
  const Bytes mine(data.begin(), data.end());
  {
    MutexLock lk(c.mu);
    c.gather_slots[rank_] = &mine;
  }
  barrier();
  std::vector<Bytes> out;
  if (rank_ == root) {
    MutexLock lk(c.mu);
    out.reserve(size());
    for (const Bytes* slot : c.gather_slots) out.push_back(*slot);
  }
  barrier();  // `mine` stays alive until the root has copied everything
  return out;
}

Bytes Comm::broadcast(std::span<const std::byte> data, std::size_t root) {
  if (root >= size()) throw InvalidArgumentError("broadcast: root out of range");
  World::Collectives& c = world_.coll_;
  if (rank_ == root) {
    MutexLock lk(c.mu);
    c.bcast_value.assign(data.begin(), data.end());
  }
  barrier();
  Bytes out;
  {
    MutexLock lk(c.mu);
    out = c.bcast_value;
  }
  barrier();
  return out;
}

}  // namespace wck
