// An MPI-like message-passing runtime over in-process ranks.
//
// The paper's setting is an MPI application whose ranks each checkpoint
// their local state ("compression of checkpoints of each process can be
// done in an embarrassingly parallel fashion", Sec. IV-D). We have no
// cluster, so this substrate provides the same programming model inside
// one process: a World spawns R ranks as threads; each receives a Comm
// handle with point-to-point send/recv (tag matching), barrier,
// broadcast, gather and allreduce — enough to write the distributed
// MiniClimate (src/climate/distributed.hpp) and coordinated per-rank
// checkpointing exactly as an MPI code would.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace wck {

class Comm;

/// Shared state of a group of ranks. Construct, then call run() with the
/// per-rank main function.
class World {
 public:
  explicit World(std::size_t ranks);

  [[nodiscard]] std::size_t size() const noexcept { return ranks_; }

  /// Executes fn(comm) on every rank concurrently (one thread per rank)
  /// and joins. The first rank exception is rethrown after all threads
  /// finish. May be called repeatedly; mailboxes must be drained by the
  /// ranks themselves (a completed run() asserts empty mailboxes).
  void run(const std::function<void(Comm&)>& fn);

 private:
  friend class Comm;

  struct Message {
    std::size_t src;
    int tag;
    Bytes data;
  };

  struct Mailbox {
    Mutex mu;
    CondVar cv;
    std::deque<Message> messages WCK_GUARDED_BY(mu);
  };

  // Collectives state.
  struct Collectives {
    Mutex mu;
    CondVar cv;
    std::uint64_t barrier_generation WCK_GUARDED_BY(mu) = 0;
    std::size_t barrier_waiting WCK_GUARDED_BY(mu) = 0;
    std::vector<double> reduce_slots WCK_GUARDED_BY(mu);
    std::vector<const Bytes*> gather_slots WCK_GUARDED_BY(mu);
    Bytes bcast_value WCK_GUARDED_BY(mu);
    std::uint64_t bcast_generation WCK_GUARDED_BY(mu) = 0;
  };

  std::size_t ranks_;
  std::vector<Mailbox> mailboxes_;
  Collectives coll_;
};

/// Per-rank communicator handle (valid only inside World::run).
class Comm {
 public:
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
  [[nodiscard]] std::size_t size() const noexcept { return world_.ranks_; }

  // --- point-to-point ---

  /// Sends bytes to `dest` with `tag` (asynchronous, buffered).
  void send(std::size_t dest, int tag, std::span<const std::byte> data);

  /// Receives the oldest message from `src` with `tag` (blocking).
  [[nodiscard]] Bytes recv(std::size_t src, int tag);

  /// Typed convenience: sends/receives a span of trivially copyable T.
  template <typename T>
  void send_values(std::size_t dest, int tag, std::span<const T> values) {
    send(dest, tag, std::as_bytes(values));
  }
  template <typename T>
  void recv_values(std::size_t src, int tag, std::span<T> out) {
    const Bytes data = recv(src, tag);
    if (data.size() != out.size_bytes()) {
      throw InvalidArgumentError("recv_values: size mismatch");
    }
    std::memcpy(out.data(), data.data(), data.size());
  }

  // --- collectives (must be called by every rank) ---

  void barrier();

  /// Sum / max of one double across all ranks; every rank gets the result.
  [[nodiscard]] double allreduce_sum(double value);
  [[nodiscard]] double allreduce_max(double value);

  /// Gathers every rank's buffer at `root`; non-roots get an empty
  /// vector. Buffers may differ in size.
  [[nodiscard]] std::vector<Bytes> gather(std::span<const std::byte> data, std::size_t root);

  /// Broadcasts root's buffer to every rank.
  [[nodiscard]] Bytes broadcast(std::span<const std::byte> data, std::size_t root);

 private:
  friend class World;
  Comm(World& world, std::size_t rank) : world_(world), rank_(rank) {}

  template <typename Op>
  double allreduce(double value, Op op, double init);

  World& world_;
  std::size_t rank_;
};

}  // namespace wck
