#include "fft/fft.hpp"

#include <cmath>
#include <numbers>
#include <string>

#include "util/error.hpp"

namespace wck {
namespace {

void check_pow2(std::size_t n, const char* what) {
  if (!is_power_of_two(n)) {
    throw InvalidArgumentError(std::string(what) + " must be a power of two, got " +
                               std::to_string(n));
  }
}

}  // namespace

void fft_inplace(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  check_pow2(n, "FFT length");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Danielson–Lanczos butterflies.
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

void fft2d_inplace(std::span<std::complex<double>> data, std::size_t ny, std::size_t nx,
                   bool inverse) {
  if (data.size() != ny * nx) {
    throw InvalidArgumentError("fft2d: data size does not match ny*nx");
  }
  check_pow2(nx, "FFT nx");
  check_pow2(ny, "FFT ny");

  // Rows.
  for (std::size_t r = 0; r < ny; ++r) {
    fft_inplace(data.subspan(r * nx, nx), inverse);
  }
  // Columns (gather/scatter through a scratch line).
  std::vector<std::complex<double>> col(ny);
  for (std::size_t c = 0; c < nx; ++c) {
    for (std::size_t r = 0; r < ny; ++r) col[r] = data[r * nx + c];
    fft_inplace(col, inverse);
    for (std::size_t r = 0; r < ny; ++r) data[r * nx + c] = col[r];
  }
}

PoissonSolver::PoissonSolver(std::size_t ny, std::size_t nx, double dy, double dx)
    : ny_(ny), nx_(nx), inv_eig_(ny * nx, 0.0), work_(ny * nx) {
  check_pow2(nx, "Poisson nx");
  check_pow2(ny, "Poisson ny");
  if (dx <= 0.0 || dy <= 0.0) {
    throw InvalidArgumentError("Poisson grid spacings must be positive");
  }
  // Eigenvalues of the 5-point Laplacian for mode (ky, kx):
  //   lambda = (2 cos(2 pi kx / nx) - 2) / dx^2 + (2 cos(2 pi ky / ny) - 2) / dy^2
  for (std::size_t ky = 0; ky < ny; ++ky) {
    const double cy =
        (2.0 * std::cos(2.0 * std::numbers::pi * static_cast<double>(ky) / static_cast<double>(ny)) -
         2.0) /
        (dy * dy);
    for (std::size_t kx = 0; kx < nx; ++kx) {
      const double cx = (2.0 * std::cos(2.0 * std::numbers::pi * static_cast<double>(kx) /
                                        static_cast<double>(nx)) -
                         2.0) /
                        (dx * dx);
      const double lambda = cx + cy;
      inv_eig_[ky * nx + kx] = (kx == 0 && ky == 0) ? 0.0 : 1.0 / lambda;
    }
  }
}

void PoissonSolver::solve(std::span<const double> rhs, std::span<double> out) const {
  if (rhs.size() != ny_ * nx_ || out.size() != ny_ * nx_) {
    throw InvalidArgumentError("Poisson solve: field size mismatch");
  }
  for (std::size_t i = 0; i < rhs.size(); ++i) work_[i] = {rhs[i], 0.0};
  fft2d_inplace(work_, ny_, nx_, /*inverse=*/false);
  for (std::size_t i = 0; i < work_.size(); ++i) work_[i] *= inv_eig_[i];
  fft2d_inplace(work_, ny_, nx_, /*inverse=*/true);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = work_[i].real();
}

}  // namespace wck
