// Radix-2 FFT and a spectral Poisson solver on periodic grids.
//
// Substrate for the MiniClimate model (src/climate): the barotropic
// vorticity dynamics need streamfunction = inverse-Laplacian(vorticity)
// every step, solved exactly in Fourier space with the eigenvalues of
// the second-order finite-difference Laplacian (so the solve is
// consistent with the model's FD derivatives).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace wck {

/// In-place iterative radix-2 complex FFT. `data.size()` must be a power
/// of two (throws InvalidArgumentError otherwise). `inverse` applies the
/// conjugate transform including the 1/N normalization, so
/// fft(ifft(x)) == x up to rounding.
void fft_inplace(std::span<std::complex<double>> data, bool inverse);

/// True iff n is a nonzero power of two.
[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place 2D FFT of a row-major ny x nx complex field.
void fft2d_inplace(std::span<std::complex<double>> data, std::size_t ny, std::size_t nx,
                   bool inverse);

/// Solves the discrete periodic Poisson problem  L psi = rhs,  where L is
/// the standard 5-point finite-difference Laplacian on an ny x nx
/// periodic grid with spacings (dy, dx). The k=0 mode (mean) of the
/// solution is set to zero; the rhs mean is projected out (a periodic
/// Poisson problem is only solvable for zero-mean rhs).
class PoissonSolver {
 public:
  PoissonSolver(std::size_t ny, std::size_t nx, double dy, double dx);

  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }

  /// rhs and out are row-major ny x nx; they may alias.
  void solve(std::span<const double> rhs, std::span<double> out) const;

 private:
  std::size_t ny_;
  std::size_t nx_;
  std::vector<double> inv_eig_;  ///< 1/lambda per mode, 0 for the mean mode
  mutable std::vector<std::complex<double>> work_;
};

}  // namespace wck
