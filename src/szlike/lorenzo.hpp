// SZ-style error-bounded lossy compression (Lorenzo predictor +
// residual quantization + entropy stage).
//
// The paper predates and influenced the SZ line of error-bounded
// scientific-data compressors; its related work ([31] Ni et al., [32]
// Lindstrom & Isenburg) studies exactly this family for checkpointing.
// This module implements the core SZ-1.x idea from scratch as a modern
// comparator for the wavelet pipeline:
//
//  * scan the array in row-major order, predicting every value with the
//    N-dimensional Lorenzo predictor over already-reconstructed
//    neighbours (so compressor and decompressor stay in lockstep);
//  * quantize the residual to an integer code with step 2*eb, which
//    guarantees |reconstructed - original| <= eb for every element (a
//    *pointwise absolute* bound — contrast with the wavelet pipeline's
//    statistical behaviour);
//  * values whose code overflows the code range are stored exactly
//    (escape), keeping outliers lossless;
//  * deflate squeezes the (typically near-constant) code stream.
#pragma once

#include <span>

#include "ndarray/ndarray.hpp"
#include "util/bytes.hpp"

namespace wck {

struct SzLikeOptions {
  /// Pointwise absolute error bound (> 0).
  double error_bound = 1e-3;
  /// Final deflate level.
  int deflate_level = 6;
};

/// Compresses with a guaranteed |error| <= error_bound per element.
[[nodiscard]] Bytes szlike_compress(const NdArray<double>& array,
                                    const SzLikeOptions& options = {});

/// Inverse of szlike_compress (returns the bounded-error reconstruction).
[[nodiscard]] NdArray<double> szlike_decompress(std::span<const std::byte> data);

}  // namespace wck
