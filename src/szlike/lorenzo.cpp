#include "szlike/lorenzo.hpp"

#include <array>
#include <bit>
#include <cmath>

#include "deflate/deflate.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint32_t kMagic = 0x5A4C4B57;  // "WKLZ" little-endian
constexpr std::uint8_t kVersion = 1;
constexpr int kEscape = 255;  // code byte marking an exactly-stored value
constexpr int kCodeOffset = 127;  // stored byte = code + offset, codes in [-127, 127]

/// Lorenzo prediction at `idx` from the reconstructed field: the
/// inclusion-exclusion sum over the 2^rank - 1 corner neighbours of the
/// unit hypercube behind idx; out-of-range neighbours count as 0.
double lorenzo_predict(const NdArray<double>& recon, std::span<const std::size_t> idx) {
  const std::size_t r = recon.rank();
  double pred = 0.0;
  std::array<std::size_t, kMaxRank> nb{};
  // Enumerate nonempty subsets of axes to step back along.
  for (std::uint32_t mask = 1; mask < (1u << r); ++mask) {
    bool in_range = true;
    for (std::size_t a = 0; a < r; ++a) {
      if (mask & (1u << a)) {
        if (idx[a] == 0) {
          in_range = false;
          break;
        }
        nb[a] = idx[a] - 1;
      } else {
        nb[a] = idx[a];
      }
    }
    if (!in_range) continue;  // neighbour outside: contributes 0
    const double sign = (std::popcount(mask) % 2 == 1) ? 1.0 : -1.0;
    pred += sign * recon.cview().at(std::span(nb.data(), r));
  }
  return pred;
}

}  // namespace

Bytes szlike_compress(const NdArray<double>& array, const SzLikeOptions& options) {
  if (array.size() == 0) throw InvalidArgumentError("szlike: empty array");
  if (!(options.error_bound > 0.0)) {
    throw InvalidArgumentError("szlike: error bound must be positive");
  }

  const double step = 2.0 * options.error_bound;
  NdArray<double> recon(array.shape());
  Bytes codes;
  codes.reserve(array.size());
  std::vector<double> exact;

  std::array<std::size_t, kMaxRank> idx{};
  const std::size_t r = array.rank();
  for (std::size_t flat = 0; flat < array.size(); ++flat) {
    const double pred = lorenzo_predict(recon, std::span(idx.data(), r));
    const double v = array[flat];
    const double q = std::nearbyint((v - pred) / step);
    double rec = pred + q * step;
    if (std::abs(q) <= kCodeOffset && std::abs(rec - v) <= options.error_bound &&
        std::isfinite(rec)) {
      codes.push_back(static_cast<std::byte>(static_cast<int>(q) + kCodeOffset));
    } else {
      codes.push_back(static_cast<std::byte>(kEscape));
      exact.push_back(v);
      rec = v;
    }
    recon[flat] = rec;
    for (std::size_t a = r; a-- > 0;) {
      if (++idx[a] < array.extent(a)) break;
      idx[a] = 0;
    }
  }

  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(r));
  for (std::size_t a = 0; a < r; ++a) w.varint(array.extent(a));
  w.f64(options.error_bound);
  w.varint(exact.size());
  w.raw(codes.data(), codes.size());
  w.f64_array(exact);
  return zlib_compress(w.buffer(), DeflateOptions{options.deflate_level});
}

NdArray<double> szlike_decompress(std::span<const std::byte> data) {
  const Bytes raw = zlib_decompress(data);
  ByteReader rd(raw);
  if (rd.u32() != kMagic) throw FormatError("szlike: bad magic");
  if (rd.u8() != kVersion) throw FormatError("szlike: unsupported version");
  const std::uint8_t rank = rd.u8();
  if (rank < 1 || rank > kMaxRank) throw FormatError("szlike: invalid rank");
  Shape shape = Shape::of_rank(rank);
  for (std::size_t a = 0; a < rank; ++a) {
    shape[a] = rd.varint();
    if (shape[a] == 0) throw FormatError("szlike: zero extent");
  }
  const double eb = rd.f64();
  if (!(eb > 0.0)) throw FormatError("szlike: invalid error bound");
  const std::uint64_t n_exact = rd.varint();
  const auto codes = rd.raw(shape.size());
  std::vector<double> exact(n_exact);
  rd.f64_array(exact);
  if (!rd.exhausted()) throw FormatError("szlike: trailing bytes");

  const double step = 2.0 * eb;
  NdArray<double> recon(shape);
  std::array<std::size_t, kMaxRank> idx{};
  std::size_t ei = 0;
  for (std::size_t flat = 0; flat < recon.size(); ++flat) {
    const auto code = static_cast<int>(codes[flat]);
    if (code == kEscape) {
      if (ei >= exact.size()) throw FormatError("szlike: escape without exact value");
      recon[flat] = exact[ei++];
    } else {
      const double pred = lorenzo_predict(recon, std::span(idx.data(), rank));
      recon[flat] = pred + (code - kCodeOffset) * step;
    }
    for (std::size_t a = rank; a-- > 0;) {
      if (++idx[a] < shape[a]) break;
      idx[a] = 0;
    }
  }
  if (ei != exact.size()) throw FormatError("szlike: unused exact values");
  return recon;
}

}  // namespace wck
