#include "zfplike/block_codec.hpp"

#include <array>
#include <cmath>
#include <cstdint>

#include "deflate/deflate.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint32_t kMagic = 0x465A4B57;  // "WKZF" little-endian
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kBlockSide = 4;

void check_options(const ZfpLikeOptions& o) {
  if (o.precision < 8 || o.precision > 30) {
    throw InvalidArgumentError("zfplike precision must be in 8..30");
  }
}

/// zfp's forward 4-point integer lifting transform (shift-add
/// approximation of an orthogonal transform).
void fwd_lift(std::int64_t& x, std::int64_t& y, std::int64_t& z, std::int64_t& w) noexcept {
  x += w;
  x >>= 1;
  w -= x;
  z += y;
  z >>= 1;
  y -= z;
  x += z;
  x >>= 1;
  z -= x;
  w += y;
  w >>= 1;
  y -= w;
  w += y >> 1;
  y -= w >> 1;
}

/// Approximate inverse of fwd_lift (exact up to the bits the forward
/// shifts discard).
void inv_lift(std::int64_t& x, std::int64_t& y, std::int64_t& z, std::int64_t& w) noexcept {
  y += w >> 1;
  w -= y >> 1;
  y += w;
  w <<= 1;
  w -= y;
  z += x;
  x <<= 1;
  x -= z;
  y += z;
  z <<= 1;
  z -= y;
  w += x;
  x <<= 1;
  x -= w;
}

/// Applies the 4-point lift along every axis line of a 4^rank block.
template <typename LiftFn>
void transform_block(std::span<std::int64_t> block, std::size_t rank, LiftFn&& lift) {
  const std::size_t n = block.size();
  // Strides of the 4^rank cube: axis a has stride 4^(rank-1-a).
  for (std::size_t a = 0; a < rank; ++a) {
    std::size_t stride = 1;
    for (std::size_t b = a + 1; b < rank; ++b) stride *= kBlockSide;
    const std::size_t line_span = stride * kBlockSide;
    for (std::size_t base = 0; base < n; base += line_span) {
      for (std::size_t off = 0; off < stride; ++off) {
        const std::size_t i = base + off;
        lift(block[i], block[i + stride], block[i + 2 * stride], block[i + 3 * stride]);
      }
    }
  }
}

std::size_t blocks_along(std::size_t extent) {
  return (extent + kBlockSide - 1) / kBlockSide;
}

}  // namespace

Bytes zfplike_compress(const NdArray<double>& array, const ZfpLikeOptions& options) {
  check_options(options);
  if (array.size() == 0) throw InvalidArgumentError("zfplike: empty array");

  const std::size_t r = array.rank();
  std::size_t block_count = 1;
  std::array<std::size_t, kMaxRank> nblocks{};
  std::size_t block_elems = 1;
  for (std::size_t a = 0; a < r; ++a) {
    nblocks[a] = blocks_along(array.extent(a));
    block_count *= nblocks[a];
    block_elems *= kBlockSide;
  }

  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(r));
  for (std::size_t a = 0; a < r; ++a) w.varint(array.extent(a));
  w.u8(static_cast<std::uint8_t>(options.precision));

  std::vector<double> vals(block_elems);
  std::vector<std::int64_t> q(block_elems);
  std::array<std::size_t, kMaxRank> bidx{};
  const auto view = array.cview();

  for (std::size_t b = 0; b < block_count; ++b) {
    // Gather the block with replicate padding at the edges.
    std::array<std::size_t, kMaxRank> idx{};
    for (std::size_t e = 0; e < block_elems; ++e) {
      std::size_t rem = e;
      std::array<std::size_t, kMaxRank> gi{};
      for (std::size_t a = r; a-- > 0;) {
        gi[a] = bidx[a] * kBlockSide + rem % kBlockSide;
        rem /= kBlockSide;
        if (gi[a] >= array.extent(a)) gi[a] = array.extent(a) - 1;
      }
      vals[e] = view.at(std::span(gi.data(), r));
    }
    (void)idx;

    // Block-floating-point: common exponent of the max magnitude.
    double amax = 0.0;
    for (const double v : vals) amax = std::max(amax, std::abs(v));
    if (amax == 0.0 || !std::isfinite(amax)) {
      // All-zero (or non-finite: store raw) block.
      if (amax == 0.0) {
        w.u8(0);  // kind: zero block
      } else {
        w.u8(2);  // kind: raw block
        w.f64_array(vals);
      }
    } else {
      int e = 0;
      (void)std::frexp(amax, &e);  // amax = m * 2^e, m in [0.5, 1)
      const double scale = std::ldexp(1.0, options.precision - e);
      for (std::size_t i = 0; i < block_elems; ++i) {
        q[i] = static_cast<std::int64_t>(std::nearbyint(vals[i] * scale));
      }
      transform_block(std::span(q), r, fwd_lift);
      w.u8(1);  // kind: coded block
      w.u16(static_cast<std::uint16_t>(e + 1024));
      for (const std::int64_t c : q) {
        // Zigzag varint: small coefficients cost one byte.
        const auto zz = static_cast<std::uint64_t>((c << 1) ^ (c >> 63));
        w.varint(zz);
      }
    }

    for (std::size_t a = r; a-- > 0;) {
      if (++bidx[a] < nblocks[a]) break;
      bidx[a] = 0;
    }
  }
  return zlib_compress(w.buffer(), DeflateOptions{options.deflate_level});
}

NdArray<double> zfplike_decompress(std::span<const std::byte> data) {
  const Bytes raw = zlib_decompress(data);
  ByteReader rd(raw);
  if (rd.u32() != kMagic) throw FormatError("zfplike: bad magic");
  if (rd.u8() != kVersion) throw FormatError("zfplike: unsupported version");
  const std::uint8_t r = rd.u8();
  if (r < 1 || r > kMaxRank) throw FormatError("zfplike: invalid rank");
  Shape shape = Shape::of_rank(r);
  for (std::size_t a = 0; a < r; ++a) {
    shape[a] = rd.varint();
    if (shape[a] == 0) throw FormatError("zfplike: zero extent");
  }
  const int precision = rd.u8();
  check_options(ZfpLikeOptions{precision, 6});

  std::size_t block_count = 1;
  std::array<std::size_t, kMaxRank> nblocks{};
  std::size_t block_elems = 1;
  for (std::size_t a = 0; a < r; ++a) {
    nblocks[a] = blocks_along(shape[a]);
    block_count *= nblocks[a];
    block_elems *= kBlockSide;
  }

  NdArray<double> out(shape);
  auto view = out.view();
  std::vector<double> vals(block_elems);
  std::vector<std::int64_t> q(block_elems);
  std::array<std::size_t, kMaxRank> bidx{};

  for (std::size_t b = 0; b < block_count; ++b) {
    const std::uint8_t kind = rd.u8();
    if (kind == 0) {
      std::fill(vals.begin(), vals.end(), 0.0);
    } else if (kind == 2) {
      rd.f64_array(vals);
    } else if (kind == 1) {
      const int e = static_cast<int>(rd.u16()) - 1024;
      for (std::size_t i = 0; i < block_elems; ++i) {
        const std::uint64_t zz = rd.varint();
        q[i] = static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
      }
      transform_block(std::span(q), r, inv_lift);
      const double inv_scale = std::ldexp(1.0, e - precision);
      for (std::size_t i = 0; i < block_elems; ++i) {
        vals[i] = static_cast<double>(q[i]) * inv_scale;
      }
    } else {
      throw FormatError("zfplike: unknown block kind");
    }

    // Scatter owned elements (padding discarded).
    for (std::size_t e2 = 0; e2 < block_elems; ++e2) {
      std::size_t rem = e2;
      std::array<std::size_t, kMaxRank> gi{};
      bool owned = true;
      for (std::size_t a = r; a-- > 0;) {
        gi[a] = bidx[a] * kBlockSide + rem % kBlockSide;
        rem /= kBlockSide;
        if (gi[a] >= shape[a]) owned = false;
      }
      if (owned) view.at(std::span(gi.data(), r)) = vals[e2];
    }

    for (std::size_t a = r; a-- > 0;) {
      if (++bidx[a] < nblocks[a]) break;
      bidx[a] = 0;
    }
  }
  if (!rd.exhausted()) throw FormatError("zfplike: trailing bytes");
  return out;
}

}  // namespace wck
