// ZFP-inspired block-transform lossy compression.
//
// The second major family of scientific lossy compressors (alongside
// SZ's prediction approach, src/szlike) descends from fpzip/zfp by the
// authors the paper cites as [32]. This from-scratch implementation
// follows zfp's fixed-precision architecture:
//
//  * the array is cut into 4^rank blocks (edge blocks replicate-padded);
//  * each block is converted to a block-floating-point representation:
//    a common exponent plus integers of `precision` bits;
//  * zfp's integer lifting transform decorrelates each axis (an
//    orthogonal-ish 4-point transform using only shifts and adds);
//  * transformed coefficients (mostly near zero on smooth data) are
//    zigzag-varint coded and deflated.
//
// The precision knob bounds the error relative to each block's
// magnitude: |err| <~ max|block| * 2^(2 - precision + rank).
#pragma once

#include <span>

#include "ndarray/ndarray.hpp"
#include "util/bytes.hpp"

namespace wck {

struct ZfpLikeOptions {
  /// Bits of block-relative precision (8..30). Higher = more accurate,
  /// larger. 26 roughly matches single-precision accuracy per block.
  int precision = 20;
  int deflate_level = 6;
};

/// Compresses with block-relative bounded error (self-describing).
[[nodiscard]] Bytes zfplike_compress(const NdArray<double>& array,
                                     const ZfpLikeOptions& options = {});

/// Inverse of zfplike_compress.
[[nodiscard]] NdArray<double> zfplike_decompress(std::span<const std::byte> data);

}  // namespace wck
