// Error hierarchy shared by all wavelet-ckpt subsystems.
//
// Every failure that crosses a public API boundary is reported by throwing
// one of these types (Core Guidelines I.10). Callers that need to
// distinguish causes (e.g. a corrupted checkpoint vs. an I/O failure)
// catch the specific subclass.
#pragma once

#include <stdexcept>
#include <string>

namespace wck {

/// Base class of all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed an argument that violates a documented precondition.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// A serialized stream (checkpoint payload, DEFLATE bitstream, ...) is
/// malformed: bad magic, impossible lengths, invalid codes.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// Data failed an integrity check (CRC-32 / Adler-32 mismatch,
/// truncation detected past the header).
class CorruptDataError : public Error {
 public:
  explicit CorruptDataError(const std::string& what) : Error(what) {}
};

/// An operating-system I/O operation failed (open/read/write/remove).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An I/O operation did not complete within its deadline (socket
/// read/write/connect past its timeout, a drain that expired). Derives
/// from IoError so callers that only distinguish "I/O trouble" keep
/// working; callers that care (retry layers, connection reapers) catch
/// the subclass.
class TimeoutError : public IoError {
 public:
  explicit TimeoutError(const std::string& what) : IoError(what) {}
};

/// Admitting the request would exceed a configured byte/generation
/// quota. The store is untouched: quota checks run before any commit.
class QuotaExceededError : public Error {
 public:
  explicit QuotaExceededError(const std::string& what) : Error(what) {}
};

/// The service is at its admission limit (bounded in-flight queue) and
/// the backpressure policy rejected the request instead of blocking.
/// Retriable by construction: nothing was written.
class BusyError : public Error {
 public:
  explicit BusyError(const std::string& what) : Error(what) {}
};

/// The named entity (tenant, generation) does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

}  // namespace wck
