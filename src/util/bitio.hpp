// LSB-first bit-level I/O, as required by the DEFLATE bitstream format
// (RFC 1951: data elements are packed starting with the least-significant
// bit of each byte).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wck {

/// Writes bits LSB-first into a growing byte buffer.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::byte>& out) : out_(out) {}

  /// Appends the low `count` bits of `bits` (0 <= count <= 32),
  /// least-significant bit first. `count == 0` writes nothing; counts
  /// outside [0, 32] violate the precondition and throw — `bits & mask`
  /// with a negative or oversized shift would otherwise be undefined.
  void put(std::uint32_t bits, int count) {
    check_count(count);
    if (count == 0) return;
    acc_ |= static_cast<std::uint64_t>(bits & mask(count)) << nbits_;
    nbits_ += count;
    while (nbits_ >= 8) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFFu));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  /// Appends a Huffman code: DEFLATE stores Huffman codes MSB-first, so
  /// the code bits must be reversed before LSB-first packing.
  void put_huffman(std::uint32_t code, int length) { put(reverse(code, length), length); }

  /// Pads with zero bits to the next byte boundary.
  void align_to_byte() {
    if (nbits_ > 0) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFFu));
      acc_ = 0;
      nbits_ = 0;
    }
  }

  /// Number of bits written so far (including unflushed ones).
  [[nodiscard]] std::size_t bit_count() const noexcept { return out_.size() * 8 + nbits_; }

  /// Reverses the low `length` bits of `v`.
  [[nodiscard]] static std::uint32_t reverse(std::uint32_t v, int length) noexcept {
    std::uint32_t r = 0;
    for (int i = 0; i < length; ++i) {
      r = (r << 1) | ((v >> i) & 1u);
    }
    return r;
  }

 private:
  static void check_count(int count) {
    if (count < 0 || count > 32) {
      throw InvalidArgumentError("BitWriter: bit count " + std::to_string(count) +
                                 " outside [0, 32]");
    }
  }

  /// Precondition: 1 <= count <= 32 (0 is handled before masking).
  [[nodiscard]] static std::uint32_t mask(int count) noexcept {
    return count >= 32 ? 0xFFFFFFFFu : ((1u << count) - 1u);
  }

  std::vector<std::byte>& out_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

/// Reads bits LSB-first from a byte span. Throws FormatError past the end.
class BitReader {
 public:
  explicit BitReader(std::span<const std::byte> data) : data_(data) {}

  /// Reads `count` bits (0 <= count <= 32), LSB-first.
  [[nodiscard]] std::uint32_t get(int count) {
    check_count(count);
    fill(count);
    if (nbits_ < count) throw FormatError("bit stream truncated");
    const auto v = static_cast<std::uint32_t>(acc_ & mask(count));
    acc_ >>= count;
    nbits_ -= count;
    return v;
  }

  /// Peeks up to `count` bits without consuming; if fewer remain, the
  /// missing high bits are zero. Used by table-driven Huffman decode.
  [[nodiscard]] std::uint32_t peek(int count) {
    check_count(count);
    fill(count);
    return static_cast<std::uint32_t>(acc_ & mask(count));
  }

  /// Consumes `count` bits previously peeked. Throws if not available.
  void consume(int count) {
    check_count(count);
    if (nbits_ < count) throw FormatError("bit stream truncated");
    acc_ >>= count;
    nbits_ -= count;
  }

  /// Number of whole bits still available.
  [[nodiscard]] std::size_t bits_remaining() const noexcept {
    return nbits_ + 8 * (data_.size() - pos_);
  }

  /// Discards buffered bits to realign on the next byte boundary.
  void align_to_byte() noexcept {
    const int drop = nbits_ % 8;
    acc_ >>= drop;
    nbits_ -= drop;
  }

  /// Copies `size` raw bytes (must be byte-aligned).
  void read_aligned(std::byte* out, std::size_t size) {
    if (nbits_ % 8 != 0) throw FormatError("read_aligned while not byte-aligned");
    while (nbits_ > 0 && size > 0) {
      *out++ = static_cast<std::byte>(acc_ & 0xFFu);
      acc_ >>= 8;
      nbits_ -= 8;
      --size;
    }
    if (size > data_.size() - pos_) throw FormatError("bit stream truncated (raw block)");
    for (std::size_t i = 0; i < size; ++i) *out++ = data_[pos_ + i];
    pos_ += size;
  }

  /// Byte offset of the next unread byte (after align_to_byte()).
  [[nodiscard]] std::size_t byte_position() const noexcept { return pos_ - nbits_ / 8; }

 private:
  static void check_count(int count) {
    if (count < 0 || count > 32) {
      throw InvalidArgumentError("BitReader: bit count " + std::to_string(count) +
                                 " outside [0, 32]");
    }
  }

  void fill(int want) noexcept {
    while (nbits_ < want && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++])) << nbits_;
      nbits_ += 8;
    }
  }

  [[nodiscard]] static std::uint64_t mask(int count) noexcept {
    return count >= 64 ? ~0ull : ((1ull << count) - 1ull);
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

}  // namespace wck
