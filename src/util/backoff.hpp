// Capped exponential backoff with optional jitter — the one retry
// cadence shared by every layer that re-attempts failed work: the
// CheckpointManager's durable commits, the StoreClient's connect and
// request retries, and any future transport. Extracted from the
// manager so client and server cannot drift apart in retry semantics.
//
// The policy is pure data (BackoffPolicy); Backoff is the per-operation
// cursor over it. Delays are deterministic for a given (policy, seed):
// jitter draws from the library's seeded Xoshiro generator, never from
// global randomness, so a soak run's retry schedule is replayable.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "util/rng.hpp"

namespace wck {

/// Retry schedule for transient failures. max_attempts counts every
/// try, including the first (1 = no retry). A jitter_fraction of j
/// scales each delay by a uniform factor in [1-j, 1+j] — decorrelating
/// clients that all lost the same server at the same instant.
struct BackoffPolicy {
  int max_attempts = 4;                ///< total tries (1 = no retry)
  double initial_backoff_seconds = 0.002;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.1;
  bool sleep_between_attempts = true;  ///< false keeps tests instant
  double jitter_fraction = 0.0;        ///< 0 = deterministic ladder
};

/// One operation's walk along a BackoffPolicy ladder.
///
///   Backoff backoff(policy, seed);
///   for (;;) {
///     try { return do_the_thing(); }
///     catch (const IoError&) {
///       if (!backoff.try_again()) throw;   // budget exhausted
///     }
///   }
///
/// try_again() consumes one retry: it returns false once the attempt
/// budget is spent, otherwise sleeps the next (jittered, capped) delay
/// when the policy asks for real sleeps and returns true.
class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy, std::uint64_t jitter_seed = 0) noexcept
      : policy_(policy), rng_(jitter_seed), next_delay_(policy.initial_backoff_seconds) {}

  /// Attempts started so far (the first call to try_again() means
  /// attempt 1 failed).
  [[nodiscard]] int failures() const noexcept { return failures_; }

  /// The delay the next retry would sleep, in seconds (pre-jitter).
  [[nodiscard]] double next_delay_seconds() const noexcept { return next_delay_; }

  /// Consumes one retry from the budget. Returns false when attempts
  /// are exhausted (the caller should rethrow/give up); otherwise
  /// advances the ladder, sleeps if the policy says so, returns true.
  [[nodiscard]] bool try_again() {
    ++failures_;
    if (failures_ >= policy_.max_attempts) return false;
    double delay = next_delay_;
    const double j = std::clamp(policy_.jitter_fraction, 0.0, 1.0);
    if (j > 0.0) delay *= rng_.uniform(1.0 - j, 1.0 + j);
    if (policy_.sleep_between_attempts && delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
    next_delay_ = std::min(next_delay_ * policy_.backoff_multiplier,
                           policy_.max_backoff_seconds);
    return true;
  }

 private:
  const BackoffPolicy policy_;
  Xoshiro256 rng_;
  double next_delay_;
  int failures_ = 0;
};

}  // namespace wck
