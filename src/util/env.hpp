// Process-environment cache: the only sanctioned way to read WCK_*
// environment variables (WCK_THREADS, WCK_TELEMETRY, WCK_EVENT,
// WCK_FAULT_PLAN, WCK_BENCH_JSON, ...).
//
// Why not call std::getenv directly?
//   * std::getenv is not required to be thread-safe against concurrent
//     setenv (clang-tidy's concurrency-mt-unsafe check, re-enabled by
//     this header's introduction, flags every call site).
//   * Subsystems read configuration lazily from worker threads (e.g.
//     the deflate sharding decision, the telemetry enable flag); a
//     cache makes those reads race-free and stable for the process
//     lifetime, which is also the semantic the code wants — flipping
//     WCK_TELEMETRY mid-run was never supported.
//
// Each variable is read from the real environment exactly once, on
// first access, under a lock; later lookups hit the cache. Tests that
// need to vary a variable per test case use set_override() /
// clear_override() (see ScopedEnv in tests/parallel_deflate_test.cpp)
// instead of setenv, which the cache would otherwise mask.
//
// Header-only on purpose: wck_util links against wck_telemetry, and
// telemetry itself needs env lookups — an env .cpp in wck_util would
// create a link cycle.
#pragma once

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "util/thread_annotations.hpp"

namespace wck::env {

namespace detail {

struct Cache {
  wck::Mutex mu;
  // Entries are never erased: nullopt means "looked up, unset".
  std::map<std::string, std::optional<std::string>, std::less<>> values
      WCK_GUARDED_BY(mu);
  std::map<std::string, std::optional<std::string>, std::less<>> overrides
      WCK_GUARDED_BY(mu);
};

inline Cache& cache() {
  static Cache c;  // leaked-by-design lifetime is irrelevant: static, trivial dtor order ok
  return c;
}

}  // namespace detail

/// Cached lookup of `name` in the process environment. The real
/// ::getenv happens at most once per name for the process lifetime;
/// std::nullopt means the variable is unset.
inline std::optional<std::string> get(std::string_view name) {
  detail::Cache& c = detail::cache();
  wck::MutexLock lk(c.mu);
  if (const auto ov = c.overrides.find(name); ov != c.overrides.end()) {
    return ov->second;
  }
  if (const auto it = c.values.find(name); it != c.values.end()) {
    return it->second;
  }
  std::optional<std::string> value;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): the one sanctioned getenv —
  // serialized under c.mu and performed once per variable.
  if (const char* raw = std::getenv(std::string(name).c_str())) {
    value = raw;
  }
  c.values.emplace(std::string(name), value);
  return value;
}

/// Test hook: make get(name) return `value` (nullopt = behave as
/// unset), bypassing both the cache and the real environment.
inline void set_override(std::string_view name, std::optional<std::string> value) {
  detail::Cache& c = detail::cache();
  wck::MutexLock lk(c.mu);
  c.overrides.insert_or_assign(std::string(name), std::move(value));
}

/// Test hook: drop an override; get(name) falls back to the (cached)
/// real environment again.
inline void clear_override(std::string_view name) {
  detail::Cache& c = detail::cache();
  wck::MutexLock lk(c.mu);
  if (const auto it = c.overrides.find(name); it != c.overrides.end()) {
    c.overrides.erase(it);
  }
}

}  // namespace wck::env
