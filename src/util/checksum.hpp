// CRC-32 (IEEE 802.3, as used by gzip) and Adler-32 (as used by zlib).
//
// Both are implemented from scratch; they protect checkpoint records and
// the gzip / zlib containers emitted by the deflate subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace wck {

/// Incremental CRC-32 accumulator (polynomial 0xEDB88320, reflected).
///
/// Usage:
///   Crc32 crc;
///   crc.update(bytes);
///   uint32_t digest = crc.value();
class Crc32 {
 public:
  /// Folds `data` into the running checksum.
  void update(std::span<const std::byte> data) noexcept;
  void update(const void* data, std::size_t size) noexcept;

  /// Finalized CRC of everything seen so far. May be called repeatedly.
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

  /// Resets to the empty-input state.
  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data) noexcept;
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size) noexcept;

/// Incremental Adler-32 accumulator (RFC 1950).
class Adler32 {
 public:
  void update(std::span<const std::byte> data) noexcept;
  void update(const void* data, std::size_t size) noexcept;
  [[nodiscard]] std::uint32_t value() const noexcept { return (b_ << 16) | a_; }
  void reset() noexcept {
    a_ = 1;
    b_ = 0;
  }

 private:
  std::uint32_t a_ = 1;
  std::uint32_t b_ = 0;
};

/// One-shot Adler-32 of a buffer.
[[nodiscard]] std::uint32_t adler32(std::span<const std::byte> data) noexcept;
[[nodiscard]] std::uint32_t adler32(const void* data, std::size_t size) noexcept;

}  // namespace wck
