// Deterministic byte-stream mutation for decoder-robustness testing.
//
// The fuzz driver (tools/wckpt_fuzz.cpp) and the sanitizer decode tests
// (tests/sanitize_decode_test.cpp) share this engine so that every
// corruption a CI run exercises can be reproduced locally from a seed.
// Mutations model the failure classes a checkpoint file actually sees:
// bit rot (flips), short writes (truncation), torn writes (garbage
// tails), and targeted corruption of length/count fields.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace wck {

enum class MutationKind : std::uint8_t {
  kBitFlip = 0,       ///< flip 1..8 random bits anywhere
  kByteSmash,         ///< overwrite 1..4 bytes with random values
  kTruncate,          ///< drop a random-length tail (short write)
  kExtend,            ///< append 1..64 random bytes (torn / doubled write)
  kZeroWindow,        ///< zero a 1..8 byte window (length-field -> 0)
  kSaturateWindow,    ///< set a 1..8 byte window to 0xFF (huge lengths)
  kVarintBloat,       ///< set continuation bits to stretch a varint
  kSliceDelete,       ///< remove an interior slice (framing shift)
  kCount_             ///< sentinel
};

struct Mutation {
  MutationKind kind = MutationKind::kBitFlip;
  std::size_t offset = 0;  ///< first affected byte in the *input* buffer
  std::size_t span = 0;    ///< bytes affected / removed / appended
};

[[nodiscard]] inline const char* mutation_name(MutationKind k) noexcept {
  switch (k) {
    case MutationKind::kBitFlip: return "bit-flip";
    case MutationKind::kByteSmash: return "byte-smash";
    case MutationKind::kTruncate: return "truncate";
    case MutationKind::kExtend: return "extend";
    case MutationKind::kZeroWindow: return "zero-window";
    case MutationKind::kSaturateWindow: return "saturate-window";
    case MutationKind::kVarintBloat: return "varint-bloat";
    case MutationKind::kSliceDelete: return "slice-delete";
    case MutationKind::kCount_: break;
  }
  return "?";
}

[[nodiscard]] inline std::string describe(const Mutation& m) {
  return std::string(mutation_name(m.kind)) + " @" + std::to_string(m.offset) + "+" +
         std::to_string(m.span);
}

/// Applies one random mutation to `data` in place. `region_lo`/`region_hi`
/// (byte offsets, half-open) restrict where the mutation lands, so callers
/// can target one section of a container (header, bitmap, index bytes,
/// DEFLATE body, ...). Never leaves `data` empty unless it started empty.
inline Mutation mutate(Bytes& data, Xoshiro256& rng, std::size_t region_lo = 0,
                       std::size_t region_hi = SIZE_MAX) {
  Mutation m;
  if (data.empty()) return m;
  region_hi = std::min(region_hi, data.size());
  region_lo = std::min(region_lo, region_hi > 0 ? region_hi - 1 : 0);
  const std::size_t region_len = region_hi - region_lo;
  if (region_len == 0) return m;

  m.kind = static_cast<MutationKind>(
      rng.bounded(static_cast<std::uint64_t>(MutationKind::kCount_)));
  m.offset = region_lo + static_cast<std::size_t>(rng.bounded(region_len));

  auto window = [&](std::size_t max_span) {
    const std::size_t want = 1 + static_cast<std::size_t>(rng.bounded(max_span));
    return std::min(want, data.size() - m.offset);
  };

  switch (m.kind) {
    case MutationKind::kBitFlip: {
      m.span = 1 + static_cast<std::size_t>(rng.bounded(8));
      for (std::size_t i = 0; i < m.span; ++i) {
        const std::size_t pos = region_lo + static_cast<std::size_t>(rng.bounded(region_len));
        data[pos] ^= static_cast<std::byte>(1u << rng.bounded(8));
      }
      break;
    }
    case MutationKind::kByteSmash: {
      m.span = window(4);
      for (std::size_t i = 0; i < m.span; ++i) {
        data[m.offset + i] = static_cast<std::byte>(rng.bounded(256));
      }
      break;
    }
    case MutationKind::kTruncate: {
      // Cut anywhere from after the first byte up to dropping the tail.
      m.offset = 1 + static_cast<std::size_t>(rng.bounded(data.size()));
      m.span = data.size() - std::min(m.offset, data.size());
      data.resize(std::min(m.offset, data.size()));
      break;
    }
    case MutationKind::kExtend: {
      m.offset = data.size();
      m.span = 1 + static_cast<std::size_t>(rng.bounded(64));
      for (std::size_t i = 0; i < m.span; ++i) {
        data.push_back(static_cast<std::byte>(rng.bounded(256)));
      }
      break;
    }
    case MutationKind::kZeroWindow: {
      m.span = window(8);
      std::fill_n(data.begin() + static_cast<std::ptrdiff_t>(m.offset), m.span, std::byte{0});
      break;
    }
    case MutationKind::kSaturateWindow: {
      m.span = window(8);
      std::fill_n(data.begin() + static_cast<std::ptrdiff_t>(m.offset), m.span,
                  std::byte{0xFF});
      break;
    }
    case MutationKind::kVarintBloat: {
      // Force continuation bits so a varint parser walks into whatever
      // follows — the classic length-field corruption.
      m.span = window(8);
      for (std::size_t i = 0; i + 1 < m.span; ++i) {
        data[m.offset + i] |= std::byte{0x80};
      }
      break;
    }
    case MutationKind::kSliceDelete: {
      m.span = window(16);
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(m.offset),
                 data.begin() + static_cast<std::ptrdiff_t>(m.offset + m.span));
      if (data.empty()) data.push_back(std::byte{0});
      break;
    }
    case MutationKind::kCount_:
      break;
  }
  return m;
}

}  // namespace wck
