// Little-endian byte-buffer serialization primitives.
//
// ByteWriter appends fixed-width integers, floating-point values and raw
// blobs to a growable buffer; ByteReader consumes them with bounds
// checking and throws FormatError on truncation. All multi-byte values
// are little-endian regardless of host order, so checkpoint payloads are
// portable.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "simd/dispatch.hpp"
#include "util/error.hpp"

namespace wck {

using Bytes = std::vector<std::byte>;

/// Appends primitives to a byte vector (little-endian).
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Writes into an external buffer (appending); the buffer must outlive
  /// the writer.
  explicit ByteWriter(Bytes& external) : buf_(&external) {}

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }
  void f32(float v) { put_le(std::bit_cast<std::uint32_t>(v)); }

  /// Unsigned LEB128 (variable-length) integer.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80u);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  /// Length-prefixed UTF-8 string.
  void str(std::string_view s) {
    varint(s.size());
    raw(s.data(), s.size());
  }

  /// Raw blob, no length prefix.
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::byte*>(data);
    buffer().insert(buffer().end(), p, p + size);
  }
  void raw(std::span<const std::byte> data) { raw(data.data(), data.size()); }

  /// Raw span of doubles (little-endian each), bulk-packed through the
  /// dispatched kernel (the scalar level is memcpy on LE hosts).
  void f64_array(std::span<const double> v) {
    if (v.empty()) return;
    Bytes& buf = buffer();
    const std::size_t old = buf.size();
    buf.resize(old + v.size() * sizeof(double));
    simd::kernels().pack_f64_le(v.data(), v.size(), buf.data() + old);
  }

  [[nodiscard]] Bytes& buffer() noexcept { return buf_ ? *buf_ : owned_; }
  [[nodiscard]] const Bytes& buffer() const noexcept { return buf_ ? *buf_ : owned_; }
  [[nodiscard]] std::size_t size() const noexcept { return buffer().size(); }

  /// Moves the owned buffer out. Precondition: default-constructed writer.
  [[nodiscard]] Bytes take() {
    if (buf_ != nullptr) {
      throw InvalidArgumentError("ByteWriter::take on external buffer");
    }
    return std::move(owned_);
  }

 private:
  template <typename T>
  void put_le(T v) {
    std::byte tmp[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFu);
    }
    raw(tmp, sizeof(T));
  }

  Bytes owned_;
  Bytes* buf_ = nullptr;
};

/// Consumes primitives from a byte span (little-endian) with bounds
/// checking. Throws FormatError when the stream is shorter than a read.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint16_t u16() { return get_le<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return get_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return get_le<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(get_le<std::uint64_t>()); }
  [[nodiscard]] float f32() { return std::bit_cast<float>(get_le<std::uint32_t>()); }

  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t b = u8();
      if (shift >= 63 && (b & 0x7Fu) > 1) {
        throw FormatError("varint overflows 64 bits");
      }
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) return v;
      shift += 7;
      if (shift > 63) throw FormatError("varint too long");
    }
  }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = varint();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Returns a view of the next `size` bytes and advances.
  [[nodiscard]] std::span<const std::byte> raw(std::size_t size) {
    need(size);
    auto out = data_.subspan(pos_, size);
    pos_ += size;
    return out;
  }

  /// Reads `count` little-endian doubles into `out` through the
  /// dispatched unpack kernel.
  void f64_array(std::span<double> out) {
    const auto bytes = raw(out.size() * sizeof(double));
    if (out.empty()) return;  // a null span base is UB to pass even for n == 0
    simd::kernels().unpack_f64_le(bytes.data(), out.size(), out.data());
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw FormatError("byte stream truncated: need " + std::to_string(n) + " bytes, have " +
                        std::to_string(remaining()));
    }
  }

  template <typename T>
  [[nodiscard]] T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Convenience: views any trivially-copyable vector as bytes.
template <typename T>
[[nodiscard]] inline std::span<const std::byte> as_bytes_span(const std::vector<T>& v) noexcept {
  return std::as_bytes(std::span<const T>(v));
}

}  // namespace wck
