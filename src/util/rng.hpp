// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (workload generators, test data,
// the MiniClimate initial perturbations) draw from these generators so
// that every experiment is exactly reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace wck {

/// SplitMix64: used to seed other generators from a single 64-bit seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5EEDC0DE) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (one value per call; the pair's
  /// second member is cached).
  double normal() noexcept {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const auto x = (*this)();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound)) >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace wck
