// Wall-clock timing utilities used by the benchmark harnesses and by the
// compression pipeline's per-stage instrumentation (paper Fig. 9 reports
// a stage-by-stage breakdown of compression time).
//
// StageTimes is a thin adapter over the telemetry subsystem: every
// add() also records into the global "stage.<name>.seconds" histogram,
// so RunReport / BENCH_*.json see the same per-stage numbers without
// any bench-side plumbing. The local map is kept so existing call sites
// (cost model, fig harnesses) need no signature changes.
#pragma once

#include <chrono>
#include <map>
#include <string>

#include "telemetry/metrics.hpp"

namespace wck {

/// A simple monotonic wall-clock stopwatch measuring seconds.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last restart().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named stage durations, e.g. {"wavelet": 1.2e-3, ...}.
class StageTimes {
 public:
  void add(const std::string& stage, double seconds) {
    seconds_[stage] += seconds;
    if (telemetry::enabled()) {
      telemetry::MetricsRegistry::global()
          .histogram("stage." + stage + ".seconds")
          .record(seconds);
    }
  }

  /// Accumulates without recording into telemetry — for derived values
  /// (averages, model outputs) that are not fresh measurements and must
  /// not contaminate the stage histograms.
  void add_local(const std::string& stage, double seconds) { seconds_[stage] += seconds; }

  [[nodiscard]] double get(const std::string& stage) const noexcept {
    const auto it = seconds_.find(stage);
    return it == seconds_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] double total() const noexcept {
    double t = 0.0;
    for (const auto& [_, s] : seconds_) t += s;
    return t;
  }

  [[nodiscard]] const std::map<std::string, double>& by_stage() const noexcept {
    return seconds_;
  }

  /// Merges another accumulation into this one. Merging does not
  /// re-record into telemetry: the source StageTimes already did when
  /// its entries were add()ed.
  void merge(const StageTimes& other) {
    for (const auto& [k, v] : other.by_stage()) seconds_[k] += v;
  }

  void clear() noexcept { seconds_.clear(); }

 private:
  std::map<std::string, double> seconds_;
};

/// RAII helper: measures a scope and adds it to a StageTimes entry.
class ScopedStage {
 public:
  ScopedStage(StageTimes& times, std::string stage)
      : times_(times), stage_(std::move(stage)) {}
  ~ScopedStage() { times_.add(stage_, timer_.seconds()); }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  StageTimes& times_;
  std::string stage_;
  WallTimer timer_;
};

}  // namespace wck
