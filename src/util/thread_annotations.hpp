// Compile-time race detection: Clang Thread Safety Analysis wrappers.
//
// Every mutex/condvar-using subsystem in this codebase expresses its
// lock discipline through the wrappers below instead of naked std::
// primitives, so `-Wthread-safety` (a capability-based static analysis
// built into Clang) can prove at *compile time* that every access to a
// WCK_GUARDED_BY field happens with its mutex held — complementing the
// TSan CI leg, which only sees the interleavings the tests happen to
// exercise. On GCC (and any compiler without the attributes) everything
// degrades to plain std primitives with zero overhead.
//
// Cheat sheet (see TOOLING.md "Compile-time race detection"):
//   wck::Mutex mu_;                         annotated capability
//   T state_ WCK_GUARDED_BY(mu_);           reads/writes need mu_ held
//   MutexLock lk(mu_);                      scoped acquire (RAII)
//   void f() WCK_REQUIRES(mu_);             caller must hold mu_
//   void g() WCK_EXCLUDES(mu_);             caller must NOT hold mu_
//   cv_.wait(lk, [this] { mu_.assert_held(); return pred_; });
//     — predicates run with the lock held, but the analysis cannot see
//       through the lambda boundary; assert_held() tells it so.
//
// The lint rule `naked-mutex` (tools/wck_lint) enforces that no
// std::mutex / std::lock_guard / std::condition_variable appears in
// src/ outside this header, so the analysis can never be bypassed by
// accident.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

// Raw attribute spelling, empty everywhere except Clang. (The analysis
// itself only runs under -Wthread-safety, which CMake enables for Clang
// and CI escalates to -Werror=thread-safety.)
#if defined(__clang__)
#define WCK_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define WCK_THREAD_ANNOTATION__(x)
#endif

#define WCK_CAPABILITY(x) WCK_THREAD_ANNOTATION__(capability(x))
#define WCK_SCOPED_CAPABILITY WCK_THREAD_ANNOTATION__(scoped_lockable)
#define WCK_GUARDED_BY(x) WCK_THREAD_ANNOTATION__(guarded_by(x))
#define WCK_PT_GUARDED_BY(x) WCK_THREAD_ANNOTATION__(pt_guarded_by(x))
#define WCK_ACQUIRED_BEFORE(...) WCK_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define WCK_ACQUIRED_AFTER(...) WCK_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define WCK_REQUIRES(...) WCK_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define WCK_ACQUIRE(...) WCK_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define WCK_RELEASE(...) WCK_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define WCK_TRY_ACQUIRE(...) WCK_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define WCK_EXCLUDES(...) WCK_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define WCK_ASSERT_CAPABILITY(x) WCK_THREAD_ANNOTATION__(assert_capability(x))
#define WCK_RETURN_CAPABILITY(x) WCK_THREAD_ANNOTATION__(lock_returned(x))
#define WCK_NO_THREAD_SAFETY_ANALYSIS WCK_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace wck {

class CondVar;
class MutexLock;

/// std::mutex with the `capability` annotation: fields declared
/// WCK_GUARDED_BY(mu_) may only be touched while mu_ is held, enforced
/// by Clang at compile time. Declare members `mutable Mutex mu_;` so
/// const accessors can lock.
class WCK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WCK_ACQUIRE() { mu_.lock(); }
  void unlock() WCK_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() WCK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op that tells the analysis this mutex is held here. Use at the
  /// top of condition-variable wait predicates (and other lambdas that
  /// demonstrably run under the lock) — the analysis cannot follow a
  /// lambda across the call boundary that invokes it.
  void assert_held() const WCK_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over wck::Mutex (RAII). Replaces both std::lock_guard
/// and std::unique_lock: manual unlock()/lock() are available for the
/// rare drop-the-lock-around-blocking-work pattern, and CondVar waits
/// take a MutexLock directly.
class WCK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WCK_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~MutexLock() WCK_RELEASE() = default;  // unlocks iff still held

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex early (the destructor then does nothing).
  void unlock() WCK_RELEASE() { lk_.unlock(); }
  /// Reacquires after an unlock().
  void lock() WCK_ACQUIRE() { lk_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable over wck::Mutex/MutexLock. The internal
/// release-wait-reacquire is invisible to the analysis (the lock is
/// held on entry and on return, which is all callers may rely on);
/// predicates run under the lock and should open with
/// `mu_.assert_held()` when they read guarded fields.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.lk_); }

  template <typename Pred>
  void wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.lk_, std::move(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(MutexLock& lock, const std::chrono::duration<Rep, Period>& timeout,
                Pred pred) {
    return cv_.wait_for(lock.lk_, timeout, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace wck
