#include "util/checksum.hpp"

#include "simd/dispatch.hpp"

namespace wck {

void Crc32::update(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  state_ = simd::kernels().crc32_update(state_, p, size);
}

void Crc32::update(std::span<const std::byte> data) noexcept {
  update(data.data(), data.size());
}

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  Crc32 c;
  c.update(data, size);
  return c.value();
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  return crc32(data.data(), data.size());
}

void Adler32::update(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  simd::kernels().adler32_update(&a_, &b_, p, size);
}

void Adler32::update(std::span<const std::byte> data) noexcept {
  update(data.data(), data.size());
}

std::uint32_t adler32(const void* data, std::size_t size) noexcept {
  Adler32 a;
  a.update(data, size);
  return a.value();
}

std::uint32_t adler32(std::span<const std::byte> data) noexcept {
  return adler32(data.data(), data.size());
}

}  // namespace wck
