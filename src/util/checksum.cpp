#include "util/checksum.hpp"

#include <array>

namespace wck {
namespace {

// CRC-32 lookup tables for slice-by-4 processing. Generated once at
// startup; the generation itself is the textbook bitwise recurrence.
struct CrcTables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  CrcTables() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const CrcTables& tables() noexcept {
  static const CrcTables kTables;
  return kTables;
}

}  // namespace

void Crc32::update(const void* data, std::size_t size) noexcept {
  const auto& tb = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  // Process 4 bytes at a time (slice-by-4).
  while (size >= 4) {
    c ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
    c = tb.t[3][c & 0xFFu] ^ tb.t[2][(c >> 8) & 0xFFu] ^ tb.t[1][(c >> 16) & 0xFFu] ^
        tb.t[0][(c >> 24) & 0xFFu];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

void Crc32::update(std::span<const std::byte> data) noexcept {
  update(data.data(), data.size());
}

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  Crc32 c;
  c.update(data, size);
  return c.value();
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  return crc32(data.data(), data.size());
}

void Adler32::update(const void* data, std::size_t size) noexcept {
  constexpr std::uint32_t kMod = 65521;
  // Largest n such that 255*n*(n+1)/2 + (n+1)*(kMod-1) fits in 32 bits.
  constexpr std::size_t kBlock = 5552;
  const auto* p = static_cast<const unsigned char*>(data);
  while (size > 0) {
    const std::size_t chunk = size < kBlock ? size : kBlock;
    for (std::size_t i = 0; i < chunk; ++i) {
      a_ += p[i];
      b_ += a_;
    }
    a_ %= kMod;
    b_ %= kMod;
    p += chunk;
    size -= chunk;
  }
}

void Adler32::update(std::span<const std::byte> data) noexcept {
  update(data.data(), data.size());
}

std::uint32_t adler32(const void* data, std::size_t size) noexcept {
  Adler32 a;
  a.update(data, size);
  return a.value();
}

std::uint32_t adler32(std::span<const std::byte> data) noexcept {
  return adler32(data.data(), data.size());
}

}  // namespace wck
