// RankSet: a simulated set of MPI-like ranks inside one process.
//
// The paper evaluates weak scaling with P = 256..2048 processes, each
// holding a constant-size checkpoint (1.5 MB). We do not have a cluster,
// so a RankSet materializes R representative rank states locally (each
// with its own deterministic data), runs per-rank work through a thread
// pool, and lets the cost model (src/iomodel) extrapolate to the full P —
// mirroring the paper's own methodology (Sec. IV-D measures per-process
// compression once and models the aggregate).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace wck {

class RankSet {
 public:
  /// `ranks` simulated ranks, executed on `threads` pool threads.
  explicit RankSet(std::size_t ranks, std::size_t threads = 0)
      : ranks_(ranks), pool_(threads) {}

  [[nodiscard]] std::size_t size() const noexcept { return ranks_; }

  /// Runs fn(rank) for every rank; blocks until all complete.
  void run(const std::function<void(std::size_t)>& fn) {
    pool_.parallel_for(0, ranks_, fn);
  }

  /// Runs fn(rank) and gathers per-rank results.
  template <typename R>
  std::vector<R> map(const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(ranks_);
    pool_.parallel_for(0, ranks_, [&](std::size_t r) { out[r] = fn(r); });
    return out;
  }

  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

 private:
  std::size_t ranks_;
  ThreadPool pool_;
};

}  // namespace wck
