// A fixed-size thread pool with a parallel_for convenience.
//
// The paper compresses each process's checkpoint independently
// ("embarrassingly parallel", Sec. IV-D); within one process we use this
// pool to compress multiple arrays / chunks concurrently.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace wck {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future carries its result/exception.
  /// Dropping the future silently swallows that exception, hence
  /// [[nodiscard]]: callers that truly don't care must say so by
  /// assigning to a variable (and should usually collect and get()).
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    auto fut = task->get_future();
    Job job;
    job.fn = [task] { (*task)(); };
    // Stamp only when telemetry is on: the sentinel (epoch) value tells
    // the worker to skip the queue-wait histogram for this job.
    if (telemetry::enabled()) job.enqueued = Clock::now();
    {
      MutexLock lk(mu_);
      queue_.push_back(std::move(job));
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. The first exception thrown by any iteration is
  /// rethrown on the calling thread.
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t chunks = std::min(n, thread_count() * 4);
    const std::size_t chunk = (n + chunks - 1) / chunks;
    std::vector<std::future<void>> futs;
    futs.reserve(chunks);
    try {
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t lo = begin + c * chunk;
        const std::size_t hi = std::min(end, lo + chunk);
        if (lo >= hi) break;
        futs.push_back(submit([lo, hi, &fn] {
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        }));
      }
    } catch (...) {
      // submit() threw (allocation failure). Already-queued chunks still
      // reference `fn` and this frame; future destructors do not block,
      // so wait for them explicitly before letting the frame unwind.
      for (auto& f : futs) {
        try {
          f.get();
        } catch (...) {  // NOLINT(bugprone-empty-catch)
        }
      }
      throw;
    }
    std::exception_ptr first_error;
    for (auto& f : futs) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    std::function<void()> fn;
    Clock::time_point enqueued{};  // epoch sentinel = not stamped
  };

  void worker_loop() {
    for (;;) {
      Job job;
      {
        MutexLock lk(mu_);
        cv_.wait(lk, [this] {
          mu_.assert_held();
          return stopping_ || !queue_.empty();
        });
        if (stopping_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      if (job.enqueued != Clock::time_point{} && telemetry::enabled()) {
        WCK_HISTOGRAM_RECORD("pool.queue_wait.seconds",
                             std::chrono::duration<double>(Clock::now() - job.enqueued).count());
      }
      job.fn();
      WCK_COUNTER_ADD("pool.tasks_executed", 1);
    }
  }

  Mutex mu_;
  CondVar cv_;
  std::deque<Job> queue_ WCK_GUARDED_BY(mu_);
  // Touched only by the constructing/destructing thread; workers never
  // read it, so it needs no guard.
  std::vector<std::thread> workers_;
  bool stopping_ WCK_GUARDED_BY(mu_) = false;
};

}  // namespace wck
