// Compression-quality analyzer: turns one compression (or one
// compressed-stream/original pair) into a structured, per-band quality
// breakdown — where the lossy pipeline concentrates its error, how much
// of each high-frequency band was quantized, and how the spike
// detection partitioned the coefficient domain.
//
// The paper reports only whole-array error aggregates (Sec. IV-A
// Eq. 5/6); per-band statistics expose the mechanism behind them: with
// a single Haar level on smooth data the HH band carries nearly all of
// the quantization error while LH/HL stay near-exact, and a collapsing
// spike occupancy is the early signal that `d` is mis-sized for the
// data. Cross-cycle drift tracking extends the same lens over a whole
// checkpoint/restart soak.
//
// Results render as a schema-versioned "wck-quality-report" JSON
// document, carried opaquely in RunReport's `quality` section or
// emitted standalone by `wckpt analyze`.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/compressor.hpp"
#include "ndarray/ndarray.hpp"
#include "stats/error_metrics.hpp"
#include "telemetry/json.hpp"

namespace wck::quality {

/// Quality of one high-frequency band of one compression.
struct BandQuality {
  std::string name;        ///< band_name(), e.g. "l1.HL"
  int level = 0;           ///< 1-based transform level
  unsigned axis_mask = 0;  ///< bit ax set = high half of axis ax
  std::size_t count = 0;       ///< coefficients in the band
  std::size_t quantized = 0;   ///< of which mapped to averages-table indexes
  ErrorStats error;            ///< coefficient-domain error (orig vs stored)

  [[nodiscard]] double quantized_fraction() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(quantized) / static_cast<double>(count);
  }
};

/// Spike-partition view of the quantization scheme (paper Eq. 4).
struct SpikeQuality {
  int partitions = 0;   ///< d-grid size (0 = simple quantizer, no grid)
  int occupied = 0;     ///< partitions detected as spike
  double quant_min = 0.0;   ///< span simple quantization was applied over
  double quant_max = 0.0;
  double domain_min = 0.0;  ///< full coefficient domain
  double domain_max = 0.0;
  std::size_t averages = 0;  ///< representative-value table size

  [[nodiscard]] double occupancy() const noexcept {
    return partitions == 0 ? 0.0
                           : static_cast<double>(occupied) / static_cast<double>(partitions);
  }
};

/// Rate/distortion record for one compressed variable.
struct VariableQuality {
  std::string name;
  std::string shape;              ///< e.g. "[1156x82x2]"
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;  ///< 0 when unknown (probe path)
  double bits_per_value = 0.0;       ///< 0 when compressed_bytes unknown
  bool has_value_error = false;
  ErrorStats value_error;         ///< value-domain error (pair path only)
  ErrorStats coefficient_error;   ///< all high bands combined
  std::vector<BandQuality> bands; ///< canonical order (level, then mask)
  SpikeQuality spike;
  bool has_spike = false;

  [[nodiscard]] telemetry::Json to_json() const;
};

/// Cross-cycle error-drift tracker: records one error summary per
/// checkpoint cycle and keeps a bounded reservoir of sample points plus
/// exact first/last/worst aggregates, so a 10^5-cycle soak still
/// renders as a small document.
class DriftTracker {
 public:
  static constexpr std::size_t kMaxPoints = 256;

  struct Point {
    std::uint64_t cycle = 0;
    double mean_rel = 0.0;
    double rmse = 0.0;
    double psnr = 0.0;
  };

  void record(std::uint64_t cycle, const ErrorStats& error);

  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }

  /// {"cycles":N,"first":{...},"last":{...},"worst":{...},"points":[...]}
  /// or null when nothing was recorded.
  [[nodiscard]] telemetry::Json to_json() const;

 private:
  std::uint64_t cycles_ = 0;
  Point first_;
  Point last_;
  Point worst_;  ///< highest mean_rel
  std::vector<Point> points_;
  std::size_t stride_ = 1;  ///< keep every stride-th cycle; doubles when full
};

/// The full quality document ("wck-quality-report" v1).
struct QualityReport {
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "wck-quality-report";

  std::vector<VariableQuality> variables;
  telemetry::Json drift;  ///< DriftTracker::to_json(), null when absent

  [[nodiscard]] telemetry::Json to_json() const;
  [[nodiscard]] std::string to_json_text(int indent = 1) const;

  /// Human-readable band table (the CLI text path).
  [[nodiscard]] std::string to_text() const;
};

/// Analyzes an (original, reconstructed) pair through the transform
/// configured in `params`: both arrays are forward-transformed, the
/// high-frequency coefficients compared per band, and the quantization
/// scheme deterministically re-derived from the original's coefficients
/// for quantized-fraction and spike occupancy. `compressed_bytes` (when
/// nonzero) fills the rate side of the record. Shapes must match.
[[nodiscard]] VariableQuality analyze_pair(const NdArray<double>& original,
                                           const NdArray<double>& reconstructed,
                                           const CompressionParams& params,
                                           std::string name = "array",
                                           std::size_t compressed_bytes = 0);

/// CompressionObserver that captures a VariableQuality per compress()
/// call, without a decompression pass: the stored value of each
/// coefficient is known at compress time (its quantization average, or
/// itself when exact), so the coefficient-domain comparison is exact.
/// Not thread-safe; attach one probe per compressing thread.
class QualityProbe final : public CompressionObserver {
 public:
  explicit QualityProbe(std::string variable_name = "array");

  void on_compress(const NdArray<double>& original, const WaveletPlan& plan,
                   std::span<const double> high,
                   const QuantizationScheme& scheme) override;

  /// One entry per observed compress() call, in call order.
  [[nodiscard]] const std::vector<VariableQuality>& variables() const noexcept {
    return variables_;
  }

  /// Moves the captured records into a QualityReport and clears the probe.
  [[nodiscard]] QualityReport take_report();

 private:
  std::string variable_name_;
  std::vector<VariableQuality> variables_;
};

}  // namespace wck::quality
