#include "quality/quality.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "util/error.hpp"
#include "wavelet/haar.hpp"
#include "wavelet/transform.hpp"

namespace wck::quality {
namespace {

using telemetry::Json;

/// Non-finite doubles (psnr on exact bands) serialize as JSON null.
Json finite_or_null(double v) { return std::isfinite(v) ? Json(v) : Json(); }

Json error_stats_json(const ErrorStats& e) {
  Json::Object o;
  o["mean_rel"] = e.mean_rel;
  o["max_rel"] = e.max_rel;
  o["max_abs"] = e.max_abs;
  o["rmse"] = e.rmse;
  o["psnr"] = finite_or_null(e.psnr);
  o["value_range"] = e.value_range;
  o["count"] = static_cast<double>(e.count);
  return Json(std::move(o));
}

/// Shared core of the probe and pair paths: per-band grouping of the
/// original vs stored coefficient sequences (both in canonical
/// for_each_high_band order) plus the scheme-level spike view.
VariableQuality analyze_coefficients(const WaveletPlan& plan,
                                     std::span<const double> orig_high,
                                     std::span<const double> stored_high,
                                     const QuantizationScheme& scheme) {
  struct Buf {
    std::vector<double> orig;
    std::vector<double> stored;
    std::size_t quantized = 0;
  };
  // std::map keys sort by (level, mask) — the canonical band order.
  std::map<std::pair<int, unsigned>, Buf> bufs;
  for_each_high_band_id(plan, [&](std::size_t i, int level, unsigned mask) {
    Buf& b = bufs[{level, mask}];
    b.orig.push_back(orig_high[i]);
    b.stored.push_back(stored_high[i]);
    if (scheme.classify(orig_high[i]) >= 0) ++b.quantized;
  });

  VariableQuality vq;
  vq.shape = plan.shape().to_string();
  vq.original_bytes = plan.shape().size() * sizeof(double);
  vq.coefficient_error = relative_error(orig_high, stored_high);
  for (auto& [key, buf] : bufs) {
    BandQuality band;
    band.level = key.first;
    band.axis_mask = key.second;
    band.name = band_name(band.level, band.axis_mask, plan.shape().rank());
    band.count = buf.orig.size();
    band.quantized = buf.quantized;
    band.error = relative_error(buf.orig, buf.stored);
    vq.bands.push_back(std::move(band));
  }

  vq.has_spike = !scheme.empty();
  if (vq.has_spike) {
    vq.spike.partitions = static_cast<int>(scheme.spike_mask().size());
    for (const bool in_spike : scheme.spike_mask()) {
      if (in_spike) ++vq.spike.occupied;
    }
    vq.spike.quant_min = scheme.quant_min();
    vq.spike.quant_max = scheme.quant_max();
    vq.spike.domain_min = scheme.domain_min();
    vq.spike.domain_max = scheme.domain_max();
    vq.spike.averages = scheme.averages().size();
  }
  return vq;
}

/// Stored value of one coefficient under `scheme`: its representative
/// average when quantized, itself when kept exact.
double stored_value(const QuantizationScheme& scheme, double v) {
  const int idx = scheme.classify(v);
  return idx >= 0 ? scheme.averages()[static_cast<std::size_t>(idx)] : v;
}

}  // namespace

Json VariableQuality::to_json() const {
  Json::Object o;
  o["name"] = name;
  o["shape"] = shape;
  o["original_bytes"] = static_cast<double>(original_bytes);
  o["compressed_bytes"] = static_cast<double>(compressed_bytes);
  o["bits_per_value"] = bits_per_value;
  if (has_value_error) o["value_error"] = error_stats_json(value_error);
  o["coefficient_error"] = error_stats_json(coefficient_error);

  Json::Array bands_a;
  for (const BandQuality& b : bands) {
    Json::Object bo;
    bo["name"] = b.name;
    bo["level"] = b.level;
    bo["axis_mask"] = static_cast<double>(b.axis_mask);
    bo["count"] = static_cast<double>(b.count);
    bo["quantized"] = static_cast<double>(b.quantized);
    bo["quantized_fraction"] = b.quantized_fraction();
    bo["error"] = error_stats_json(b.error);
    bo["psnr"] = finite_or_null(b.error.psnr);
    bands_a.push_back(Json(std::move(bo)));
  }
  o["bands"] = Json(std::move(bands_a));

  if (has_spike) {
    Json::Object so;
    so["partitions"] = spike.partitions;
    so["occupied"] = spike.occupied;
    so["occupancy"] = spike.occupancy();
    so["quant_min"] = spike.quant_min;
    so["quant_max"] = spike.quant_max;
    so["domain_min"] = spike.domain_min;
    so["domain_max"] = spike.domain_max;
    so["averages"] = static_cast<double>(spike.averages);
    o["spike"] = Json(std::move(so));
  }
  return Json(std::move(o));
}

void DriftTracker::record(std::uint64_t cycle, const ErrorStats& error) {
  Point p;
  p.cycle = cycle;
  p.mean_rel = error.mean_rel;
  p.rmse = error.rmse;
  p.psnr = error.psnr;
  if (cycles_ == 0) first_ = p;
  last_ = p;
  if (cycles_ == 0 || p.mean_rel > worst_.mean_rel) worst_ = p;
  if (cycles_ % stride_ == 0) {
    if (points_.size() >= kMaxPoints) {
      // Decimate: keep every other point and double the stride, so the
      // reservoir stays bounded while spanning the whole run.
      std::vector<Point> kept;
      kept.reserve(points_.size() / 2);
      for (std::size_t i = 0; i < points_.size(); i += 2) kept.push_back(points_[i]);
      points_ = std::move(kept);
      stride_ *= 2;
      if ((cycles_ % stride_) == 0) points_.push_back(p);
    } else {
      points_.push_back(p);
    }
  }
  ++cycles_;
}

Json DriftTracker::to_json() const {
  if (cycles_ == 0) return Json();
  const auto point_json = [](const Point& p) {
    Json::Object o;
    o["cycle"] = static_cast<double>(p.cycle);
    o["mean_rel"] = p.mean_rel;
    o["rmse"] = p.rmse;
    o["psnr"] = finite_or_null(p.psnr);
    return Json(std::move(o));
  };
  Json::Object o;
  o["cycles"] = static_cast<double>(cycles_);
  o["first"] = point_json(first_);
  o["last"] = point_json(last_);
  o["worst"] = point_json(worst_);
  Json::Array pts;
  for (const Point& p : points_) pts.push_back(point_json(p));
  o["points"] = Json(std::move(pts));
  return Json(std::move(o));
}

Json QualityReport::to_json() const {
  Json::Object doc;
  doc["schema"] = kSchemaName;
  doc["schema_version"] = kSchemaVersion;
  Json::Array vars;
  for (const VariableQuality& v : variables) vars.push_back(v.to_json());
  doc["variables"] = Json(std::move(vars));
  if (!drift.is_null()) doc["drift"] = drift;
  return Json(std::move(doc));
}

std::string QualityReport::to_json_text(int indent) const { return to_json().dump(indent); }

std::string QualityReport::to_text() const {
  std::string out;
  char buf[192];
  const auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
    out.push_back('\n');
  };
  for (const VariableQuality& v : variables) {
    line("%s %s", v.name.c_str(), v.shape.c_str());
    if (v.compressed_bytes != 0) {
      line("  %-18s %zu -> %zu bytes (%.3f bits/value)", "size", v.original_bytes,
           v.compressed_bytes, v.bits_per_value);
    }
    if (v.has_value_error) {
      line("  %-18s mean_rel %.3e  max_rel %.3e  rmse %.3e  psnr %.2f dB", "value error",
           v.value_error.mean_rel, v.value_error.max_rel, v.value_error.rmse,
           v.value_error.psnr);
    }
    for (const BandQuality& b : v.bands) {
      line("  band %-8s %8zu coeffs  %5.1f %% quantized  rmse %.3e  psnr %7.2f dB",
           b.name.c_str(), b.count, 100.0 * b.quantized_fraction(), b.error.rmse,
           b.error.psnr);
    }
    if (v.has_spike && v.spike.partitions > 0) {
      line("  spike %d/%d partitions occupied (%.1f %%), quant span [%g, %g] of [%g, %g]",
           v.spike.occupied, v.spike.partitions, 100.0 * v.spike.occupancy(),
           v.spike.quant_min, v.spike.quant_max, v.spike.domain_min, v.spike.domain_max);
    }
  }
  return out;
}

VariableQuality analyze_pair(const NdArray<double>& original,
                             const NdArray<double>& reconstructed,
                             const CompressionParams& params, std::string name,
                             std::size_t compressed_bytes) {
  if (original.shape() != reconstructed.shape()) {
    throw InvalidArgumentError("analyze_pair: shapes differ (" +
                               original.shape().to_string() + " vs " +
                               reconstructed.shape().to_string() + ")");
  }
  if (original.size() == 0) throw InvalidArgumentError("analyze_pair: empty array");

  const WaveletPlan plan = WaveletPlan::create(original.shape(), params.wavelet_levels);

  NdArray<double> orig_t = original;
  NdArray<double> recon_t = reconstructed;
  wavelet_forward(orig_t.view(), params.wavelet, params.wavelet_levels);
  wavelet_forward(recon_t.view(), params.wavelet, params.wavelet_levels);

  std::vector<double> orig_high;
  std::vector<double> recon_high;
  orig_high.reserve(plan.high_count());
  recon_high.reserve(plan.high_count());
  for_each_high_band(orig_t.view(), plan.final_low_extents(),
                     [&orig_high](double& v) { orig_high.push_back(v); });
  for_each_high_band(recon_t.view(), plan.final_low_extents(),
                     [&recon_high](double& v) { recon_high.push_back(v); });

  // Quantization analysis is deterministic in (values, config), so the
  // compress-time scheme is reproducible from the original alone.
  const QuantizationScheme scheme =
      QuantizationScheme::analyze(orig_high, params.quantizer);

  VariableQuality vq = analyze_coefficients(plan, orig_high, recon_high, scheme);
  vq.name = std::move(name);
  vq.compressed_bytes = compressed_bytes;
  if (compressed_bytes != 0) {
    vq.bits_per_value =
        8.0 * static_cast<double>(compressed_bytes) / static_cast<double>(original.size());
  }
  vq.has_value_error = true;
  vq.value_error = relative_error(original.values(), reconstructed.values());
  return vq;
}

QualityProbe::QualityProbe(std::string variable_name)
    : variable_name_(std::move(variable_name)) {}

void QualityProbe::on_compress(const NdArray<double>& original, const WaveletPlan& plan,
                               std::span<const double> high,
                               const QuantizationScheme& scheme) {
  (void)original;
  std::vector<double> stored;
  stored.reserve(high.size());
  for (const double v : high) stored.push_back(stored_value(scheme, v));

  VariableQuality vq = analyze_coefficients(plan, high, stored, scheme);
  vq.name = variables_.empty()
                ? variable_name_
                : variable_name_ + "#" + std::to_string(variables_.size());
  variables_.push_back(std::move(vq));
}

QualityReport QualityProbe::take_report() {
  QualityReport report;
  report.variables = std::move(variables_);
  variables_.clear();
  return report;
}

}  // namespace wck::quality
