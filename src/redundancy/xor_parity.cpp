#include "redundancy/xor_parity.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace wck {

ParityBlock xor_encode(std::span<const Bytes> payloads) {
  if (payloads.empty()) throw InvalidArgumentError("xor_encode: empty group");
  ParityBlock pb;
  std::size_t max_size = 0;
  for (const Bytes& p : payloads) max_size = std::max(max_size, p.size());
  pb.parity.assign(max_size, std::byte{0});
  pb.sizes.reserve(payloads.size());
  for (const Bytes& p : payloads) {
    pb.sizes.push_back(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) pb.parity[i] ^= p[i];
  }
  return pb;
}

Bytes xor_recover(const ParityBlock& parity, std::span<const Bytes> payloads,
                  std::size_t missing_index) {
  if (payloads.size() != parity.sizes.size()) {
    throw InvalidArgumentError("xor_recover: group size mismatch");
  }
  if (missing_index >= payloads.size()) {
    throw InvalidArgumentError("xor_recover: missing index out of range");
  }
  Bytes out = parity.parity;
  for (std::size_t r = 0; r < payloads.size(); ++r) {
    if (r == missing_index) continue;
    if (payloads[r].size() != parity.sizes[r]) {
      throw InvalidArgumentError("xor_recover: payload " + std::to_string(r) +
                                 " size does not match parity metadata");
    }
    for (std::size_t i = 0; i < payloads[r].size(); ++i) out[i] ^= payloads[r][i];
  }
  out.resize(parity.sizes[missing_index]);
  return out;
}

InMemoryCheckpointStore::InMemoryCheckpointStore(std::size_t ranks, std::size_t group_size)
    : ranks_(ranks),
      group_size_(group_size),
      payloads_(ranks),
      parities_((ranks + group_size - 1) / std::max<std::size_t>(group_size, 1)),
      stored_(ranks, false) {
  if (ranks == 0) throw InvalidArgumentError("store: need at least one rank");
  if (group_size < 2) throw InvalidArgumentError("store: parity groups need >= 2 ranks");
}

// Rank-count and group layout are fixed at construction, so the range
// check itself needs no lock; everything touching payloads_/stored_/
// parities_ runs under mu_ (rank threads share one store).
void InMemoryCheckpointStore::check_rank(std::size_t rank) const {
  if (rank >= ranks_) throw InvalidArgumentError("store: rank out of range");
}

std::size_t InMemoryCheckpointStore::group_of(std::size_t rank) const {
  check_rank(rank);
  return rank / group_size_;
}

std::pair<std::size_t, std::size_t> InMemoryCheckpointStore::group_range(
    std::size_t group) const {
  const std::size_t begin = group * group_size_;
  const std::size_t end = std::min(begin + group_size_, ranks_);
  return {begin, end};
}

void InMemoryCheckpointStore::store(std::size_t rank, Bytes payload) {
  check_rank(rank);
  const MutexLock lock(mu_);
  payloads_[rank] = std::move(payload);
  stored_[rank] = true;
  refresh_group_parity(group_of(rank));
}

void InMemoryCheckpointStore::refresh_group_parity(std::size_t group) {
  const auto [begin, end] = group_range(group);
  std::vector<Bytes> members;
  members.reserve(end - begin);
  for (std::size_t r = begin; r < end; ++r) {
    members.push_back(payloads_[r].value_or(Bytes{}));
  }
  parities_[group] = xor_encode(members);
}

void InMemoryCheckpointStore::fail_rank(std::size_t rank) {
  check_rank(rank);
  const MutexLock lock(mu_);
  payloads_[rank].reset();
}

bool InMemoryCheckpointStore::rank_alive(std::size_t rank) const {
  check_rank(rank);
  const MutexLock lock(mu_);
  return payloads_[rank].has_value();
}

std::optional<Bytes> InMemoryCheckpointStore::retrieve(std::size_t rank) const {
  check_rank(rank);
  const MutexLock lock(mu_);
  if (payloads_[rank].has_value()) return payloads_[rank];
  if (!stored_[rank]) return std::nullopt;  // never had a checkpoint

  // Reconstruct from the parity group: possible iff every other member
  // of the group is alive.
  const std::size_t group = group_of(rank);
  const auto [begin, end] = group_range(group);
  std::vector<Bytes> members;
  members.reserve(end - begin);
  for (std::size_t r = begin; r < end; ++r) {
    if (r != rank && !payloads_[r].has_value() && stored_[r]) {
      return std::nullopt;  // double failure in the group
    }
    members.push_back(payloads_[r].value_or(Bytes{}));
  }
  return xor_recover(parities_[group], members, rank - begin);
}

std::size_t InMemoryCheckpointStore::stored_bytes() const {
  const MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& p : payloads_) {
    if (p.has_value()) n += p->size();
  }
  for (const auto& pb : parities_) n += pb.parity.size();
  return n;
}

}  // namespace wck
