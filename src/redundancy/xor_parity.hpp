// RAID-5-style XOR parity for in-memory checkpoint redundancy.
//
// The paper's related work (Sec. V, refs [27]-[29]) improves checkpoint
// time by an order of magnitude by keeping checkpoints in peer memory
// with RAID-5 encoding instead of writing to storage. This subsystem
// implements that substrate: ranks are organized into parity groups;
// each group stores one XOR parity block, and any single lost rank's
// checkpoint is reconstructed from its group peers plus the parity.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/bytes.hpp"
#include "util/thread_annotations.hpp"

namespace wck {

/// Parity of a group of (possibly different-sized) payloads.
struct ParityBlock {
  Bytes parity;                    ///< XOR over zero-padded payloads
  std::vector<std::size_t> sizes;  ///< original payload sizes
};

/// Computes the XOR parity across payloads (at least one).
[[nodiscard]] ParityBlock xor_encode(std::span<const Bytes> payloads);

/// Reconstructs the payload at `missing_index` from the other payloads
/// and the parity. The `payloads` span must contain the surviving
/// payloads at their original indices; the entry at missing_index is
/// ignored. Throws InvalidArgumentError on inconsistent inputs.
[[nodiscard]] Bytes xor_recover(const ParityBlock& parity,
                                std::span<const Bytes> payloads, std::size_t missing_index);

/// A simulated in-memory checkpoint store over R ranks with parity
/// groups of `group_size`: each rank holds its own checkpoint; each
/// group holds one parity block. One lost rank per group is recoverable.
/// Thread-safe — rank threads store/retrieve concurrently (the
/// distributed driver shares one store across all ranks).
class InMemoryCheckpointStore {
 public:
  InMemoryCheckpointStore(std::size_t ranks, std::size_t group_size);

  [[nodiscard]] std::size_t rank_count() const noexcept { return ranks_; }
  [[nodiscard]] std::size_t group_of(std::size_t rank) const;

  /// Stores rank `r`'s checkpoint payload and refreshes its group parity.
  void store(std::size_t rank, Bytes payload);

  /// Simulates the loss of a rank's memory.
  void fail_rank(std::size_t rank);

  /// True while the rank's own copy is held (false after fail_rank —
  /// retrieve() would have to reconstruct).
  [[nodiscard]] bool rank_alive(std::size_t rank) const;

  /// The payload of `rank`: directly if alive, otherwise reconstructed
  /// via parity. Returns nullopt when reconstruction is impossible
  /// (two failures in one group, or nothing stored).
  [[nodiscard]] std::optional<Bytes> retrieve(std::size_t rank) const;

  /// Total bytes held (payloads + parity) — the memory overhead metric.
  [[nodiscard]] std::size_t stored_bytes() const;

 private:
  void refresh_group_parity(std::size_t group) WCK_REQUIRES(mu_);
  [[nodiscard]] std::pair<std::size_t, std::size_t> group_range(std::size_t group) const;
  void check_rank(std::size_t rank) const;

  // Rank count and group layout are fixed at construction — no guard.
  const std::size_t ranks_;
  const std::size_t group_size_;

  mutable Mutex mu_;
  std::vector<std::optional<Bytes>> payloads_ WCK_GUARDED_BY(mu_);  ///< nullopt = failed/absent
  std::vector<ParityBlock> parities_ WCK_GUARDED_BY(mu_);
  /// rank ever stored (distinguishes failed from empty)
  std::vector<bool> stored_ WCK_GUARDED_BY(mu_);
};

}  // namespace wck
