#include "server/observe.hpp"

#include <cstdio>
#include <string>
#include <variant>

#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace wck::server {
namespace {

using telemetry::MetricsRegistry;

/// Request+reply sizes land here: log-spaced bytes from 64 B to 64 MiB
/// (a put of kMaxFramePayload overflows into the +Inf bucket, which is
/// fine — quantiles clamp to the observed max).
std::span<const double> byte_bounds() noexcept {
  static constexpr double kBounds[] = {64.0,     256.0,      1024.0,     4096.0,
                                       16384.0,  65536.0,    262144.0,   1048576.0,
                                       4194304.0, 16777216.0, 67108864.0};
  return kBounds;
}

struct RequestInfo {
  net::MessageType type;
  const char* type_name;    ///< metric segment: "ping", "put", ...
  const char* span_name;    ///< "server.rpc.<type>"
  std::string_view tenant;
  std::uint64_t step;
  telemetry::TraceContext trace;
};

RequestInfo info_of(const net::AnyMessage& request) noexcept {
  if (const auto* put = std::get_if<net::PutRequest>(&request)) {
    return {net::MessageType::kPut, "put", "server.rpc.put", put->tenant, put->step,
            put->trace};
  }
  if (const auto* get = std::get_if<net::GetRequest>(&request)) {
    return {net::MessageType::kGet, "get", "server.rpc.get", get->tenant, 0, get->trace};
  }
  if (const auto* stat = std::get_if<net::StatRequest>(&request)) {
    return {net::MessageType::kStat, "stat", "server.rpc.stat", stat->tenant, 0, stat->trace};
  }
  if (const auto* ping = std::get_if<net::PingRequest>(&request)) {
    return {net::MessageType::kPing, "ping", "server.rpc.ping", {}, 0, ping->trace};
  }
  if (const auto* shutdown = std::get_if<net::ShutdownRequest>(&request)) {
    return {net::MessageType::kShutdown, "shutdown", "server.rpc.shutdown", {}, 0,
            shutdown->trace};
  }
  // A response type sent at the server; the dispatcher answers
  // kBadRequest, and the scope files it under "ping" accounting.
  return {net::MessageType::kPing, "ping", "server.rpc.ping", {}, 0, {}};
}

void record_rpc_metrics(net::MessageType type, double seconds, double bytes, bool error) {
  // One switch per metric family keeps every name a literal (cacheable
  // function-local static, and visible to the metric-name lint).
  switch (type) {
    case net::MessageType::kPut: {
      WCK_HISTOGRAM_RECORD("server.rpc.put.seconds", seconds);
      static telemetry::Histogram& put_bytes =
          MetricsRegistry::global().histogram("server.rpc.put.bytes", byte_bounds());
      put_bytes.record(bytes);
      if (error) WCK_COUNTER_ADD("server.rpc.put.errors", 1);
      break;
    }
    case net::MessageType::kGet: {
      WCK_HISTOGRAM_RECORD("server.rpc.get.seconds", seconds);
      static telemetry::Histogram& get_bytes =
          MetricsRegistry::global().histogram("server.rpc.get.bytes", byte_bounds());
      get_bytes.record(bytes);
      if (error) WCK_COUNTER_ADD("server.rpc.get.errors", 1);
      break;
    }
    case net::MessageType::kStat: {
      WCK_HISTOGRAM_RECORD("server.rpc.stat.seconds", seconds);
      static telemetry::Histogram& stat_bytes =
          MetricsRegistry::global().histogram("server.rpc.stat.bytes", byte_bounds());
      stat_bytes.record(bytes);
      if (error) WCK_COUNTER_ADD("server.rpc.stat.errors", 1);
      break;
    }
    case net::MessageType::kShutdown: {
      WCK_HISTOGRAM_RECORD("server.rpc.shutdown.seconds", seconds);
      if (error) WCK_COUNTER_ADD("server.rpc.shutdown.errors", 1);
      break;
    }
    default: {
      WCK_HISTOGRAM_RECORD("server.rpc.ping.seconds", seconds);
      if (error) WCK_COUNTER_ADD("server.rpc.ping.errors", 1);
      break;
    }
  }
}

}  // namespace

ServerRpcScope::ServerRpcScope(const net::AnyMessage& request, std::size_t request_bytes,
                               int slow_request_ms) {
  if (!telemetry::enabled()) return;
  active_ = true;
  const RequestInfo info = info_of(request);
  type_ = info.type;
  type_name_ = info.type_name;
  tenant_ = info.tenant;
  step_ = info.step;
  request_bytes_ = request_bytes;
  slow_request_ms_ = slow_request_ms;
  if (info.trace.active()) {
    // Continue the client's trace: same trace_id, a fresh server-side
    // span id, parented to the client's RPC span.
    ctx_ = telemetry::TraceContext{info.trace.trace_id, telemetry::next_span_id(),
                                   info.trace.span_id};
  }
  span_.emplace(info.span_name, ctx_);
  start_us_ = telemetry::Tracer::global().now_us();
}

ServerRpcScope::~ServerRpcScope() {
  if (active_ && !finished_) finish(0, false);
}

void ServerRpcScope::finish(std::size_t reply_bytes, bool error_reply) noexcept {
  if (!active_ || finished_) return;
  finished_ = true;
  const double dur_us = telemetry::Tracer::global().now_us() - start_us_;
  const double seconds = dur_us / 1e6;
  record_rpc_metrics(type_, seconds,
                     static_cast<double>(request_bytes_ + reply_bytes), error_reply);
  const double ms = dur_us / 1e3;
  if (slow_request_ms_ >= 0 && ms >= static_cast<double>(slow_request_ms_)) {
    try {
      char ms_buf[32];
      std::snprintf(ms_buf, sizeof ms_buf, "%.3f", ms);
      // The detail is itself a JSON object, string-encoded inside the
      // event line; consumers json-parse the "detail" field again.
      std::string detail = "{\"tenant\":\"";
      detail += tenant_;
      detail += "\",\"type\":\"";
      detail += type_name_;
      detail += "\",\"trace_id\":\"";
      detail += telemetry::trace_id_hex(ctx_.trace_id);
      detail += "\",\"ms\":";
      detail += ms_buf;
      detail += ",\"req_bytes\":";
      detail += std::to_string(request_bytes_);
      detail += ",\"resp_bytes\":";
      detail += std::to_string(reply_bytes);
      detail += ",\"error\":";
      detail += error_reply ? "true" : "false";
      detail += "}";
      WCK_EVENT(kServerSlowRequest, step_, std::move(detail));
    } catch (...) {
      // Slow-request logging is best-effort; an OOM here must not turn
      // a served RPC into a crashed connection.
    }
  }
}

void add_tenant_counter(std::string_view tenant, const char* what, std::uint64_t delta) {
  if (!telemetry::enabled() || tenant.empty()) return;
  std::string name = "server.tenant.";
  name += tenant;
  name += '.';
  name += what;
  MetricsRegistry::global().counter(name).add(delta);
}

void set_tenant_gauge(std::string_view tenant, const char* what, double value) {
  if (!telemetry::enabled() || tenant.empty()) return;
  std::string name = "server.tenant.";
  name += tenant;
  name += '.';
  name += what;
  MetricsRegistry::global().gauge(name).set(value);
}

}  // namespace wck::server
