// CheckpointService — the multi-tenant store core behind `wckpt serve`.
//
// Each tenant is an isolated namespace: its own directory under the
// service root, its own CheckpointManager (keep-K rotation, CRC
// manifest, retry/backoff, scrub quarantine — the whole resilience
// stack from src/ckpt) and its own byte quota. The service itself adds
// the two policies a shared store needs on top:
//
//   * Admission control — a bounded count of in-flight requests,
//     either blocking arrivals (kBlock) or rejecting the newest with a
//     typed BusyError (kRejectNewest). Same semantics as the
//     AsyncCheckpointWriter queue, applied at the service boundary.
//   * Put coalescing — per tenant, at most one put runs and at most
//     one waits. A third put supersedes the parked one (checkpoints
//     are snapshots: the newest state is the only one worth the I/O),
//     and the superseded caller gets a BusyError — loud, typed, never
//     a silently dropped checkpoint.
//
// The service is transport-agnostic: StoreServer (server.hpp) speaks
// the wire protocol and calls straight into these methods, and tests
// exercise quota/coalescing logic without a socket in sight.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ckpt/codec.hpp"
#include "ckpt/manager.hpp"
#include "net/protocol.hpp"
#include "util/thread_annotations.hpp"

namespace wck::server {

/// What happens to a request that arrives while max_inflight requests
/// are already executing.
enum class AdmissionPolicy : std::uint8_t {
  kBlock,         ///< wait for a slot (backpressure by blocking)
  kRejectNewest,  ///< throw BusyError immediately (client retries)
};

struct CheckpointServiceOptions {
  /// Tenant directories live directly under this root.
  std::filesystem::path root;
  /// Per-tenant keep-K rotation depth (CheckpointManager).
  std::size_t keep_generations = 3;
  /// Per-tenant byte quota over committed generations; 0 = unlimited.
  std::uint64_t tenant_quota_bytes = 0;
  /// Requests executing at once before admission control engages.
  std::size_t max_inflight = 8;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Write retry/backoff, passed through to every tenant's manager.
  RetryPolicy retry;
};

/// What the constructor's crash-recovery scan found under the root.
struct RecoveryReport {
  std::size_t tenants = 0;      ///< namespaces rebuilt from on-disk manifests
  std::size_t generations = 0;  ///< committed generations re-adopted
  std::size_t tmp_swept = 0;    ///< stale commit temp files removed
  std::size_t quarantined = 0;  ///< unreadable generations quarantined by scrub
};

class CheckpointService {
 public:
  using Options = CheckpointServiceOptions;

  /// The codec (and optional backend) must outlive the service; a null
  /// backend means the process default. Creates `options.root` eagerly
  /// so a bad path fails at startup, not mid-request, then runs crash
  /// recovery: every directory under the root whose name is a valid
  /// tenant name is re-adopted (manifest load rebuilds the quota
  /// ledger), stale commit temp files are swept, and unreadable
  /// generations are quarantined by a scrub pass — so a SIGKILL'd
  /// server restarts into exactly the state its durable commits
  /// describe, instead of rediscovering tenants only when a put
  /// happens to recreate them.
  CheckpointService(const Codec& codec, Options options, IoBackend* io = nullptr);

  CheckpointService(const CheckpointService&) = delete;
  CheckpointService& operator=(const CheckpointService&) = delete;

  /// Commits one generation for the tenant (creating it on first use).
  /// Throws InvalidArgumentError (bad tenant name), BusyError
  /// (admission rejection or superseded by a newer put),
  /// QuotaExceededError (store untouched), IoError (commit failed
  /// after retries).
  [[nodiscard]] net::PutOkResponse put(const net::PutRequest& req);

  /// Restores the tenant's newest restorable generation through the
  /// manager's full fallback chain. Throws NotFoundError for an
  /// unknown/empty tenant, CorruptDataError when nothing is restorable.
  [[nodiscard]] net::GetOkResponse get(const net::GetRequest& req);

  /// Quota/generation accounting for one tenant (throws NotFoundError
  /// when unknown) or, with an empty tenant name, for all of them.
  [[nodiscard]] net::StatOkResponse stat(const net::StatRequest& req);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// What startup recovery found. Set once in the constructor.
  [[nodiscard]] const RecoveryReport& recovery() const noexcept { return recovery_; }

 private:
  /// Newest committed outcome per step, remembered so a client retry of
  /// a put whose response was lost (same request_id) is answered with
  /// the original result instead of re-committed.
  struct CompletedPut {
    std::uint64_t request_id = 0;
    net::PutOkResponse resp;
  };
  /// Committed steps remembered per tenant for put deduplication. Small
  /// and bounded: a retry arrives within a round-trip of its original,
  /// not a thousand steps later.
  static constexpr std::size_t kCompletedPutsKept = 128;

  struct Tenant {
    std::unique_ptr<CheckpointManager> manager;
    Mutex mu;
    CondVar cv;
    bool writing WCK_GUARDED_BY(mu) = false;
    /// Ticket of the put currently parked behind the in-flight one;
    /// 0 = none. A newer arrival overwrites it (supersession).
    std::uint64_t parked_ticket WCK_GUARDED_BY(mu) = 0;
    std::uint64_t next_ticket WCK_GUARDED_BY(mu) = 1;
    /// Dedup ledger keyed by step; pruned to kCompletedPutsKept.
    std::map<std::uint64_t, CompletedPut> completed WCK_GUARDED_BY(mu);
    // Health, surfaced by stat() as TenantStat's health fields.
    std::uint64_t quarantined WCK_GUARDED_BY(mu) = 0;  ///< scrub quarantines
    std::string last_error WCK_GUARDED_BY(mu);  ///< ErrorCode-style kind; "" = none
    bool scrubbed WCK_GUARDED_BY(mu) = false;
    std::chrono::steady_clock::time_point last_scrub WCK_GUARDED_BY(mu){};
  };

  /// RAII admission slot: constructor blocks or throws BusyError per
  /// the policy, destructor frees the slot.
  class AdmissionSlot {
   public:
    explicit AdmissionSlot(CheckpointService& service);
    ~AdmissionSlot();
    AdmissionSlot(const AdmissionSlot&) = delete;
    AdmissionSlot& operator=(const AdmissionSlot&) = delete;

   private:
    CheckpointService& service_;
  };

  /// Looks the tenant up, creating it when `create` (put) and throwing
  /// NotFoundError otherwise (get / named stat). Validates the name.
  [[nodiscard]] Tenant& tenant_for(const std::string& name, bool create)
      WCK_EXCLUDES(tenants_mu_);
  /// Instantiates a tenant (manager construction loads its manifest).
  [[nodiscard]] Tenant& create_tenant(const std::string& name) WCK_REQUIRES(tenants_mu_);
  /// Constructor-only: re-adopts on-disk tenants and scrubs them.
  void recover_from_disk() WCK_EXCLUDES(tenants_mu_);
  /// The dedup ledger entry matching this request, if its commit
  /// already happened; refreshes nothing — the reply is the original.
  [[nodiscard]] std::optional<net::PutOkResponse> find_completed(
      Tenant& tenant, const net::PutRequest& req) WCK_EXCLUDES(tenant.mu);
  void remember_completed(Tenant& tenant, const net::PutRequest& req,
                          const net::PutOkResponse& resp) WCK_EXCLUDES(tenant.mu);
  /// Begin/end of the per-tenant coalescing window around a put.
  void begin_put(Tenant& tenant) WCK_EXCLUDES(tenant.mu);
  void end_put(Tenant& tenant) noexcept WCK_EXCLUDES(tenant.mu);
  /// Records the most recent storage/rejection error kind on the
  /// tenant's health (shown as TenantStat::last_error).
  void note_error(Tenant& tenant, const char* kind) noexcept WCK_EXCLUDES(tenant.mu);

  const Codec& codec_;
  const Options options_;
  IoBackend* const io_;
  RecoveryReport recovery_;  ///< written once by the constructor

  mutable Mutex tenants_mu_;
  /// std::map: node-based, so Tenant addresses stay stable while the
  /// map grows under new arrivals.
  std::map<std::string, std::unique_ptr<Tenant>> tenants_ WCK_GUARDED_BY(tenants_mu_);

  mutable Mutex admission_mu_;
  CondVar admission_cv_;
  std::size_t inflight_ WCK_GUARDED_BY(admission_mu_) = 0;
};

/// True when `name` is a valid tenant name: [a-z0-9_-], 1..64 chars.
/// The name becomes a directory component, so this is also the path
/// traversal guard — no '/', no '.', no empty string.
[[nodiscard]] bool valid_tenant_name(const std::string& name) noexcept;

}  // namespace wck::server
