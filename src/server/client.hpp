// StoreClient — blocking client for the checkpoint store service.
//
// One Unix-socket connection, strict request/response. Server-side
// ErrorResponses are rethrown as the matching typed wck error
// (QuotaExceededError, BusyError, NotFoundError, ...), so application
// code handles a remote quota rejection exactly like a local one. Not
// thread-safe: one StoreClient per client thread (connections are
// cheap — it's a local socket).
//
// Resilience (StoreClientOptions):
//   * Deadlines — connect, each request send, and each reply wait run
//     under timeout_ms even when retry is disabled, so a silent server
//     surfaces as a typed TimeoutError instead of a hang.
//   * Retry — transport failures (IoError, TimeoutError) reconnect and
//     resend on the shared capped-exponential Backoff ladder
//     (util/backoff.hpp). Server *decisions* (Busy, QuotaExceeded,
//     NotFound, BadRequest) are never retried: the server answered.
//   * Idempotent puts — every put carries a client-generated
//     request_id; when a retry resends a put whose response was lost,
//     the server recognizes the id and replays the original outcome
//     (PutOkResponse.deduplicated) instead of committing twice.
#pragma once

#include <cstdint>
#include <string>

#include "ckpt/manager.hpp"
#include "ndarray/ndarray.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "telemetry/trace.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace wck {

struct StoreClientOptions {
  /// Deadline (ms) on connect, each send, and each wait for reply
  /// bytes; expiry throws TimeoutError. Negative = no deadline.
  int timeout_ms = 30'000;
  /// Reconnect-and-resend schedule for transport failures. The default
  /// (max_attempts = 1) disables retry — deadlines still apply.
  BackoffPolicy retry = BackoffPolicy{.max_attempts = 1};
  /// Seeds retry jitter AND the put request_id stream. 0 derives a
  /// per-client seed (clock ⊕ address) so two clients retrying the
  /// same (tenant, step) cannot collide on request ids.
  std::uint64_t seed = 0;
  /// Client-side slow-request threshold: any RPC taking at least this
  /// many ms records a structured client.slow_request event (tenant,
  /// type, trace_id, duration, byte sizes, transport retries). 0 logs
  /// every RPC; negative disables. Requires telemetry to be enabled.
  int slow_request_ms = 1'000;
};

class StoreClient {
 public:
  using Options = StoreClientOptions;

  /// Connects to a StoreServer's socket, retrying per options.retry.
  /// Throws IoError (TimeoutError past the connect deadline).
  [[nodiscard]] static StoreClient connect(const std::string& socket_path,
                                           Options options = {});

  /// Liveness round-trip.
  void ping();

  /// Commits `array` as tenant's generation for `step`.
  [[nodiscard]] net::PutOkResponse put(const std::string& tenant, std::uint64_t step,
                                       const NdArray<double>& array);

  struct GetResult {
    std::uint64_t step = 0;
    RestoreSource source = RestoreSource::kPrimary;
    NdArray<double> array;
  };
  /// Restores the tenant's newest restorable generation.
  [[nodiscard]] GetResult get(const std::string& tenant);

  /// Accounting for one tenant, or all of them when `tenant` is empty.
  [[nodiscard]] net::StatOkResponse stat(const std::string& tenant = std::string());

  /// Asks the server to shut down (acknowledged before it does). Never
  /// retried: a lost ack usually means the server is already gone.
  void shutdown_server();

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  /// Transport retries performed over this client's lifetime.
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }

  void close() noexcept { stream_.close(); }

 private:
  StoreClient(std::string socket_path, Options options);

  /// (Re)establishes the stream when down; always resets the decoder
  /// with it — a fresh byte stream must never inherit half a frame.
  void ensure_connected();
  /// One send + reply on the current stream. Server errors are decoded
  /// but NOT rethrown here (the retry loop must see them as answers).
  [[nodiscard]] net::AnyMessage round_trip_once(const Bytes& frame);
  /// Full request: connect if needed, send, await reply, retrying
  /// transport failures per options_.retry. `retriable` = false makes
  /// it single-shot (shutdown).
  [[nodiscard]] net::AnyMessage round_trip(net::MessageType type, const Bytes& body,
                                           bool retriable = true);
  /// round_trip wrapped in a "client.rpc.<type>" boundary span carrying
  /// `ctx` plus the client-side slow-request log. With telemetry off it
  /// is exactly round_trip (no span, no allocations).
  [[nodiscard]] net::AnyMessage traced_round_trip(net::MessageType type,
                                                  const char* span_name,
                                                  const char* type_name,
                                                  const std::string& tenant,
                                                  std::uint64_t step,
                                                  const telemetry::TraceContext& ctx,
                                                  const Bytes& body, bool retriable = true);
  /// Fresh per-RPC trace context (client span becomes the trace root);
  /// zero when telemetry is disabled, which encodes as absent on the
  /// wire.
  [[nodiscard]] telemetry::TraceContext make_trace_context();
  void note_slow_rpc(const char* type_name, const std::string& tenant, std::uint64_t step,
                     const telemetry::TraceContext& ctx, double start_us,
                     std::size_t request_bytes, std::size_t reply_bytes,
                     std::uint64_t retries_before, bool error) noexcept;

  const std::string socket_path_;
  const Options options_;
  net::UnixStream stream_;
  net::FrameDecoder decoder_;
  SplitMix64 id_rng_;     ///< put request_id stream
  SplitMix64 trace_rng_;  ///< trace/span id stream, distinct so tracing
                          ///< never perturbs the request_id sequence
  std::uint64_t jitter_seed_ = 0;
  std::uint64_t retries_ = 0;
  std::size_t last_reply_bytes_ = 0;  ///< wire size of the newest reply frame
};

}  // namespace wck
