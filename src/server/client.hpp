// StoreClient — blocking client for the checkpoint store service.
//
// One Unix-socket connection, strict request/response. Server-side
// ErrorResponses are rethrown as the matching typed wck error
// (QuotaExceededError, BusyError, NotFoundError, ...), so application
// code handles a remote quota rejection exactly like a local one. Not
// thread-safe: one StoreClient per client thread (connections are
// cheap — it's a local socket).
#pragma once

#include <cstdint>
#include <string>

#include "ckpt/manager.hpp"
#include "ndarray/ndarray.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace wck {

class StoreClient {
 public:
  /// Connects to a StoreServer's socket. Throws IoError.
  [[nodiscard]] static StoreClient connect(const std::string& socket_path);

  /// Liveness round-trip.
  void ping();

  /// Commits `array` as tenant's generation for `step`.
  [[nodiscard]] net::PutOkResponse put(const std::string& tenant, std::uint64_t step,
                                       const NdArray<double>& array);

  struct GetResult {
    std::uint64_t step = 0;
    RestoreSource source = RestoreSource::kPrimary;
    NdArray<double> array;
  };
  /// Restores the tenant's newest restorable generation.
  [[nodiscard]] GetResult get(const std::string& tenant);

  /// Accounting for one tenant, or all of them when `tenant` is empty.
  [[nodiscard]] net::StatOkResponse stat(const std::string& tenant = std::string());

  /// Asks the server to shut down (acknowledged before it does).
  void shutdown_server();

  void close() noexcept { stream_.close(); }

 private:
  explicit StoreClient(net::UnixStream stream) : stream_(std::move(stream)) {}

  /// Sends one request frame and blocks for the reply frame. An
  /// ErrorResponse is rethrown as its typed wck error; an unexpected
  /// reply type or mid-reply EOF throws FormatError/IoError.
  [[nodiscard]] net::AnyMessage round_trip(net::MessageType type, const Bytes& body);

  net::UnixStream stream_;
  net::FrameDecoder decoder_;
};

}  // namespace wck
