#include "server/service.hpp"

#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "server/observe.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck::server {

bool valid_tenant_name(const std::string& name) noexcept {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

CheckpointService::CheckpointService(const Codec& codec, Options options, IoBackend* io)
    : codec_(codec), options_(std::move(options)), io_(io) {
  if (options_.root.empty()) {
    throw InvalidArgumentError("CheckpointService: empty root directory");
  }
  if (options_.max_inflight == 0) {
    throw InvalidArgumentError("CheckpointService: max_inflight must be >= 1");
  }
  std::filesystem::create_directories(options_.root);
  recover_from_disk();
}

// ---------------------------------------------------------------- recovery

void CheckpointService::recover_from_disk() {
  WCK_TRACE_SPAN("server.recovery");
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(options_.root, ec)) {
    if (!entry.is_directory(ec)) continue;
    const std::string name = entry.path().filename().string();
    // Only names a put could have created are tenants; anything else
    // under the root (operator files, quarantine debris moved by hand)
    // is left alone.
    if (!valid_tenant_name(name)) continue;
    Tenant* tenant = nullptr;
    {
      MutexLock lk(tenants_mu_);
      tenant = &create_tenant(name);
    }
    // Scrub outside tenants_mu_: it reads every generation end to end.
    const ScrubReport scrub = tenant->manager->scrub();
    {
      MutexLock lk(tenant->mu);
      tenant->quarantined += scrub.quarantined.size();
      tenant->scrubbed = true;
      tenant->last_scrub = std::chrono::steady_clock::now();
    }
    const std::size_t generations = tenant->manager->generations().size();
    recovery_.tenants += 1;
    recovery_.generations += generations;
    recovery_.tmp_swept += tenant->manager->tmp_files_swept();
    recovery_.quarantined += scrub.quarantined.size();
    WCK_EVENT(kServerRecovery, 0,
              name + ": " + std::to_string(generations) + " generations, " +
                  std::to_string(tenant->manager->tmp_files_swept()) + " tmp swept, " +
                  std::to_string(scrub.quarantined.size()) + " quarantined");
  }
  WCK_COUNTER_ADD("server.recovery.tenants", recovery_.tenants);
  WCK_COUNTER_ADD("server.recovery.generations", recovery_.generations);
  WCK_COUNTER_ADD("server.recovery.tmp_swept", recovery_.tmp_swept);
  WCK_COUNTER_ADD("server.recovery.quarantined", recovery_.quarantined);
}

// --------------------------------------------------------------- admission

CheckpointService::AdmissionSlot::AdmissionSlot(CheckpointService& service) : service_(service) {
  MutexLock lk(service_.admission_mu_);
  if (service_.inflight_ >= service_.options_.max_inflight) {
    if (service_.options_.admission == AdmissionPolicy::kRejectNewest) {
      WCK_COUNTER_ADD("server.admission.rejections", 1);
      WCK_EVENT(kServerBusy, 0,
                std::to_string(service_.inflight_) + " requests in flight");
      throw BusyError("store service: " + std::to_string(service_.inflight_) +
                      " requests in flight (limit " +
                      std::to_string(service_.options_.max_inflight) + ")");
    }
    WCK_COUNTER_ADD("server.admission.blocks", 1);
    service_.admission_cv_.wait(lk, [&service] {
      service.admission_mu_.assert_held();
      return service.inflight_ < service.options_.max_inflight;
    });
  }
  ++service_.inflight_;
  WCK_GAUGE_SET("server.inflight", static_cast<double>(service_.inflight_));
}

CheckpointService::AdmissionSlot::~AdmissionSlot() {
  MutexLock lk(service_.admission_mu_);
  --service_.inflight_;
  WCK_GAUGE_SET("server.inflight", static_cast<double>(service_.inflight_));
  service_.admission_cv_.notify_one();
}

// ----------------------------------------------------------------- tenants

CheckpointService::Tenant& CheckpointService::tenant_for(const std::string& name, bool create) {
  if (!valid_tenant_name(name)) {
    throw InvalidArgumentError("store service: invalid tenant name \"" + name +
                               "\" (want [a-z0-9_-], 1..64 chars)");
  }
  MutexLock lk(tenants_mu_);
  const auto it = tenants_.find(name);
  if (it != tenants_.end()) return *it->second;
  if (!create) throw NotFoundError("store service: unknown tenant \"" + name + "\"");
  return create_tenant(name);
}

CheckpointService::Tenant& CheckpointService::create_tenant(const std::string& name) {
  auto tenant = std::make_unique<Tenant>();
  CheckpointManager::Options mgr;
  mgr.keep_generations = options_.keep_generations;
  mgr.retry = options_.retry;
  mgr.max_total_bytes = options_.tenant_quota_bytes;
  tenant->manager =
      std::make_unique<CheckpointManager>(options_.root / name, codec_, mgr, io_);
  Tenant& ref = *tenant;
  tenants_.emplace(name, std::move(tenant));
  WCK_COUNTER_ADD("server.tenants.created", 1);
  WCK_GAUGE_SET("server.tenants", static_cast<double>(tenants_.size()));
  return ref;
}

// ------------------------------------------------------------ idempotency

std::optional<net::PutOkResponse> CheckpointService::find_completed(
    Tenant& tenant, const net::PutRequest& req) {
  if (req.request_id == 0) return std::nullopt;
  MutexLock lk(tenant.mu);
  const auto it = tenant.completed.find(req.step);
  if (it == tenant.completed.end() || it->second.request_id != req.request_id) {
    return std::nullopt;
  }
  net::PutOkResponse resp = it->second.resp;
  resp.deduplicated = true;
  return resp;
}

void CheckpointService::remember_completed(Tenant& tenant, const net::PutRequest& req,
                                           const net::PutOkResponse& resp) {
  if (req.request_id == 0) return;
  MutexLock lk(tenant.mu);
  tenant.completed[req.step] = CompletedPut{req.request_id, resp};
  while (tenant.completed.size() > kCompletedPutsKept) {
    tenant.completed.erase(tenant.completed.begin());
  }
}

void CheckpointService::begin_put(Tenant& tenant) {
  MutexLock lk(tenant.mu);
  if (!tenant.writing) {
    tenant.writing = true;
    return;
  }
  // Park behind the in-flight put. A newer arrival takes the parking
  // spot (checkpoints supersede), and the displaced caller leaves with
  // a typed BusyError instead of silently losing its snapshot.
  const std::uint64_t ticket = tenant.next_ticket++;
  tenant.parked_ticket = ticket;
  tenant.cv.notify_all();  // wake a previously parked put so it can see it lost
  tenant.cv.wait(lk, [&tenant, ticket] {
    tenant.mu.assert_held();
    return tenant.parked_ticket != ticket || !tenant.writing;
  });
  if (tenant.parked_ticket != ticket) {
    WCK_COUNTER_ADD("server.put.superseded", 1);
    throw BusyError("store service: put superseded by a newer checkpoint");
  }
  tenant.parked_ticket = 0;
  tenant.writing = true;
}

void CheckpointService::end_put(Tenant& tenant) noexcept {
  MutexLock lk(tenant.mu);
  tenant.writing = false;
  tenant.cv.notify_all();
}

void CheckpointService::note_error(Tenant& tenant, const char* kind) noexcept {
  try {
    MutexLock lk(tenant.mu);
    tenant.last_error = kind;
  } catch (...) {
    // Health bookkeeping must never replace the error being reported.
  }
}

// ---------------------------------------------------------------- requests

net::PutOkResponse CheckpointService::put(const net::PutRequest& req) {
  WCK_TRACE_SPAN("server.put");
  WCK_COUNTER_ADD("server.put.requests", 1);
  const AdmissionSlot slot(*this);
  Tenant& tenant = tenant_for(req.tenant, /*create=*/true);

  // Dedup fast path: a retry of an already-committed put (same step,
  // same request_id — its response was lost in transit) is answered
  // from the ledger without touching the store again.
  if (auto dup = find_completed(tenant, req)) {
    WCK_COUNTER_ADD("server.put.deduplicated", 1);
    add_tenant_counter(req.tenant, "dedup_replays");
    return *dup;
  }

  try {
    begin_put(tenant);
  } catch (const BusyError&) {
    // Superseded while parked — but if this request's own original
    // committed in the meantime, "superseded" would be a lie: the
    // caller's checkpoint IS durable. Report the original outcome.
    if (auto dup = find_completed(tenant, req)) {
      WCK_COUNTER_ADD("server.put.deduplicated", 1);
      add_tenant_counter(req.tenant, "dedup_replays");
      return *dup;
    }
    note_error(tenant, "busy");
    add_tenant_counter(req.tenant, "rejects");
    throw;
  }
  // Same race, other exit: the put that just released the window may
  // have been this request's original.
  if (auto dup = find_completed(tenant, req)) {
    end_put(tenant);
    WCK_COUNTER_ADD("server.put.deduplicated", 1);
    add_tenant_counter(req.tenant, "dedup_replays");
    return *dup;
  }

  try {
    NdArray<double> array(req.shape, req.values);
    CheckpointRegistry registry;
    registry.add("state", &array);
    (void)tenant.manager->write(registry, req.step);

    // Report manifest sizes, not codec payload sums: the quota is
    // enforced in manifest bytes, so these are the numbers a client can
    // budget against.
    const std::vector<CheckpointManager::Generation> gens = tenant.manager->generations();
    net::PutOkResponse resp;
    resp.step = req.step;
    resp.stored_bytes = gens.empty() ? 0 : gens.front().size;
    resp.total_bytes = tenant.manager->total_stored_bytes();
    resp.generations = static_cast<std::uint32_t>(gens.size());
    resp.request_id = req.request_id;
    remember_completed(tenant, req, resp);
    end_put(tenant);
    WCK_COUNTER_ADD("server.put.bytes", resp.stored_bytes);
    add_tenant_counter(req.tenant, "puts");
    if (options_.tenant_quota_bytes > 0) {
      set_tenant_gauge(req.tenant, "quota_utilization",
                       static_cast<double>(resp.total_bytes) /
                           static_cast<double>(options_.tenant_quota_bytes));
    }
    return resp;
  } catch (const QuotaExceededError&) {
    end_put(tenant);
    WCK_COUNTER_ADD("server.put.quota_rejections", 1);
    note_error(tenant, "quota-exceeded");
    add_tenant_counter(req.tenant, "rejects");
    throw;
  } catch (const IoError&) {
    end_put(tenant);
    note_error(tenant, "io");
    throw;
  } catch (...) {
    end_put(tenant);
    note_error(tenant, "internal");
    throw;
  }
}

net::GetOkResponse CheckpointService::get(const net::GetRequest& req) {
  WCK_TRACE_SPAN("server.get");
  WCK_COUNTER_ADD("server.get.requests", 1);
  const AdmissionSlot slot(*this);
  Tenant& tenant = tenant_for(req.tenant, /*create=*/false);

  if (tenant.manager->generations().empty()) {
    throw NotFoundError("store service: tenant \"" + req.tenant +
                        "\" has no committed checkpoint");
  }
  // A default-constructed array lets the restore decide the shape (the
  // generation is self-describing).
  NdArray<double> array;
  CheckpointRegistry registry;
  registry.add("state", &array);
  try {
    const RestoreOutcome outcome = tenant.manager->restore(registry);

    net::GetOkResponse resp;
    resp.step = outcome.step;
    resp.source = static_cast<std::uint8_t>(outcome.source);
    resp.shape = array.shape();
    resp.values.assign(array.values().begin(), array.values().end());
    add_tenant_counter(req.tenant, "gets");
    return resp;
  } catch (const CorruptDataError&) {
    note_error(tenant, "corrupt");
    throw;
  } catch (const IoError&) {
    note_error(tenant, "io");
    throw;
  }
}

net::StatOkResponse CheckpointService::stat(const net::StatRequest& req) {
  WCK_TRACE_SPAN("server.stat");
  WCK_COUNTER_ADD("server.stat.requests", 1);
  const AdmissionSlot slot(*this);

  std::vector<Tenant*> selected;
  std::vector<std::string> names;
  std::size_t known = 0;
  if (req.tenant.empty()) {
    MutexLock lk(tenants_mu_);
    known = tenants_.size();
    for (auto& [name, tenant] : tenants_) {
      names.push_back(name);
      selected.push_back(tenant.get());
    }
  } else {
    Tenant& tenant = tenant_for(req.tenant, /*create=*/false);
    MutexLock lk(tenants_mu_);
    known = tenants_.size();
    names.push_back(req.tenant);
    selected.push_back(&tenant);
  }

  net::StatOkResponse resp;
  resp.tenants = known;
  resp.stats.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    // The manager snapshot is taken outside tenants_mu_: generations()
    // locks the manager's own monitor and a concurrent put may be
    // holding it while blocked on I/O.
    const std::vector<CheckpointManager::Generation> gens = selected[i]->manager->generations();
    net::TenantStat s;
    s.name = names[i];
    s.generations = gens.size();
    for (const CheckpointManager::Generation& g : gens) s.stored_bytes += g.size;
    s.quota_bytes = options_.tenant_quota_bytes;
    s.newest_step = gens.empty() ? 0 : gens.front().step;
    {
      MutexLock lk(selected[i]->mu);
      s.quarantined = selected[i]->quarantined;
      s.last_error = selected[i]->last_error;
      if (selected[i]->scrubbed) {
        s.scrub_age_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - selected[i]->last_scrub)
                .count());
      }
    }
    resp.stats.push_back(std::move(s));
  }
  return resp;
}

}  // namespace wck::server
