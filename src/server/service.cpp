#include "server/service.hpp"

#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck::server {

bool valid_tenant_name(const std::string& name) noexcept {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

CheckpointService::CheckpointService(const Codec& codec, Options options, IoBackend* io)
    : codec_(codec), options_(std::move(options)), io_(io) {
  if (options_.root.empty()) {
    throw InvalidArgumentError("CheckpointService: empty root directory");
  }
  if (options_.max_inflight == 0) {
    throw InvalidArgumentError("CheckpointService: max_inflight must be >= 1");
  }
  std::filesystem::create_directories(options_.root);
}

// --------------------------------------------------------------- admission

CheckpointService::AdmissionSlot::AdmissionSlot(CheckpointService& service) : service_(service) {
  MutexLock lk(service_.admission_mu_);
  if (service_.inflight_ >= service_.options_.max_inflight) {
    if (service_.options_.admission == AdmissionPolicy::kRejectNewest) {
      WCK_COUNTER_ADD("server.admission.rejections", 1);
      WCK_EVENT(kServerBusy, 0,
                std::to_string(service_.inflight_) + " requests in flight");
      throw BusyError("store service: " + std::to_string(service_.inflight_) +
                      " requests in flight (limit " +
                      std::to_string(service_.options_.max_inflight) + ")");
    }
    WCK_COUNTER_ADD("server.admission.blocks", 1);
    service_.admission_cv_.wait(lk, [&service] {
      service.admission_mu_.assert_held();
      return service.inflight_ < service.options_.max_inflight;
    });
  }
  ++service_.inflight_;
  WCK_GAUGE_SET("server.inflight", static_cast<double>(service_.inflight_));
}

CheckpointService::AdmissionSlot::~AdmissionSlot() {
  MutexLock lk(service_.admission_mu_);
  --service_.inflight_;
  WCK_GAUGE_SET("server.inflight", static_cast<double>(service_.inflight_));
  service_.admission_cv_.notify_one();
}

// ----------------------------------------------------------------- tenants

CheckpointService::Tenant& CheckpointService::tenant_for(const std::string& name, bool create) {
  if (!valid_tenant_name(name)) {
    throw InvalidArgumentError("store service: invalid tenant name \"" + name +
                               "\" (want [a-z0-9_-], 1..64 chars)");
  }
  MutexLock lk(tenants_mu_);
  const auto it = tenants_.find(name);
  if (it != tenants_.end()) return *it->second;
  if (!create) throw NotFoundError("store service: unknown tenant \"" + name + "\"");

  auto tenant = std::make_unique<Tenant>();
  CheckpointManager::Options mgr;
  mgr.keep_generations = options_.keep_generations;
  mgr.retry = options_.retry;
  mgr.max_total_bytes = options_.tenant_quota_bytes;
  tenant->manager =
      std::make_unique<CheckpointManager>(options_.root / name, codec_, mgr, io_);
  Tenant& ref = *tenant;
  tenants_.emplace(name, std::move(tenant));
  WCK_COUNTER_ADD("server.tenants.created", 1);
  WCK_GAUGE_SET("server.tenants", static_cast<double>(tenants_.size()));
  return ref;
}

void CheckpointService::begin_put(Tenant& tenant) {
  MutexLock lk(tenant.mu);
  if (!tenant.writing) {
    tenant.writing = true;
    return;
  }
  // Park behind the in-flight put. A newer arrival takes the parking
  // spot (checkpoints supersede), and the displaced caller leaves with
  // a typed BusyError instead of silently losing its snapshot.
  const std::uint64_t ticket = tenant.next_ticket++;
  tenant.parked_ticket = ticket;
  tenant.cv.notify_all();  // wake a previously parked put so it can see it lost
  tenant.cv.wait(lk, [&tenant, ticket] {
    tenant.mu.assert_held();
    return tenant.parked_ticket != ticket || !tenant.writing;
  });
  if (tenant.parked_ticket != ticket) {
    WCK_COUNTER_ADD("server.put.superseded", 1);
    throw BusyError("store service: put superseded by a newer checkpoint");
  }
  tenant.parked_ticket = 0;
  tenant.writing = true;
}

void CheckpointService::end_put(Tenant& tenant) noexcept {
  MutexLock lk(tenant.mu);
  tenant.writing = false;
  tenant.cv.notify_all();
}

// ---------------------------------------------------------------- requests

net::PutOkResponse CheckpointService::put(const net::PutRequest& req) {
  WCK_TRACE_SPAN("server.put");
  WCK_COUNTER_ADD("server.put.requests", 1);
  const AdmissionSlot slot(*this);
  Tenant& tenant = tenant_for(req.tenant, /*create=*/true);

  begin_put(tenant);
  try {
    NdArray<double> array(req.shape, req.values);
    CheckpointRegistry registry;
    registry.add("state", &array);
    (void)tenant.manager->write(registry, req.step);

    // Report manifest sizes, not codec payload sums: the quota is
    // enforced in manifest bytes, so these are the numbers a client can
    // budget against.
    const std::vector<CheckpointManager::Generation> gens = tenant.manager->generations();
    net::PutOkResponse resp;
    resp.step = req.step;
    resp.stored_bytes = gens.empty() ? 0 : gens.front().size;
    resp.total_bytes = tenant.manager->total_stored_bytes();
    resp.generations = static_cast<std::uint32_t>(gens.size());
    end_put(tenant);
    WCK_COUNTER_ADD("server.put.bytes", resp.stored_bytes);
    return resp;
  } catch (const QuotaExceededError&) {
    end_put(tenant);
    WCK_COUNTER_ADD("server.put.quota_rejections", 1);
    throw;
  } catch (...) {
    end_put(tenant);
    throw;
  }
}

net::GetOkResponse CheckpointService::get(const net::GetRequest& req) {
  WCK_TRACE_SPAN("server.get");
  WCK_COUNTER_ADD("server.get.requests", 1);
  const AdmissionSlot slot(*this);
  Tenant& tenant = tenant_for(req.tenant, /*create=*/false);

  if (tenant.manager->generations().empty()) {
    throw NotFoundError("store service: tenant \"" + req.tenant +
                        "\" has no committed checkpoint");
  }
  // A default-constructed array lets the restore decide the shape (the
  // generation is self-describing).
  NdArray<double> array;
  CheckpointRegistry registry;
  registry.add("state", &array);
  const RestoreOutcome outcome = tenant.manager->restore(registry);

  net::GetOkResponse resp;
  resp.step = outcome.step;
  resp.source = static_cast<std::uint8_t>(outcome.source);
  resp.shape = array.shape();
  resp.values.assign(array.values().begin(), array.values().end());
  return resp;
}

net::StatOkResponse CheckpointService::stat(const net::StatRequest& req) {
  WCK_TRACE_SPAN("server.stat");
  WCK_COUNTER_ADD("server.stat.requests", 1);
  const AdmissionSlot slot(*this);

  std::vector<Tenant*> selected;
  std::vector<std::string> names;
  std::size_t known = 0;
  if (req.tenant.empty()) {
    MutexLock lk(tenants_mu_);
    known = tenants_.size();
    for (auto& [name, tenant] : tenants_) {
      names.push_back(name);
      selected.push_back(tenant.get());
    }
  } else {
    Tenant& tenant = tenant_for(req.tenant, /*create=*/false);
    MutexLock lk(tenants_mu_);
    known = tenants_.size();
    names.push_back(req.tenant);
    selected.push_back(&tenant);
  }

  net::StatOkResponse resp;
  resp.tenants = known;
  resp.stats.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    // The manager snapshot is taken outside tenants_mu_: generations()
    // locks the manager's own monitor and a concurrent put may be
    // holding it while blocked on I/O.
    const std::vector<CheckpointManager::Generation> gens = selected[i]->manager->generations();
    net::TenantStat s;
    s.name = names[i];
    s.generations = gens.size();
    for (const CheckpointManager::Generation& g : gens) s.stored_bytes += g.size;
    s.quota_bytes = options_.tenant_quota_bytes;
    s.newest_step = gens.empty() ? 0 : gens.front().step;
    resp.stats.push_back(std::move(s));
  }
  return resp;
}

}  // namespace wck::server
