#include "server/client.hpp"

#include <chrono>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

/// Maps a wire ErrorResponse back onto the typed error hierarchy.
[[noreturn]] void rethrow(const net::ErrorResponse& err) {
  const std::string what = std::string("store server: ") + err.message;
  switch (err.code) {
    case net::ErrorCode::kQuotaExceeded: throw QuotaExceededError(what);
    case net::ErrorCode::kBusy: throw BusyError(what);
    case net::ErrorCode::kNotFound: throw NotFoundError(what);
    case net::ErrorCode::kBadRequest: throw InvalidArgumentError(what);
    case net::ErrorCode::kCorrupt: throw CorruptDataError(what);
    case net::ErrorCode::kIo: throw IoError(what);
    case net::ErrorCode::kTimeout: throw TimeoutError(what);
    case net::ErrorCode::kInternal: break;
  }
  throw Error(what);
}

}  // namespace

StoreClient::StoreClient(std::string socket_path, Options options)
    : socket_path_(std::move(socket_path)),
      options_(options),
      id_rng_(options.seed),
      jitter_seed_(options.seed) {
  if (options_.seed == 0) {
    // No seed given: derive one that differs between clients even when
    // they start in the same instant (the address breaks the tie), so
    // two processes retrying the same (tenant, step) cannot generate
    // colliding request ids and false-deduplicate each other.
    const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    SplitMix64 mix(static_cast<std::uint64_t>(now) ^ static_cast<std::uint64_t>(self));
    jitter_seed_ = mix.next();
    id_rng_ = SplitMix64(mix.next());
  }
}

StoreClient StoreClient::connect(const std::string& socket_path, Options options) {
  StoreClient client(socket_path, options);
  Backoff backoff(client.options_.retry, client.jitter_seed_);
  for (;;) {
    try {
      client.ensure_connected();
      return client;
    } catch (const IoError& e) {
      if (!backoff.try_again()) {
        WCK_COUNTER_ADD("client.retry.giveups", 1);
        throw;
      }
      ++client.retries_;
      WCK_COUNTER_ADD("client.retry.connects", 1);
      WCK_EVENT(kClientRetry, 0, std::string("connect: ") + e.what());
    }
  }
}

void StoreClient::ensure_connected() {
  if (stream_.valid()) return;
  stream_ = net::UnixStream::connect_to(socket_path_, options_.timeout_ms);
  // A fresh byte stream must never inherit buffered bytes or poisoning
  // from the previous connection's decoder.
  decoder_ = net::FrameDecoder();
}

net::AnyMessage StoreClient::round_trip_once(const Bytes& frame) {
  stream_.send_all(frame, options_.timeout_ms);
  for (;;) {
    if (std::optional<net::Frame> reply = decoder_.next()) {
      return net::decode_message(*reply);
    }
    Bytes chunk;
    if (stream_.recv_some(chunk, 64 * 1024, options_.timeout_ms) == 0) {
      throw IoError("store server: connection closed mid-reply");
    }
    decoder_.feed(chunk);
  }
}

net::AnyMessage StoreClient::round_trip(net::MessageType type, const Bytes& body,
                                        bool retriable) {
  const Bytes frame = net::encode_frame(static_cast<std::uint8_t>(type), body);
  Backoff backoff(options_.retry, jitter_seed_);
  for (;;) {
    net::AnyMessage reply;
    try {
      ensure_connected();
      reply = round_trip_once(frame);
    } catch (const IoError& e) {
      // Transport failure (includes TimeoutError): the connection's
      // state is unknown — drop it and, budget permitting, reconnect
      // and resend. Put resends are safe: the request_id makes a
      // second commit a dedup replay.
      stream_.close();
      if (!retriable || !backoff.try_again()) {
        WCK_COUNTER_ADD("client.retry.giveups", 1);
        throw;
      }
      ++retries_;
      WCK_COUNTER_ADD("client.retry.requests", 1);
      WCK_EVENT(kClientRetry, 0, std::string("request: ") + e.what());
      continue;
    }
    // The server answered. Its decision — including an error — is
    // final; only the transport is ever retried.
    if (const auto* err = std::get_if<net::ErrorResponse>(&reply)) rethrow(*err);
    return reply;
  }
}

void StoreClient::ping() {
  const net::AnyMessage reply =
      round_trip(net::MessageType::kPing, net::encode(net::PingRequest{}));
  if (!std::holds_alternative<net::PongResponse>(reply)) {
    throw FormatError("store server: unexpected reply to ping");
  }
}

net::PutOkResponse StoreClient::put(const std::string& tenant, std::uint64_t step,
                                    const NdArray<double>& array) {
  net::PutRequest req;
  req.tenant = tenant;
  req.step = step;
  // 0 is the "no token" sentinel on the wire; skip it.
  do {
    req.request_id = id_rng_.next();
  } while (req.request_id == 0);
  req.shape = array.shape();
  req.values.assign(array.values().begin(), array.values().end());
  net::AnyMessage reply = round_trip(net::MessageType::kPut, net::encode(req));
  auto* ok = std::get_if<net::PutOkResponse>(&reply);
  if (ok == nullptr) throw FormatError("store server: unexpected reply to put");
  if (ok->request_id != 0 && ok->request_id != req.request_id) {
    throw FormatError("store server: put-ok echoes request id " +
                      std::to_string(ok->request_id) + ", sent " +
                      std::to_string(req.request_id));
  }
  if (ok->deduplicated) WCK_COUNTER_ADD("client.retry.deduplicated_puts", 1);
  return *ok;
}

StoreClient::GetResult StoreClient::get(const std::string& tenant) {
  net::GetRequest req;
  req.tenant = tenant;
  net::AnyMessage reply = round_trip(net::MessageType::kGet, net::encode(req));
  auto* ok = std::get_if<net::GetOkResponse>(&reply);
  if (ok == nullptr) throw FormatError("store server: unexpected reply to get");
  if (ok->source > static_cast<std::uint8_t>(RestoreSource::kParity)) {
    throw FormatError("store server: unknown restore source " + std::to_string(ok->source));
  }
  GetResult result;
  result.step = ok->step;
  result.source = static_cast<RestoreSource>(ok->source);
  result.array = NdArray<double>(ok->shape, std::move(ok->values));
  return result;
}

net::StatOkResponse StoreClient::stat(const std::string& tenant) {
  net::StatRequest req;
  req.tenant = tenant;
  net::AnyMessage reply = round_trip(net::MessageType::kStat, net::encode(req));
  if (auto* ok = std::get_if<net::StatOkResponse>(&reply)) return std::move(*ok);
  throw FormatError("store server: unexpected reply to stat");
}

void StoreClient::shutdown_server() {
  const net::AnyMessage reply = round_trip(
      net::MessageType::kShutdown, net::encode(net::ShutdownRequest{}), /*retriable=*/false);
  if (!std::holds_alternative<net::ShutdownOkResponse>(reply)) {
    throw FormatError("store server: unexpected reply to shutdown");
  }
}

}  // namespace wck
