#include "server/client.hpp"

#include <utility>

#include "util/error.hpp"

namespace wck {
namespace {

/// Maps a wire ErrorResponse back onto the typed error hierarchy.
[[noreturn]] void rethrow(const net::ErrorResponse& err) {
  const std::string what = std::string("store server: ") + err.message;
  switch (err.code) {
    case net::ErrorCode::kQuotaExceeded: throw QuotaExceededError(what);
    case net::ErrorCode::kBusy: throw BusyError(what);
    case net::ErrorCode::kNotFound: throw NotFoundError(what);
    case net::ErrorCode::kBadRequest: throw InvalidArgumentError(what);
    case net::ErrorCode::kCorrupt: throw CorruptDataError(what);
    case net::ErrorCode::kIo: throw IoError(what);
    case net::ErrorCode::kInternal: break;
  }
  throw Error(what);
}

}  // namespace

StoreClient StoreClient::connect(const std::string& socket_path) {
  return StoreClient(net::UnixStream::connect_to(socket_path));
}

net::AnyMessage StoreClient::round_trip(net::MessageType type, const Bytes& body) {
  stream_.send_all(net::encode_frame(static_cast<std::uint8_t>(type), body));
  for (;;) {
    if (std::optional<net::Frame> frame = decoder_.next()) {
      net::AnyMessage reply = net::decode_message(*frame);
      if (const auto* err = std::get_if<net::ErrorResponse>(&reply)) rethrow(*err);
      return reply;
    }
    Bytes chunk;
    if (stream_.recv_some(chunk, 64 * 1024) == 0) {
      throw IoError("store server: connection closed mid-reply");
    }
    decoder_.feed(chunk);
  }
}

void StoreClient::ping() {
  const net::AnyMessage reply =
      round_trip(net::MessageType::kPing, net::encode(net::PingRequest{}));
  if (!std::holds_alternative<net::PongResponse>(reply)) {
    throw FormatError("store server: unexpected reply to ping");
  }
}

net::PutOkResponse StoreClient::put(const std::string& tenant, std::uint64_t step,
                                    const NdArray<double>& array) {
  net::PutRequest req;
  req.tenant = tenant;
  req.step = step;
  req.shape = array.shape();
  req.values.assign(array.values().begin(), array.values().end());
  net::AnyMessage reply = round_trip(net::MessageType::kPut, net::encode(req));
  if (auto* ok = std::get_if<net::PutOkResponse>(&reply)) return *ok;
  throw FormatError("store server: unexpected reply to put");
}

StoreClient::GetResult StoreClient::get(const std::string& tenant) {
  net::GetRequest req;
  req.tenant = tenant;
  net::AnyMessage reply = round_trip(net::MessageType::kGet, net::encode(req));
  auto* ok = std::get_if<net::GetOkResponse>(&reply);
  if (ok == nullptr) throw FormatError("store server: unexpected reply to get");
  if (ok->source > static_cast<std::uint8_t>(RestoreSource::kParity)) {
    throw FormatError("store server: unknown restore source " + std::to_string(ok->source));
  }
  GetResult result;
  result.step = ok->step;
  result.source = static_cast<RestoreSource>(ok->source);
  result.array = NdArray<double>(ok->shape, std::move(ok->values));
  return result;
}

net::StatOkResponse StoreClient::stat(const std::string& tenant) {
  net::StatRequest req;
  req.tenant = tenant;
  net::AnyMessage reply = round_trip(net::MessageType::kStat, net::encode(req));
  if (auto* ok = std::get_if<net::StatOkResponse>(&reply)) return std::move(*ok);
  throw FormatError("store server: unexpected reply to stat");
}

void StoreClient::shutdown_server() {
  const net::AnyMessage reply =
      round_trip(net::MessageType::kShutdown, net::encode(net::ShutdownRequest{}));
  if (!std::holds_alternative<net::ShutdownOkResponse>(reply)) {
    throw FormatError("store server: unexpected reply to shutdown");
  }
}

}  // namespace wck
