#include "server/client.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

/// Maps a wire ErrorResponse back onto the typed error hierarchy.
[[noreturn]] void rethrow(const net::ErrorResponse& err) {
  const std::string what = std::string("store server: ") + err.message;
  switch (err.code) {
    case net::ErrorCode::kQuotaExceeded: throw QuotaExceededError(what);
    case net::ErrorCode::kBusy: throw BusyError(what);
    case net::ErrorCode::kNotFound: throw NotFoundError(what);
    case net::ErrorCode::kBadRequest: throw InvalidArgumentError(what);
    case net::ErrorCode::kCorrupt: throw CorruptDataError(what);
    case net::ErrorCode::kIo: throw IoError(what);
    case net::ErrorCode::kTimeout: throw TimeoutError(what);
    case net::ErrorCode::kInternal: break;
  }
  throw Error(what);
}

}  // namespace

StoreClient::StoreClient(std::string socket_path, Options options)
    : socket_path_(std::move(socket_path)),
      options_(options),
      id_rng_(options.seed),
      trace_rng_(options.seed ^ 0x7E4AD1C9F3B2605Bull),
      jitter_seed_(options.seed) {
  if (options_.seed == 0) {
    // No seed given: derive one that differs between clients even when
    // they start in the same instant (the address breaks the tie), so
    // two processes retrying the same (tenant, step) cannot generate
    // colliding request ids and false-deduplicate each other.
    const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    SplitMix64 mix(static_cast<std::uint64_t>(now) ^ static_cast<std::uint64_t>(self));
    jitter_seed_ = mix.next();
    id_rng_ = SplitMix64(mix.next());
    trace_rng_ = SplitMix64(mix.next());
  }
}

StoreClient StoreClient::connect(const std::string& socket_path, Options options) {
  StoreClient client(socket_path, options);
  Backoff backoff(client.options_.retry, client.jitter_seed_);
  for (;;) {
    try {
      client.ensure_connected();
      return client;
    } catch (const IoError& e) {
      if (!backoff.try_again()) {
        WCK_COUNTER_ADD("client.retry.giveups", 1);
        throw;
      }
      ++client.retries_;
      WCK_COUNTER_ADD("client.retry.connects", 1);
      WCK_EVENT(kClientRetry, 0, std::string("connect: ") + e.what());
    }
  }
}

void StoreClient::ensure_connected() {
  if (stream_.valid()) return;
  stream_ = net::UnixStream::connect_to(socket_path_, options_.timeout_ms);
  // A fresh byte stream must never inherit buffered bytes or poisoning
  // from the previous connection's decoder.
  decoder_ = net::FrameDecoder();
}

net::AnyMessage StoreClient::round_trip_once(const Bytes& frame) {
  stream_.send_all(frame, options_.timeout_ms);
  for (;;) {
    if (std::optional<net::Frame> reply = decoder_.next()) {
      last_reply_bytes_ = reply->payload.size() + net::kFrameHeaderBytes;
      return net::decode_message(*reply);
    }
    Bytes chunk;
    if (stream_.recv_some(chunk, 64 * 1024, options_.timeout_ms) == 0) {
      throw IoError("store server: connection closed mid-reply");
    }
    decoder_.feed(chunk);
  }
}

net::AnyMessage StoreClient::round_trip(net::MessageType type, const Bytes& body,
                                        bool retriable) {
  const Bytes frame = net::encode_frame(static_cast<std::uint8_t>(type), body);
  Backoff backoff(options_.retry, jitter_seed_);
  for (;;) {
    net::AnyMessage reply;
    try {
      ensure_connected();
      reply = round_trip_once(frame);
    } catch (const IoError& e) {
      // Transport failure (includes TimeoutError): the connection's
      // state is unknown — drop it and, budget permitting, reconnect
      // and resend. Put resends are safe: the request_id makes a
      // second commit a dedup replay.
      stream_.close();
      if (!retriable || !backoff.try_again()) {
        WCK_COUNTER_ADD("client.retry.giveups", 1);
        throw;
      }
      ++retries_;
      WCK_COUNTER_ADD("client.retry.requests", 1);
      WCK_EVENT(kClientRetry, 0, std::string("request: ") + e.what());
      continue;
    }
    // The server answered. Its decision — including an error — is
    // final; only the transport is ever retried.
    if (const auto* err = std::get_if<net::ErrorResponse>(&reply)) rethrow(*err);
    return reply;
  }
}

telemetry::TraceContext StoreClient::make_trace_context() {
  if (!telemetry::enabled()) return {};
  telemetry::TraceContext ctx;
  // 0 is the "no trace" sentinel on the wire; skip it in both streams.
  do {
    ctx.trace_id = trace_rng_.next();
  } while (ctx.trace_id == 0);
  do {
    ctx.span_id = trace_rng_.next();
  } while (ctx.span_id == 0);
  return ctx;  // parent_span_id = 0: the client RPC span is the root
}

net::AnyMessage StoreClient::traced_round_trip(net::MessageType type, const char* span_name,
                                               const char* type_name,
                                               const std::string& tenant, std::uint64_t step,
                                               const telemetry::TraceContext& ctx,
                                               const Bytes& body, bool retriable) {
  if (!telemetry::enabled()) return round_trip(type, body, retriable);
  const std::uint64_t retries_before = retries_;
  const double start_us = telemetry::Tracer::global().now_us();
  const std::size_t request_bytes = body.size() + net::kFrameHeaderBytes;
  telemetry::TraceSpan span(span_name, ctx);
  try {
    net::AnyMessage reply = round_trip(type, body, retriable);
    note_slow_rpc(type_name, tenant, step, ctx, start_us, request_bytes, last_reply_bytes_,
                  retries_before, /*error=*/false);
    return reply;
  } catch (...) {
    note_slow_rpc(type_name, tenant, step, ctx, start_us, request_bytes, 0, retries_before,
                  /*error=*/true);
    throw;
  }
}

void StoreClient::note_slow_rpc(const char* type_name, const std::string& tenant,
                                std::uint64_t step, const telemetry::TraceContext& ctx,
                                double start_us, std::size_t request_bytes,
                                std::size_t reply_bytes, std::uint64_t retries_before,
                                bool error) noexcept {
  if (!telemetry::enabled() || options_.slow_request_ms < 0) return;
  const double ms = (telemetry::Tracer::global().now_us() - start_us) / 1e3;
  if (ms < static_cast<double>(options_.slow_request_ms)) return;
  try {
    char ms_buf[32];
    std::snprintf(ms_buf, sizeof ms_buf, "%.3f", ms);
    // The detail is itself a JSON object, string-encoded inside the
    // event line; consumers json-parse the "detail" field again.
    std::string detail = "{\"tenant\":\"";
    detail += tenant;
    detail += "\",\"type\":\"";
    detail += type_name;
    detail += "\",\"trace_id\":\"";
    detail += telemetry::trace_id_hex(ctx.trace_id);
    detail += "\",\"ms\":";
    detail += ms_buf;
    detail += ",\"req_bytes\":";
    detail += std::to_string(request_bytes);
    detail += ",\"resp_bytes\":";
    detail += std::to_string(reply_bytes);
    detail += ",\"retries\":";
    detail += std::to_string(retries_ - retries_before);
    detail += ",\"error\":";
    detail += error ? "true" : "false";
    detail += "}";
    WCK_EVENT(kClientSlowRequest, step, std::move(detail));
  } catch (...) {
    // Slow-request logging is best-effort; never mask the RPC outcome.
  }
}

void StoreClient::ping() {
  net::PingRequest req;
  req.trace = make_trace_context();
  const net::AnyMessage reply = traced_round_trip(
      net::MessageType::kPing, "client.rpc.ping", "ping", {}, 0, req.trace, net::encode(req));
  if (!std::holds_alternative<net::PongResponse>(reply)) {
    throw FormatError("store server: unexpected reply to ping");
  }
}

net::PutOkResponse StoreClient::put(const std::string& tenant, std::uint64_t step,
                                    const NdArray<double>& array) {
  net::PutRequest req;
  req.tenant = tenant;
  req.step = step;
  // 0 is the "no token" sentinel on the wire; skip it.
  do {
    req.request_id = id_rng_.next();
  } while (req.request_id == 0);
  req.shape = array.shape();
  req.values.assign(array.values().begin(), array.values().end());
  req.trace = make_trace_context();
  net::AnyMessage reply =
      traced_round_trip(net::MessageType::kPut, "client.rpc.put", "put", tenant, step,
                        req.trace, net::encode(req));
  auto* ok = std::get_if<net::PutOkResponse>(&reply);
  if (ok == nullptr) throw FormatError("store server: unexpected reply to put");
  if (ok->request_id != 0 && ok->request_id != req.request_id) {
    throw FormatError("store server: put-ok echoes request id " +
                      std::to_string(ok->request_id) + ", sent " +
                      std::to_string(req.request_id));
  }
  if (ok->deduplicated) WCK_COUNTER_ADD("client.retry.deduplicated_puts", 1);
  return *ok;
}

StoreClient::GetResult StoreClient::get(const std::string& tenant) {
  net::GetRequest req;
  req.tenant = tenant;
  req.trace = make_trace_context();
  net::AnyMessage reply = traced_round_trip(net::MessageType::kGet, "client.rpc.get", "get",
                                            tenant, 0, req.trace, net::encode(req));
  auto* ok = std::get_if<net::GetOkResponse>(&reply);
  if (ok == nullptr) throw FormatError("store server: unexpected reply to get");
  if (ok->source > static_cast<std::uint8_t>(RestoreSource::kParity)) {
    throw FormatError("store server: unknown restore source " + std::to_string(ok->source));
  }
  GetResult result;
  result.step = ok->step;
  result.source = static_cast<RestoreSource>(ok->source);
  result.array = NdArray<double>(ok->shape, std::move(ok->values));
  return result;
}

net::StatOkResponse StoreClient::stat(const std::string& tenant) {
  net::StatRequest req;
  req.tenant = tenant;
  req.trace = make_trace_context();
  net::AnyMessage reply = traced_round_trip(net::MessageType::kStat, "client.rpc.stat",
                                            "stat", tenant, 0, req.trace, net::encode(req));
  if (auto* ok = std::get_if<net::StatOkResponse>(&reply)) return std::move(*ok);
  throw FormatError("store server: unexpected reply to stat");
}

void StoreClient::shutdown_server() {
  net::ShutdownRequest req;
  req.trace = make_trace_context();
  const net::AnyMessage reply =
      traced_round_trip(net::MessageType::kShutdown, "client.rpc.shutdown", "shutdown", {}, 0,
                        req.trace, net::encode(req), /*retriable=*/false);
  if (!std::holds_alternative<net::ShutdownOkResponse>(reply)) {
    throw FormatError("store server: unexpected reply to shutdown");
  }
}

}  // namespace wck
