// StoreServer — the wire front of CheckpointService.
//
// One accept loop (self-pipe-woken, src/net/socket.hpp) plus one thread
// per connection. Each connection is a strict request/response stream
// of CRC'd frames: decode -> dispatch into the service -> encode the
// reply. Every typed wck error maps onto an ErrorResponse code, so a
// client never sees a dropped connection where a QuotaExceeded or Busy
// belongs; only a malformed frame (bad magic/CRC/length) ends the
// connection, because a poisoned byte stream has no resynchronization
// point.
//
// Shutdown has two triggers with one path: stop() from the owner, or a
// ShutdownRequest from a client (acknowledged first, then the flag is
// raised). wait_for_shutdown() lets `wckpt serve` park on the flag.
//
// Every connection runs under deadlines (Options): a peer that stalls
// mid-frame gets a typed kTimeout error and is hung up on (slow-loris
// guard); a peer that simply goes quiet is reaped after idle_timeout —
// so one wedged client can never pin a connection thread forever. And
// stop() drains gracefully: it half-closes every connection
// (shutdown_read), which wakes idle readers with EOF while letting
// in-flight requests finish and their replies depart, escalating to a
// hard shutdown_both only when the drain deadline expires.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "server/service.hpp"
#include "util/thread_annotations.hpp"

namespace wck::server {

/// Per-connection deadlines and the drain budget. All in milliseconds;
/// a negative value disables that deadline.
struct StoreServerOptions {
  /// Max wait for more bytes once a frame has started arriving. A
  /// sender that stalls mid-frame is told (kTimeout) and disconnected —
  /// the stream has no resync point anyway.
  int read_timeout_ms = 30'000;
  /// Max wait for the first byte of the next request. An idle
  /// connection past this is reaped quietly: no request is in flight,
  /// so no reply is owed.
  int idle_timeout_ms = 120'000;
  /// Bound on each reply send (a peer that stops draining its socket).
  int write_timeout_ms = 30'000;
  /// How long stop() lets in-flight requests finish before forcing
  /// connections closed.
  int drain_timeout_ms = 5'000;
  /// Slow-request threshold: any RPC taking at least this many ms is
  /// recorded in the flight recorder as a structured server.slow_request
  /// event (tenant, type, trace_id, duration, byte sizes). 0 logs every
  /// RPC (useful in CI); negative disables the log.
  int slow_request_ms = 1'000;
  /// When non-empty, stop() writes a final exposition snapshot
  /// (metrics.prom, events.jsonl, slow-requests.jsonl) here after the
  /// drain completes, so a SIGTERM'd server does not lose its last
  /// --expose interval. Typically the same directory as --expose.
  std::filesystem::path drain_snapshot_dir;
};

class StoreServer {
 public:
  using Options = StoreServerOptions;

  /// Binds `socket_path` and starts the accept loop. The service must
  /// outlive the server. Throws IoError when the path cannot be bound.
  StoreServer(CheckpointService& service, const std::string& socket_path,
              Options options = {});
  ~StoreServer();

  StoreServer(const StoreServer&) = delete;
  StoreServer& operator=(const StoreServer&) = delete;

  /// Blocks until stop() runs or a client sends ShutdownRequest.
  void wait_for_shutdown() WCK_EXCLUDES(mu_);

  /// Bounded wait_for_shutdown: true when shutdown was requested within
  /// `timeout_ms`. Lets a signal-driven owner (wckpt serve under
  /// SIGTERM) poll the flag without parking forever.
  [[nodiscard]] bool wait_for_shutdown_for(int timeout_ms) WCK_EXCLUDES(mu_);

  /// Stops accepting and drains: every connection is half-closed
  /// (shutdown_read — idle readers wake with EOF, in-flight replies
  /// still depart), stragglers past drain_timeout_ms are forced closed,
  /// all threads joined, the socket path unlinked. Idempotent.
  void stop() WCK_EXCLUDES(mu_);

  [[nodiscard]] const std::string& socket_path() const noexcept { return socket_path_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const WCK_EXCLUDES(mu_);
  /// Connections reaped for idling past idle_timeout_ms.
  [[nodiscard]] std::uint64_t connections_idle_reaped() const WCK_EXCLUDES(mu_);

 private:
  struct Connection {
    net::UnixStream stream;
    std::thread thread;
    bool done = false;  ///< set by the handler as it exits (guarded by mu_)
  };

  void accept_loop();
  void handle_connection(Connection* conn);
  /// Decodes + dispatches one request frame; returns the encoded reply.
  [[nodiscard]] Bytes handle_frame(const net::Frame& frame, bool& close_connection);
  /// The dispatch half of handle_frame: service call -> encoded reply,
  /// with every typed error mapped to an ErrorResponse.
  [[nodiscard]] Bytes dispatch_request(const net::AnyMessage& message,
                                       bool& close_connection);
  /// Joins and drops connections whose handlers have exited.
  void reap_finished() WCK_REQUIRES(mu_);
  void request_shutdown() WCK_EXCLUDES(mu_);

  CheckpointService& service_;
  const std::string socket_path_;
  const Options options_;
  net::UnixListener listener_;
  std::thread accept_thread_;

  mutable Mutex mu_;
  CondVar shutdown_cv_;
  CondVar drain_cv_;  ///< notified as each connection handler exits
  bool stopping_ WCK_GUARDED_BY(mu_) = false;
  bool shutdown_requested_ WCK_GUARDED_BY(mu_) = false;
  std::uint64_t accepted_ WCK_GUARDED_BY(mu_) = 0;
  std::uint64_t idle_reaped_ WCK_GUARDED_BY(mu_) = 0;
  std::vector<std::unique_ptr<Connection>> connections_ WCK_GUARDED_BY(mu_);
};

}  // namespace wck::server
