// StoreServer — the wire front of CheckpointService.
//
// One accept loop (self-pipe-woken, src/net/socket.hpp) plus one thread
// per connection. Each connection is a strict request/response stream
// of CRC'd frames: decode -> dispatch into the service -> encode the
// reply. Every typed wck error maps onto an ErrorResponse code, so a
// client never sees a dropped connection where a QuotaExceeded or Busy
// belongs; only a malformed frame (bad magic/CRC/length) ends the
// connection, because a poisoned byte stream has no resynchronization
// point.
//
// Shutdown has two triggers with one path: stop() from the owner, or a
// ShutdownRequest from a client (acknowledged first, then the flag is
// raised). wait_for_shutdown() lets `wckpt serve` park on the flag.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "server/service.hpp"
#include "util/thread_annotations.hpp"

namespace wck::server {

class StoreServer {
 public:
  /// Binds `socket_path` and starts the accept loop. The service must
  /// outlive the server. Throws IoError when the path cannot be bound.
  StoreServer(CheckpointService& service, const std::string& socket_path);
  ~StoreServer();

  StoreServer(const StoreServer&) = delete;
  StoreServer& operator=(const StoreServer&) = delete;

  /// Blocks until stop() runs or a client sends ShutdownRequest.
  void wait_for_shutdown() WCK_EXCLUDES(mu_);

  /// Stops accepting, wakes every connection (shutdown_both), joins all
  /// threads, unlinks the socket path. Idempotent.
  void stop() WCK_EXCLUDES(mu_);

  [[nodiscard]] const std::string& socket_path() const noexcept { return socket_path_; }
  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const WCK_EXCLUDES(mu_);

 private:
  struct Connection {
    net::UnixStream stream;
    std::thread thread;
    bool done = false;  ///< set by the handler as it exits (guarded by mu_)
  };

  void accept_loop();
  void handle_connection(Connection* conn);
  /// Decodes + dispatches one request frame; returns the encoded reply.
  [[nodiscard]] Bytes handle_frame(const net::Frame& frame, bool& close_connection);
  /// Joins and drops connections whose handlers have exited.
  void reap_finished() WCK_REQUIRES(mu_);
  void request_shutdown() WCK_EXCLUDES(mu_);

  CheckpointService& service_;
  const std::string socket_path_;
  net::UnixListener listener_;
  std::thread accept_thread_;

  mutable Mutex mu_;
  CondVar shutdown_cv_;
  bool stopping_ WCK_GUARDED_BY(mu_) = false;
  bool shutdown_requested_ WCK_GUARDED_BY(mu_) = false;
  std::uint64_t accepted_ WCK_GUARDED_BY(mu_) = 0;
  std::vector<std::unique_ptr<Connection>> connections_ WCK_GUARDED_BY(mu_);
};

}  // namespace wck::server
