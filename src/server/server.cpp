#include "server/server.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "net/frame.hpp"
#include "server/observe.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck::server {
namespace {

using net::AnyMessage;
using net::ErrorCode;
using net::ErrorResponse;
using net::MessageType;

[[nodiscard]] Bytes encode_reply(MessageType type, const Bytes& body) {
  return net::encode_frame(static_cast<std::uint8_t>(type), body);
}

[[nodiscard]] Bytes error_reply(ErrorCode code, const std::string& message) {
  WCK_COUNTER_ADD("server.errors", 1);
  ErrorResponse resp;
  resp.code = code;
  resp.message = message;
  return encode_reply(MessageType::kError, net::encode(resp));
}

/// True when an encoded reply frame carries an ErrorResponse (the frame
/// type byte sits right after magic+version in the header).
[[nodiscard]] bool reply_is_error(const Bytes& reply) noexcept {
  return reply.size() > 5 && reply[5] == static_cast<std::byte>(MessageType::kError);
}

}  // namespace

StoreServer::StoreServer(CheckpointService& service, const std::string& socket_path,
                         Options options)
    : service_(service),
      socket_path_(socket_path),
      options_(options),
      listener_(net::UnixListener::bind_and_listen(socket_path)) {
  WCK_EVENT(kServerStart, 0, socket_path_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

StoreServer::~StoreServer() { stop(); }

void StoreServer::wait_for_shutdown() {
  MutexLock lk(mu_);
  shutdown_cv_.wait(lk, [this] {
    mu_.assert_held();
    return shutdown_requested_;
  });
}

bool StoreServer::wait_for_shutdown_for(int timeout_ms) {
  MutexLock lk(mu_);
  return shutdown_cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), [this] {
    mu_.assert_held();
    return shutdown_requested_;
  });
}

void StoreServer::request_shutdown() {
  MutexLock lk(mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

std::uint64_t StoreServer::connections_accepted() const {
  MutexLock lk(mu_);
  return accepted_;
}

std::uint64_t StoreServer::connections_idle_reaped() const {
  MutexLock lk(mu_);
  return idle_reaped_;
}

void StoreServer::stop() {
  bool first_stop = false;
  {
    MutexLock lk(mu_);
    if (!stopping_) {
      first_stop = true;
      WCK_EVENT(kServerStop, 0, socket_path_);
    }
    stopping_ = true;
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
  listener_.close();  // wakes a blocked accept_next()
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::unique_ptr<Connection>> to_join;
  std::size_t draining = 0;
  bool forced = false;
  {
    MutexLock lk(mu_);
    // Graceful drain: half-close every connection. A reader parked
    // between requests wakes with EOF and exits; a handler mid-request
    // finishes, its reply still departs (the write side stays open),
    // and the next read sees EOF.
    for (const std::unique_ptr<Connection>& conn : connections_) {
      if (!conn->done) ++draining;
      conn->stream.shutdown_read();
    }
    if (draining > 0) {
      WCK_EVENT(kServerDrain, 0, "begin: " + std::to_string(draining) + " connections");
      const auto budget = std::chrono::milliseconds(
          options_.drain_timeout_ms < 0 ? 0 : options_.drain_timeout_ms);
      const bool all_done =
          options_.drain_timeout_ms < 0 ||
          drain_cv_.wait_for(lk, budget, [this] {
            mu_.assert_held();
            for (const std::unique_ptr<Connection>& conn : connections_) {
              if (!conn->done) return false;
            }
            return true;
          });
      if (!all_done) {
        // Drain budget spent: force the stragglers. Their in-flight
        // work is abandoned mid-reply — the client's retry layer owns
        // it from here.
        forced = true;
        for (const std::unique_ptr<Connection>& conn : connections_) {
          if (!conn->done) conn->stream.shutdown_both();
        }
      }
    }
    to_join.swap(connections_);
  }
  for (const std::unique_ptr<Connection>& conn : to_join) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  if (draining > 0) {
    if (forced) {
      WCK_COUNTER_ADD("server.drain.forced", 1);
    } else {
      WCK_COUNTER_ADD("server.drain.clean", 1);
    }
    WCK_EVENT(kServerDrain, 0, forced ? "forced" : "clean");
  }
  // Final exposition dump *after* the drain so the snapshot covers the
  // last requests; without this a SIGTERM'd server loses its final
  // --expose interval (and the slow-request log with it).
  if (first_stop && !options_.drain_snapshot_dir.empty()) {
    telemetry::write_exposition_snapshot(options_.drain_snapshot_dir);
  }
}

void StoreServer::accept_loop() {
  for (;;) {
    net::UnixStream stream;
    try {
      stream = listener_.accept_next();
    } catch (const IoError&) {
      return;  // listener closed — the shutdown signal
    }
    auto conn = std::make_unique<Connection>();
    conn->stream = std::move(stream);
    Connection* raw = conn.get();

    MutexLock lk(mu_);
    if (stopping_) return;  // raced with stop(); drop the connection
    ++accepted_;
    reap_finished();
    conn->thread = std::thread([this, raw] { handle_connection(raw); });
    connections_.push_back(std::move(conn));
  }
}

void StoreServer::reap_finished() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void StoreServer::handle_connection(Connection* conn) {
  WCK_COUNTER_ADD("server.connections", 1);
  WCK_EVENT(kServerConnect, 0, "");
  net::FrameDecoder decoder;
  bool close_connection = false;
  try {
    while (!close_connection) {
      Bytes chunk;
      // Two deadlines, chosen by where the stream stands: bytes already
      // buffered mean a frame is in flight (a stall now is a slow-loris
      // sender — tell it and hang up), an empty buffer means the peer
      // is between requests (a stall is mere idleness — reap quietly).
      const bool mid_frame = decoder.buffered() > 0;
      try {
        const int timeout_ms = mid_frame ? options_.read_timeout_ms : options_.idle_timeout_ms;
        if (conn->stream.recv_some(chunk, 64 * 1024, timeout_ms) == 0) break;  // EOF
      } catch (const TimeoutError& e) {
        if (mid_frame) {
          WCK_COUNTER_ADD("server.timeout.reads", 1);
          WCK_EVENT(kServerTimeout, 0, std::string("mid-frame: ") + e.what());
          conn->stream.send_all(error_reply(ErrorCode::kTimeout, e.what()),
                                options_.write_timeout_ms);
        } else {
          WCK_COUNTER_ADD("server.timeout.idle_reaped", 1);
          WCK_EVENT(kServerTimeout, 0, "idle connection reaped");
          MutexLock lk(mu_);
          ++idle_reaped_;
        }
        break;
      }
      decoder.feed(chunk);
      while (!close_connection) {
        const std::optional<net::Frame> frame = decoder.next();
        if (!frame) break;
        conn->stream.send_all(handle_frame(*frame, close_connection),
                              options_.write_timeout_ms);
      }
    }
  } catch (const FormatError& e) {
    // A broken frame stream (bad magic/length/CRC) has no resync point:
    // report and hang up.
    try {
      conn->stream.send_all(error_reply(ErrorCode::kBadRequest, e.what()),
                            options_.write_timeout_ms);
    } catch (const Error&) {
    }
  } catch (const CorruptDataError& e) {
    try {
      conn->stream.send_all(error_reply(ErrorCode::kCorrupt, e.what()),
                            options_.write_timeout_ms);
    } catch (const Error&) {
    }
  } catch (const TimeoutError& e) {
    // A reply send that timed out (peer not draining): record and drop.
    WCK_COUNTER_ADD("server.timeout.writes", 1);
    WCK_EVENT(kServerTimeout, 0, std::string("write: ") + e.what());
  } catch (const Error&) {
    // Socket failure (peer vanished mid-reply): nothing left to tell it.
  }
  conn->stream.shutdown_both();
  WCK_EVENT(kServerDisconnect, 0, "");
  MutexLock lk(mu_);
  conn->done = true;
  drain_cv_.notify_all();
}

Bytes StoreServer::handle_frame(const net::Frame& frame, bool& close_connection) {
  AnyMessage message;
  try {
    message = net::decode_message(frame);
  } catch (const Error& e) {
    // The frame itself was sound (CRC passed) but the body was not a
    // well-formed request; the stream stays usable.
    return error_reply(ErrorCode::kBadRequest, e.what());
  }

  // The scope opens the server-side boundary span (continuing the
  // client's wire trace context) and, on finish, records the per-RPC
  // histograms and the slow-request log entry.
  ServerRpcScope rpc(message, frame.payload.size(), options_.slow_request_ms);
  Bytes reply = dispatch_request(message, close_connection);
  rpc.finish(reply.size(), reply_is_error(reply));
  return reply;
}

Bytes StoreServer::dispatch_request(const AnyMessage& message, bool& close_connection) {
  try {
    if (std::holds_alternative<net::PingRequest>(message)) {
      return encode_reply(MessageType::kPong, net::encode(net::PongResponse{}));
    }
    if (const auto* put = std::get_if<net::PutRequest>(&message)) {
      return encode_reply(MessageType::kPutOk, net::encode(service_.put(*put)));
    }
    if (const auto* get = std::get_if<net::GetRequest>(&message)) {
      return encode_reply(MessageType::kGetOk, net::encode(service_.get(*get)));
    }
    if (const auto* stat = std::get_if<net::StatRequest>(&message)) {
      return encode_reply(MessageType::kStatOk, net::encode(service_.stat(*stat)));
    }
    if (std::holds_alternative<net::ShutdownRequest>(message)) {
      close_connection = true;
      request_shutdown();
      return encode_reply(MessageType::kShutdownOk, net::encode(net::ShutdownOkResponse{}));
    }
    // A response type sent at the server: a confused client.
    return error_reply(ErrorCode::kBadRequest, "request frame expected");
  } catch (const QuotaExceededError& e) {
    return error_reply(ErrorCode::kQuotaExceeded, e.what());
  } catch (const BusyError& e) {
    return error_reply(ErrorCode::kBusy, e.what());
  } catch (const NotFoundError& e) {
    return error_reply(ErrorCode::kNotFound, e.what());
  } catch (const InvalidArgumentError& e) {
    return error_reply(ErrorCode::kBadRequest, e.what());
  } catch (const FormatError& e) {
    return error_reply(ErrorCode::kBadRequest, e.what());
  } catch (const CorruptDataError& e) {
    return error_reply(ErrorCode::kCorrupt, e.what());
  } catch (const IoError& e) {
    return error_reply(ErrorCode::kIo, e.what());
  } catch (const std::exception& e) {
    return error_reply(ErrorCode::kInternal, e.what());
  }
}

}  // namespace wck::server
