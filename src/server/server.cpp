#include "server/server.hpp"

#include <optional>
#include <utility>
#include <variant>

#include "net/frame.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck::server {
namespace {

using net::AnyMessage;
using net::ErrorCode;
using net::ErrorResponse;
using net::MessageType;

[[nodiscard]] Bytes encode_reply(MessageType type, const Bytes& body) {
  return net::encode_frame(static_cast<std::uint8_t>(type), body);
}

[[nodiscard]] Bytes error_reply(ErrorCode code, const std::string& message) {
  WCK_COUNTER_ADD("server.errors", 1);
  ErrorResponse resp;
  resp.code = code;
  resp.message = message;
  return encode_reply(MessageType::kError, net::encode(resp));
}

}  // namespace

StoreServer::StoreServer(CheckpointService& service, const std::string& socket_path)
    : service_(service),
      socket_path_(socket_path),
      listener_(net::UnixListener::bind_and_listen(socket_path)) {
  WCK_EVENT(kServerStart, 0, socket_path_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

StoreServer::~StoreServer() { stop(); }

void StoreServer::wait_for_shutdown() {
  MutexLock lk(mu_);
  shutdown_cv_.wait(lk, [this] {
    mu_.assert_held();
    return shutdown_requested_;
  });
}

void StoreServer::request_shutdown() {
  MutexLock lk(mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

std::uint64_t StoreServer::connections_accepted() const {
  MutexLock lk(mu_);
  return accepted_;
}

void StoreServer::stop() {
  {
    MutexLock lk(mu_);
    if (!stopping_) WCK_EVENT(kServerStop, 0, socket_path_);
    stopping_ = true;
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
  listener_.close();  // wakes a blocked accept_next()
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::unique_ptr<Connection>> to_join;
  {
    MutexLock lk(mu_);
    for (const std::unique_ptr<Connection>& conn : connections_) {
      conn->stream.shutdown_both();  // wakes a blocked recv with EOF
    }
    to_join.swap(connections_);
  }
  for (const std::unique_ptr<Connection>& conn : to_join) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void StoreServer::accept_loop() {
  for (;;) {
    net::UnixStream stream;
    try {
      stream = listener_.accept_next();
    } catch (const IoError&) {
      return;  // listener closed — the shutdown signal
    }
    auto conn = std::make_unique<Connection>();
    conn->stream = std::move(stream);
    Connection* raw = conn.get();

    MutexLock lk(mu_);
    if (stopping_) return;  // raced with stop(); drop the connection
    ++accepted_;
    reap_finished();
    conn->thread = std::thread([this, raw] { handle_connection(raw); });
    connections_.push_back(std::move(conn));
  }
}

void StoreServer::reap_finished() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void StoreServer::handle_connection(Connection* conn) {
  WCK_COUNTER_ADD("server.connections", 1);
  WCK_EVENT(kServerConnect, 0, "");
  net::FrameDecoder decoder;
  bool close_connection = false;
  try {
    while (!close_connection) {
      Bytes chunk;
      if (conn->stream.recv_some(chunk, 64 * 1024) == 0) break;  // EOF
      decoder.feed(chunk);
      while (!close_connection) {
        const std::optional<net::Frame> frame = decoder.next();
        if (!frame) break;
        conn->stream.send_all(handle_frame(*frame, close_connection));
      }
    }
  } catch (const FormatError& e) {
    // A broken frame stream (bad magic/length/CRC) has no resync point:
    // report and hang up.
    try {
      conn->stream.send_all(error_reply(ErrorCode::kBadRequest, e.what()));
    } catch (const Error&) {
    }
  } catch (const CorruptDataError& e) {
    try {
      conn->stream.send_all(error_reply(ErrorCode::kCorrupt, e.what()));
    } catch (const Error&) {
    }
  } catch (const Error&) {
    // Socket failure (peer vanished mid-reply): nothing left to tell it.
  }
  conn->stream.shutdown_both();
  WCK_EVENT(kServerDisconnect, 0, "");
  MutexLock lk(mu_);
  conn->done = true;
}

Bytes StoreServer::handle_frame(const net::Frame& frame, bool& close_connection) {
  AnyMessage message;
  try {
    message = net::decode_message(frame);
  } catch (const Error& e) {
    // The frame itself was sound (CRC passed) but the body was not a
    // well-formed request; the stream stays usable.
    return error_reply(ErrorCode::kBadRequest, e.what());
  }

  try {
    if (std::holds_alternative<net::PingRequest>(message)) {
      return encode_reply(MessageType::kPong, net::encode(net::PongResponse{}));
    }
    if (const auto* put = std::get_if<net::PutRequest>(&message)) {
      return encode_reply(MessageType::kPutOk, net::encode(service_.put(*put)));
    }
    if (const auto* get = std::get_if<net::GetRequest>(&message)) {
      return encode_reply(MessageType::kGetOk, net::encode(service_.get(*get)));
    }
    if (const auto* stat = std::get_if<net::StatRequest>(&message)) {
      return encode_reply(MessageType::kStatOk, net::encode(service_.stat(*stat)));
    }
    if (std::holds_alternative<net::ShutdownRequest>(message)) {
      close_connection = true;
      request_shutdown();
      return encode_reply(MessageType::kShutdownOk, net::encode(net::ShutdownOkResponse{}));
    }
    // A response type sent at the server: a confused client.
    return error_reply(ErrorCode::kBadRequest, "request frame expected");
  } catch (const QuotaExceededError& e) {
    return error_reply(ErrorCode::kQuotaExceeded, e.what());
  } catch (const BusyError& e) {
    return error_reply(ErrorCode::kBusy, e.what());
  } catch (const NotFoundError& e) {
    return error_reply(ErrorCode::kNotFound, e.what());
  } catch (const InvalidArgumentError& e) {
    return error_reply(ErrorCode::kBadRequest, e.what());
  } catch (const FormatError& e) {
    return error_reply(ErrorCode::kBadRequest, e.what());
  } catch (const CorruptDataError& e) {
    return error_reply(ErrorCode::kCorrupt, e.what());
  } catch (const IoError& e) {
    return error_reply(ErrorCode::kIo, e.what());
  } catch (const std::exception& e) {
    return error_reply(ErrorCode::kInternal, e.what());
  }
}

}  // namespace wck::server
