// Server-side RPC observability: one ServerRpcScope per handled request
// frame turns the request into
//   - a "server.rpc.<type>" boundary span that *continues* the client's
//     wire-propagated TraceContext (same trace_id, client span as
//     parent), so merged client+server timelines line up,
//   - "server.rpc.<type>.seconds" / ".bytes" histograms (p50/p95/p99
//     companions come free from the exposition layer) and an ".errors"
//     counter when the reply is an ErrorResponse,
//   - a structured slow-request record in the flight recorder
//     (kServerSlowRequest) when the RPC exceeds a configurable
//     threshold.
//
// Everything here honours WCK_TELEMETRY=off with zero allocations: the
// scope constructor early-returns before touching the request, and the
// per-tenant helpers return before building the metric name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "net/protocol.hpp"
#include "telemetry/trace.hpp"

namespace wck::server {

/// RAII instrumentation for one server-side RPC. Construct after
/// decode, call finish() with the encoded reply's size once it exists;
/// the destructor closes the trace span (and falls back to
/// finish(0, false) if finish was never called, e.g. when encoding
/// threw).
class ServerRpcScope {
 public:
  ServerRpcScope(const net::AnyMessage& request, std::size_t request_bytes,
                 int slow_request_ms);
  ~ServerRpcScope();

  ServerRpcScope(const ServerRpcScope&) = delete;
  ServerRpcScope& operator=(const ServerRpcScope&) = delete;

  /// Records duration/byte histograms, the error counter, and (when
  /// over threshold) the slow-request event. Idempotent.
  void finish(std::size_t reply_bytes, bool error_reply) noexcept;

  /// The server-side trace context (continuation of the client's), or
  /// zero when the request carried none / telemetry is off.
  [[nodiscard]] const telemetry::TraceContext& context() const noexcept { return ctx_; }

 private:
  net::MessageType type_ = net::MessageType::kPing;
  const char* type_name_ = "ping";
  std::string_view tenant_;  ///< views into the request; caller keeps it alive
  std::uint64_t step_ = 0;
  telemetry::TraceContext ctx_;
  double start_us_ = 0.0;
  std::size_t request_bytes_ = 0;
  int slow_request_ms_ = -1;
  bool active_ = false;
  bool finished_ = false;
  std::optional<telemetry::TraceSpan> span_;
};

/// Adds to "server.tenant.<tenant>.<what>" — the per-tenant counter
/// family (puts, gets, rejects, dedup_replays). The name is built
/// dynamically, so this is the one metrics path that allocates; it
/// allocates nothing (and registers nothing) when telemetry is off.
void add_tenant_counter(std::string_view tenant, const char* what, std::uint64_t delta = 1);

/// Sets "server.tenant.<tenant>.<what>" as a gauge (quota_utilization).
void set_tenant_gauge(std::string_view tenant, const char* what, double value);

}  // namespace wck::server
