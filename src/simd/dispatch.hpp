// Runtime-dispatched SIMD kernel layer for the numeric hot path.
//
// Every kernel exists at three levels — portable scalar, SSE2, AVX2 —
// and all levels are bit-identical: the vector paths are restricted to
// operations whose IEEE-754 results match the scalar reference exactly
// (power-of-two scaling, min/max with explicit NaN ordering, integer
// table lookups, pure data movement). Callers fetch a KernelTable once
// per batch via kernels() and never include intrinsics headers
// themselves (wck_lint rule "raw-simd" enforces this: intrinsics live
// only under src/simd/).
//
// Level selection: the best level supported by both the build and the
// CPU (CPUID at first use), overridable with WCK_SIMD=scalar|sse2|avx2|auto
// through the wck::env cache. A request above what the CPU supports
// clamps down; unknown values behave as "auto". The resolved level is
// cached for the process lifetime and published as the "simd.level"
// telemetry gauge so bench records are comparable across machines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace wck::simd {

/// Dispatch levels, ordered weakest to strongest.
enum class Level : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

[[nodiscard]] const char* to_string(Level level) noexcept;

/// Parses "scalar" / "sse2" / "avx2". Anything else (including "auto")
/// returns nullopt.
[[nodiscard]] std::optional<Level> parse_level(std::string_view s) noexcept;

/// One function pointer per kernel. All levels compute bit-identical
/// results; only throughput differs.
struct KernelTable {
  /// Haar forward over `pairs` contiguous (a, b) pairs:
  /// low[i] = (src[2i] + src[2i+1]) / 2, high[i] = (src[2i] - src[2i+1]) / 2.
  /// low/high must not alias src.
  void (*haar_forward_pairs)(const double* src, double* low, double* high, std::size_t pairs);
  /// Inverse: dst[2i] = low[i] + high[i], dst[2i+1] = low[i] - high[i].
  /// dst must not alias low/high.
  void (*haar_inverse_pairs)(const double* low, const double* high, double* dst,
                             std::size_t pairs);
  /// Min/max over v[0..n). Matches the sequential fold
  /// `lo = (v < lo) ? v : lo` seeded with v[0] (NaN seed is sticky,
  /// later NaNs are ignored), except that a ±0.0 result is canonicalized
  /// to +0.0 so lane order cannot leak into the output. n must be > 0.
  void (*range_min_max)(const double* v, std::size_t n, double* lo, double* hi);
  /// Equal-width partition index of each v[i] over [lo, lo + n/inv_width),
  /// clamped to [0, divisions-1]. NaN and -inf map to 0, +inf to
  /// divisions-1.
  void (*grid_index_batch)(const double* v, std::size_t n, double lo, double inv_width,
                           std::int32_t divisions, std::int32_t* out);
  /// words[i/64] bit (i%64) := (idx[i] >= 0). Overwrites all
  /// (n + 63) / 64 words including padding bits (cleared).
  void (*bitmap_pack_ge0)(const std::int32_t* idx, std::size_t n, std::uint64_t* words);
  /// out[i] = bit i set ? averages[indices[qi++]] : exact[ei++]; pure
  /// selection, no arithmetic. The caller guarantees popcount(words) ==
  /// #indices, n - popcount == #exact, and every index < #averages.
  void (*bitmap_select)(const std::uint64_t* words, std::size_t n, const double* averages,
                        const std::uint8_t* indices, const double* exact, double* out);
  /// n doubles -> 8n little-endian bytes (bit pattern, no conversion).
  void (*pack_f64_le)(const double* v, std::size_t n, std::byte* out);
  /// 8n little-endian bytes -> n doubles.
  void (*unpack_f64_le)(const std::byte* in, std::size_t n, double* out);
  /// CRC-32 (polynomial 0xEDB88320, reflected). `state` is the running
  /// pre-inversion register; Crc32 owns the init/final xor.
  std::uint32_t (*crc32_update)(std::uint32_t state, const unsigned char* p, std::size_t n);
  /// Adler-32 accumulator step over p[0..n): a += p[i]; b += a, both
  /// reduced mod 65521 at least every 5552 bytes.
  void (*adler32_update)(std::uint32_t* a, std::uint32_t* b, const unsigned char* p,
                         std::size_t n);
};

/// Strongest level supported by this build AND this CPU.
[[nodiscard]] Level detected_best() noexcept;

/// Every level runnable on this machine: kScalar up to detected_best().
[[nodiscard]] std::vector<Level> available_levels();

/// The process-wide level: WCK_SIMD-resolved on first call, then cached.
[[nodiscard]] Level active_level();

/// Kernels for active_level().
[[nodiscard]] const KernelTable& kernels();

/// Kernels for a specific level; throws InvalidArgumentError if `level`
/// is not in available_levels().
[[nodiscard]] const KernelTable& kernels_for(Level level);

/// Test hooks: force / re-resolve the cached active level. The forced
/// level must be available. Not for production use — call sites cache
/// the table per batch, so flipping mid-batch is a test-only concept.
void set_active_level_for_test(Level level);
void reset_active_level_for_test();

/// Single-value reference of the grid_index_batch contract; the
/// quantizer's per-value classify() and every kernel tail loop call
/// this exact function so the definition lives in one place.
/// Equivalent to floor((v - lo) * inv_width) clamped to
/// [0, divisions - 1], with NaN and -inf mapping to 0 and +inf to
/// divisions - 1 (truncation equals floor once x >= 1).
[[nodiscard]] inline std::int32_t grid_index_one(double v, double lo, double inv_width,
                                                 std::int32_t divisions) noexcept {
  const double x = (v - lo) * inv_width;
  if (!(x >= 1.0)) return 0;  // also catches NaN
  if (x >= static_cast<double>(divisions)) return divisions - 1;
  return static_cast<std::int32_t>(x);
}

}  // namespace wck::simd
