// AVX2 kernels. This TU is the only one compiled with -mavx2 (and
// nothing more: no FMA — fused contraction would break bit-identity of
// separately rounded add-then-multiply sequences).
//
// Same bit-identity arguments as kernels_sse2.cpp, widened to 4 lanes;
// see that file for the NaN/±0/clamping reasoning.
#include "simd/kernels.hpp"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace wck::simd::detail {
namespace {

void haar_forward_pairs(const double* src, double* low, double* high, std::size_t pairs) {
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t i = 0;
  for (; i + 4 <= pairs; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(src + 2 * i);      // a0 b0 a1 b1
    const __m256d v1 = _mm256_loadu_pd(src + 2 * i + 4);  // a2 b2 a3 b3
    const __m256d t0 = _mm256_permute2f128_pd(v0, v1, 0x20);  // a0 b0 a2 b2
    const __m256d t1 = _mm256_permute2f128_pd(v0, v1, 0x31);  // a1 b1 a3 b3
    const __m256d a = _mm256_unpacklo_pd(t0, t1);             // a0 a1 a2 a3
    const __m256d b = _mm256_unpackhi_pd(t0, t1);             // b0 b1 b2 b3
    _mm256_storeu_pd(low + i, _mm256_mul_pd(_mm256_add_pd(a, b), half));
    _mm256_storeu_pd(high + i, _mm256_mul_pd(_mm256_sub_pd(a, b), half));
  }
  for (; i < pairs; ++i) {
    const double a = src[2 * i];
    const double b = src[2 * i + 1];
    low[i] = (a + b) / 2.0;
    high[i] = (a - b) / 2.0;
  }
}

void haar_inverse_pairs(const double* low, const double* high, double* dst, std::size_t pairs) {
  std::size_t i = 0;
  for (; i + 4 <= pairs; i += 4) {
    const __m256d lo = _mm256_loadu_pd(low + i);
    const __m256d hi = _mm256_loadu_pd(high + i);
    const __m256d sum = _mm256_add_pd(lo, hi);
    const __m256d diff = _mm256_sub_pd(lo, hi);
    const __m256d u0 = _mm256_unpacklo_pd(sum, diff);  // s0 d0 s2 d2
    const __m256d u1 = _mm256_unpackhi_pd(sum, diff);  // s1 d1 s3 d3
    _mm256_storeu_pd(dst + 2 * i, _mm256_permute2f128_pd(u0, u1, 0x20));
    _mm256_storeu_pd(dst + 2 * i + 4, _mm256_permute2f128_pd(u0, u1, 0x31));
  }
  for (; i < pairs; ++i) {
    dst[2 * i] = low[i] + high[i];
    dst[2 * i + 1] = low[i] - high[i];
  }
}

void range_min_max(const double* v, std::size_t n, double* lo, double* hi) {
  __m256d vmn = _mm256_set1_pd(v[0]);
  __m256d vmx = vmn;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    vmn = _mm256_min_pd(x, vmn);
    vmx = _mm256_max_pd(x, vmx);
  }
  alignas(32) double lmn[4];
  alignas(32) double lmx[4];
  _mm256_store_pd(lmn, vmn);
  _mm256_store_pd(lmx, vmx);
  double mn = lmn[0];
  double mx = lmx[0];
  for (int k = 1; k < 4; ++k) {
    mn = (lmn[k] < mn) ? lmn[k] : mn;
    mx = (mx < lmx[k]) ? lmx[k] : mx;
  }
  for (; i < n; ++i) {
    mn = (v[i] < mn) ? v[i] : mn;
    mx = (mx < v[i]) ? v[i] : mx;
  }
  if (mn == 0.0) mn = 0.0;
  if (mx == 0.0) mx = 0.0;
  *lo = mn;
  *hi = mx;
}

void grid_index_batch(const double* v, std::size_t n, double lo, double inv_width,
                      std::int32_t divisions, std::int32_t* out) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vinv = _mm256_set1_pd(inv_width);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vtop = _mm256_set1_pd(static_cast<double>(divisions - 1));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(v + i), vlo), vinv);
    const __m256d y = _mm256_min_pd(_mm256_max_pd(x, vzero), vtop);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm256_cvttpd_epi32(y));
  }
  for (; i < n; ++i) {
    out[i] = grid_index_one(v[i], lo, inv_width, divisions);
  }
}

void bitmap_pack_ge0(const std::int32_t* idx, std::size_t n, std::uint64_t* words) {
  const std::size_t full = n / 64;
  for (std::size_t w = 0; w < full; ++w) {
    std::uint64_t bits = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      const __m256i q =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + w * 64 + 8 * k));
      const int m = _mm256_movemask_ps(_mm256_castsi256_ps(q));
      bits |= static_cast<std::uint64_t>(~m & 0xFF) << (8 * k);
    }
    words[w] = bits;
  }
  if (n % 64 != 0) {
    std::uint64_t bits = 0;
    for (std::size_t i = full * 64; i < n; ++i) {
      if (idx[i] >= 0) bits |= 1ull << (i % 64);
    }
    words[full] = bits;
  }
}

void bitmap_select(const std::uint64_t* words, std::size_t n, const double* averages,
                   const std::uint8_t* indices, const double* exact, double* out) {
  std::size_t qi = 0;
  std::size_t ei = 0;
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const std::uint64_t w = words[i / 64];
    if (w == ~0ull) {
      // Masked form with an explicit zero source: the plain
      // _mm256_i32gather_pd expands through _mm256_undefined_pd, which
      // GCC flags -Wmaybe-uninitialized.
      const __m256d src = _mm256_setzero_pd();
      const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
      for (std::size_t k = 0; k < 64; k += 4) {
        std::uint32_t quad;
        std::memcpy(&quad, indices + qi + k, sizeof(quad));
        const __m128i idx4 = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(quad)));
        _mm256_storeu_pd(out + i + k, _mm256_mask_i32gather_pd(src, averages, idx4, all, 8));
      }
      qi += 64;
    } else if (w == 0) {
      std::memcpy(out + i, exact + ei, 64 * sizeof(double));
      ei += 64;
    } else {
      for (std::size_t k = 0; k < 64; ++k) {
        out[i + k] = ((w >> k) & 1ull) != 0 ? averages[indices[qi++]] : exact[ei++];
      }
    }
  }
  for (; i < n; ++i) {
    const bool quantized = (words[i / 64] >> (i % 64)) & 1ull;
    out[i] = quantized ? averages[indices[qi++]] : exact[ei++];
  }
}

void pack_f64_le(const double* v, std::size_t n, std::byte* out) {
  if (n == 0) return;  // empty vectors hand memcpy a null data() pointer (UB)
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a = _mm256_loadu_pd(v + i);
    const __m256d b = _mm256_loadu_pd(v + i + 4);
    _mm256_storeu_pd(reinterpret_cast<double*>(out + 8 * i), a);
    _mm256_storeu_pd(reinterpret_cast<double*>(out + 8 * i + 32), b);
  }
  if (i < n) std::memcpy(out + 8 * i, v + i, (n - i) * sizeof(double));
}

void unpack_f64_le(const std::byte* in, std::size_t n, double* out) {
  if (n == 0) return;  // empty vectors hand memcpy a null data() pointer (UB)
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a = _mm256_loadu_pd(reinterpret_cast<const double*>(in + 8 * i));
    const __m256d b = _mm256_loadu_pd(reinterpret_cast<const double*>(in + 8 * i + 32));
    _mm256_storeu_pd(out + i, a);
    _mm256_storeu_pd(out + i + 4, b);
  }
  if (i < n) std::memcpy(out + i, in + 8 * i, (n - i) * sizeof(double));
}

void adler32_update(std::uint32_t* pa, std::uint32_t* pb, const unsigned char* p, std::size_t n) {
  constexpr std::uint32_t kMod = 65521;
  constexpr std::size_t kBlock = 5552;
  std::uint32_t a = *pa;
  std::uint32_t b = *pb;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones16 = _mm256_set1_epi16(1);
  // Weight of byte i within a 32-byte group is 32 - i (setr lists byte 0
  // first). maddubs pairs fit int16: max 255*32 + 255*31 < 32768.
  const __m256i wts = _mm256_setr_epi8(32, 31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19,
                                       18, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3,
                                       2, 1);
  while (n > 0) {
    std::size_t chunk = n < kBlock ? n : kBlock;
    n -= chunk;
    for (; chunk >= 32; chunk -= 32, p += 32) {
      const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      const __m256i sad = _mm256_sad_epu8(v, zero);
      const __m256i w32 = _mm256_madd_epi16(_mm256_maddubs_epi16(v, wts), ones16);
      __m128i s4 = _mm_add_epi32(_mm256_castsi256_si128(sad), _mm256_extracti128_si256(sad, 1));
      s4 = _mm_add_epi32(s4, _mm_srli_si128(s4, 8));
      __m128i w4 = _mm_add_epi32(_mm256_castsi256_si128(w32), _mm256_extracti128_si256(w32, 1));
      w4 = _mm_add_epi32(w4, _mm_srli_si128(w4, 8));
      w4 = _mm_add_epi32(w4, _mm_srli_si128(w4, 4));
      b += 32 * a + static_cast<std::uint32_t>(_mm_cvtsi128_si32(w4));
      a += static_cast<std::uint32_t>(_mm_cvtsi128_si32(s4));
    }
    adler32_tail(a, b, p, chunk);
    p += chunk;
    a %= kMod;
    b %= kMod;
  }
  *pa = a;
  *pb = b;
}

constexpr KernelTable kAvx2Table{
    haar_forward_pairs, haar_inverse_pairs, range_min_max, grid_index_batch,
    bitmap_pack_ge0,    bitmap_select,      pack_f64_le,   unpack_f64_le,
    crc32_update_slice8, adler32_update,
};

}  // namespace

const KernelTable* avx2_table() noexcept { return &kAvx2Table; }

}  // namespace wck::simd::detail

#else  // built without AVX2 support: level not available

namespace wck::simd::detail {
const KernelTable* avx2_table() noexcept { return nullptr; }
}  // namespace wck::simd::detail

#endif
