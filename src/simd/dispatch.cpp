#include "simd/dispatch.hpp"

#include <atomic>
#include <string>

#include "simd/kernels.hpp"
#include "telemetry/metrics.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace wck::simd {
namespace {

/// Cached resolved level; -1 = not resolved yet. Written once (or by
/// the test hooks); call sites fetch the table once per batch, so a
/// relaxed read is enough.
std::atomic<int> g_active{-1};

const KernelTable* table_for(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return detail::scalar_table();
    case Level::kSse2:
      return detail::sse2_table();
    case Level::kAvx2:
      return detail::avx2_table();
  }
  return nullptr;
}

Level resolve_from_env() {
  const Level best = detected_best();
  const auto raw = env::get("WCK_SIMD");
  if (!raw || raw->empty() || *raw == "auto") return best;
  const auto parsed = parse_level(*raw);
  if (!parsed) return best;  // unknown value behaves as "auto"
  // A request above what the machine supports clamps down rather than
  // failing: WCK_SIMD=avx2 on an SSE2-only box still runs.
  return static_cast<int>(*parsed) < static_cast<int>(best) ? *parsed : best;
}

void publish_gauge(Level level) {
  WCK_GAUGE_SET("simd.level", static_cast<double>(static_cast<int>(level)));
}

}  // namespace

const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<Level> parse_level(std::string_view s) noexcept {
  if (s == "scalar") return Level::kScalar;
  if (s == "sse2") return Level::kSse2;
  if (s == "avx2") return Level::kAvx2;
  return std::nullopt;
}

Level detected_best() noexcept {
#if defined(__x86_64__)
  if (detail::avx2_table() != nullptr && __builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (detail::sse2_table() != nullptr && __builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

std::vector<Level> available_levels() {
  std::vector<Level> out{Level::kScalar};
  const Level best = detected_best();
  if (best >= Level::kSse2) out.push_back(Level::kSse2);
  if (best >= Level::kAvx2) out.push_back(Level::kAvx2);
  return out;
}

Level active_level() {
  const int cached = g_active.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<Level>(cached);
  const Level resolved = resolve_from_env();
  int expected = -1;
  if (g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                       std::memory_order_relaxed)) {
    publish_gauge(resolved);
    return resolved;
  }
  return static_cast<Level>(expected);  // another thread resolved first
}

const KernelTable& kernels() { return *table_for(active_level()); }

const KernelTable& kernels_for(Level level) {
  if (static_cast<int>(level) > static_cast<int>(detected_best())) {
    throw InvalidArgumentError(std::string("SIMD level not available on this machine: ") +
                               to_string(level));
  }
  return *table_for(level);
}

void set_active_level_for_test(Level level) {
  if (static_cast<int>(level) > static_cast<int>(detected_best())) {
    throw InvalidArgumentError(std::string("SIMD level not available on this machine: ") +
                               to_string(level));
  }
  g_active.store(static_cast<int>(level), std::memory_order_relaxed);
  publish_gauge(level);
}

void reset_active_level_for_test() { g_active.store(-1, std::memory_order_relaxed); }

}  // namespace wck::simd
