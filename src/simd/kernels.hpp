// Internal glue between dispatch.cpp and the per-level kernel TUs.
// Only src/simd/ may include this header.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "simd/dispatch.hpp"

namespace wck::simd::detail {

/// Per-level tables. scalar_table() always exists; the x86 tables
/// return nullptr when the translation unit was built without the
/// matching instruction set (non-x86 targets, or a compiler without
/// -mavx2 support).
[[nodiscard]] const KernelTable* scalar_table() noexcept;
[[nodiscard]] const KernelTable* sse2_table() noexcept;
[[nodiscard]] const KernelTable* avx2_table() noexcept;

// --- helpers shared by the level TUs so tails and references run the
// --- exact same code path.

/// CRC-32 lookup tables (polynomial 0xEDB88320) for slice-by-N; the
/// scalar reference uses t[0..3], slice-by-8 uses all eight.
struct CrcTables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  CrcTables() noexcept;
};
[[nodiscard]] const CrcTables& crc_tables() noexcept;

/// Slice-by-8 CRC-32 update (same polynomial => same values as the
/// scalar slice-by-4 reference by construction). Shared by the SSE2 and
/// AVX2 tables.
[[nodiscard]] std::uint32_t crc32_update_slice8(std::uint32_t state, const unsigned char* p,
                                                std::size_t n);

// Kernel tail loops use wck::simd::grid_index_one (dispatch.hpp) so the
// single-value reference lives in exactly one place.

/// Word-at-a-time bitmap_select: full all-ones / all-zeros words take
/// bulk paths, mixed words fall back to per-bit selection. Used by the
/// SSE2 table (no gather before AVX2) and by the AVX2 tail.
void bitmap_select_wordfast(const std::uint64_t* words, std::size_t n, const double* averages,
                            const std::uint8_t* indices, const double* exact, double* out);

/// Adler-32 scalar tail shared by the vector levels: the plain
/// `a += p[i]; b += a` loop with NO modular reduction (the caller
/// reduces once per <= 5552-byte chunk).
inline void adler32_tail(std::uint32_t& a, std::uint32_t& b, const unsigned char* p,
                         std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    a += p[i];
    b += a;
  }
}

}  // namespace wck::simd::detail
