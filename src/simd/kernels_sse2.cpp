// SSE2 kernels (x86-64 baseline; no extra compile flags needed).
//
// Bit-identity notes, mirrored in tests/simd_test.cpp:
//  * (a+b)*0.5 == (a+b)/2.0 for every double (scaling by an exact power
//    of two is correctly rounded either way).
//  * _mm_min_pd(x, acc) computes (x < acc) ? x : acc and returns the
//    second operand when either is NaN — exactly the scalar fold
//    `mn = (v < mn) ? v : mn`: NaN inputs are ignored, a NaN seed is
//    sticky. Seeding every lane with v[0] (not the first vector) keeps
//    the NaN-seed semantics identical to the sequential fold.
//  * grid index: clamping x into [0, divisions-1] in the double domain
//    and then truncating equals floor-then-clamp for every input the
//    contract defines (truncation == floor once x >= 1; max_pd(x, 0)
//    maps NaN and negatives to 0; min_pd clamps +inf and overflow).
#include "simd/kernels.hpp"

#if defined(__x86_64__) && defined(__SSE2__)

#include <emmintrin.h>

#include <cstring>

namespace wck::simd::detail {
namespace {

void haar_forward_pairs(const double* src, double* low, double* high, std::size_t pairs) {
  const __m128d half = _mm_set1_pd(0.5);
  std::size_t i = 0;
  for (; i + 2 <= pairs; i += 2) {
    const __m128d v0 = _mm_loadu_pd(src + 2 * i);      // a0 b0
    const __m128d v1 = _mm_loadu_pd(src + 2 * i + 2);  // a1 b1
    const __m128d a = _mm_unpacklo_pd(v0, v1);         // a0 a1
    const __m128d b = _mm_unpackhi_pd(v0, v1);         // b0 b1
    _mm_storeu_pd(low + i, _mm_mul_pd(_mm_add_pd(a, b), half));
    _mm_storeu_pd(high + i, _mm_mul_pd(_mm_sub_pd(a, b), half));
  }
  for (; i < pairs; ++i) {
    const double a = src[2 * i];
    const double b = src[2 * i + 1];
    low[i] = (a + b) / 2.0;
    high[i] = (a - b) / 2.0;
  }
}

void haar_inverse_pairs(const double* low, const double* high, double* dst, std::size_t pairs) {
  std::size_t i = 0;
  for (; i + 2 <= pairs; i += 2) {
    const __m128d lo = _mm_loadu_pd(low + i);
    const __m128d hi = _mm_loadu_pd(high + i);
    const __m128d sum = _mm_add_pd(lo, hi);
    const __m128d diff = _mm_sub_pd(lo, hi);
    _mm_storeu_pd(dst + 2 * i, _mm_unpacklo_pd(sum, diff));
    _mm_storeu_pd(dst + 2 * i + 2, _mm_unpackhi_pd(sum, diff));
  }
  for (; i < pairs; ++i) {
    dst[2 * i] = low[i] + high[i];
    dst[2 * i + 1] = low[i] - high[i];
  }
}

void range_min_max(const double* v, std::size_t n, double* lo, double* hi) {
  __m128d vmn = _mm_set1_pd(v[0]);
  __m128d vmx = vmn;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_loadu_pd(v + i);
    vmn = _mm_min_pd(x, vmn);
    vmx = _mm_max_pd(x, vmx);
  }
  double mn = _mm_cvtsd_f64(vmn);
  double mx = _mm_cvtsd_f64(vmx);
  const double mn1 = _mm_cvtsd_f64(_mm_unpackhi_pd(vmn, vmn));
  const double mx1 = _mm_cvtsd_f64(_mm_unpackhi_pd(vmx, vmx));
  mn = (mn1 < mn) ? mn1 : mn;
  mx = (mx < mx1) ? mx1 : mx;
  for (; i < n; ++i) {
    mn = (v[i] < mn) ? v[i] : mn;
    mx = (mx < v[i]) ? v[i] : mx;
  }
  if (mn == 0.0) mn = 0.0;
  if (mx == 0.0) mx = 0.0;
  *lo = mn;
  *hi = mx;
}

void grid_index_batch(const double* v, std::size_t n, double lo, double inv_width,
                      std::int32_t divisions, std::int32_t* out) {
  const __m128d vlo = _mm_set1_pd(lo);
  const __m128d vinv = _mm_set1_pd(inv_width);
  const __m128d vzero = _mm_setzero_pd();
  const __m128d vtop = _mm_set1_pd(static_cast<double>(divisions - 1));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(v + i), vlo), vinv);
    // Operand order matters: max_pd returns its second operand on NaN,
    // so a NaN x maps to 0 like the scalar reference.
    const __m128d y = _mm_min_pd(_mm_max_pd(x, vzero), vtop);
    const __m128i q = _mm_cvttpd_epi32(y);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), q);
  }
  for (; i < n; ++i) {
    out[i] = grid_index_one(v[i], lo, inv_width, divisions);
  }
}

void bitmap_pack_ge0(const std::int32_t* idx, std::size_t n, std::uint64_t* words) {
  const std::size_t full = n / 64;
  for (std::size_t w = 0; w < full; ++w) {
    std::uint64_t bits = 0;
    for (std::size_t k = 0; k < 16; ++k) {
      const __m128i q = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + w * 64 + 4 * k));
      // Sign bit set <=> idx < 0 <=> bit clear; invert the mask.
      const int m = _mm_movemask_ps(_mm_castsi128_ps(q));
      bits |= static_cast<std::uint64_t>(~m & 0xF) << (4 * k);
    }
    words[w] = bits;
  }
  if (n % 64 != 0) {
    std::uint64_t bits = 0;
    for (std::size_t i = full * 64; i < n; ++i) {
      if (idx[i] >= 0) bits |= 1ull << (i % 64);
    }
    words[full] = bits;
  }
}

void pack_f64_le(const double* v, std::size_t n, std::byte* out) {
  if (n == 0) return;  // empty vectors hand memcpy a null data() pointer (UB)
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d a = _mm_loadu_pd(v + i);
    const __m128d b = _mm_loadu_pd(v + i + 2);
    _mm_storeu_pd(reinterpret_cast<double*>(out + 8 * i), a);
    _mm_storeu_pd(reinterpret_cast<double*>(out + 8 * i + 16), b);
  }
  if (i < n) std::memcpy(out + 8 * i, v + i, (n - i) * sizeof(double));
}

void unpack_f64_le(const std::byte* in, std::size_t n, double* out) {
  if (n == 0) return;  // empty vectors hand memcpy a null data() pointer (UB)
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d a = _mm_loadu_pd(reinterpret_cast<const double*>(in + 8 * i));
    const __m128d b = _mm_loadu_pd(reinterpret_cast<const double*>(in + 8 * i + 16));
    _mm_storeu_pd(out + i, a);
    _mm_storeu_pd(out + i + 2, b);
  }
  if (i < n) std::memcpy(out + i, in + 8 * i, (n - i) * sizeof(double));
}

void adler32_update(std::uint32_t* pa, std::uint32_t* pb, const unsigned char* p, std::size_t n) {
  constexpr std::uint32_t kMod = 65521;
  constexpr std::size_t kBlock = 5552;
  std::uint32_t a = *pa;
  std::uint32_t b = *pb;
  const __m128i zero = _mm_setzero_si128();
  // Weight of byte i within a 16-byte group is 16 - i (set_epi16 lists
  // lane 7 first).
  const __m128i wlo = _mm_set_epi16(9, 10, 11, 12, 13, 14, 15, 16);
  const __m128i whi = _mm_set_epi16(1, 2, 3, 4, 5, 6, 7, 8);
  while (n > 0) {
    std::size_t chunk = n < kBlock ? n : kBlock;
    n -= chunk;
    for (; chunk >= 16; chunk -= 16, p += 16) {
      const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      const __m128i sad = _mm_sad_epu8(v, zero);
      const std::uint32_t s = static_cast<std::uint32_t>(_mm_cvtsi128_si32(sad)) +
                              static_cast<std::uint32_t>(_mm_cvtsi128_si32(_mm_srli_si128(sad, 8)));
      __m128i m = _mm_add_epi32(_mm_madd_epi16(_mm_unpacklo_epi8(v, zero), wlo),
                                _mm_madd_epi16(_mm_unpackhi_epi8(v, zero), whi));
      m = _mm_add_epi32(m, _mm_srli_si128(m, 8));
      m = _mm_add_epi32(m, _mm_srli_si128(m, 4));
      // b after 16 sequential steps: b + 16*a + sum (16-i)*p[i]; the
      // uint32 totals match the scalar loop exactly (non-negative terms,
      // no wrap within a 5552-byte chunk).
      b += 16 * a + static_cast<std::uint32_t>(_mm_cvtsi128_si32(m));
      a += s;
    }
    adler32_tail(a, b, p, chunk);
    p += chunk;
    a %= kMod;
    b %= kMod;
  }
  *pa = a;
  *pb = b;
}

constexpr KernelTable kSse2Table{
    haar_forward_pairs, haar_inverse_pairs,     range_min_max, grid_index_batch,
    bitmap_pack_ge0,    bitmap_select_wordfast, pack_f64_le,   unpack_f64_le,
    crc32_update_slice8, adler32_update,
};

}  // namespace

const KernelTable* sse2_table() noexcept { return &kSse2Table; }

}  // namespace wck::simd::detail

#else  // non-x86 build: level not available

namespace wck::simd::detail {
const KernelTable* sse2_table() noexcept { return nullptr; }
}  // namespace wck::simd::detail

#endif
