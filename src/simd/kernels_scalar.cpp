// Portable scalar reference kernels. Every other level is tested
// bit-identical against these; behavioral questions (NaN ordering, ±0
// canonicalization, clamping) are settled here and the vector TUs
// mirror the answers.
#include <bit>
#include <cstring>

#include "simd/kernels.hpp"

namespace wck::simd::detail {
namespace {

void haar_forward_pairs(const double* src, double* low, double* high, std::size_t pairs) {
  for (std::size_t i = 0; i < pairs; ++i) {
    const double a = src[2 * i];
    const double b = src[2 * i + 1];
    low[i] = (a + b) / 2.0;
    high[i] = (a - b) / 2.0;
  }
}

void haar_inverse_pairs(const double* low, const double* high, double* dst, std::size_t pairs) {
  for (std::size_t i = 0; i < pairs; ++i) {
    dst[2 * i] = low[i] + high[i];
    dst[2 * i + 1] = low[i] - high[i];
  }
}

void range_min_max(const double* v, std::size_t n, double* lo, double* hi) {
  double mn = v[0];
  double mx = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    mn = (v[i] < mn) ? v[i] : mn;
    mx = (mx < v[i]) ? v[i] : mx;
  }
  // A ±0.0 extremum depends on encounter order; canonicalize so every
  // dispatch level agrees. (NaN != 0.0, so a sticky NaN passes through.)
  if (mn == 0.0) mn = 0.0;
  if (mx == 0.0) mx = 0.0;
  *lo = mn;
  *hi = mx;
}

void grid_index_batch(const double* v, std::size_t n, double lo, double inv_width,
                      std::int32_t divisions, std::int32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = grid_index_one(v[i], lo, inv_width, divisions);
  }
}

void bitmap_pack_ge0(const std::int32_t* idx, std::size_t n, std::uint64_t* words) {
  const std::size_t nwords = (n + 63) / 64;
  for (std::size_t w = 0; w < nwords; ++w) words[w] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (idx[i] >= 0) words[i / 64] |= 1ull << (i % 64);
  }
}

void bitmap_select(const std::uint64_t* words, std::size_t n, const double* averages,
                   const std::uint8_t* indices, const double* exact, double* out) {
  std::size_t qi = 0;
  std::size_t ei = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool quantized = (words[i / 64] >> (i % 64)) & 1ull;
    out[i] = quantized ? averages[indices[qi++]] : exact[ei++];
  }
}

void pack_f64_le(const double* v, std::size_t n, std::byte* out) {
  if (n == 0) return;  // empty vectors hand memcpy a null data() pointer (UB)
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, v, n * sizeof(double));
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const auto bits = std::bit_cast<std::uint64_t>(v[i]);
      for (std::size_t k = 0; k < 8; ++k) {
        out[8 * i + k] = static_cast<std::byte>((bits >> (8 * k)) & 0xFFu);
      }
    }
  }
}

void unpack_f64_le(const std::byte* in, std::size_t n, double* out) {
  if (n == 0) return;  // empty vectors hand memcpy a null data() pointer (UB)
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, in, n * sizeof(double));
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t bits = 0;
      for (std::size_t k = 0; k < 8; ++k) {
        bits |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[8 * i + k])) << (8 * k);
      }
      out[i] = std::bit_cast<double>(bits);
    }
  }
}

std::uint32_t crc32_update_slice4(std::uint32_t state, const unsigned char* p, std::size_t n) {
  const auto& tb = crc_tables().t;
  std::uint32_t c = state;
  while (n >= 4) {
    c ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
    c = tb[3][c & 0xFFu] ^ tb[2][(c >> 8) & 0xFFu] ^ tb[1][(c >> 16) & 0xFFu] ^
        tb[0][(c >> 24) & 0xFFu];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    c = tb[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

void adler32_update(std::uint32_t* a, std::uint32_t* b, const unsigned char* p, std::size_t n) {
  constexpr std::uint32_t kMod = 65521;
  // Largest n such that 255*n*(n+1)/2 + (n+1)*(kMod-1) fits in 32 bits.
  constexpr std::size_t kBlock = 5552;
  std::uint32_t ra = *a;
  std::uint32_t rb = *b;
  while (n > 0) {
    const std::size_t chunk = n < kBlock ? n : kBlock;
    adler32_tail(ra, rb, p, chunk);
    ra %= kMod;
    rb %= kMod;
    p += chunk;
    n -= chunk;
  }
  *a = ra;
  *b = rb;
}

constexpr KernelTable kScalarTable{
    haar_forward_pairs, haar_inverse_pairs, range_min_max, grid_index_batch,
    bitmap_pack_ge0,    bitmap_select,      pack_f64_le,   unpack_f64_le,
    crc32_update_slice4, adler32_update,
};

}  // namespace

CrcTables::CrcTables() noexcept {
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::size_t s = 1; s < t.size(); ++s) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFFu];
    }
  }
}

const CrcTables& crc_tables() noexcept {
  static const CrcTables kTables;
  return kTables;
}

std::uint32_t crc32_update_slice8(std::uint32_t state, const unsigned char* p, std::size_t n) {
  const auto& tb = crc_tables().t;
  std::uint32_t c = state;
  while (n >= 8) {
    const std::uint32_t lo =
        c ^ (static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
             (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24));
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
    c = tb[7][lo & 0xFFu] ^ tb[6][(lo >> 8) & 0xFFu] ^ tb[5][(lo >> 16) & 0xFFu] ^
        tb[4][(lo >> 24) & 0xFFu] ^ tb[3][hi & 0xFFu] ^ tb[2][(hi >> 8) & 0xFFu] ^
        tb[1][(hi >> 16) & 0xFFu] ^ tb[0][(hi >> 24) & 0xFFu];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = tb[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

void bitmap_select_wordfast(const std::uint64_t* words, std::size_t n, const double* averages,
                            const std::uint8_t* indices, const double* exact, double* out) {
  std::size_t qi = 0;
  std::size_t ei = 0;
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const std::uint64_t w = words[i / 64];
    if (w == ~0ull) {
      for (std::size_t k = 0; k < 64; ++k) out[i + k] = averages[indices[qi + k]];
      qi += 64;
    } else if (w == 0) {
      std::memcpy(out + i, exact + ei, 64 * sizeof(double));
      ei += 64;
    } else {
      for (std::size_t k = 0; k < 64; ++k) {
        out[i + k] = ((w >> k) & 1ull) != 0 ? averages[indices[qi++]] : exact[ei++];
      }
    }
  }
  for (; i < n; ++i) {
    const bool quantized = (words[i / 64] >> (i % 64)) & 1ull;
    out[i] = quantized ? averages[indices[qi++]] : exact[ei++];
  }
}

const KernelTable* scalar_table() noexcept { return &kScalarTable; }

}  // namespace wck::simd::detail
