#include "fpc/fpc.hpp"

#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint32_t kMagic = 0x43504657;  // "WFPC" little-endian
constexpr std::uint8_t kVersion = 1;

/// FCM: hash of the recent value history predicts the next bit pattern.
class FcmPredictor {
 public:
  explicit FcmPredictor(int table_log2)
      : mask_((std::size_t{1} << table_log2) - 1), table_(mask_ + 1, 0) {}

  [[nodiscard]] std::uint64_t predict() const noexcept { return table_[hash_]; }

  void update(std::uint64_t actual) noexcept {
    table_[hash_] = actual;
    hash_ = ((hash_ << 6) ^ (actual >> 48)) & mask_;
  }

 private:
  std::size_t mask_;
  std::vector<std::uint64_t> table_;
  std::size_t hash_ = 0;
};

/// DFCM: the same over deltas between consecutive bit patterns.
class DfcmPredictor {
 public:
  explicit DfcmPredictor(int table_log2)
      : mask_((std::size_t{1} << table_log2) - 1), table_(mask_ + 1, 0) {}

  [[nodiscard]] std::uint64_t predict() const noexcept { return table_[hash_] + last_; }

  void update(std::uint64_t actual) noexcept {
    const std::uint64_t delta = actual - last_;
    table_[hash_] = delta;
    hash_ = ((hash_ << 2) ^ (delta >> 40)) & mask_;
    last_ = actual;
  }

 private:
  std::size_t mask_;
  std::vector<std::uint64_t> table_;
  std::size_t hash_ = 0;
  std::uint64_t last_ = 0;
};

/// Number of leading zero bytes in v (0..8), clamped to 7 because the
/// header field has 3 bits (an all-zero residual is stored as 7 leading
/// zero bytes plus one explicit zero byte — same trade the original FPC
/// makes by excluding one count).
int leading_zero_bytes(std::uint64_t v) noexcept {
  if (v == 0) return 7;
  const int lz = std::countl_zero(v);
  const int bytes = lz / 8;
  return bytes > 7 ? 7 : bytes;
}

void check_options(const FpcOptions& o) {
  if (o.table_log2 < 4 || o.table_log2 > 24) {
    throw InvalidArgumentError("fpc table_log2 must be in 4..24");
  }
}

}  // namespace

Bytes fpc_compress(std::span<const double> values, const FpcOptions& options) {
  check_options(options);
  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(options.table_log2));
  w.varint(values.size());

  FcmPredictor fcm(options.table_log2);
  DfcmPredictor dfcm(options.table_log2);

  // Header nibbles for a pair of values share one byte; residual bytes
  // for the whole pair follow. Matches the original FPC layout closely
  // enough to inherit its compressibility.
  Bytes headers;
  Bytes residuals;
  headers.reserve(values.size() / 2 + 1);
  residuals.reserve(values.size() * 4);

  std::uint8_t pending = 0;
  bool have_pending = false;
  for (const double d : values) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
    const std::uint64_t xor_fcm = bits ^ fcm.predict();
    const std::uint64_t xor_dfcm = bits ^ dfcm.predict();
    fcm.update(bits);
    dfcm.update(bits);

    const bool use_dfcm = leading_zero_bytes(xor_dfcm) > leading_zero_bytes(xor_fcm);
    const std::uint64_t residual = use_dfcm ? xor_dfcm : xor_fcm;
    const int lzb = leading_zero_bytes(residual);
    const auto nibble =
        static_cast<std::uint8_t>((use_dfcm ? 0x8 : 0x0) | static_cast<std::uint8_t>(lzb));

    if (have_pending) {
      headers.push_back(static_cast<std::byte>(pending | (nibble << 4)));
      have_pending = false;
    } else {
      pending = nibble;
      have_pending = true;
    }

    const int keep = 8 - lzb;  // low-order bytes to emit (little-endian)
    for (int b = 0; b < keep; ++b) {
      residuals.push_back(static_cast<std::byte>((residual >> (8 * b)) & 0xFFu));
    }
  }
  if (have_pending) headers.push_back(static_cast<std::byte>(pending));

  w.varint(headers.size());
  w.raw(headers.data(), headers.size());
  w.raw(residuals.data(), residuals.size());
  return w.take();
}

std::vector<double> fpc_decompress(std::span<const std::byte> data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw FormatError("fpc: bad magic");
  if (r.u8() != kVersion) throw FormatError("fpc: unsupported version");
  const int table_log2 = r.u8();
  FpcOptions options{table_log2};
  check_options(options);
  const std::uint64_t count = r.varint();
  const std::uint64_t header_bytes = r.varint();
  if (header_bytes != (count + 1) / 2) throw FormatError("fpc: header size mismatch");
  const auto headers = r.raw(header_bytes);

  FcmPredictor fcm(table_log2);
  DfcmPredictor dfcm(table_log2);

  std::vector<double> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto header_byte = static_cast<std::uint8_t>(headers[i / 2]);
    const std::uint8_t nibble = (i % 2 == 0) ? (header_byte & 0x0F) : (header_byte >> 4);
    const bool use_dfcm = (nibble & 0x8) != 0;
    const int lzb = nibble & 0x7;
    const int keep = 8 - lzb;

    std::uint64_t residual = 0;
    const auto res_bytes = r.raw(static_cast<std::size_t>(keep));
    for (int b = 0; b < keep; ++b) {
      residual |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(res_bytes[b])) << (8 * b);
    }

    const std::uint64_t prediction = use_dfcm ? dfcm.predict() : fcm.predict();
    const std::uint64_t bits = residual ^ prediction;
    fcm.update(bits);
    dfcm.update(bits);
    out.push_back(std::bit_cast<double>(bits));
  }
  if (!r.exhausted()) throw FormatError("fpc: trailing bytes");
  return out;
}

}  // namespace wck
