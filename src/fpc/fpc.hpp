// FPC-style lossless compression of double-precision streams.
//
// The paper's related work (Sec. V, [17] Burtscher & Ratanaworabhan,
// "High throughput compression of double-precision floating-point
// data") is the strongest lossless baseline for FP checkpoints; we
// implement the same scheme family from scratch so Fig. 6 can be
// extended with a specialized lossless comparator:
//
//  * two context predictors — FCM (finite context method: a hash of
//    recent values indexes a table of "what came next last time") and
//    DFCM (the same over value deltas);
//  * each double is XORed with both predictions; the better one (more
//    leading zero bytes) is chosen;
//  * a 4-bit header per value (1 bit predictor id, 3 bits leading-zero
//    byte count) plus the nonzero residual bytes are emitted.
//
// Exactly lossless for every bit pattern (including NaN payloads).
#pragma once

#include <cstddef>
#include <span>

#include "util/bytes.hpp"

namespace wck {

struct FpcOptions {
  /// log2 of the predictor table size. Larger tables predict better on
  /// large arrays; 16 (64 Ki entries * 8 B = 512 KiB per table) matches
  /// the original paper's configuration space.
  int table_log2 = 16;
};

/// Compresses a raw double array losslessly. Output embeds the options
/// and count, so decompression is self-describing.
[[nodiscard]] Bytes fpc_compress(std::span<const double> values, const FpcOptions& options = {});

/// Exact inverse of fpc_compress. Throws FormatError on malformed input.
[[nodiscard]] std::vector<double> fpc_decompress(std::span<const std::byte> data);

}  // namespace wck
