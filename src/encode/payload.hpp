// Serialization of the lossy-compressed array payload (paper Fig. 5).
//
// The formatted stream holds, in order: a header (shape, transform
// depth, quantizer metadata), the averages table, the raw low-frequency
// band, the quantization bitmap, the 1-byte indexes of quantized
// high-band values, and the exact doubles of unquantized high-band
// values. The stream is subsequently compressed with gzip/deflate by the
// core pipeline ("Finally, we apply gzip to the formatted output").
#pragma once

#include <cstdint>
#include <vector>

#include "encode/bitmap.hpp"
#include "ndarray/shape.hpp"
#include "quantize/quantizer.hpp"
#include "util/bytes.hpp"
#include "wavelet/transform.hpp"

namespace wck {

/// The fully quantized + encoded representation of one array, prior to
/// the final entropy (gzip) stage.
struct LossyPayload {
  Shape shape;                     ///< original array extents
  int levels = 1;                  ///< wavelet transform depth
  WaveletKind wavelet = WaveletKind::kHaar;
  QuantizerKind quantizer = QuantizerKind::kSpike;
  std::vector<double> averages;    ///< representative values (size <= 256)
  std::vector<double> low_band;    ///< final low corner, row-major
  Bitmap quantized;                ///< per high-band element, canonical order
  std::vector<std::uint8_t> indices;  ///< one per set bitmap bit
  std::vector<double> exact_values;   ///< one per clear bitmap bit

  /// Total element count of the original array.
  [[nodiscard]] std::size_t element_count() const noexcept { return shape.size(); }
};

/// Serializes the payload (Fig. 5 layout; little-endian; CRC-protected).
[[nodiscard]] Bytes encode_payload(const LossyPayload& payload);

/// Parses and validates a payload. Throws FormatError / CorruptDataError.
[[nodiscard]] LossyPayload decode_payload(std::span<const std::byte> data);

}  // namespace wck
