// Packed bitmap marking which high-band positions were quantized
// (paper Sec. III-D: "To memorize which values are transformed and
// encoded, we use bitmap for the decompression").
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "simd/dispatch.hpp"
#include "util/error.hpp"

namespace wck {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  /// Builds a bitmap with bit i set where cls[i] >= 0 (the quantizer's
  /// "quantized" convention) through the dispatched pack kernel.
  [[nodiscard]] static Bitmap from_classification(std::span<const std::int32_t> cls) {
    Bitmap bm(cls.size());
    if (!bm.words_.empty()) {
      simd::kernels().bitmap_pack_ge0(cls.data(), cls.size(), bm.words_.data());
    }
    return bm;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// The packed 64-bit words (little-endian bit order; padding bits
  /// beyond size() are zero). For bulk kernels.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  void set(std::size_t i, bool value) {
    check(i);
    const std::uint64_t mask = 1ull << (i % 64);
    if (value) {
      words_[i / 64] |= mask;
    } else {
      words_[i / 64] &= ~mask;
    }
  }

  [[nodiscard]] bool get(std::size_t i) const {
    check(i);
    return (words_[i / 64] >> (i % 64)) & 1ull;
  }

  void push_back(bool value) {
    if (size_ % 64 == 0) words_.push_back(0);
    ++size_;
    set(size_ - 1, value);
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Serialized byte size: one bit per element, padded to a whole byte.
  [[nodiscard]] std::size_t byte_size() const noexcept { return (size_ + 7) / 8; }

  /// Writes the packed little-endian bit representation.
  void serialize_to(std::vector<std::byte>& out) const {
    const std::size_t nbytes = byte_size();
    if constexpr (std::endian::native == std::endian::little) {
      // The in-memory word array IS the serialized form on LE hosts.
      const std::size_t old = out.size();
      out.resize(old + nbytes);
      if (nbytes > 0) std::memcpy(out.data() + old, words_.data(), nbytes);
      return;
    }
    out.reserve(out.size() + nbytes);
    for (std::size_t b = 0; b < nbytes; ++b) {
      const std::uint64_t w = words_[b / 8];
      out.push_back(static_cast<std::byte>((w >> ((b % 8) * 8)) & 0xFFu));
    }
  }

  /// Rebuilds a bitmap of `size` bits from its packed representation.
  static Bitmap deserialize(std::span<const std::byte> bytes, std::size_t size) {
    Bitmap bm(size);
    const std::size_t nbytes = (size + 7) / 8;
    if (bytes.size() < nbytes) throw FormatError("bitmap bytes truncated");
    if constexpr (std::endian::native == std::endian::little) {
      if (nbytes > 0) std::memcpy(bm.words_.data(), bytes.data(), nbytes);
    } else {
      for (std::size_t b = 0; b < nbytes; ++b) {
        bm.words_[b / 8] |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[b]))
                            << ((b % 8) * 8);
      }
    }
    // Clear any padding bits beyond `size`.
    if (size % 64 != 0 && !bm.words_.empty()) {
      bm.words_.back() &= (1ull << (size % 64)) - 1;
    }
    return bm;
  }

  [[nodiscard]] bool operator==(const Bitmap& o) const noexcept {
    return size_ == o.size_ && words_ == o.words_;
  }

 private:
  void check(std::size_t i) const {
    if (i >= size_) throw InvalidArgumentError("bitmap index out of range");
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace wck
