// Packed bitmap marking which high-band positions were quantized
// (paper Sec. III-D: "To memorize which values are transformed and
// encoded, we use bitmap for the decompression").
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace wck {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void set(std::size_t i, bool value) {
    check(i);
    const std::uint64_t mask = 1ull << (i % 64);
    if (value) {
      words_[i / 64] |= mask;
    } else {
      words_[i / 64] &= ~mask;
    }
  }

  [[nodiscard]] bool get(std::size_t i) const {
    check(i);
    return (words_[i / 64] >> (i % 64)) & 1ull;
  }

  void push_back(bool value) {
    if (size_ % 64 == 0) words_.push_back(0);
    ++size_;
    set(size_ - 1, value);
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Serialized byte size: one bit per element, padded to a whole byte.
  [[nodiscard]] std::size_t byte_size() const noexcept { return (size_ + 7) / 8; }

  /// Writes the packed little-endian bit representation.
  void serialize_to(std::vector<std::byte>& out) const {
    const std::size_t nbytes = byte_size();
    out.reserve(out.size() + nbytes);
    for (std::size_t b = 0; b < nbytes; ++b) {
      const std::uint64_t w = words_[b / 8];
      out.push_back(static_cast<std::byte>((w >> ((b % 8) * 8)) & 0xFFu));
    }
  }

  /// Rebuilds a bitmap of `size` bits from its packed representation.
  static Bitmap deserialize(std::span<const std::byte> bytes, std::size_t size) {
    Bitmap bm(size);
    if (bytes.size() < (size + 7) / 8) throw FormatError("bitmap bytes truncated");
    for (std::size_t b = 0; b < (size + 7) / 8; ++b) {
      bm.words_[b / 8] |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[b]))
                          << ((b % 8) * 8);
    }
    // Clear any padding bits beyond `size`.
    if (size % 64 != 0 && !bm.words_.empty()) {
      bm.words_.back() &= (1ull << (size % 64)) - 1;
    }
    return bm;
  }

  [[nodiscard]] bool operator==(const Bitmap& o) const noexcept {
    return size_ == o.size_ && words_ == o.words_;
  }

 private:
  void check(std::size_t i) const {
    if (i >= size_) throw InvalidArgumentError("bitmap index out of range");
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace wck
