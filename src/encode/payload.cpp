#include "encode/payload.hpp"

#include <string>

#include "util/checksum.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint32_t kMagic = 0x4C4B4357;  // "WCKL" little-endian
constexpr std::uint8_t kVersion = 2;  // v2 added the wavelet-kind field

}  // namespace

Bytes encode_payload(const LossyPayload& p) {
  if (p.indices.size() != p.quantized.count()) {
    throw InvalidArgumentError("payload: index count does not match bitmap population");
  }
  if (p.exact_values.size() != p.quantized.size() - p.quantized.count()) {
    throw InvalidArgumentError("payload: exact-value count does not match bitmap");
  }
  if (p.averages.size() > 256) {
    throw InvalidArgumentError("payload: averages table exceeds 256 entries");
  }

  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(p.quantizer));
  w.u8(static_cast<std::uint8_t>(p.wavelet));
  w.u8(static_cast<std::uint8_t>(p.shape.rank()));
  w.u8(static_cast<std::uint8_t>(p.levels));
  for (std::size_t a = 0; a < p.shape.rank(); ++a) w.varint(p.shape[a]);
  w.varint(p.averages.size());
  w.varint(p.low_band.size());
  w.varint(p.quantized.size());
  w.varint(p.indices.size());

  w.f64_array(p.averages);
  w.f64_array(p.low_band);
  p.quantized.serialize_to(w.buffer());
  w.raw(p.indices.data(), p.indices.size());
  w.f64_array(p.exact_values);

  // Trailing CRC over everything before it.
  const std::uint32_t crc = crc32(std::span<const std::byte>(w.buffer()));
  w.u32(crc);
  return w.take();
}

LossyPayload decode_payload(std::span<const std::byte> data) {
  if (data.size() < 4) throw FormatError("payload truncated before CRC");
  {
    ByteReader tail(data.subspan(data.size() - 4));
    const std::uint32_t want = tail.u32();
    const std::uint32_t got = crc32(data.subspan(0, data.size() - 4));
    if (want != got) throw CorruptDataError("payload CRC-32 mismatch");
  }

  ByteReader r(data.subspan(0, data.size() - 4));
  if (r.u32() != kMagic) throw FormatError("payload: bad magic");
  const std::uint8_t version = r.u8();
  if (version != kVersion) {
    throw FormatError("payload: unsupported version " + std::to_string(version));
  }

  LossyPayload p;
  const std::uint8_t kind = r.u8();
  if (kind > 1) throw FormatError("payload: unknown quantizer kind");
  p.quantizer = static_cast<QuantizerKind>(kind);
  const std::uint8_t wkind = r.u8();
  if (wkind > 2) throw FormatError("payload: unknown wavelet kind");
  p.wavelet = static_cast<WaveletKind>(wkind);
  const std::uint8_t rank = r.u8();
  if (rank < 1 || rank > kMaxRank) throw FormatError("payload: invalid rank");
  p.levels = r.u8();
  if (p.levels < 1) throw FormatError("payload: invalid transform depth");
  p.shape = Shape::of_rank(rank);
  for (std::size_t a = 0; a < rank; ++a) {
    p.shape[a] = r.varint();
    if (p.shape[a] == 0) throw FormatError("payload: zero extent");
  }

  const std::uint64_t n_avg = r.varint();
  const std::uint64_t n_low = r.varint();
  const std::uint64_t n_high = r.varint();
  const std::uint64_t n_idx = r.varint();
  if (n_avg > 256) throw FormatError("payload: averages table exceeds 256 entries");
  if (n_low + n_high != p.shape.size()) {
    throw FormatError("payload: band sizes do not sum to array size");
  }
  if (n_idx > n_high) throw FormatError("payload: more indexes than high-band elements");

  p.averages.resize(n_avg);
  r.f64_array(p.averages);
  p.low_band.resize(n_low);
  r.f64_array(p.low_band);
  p.quantized = Bitmap::deserialize(r.raw((n_high + 7) / 8), n_high);
  if (p.quantized.count() != n_idx) {
    throw FormatError("payload: bitmap population does not match index count");
  }
  {
    const auto idx_bytes = r.raw(n_idx);
    p.indices.resize(n_idx);
    for (std::size_t i = 0; i < n_idx; ++i) {
      p.indices[i] = static_cast<std::uint8_t>(idx_bytes[i]);
      if (p.indices[i] >= n_avg) throw FormatError("payload: index beyond averages table");
    }
  }
  p.exact_values.resize(n_high - n_idx);
  r.f64_array(p.exact_values);
  if (!r.exhausted()) throw FormatError("payload: trailing bytes");
  return p;
}

}  // namespace wck
