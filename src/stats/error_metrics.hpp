// Evaluation metrics from the paper's Sec. IV-A:
//   compression rate  cr  = cs_comp / cs_orig * 100            (Eq. 5)
//   relative error    rei = |x_i - x~_i| / (max_j x_j - min_j x_j)  (Eq. 6)
// reported as the average sum(rei)/m and the maximum max_i(rei).
#pragma once

#include <cstddef>
#include <span>

namespace wck {

/// Error summary of a decompressed array against its original.
struct ErrorStats {
  double mean_rel = 0.0;   ///< average relative error (fraction, not %)
  double max_rel = 0.0;    ///< maximum relative error (fraction)
  double value_range = 0.0;  ///< max_j x_j - min_j x_j of the original
  double max_abs = 0.0;    ///< maximum absolute error
  double rmse = 0.0;       ///< root-mean-square absolute error
  /// Peak signal-to-noise ratio 20*log10(value_range / rmse) in dB.
  /// Guarded like mean_rel: an exact reconstruction (rmse 0) reports
  /// +infinity; a degenerate original (value_range 0) or empty input
  /// reports 0 (max_abs disambiguates). JSON serializes +inf as null.
  double psnr = 0.0;
  std::size_t count = 0;

  [[nodiscard]] double mean_rel_percent() const noexcept { return mean_rel * 100.0; }
  [[nodiscard]] double max_rel_percent() const noexcept { return max_rel * 100.0; }
};

/// The ErrorStats::psnr convention applied to a free (range, rmse) pair.
[[nodiscard]] double psnr_db(double value_range, double rmse) noexcept;

/// Computes Eq. 6 statistics. Arrays must have equal size. A constant
/// original array (range 0) reports relative errors of 0 when exact and
/// infinity otherwise is avoided by defining rei = 0 for range 0 with
/// zero absolute error, else rei uses the absolute error directly.
[[nodiscard]] ErrorStats relative_error(std::span<const double> original,
                                        std::span<const double> reconstructed);

/// Eq. 5: compressed size as a percentage of the original size.
[[nodiscard]] double compression_rate_percent(std::size_t original_bytes,
                                              std::size_t compressed_bytes) noexcept;

/// Running min/max/mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace wck
