#include "stats/error_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace wck {

ErrorStats relative_error(std::span<const double> original,
                          std::span<const double> reconstructed) {
  if (original.size() != reconstructed.size()) {
    throw InvalidArgumentError("relative_error: size mismatch");
  }
  ErrorStats s;
  s.count = original.size();
  if (original.empty()) return s;

  double lo = original[0];
  double hi = original[0];
  for (const double v : original) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  s.value_range = hi - lo;

  double sum_rel = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double abs_err = std::abs(original[i] - reconstructed[i]);
    s.max_abs = std::max(s.max_abs, abs_err);
    sum_sq += abs_err * abs_err;
    const double rel = s.value_range > 0.0 ? abs_err / s.value_range : (abs_err > 0.0 ? 1.0 : 0.0);
    sum_rel += rel;
    s.max_rel = std::max(s.max_rel, rel);
  }
  s.mean_rel = sum_rel / static_cast<double>(original.size());
  s.rmse = std::sqrt(sum_sq / static_cast<double>(original.size()));
  s.psnr = psnr_db(s.value_range, s.rmse);
  return s;
}

double psnr_db(double value_range, double rmse) noexcept {
  if (value_range <= 0.0) return 0.0;
  if (rmse <= 0.0) return std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(value_range / rmse);
}

double compression_rate_percent(std::size_t original_bytes,
                                std::size_t compressed_bytes) noexcept {
  if (original_bytes == 0) return 0.0;
  return 100.0 * static_cast<double>(compressed_bytes) / static_cast<double>(original_bytes);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace wck
