#include "io/io_backend.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <optional>
#include <string>

#include "io/fault_injection.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::filesystem::path& path) {
  throw IoError(what + " " + path.string() + ": " + std::strerror(errno));
}

/// RAII fd so every error path closes.
class Fd {
 public:
  Fd(const std::filesystem::path& path, int flags, mode_t mode = 0644)
      : fd_(::open(path.c_str(), flags, mode)) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int get() const noexcept { return fd_; }

 private:
  int fd_;
};

}  // namespace

Bytes PosixBackend::read_file(const std::filesystem::path& path) {
  const Fd fd(path, O_RDONLY | O_CLOEXEC);
  if (!fd.ok()) throw_errno("cannot open", path);
  Bytes data;
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read failed for", path);
    }
    if (n == 0) break;
    data.insert(data.end(), buf, buf + n);
  }
  return data;
}

void PosixBackend::write_file(const std::filesystem::path& path,
                              std::span<const std::byte> data) {
  const Fd fd(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC);
  if (!fd.ok()) throw_errno("cannot open for writing", path);
  const std::byte* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd.get(), p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write failed for", path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void PosixBackend::fsync_file(const std::filesystem::path& path) {
  const Fd fd(path, O_RDONLY | O_CLOEXEC);
  if (!fd.ok()) throw_errno("cannot open for fsync", path);
  if (::fsync(fd.get()) != 0) throw_errno("fsync failed for", path);
}

void PosixBackend::fsync_dir(const std::filesystem::path& dir) {
  const Fd fd(dir, O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (!fd.ok()) throw_errno("cannot open directory for fsync", dir);
  if (::fsync(fd.get()) != 0) throw_errno("fsync failed for directory", dir);
}

void PosixBackend::rename_file(const std::filesystem::path& from,
                               const std::filesystem::path& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    throw IoError("cannot rename " + from.string() + " to " + to.string() + ": " +
                  std::strerror(errno));
  }
}

bool PosixBackend::remove_file(const std::filesystem::path& path) {
  if (::unlink(path.c_str()) == 0) return true;
  if (errno == ENOENT) return false;
  throw_errno("cannot remove", path);
}

bool PosixBackend::exists(const std::filesystem::path& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

PosixBackend& posix_backend() {
  static PosixBackend backend;
  return backend;
}

namespace {

IoBackend* make_env_default() {
  const std::optional<std::string> spec = env::get("WCK_FAULT_PLAN");
  if (!spec.has_value() || spec->empty()) return &posix_backend();
  // Process-lifetime fault backend: soaks set WCK_FAULT_PLAN and every
  // checkpoint in the process runs against the injected faults.
  static FaultInjectingBackend fault(FaultPlan::parse(*spec), posix_backend());
  return &fault;
}

std::atomic<IoBackend*> g_default{nullptr};

}  // namespace

IoBackend& default_io_backend() {
  IoBackend* b = g_default.load(std::memory_order_acquire);
  if (b == nullptr) {
    b = make_env_default();
    g_default.store(b, std::memory_order_release);
  }
  return *b;
}

void set_default_io_backend(IoBackend* backend) {
  g_default.store(backend == nullptr ? make_env_default() : backend,
                  std::memory_order_release);
}

void atomic_write_durable(IoBackend& io, const std::filesystem::path& path,
                          std::span<const std::byte> data) {
  // Unique per process + call: two writers (sync + async, or two
  // managers) committing to the same target never share a temp file.
  static std::atomic<std::uint64_t> seq{0};
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  try {
    io.write_file(tmp, data);
    io.fsync_file(tmp);
    io.rename_file(tmp, path);
  } catch (...) {
    try {
      (void)io.remove_file(tmp);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // Cleanup is best effort; the original error is what matters.
    }
    throw;
  }
  const std::filesystem::path parent = path.parent_path();
  io.fsync_dir(parent.empty() ? "." : parent);
}

}  // namespace wck
