// Deterministic, seeded fault injection for the checkpoint I/O path.
//
// A FaultPlan is an ordered list of rules, each bound to one backend
// operation (write, read, fsync, fsyncdir, rename, remove) and one
// fault kind:
//
//   fail — the operation throws IoError (for write: after the file has
//          been created/truncated but before any byte lands, modeling a
//          crash-torn empty file plus a reported error);
//   torn — write only: the first `byte` bytes land, then IoError;
//   flip — read only: the read succeeds but bit `bit` of byte `byte`
//          is inverted (positions derived deterministically from `seed`
//          and the fire index when not given).
//
// Rules fire by per-rule match count: the rule's Nth matching operation
// (1-based, after the optional `path=` substring filter), then again
// every `every` matches, at most `count` times. All counting is
// deterministic, so a failing soak replays exactly from its plan
// string.
//
// Plan grammar (also accepted from the WCK_FAULT_PLAN environment
// variable — see TOOLING.md "Fault injection & soak testing"):
//
//   plan  := rule (';' rule)*
//   rule  := op ':' kind '@' N (':' key '=' value)*
//   op    := write | read | fsync | fsyncdir | rename | remove
//   kind  := fail | torn | flip
//   key   := every | count | byte | bit | path | seed
//
// Example: "write:torn@5:every=9:byte=100;fsync:fail@4" tears every
// 9th write starting at the 5th at byte 100, and fails the 4th fsync.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/io_backend.hpp"
#include "util/thread_annotations.hpp"

namespace wck {

enum class IoOp : std::uint8_t { kWrite, kRead, kFsync, kFsyncDir, kRename, kRemove };

/// Stable lowercase name used by the plan grammar and telemetry.
[[nodiscard]] const char* io_op_name(IoOp op) noexcept;

enum class FaultKind : std::uint8_t { kFail, kTorn, kFlip };

struct FaultRule {
  IoOp op = IoOp::kWrite;
  FaultKind kind = FaultKind::kFail;
  std::uint64_t nth = 1;          ///< first fire: Nth matching op (1-based)
  std::uint64_t every = 0;        ///< refire period in matches (0 = once)
  std::uint64_t count = 0;        ///< max fires (0 = unlimited)
  std::uint64_t byte_offset = 0;  ///< torn: keep prefix length; flip: byte index
  bool has_byte = false;          ///< byte= given (else derived/default)
  int bit = 0;                    ///< flip: bit index 0..7
  bool has_bit = false;
  std::uint64_t seed = 0x5EEDFA17;  ///< flip position derivation
  std::string path_substr;          ///< only ops whose path contains this
};

/// A parsed, immutable fault plan.
struct FaultPlan {
  std::vector<FaultRule> rules;

  /// Parses the grammar above; throws InvalidArgumentError with the
  /// offending token on malformed input. An empty spec is an empty plan.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// parse(WCK_FAULT_PLAN), or an empty plan when unset.
  [[nodiscard]] static FaultPlan from_env();

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }
};

/// IoBackend decorator that replays a FaultPlan on top of an inner
/// backend. Thread-safe: match/fire counting is under a mutex, so
/// concurrent writers (e.g. the async checkpoint worker) observe one
/// global deterministic op order per operation type.
class FaultInjectingBackend final : public IoBackend {
 public:
  explicit FaultInjectingBackend(FaultPlan plan, IoBackend& inner = posix_backend());

  [[nodiscard]] Bytes read_file(const std::filesystem::path& path) override;
  void write_file(const std::filesystem::path& path,
                  std::span<const std::byte> data) override;
  void fsync_file(const std::filesystem::path& path) override;
  void fsync_dir(const std::filesystem::path& dir) override;
  void rename_file(const std::filesystem::path& from,
                   const std::filesystem::path& to) override;
  [[nodiscard]] bool remove_file(const std::filesystem::path& path) override;
  [[nodiscard]] bool exists(const std::filesystem::path& path) override;

  /// Total faults injected so far (all rules).
  [[nodiscard]] std::uint64_t fault_count() const;

  /// Faults injected by rule `i` (plan order).
  [[nodiscard]] std::uint64_t rule_fault_count(std::size_t i) const;

 private:
  struct RuleState {
    std::uint64_t matches = 0;
    std::uint64_t fires = 0;
  };

  /// Returns the rule that fires for this (op, path), or nullptr; bumps
  /// counters. `fire_index` receives the rule's fire ordinal (0-based).
  const FaultRule* check(IoOp op, const std::filesystem::path& path,
                         std::uint64_t* fire_index);

  // Immutable after construction — needs no guard.
  const FaultPlan plan_;
  IoBackend& inner_;
  mutable Mutex mu_;
  std::vector<RuleState> states_ WCK_GUARDED_BY(mu_);
};

}  // namespace wck
