// Pluggable file-I/O backend for the checkpoint/restart path.
//
// Every file operation the C/R stack performs (whole-file read/write,
// fsync of a file or its parent directory, rename, remove) goes through
// an IoBackend so the resilience machinery can be exercised against
// injected faults (src/io/fault_injection.hpp) exactly as it runs
// against a healthy filesystem. PosixBackend is the production
// implementation: fd-based POSIX I/O with real fsync, because a
// checkpoint that was never flushed is not a restart point.
//
// The process-global default backend (default_io_backend()) is what the
// convenience overloads in src/ckpt use. It is the PosixBackend unless
// WCK_FAULT_PLAN is set in the environment — then it is a
// FaultInjectingBackend replaying that plan, which lets CLI/CI soaks
// inject faults into an unmodified binary.
#pragma once

#include <filesystem>
#include <span>

#include "util/bytes.hpp"

namespace wck {

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  /// Reads the whole file. Throws IoError on open/read failure.
  [[nodiscard]] virtual Bytes read_file(const std::filesystem::path& path) = 0;

  /// Creates/truncates `path` and writes `data` (open + write + close).
  /// No durability guarantee — call fsync_file afterwards for that.
  virtual void write_file(const std::filesystem::path& path,
                          std::span<const std::byte> data) = 0;

  /// Flushes a file's contents to stable storage.
  virtual void fsync_file(const std::filesystem::path& path) = 0;

  /// Flushes a directory's entries to stable storage (required after a
  /// rename for the new name itself to be crash-durable).
  virtual void fsync_dir(const std::filesystem::path& dir) = 0;

  virtual void rename_file(const std::filesystem::path& from,
                           const std::filesystem::path& to) = 0;

  /// Removes `path`; a missing file is not an error (returns false).
  /// Callers that don't care whether the file existed must say so with
  /// a (void) cast.
  [[nodiscard]] virtual bool remove_file(const std::filesystem::path& path) = 0;

  [[nodiscard]] virtual bool exists(const std::filesystem::path& path) = 0;
};

/// The fd-based POSIX implementation (stateless; thread-safe).
class PosixBackend final : public IoBackend {
 public:
  [[nodiscard]] Bytes read_file(const std::filesystem::path& path) override;
  void write_file(const std::filesystem::path& path,
                  std::span<const std::byte> data) override;
  void fsync_file(const std::filesystem::path& path) override;
  void fsync_dir(const std::filesystem::path& dir) override;
  void rename_file(const std::filesystem::path& from,
                   const std::filesystem::path& to) override;
  [[nodiscard]] bool remove_file(const std::filesystem::path& path) override;
  [[nodiscard]] bool exists(const std::filesystem::path& path) override;
};

/// Process-wide PosixBackend singleton.
[[nodiscard]] PosixBackend& posix_backend();

/// The backend used by convenience overloads that take no explicit
/// backend. Defaults to posix_backend(), or to a process-lifetime
/// FaultInjectingBackend when WCK_FAULT_PLAN is set at first use.
[[nodiscard]] IoBackend& default_io_backend();

/// Overrides the default backend (tests). nullptr restores the
/// WCK_FAULT_PLAN / posix default. Not thread-safe against concurrent
/// default_io_backend() users; call during single-threaded setup.
void set_default_io_backend(IoBackend* backend);

/// Durably commits `data` at `path`: writes `path`.tmp.<pid>.<seq> (the
/// suffix is process-unique, so concurrent writers to the same target
/// cannot collide), fsyncs the temp file, renames it over `path`, and
/// fsyncs the parent directory so the commit survives a crash. On any
/// failure the temp file is removed (best effort) and the error
/// propagates; `path` is either fully the new contents or untouched.
void atomic_write_durable(IoBackend& io, const std::filesystem::path& path,
                          std::span<const std::byte> data);

}  // namespace wck
