#include "io/fault_injection.hpp"

#include <algorithm>
#include <optional>

#include "telemetry/telemetry.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

IoOp parse_op(const std::string& s) {
  if (s == "write") return IoOp::kWrite;
  if (s == "read") return IoOp::kRead;
  if (s == "fsync") return IoOp::kFsync;
  if (s == "fsyncdir") return IoOp::kFsyncDir;
  if (s == "rename") return IoOp::kRename;
  if (s == "remove") return IoOp::kRemove;
  throw InvalidArgumentError("fault plan: unknown op '" + s + "'");
}

FaultKind parse_kind(const std::string& s) {
  if (s == "fail") return FaultKind::kFail;
  if (s == "torn") return FaultKind::kTorn;
  if (s == "flip") return FaultKind::kFlip;
  throw InvalidArgumentError("fault plan: unknown kind '" + s + "'");
}

std::uint64_t parse_u64(const std::string& s, const std::string& what) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    throw InvalidArgumentError("fault plan: bad " + what + " '" + s + "'");
  }
  return std::stoull(s);
}

FaultRule parse_rule(const std::string& text) {
  // op ':' kind '@' N (':' key '=' value)*
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t colon = text.find(':', pos);
    parts.push_back(text.substr(pos, colon == std::string::npos ? colon : colon - pos));
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  if (parts.size() < 2) {
    throw InvalidArgumentError("fault plan: rule '" + text + "' needs op:kind@N");
  }

  FaultRule rule;
  rule.op = parse_op(parts[0]);
  const std::size_t at = parts[1].find('@');
  if (at == std::string::npos) {
    throw InvalidArgumentError("fault plan: rule '" + text + "' is missing '@N'");
  }
  rule.kind = parse_kind(parts[1].substr(0, at));
  rule.nth = parse_u64(parts[1].substr(at + 1), "'@N'");
  if (rule.nth == 0) throw InvalidArgumentError("fault plan: '@N' is 1-based");

  for (std::size_t i = 2; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    if (eq == std::string::npos) {
      throw InvalidArgumentError("fault plan: expected key=value, got '" + parts[i] + "'");
    }
    const std::string key = parts[i].substr(0, eq);
    const std::string value = parts[i].substr(eq + 1);
    if (key == "every") {
      rule.every = parse_u64(value, "every");
    } else if (key == "count") {
      rule.count = parse_u64(value, "count");
    } else if (key == "byte") {
      rule.byte_offset = parse_u64(value, "byte");
      rule.has_byte = true;
    } else if (key == "bit") {
      rule.bit = static_cast<int>(parse_u64(value, "bit"));
      if (rule.bit > 7) throw InvalidArgumentError("fault plan: bit must be 0..7");
      rule.has_bit = true;
    } else if (key == "seed") {
      rule.seed = parse_u64(value, "seed");
    } else if (key == "path") {
      rule.path_substr = value;
    } else {
      throw InvalidArgumentError("fault plan: unknown key '" + key + "'");
    }
  }

  if (rule.kind == FaultKind::kTorn && rule.op != IoOp::kWrite) {
    throw InvalidArgumentError("fault plan: 'torn' applies only to write");
  }
  if (rule.kind == FaultKind::kFlip && rule.op != IoOp::kRead) {
    throw InvalidArgumentError("fault plan: 'flip' applies only to read");
  }
  return rule;
}

}  // namespace

const char* io_op_name(IoOp op) noexcept {
  switch (op) {
    case IoOp::kWrite: return "write";
    case IoOp::kRead: return "read";
    case IoOp::kFsync: return "fsync";
    case IoOp::kFsyncDir: return "fsyncdir";
    case IoOp::kRename: return "rename";
    case IoOp::kRemove: return "remove";
  }
  return "unknown";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string rule_text =
        spec.substr(pos, semi == std::string::npos ? semi : semi - pos);
    if (!rule_text.empty()) plan.rules.push_back(parse_rule(rule_text));
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const std::optional<std::string> spec = env::get("WCK_FAULT_PLAN");
  return spec ? parse(*spec) : FaultPlan{};
}

FaultInjectingBackend::FaultInjectingBackend(FaultPlan plan, IoBackend& inner)
    : plan_(std::move(plan)), inner_(inner), states_(plan_.rules.size()) {}

const FaultRule* FaultInjectingBackend::check(IoOp op, const std::filesystem::path& path,
                                              std::uint64_t* fire_index) {
  MutexLock lk(mu_);
  const std::string path_str = path.string();
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.op != op) continue;
    if (!rule.path_substr.empty() && path_str.find(rule.path_substr) == std::string::npos) {
      continue;
    }
    RuleState& st = states_[i];
    ++st.matches;
    const bool due = st.matches == rule.nth ||
                     (rule.every > 0 && st.matches > rule.nth &&
                      (st.matches - rule.nth) % rule.every == 0);
    if (!due) continue;
    if (rule.count > 0 && st.fires >= rule.count) continue;
    if (fire_index != nullptr) *fire_index = st.fires;
    ++st.fires;
    if (telemetry::enabled()) {
      telemetry::MetricsRegistry::global()
          .counter(std::string("io.fault.") + io_op_name(op))
          .add(1);
      const char* kind = rule.kind == FaultKind::kFail   ? "fail"
                         : rule.kind == FaultKind::kTorn ? "torn"
                                                         : "flip";
      WCK_EVENT(kFaultInjected, 0,
                std::string(io_op_name(op)) + ":" + kind + " rule#" + std::to_string(i) +
                    " fire " + std::to_string(st.fires) + " " +
                    path.filename().string());
    }
    return &rule;
  }
  return nullptr;
}

Bytes FaultInjectingBackend::read_file(const std::filesystem::path& path) {
  std::uint64_t fire = 0;
  const FaultRule* rule = check(IoOp::kRead, path, &fire);
  if (rule != nullptr && rule->kind == FaultKind::kFail) {
    throw IoError("injected read fault: " + path.string());
  }
  Bytes data = inner_.read_file(path);
  if (rule != nullptr && rule->kind == FaultKind::kFlip && !data.empty()) {
    // Deterministic position: explicit byte/bit win; otherwise derive
    // from the rule seed and this fire's ordinal.
    Xoshiro256 rng(rule->seed + fire);
    const std::size_t byte = rule->has_byte
                                 ? static_cast<std::size_t>(rule->byte_offset) % data.size()
                                 : static_cast<std::size_t>(rng.bounded(data.size()));
    const int bit = rule->has_bit ? rule->bit : static_cast<int>(rng.bounded(8));
    data[byte] ^= static_cast<std::byte>(1u << bit);
  }
  return data;
}

void FaultInjectingBackend::write_file(const std::filesystem::path& path,
                                       std::span<const std::byte> data) {
  const FaultRule* rule = check(IoOp::kWrite, path, nullptr);
  if (rule == nullptr) {
    inner_.write_file(path, data);
    return;
  }
  if (rule->kind == FaultKind::kTorn) {
    const std::size_t keep = rule->has_byte
                                 ? std::min<std::size_t>(rule->byte_offset, data.size())
                                 : data.size() / 2;
    inner_.write_file(path, data.subspan(0, keep));
    throw IoError("injected torn write (" + std::to_string(keep) + " of " +
                  std::to_string(data.size()) + " bytes): " + path.string());
  }
  // kFail: the file is created/truncated (a real EIO typically happens
  // after open succeeded) but no byte lands.
  inner_.write_file(path, data.subspan(0, 0));
  throw IoError("injected write fault: " + path.string());
}

void FaultInjectingBackend::fsync_file(const std::filesystem::path& path) {
  if (check(IoOp::kFsync, path, nullptr) != nullptr) {
    throw IoError("injected fsync fault: " + path.string());
  }
  inner_.fsync_file(path);
}

void FaultInjectingBackend::fsync_dir(const std::filesystem::path& dir) {
  if (check(IoOp::kFsyncDir, dir, nullptr) != nullptr) {
    throw IoError("injected directory fsync fault: " + dir.string());
  }
  inner_.fsync_dir(dir);
}

void FaultInjectingBackend::rename_file(const std::filesystem::path& from,
                                        const std::filesystem::path& to) {
  if (check(IoOp::kRename, to, nullptr) != nullptr) {
    throw IoError("injected rename fault: " + from.string() + " -> " + to.string());
  }
  inner_.rename_file(from, to);
}

bool FaultInjectingBackend::remove_file(const std::filesystem::path& path) {
  if (check(IoOp::kRemove, path, nullptr) != nullptr) {
    throw IoError("injected remove fault: " + path.string());
  }
  return inner_.remove_file(path);
}

bool FaultInjectingBackend::exists(const std::filesystem::path& path) {
  return inner_.exists(path);
}

std::uint64_t FaultInjectingBackend::fault_count() const {
  MutexLock lk(mu_);
  std::uint64_t n = 0;
  for (const RuleState& st : states_) n += st.fires;
  return n;
}

std::uint64_t FaultInjectingBackend::rule_fault_count(std::size_t i) const {
  MutexLock lk(mu_);
  return i < states_.size() ? states_[i].fires : 0;
}

}  // namespace wck
