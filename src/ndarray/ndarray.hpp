// Owning dense arrays and non-owning strided views.
//
// NdArray<T> owns contiguous row-major storage. NdSpan<T> is a mutable
// strided window into another array (used by the multi-level wavelet
// transform to recurse into the low-frequency corner block without
// copying). Both expose for_each_line(), which visits every 1D line
// along a chosen axis — the access pattern of separable transforms.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "ndarray/shape.hpp"
#include "util/error.hpp"

namespace wck {

/// A 1D line inside a (possibly strided) array: `count` elements starting
/// at `base`, `stride` elements apart.
template <typename T>
struct Line {
  T* base;
  std::size_t count;
  std::ptrdiff_t stride;

  [[nodiscard]] T& operator[](std::size_t i) const noexcept {
    return base[static_cast<std::ptrdiff_t>(i) * stride];
  }
};

/// Non-owning mutable strided view over rank 1..4 data.
template <typename T>
class NdSpan {
 public:
  NdSpan() = default;

  NdSpan(T* data, const Shape& shape, const std::array<std::size_t, kMaxRank>& strides) noexcept
      : data_(data), shape_(shape), strides_(strides) {}

  /// Contiguous row-major view.
  NdSpan(T* data, const Shape& shape) noexcept
      : data_(data), shape_(shape), strides_(shape.row_major_strides()) {}

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.rank(); }
  [[nodiscard]] std::size_t extent(std::size_t axis) const { return shape_.extent(axis); }
  [[nodiscard]] std::size_t size() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t stride(std::size_t axis) const noexcept { return strides_[axis]; }
  [[nodiscard]] T* data() const noexcept { return data_; }

  [[nodiscard]] T& operator()(std::size_t i) const noexcept { return data_[i * strides_[0]]; }
  [[nodiscard]] T& operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * strides_[0] + j * strides_[1]];
  }
  [[nodiscard]] T& operator()(std::size_t i, std::size_t j, std::size_t k) const noexcept {
    return data_[i * strides_[0] + j * strides_[1] + k * strides_[2]];
  }
  [[nodiscard]] T& operator()(std::size_t i, std::size_t j, std::size_t k,
                              std::size_t l) const noexcept {
    return data_[i * strides_[0] + j * strides_[1] + k * strides_[2] + l * strides_[3]];
  }

  /// Element access by multi-index array (rank-generic).
  [[nodiscard]] T& at(std::span<const std::size_t> idx) const {
    if (idx.size() != rank()) throw InvalidArgumentError("NdSpan::at rank mismatch");
    std::size_t off = 0;
    for (std::size_t a = 0; a < rank(); ++a) {
      if (idx[a] >= shape_[a]) throw InvalidArgumentError("NdSpan::at index out of range");
      off += idx[a] * strides_[a];
    }
    return data_[off];
  }

  /// Sub-block view: `offsets[a] .. offsets[a]+extents[a]` along each axis.
  [[nodiscard]] NdSpan subblock(std::span<const std::size_t> offsets,
                                std::span<const std::size_t> extents) const {
    if (offsets.size() != rank() || extents.size() != rank()) {
      throw InvalidArgumentError("NdSpan::subblock rank mismatch");
    }
    std::size_t off = 0;
    Shape sub = Shape::of_rank(rank());
    for (std::size_t a = 0; a < rank(); ++a) {
      if (offsets[a] + extents[a] > shape_[a]) {
        throw InvalidArgumentError("NdSpan::subblock out of range");
      }
      off += offsets[a] * strides_[a];
      sub[a] = extents[a];
    }
    return NdSpan(data_ + off, sub, strides_);
  }

  /// Visits every 1D line along `axis`. `fn` receives a Line<T>.
  template <typename Fn>
  void for_each_line(std::size_t axis, Fn&& fn) const {
    if (axis >= rank()) throw InvalidArgumentError("for_each_line axis out of range");
    if (size() == 0) return;
    // Odometer over the outer product of all axes except `axis`.
    std::array<std::size_t, kMaxRank> other{};
    std::size_t n_other = 0;
    for (std::size_t a = 0; a < rank(); ++a) {
      if (a != axis) other[n_other++] = a;
    }
    std::array<std::size_t, kMaxRank> idx{};
    for (;;) {
      std::size_t off = 0;
      for (std::size_t t = 0; t < n_other; ++t) off += idx[t] * strides_[other[t]];
      fn(Line<T>{data_ + off, shape_[axis], static_cast<std::ptrdiff_t>(strides_[axis])});
      bool done = true;
      for (std::size_t t = n_other; t-- > 0;) {
        if (++idx[t] < shape_[other[t]]) {
          done = false;
          break;
        }
        idx[t] = 0;
      }
      if (done) return;
    }
  }

  /// Copies this (possibly strided) view into a contiguous buffer.
  void copy_to(std::span<T> out) const {
    if (out.size() != size()) throw InvalidArgumentError("copy_to size mismatch");
    std::size_t pos = 0;
    visit_row_major([&](T& v) { out[pos++] = v; });
  }

  /// Fills this view from a contiguous row-major buffer.
  void copy_from(std::span<const T> in) const {
    if (in.size() != size()) throw InvalidArgumentError("copy_from size mismatch");
    std::size_t pos = 0;
    visit_row_major([&](T& v) { v = in[pos++]; });
  }

  /// Visits elements in row-major order.
  template <typename Fn>
  void visit_row_major(Fn&& fn) const {
    std::array<std::size_t, kMaxRank> idx{};
    const std::size_t r = rank();
    if (size() == 0) return;
    for (;;) {
      std::size_t off = 0;
      for (std::size_t a = 0; a < r; ++a) off += idx[a] * strides_[a];
      fn(data_[off]);
      std::size_t a = r;
      bool done = true;
      while (a-- > 0) {
        if (++idx[a] < shape_[a]) {
          done = false;
          break;
        }
        idx[a] = 0;
      }
      if (done) return;
    }
  }

 private:
  T* data_ = nullptr;
  Shape shape_;
  std::array<std::size_t, kMaxRank> strides_{};
};

/// Owning contiguous row-major dense array.
template <typename T>
class NdArray {
 public:
  NdArray() = default;

  explicit NdArray(const Shape& shape, T fill = T{}) : shape_(shape), data_(shape.size(), fill) {}

  NdArray(const Shape& shape, std::vector<T> data) : shape_(shape), data_(std::move(data)) {
    if (data_.size() != shape_.size()) {
      throw InvalidArgumentError("NdArray data size does not match shape " + shape_.to_string());
    }
  }

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.rank(); }
  [[nodiscard]] std::size_t extent(std::size_t axis) const { return shape_.extent(axis); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return data_.size() * sizeof(T); }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<T> values() noexcept { return data_; }
  [[nodiscard]] std::span<const T> values() const noexcept { return data_; }

  [[nodiscard]] T& operator[](std::size_t flat) noexcept { return data_[flat]; }
  [[nodiscard]] const T& operator[](std::size_t flat) const noexcept { return data_[flat]; }

  [[nodiscard]] T& operator()(std::size_t i) noexcept { return view()(i); }
  [[nodiscard]] T& operator()(std::size_t i, std::size_t j) noexcept { return view()(i, j); }
  [[nodiscard]] T& operator()(std::size_t i, std::size_t j, std::size_t k) noexcept {
    return view()(i, j, k);
  }
  [[nodiscard]] const T& operator()(std::size_t i) const noexcept { return cview()(i); }
  [[nodiscard]] const T& operator()(std::size_t i, std::size_t j) const noexcept {
    return cview()(i, j);
  }
  [[nodiscard]] const T& operator()(std::size_t i, std::size_t j, std::size_t k) const noexcept {
    return cview()(i, j, k);
  }

  [[nodiscard]] NdSpan<T> view() noexcept { return NdSpan<T>(data_.data(), shape_); }
  [[nodiscard]] NdSpan<const T> cview() const noexcept {
    return NdSpan<const T>(data_.data(), shape_);
  }

  [[nodiscard]] bool operator==(const NdArray& o) const noexcept {
    return shape_ == o.shape_ && data_ == o.data_;
  }

 private:
  Shape shape_;
  std::vector<T> data_;
};

}  // namespace wck
