// Dense multi-dimensional shapes (rank 1..4), row-major.
//
// Checkpoint targets in the paper are 1D/2D/3D floating-point mesh arrays
// (e.g. NICAM's 1156 x 82 x 2 state variables); rank 4 is supported for
// time-stacked fields.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <string>

#include "util/error.hpp"

namespace wck {

/// Maximum supported array rank.
inline constexpr std::size_t kMaxRank = 4;

/// Extents of a dense array. Axis 0 is the slowest-varying (row-major).
class Shape {
 public:
  Shape() = default;

  Shape(std::initializer_list<std::size_t> extents) {
    if (extents.size() == 0 || extents.size() > kMaxRank) {
      throw InvalidArgumentError("Shape rank must be 1.." + std::to_string(kMaxRank));
    }
    rank_ = extents.size();
    std::size_t i = 0;
    for (const std::size_t e : extents) ext_[i++] = e;
  }

  static Shape of_rank(std::size_t rank, std::size_t fill = 0) {
    if (rank == 0 || rank > kMaxRank) {
      throw InvalidArgumentError("Shape rank must be 1.." + std::to_string(kMaxRank));
    }
    Shape s;
    s.rank_ = rank;
    for (std::size_t i = 0; i < rank; ++i) s.ext_[i] = fill;
    return s;
  }

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  [[nodiscard]] std::size_t operator[](std::size_t axis) const noexcept { return ext_[axis]; }
  [[nodiscard]] std::size_t& operator[](std::size_t axis) noexcept { return ext_[axis]; }

  [[nodiscard]] std::size_t extent(std::size_t axis) const {
    if (axis >= rank_) throw InvalidArgumentError("Shape axis out of range");
    return ext_[axis];
  }

  /// Total number of elements.
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= ext_[i];
    return n;
  }

  [[nodiscard]] bool operator==(const Shape& o) const noexcept {
    if (rank_ != o.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (ext_[i] != o.ext_[i]) return false;
    }
    return true;
  }
  [[nodiscard]] bool operator!=(const Shape& o) const noexcept { return !(*this == o); }

  /// Row-major strides in elements.
  [[nodiscard]] std::array<std::size_t, kMaxRank> row_major_strides() const noexcept {
    std::array<std::size_t, kMaxRank> s{};
    std::size_t acc = 1;
    for (std::size_t i = rank_; i-- > 0;) {
      s[i] = acc;
      acc *= ext_[i];
    }
    return s;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i) s += "x";
      s += std::to_string(ext_[i]);
    }
    return s + "]";
  }

 private:
  std::size_t rank_ = 0;
  std::array<std::size_t, kMaxRank> ext_{};
};

}  // namespace wck
