#include "multilevel/multilevel.hpp"

#include "util/error.hpp"

namespace wck {

MultiLevelCheckpointer::MultiLevelCheckpointer(std::vector<LevelSpec> levels,
                                               const Codec& codec)
    : codec_(codec) {
  if (levels.empty()) throw InvalidArgumentError("multilevel: need at least one level");
  for (auto& spec : levels) {
    if (spec.every == 0) throw InvalidArgumentError("multilevel: cadence must be >= 1");
    if (spec.name.empty()) throw InvalidArgumentError("multilevel: level needs a name");
    std::error_code ec;
    std::filesystem::create_directories(spec.dir, ec);
    if (ec) throw IoError("multilevel: cannot create " + spec.dir.string());
    levels_.push_back(LevelState{std::move(spec), std::nullopt, {}});
  }
}

std::vector<MultiLevelCheckpointer::WriteRecord> MultiLevelCheckpointer::checkpoint(
    const CheckpointRegistry& registry, std::uint64_t step) {
  ++opportunities_;
  std::vector<WriteRecord> written;
  for (LevelState& level : levels_) {
    if (opportunities_ % level.spec.every != 0) continue;
    const auto path = level.spec.dir / ("ckpt_" + std::to_string(step) + ".wck");
    const CheckpointInfo info = write_checkpoint(path, registry, codec_, step);
    // Keep only the newest checkpoint per level (as SCR's default).
    if (!level.latest_path.empty() && level.latest_path != path) {
      std::error_code ec;
      std::filesystem::remove(level.latest_path, ec);
    }
    level.latest_step = step;
    level.latest_path = path;
    written.push_back(WriteRecord{level.spec.name, step, info});
  }
  return written;
}

std::optional<MultiLevelCheckpointer::RestartRecord>
MultiLevelCheckpointer::restart_after_failure(int severity,
                                              const CheckpointRegistry& registry) {
  // The failure wipes fragile levels.
  for (LevelState& level : levels_) {
    if (level.spec.survives_severity < severity && level.latest_step.has_value()) {
      std::error_code ec;
      std::filesystem::remove(level.latest_path, ec);
      level.latest_step.reset();
      level.latest_path.clear();
    }
  }
  // Restart from the newest surviving checkpoint.
  LevelState* best = nullptr;
  for (LevelState& level : levels_) {
    if (!level.latest_step.has_value()) continue;
    if (best == nullptr || *level.latest_step > *best->latest_step) best = &level;
  }
  if (best == nullptr) return std::nullopt;
  const CheckpointInfo info = read_checkpoint(best->latest_path, registry);
  return RestartRecord{best->spec.name, *best->latest_step, info};
}

std::vector<std::pair<std::string, std::optional<std::uint64_t>>>
MultiLevelCheckpointer::latest_steps() const {
  std::vector<std::pair<std::string, std::optional<std::uint64_t>>> out;
  out.reserve(levels_.size());
  for (const LevelState& level : levels_) {
    out.emplace_back(level.spec.name, level.latest_step);
  }
  return out;
}

}  // namespace wck
