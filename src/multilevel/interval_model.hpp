// Checkpoint-interval optimization models (Young / Daly) and strategy
// comparison under failures.
//
// The paper's closing future work: "optimizing checkpoint frequency by
// checkpointing model for lossy compression". These models answer the
// motivating question of the paper's introduction quantitatively: given
// an MTBF (projected to a few hours at exascale [4]) and a checkpoint
// cost C (which lossy compression shrinks by ~5x), how often should the
// application checkpoint and what fraction of the machine is wasted?
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wck {

/// Young's optimal checkpoint interval sqrt(2 * C * MTBF).
[[nodiscard]] double young_interval(double checkpoint_seconds, double mtbf_seconds);

/// Daly's refined optimal interval sqrt(2 * C * (MTBF + R)) - C.
[[nodiscard]] double daly_interval(double checkpoint_seconds, double restart_seconds,
                                   double mtbf_seconds);

/// First-order machine efficiency (useful work / wall time) of periodic
/// checkpointing with interval tau under exponential failures:
///   waste ~= C/tau + tau/(2*MTBF) + R/MTBF
/// Clamped to [0, 1]. Valid in the usual regime tau << MTBF.
[[nodiscard]] double checkpoint_efficiency(double interval_seconds, double checkpoint_seconds,
                                           double restart_seconds, double mtbf_seconds);

/// The efficiency at the numerically optimal interval (golden-section
/// search over the model, more robust than the analytic formula when C
/// is not << MTBF).
struct OptimalInterval {
  double interval_seconds = 0.0;
  double efficiency = 0.0;
};
[[nodiscard]] OptimalInterval optimize_interval(double checkpoint_seconds,
                                                double restart_seconds, double mtbf_seconds);

/// One checkpointing strategy to compare (e.g. "no compression",
/// "gzip", "lossy n=128").
struct Strategy {
  std::string name;
  double checkpoint_seconds;
  double restart_seconds;
};

/// Efficiency of each strategy across a sweep of MTBFs. Rows are
/// (mtbf_seconds, vector of per-strategy OptimalInterval).
struct StrategySweepRow {
  double mtbf_seconds;
  std::vector<OptimalInterval> by_strategy;
};
[[nodiscard]] std::vector<StrategySweepRow> sweep_strategies(
    const std::vector<Strategy>& strategies, const std::vector<double>& mtbfs);

// ---------------------------------------------------------------------
// Two-level model (Vaidya-style, for the multilevel subsystem)
// ---------------------------------------------------------------------

/// Parameters of a two-level hierarchy: cheap local checkpoints handle
/// a fraction of failures; expensive shared checkpoints handle the rest.
struct TwoLevelParams {
  double local_checkpoint_seconds;   ///< c1 (e.g. node-local SSD, lossy)
  double shared_checkpoint_seconds;  ///< c2 (parallel FS)
  double local_restart_seconds;
  double shared_restart_seconds;
  double mtbf_seconds;          ///< over all failures
  double local_failure_fraction;  ///< fraction recoverable from level 1
};

/// A two-level schedule: a local checkpoint every `local_interval_s`,
/// and every `shared_every`-th checkpoint also goes to shared storage.
struct TwoLevelSchedule {
  double local_interval_s = 0.0;
  int shared_every = 1;
  double efficiency = 0.0;
};

/// First-order expected efficiency of a two-level schedule: checkpoint
/// overhead (c1 per interval + c2 per shared_every intervals) plus
/// per-failure rework (half an interval for local failures, half a
/// shared period for severe ones) and restart costs.
[[nodiscard]] double two_level_efficiency(const TwoLevelParams& params,
                                          double local_interval_s, int shared_every);

/// Grid + golden search over (interval, shared_every) for the best
/// schedule.
[[nodiscard]] TwoLevelSchedule optimize_two_level(const TwoLevelParams& params);

}  // namespace wck
