// Multi-level checkpointing (paper Sec. V, refs [5] FTI, [25] SCR).
//
// Applications write cheap checkpoints to fast-but-fragile storage
// (node-local) frequently and expensive checkpoints to reliable shared
// storage rarely. A failure has a *severity*; each level declares the
// highest severity it survives. Restart picks the newest checkpoint on
// a surviving level.
//
// Combined with the lossy codec this realizes the paper's concluding
// plan: "we will combine with other efforts to reduce checkpointing
// costs, such as harnessing storage hierarchy".
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"

namespace wck {

/// One storage level.
struct LevelSpec {
  std::string name;            ///< e.g. "local", "shared"
  std::filesystem::path dir;   ///< directory checkpoints are written to
  std::uint64_t every = 1;     ///< write cadence in checkpoint opportunities
  int survives_severity = 1;   ///< highest failure severity this level survives
};

class MultiLevelCheckpointer {
 public:
  /// Levels must be ordered fastest/most-fragile first. The codec is
  /// shared across levels; directories are created if missing.
  MultiLevelCheckpointer(std::vector<LevelSpec> levels, const Codec& codec);

  /// One checkpoint opportunity at `step`: writes every level whose
  /// cadence divides the opportunity count. Returns per-level info for
  /// the levels written this time.
  struct WriteRecord {
    std::string level;
    std::uint64_t step;
    CheckpointInfo info;
  };
  std::vector<WriteRecord> checkpoint(const CheckpointRegistry& registry, std::uint64_t step);

  /// A failure of `severity` strikes: checkpoints on levels with
  /// survives_severity < severity are lost. Restores the newest
  /// surviving checkpoint into the registry and reports which level and
  /// step served the restart; nullopt if nothing survives.
  struct RestartRecord {
    std::string level;
    std::uint64_t step;
    CheckpointInfo info;
  };
  [[nodiscard]] std::optional<RestartRecord> restart_after_failure(
      int severity, const CheckpointRegistry& registry);

  /// Latest step checkpointed on each level (diagnostic).
  [[nodiscard]] std::vector<std::pair<std::string, std::optional<std::uint64_t>>>
  latest_steps() const;

 private:
  struct LevelState {
    LevelSpec spec;
    std::optional<std::uint64_t> latest_step;
    std::filesystem::path latest_path;
  };

  std::vector<LevelState> levels_;
  const Codec& codec_;
  std::uint64_t opportunities_ = 0;
};

}  // namespace wck
