#include "multilevel/interval_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wck {
namespace {

void check_positive(double v, const char* what) {
  if (!(v > 0.0)) throw InvalidArgumentError(std::string(what) + " must be positive");
}

}  // namespace

double young_interval(double checkpoint_seconds, double mtbf_seconds) {
  check_positive(checkpoint_seconds, "checkpoint time");
  check_positive(mtbf_seconds, "MTBF");
  return std::sqrt(2.0 * checkpoint_seconds * mtbf_seconds);
}

double daly_interval(double checkpoint_seconds, double restart_seconds, double mtbf_seconds) {
  check_positive(checkpoint_seconds, "checkpoint time");
  check_positive(mtbf_seconds, "MTBF");
  if (restart_seconds < 0.0) throw InvalidArgumentError("restart time must be >= 0");
  return std::sqrt(2.0 * checkpoint_seconds * (mtbf_seconds + restart_seconds)) -
         checkpoint_seconds;
}

double checkpoint_efficiency(double interval_seconds, double checkpoint_seconds,
                             double restart_seconds, double mtbf_seconds) {
  check_positive(interval_seconds, "interval");
  check_positive(checkpoint_seconds, "checkpoint time");
  check_positive(mtbf_seconds, "MTBF");
  if (restart_seconds < 0.0) throw InvalidArgumentError("restart time must be >= 0");
  const double waste = checkpoint_seconds / interval_seconds +
                       interval_seconds / (2.0 * mtbf_seconds) +
                       restart_seconds / mtbf_seconds;
  return std::clamp(1.0 - waste, 0.0, 1.0);
}

OptimalInterval optimize_interval(double checkpoint_seconds, double restart_seconds,
                                  double mtbf_seconds) {
  check_positive(checkpoint_seconds, "checkpoint time");
  check_positive(mtbf_seconds, "MTBF");
  // Golden-section maximization of efficiency over a generous bracket.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = checkpoint_seconds * 1e-3;
  double hi = mtbf_seconds * 4.0;
  double a = hi - phi * (hi - lo);
  double b = lo + phi * (hi - lo);
  auto eff = [&](double tau) {
    return checkpoint_efficiency(tau, checkpoint_seconds, restart_seconds, mtbf_seconds);
  };
  double fa = eff(a);
  double fb = eff(b);
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-9 * hi; ++iter) {
    if (fa < fb) {
      lo = a;
      a = b;
      fa = fb;
      b = lo + phi * (hi - lo);
      fb = eff(b);
    } else {
      hi = b;
      b = a;
      fb = fa;
      a = hi - phi * (hi - lo);
      fa = eff(a);
    }
  }
  const double tau = (lo + hi) / 2.0;
  return OptimalInterval{tau, eff(tau)};
}

double two_level_efficiency(const TwoLevelParams& p, double local_interval_s,
                            int shared_every) {
  check_positive(local_interval_s, "interval");
  check_positive(p.local_checkpoint_seconds, "local checkpoint time");
  check_positive(p.shared_checkpoint_seconds, "shared checkpoint time");
  check_positive(p.mtbf_seconds, "MTBF");
  if (shared_every < 1) throw InvalidArgumentError("shared_every must be >= 1");
  if (p.local_failure_fraction < 0.0 || p.local_failure_fraction > 1.0) {
    throw InvalidArgumentError("local failure fraction must be in [0, 1]");
  }

  const double tau = local_interval_s;
  const double shared_period = tau * shared_every;
  // Checkpoint overhead per unit of useful time.
  const double ckpt_overhead =
      p.local_checkpoint_seconds / tau + p.shared_checkpoint_seconds / shared_period;
  // Failure rework: local failures roll back half a local interval;
  // severe ones roll back half a shared period. Both pay their restart.
  const double f1 = p.local_failure_fraction;
  const double rework_per_failure = f1 * (tau / 2.0 + p.local_restart_seconds) +
                                    (1.0 - f1) * (shared_period / 2.0 +
                                                  p.shared_restart_seconds);
  const double failure_overhead = rework_per_failure / p.mtbf_seconds;
  return std::clamp(1.0 - ckpt_overhead - failure_overhead, 0.0, 1.0);
}

TwoLevelSchedule optimize_two_level(const TwoLevelParams& p) {
  TwoLevelSchedule best;
  for (int shared_every : {1, 2, 4, 8, 16, 32, 64, 128}) {
    // Golden-section over the local interval for this shared cadence.
    const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double lo = p.local_checkpoint_seconds * 1e-2;
    double hi = p.mtbf_seconds * 4.0;
    auto eff = [&](double tau) { return two_level_efficiency(p, tau, shared_every); };
    double a = hi - phi * (hi - lo);
    double b = lo + phi * (hi - lo);
    double fa = eff(a);
    double fb = eff(b);
    for (int iter = 0; iter < 200 && (hi - lo) > 1e-9 * hi; ++iter) {
      if (fa < fb) {
        lo = a;
        a = b;
        fa = fb;
        b = lo + phi * (hi - lo);
        fb = eff(b);
      } else {
        hi = b;
        b = a;
        fb = fa;
        a = hi - phi * (hi - lo);
        fa = eff(a);
      }
    }
    const double tau = (lo + hi) / 2.0;
    const double e = eff(tau);
    if (e > best.efficiency) {
      best.local_interval_s = tau;
      best.shared_every = shared_every;
      best.efficiency = e;
    }
  }
  return best;
}

std::vector<StrategySweepRow> sweep_strategies(const std::vector<Strategy>& strategies,
                                               const std::vector<double>& mtbfs) {
  std::vector<StrategySweepRow> rows;
  rows.reserve(mtbfs.size());
  for (const double mtbf : mtbfs) {
    StrategySweepRow row;
    row.mtbf_seconds = mtbf;
    for (const Strategy& s : strategies) {
      row.by_strategy.push_back(optimize_interval(s.checkpoint_seconds, s.restart_seconds, mtbf));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace wck
