// From-scratch DEFLATE (RFC 1951) with gzip (RFC 1952) and zlib
// (RFC 1950) containers.
//
// This is the lossless back end of the checkpoint compression pipeline:
// the paper applies gzip to the formatted wavelet/quantization output
// (Sec. III-D) and uses plain gzip as the lossless baseline (Fig. 6).
//
// The compressor chooses per block among stored / fixed-Huffman /
// dynamic-Huffman encodings, whichever is smallest, and the decompressor
// handles all three. Bitstreams interoperate with zlib/gzip (verified in
// tests against the system zlib).
#pragma once

#include <cstddef>
#include <span>

#include "util/bytes.hpp"

namespace wck {

struct DeflateOptions {
  /// zlib-style effort level 1 (fastest) .. 9 (best). Default 6.
  int level = 6;
};

/// Compresses to a raw DEFLATE stream (no container).
[[nodiscard]] Bytes deflate_compress(std::span<const std::byte> input,
                                     const DeflateOptions& options = {});

/// Decompresses a raw DEFLATE stream. Throws FormatError on malformed
/// input. `size_hint` pre-reserves the output buffer.
[[nodiscard]] Bytes deflate_decompress(std::span<const std::byte> input,
                                       std::size_t size_hint = 0);

/// Compresses to a gzip member (magic, deflate body, CRC-32, ISIZE).
[[nodiscard]] Bytes gzip_compress(std::span<const std::byte> input,
                                  const DeflateOptions& options = {});

/// Decompresses a single gzip member; verifies CRC-32 and ISIZE
/// (CorruptDataError on mismatch).
[[nodiscard]] Bytes gzip_decompress(std::span<const std::byte> input);

/// Compresses to a zlib stream (CMF/FLG header, deflate body, Adler-32).
[[nodiscard]] Bytes zlib_compress(std::span<const std::byte> input,
                                  const DeflateOptions& options = {});

/// Decompresses a zlib stream; verifies Adler-32.
[[nodiscard]] Bytes zlib_decompress(std::span<const std::byte> input);

}  // namespace wck
