// Canonical Huffman coding: length-limited code construction
// (package-merge), canonical code assignment (RFC 1951 rules), and a
// table-accelerated decoder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitio.hpp"

namespace wck {

/// Computes optimal length-limited Huffman code lengths for the given
/// symbol frequencies using the package-merge algorithm.
///
/// Symbols with zero frequency get length 0 (absent). If exactly one
/// symbol has nonzero frequency it gets length 1. Throws
/// InvalidArgumentError if the alphabet cannot fit in `max_length` bits.
[[nodiscard]] std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs,
                                                           int max_length);

/// Canonical Huffman codes derived from code lengths, following the
/// RFC 1951 assignment (shorter codes first; ties broken by symbol order).
struct CanonicalCode {
  std::vector<std::uint16_t> codes;   ///< MSB-first code bits per symbol.
  std::vector<std::uint8_t> lengths;  ///< 0 = symbol absent.

  [[nodiscard]] static CanonicalCode from_lengths(std::span<const std::uint8_t> lengths);

  /// Writes the code for `symbol` (must be present) to the bit stream.
  void emit(BitWriter& bw, int symbol) const {
    bw.put_huffman(codes[static_cast<std::size_t>(symbol)],
                   lengths[static_cast<std::size_t>(symbol)]);
  }
};

/// Decodes canonical Huffman codes from an LSB-first DEFLATE bit stream.
///
/// Uses a single-level lookup table for codes up to kFastBits and a
/// canonical bit-by-bit walk for longer codes.
class HuffmanDecoder {
 public:
  static constexpr int kFastBits = 10;

  /// Builds a decoder from per-symbol code lengths.
  ///
  /// `allow_incomplete` permits under-full codes with at most one symbol
  /// (DEFLATE allows a degenerate distance code); otherwise a code that
  /// does not exactly fill the Kraft budget is rejected as FormatError.
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths, bool allow_incomplete = false);

  /// Reads one symbol from the stream. Throws FormatError on an invalid
  /// code or truncated stream.
  [[nodiscard]] int decode(BitReader& br) const;

  [[nodiscard]] int max_length() const noexcept { return max_len_; }

 private:
  struct FastEntry {
    std::int16_t symbol = -1;  ///< -1: not decodable via fast table.
    std::uint8_t length = 0;
  };

  std::vector<FastEntry> fast_;           ///< 2^kFastBits entries.
  std::vector<std::uint16_t> sym_by_code_;  ///< symbols sorted by (len, symbol).
  std::uint32_t first_code_[16] = {};     ///< first canonical code of each length.
  std::uint32_t first_index_[16] = {};    ///< index into sym_by_code_ per length.
  std::uint32_t count_[16] = {};          ///< number of codes of each length.
  int max_len_ = 0;
};

}  // namespace wck
