// gzip (RFC 1952) and zlib (RFC 1950) containers around raw DEFLATE.
#include "deflate/deflate.hpp"

#include "util/checksum.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint8_t kGzipId1 = 0x1F;
constexpr std::uint8_t kGzipId2 = 0x8B;
constexpr std::uint8_t kCmDeflate = 8;

constexpr std::uint8_t kFlagText = 0x01;
constexpr std::uint8_t kFlagHcrc = 0x02;
constexpr std::uint8_t kFlagExtra = 0x04;
constexpr std::uint8_t kFlagName = 0x08;
constexpr std::uint8_t kFlagComment = 0x10;

}  // namespace

Bytes gzip_compress(std::span<const std::byte> input, const DeflateOptions& options) {
  ByteWriter w;
  w.u8(kGzipId1);
  w.u8(kGzipId2);
  w.u8(kCmDeflate);
  w.u8(0);   // FLG: no name/comment/extra
  w.u32(0);  // MTIME: unset (keeps output deterministic)
  w.u8(options.level >= 8 ? 2 : (options.level <= 2 ? 4 : 0));  // XFL
  w.u8(255);                                                    // OS: unknown

  const Bytes body = deflate_compress(input, options);
  w.raw(body.data(), body.size());
  w.u32(crc32(input));
  w.u32(static_cast<std::uint32_t>(input.size()));  // ISIZE mod 2^32
  return w.take();
}

Bytes gzip_decompress(std::span<const std::byte> input) {
  ByteReader r(input);
  if (r.u8() != kGzipId1 || r.u8() != kGzipId2) throw FormatError("bad gzip magic");
  if (r.u8() != kCmDeflate) throw FormatError("gzip: unsupported compression method");
  const std::uint8_t flg = r.u8();
  (void)r.u32();  // MTIME
  (void)r.u8();   // XFL
  (void)r.u8();   // OS
  if ((flg & kFlagExtra) != 0) {
    const std::uint16_t xlen = r.u16();
    (void)r.raw(xlen);
  }
  auto skip_zstring = [&r] {
    while (r.u8() != 0) {
    }
  };
  if ((flg & kFlagName) != 0) skip_zstring();
  if ((flg & kFlagComment) != 0) skip_zstring();
  if ((flg & kFlagHcrc) != 0) (void)r.u16();
  (void)kFlagText;  // FTEXT is advisory only

  if (r.remaining() < 8) throw FormatError("gzip stream truncated");
  const auto body = input.subspan(r.position(), r.remaining() - 8);
  Bytes out = deflate_decompress(body);

  ByteReader tail(input.subspan(input.size() - 8));
  const std::uint32_t want_crc = tail.u32();
  const std::uint32_t want_size = tail.u32();
  if (crc32(std::span<const std::byte>(out)) != want_crc) {
    throw CorruptDataError("gzip CRC-32 mismatch");
  }
  if (static_cast<std::uint32_t>(out.size()) != want_size) {
    throw CorruptDataError("gzip ISIZE mismatch");
  }
  return out;
}

Bytes zlib_compress(std::span<const std::byte> input, const DeflateOptions& options) {
  ByteWriter w;
  const std::uint8_t cmf = 0x78;  // CM=8, CINFO=7 (32 KiB window)
  std::uint8_t flevel;
  if (options.level <= 2) {
    flevel = 0;
  } else if (options.level <= 5) {
    flevel = 1;
  } else if (options.level == 6) {
    flevel = 2;
  } else {
    flevel = 3;
  }
  std::uint8_t flg = static_cast<std::uint8_t>(flevel << 6);
  // FCHECK: make (cmf*256 + flg) divisible by 31.
  const int rem = (cmf * 256 + flg) % 31;
  if (rem != 0) flg = static_cast<std::uint8_t>(flg + (31 - rem));
  w.u8(cmf);
  w.u8(flg);

  const Bytes body = deflate_compress(input, options);
  w.raw(body.data(), body.size());
  // Adler-32 is stored big-endian (network order) per RFC 1950.
  const std::uint32_t a = adler32(input);
  w.u8(static_cast<std::uint8_t>(a >> 24));
  w.u8(static_cast<std::uint8_t>(a >> 16));
  w.u8(static_cast<std::uint8_t>(a >> 8));
  w.u8(static_cast<std::uint8_t>(a));
  return w.take();
}

Bytes zlib_decompress(std::span<const std::byte> input) {
  ByteReader r(input);
  const std::uint8_t cmf = r.u8();
  const std::uint8_t flg = r.u8();
  if ((cmf & 0x0F) != kCmDeflate) throw FormatError("zlib: unsupported compression method");
  if ((cmf * 256 + flg) % 31 != 0) throw FormatError("zlib: bad FCHECK");
  if ((flg & 0x20) != 0) throw FormatError("zlib: preset dictionary not supported");

  if (r.remaining() < 4) throw FormatError("zlib stream truncated");
  const auto body = input.subspan(r.position(), r.remaining() - 4);
  Bytes out = deflate_decompress(body);

  const auto tail = input.subspan(input.size() - 4);
  const std::uint32_t want = (static_cast<std::uint32_t>(tail[0]) << 24) |
                             (static_cast<std::uint32_t>(tail[1]) << 16) |
                             (static_cast<std::uint32_t>(tail[2]) << 8) |
                             static_cast<std::uint32_t>(tail[3]);
  if (adler32(std::span<const std::byte>(out)) != want) {
    throw CorruptDataError("zlib Adler-32 mismatch");
  }
  return out;
}

}  // namespace wck
