// LZ77 string matching over a 32 KiB sliding window (the DEFLATE model):
// hash-chain candidate search with greedy parsing plus one-step lazy
// matching, as in zlib.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wck {

/// One parsed element: either a literal byte or a (length, distance)
/// back-reference. Packed into 32 bits: bit 31 set for matches, bits
/// 16..23 hold length-3, bits 0..15 hold distance-1.
class Lz77Token {
 public:
  static Lz77Token literal(std::uint8_t byte) noexcept { return Lz77Token(byte); }

  static Lz77Token match(int length, int distance) noexcept {
    return Lz77Token(0x80000000u | (static_cast<std::uint32_t>(length - 3) << 16) |
                     static_cast<std::uint32_t>(distance - 1));
  }

  [[nodiscard]] bool is_match() const noexcept { return (raw_ & 0x80000000u) != 0; }
  [[nodiscard]] std::uint8_t literal_byte() const noexcept {
    return static_cast<std::uint8_t>(raw_ & 0xFFu);
  }
  [[nodiscard]] int length() const noexcept { return static_cast<int>((raw_ >> 16) & 0xFFu) + 3; }
  [[nodiscard]] int distance() const noexcept { return static_cast<int>(raw_ & 0xFFFFu) + 1; }

 private:
  explicit Lz77Token(std::uint32_t raw) noexcept : raw_(raw) {}
  std::uint32_t raw_;
};

/// Matching effort knobs (indexed by compression level 1..9).
struct Lz77Params {
  int max_chain = 128;    ///< candidates examined per position
  int nice_length = 128;  ///< stop searching once a match this long is found
  int lazy_threshold = 16;  ///< only try lazy matching if current match is shorter
};

/// Returns the parameters zlib-style levels map to.
[[nodiscard]] Lz77Params lz77_params_for_level(int level);

/// Parses `input` into a token stream. Deterministic for fixed input and
/// params. The token stream always reproduces `input` exactly.
[[nodiscard]] std::vector<Lz77Token> lz77_parse(std::span<const std::byte> input,
                                                const Lz77Params& params);

}  // namespace wck
