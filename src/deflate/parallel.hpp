// Parallel sharded DEFLATE: block-parallel entropy coding of the
// checkpoint hot path.
//
// The deflate/gzip stage dominates per-checkpoint compression time
// (~90 % in the Fig. 9 breakdown, see perf/BENCH_seed.json) yet RFC 1951
// streams are inherently serial. Following the pigz-style sharding used
// by production checkpoint libraries, the input is split into fixed-size
// *data-independent* blocks (default 256 KiB), each block is compressed
// to an independent raw DEFLATE stream — concurrently, on a shared
// thread pool — and the results are framed in the "WCKP" container
// below. Decompression is symmetric: blocks are decoded concurrently,
// CRC-verified, and spliced back in order, so restore time scales too.
//
// Determinism guarantee: for a given (input, block_size) the container
// bytes are identical at ANY thread count, because block boundaries
// depend only on block_size and every block is compressed by the same
// serial per-block encoder. Thread count affects wall-clock only.
//
// Container layout (all integers little-endian, varint = LEB128):
//
//   u32    magic "WCKP" (0x504B4357)
//   u8     version (1)
//   u8     flags (0, reserved)
//   varint block_size          uncompressed bytes per full block
//   varint total_size          uncompressed payload size
//   varint block_count         == ceil(total_size / block_size)
//   block_count x {            per-block table
//     varint compressed_size
//     varint uncompressed_size (== block_size except the last block)
//     u32    crc32             of the uncompressed block
//   }
//   block_count x raw DEFLATE streams, concatenated in block order
//
// The trade-off vs a single stream is a fresh LZ77 window per block plus
// ~10 bytes of framing per block: < 2 % size drift at the default block
// size (gated by tools/check_bench_regress.py and bench/micro_deflate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "util/bytes.hpp"

namespace wck {

/// Default uncompressed bytes per shard. Large enough that the per-block
/// LZ77 window reset and frame overhead stay under ~1 % on checkpoint
/// payloads, small enough that a 1.5 MB per-process array (the paper's
/// Fig. 9 size) still splits into ~7 concurrent blocks.
inline constexpr std::size_t kDefaultDeflateBlockSize = 256 * 1024;

struct ShardedDeflateOptions {
  /// zlib-style effort level 1..9 (as DeflateOptions).
  int level = 6;
  /// Uncompressed bytes per block; must be >= 1. Changing it changes the
  /// output bytes (the determinism guarantee is per (input, block_size)).
  std::size_t block_size = kDefaultDeflateBlockSize;
  /// Worker count for this call: 1 compresses inline on the caller's
  /// thread; N > 1 fans blocks out over the process-shared deflate pool
  /// (effective concurrency additionally bounded by the pool width,
  /// i.e. the machine's core count). Never alters the output bytes.
  std::size_t threads = 1;
};

/// Compresses `input` into a WCKP sharded container. Deterministic for a
/// given (input, options.block_size) regardless of options.threads.
/// Empty input yields a valid zero-block container.
[[nodiscard]] Bytes sharded_deflate_compress(std::span<const std::byte> input,
                                             const ShardedDeflateOptions& options = {});

/// Decompresses a WCKP container, decoding blocks concurrently when
/// `threads` > 1 (0 = resolve from WCK_THREADS, serial when unset).
/// Throws FormatError on malformed framing and CorruptDataError when a
/// block fails its CRC-32 or size check.
[[nodiscard]] Bytes sharded_deflate_decompress(std::span<const std::byte> input,
                                               std::size_t threads = 0);

/// True when `data` starts with the WCKP magic (cheap container sniff).
[[nodiscard]] bool is_sharded_deflate(std::span<const std::byte> data) noexcept;

/// Resolves a CompressionParams/CLI-style thread request to an effective
/// sharding decision:
///   requested >= 1  -> shard with that many workers (1 = inline serial,
///                      still the WCKP container)
///   requested == 0  -> consult WCK_THREADS: unset/empty/unparsable means
///                      "no sharding" (nullopt -> the legacy serial
///                      container); "0" or "max" means hardware
///                      concurrency; any positive integer is taken as-is
///   requested < 0   -> no sharding (explicit legacy opt-out)
/// nullopt therefore means "keep the pre-sharding serial code path".
[[nodiscard]] std::optional<std::size_t> resolve_deflate_sharding(int requested);

}  // namespace wck
