// Order-0 Huffman coding of bytes, without LZ77 matching.
//
// The paper's Sec. IV-D future work: "we are going to investigate other
// compression methods that are more appropriate than gzip when combined
// with our lossy compression". The formatted payload's entropy is
// dominated by the 1-byte quantization indexes, whose distribution an
// order-0 coder captures at a fraction of DEFLATE's cost — this coder
// trades a few points of ratio for several-fold faster compression.
#pragma once

#include <span>

#include "util/bytes.hpp"

namespace wck {

/// Compresses with a single canonical Huffman code over byte values.
/// Self-describing; never expands pathologically (falls back to a
/// stored block when coding would not help).
[[nodiscard]] Bytes huffman_only_compress(std::span<const std::byte> input);

/// Exact inverse of huffman_only_compress.
[[nodiscard]] Bytes huffman_only_decompress(std::span<const std::byte> input);

}  // namespace wck
