#include "deflate/deflate.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <optional>

#include "deflate/deflate_tables.hpp"
#include "deflate/huffman.hpp"
#include "deflate/lz77.hpp"
#include "util/bitio.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

namespace dt = deflate_tables;

/// Precomputed length -> length-code LUT (index by length - 3).
struct LengthCodeLut {
  std::array<std::uint8_t, 256> code{};
  LengthCodeLut() noexcept {
    for (int len = dt::kMinMatch; len <= dt::kMaxMatch; ++len) {
      code[static_cast<std::size_t>(len - dt::kMinMatch)] =
          static_cast<std::uint8_t>(dt::length_to_code(len));
    }
  }
};
const LengthCodeLut kLenLut;

int length_code_of(int len) noexcept {
  return kLenLut.code[static_cast<std::size_t>(len - dt::kMinMatch)];
}

/// RLE instruction for the code-length code (RFC 1951 3.2.7).
struct ClcSymbol {
  std::uint8_t symbol;  ///< 0..18
  std::uint8_t extra_value;
  std::uint8_t extra_bits;
};

/// Encodes a concatenated (litlen ++ dist) code-length array into
/// code-length-code symbols with 16/17/18 run compression.
std::vector<ClcSymbol> rle_encode_lengths(std::span<const std::uint8_t> lengths) {
  std::vector<ClcSymbol> out;
  const std::size_t n = lengths.size();
  std::size_t i = 0;
  int prev = -1;
  while (i < n) {
    const std::uint8_t v = lengths[i];
    std::size_t run = 1;
    while (i + run < n && lengths[i + run] == v) ++run;

    if (v == 0) {
      std::size_t left = run;
      while (left >= 11) {
        const std::size_t take = std::min<std::size_t>(left, 138);
        out.push_back({18, static_cast<std::uint8_t>(take - 11), 7});
        left -= take;
      }
      if (left >= 3) {
        out.push_back({17, static_cast<std::uint8_t>(left - 3), 3});
        left = 0;
      }
      while (left-- > 0) out.push_back({0, 0, 0});
      prev = 0;
    } else {
      std::size_t left = run;
      if (prev != v) {
        out.push_back({v, 0, 0});
        --left;
        prev = v;
      }
      while (left >= 3) {
        const std::size_t take = std::min<std::size_t>(left, 6);
        out.push_back({16, static_cast<std::uint8_t>(take - 3), 2});
        left -= take;
      }
      while (left-- > 0) out.push_back({static_cast<std::uint8_t>(v), 0, 0});
    }
    i += run;
  }
  return out;
}

/// Everything needed to emit one block with a given pair of codes.
struct BlockCodes {
  CanonicalCode litlen;
  CanonicalCode dist;
};

/// Frequencies of litlen/dist symbols in a token range (EOB included).
struct BlockFreqs {
  std::array<std::uint64_t, dt::kNumLitLen> litlen{};
  std::array<std::uint64_t, dt::kNumDist> dist{};
};

BlockFreqs count_frequencies(std::span<const Lz77Token> tokens) {
  BlockFreqs f;
  for (const Lz77Token& t : tokens) {
    if (t.is_match()) {
      ++f.litlen[static_cast<std::size_t>(257 + length_code_of(t.length()))];
      ++f.dist[static_cast<std::size_t>(dt::dist_to_code(t.distance()))];
    } else {
      ++f.litlen[t.literal_byte()];
    }
  }
  ++f.litlen[dt::kEndOfBlock];
  return f;
}

/// Bit cost of the token data (symbols + extra bits) under given lengths.
std::uint64_t data_cost_bits(const BlockFreqs& f, std::span<const std::uint8_t> litlen_lengths,
                             std::span<const std::uint8_t> dist_lengths) {
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < f.litlen.size(); ++s) {
    if (f.litlen[s] == 0) continue;
    bits += f.litlen[s] * litlen_lengths[s];
    if (s > 256) bits += f.litlen[s] * dt::kLengthCodes[s - 257].extra;
  }
  for (std::size_t s = 0; s < f.dist.size(); ++s) {
    if (f.dist[s] == 0) continue;
    bits += f.dist[s] * (s < dist_lengths.size() ? dist_lengths[s] : 0);
    bits += f.dist[s] * dt::kDistCodes[s].extra;
  }
  return bits;
}

/// Emits the token data with the given codes, ending with EOB.
void emit_tokens(BitWriter& bw, std::span<const Lz77Token> tokens, const BlockCodes& codes) {
  for (const Lz77Token& t : tokens) {
    if (t.is_match()) {
      const int lc = length_code_of(t.length());
      codes.litlen.emit(bw, 257 + lc);
      const auto& le = dt::kLengthCodes[static_cast<std::size_t>(lc)];
      if (le.extra > 0) {
        bw.put(static_cast<std::uint32_t>(t.length() - le.base), le.extra);
      }
      const int dc = dt::dist_to_code(t.distance());
      codes.dist.emit(bw, dc);
      const auto& de = dt::kDistCodes[static_cast<std::size_t>(dc)];
      if (de.extra > 0) {
        bw.put(static_cast<std::uint32_t>(t.distance() - de.base), de.extra);
      }
    } else {
      codes.litlen.emit(bw, t.literal_byte());
    }
  }
  codes.litlen.emit(bw, dt::kEndOfBlock);
}

/// Dynamic-block header plan: trimmed alphabets + RLE-coded lengths.
struct DynamicPlan {
  std::vector<std::uint8_t> litlen_lengths;  // size >= 257
  std::vector<std::uint8_t> dist_lengths;    // size >= 1
  std::vector<ClcSymbol> rle;
  std::array<std::uint8_t, dt::kNumClc> clc_lengths{};
  int hclen = 4;  // number of CLC lengths transmitted, 4..19
  std::uint64_t header_bits = 0;
};

DynamicPlan plan_dynamic(const BlockFreqs& f) {
  DynamicPlan p;

  auto litlen_full = build_code_lengths(std::span(f.litlen), dt::kMaxCodeLen);
  auto dist_freq = f.dist;
  bool any_dist = false;
  for (const auto v : dist_freq) any_dist = any_dist || v > 0;
  if (!any_dist) dist_freq[0] = 1;  // RFC requires at least one distance code
  auto dist_full = build_code_lengths(std::span(dist_freq), dt::kMaxCodeLen);

  // Trim trailing absent symbols (HLIT >= 257, HDIST >= 1).
  std::size_t nlit = dt::kNumLitLen;
  while (nlit > 257 && litlen_full[nlit - 1] == 0) --nlit;
  std::size_t ndist = dt::kNumDist;
  while (ndist > 1 && dist_full[ndist - 1] == 0) --ndist;

  p.litlen_lengths.assign(litlen_full.begin(), litlen_full.begin() + nlit);
  p.dist_lengths.assign(dist_full.begin(), dist_full.begin() + ndist);

  // RLE over the concatenated arrays.
  std::vector<std::uint8_t> combined = p.litlen_lengths;
  combined.insert(combined.end(), p.dist_lengths.begin(), p.dist_lengths.end());
  p.rle = rle_encode_lengths(combined);

  // Huffman code over the CLC symbols.
  std::array<std::uint64_t, dt::kNumClc> clc_freq{};
  for (const ClcSymbol& s : p.rle) ++clc_freq[s.symbol];
  const auto clc_lengths = build_code_lengths(std::span(clc_freq), dt::kMaxClcLen);
  std::copy(clc_lengths.begin(), clc_lengths.end(), p.clc_lengths.begin());

  int hclen = dt::kNumClc;
  while (hclen > 4 && p.clc_lengths[dt::kClcOrder[static_cast<std::size_t>(hclen - 1)]] == 0) {
    --hclen;
  }
  p.hclen = hclen;

  p.header_bits = 5 + 5 + 4 + static_cast<std::uint64_t>(hclen) * 3;
  for (const ClcSymbol& s : p.rle) {
    p.header_bits += p.clc_lengths[s.symbol] + s.extra_bits;
  }
  return p;
}

void emit_dynamic_block(BitWriter& bw, std::span<const Lz77Token> tokens, const DynamicPlan& p,
                        bool final_block) {
  bw.put(final_block ? 1u : 0u, 1);
  bw.put(0b10, 2);  // BTYPE = dynamic
  bw.put(static_cast<std::uint32_t>(p.litlen_lengths.size() - 257), 5);
  bw.put(static_cast<std::uint32_t>(p.dist_lengths.size() - 1), 5);
  bw.put(static_cast<std::uint32_t>(p.hclen - 4), 4);
  for (int i = 0; i < p.hclen; ++i) {
    bw.put(p.clc_lengths[dt::kClcOrder[static_cast<std::size_t>(i)]], 3);
  }
  const auto clc = CanonicalCode::from_lengths(std::span(p.clc_lengths));
  for (const ClcSymbol& s : p.rle) {
    clc.emit(bw, s.symbol);
    if (s.extra_bits > 0) bw.put(s.extra_value, s.extra_bits);
  }
  BlockCodes codes{CanonicalCode::from_lengths(std::span(p.litlen_lengths)),
                   CanonicalCode::from_lengths(std::span(p.dist_lengths))};
  emit_tokens(bw, tokens, codes);
}

void emit_fixed_block(BitWriter& bw, std::span<const Lz77Token> tokens, bool final_block) {
  bw.put(final_block ? 1u : 0u, 1);
  bw.put(0b01, 2);  // BTYPE = fixed
  static const auto kLit = dt::fixed_litlen_lengths();
  static const auto kDist = dt::fixed_dist_lengths();
  static const BlockCodes kCodes{CanonicalCode::from_lengths(std::span(kLit)),
                                 CanonicalCode::from_lengths(std::span(kDist))};
  emit_tokens(bw, tokens, kCodes);
}

void emit_stored_blocks(BitWriter& bw, std::span<const std::byte> raw, bool final_block) {
  // A stored block holds at most 65535 bytes; split as needed. An empty
  // input still needs one (empty) stored block if it must carry BFINAL.
  std::size_t off = 0;
  do {
    const std::size_t take = std::min<std::size_t>(raw.size() - off, 65535);
    const bool last_piece = off + take == raw.size();
    bw.put((final_block && last_piece) ? 1u : 0u, 1);
    bw.put(0b00, 2);  // BTYPE = stored
    bw.align_to_byte();
    const auto len = static_cast<std::uint16_t>(take);
    bw.put(len, 16);
    bw.put(static_cast<std::uint16_t>(~len), 16);
    for (std::size_t i = 0; i < take; ++i) {
      bw.put(static_cast<std::uint8_t>(raw[off + i]), 8);
    }
    off += take;
  } while (off < raw.size());
}

}  // namespace

Bytes deflate_compress(std::span<const std::byte> input, const DeflateOptions& options) {
  Bytes out;
  BitWriter bw(out);

  if (input.empty()) {
    emit_stored_blocks(bw, input, /*final_block=*/true);
    bw.align_to_byte();
    return out;
  }

  const Lz77Params params = lz77_params_for_level(options.level);
  const std::vector<Lz77Token> tokens = lz77_parse(input, params);

  // Split the token stream into blocks so each gets its own adapted
  // Huffman code. Block boundaries also track the raw-byte range so the
  // stored fallback can be costed exactly.
  constexpr std::size_t kTokensPerBlock = 1 << 16;
  std::size_t tok_begin = 0;
  std::size_t raw_begin = 0;
  while (tok_begin < tokens.size() || tok_begin == 0) {
    const std::size_t tok_end = std::min(tokens.size(), tok_begin + kTokensPerBlock);
    const auto block = std::span(tokens).subspan(tok_begin, tok_end - tok_begin);
    std::size_t raw_len = 0;
    for (const Lz77Token& t : block) {
      raw_len += t.is_match() ? static_cast<std::size_t>(t.length()) : 1;
    }
    const auto raw = input.subspan(raw_begin, raw_len);
    const bool final_block = tok_end == tokens.size();

    const BlockFreqs freqs = count_frequencies(block);
    const DynamicPlan plan = plan_dynamic(freqs);
    const std::uint64_t dyn_bits =
        3 + plan.header_bits +
        data_cost_bits(freqs, std::span(plan.litlen_lengths), std::span(plan.dist_lengths));
    static const auto kFixedLit = dt::fixed_litlen_lengths();
    static const auto kFixedDist = dt::fixed_dist_lengths();
    const std::uint64_t fixed_bits =
        3 + data_cost_bits(freqs, std::span(kFixedLit), std::span(kFixedDist));
    // Stored needs byte alignment (up to 7 pad bits) + 4 bytes of
    // LEN/NLEN per 65535-byte piece.
    const std::uint64_t stored_bits =
        3 + 7 + (raw_len / 65535 + 1) * 32 + static_cast<std::uint64_t>(raw_len) * 8;

    if (stored_bits < dyn_bits && stored_bits < fixed_bits) {
      emit_stored_blocks(bw, raw, final_block);
    } else if (fixed_bits <= dyn_bits) {
      emit_fixed_block(bw, block, final_block);
    } else {
      emit_dynamic_block(bw, block, plan, final_block);
    }

    raw_begin += raw_len;
    tok_begin = tok_end;
    if (final_block) break;
  }

  bw.align_to_byte();
  return out;
}

namespace {

/// Reads the dynamic-block code-length tables (RFC 1951 3.2.7).
void read_dynamic_tables(BitReader& br, std::vector<std::uint8_t>& litlen_lengths,
                         std::vector<std::uint8_t>& dist_lengths) {
  const std::uint32_t hlit = br.get(5) + 257;
  const std::uint32_t hdist = br.get(5) + 1;
  const std::uint32_t hclen = br.get(4) + 4;
  if (hlit > 286 || hdist > 30) throw FormatError("dynamic block: alphabet too large");

  std::array<std::uint8_t, dt::kNumClc> clc_lengths{};
  for (std::uint32_t i = 0; i < hclen; ++i) {
    clc_lengths[dt::kClcOrder[i]] = static_cast<std::uint8_t>(br.get(3));
  }
  const HuffmanDecoder clc{std::span(clc_lengths)};

  std::vector<std::uint8_t> combined;
  combined.reserve(hlit + hdist);
  while (combined.size() < hlit + hdist) {
    const int sym = clc.decode(br);
    if (sym < 16) {
      combined.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      if (combined.empty()) throw FormatError("repeat code with no previous length");
      const std::uint32_t rep = 3 + br.get(2);
      combined.insert(combined.end(), rep, combined.back());
    } else if (sym == 17) {
      const std::uint32_t rep = 3 + br.get(3);
      combined.insert(combined.end(), rep, 0);
    } else {  // 18
      const std::uint32_t rep = 11 + br.get(7);
      combined.insert(combined.end(), rep, 0);
    }
  }
  if (combined.size() != hlit + hdist) {
    throw FormatError("code length repeat overflows alphabet");
  }
  litlen_lengths.assign(combined.begin(), combined.begin() + hlit);
  dist_lengths.assign(combined.begin() + hlit, combined.end());
}

}  // namespace

Bytes deflate_decompress(std::span<const std::byte> input, std::size_t size_hint) {
  Bytes out;
  out.reserve(size_hint);
  BitReader br(input);

  static const auto kFixedLit = dt::fixed_litlen_lengths();
  static const auto kFixedDist = dt::fixed_dist_lengths();
  static const HuffmanDecoder kFixedLitDec{std::span(kFixedLit)};
  static const HuffmanDecoder kFixedDistDec{std::span(kFixedDist)};

  bool final_block = false;
  while (!final_block) {
    final_block = br.get(1) != 0;
    const std::uint32_t btype = br.get(2);

    if (btype == 0b00) {  // stored
      br.align_to_byte();
      const std::uint32_t len = br.get(16);
      const std::uint32_t nlen = br.get(16);
      if ((len ^ nlen) != 0xFFFFu) throw FormatError("stored block LEN/NLEN mismatch");
      const std::size_t pos = out.size();
      out.resize(pos + len);
      br.read_aligned(out.data() + pos, len);
      continue;
    }
    if (btype == 0b11) throw FormatError("reserved block type 11");

    const HuffmanDecoder* lit_dec = &kFixedLitDec;
    const HuffmanDecoder* dist_dec = &kFixedDistDec;
    std::optional<HuffmanDecoder> dyn_lit;
    std::optional<HuffmanDecoder> dyn_dist;
    if (btype == 0b10) {  // dynamic
      std::vector<std::uint8_t> litlen_lengths;
      std::vector<std::uint8_t> dist_lengths;
      read_dynamic_tables(br, litlen_lengths, dist_lengths);
      dyn_lit.emplace(std::span(litlen_lengths));
      dyn_dist.emplace(std::span(dist_lengths), /*allow_incomplete=*/true);
      lit_dec = &*dyn_lit;
      dist_dec = &*dyn_dist;
    }

    for (;;) {
      const int sym = lit_dec->decode(br);
      if (sym < 256) {
        out.push_back(static_cast<std::byte>(sym));
      } else if (sym == dt::kEndOfBlock) {
        break;
      } else {
        if (sym > 285) throw FormatError("invalid length symbol");
        const auto& le = dt::kLengthCodes[static_cast<std::size_t>(sym - 257)];
        const int len = le.base + static_cast<int>(br.get(le.extra));
        const int dsym = dist_dec->decode(br);
        if (dsym > 29) throw FormatError("invalid distance symbol");
        const auto& de = dt::kDistCodes[static_cast<std::size_t>(dsym)];
        const int dist = de.base + static_cast<int>(br.get(de.extra));
        if (static_cast<std::size_t>(dist) > out.size()) {
          throw FormatError("distance reaches before start of output");
        }
        // Overlapped copy semantics: byte-by-byte from `dist` back.
        const std::size_t start = out.size() - static_cast<std::size_t>(dist);
        for (int i = 0; i < len; ++i) {
          out.push_back(out[start + static_cast<std::size_t>(i)]);
        }
      }
    }
  }
  return out;
}

}  // namespace wck
