#include "deflate/huffman.hpp"

#include <algorithm>
#include <cstddef>
#include <string>

#include "util/error.hpp"

namespace wck {
namespace {

/// A node in the package-merge coin lists: a weight plus the multiset of
/// leaf symbols it contains (alphabets are small — at most 288 symbols —
/// so storing symbol lists explicitly is cheap and keeps the algorithm
/// literal).
struct PmNode {
  std::uint64_t weight = 0;
  std::vector<std::uint16_t> symbols;
};

}  // namespace

std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs,
                                             int max_length) {
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);

  std::vector<std::uint16_t> used;
  for (std::size_t i = 0; i < n; ++i) {
    if (freqs[i] > 0) used.push_back(static_cast<std::uint16_t>(i));
  }
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return lengths;
  }
  if (static_cast<std::size_t>(1) << max_length < used.size()) {
    throw InvalidArgumentError("alphabet of " + std::to_string(used.size()) +
                               " symbols cannot fit in " + std::to_string(max_length) + " bits");
  }

  // Package-merge (coin collector): leaves sorted by weight form the
  // denomination list at every level; each level pairs adjacent nodes of
  // the previous level into packages and merges them with the leaves.
  std::vector<PmNode> leaves;
  leaves.reserve(used.size());
  for (const std::uint16_t s : used) {
    leaves.push_back(PmNode{freqs[s], {s}});
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const PmNode& a, const PmNode& b) { return a.weight < b.weight; });

  std::vector<PmNode> prev = leaves;
  for (int level = 1; level < max_length; ++level) {
    // Pair adjacent nodes of `prev` into packages.
    std::vector<PmNode> packages;
    packages.reserve(prev.size() / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      PmNode pkg;
      pkg.weight = prev[i].weight + prev[i + 1].weight;
      pkg.symbols = prev[i].symbols;
      pkg.symbols.insert(pkg.symbols.end(), prev[i + 1].symbols.begin(),
                         prev[i + 1].symbols.end());
      packages.push_back(std::move(pkg));
    }
    // Merge packages with the fresh leaf list (both sorted by weight).
    std::vector<PmNode> cur;
    cur.reserve(leaves.size() + packages.size());
    std::size_t li = 0;
    std::size_t pi = 0;
    while (li < leaves.size() || pi < packages.size()) {
      const bool take_leaf =
          pi >= packages.size() ||
          (li < leaves.size() && leaves[li].weight <= packages[pi].weight);
      cur.push_back(take_leaf ? leaves[li++] : std::move(packages[pi++]));
    }
    prev = std::move(cur);
  }

  // The first 2*(n_used - 1) nodes of the final list are the solution;
  // each symbol's code length equals the number of nodes containing it.
  const std::size_t take = 2 * (used.size() - 1);
  for (std::size_t i = 0; i < take; ++i) {
    for (const std::uint16_t s : prev[i].symbols) {
      ++lengths[s];
    }
  }
  return lengths;
}

CanonicalCode CanonicalCode::from_lengths(std::span<const std::uint8_t> lengths) {
  CanonicalCode cc;
  cc.lengths.assign(lengths.begin(), lengths.end());
  cc.codes.assign(lengths.size(), 0);

  std::uint32_t bl_count[16] = {};
  int max_len = 0;
  for (const std::uint8_t l : lengths) {
    if (l > 15) throw InvalidArgumentError("code length exceeds 15 bits");
    ++bl_count[l];
    max_len = std::max<int>(max_len, l);
  }
  bl_count[0] = 0;

  std::uint32_t next_code[16] = {};
  std::uint32_t code = 0;
  for (int bits = 1; bits <= max_len; ++bits) {
    code = (code + bl_count[bits - 1]) << 1;
    next_code[bits] = code;
  }
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const std::uint8_t l = lengths[s];
    if (l != 0) {
      cc.codes[s] = static_cast<std::uint16_t>(next_code[l]++);
      if (cc.codes[s] >= (1u << l)) {
        throw InvalidArgumentError("over-subscribed Huffman code lengths");
      }
    }
  }
  return cc;
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths, bool allow_incomplete) {
  std::size_t n_used = 0;
  for (const std::uint8_t l : lengths) {
    if (l > 15) throw FormatError("Huffman code length exceeds 15 bits");
    if (l > 0) {
      ++count_[l];
      max_len_ = std::max<int>(max_len_, l);
      ++n_used;
    }
  }
  if (n_used == 0) {
    // Degenerate empty code: decode() always fails. DEFLATE tolerates
    // this for distance codes in blocks that emit no matches.
    return;
  }

  // Kraft sum check.
  std::uint32_t kraft = 0;  // in units of 2^-15
  for (int l = 1; l <= 15; ++l) kraft += count_[l] << (15 - l);
  if (kraft > (1u << 15)) throw FormatError("over-subscribed Huffman code");
  if (kraft < (1u << 15) && !(allow_incomplete && n_used == 1)) {
    throw FormatError("incomplete Huffman code");
  }

  // Canonical first_code / first_index per length (RFC 1951 recurrence);
  // codes of length l span [first_code_[l], first_code_[l] + count_[l]).
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (int l = 1; l <= max_len_; ++l) {
    code = (code + count_[l - 1]) << 1;
    first_code_[l] = code;
    first_index_[l] = index;
    index += count_[l];
  }

  sym_by_code_.resize(n_used);
  {
    std::uint32_t next_index[16];
    std::copy(std::begin(first_index_), std::end(first_index_), std::begin(next_index));
    for (std::size_t s = 0; s < lengths.size(); ++s) {
      const std::uint8_t l = lengths[s];
      if (l > 0) sym_by_code_[next_index[l]++] = static_cast<std::uint16_t>(s);
    }
  }

  // Fast table: index = next kFastBits of the stream (LSB-first). Codes
  // are MSB-first, so a code c of length l maps to all indices whose low
  // l bits equal reverse(c, l).
  fast_.assign(std::size_t{1} << kFastBits, FastEntry{});
  for (int l = 1; l <= std::min(max_len_, kFastBits); ++l) {
    for (std::uint32_t k = 0; k < count_[l]; ++k) {
      const std::uint32_t c = first_code_[l] + k;
      const std::uint16_t sym = sym_by_code_[first_index_[l] + k];
      const std::uint32_t rev = BitWriter::reverse(c, l);
      const std::uint32_t step = 1u << l;
      for (std::uint32_t idx = rev; idx < fast_.size(); idx += step) {
        fast_[idx] = FastEntry{static_cast<std::int16_t>(sym), static_cast<std::uint8_t>(l)};
      }
    }
  }
}

int HuffmanDecoder::decode(BitReader& br) const {
  if (max_len_ == 0) throw FormatError("decode with empty Huffman code");
  const std::uint32_t window = br.peek(kFastBits);
  const FastEntry& fe = fast_[window];
  if (fe.symbol >= 0) {
    br.consume(fe.length);
    return fe.symbol;
  }
  // Slow path: canonical walk, one bit (MSB-first code bit) at a time.
  // Re-read from scratch: consume bits as we walk.
  std::uint32_t code = 0;
  for (int l = 1; l <= max_len_; ++l) {
    code = (code << 1) | br.get(1);
    if (count_[l] != 0 && code >= first_code_[l] && code < first_code_[l] + count_[l]) {
      return sym_by_code_[first_index_[l] + (code - first_code_[l])];
    }
  }
  throw FormatError("invalid Huffman code in stream");
}

}  // namespace wck
