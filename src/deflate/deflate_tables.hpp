// Static symbol tables of the DEFLATE format (RFC 1951 section 3.2.5):
// length-code and distance-code base values and extra-bit counts, the
// code-length-code permutation order, and the fixed Huffman code lengths.
#pragma once

#include <array>
#include <cstdint>

namespace wck::deflate_tables {

/// Number of literal/length symbols (0..285 used; 286/287 reserved).
inline constexpr int kNumLitLen = 288;
/// Number of distance symbols (0..29 used).
inline constexpr int kNumDist = 30;
/// Number of code-length-code symbols.
inline constexpr int kNumClc = 19;
/// End-of-block symbol.
inline constexpr int kEndOfBlock = 256;
/// Maximum Huffman code length for literal/length and distance codes.
inline constexpr int kMaxCodeLen = 15;
/// Maximum Huffman code length for the code-length code.
inline constexpr int kMaxClcLen = 7;
/// LZ77 window and match limits.
inline constexpr int kWindowSize = 32768;
inline constexpr int kMinMatch = 3;
inline constexpr int kMaxMatch = 258;

/// Length codes 257..285: base match length and number of extra bits.
struct LengthCode {
  std::uint16_t base;
  std::uint8_t extra;
};
inline constexpr std::array<LengthCode, 29> kLengthCodes = {{
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},   {9, 0},   {10, 0},
    {11, 1},  {13, 1},  {15, 1},  {17, 1},  {19, 2},  {23, 2},  {27, 2},  {31, 2},
    {35, 3},  {43, 3},  {51, 3},  {59, 3},  {67, 4},  {83, 4},  {99, 4},  {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
}};

/// Distance codes 0..29: base distance and number of extra bits.
struct DistCode {
  std::uint16_t base;
  std::uint8_t extra;
};
inline constexpr std::array<DistCode, 30> kDistCodes = {{
    {1, 0},     {2, 0},     {3, 0},      {4, 0},      {5, 1},     {7, 1},
    {9, 2},     {13, 2},    {17, 3},     {25, 3},     {33, 4},    {49, 4},
    {65, 5},    {97, 5},    {129, 6},    {193, 6},    {257, 7},   {385, 7},
    {513, 8},   {769, 8},   {1025, 9},   {1537, 9},   {2049, 10}, {3073, 10},
    {4097, 11}, {6145, 11}, {8193, 12},  {12289, 12}, {16385, 13}, {24577, 13},
}};

/// Transmission order of code-length-code lengths (RFC 1951 3.2.7).
inline constexpr std::array<std::uint8_t, kNumClc> kClcOrder = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

/// Maps a match length (3..258) to its length code index (0..28, i.e.
/// symbol 257+index).
[[nodiscard]] constexpr int length_to_code(int len) noexcept {
  // Scan is fine: called through a precomputed LUT in hot paths.
  for (int c = 28; c >= 0; --c) {
    if (len >= kLengthCodes[static_cast<std::size_t>(c)].base) {
      // Code 28 (length 258) has base 258 but code 27's range reaches 257.
      if (c == 28 && len != 258) continue;
      return c;
    }
  }
  return 0;
}

/// Maps a match distance (1..32768) to its distance code index (0..29).
[[nodiscard]] constexpr int dist_to_code(int dist) noexcept {
  for (int c = 29; c >= 0; --c) {
    if (dist >= kDistCodes[static_cast<std::size_t>(c)].base) return c;
  }
  return 0;
}

/// Fixed Huffman literal/length code lengths (RFC 1951 3.2.6).
[[nodiscard]] constexpr std::array<std::uint8_t, kNumLitLen> fixed_litlen_lengths() noexcept {
  std::array<std::uint8_t, kNumLitLen> l{};
  for (int i = 0; i <= 143; ++i) l[static_cast<std::size_t>(i)] = 8;
  for (int i = 144; i <= 255; ++i) l[static_cast<std::size_t>(i)] = 9;
  for (int i = 256; i <= 279; ++i) l[static_cast<std::size_t>(i)] = 7;
  for (int i = 280; i <= 287; ++i) l[static_cast<std::size_t>(i)] = 8;
  return l;
}

/// Fixed Huffman distance code lengths: all 5 bits (32 codes, 30 used).
[[nodiscard]] constexpr std::array<std::uint8_t, 32> fixed_dist_lengths() noexcept {
  std::array<std::uint8_t, 32> l{};
  for (auto& v : l) v = 5;
  return l;
}

}  // namespace wck::deflate_tables
