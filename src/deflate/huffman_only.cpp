#include "deflate/huffman_only.hpp"

#include <array>

#include "deflate/huffman.hpp"
#include "util/bitio.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint32_t kMagic = 0x30464857;  // "WHF0" little-endian
constexpr std::uint8_t kModeStored = 0;
constexpr std::uint8_t kModeHuffman = 1;

}  // namespace

Bytes huffman_only_compress(std::span<const std::byte> input) {
  std::array<std::uint64_t, 256> freq{};
  for (const std::byte b : input) ++freq[static_cast<std::uint8_t>(b)];

  const auto lengths = build_code_lengths(freq, 15);
  std::uint64_t coded_bits = 0;
  for (int v = 0; v < 256; ++v) {
    coded_bits += freq[static_cast<std::size_t>(v)] * lengths[static_cast<std::size_t>(v)];
  }
  const std::uint64_t coded_bytes = (coded_bits + 7) / 8 + 128;  // + code table

  ByteWriter w;
  w.u32(kMagic);
  w.varint(input.size());
  if (input.empty() || coded_bytes >= input.size()) {
    w.u8(kModeStored);
    w.raw(input.data(), input.size());
    return w.take();
  }

  w.u8(kModeHuffman);
  // Code lengths packed two per byte (each fits 4 bits? no — up to 15,
  // exactly 4 bits).
  for (int v = 0; v < 256; v += 2) {
    const auto lo = lengths[static_cast<std::size_t>(v)];
    const auto hi = lengths[static_cast<std::size_t>(v + 1)];
    w.u8(static_cast<std::uint8_t>(lo | (hi << 4)));
  }
  const auto code = CanonicalCode::from_lengths(lengths);
  BitWriter bw(w.buffer());
  for (const std::byte b : input) {
    code.emit(bw, static_cast<std::uint8_t>(b));
  }
  bw.align_to_byte();
  return w.take();
}

Bytes huffman_only_decompress(std::span<const std::byte> input) {
  ByteReader r(input);
  if (r.u32() != kMagic) throw FormatError("huffman-only: bad magic");
  const std::uint64_t size = r.varint();
  const std::uint8_t mode = r.u8();

  if (mode == kModeStored) {
    const auto body = r.raw(size);
    if (!r.exhausted()) throw FormatError("huffman-only: trailing bytes");
    return Bytes(body.begin(), body.end());
  }
  if (mode != kModeHuffman) throw FormatError("huffman-only: unknown mode");

  std::array<std::uint8_t, 256> lengths{};
  const auto table = r.raw(128);
  for (int v = 0; v < 256; v += 2) {
    const auto packed = static_cast<std::uint8_t>(table[static_cast<std::size_t>(v / 2)]);
    lengths[static_cast<std::size_t>(v)] = packed & 0x0F;
    lengths[static_cast<std::size_t>(v + 1)] = packed >> 4;
  }
  // allow_incomplete: a single-symbol input yields a one-code tree.
  const HuffmanDecoder decoder{std::span<const std::uint8_t>(lengths), /*allow_incomplete=*/true};

  Bytes out;
  out.reserve(size);
  BitReader br(input.subspan(r.position()));
  for (std::uint64_t i = 0; i < size; ++i) {
    out.push_back(static_cast<std::byte>(decoder.decode(br)));
  }
  return out;
}

}  // namespace wck
