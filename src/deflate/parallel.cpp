#include "deflate/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "deflate/deflate.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/checksum.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint32_t kShardedMagic = 0x504B4357;  // "WCKP" little-endian
constexpr std::uint8_t kShardedVersion = 1;

/// DEFLATE cannot expand beyond ~1032:1 (stored-block overhead bounds the
/// other direction; 1032:1 is the canonical zlib maximum-compression
/// figure). A frame claiming more is malformed, and rejecting it before
/// allocation keeps fuzzed inputs from turning into allocation bombs.
constexpr std::uint64_t kMaxExpansionRatio = 1032;

/// Smallest possible per-block table entry: 1-byte comp varint, 1-byte
/// uncomp varint, 4-byte CRC. Bounds block_count before the table vector
/// is reserved.
constexpr std::uint64_t kMinTableEntryBytes = 6;

struct BlockEntry {
  std::size_t compressed_size = 0;
  std::size_t uncompressed_size = 0;
  std::uint32_t crc = 0;
};

/// The compression fan-out runs on a process-shared pool sized to the
/// machine, not a pool-per-call: checkpoint codecs may compress from
/// several threads at once (chunked compression, async writers) and the
/// shards of all of them should multiplex over one set of workers.
/// Deliberately leaked — workers may touch telemetry singletons, so the
/// pool must never be destroyed during static teardown. Still reachable
/// through the static pointer, so LeakSanitizer stays quiet.
ThreadPool& shared_pool() {
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

/// Runs fn(i) for i in [0, n) using at most `threads` concurrent strips
/// (strip w owns every i with i % strips == w). Unlike
/// ThreadPool::parallel_for this honors a caller-requested width below
/// the pool size, which is what makes WCK_THREADS=1 vs =8 a pure
/// wall-clock knob. Strip tasks never submit further pool work, so a
/// caller already running on some *other* pool cannot deadlock here.
template <typename Fn>
void for_each_block(std::size_t n, std::size_t threads, const Fn& fn) {
  const std::size_t strips = std::min({threads, n, shared_pool().thread_count()});
  if (strips <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(strips);
  try {
    for (std::size_t w = 0; w < strips; ++w) {
      futs.push_back(shared_pool().submit([w, strips, n, &fn] {
        for (std::size_t i = w; i < n; i += strips) fn(i);
      }));
    }
  } catch (...) {
    for (auto& f : futs) {
      try {
        f.get();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
    }
    throw;
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

Bytes sharded_deflate_compress(std::span<const std::byte> input,
                               const ShardedDeflateOptions& options) {
  if (options.block_size == 0) {
    throw InvalidArgumentError("sharded deflate: block_size must be >= 1");
  }
  WCK_TRACE_SPAN("deflate.sharded.compress");
  const std::size_t block_size = options.block_size;
  const std::size_t blocks = (input.size() + block_size - 1) / block_size;
  const std::size_t threads = std::max<std::size_t>(options.threads, 1);

  WCK_COUNTER_ADD("deflate.blocks", blocks);
  WCK_GAUGE_SET("deflate.threads", static_cast<double>(threads));

  // Each block compresses independently into its own slot; assembly below
  // concatenates in block order, so the output bytes depend only on
  // (input, block_size) — never on how blocks were scheduled.
  std::vector<Bytes> bodies(blocks);
  std::vector<std::uint32_t> crcs(blocks);
  const DeflateOptions block_options{options.level};
  for_each_block(blocks, threads, [&](std::size_t i) {
    const std::size_t offset = i * block_size;
    const auto chunk = input.subspan(offset, std::min(block_size, input.size() - offset));
    const bool timed = telemetry::enabled();
    const auto start =
        timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
    crcs[i] = crc32(chunk);
    bodies[i] = deflate_compress(chunk, block_options);
    if (timed) WCK_HISTOGRAM_RECORD("stage.deflate.block.seconds", seconds_since(start));
  });

  ByteWriter writer;
  writer.u32(kShardedMagic);
  writer.u8(kShardedVersion);
  writer.u8(0);  // flags
  writer.varint(block_size);
  writer.varint(input.size());
  writer.varint(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    const std::size_t offset = i * block_size;
    writer.varint(bodies[i].size());
    writer.varint(std::min(block_size, input.size() - offset));
    writer.u32(crcs[i]);
  }
  for (const Bytes& body : bodies) writer.raw(body);
  return writer.take();
}

Bytes sharded_deflate_decompress(std::span<const std::byte> input, std::size_t threads) {
  WCK_TRACE_SPAN("deflate.sharded.decompress");
  ByteReader reader(input);
  if (reader.u32() != kShardedMagic) {
    throw FormatError("sharded deflate: bad magic");
  }
  const std::uint8_t version = reader.u8();
  if (version != kShardedVersion) {
    throw FormatError("sharded deflate: unsupported version " + std::to_string(version));
  }
  (void)reader.u8();  // flags, reserved
  const std::uint64_t block_size = reader.varint();
  const std::uint64_t total = reader.varint();
  const std::uint64_t count = reader.varint();
  if (block_size == 0) {
    throw FormatError("sharded deflate: zero block size");
  }
  const std::uint64_t derived = (total + block_size - 1) / block_size;
  if (count != derived) {
    throw FormatError("sharded deflate: block count " + std::to_string(count) +
                      " does not match payload (" + std::to_string(derived) + " expected)");
  }
  // A frame cannot legitimately claim more output than the whole input
  // could expand to, and its table cannot be larger than what remains.
  if (total > input.size() * kMaxExpansionRatio + 1024) {
    throw FormatError("sharded deflate: implausible total size " + std::to_string(total));
  }
  if (count > reader.remaining() / kMinTableEntryBytes) {
    throw FormatError("sharded deflate: block count " + std::to_string(count) +
                      " exceeds container capacity");
  }

  std::vector<BlockEntry> table(static_cast<std::size_t>(count));
  std::uint64_t compressed_total = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    BlockEntry& e = table[static_cast<std::size_t>(i)];
    const std::uint64_t comp = reader.varint();
    const std::uint64_t uncomp = reader.varint();
    e.crc = reader.u32();
    if (comp > input.size()) {  // also keeps comp * kMaxExpansionRatio from overflowing
      throw FormatError("sharded deflate: block " + std::to_string(i) +
                        " compressed size exceeds container");
    }
    const std::uint64_t offset = i * block_size;
    const std::uint64_t expected = std::min<std::uint64_t>(block_size, total - offset);
    if (uncomp != expected) {
      throw FormatError("sharded deflate: block " + std::to_string(i) + " claims " +
                        std::to_string(uncomp) + " uncompressed bytes, expected " +
                        std::to_string(expected));
    }
    if (uncomp > comp * kMaxExpansionRatio + 1024) {
      throw FormatError("sharded deflate: block " + std::to_string(i) +
                        " claims implausible expansion");
    }
    e.compressed_size = static_cast<std::size_t>(comp);
    e.uncompressed_size = static_cast<std::size_t>(uncomp);
    compressed_total += comp;
  }
  if (compressed_total != reader.remaining()) {
    throw FormatError("sharded deflate: body size " + std::to_string(reader.remaining()) +
                      " does not match table total " + std::to_string(compressed_total));
  }

  // Body offsets are prefix sums of the table; every block's source span
  // and destination region are known up front, so blocks decode fully
  // independently into disjoint slices of the preallocated output.
  std::vector<std::size_t> body_offsets(table.size());
  std::size_t running = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    body_offsets[i] = running;
    running += table[i].compressed_size;
  }
  const auto bodies = reader.raw(static_cast<std::size_t>(compressed_total));

  if (threads == 0) {
    threads = resolve_deflate_sharding(0).value_or(1);
  }
  WCK_COUNTER_ADD("deflate.blocks", table.size());
  WCK_GAUGE_SET("deflate.threads", static_cast<double>(std::max<std::size_t>(threads, 1)));

  Bytes out(static_cast<std::size_t>(total));
  for_each_block(table.size(), threads, [&](std::size_t i) {
    const BlockEntry& e = table[i];
    const auto body = bodies.subspan(body_offsets[i], e.compressed_size);
    const bool timed = telemetry::enabled();
    const auto start =
        timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
    const Bytes block = deflate_decompress(body, e.uncompressed_size);
    if (block.size() != e.uncompressed_size) {
      throw CorruptDataError("sharded deflate: block " + std::to_string(i) + " decoded to " +
                             std::to_string(block.size()) + " bytes, expected " +
                             std::to_string(e.uncompressed_size));
    }
    if (crc32(block) != e.crc) {
      throw CorruptDataError("sharded deflate: CRC-32 mismatch in block " + std::to_string(i));
    }
    if (!block.empty()) {
      std::memcpy(out.data() + i * static_cast<std::size_t>(block_size), block.data(),
                  block.size());
    }
    if (timed) WCK_HISTOGRAM_RECORD("stage.deflate.block.seconds", seconds_since(start));
  });
  return out;
}

bool is_sharded_deflate(std::span<const std::byte> data) noexcept {
  if (data.size() < 4) return false;
  std::uint32_t magic = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[i])) << (8 * i);
  }
  return magic == kShardedMagic;
}

std::optional<std::size_t> resolve_deflate_sharding(int requested) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  if (requested < 0) return std::nullopt;
  const std::optional<std::string> env = env::get("WCK_THREADS");
  if (!env.has_value() || env->empty()) return std::nullopt;
  const std::string& value = *env;
  auto hardware = [] {
    const unsigned n = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(n == 0 ? 1 : n);
  };
  if (value == "max") return hardware();
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || parsed < 0) {
    return std::nullopt;  // unparsable -> behave as unset (legacy serial)
  }
  if (parsed == 0) return hardware();
  return static_cast<std::size_t>(parsed);
}

}  // namespace wck
