#include "deflate/lz77.hpp"

#include <algorithm>

#include "deflate/deflate_tables.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

constexpr int kHashBits = 15;
constexpr std::uint32_t kHashSize = 1u << kHashBits;

/// Hashes the 3 bytes starting at p.
inline std::uint32_t hash3(const std::uint8_t* p) noexcept {
  // Multiplicative hash of the 3-byte group.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Length of the common prefix of a and b, up to `limit`.
inline int match_length(const std::uint8_t* a, const std::uint8_t* b, int limit) noexcept {
  int n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

class Matcher {
 public:
  Matcher(const std::uint8_t* data, std::size_t size, const Lz77Params& params)
      : data_(data),
        size_(size),
        params_(params),
        head_(kHashSize, -1),
        prev_(size, -1) {}

  /// Inserts position `pos` into the hash chains.
  void insert(std::size_t pos) noexcept {
    if (pos + 3 > size_) return;
    const std::uint32_t h = hash3(data_ + pos);
    prev_[pos] = head_[h];
    head_[h] = static_cast<std::int64_t>(pos);
  }

  /// Finds the longest match at `pos`, at least kMinMatch long; returns
  /// length 0 if none. `best_dist` receives the distance.
  int find(std::size_t pos, int* best_dist) const noexcept {
    *best_dist = 0;
    if (pos + deflate_tables::kMinMatch > size_) return 0;
    const int limit =
        static_cast<int>(std::min<std::size_t>(deflate_tables::kMaxMatch, size_ - pos));
    const std::size_t window_start =
        pos > deflate_tables::kWindowSize ? pos - deflate_tables::kWindowSize : 0;

    int best_len = 0;
    std::int64_t cand = head_[hash3(data_ + pos)];
    int chain = params_.max_chain;
    while (cand >= 0 && static_cast<std::size_t>(cand) >= window_start && chain-- > 0) {
      const auto c = static_cast<std::size_t>(cand);
      if (c < pos) {
        // Quick reject: check the byte that would extend the best match.
        if (best_len == 0 || data_[c + best_len] == data_[pos + best_len]) {
          const int len = match_length(data_ + c, data_ + pos, limit);
          if (len > best_len && len >= deflate_tables::kMinMatch) {
            best_len = len;
            *best_dist = static_cast<int>(pos - c);
            if (best_len >= params_.nice_length || best_len == limit) break;
          }
        }
      }
      cand = prev_[c];
    }
    return best_len;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  Lz77Params params_;
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> prev_;
};

}  // namespace

Lz77Params lz77_params_for_level(int level) {
  if (level < 1 || level > 9) {
    throw InvalidArgumentError("compression level must be 1..9");
  }
  // Roughly zlib's configuration_table.
  static constexpr Lz77Params kTable[9] = {
      {4, 8, 0},       // 1
      {8, 16, 4},      // 2
      {32, 32, 6},     // 3
      {16, 16, 8},     // 4
      {32, 32, 16},    // 5
      {128, 128, 16},  // 6
      {256, 128, 32},  // 7
      {1024, 258, 128},  // 8
      {4096, 258, 258},  // 9
  };
  return kTable[level - 1];
}

std::vector<Lz77Token> lz77_parse(std::span<const std::byte> input, const Lz77Params& params) {
  std::vector<Lz77Token> tokens;
  if (input.empty()) return tokens;
  tokens.reserve(input.size() / 3 + 16);

  const auto* data = reinterpret_cast<const std::uint8_t*>(input.data());
  const std::size_t size = input.size();
  Matcher matcher(data, size, params);

  std::size_t pos = 0;
  // State for one-step lazy matching: a pending match found at pos-1.
  while (pos < size) {
    int dist = 0;
    int len = matcher.find(pos, &dist);
    if (len >= deflate_tables::kMinMatch) {
      // Lazy evaluation: peek at pos+1; if it yields a strictly longer
      // match, emit a literal instead and defer.
      if (len < params.lazy_threshold && pos + 1 < size) {
        matcher.insert(pos);
        int next_dist = 0;
        const int next_len = matcher.find(pos + 1, &next_dist);
        if (next_len > len) {
          tokens.push_back(Lz77Token::literal(data[pos]));
          ++pos;
          continue;
        }
        // Keep the current match; pos itself is already inserted.
        tokens.push_back(Lz77Token::match(len, dist));
        for (std::size_t i = pos + 1; i < pos + static_cast<std::size_t>(len); ++i) {
          matcher.insert(i);
        }
        pos += static_cast<std::size_t>(len);
        continue;
      }
      tokens.push_back(Lz77Token::match(len, dist));
      for (std::size_t i = pos; i < pos + static_cast<std::size_t>(len); ++i) {
        matcher.insert(i);
      }
      pos += static_cast<std::size_t>(len);
    } else {
      tokens.push_back(Lz77Token::literal(data[pos]));
      matcher.insert(pos);
      ++pos;
    }
  }
  return tokens;
}

}  // namespace wck
