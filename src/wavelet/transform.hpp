// Selectable wavelet transforms for the compression pipeline.
//
// The paper uses the Haar transform (Sec. III-A) and motivates wavelets
// via JPEG 2000 (Sec. II-C), whose standard transforms are the CDF 5/3
// (LeGall) and CDF 9/7 biorthogonal wavelets. Its future work names
// "improvement of the compression algorithm"; these longer filters
// decorrelate smooth data better than Haar, concentrating more energy
// in the low band at the cost of more arithmetic.
//
// All transforms share the Haar module's band layout: each level splits
// every axis into [L | H] halves in place, recursing into the low
// corner, so WaveletPlan / for_each_high_band apply unchanged.
// Implemented with lifting steps and symmetric boundary extension;
// inverses undo the lifting exactly (up to FP rounding).
#pragma once

#include <cstdint>

#include "ndarray/ndarray.hpp"
#include "wavelet/haar.hpp"

namespace wck {

enum class WaveletKind : std::uint8_t {
  kHaar = 0,   ///< the paper's transform (Eq. 2-3)
  kCdf53 = 1,  ///< LeGall 5/3 (JPEG 2000 lossless path)
  kCdf97 = 2,  ///< CDF 9/7 (JPEG 2000 lossy path)
};

/// Human-readable name ("haar", "cdf53", "cdf97").
[[nodiscard]] const char* wavelet_kind_name(WaveletKind kind);

/// In-place forward transform of `a`, `levels` deep, using `kind`.
void wavelet_forward(NdSpan<double> a, WaveletKind kind, int levels = 1);

/// In-place inverse transform.
void wavelet_inverse(NdSpan<double> a, WaveletKind kind, int levels = 1);

}  // namespace wck
