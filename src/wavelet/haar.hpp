// Haar wavelet transformation (paper Sec. III-A).
//
// The 1D transform splits an array A into a low-frequency band
// L[i] = (A[2i] + A[2i+1]) / 2 and a high-frequency band
// H[i] = (A[2i] - A[2i+1]) / 2 (paper Eq. 2, 3), stored [L | H]. Odd-
// length lines keep their unpaired last element in L. Multi-dimensional
// arrays are transformed separably along every axis (Fig. 3), producing
// one low corner block (LL.., the averages) and 2^rank - 1 high bands.
// Multi-level transforms recurse into the low corner block.
//
// The transform is the identity's inverse up to floating-point rounding:
// A[2i] = L[i] + H[i], A[2i+1] = L[i] - H[i]. Exactly invertible when
// (A[2i] + A[2i+1]) / 2 is representable (e.g. both values share an
// exponent neighbourhood), which tests exploit with dyadic data.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "ndarray/shape.hpp"

namespace wck {

/// Band geometry of a `levels`-deep Haar transform of `shape`.
class WaveletPlan {
 public:
  /// Throws InvalidArgumentError unless levels >= 1.
  static WaveletPlan create(const Shape& shape, int levels);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] int levels() const noexcept { return levels_; }

  /// Extents of the low corner block after `level + 1` transform levels
  /// (level in [0, levels)).
  [[nodiscard]] const Shape& low_extents(int level) const { return lows_.at(level); }

  /// Extents of the final low corner block.
  [[nodiscard]] const Shape& final_low_extents() const { return lows_.back(); }

  /// Number of elements in the final low corner (kept as raw doubles).
  [[nodiscard]] std::size_t low_count() const noexcept { return lows_.back().size(); }

  /// Number of high-frequency-band elements (quantization candidates).
  [[nodiscard]] std::size_t high_count() const noexcept {
    return shape_.size() - low_count();
  }

 private:
  Shape shape_;
  int levels_ = 0;
  std::vector<Shape> lows_;
};

/// In-place forward Haar transform of `a`, `levels` deep.
void haar_forward(NdSpan<double> a, int levels = 1);

/// In-place inverse Haar transform (exactly undoes haar_forward's band
/// layout; values recover up to FP rounding).
void haar_inverse(NdSpan<double> a, int levels = 1);

/// Visits every element of the high-frequency bands (all positions
/// outside the final low corner) in row-major order of the full array.
/// The same order is used by compression and decompression, so it is
/// part of the serialization contract.
template <typename T, typename Fn>
void for_each_high_band(NdSpan<T> a, const Shape& low_corner, Fn&& fn) {
  const std::size_t r = a.rank();
  std::array<std::size_t, kMaxRank> idx{};
  if (a.size() == 0) return;
  for (;;) {
    bool in_low = true;
    for (std::size_t ax = 0; ax < r; ++ax) {
      if (idx[ax] >= low_corner[ax]) {
        in_low = false;
        break;
      }
    }
    if (!in_low) {
      std::size_t off = 0;
      for (std::size_t ax = 0; ax < r; ++ax) off += idx[ax] * a.stride(ax);
      fn(a.data()[off]);
    }
    bool done = true;
    for (std::size_t ax = r; ax-- > 0;) {
      if (++idx[ax] < a.extent(ax)) {
        done = false;
        break;
      }
      idx[ax] = 0;
    }
    if (done) return;
  }
}

/// Canonical display name of a high band: "l<level>.<axis letters>",
/// e.g. "l1.HL" (level 1, high along axis 0, low along axis 1). Bit ax
/// of `axis_mask` set means the element lies in the high half of axis
/// ax at that level.
[[nodiscard]] std::string band_name(int level, unsigned axis_mask, std::size_t rank);

/// Enumerates the band identity of every high-band element in the SAME
/// row-major order as for_each_high_band, so the two walks can be
/// zipped: fn(ordinal, level, axis_mask) with ordinal counting high
/// elements from 0, level 1-based (level 1 = first transform), and
/// axis_mask as in band_name(). Pure geometry — no array needed, only
/// the plan. A rank-r transform has up to 2^r - 1 high bands per level
/// (bands vanish on axes already reduced to extent 1).
template <typename Fn>
void for_each_high_band_id(const WaveletPlan& plan, Fn&& fn) {
  const Shape& shape = plan.shape();
  const std::size_t r = shape.rank();
  if (shape.size() == 0) return;
  std::array<std::size_t, kMaxRank> idx{};
  std::size_t ordinal = 0;
  for (;;) {
    // Count how many nested low corners contain idx; the first one that
    // does not determines the element's level and its axis mask.
    int inside = 0;
    while (inside < plan.levels()) {
      const Shape& low = plan.low_extents(inside);
      bool in = true;
      for (std::size_t ax = 0; ax < r; ++ax) {
        if (idx[ax] >= low[ax]) {
          in = false;
          break;
        }
      }
      if (!in) break;
      ++inside;
    }
    if (inside < plan.levels()) {
      const Shape& low = plan.low_extents(inside);
      unsigned mask = 0;
      for (std::size_t ax = 0; ax < r; ++ax) {
        if (idx[ax] >= low[ax]) mask |= 1u << ax;
      }
      fn(ordinal++, inside + 1, mask);
    }
    bool done = true;
    for (std::size_t ax = r; ax-- > 0;) {
      if (++idx[ax] < shape[ax]) {
        done = false;
        break;
      }
      idx[ax] = 0;
    }
    if (done) return;
  }
}

/// Visits every element of the final low corner in row-major order.
template <typename T, typename Fn>
void for_each_low_band(NdSpan<T> a, const Shape& low_corner, Fn&& fn) {
  std::array<std::size_t, kMaxRank> offs{};
  std::array<std::size_t, kMaxRank> exts{};
  for (std::size_t ax = 0; ax < a.rank(); ++ax) exts[ax] = low_corner[ax];
  auto low = a.subblock(std::span(offs.data(), a.rank()), std::span(exts.data(), a.rank()));
  low.visit_row_major(fn);
}

}  // namespace wck
