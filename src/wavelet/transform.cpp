#include "wavelet/transform.hpp"

#include <array>
#include <vector>

#include "util/error.hpp"

namespace wck {
namespace {

// CDF 9/7 lifting coefficients (JPEG 2000 irreversible transform).
constexpr double kAlpha = -1.586134342059924;
constexpr double kBeta = -0.052980118572961;
constexpr double kGamma = 0.882911075530934;
constexpr double kDelta = 0.443506852043971;
constexpr double kScale = 1.230174104914001;

/// Lifting workspace for one line: even (s) and odd (d) subsequences
/// with symmetric boundary extension.
struct Lifting {
  std::vector<double> s;
  std::vector<double> d;

  void load(const Line<double>& ln) {
    const std::size_t n = ln.count;
    const std::size_t nd = n / 2;
    const std::size_t ns = n - nd;
    s.resize(ns);
    d.resize(nd);
    for (std::size_t i = 0; i < ns; ++i) s[i] = ln[2 * i];
    for (std::size_t i = 0; i < nd; ++i) d[i] = ln[2 * i + 1];
  }

  /// Loads from the [L | H] band layout instead of interleaved samples.
  void load_bands(const Line<double>& ln) {
    const std::size_t n = ln.count;
    const std::size_t nd = n / 2;
    const std::size_t ns = n - nd;
    s.resize(ns);
    d.resize(nd);
    for (std::size_t i = 0; i < ns; ++i) s[i] = ln[i];
    for (std::size_t i = 0; i < nd; ++i) d[i] = ln[ns + i];
  }

  void store_bands(const Line<double>& ln) const {
    for (std::size_t i = 0; i < s.size(); ++i) ln[i] = s[i];
    for (std::size_t i = 0; i < d.size(); ++i) ln[s.size() + i] = d[i];
  }

  void store(const Line<double>& ln) const {
    for (std::size_t i = 0; i < s.size(); ++i) ln[2 * i] = s[i];
    for (std::size_t i = 0; i < d.size(); ++i) ln[2 * i + 1] = d[i];
  }

  // Symmetric extension accessors.
  [[nodiscard]] double s_at(std::ptrdiff_t i) const noexcept {
    if (i < 0) i = -i;
    const auto n = static_cast<std::ptrdiff_t>(s.size());
    if (i >= n) i = 2 * n - 2 - i;
    return s[static_cast<std::size_t>(i < 0 ? 0 : i)];
  }
  [[nodiscard]] double d_at(std::ptrdiff_t i) const noexcept {
    if (d.empty()) return 0.0;
    if (i < 0) i = -i - 1;
    const auto n = static_cast<std::ptrdiff_t>(d.size());
    if (i >= n) i = 2 * n - 1 - i;
    if (i < 0) i = 0;
    return d[static_cast<std::size_t>(i)];
  }

  // One predict step: d[i] += c * (s[i] + s[i+1]).
  void predict(double c) noexcept {
    for (std::size_t i = 0; i < d.size(); ++i) {
      d[i] += c * (s_at(static_cast<std::ptrdiff_t>(i)) +
                   s_at(static_cast<std::ptrdiff_t>(i) + 1));
    }
  }
  // One update step: s[i] += c * (d[i-1] + d[i]).
  void update(double c) noexcept {
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] += c * (d_at(static_cast<std::ptrdiff_t>(i) - 1) +
                   d_at(static_cast<std::ptrdiff_t>(i)));
    }
  }
  void scale(double cs, double cd) noexcept {
    for (double& v : s) v *= cs;
    for (double& v : d) v *= cd;
  }
};

void cdf53_forward_line(const Line<double>& ln, Lifting& w) {
  if (ln.count < 2) return;
  w.load(ln);
  w.predict(-0.5);
  w.update(0.25);
  w.store_bands(ln);
}

void cdf53_inverse_line(const Line<double>& ln, Lifting& w) {
  if (ln.count < 2) return;
  w.load_bands(ln);
  w.update(-0.25);
  w.predict(0.5);
  w.store(ln);
}

void cdf97_forward_line(const Line<double>& ln, Lifting& w) {
  if (ln.count < 2) return;
  w.load(ln);
  w.predict(kAlpha);
  w.update(kBeta);
  w.predict(kGamma);
  w.update(kDelta);
  w.scale(kScale, 1.0 / kScale);
  w.store_bands(ln);
}

void cdf97_inverse_line(const Line<double>& ln, Lifting& w) {
  if (ln.count < 2) return;
  w.load_bands(ln);
  w.scale(1.0 / kScale, kScale);
  w.update(-kDelta);
  w.predict(-kGamma);
  w.update(-kBeta);
  w.predict(-kAlpha);
  w.store(ln);
}

[[nodiscard]] Shape halved(const Shape& s) {
  Shape h = s;
  for (std::size_t ax = 0; ax < s.rank(); ++ax) h[ax] = (s[ax] + 1) / 2;
  return h;
}

[[nodiscard]] NdSpan<double> low_block(NdSpan<double> a, const Shape& low) {
  std::array<std::size_t, kMaxRank> offs{};
  std::array<std::size_t, kMaxRank> exts{};
  for (std::size_t ax = 0; ax < a.rank(); ++ax) exts[ax] = low[ax];
  return a.subblock(std::span(offs.data(), a.rank()), std::span(exts.data(), a.rank()));
}

using LineFn = void (*)(const Line<double>&, Lifting&);

void lifting_forward(NdSpan<double> a, int levels, LineFn line_fn) {
  Lifting w;
  NdSpan<double> block = a;
  for (int l = 0; l < levels; ++l) {
    for (std::size_t ax = 0; ax < block.rank(); ++ax) {
      block.for_each_line(ax, [&](const Line<double>& ln) { line_fn(ln, w); });
    }
    block = low_block(block, halved(block.shape()));
  }
}

void lifting_inverse(NdSpan<double> a, int levels, LineFn line_fn) {
  std::vector<NdSpan<double>> blocks;
  blocks.reserve(static_cast<std::size_t>(levels));
  NdSpan<double> block = a;
  for (int l = 0; l < levels; ++l) {
    blocks.push_back(block);
    block = low_block(block, halved(block.shape()));
  }
  Lifting w;
  for (int l = levels; l-- > 0;) {
    NdSpan<double> b = blocks[static_cast<std::size_t>(l)];
    for (std::size_t ax = b.rank(); ax-- > 0;) {
      b.for_each_line(ax, [&](const Line<double>& ln) { line_fn(ln, w); });
    }
  }
}

}  // namespace

const char* wavelet_kind_name(WaveletKind kind) {
  switch (kind) {
    case WaveletKind::kHaar:
      return "haar";
    case WaveletKind::kCdf53:
      return "cdf53";
    case WaveletKind::kCdf97:
      return "cdf97";
  }
  throw InvalidArgumentError("unknown wavelet kind");
}

void wavelet_forward(NdSpan<double> a, WaveletKind kind, int levels) {
  if (levels < 1) throw InvalidArgumentError("wavelet levels must be >= 1");
  switch (kind) {
    case WaveletKind::kHaar:
      haar_forward(a, levels);
      return;
    case WaveletKind::kCdf53:
      lifting_forward(a, levels, cdf53_forward_line);
      return;
    case WaveletKind::kCdf97:
      lifting_forward(a, levels, cdf97_forward_line);
      return;
  }
  throw InvalidArgumentError("unknown wavelet kind");
}

void wavelet_inverse(NdSpan<double> a, WaveletKind kind, int levels) {
  if (levels < 1) throw InvalidArgumentError("wavelet levels must be >= 1");
  switch (kind) {
    case WaveletKind::kHaar:
      haar_inverse(a, levels);
      return;
    case WaveletKind::kCdf53:
      lifting_inverse(a, levels, cdf53_inverse_line);
      return;
    case WaveletKind::kCdf97:
      lifting_inverse(a, levels, cdf97_inverse_line);
      return;
  }
  throw InvalidArgumentError("unknown wavelet kind");
}

}  // namespace wck
