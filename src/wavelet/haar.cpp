#include "wavelet/haar.hpp"

#include <array>
#include <cstring>
#include <string>

#include "simd/dispatch.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

/// Forward transform of one line into [L | H] layout. Stride-1 lines
/// (the innermost axis, the bulk of the work) go through the dispatched
/// pairwise kernel; strided lines keep the scalar loop, which the
/// kernel is bit-identical to.
void line_forward(const Line<double>& ln, std::vector<double>& scratch,
                  const simd::KernelTable& k) {
  const std::size_t n = ln.count;
  if (n < 2) return;
  const std::size_t pairs = n / 2;
  const std::size_t nl = n - pairs;  // ceil(n/2): averages + odd leftover
  scratch.resize(n);
  if (ln.stride == 1) {
    k.haar_forward_pairs(ln.base, scratch.data(), scratch.data() + nl, pairs);
    if (n % 2 != 0) scratch[pairs] = ln.base[n - 1];  // unpaired element joins L
    std::memcpy(ln.base, scratch.data(), n * sizeof(double));
    return;
  }
  for (std::size_t i = 0; i < pairs; ++i) {
    const double a = ln[2 * i];
    const double b = ln[2 * i + 1];
    scratch[i] = (a + b) / 2.0;       // L (Eq. 2)
    scratch[nl + i] = (a - b) / 2.0;  // H (Eq. 3)
  }
  if (n % 2 != 0) scratch[pairs] = ln[n - 1];
  for (std::size_t i = 0; i < n; ++i) ln[i] = scratch[i];
}

/// Inverse of line_forward.
void line_inverse(const Line<double>& ln, std::vector<double>& scratch,
                  const simd::KernelTable& k) {
  const std::size_t n = ln.count;
  if (n < 2) return;
  const std::size_t pairs = n / 2;
  const std::size_t nl = n - pairs;
  scratch.resize(n);
  if (ln.stride == 1) {
    k.haar_inverse_pairs(ln.base, ln.base + nl, scratch.data(), pairs);
    if (n % 2 != 0) scratch[n - 1] = ln.base[pairs];
    std::memcpy(ln.base, scratch.data(), n * sizeof(double));
    return;
  }
  for (std::size_t i = 0; i < pairs; ++i) {
    const double lo = ln[i];
    const double hi = ln[nl + i];
    scratch[2 * i] = lo + hi;
    scratch[2 * i + 1] = lo - hi;
  }
  if (n % 2 != 0) scratch[n - 1] = ln[pairs];
  for (std::size_t i = 0; i < n; ++i) ln[i] = scratch[i];
}

[[nodiscard]] Shape halved(const Shape& s) {
  Shape h = s;
  for (std::size_t ax = 0; ax < s.rank(); ++ax) h[ax] = (s[ax] + 1) / 2;
  return h;
}

[[nodiscard]] NdSpan<double> low_block(NdSpan<double> a, const Shape& low) {
  std::array<std::size_t, kMaxRank> offs{};
  std::array<std::size_t, kMaxRank> exts{};
  for (std::size_t ax = 0; ax < a.rank(); ++ax) exts[ax] = low[ax];
  return a.subblock(std::span(offs.data(), a.rank()), std::span(exts.data(), a.rank()));
}

}  // namespace

WaveletPlan WaveletPlan::create(const Shape& shape, int levels) {
  if (levels < 1) throw InvalidArgumentError("wavelet levels must be >= 1");
  WaveletPlan p;
  p.shape_ = shape;
  p.levels_ = levels;
  Shape cur = shape;
  for (int l = 0; l < levels; ++l) {
    cur = halved(cur);
    p.lows_.push_back(cur);
  }
  return p;
}

void haar_forward(NdSpan<double> a, int levels) {
  if (levels < 1) throw InvalidArgumentError("wavelet levels must be >= 1");
  std::vector<double> scratch;
  const simd::KernelTable& k = simd::kernels();
  NdSpan<double> block = a;
  for (int l = 0; l < levels; ++l) {
    for (std::size_t ax = 0; ax < block.rank(); ++ax) {
      block.for_each_line(ax,
                          [&scratch, &k](const Line<double>& ln) { line_forward(ln, scratch, k); });
    }
    block = low_block(block, halved(block.shape()));
  }
}

std::string band_name(int level, unsigned axis_mask, std::size_t rank) {
  std::string name = "l" + std::to_string(level) + ".";
  for (std::size_t ax = 0; ax < rank; ++ax) {
    name.push_back((axis_mask & (1u << ax)) != 0 ? 'H' : 'L');
  }
  return name;
}

void haar_inverse(NdSpan<double> a, int levels) {
  if (levels < 1) throw InvalidArgumentError("wavelet levels must be >= 1");
  // Reconstruct the chain of low blocks, then unwind from the deepest.
  std::vector<NdSpan<double>> blocks;
  blocks.reserve(static_cast<std::size_t>(levels));
  NdSpan<double> block = a;
  for (int l = 0; l < levels; ++l) {
    blocks.push_back(block);
    block = low_block(block, halved(block.shape()));
  }
  std::vector<double> scratch;
  const simd::KernelTable& k = simd::kernels();
  for (int l = levels; l-- > 0;) {
    NdSpan<double> b = blocks[static_cast<std::size_t>(l)];
    for (std::size_t ax = b.rank(); ax-- > 0;) {
      b.for_each_line(ax,
                      [&scratch, &k](const Line<double>& ln) { line_inverse(ln, scratch, k); });
    }
  }
}

}  // namespace wck
