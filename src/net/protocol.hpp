// Request/response messages of the checkpoint store wire protocol.
//
// One message per frame (src/net/frame.hpp); the frame's type byte is
// the MessageType. Payloads use the ByteWriter/ByteReader little-endian
// conventions shared with the checkpoint containers, so every malformed
// body surfaces as a typed FormatError — never a misparse.
//
// The protocol is deliberately small: a tenant namespace stores one
// logical state field per step ("state" in the server's
// CheckpointRegistry); Put ships the field's shape plus raw
// little-endian doubles, Get returns the newest restorable generation
// (the server's whole restore chain — older generations, XOR parity —
// stands behind it), Stat reports per-tenant quota/generation
// accounting. Errors travel as an ErrorResponse carrying a typed code
// that clients map back onto the wck error hierarchy (Busy ->
// BusyError, QuotaExceeded -> QuotaExceededError, ...), so backpressure
// and quota enforcement are first-class, machine-readable outcomes.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ndarray/shape.hpp"
#include "net/frame.hpp"
#include "telemetry/trace.hpp"
#include "util/bytes.hpp"

namespace wck::net {

/// Distributed-trace identity carried by every request. On the wire it
/// is an optional 24-byte suffix: a fully-zero context encodes as
/// *absent* (byte-identical to the pre-trace format), and an absent
/// suffix decodes as the zero context — so old peers and telemetry-off
/// processes interoperate in both directions.
using telemetry::TraceContext;

/// Frame type byte. Requests are < 0x40, responses >= 0x40. Stable wire
/// values: append, never renumber.
enum class MessageType : std::uint8_t {
  kPing = 0x01,
  kPut = 0x02,
  kGet = 0x03,
  kStat = 0x04,
  kShutdown = 0x05,

  kPong = 0x41,
  kPutOk = 0x42,
  kGetOk = 0x43,
  kStatOk = 0x44,
  kShutdownOk = 0x45,
  kError = 0x46,
};

/// Typed failure codes carried by ErrorResponse. Stable wire values.
enum class ErrorCode : std::uint8_t {
  kBadRequest = 1,     ///< malformed/invalid request (client bug)
  kNotFound = 2,       ///< unknown tenant / nothing restorable requested
  kQuotaExceeded = 3,  ///< tenant byte quota would be exceeded; store untouched
  kBusy = 4,           ///< admission control rejected the request; retriable
  kCorrupt = 5,        ///< nothing restorable (every fallback exhausted)
  kIo = 6,             ///< server-side I/O failure after retries
  kInternal = 7,       ///< unexpected server error
  kTimeout = 8,        ///< connection deadline expired (slow sender/reader)
};

[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;

// ------------------------------------------------------------- requests

struct PingRequest {
  TraceContext trace = {};
};

struct PutRequest {
  std::string tenant;
  std::uint64_t step = 0;
  /// Client-generated idempotency token, echoed back in PutOkResponse.
  /// A retry after a lost response resends the same id; the server
  /// remembers the id that committed each (tenant, step) and answers a
  /// duplicate with the original outcome instead of re-committing.
  /// 0 = no token (never deduplicated) — the pre-retry wire behaviour.
  /// Unlike the trace context, the id survives telemetry-off: dedup is
  /// a correctness feature, tracing an observability one.
  std::uint64_t request_id = 0;
  Shape shape = Shape{1};
  std::vector<double> values;  ///< shape.size() doubles
  TraceContext trace = {};
};

struct GetRequest {
  std::string tenant;
  TraceContext trace = {};
};

struct StatRequest {
  std::string tenant;  ///< empty = server-wide (all tenants)
  TraceContext trace = {};
};

struct ShutdownRequest {
  TraceContext trace = {};
};

// ------------------------------------------------------------ responses

struct PongResponse {};

struct PutOkResponse {
  std::uint64_t step = 0;
  std::uint64_t stored_bytes = 0;   ///< encoded size of this generation
  std::uint64_t total_bytes = 0;    ///< tenant bytes after commit+rotation
  std::uint32_t generations = 0;    ///< tenant generations after rotation
  std::uint64_t request_id = 0;     ///< echo of PutRequest.request_id
  /// True when this reply reports an *earlier* commit of the same
  /// request_id (the client's retry of a put whose response was lost)
  /// rather than a fresh commit.
  bool deduplicated = false;
};

struct GetOkResponse {
  std::uint64_t step = 0;
  std::uint8_t source = 0;  ///< RestoreSource as a stable byte
  Shape shape = Shape{1};
  std::vector<double> values;
};

struct TenantStat {
  /// scrub_age_ms value meaning "this tenant has never been scrubbed"
  /// (tenants created by a put after startup, or pre-health servers).
  static constexpr std::uint64_t kNeverScrubbed = ~std::uint64_t{0};

  std::string name;
  std::uint64_t generations = 0;
  std::uint64_t stored_bytes = 0;
  std::uint64_t quota_bytes = 0;  ///< 0 = unlimited
  std::uint64_t newest_step = 0;  ///< 0 when no generation exists
  // Health fields. On the wire they form a trailing per-tenant block
  // after all base entries, so a stat-ok from a pre-health server
  // decodes with the defaults below.
  std::uint64_t quarantined = 0;           ///< generations quarantined by scrub
  std::uint64_t scrub_age_ms = kNeverScrubbed;  ///< ms since last scrub
  std::string last_error;                  ///< ErrorCode-style kind; "" = none
};

struct StatOkResponse {
  std::uint64_t tenants = 0;  ///< tenants known to the server
  std::vector<TenantStat> stats;
};

struct ShutdownOkResponse {};

struct ErrorResponse {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// ------------------------------------------------- encoding / decoding

[[nodiscard]] Bytes encode(const PingRequest& m);
[[nodiscard]] Bytes encode(const PutRequest& m);
[[nodiscard]] Bytes encode(const GetRequest& m);
[[nodiscard]] Bytes encode(const StatRequest& m);
[[nodiscard]] Bytes encode(const ShutdownRequest& m);
[[nodiscard]] Bytes encode(const PongResponse& m);
[[nodiscard]] Bytes encode(const PutOkResponse& m);
[[nodiscard]] Bytes encode(const GetOkResponse& m);
[[nodiscard]] Bytes encode(const StatOkResponse& m);
[[nodiscard]] Bytes encode(const ShutdownOkResponse& m);
[[nodiscard]] Bytes encode(const ErrorResponse& m);

/// Every protocol message, decoded. Index order is not wire-stable —
/// always dispatch via std::holds_alternative / std::get.
using AnyMessage =
    std::variant<PingRequest, PutRequest, GetRequest, StatRequest, ShutdownRequest,
                 PongResponse, PutOkResponse, GetOkResponse, StatOkResponse,
                 ShutdownOkResponse, ErrorResponse>;

/// Decodes a frame's payload according to its type byte. Throws
/// FormatError on an unknown type or malformed payload (truncation,
/// shape/value-count mismatch, trailing bytes).
[[nodiscard]] AnyMessage decode_message(const Frame& frame);

}  // namespace wck::net
