// Wire framing for the checkpoint store service (src/server).
//
// Every message on a store connection travels inside one frame:
//
//   offset  size  field
//   0       4     magic "WCKN" (0x4E4B4357 little-endian)
//   4       1     version (kFrameVersion)
//   5       1     message type (net::MessageType, opaque to this layer)
//   6       2     reserved, must be zero
//   8       4     payload length (little-endian; <= kMaxFramePayload)
//   12      4     CRC-32 of the payload bytes
//   16      n     payload
//
// The CRC makes a torn or bit-flipped frame a *typed* CorruptDataError
// instead of a misparsed request — the same contract every container in
// this codebase honors (WCKP blocks, checkpoint fields, gzip members).
//
// FrameDecoder is incremental: feed() whatever recv() returned, poll
// next() for completed frames. It never allocates ahead of the bytes
// actually received, so a hostile length field cannot allocation-bomb
// the server; lengths above kMaxFramePayload are rejected as soon as
// the header is complete. decode_frame() is the one-shot variant for a
// fully buffered frame (and the fuzz target: tools/wckpt_fuzz mutates
// encoded frames and expects typed errors only).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace wck::net {

inline constexpr std::uint32_t kFrameMagic = 0x4E4B4357;  // "WCKN"
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Upper bound on one frame's payload (a Put carries a whole field).
inline constexpr std::size_t kMaxFramePayload = std::size_t{256} << 20;

/// One decoded frame: the message type byte plus its payload.
struct Frame {
  std::uint8_t type = 0;
  Bytes payload;
};

/// Wraps `payload` in a frame (header + CRC). Throws
/// InvalidArgumentError when the payload exceeds kMaxFramePayload.
[[nodiscard]] Bytes encode_frame(std::uint8_t type, std::span<const std::byte> payload);

/// Decodes exactly one frame occupying the whole of `data`. Throws
/// FormatError (bad magic/version/reserved/length, trailing bytes) or
/// CorruptDataError (CRC mismatch).
[[nodiscard]] Frame decode_frame(std::span<const std::byte> data);

/// Incremental frame decoder for a byte stream.
class FrameDecoder {
 public:
  /// Appends received bytes. Throws FormatError as soon as a malformed
  /// header is visible; the decoder is then poisoned (the stream has
  /// lost sync and must be closed).
  void feed(std::span<const std::byte> data);

  /// Next completed frame, or nullopt when more bytes are needed.
  /// Throws CorruptDataError on a CRC mismatch (also poisoning).
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - consumed_; }

 private:
  void check_header();

  Bytes buf_;
  std::size_t consumed_ = 0;  ///< prefix of buf_ already returned
  bool header_checked_ = false;
  bool poisoned_ = false;
};

}  // namespace wck::net
