// RAII Unix-domain stream sockets for the checkpoint store service.
//
// This file (with socket.cpp) is the ONLY place in the tree that may
// touch the raw socket syscalls — the wck_lint `raw-socket` rule
// rejects socket()/bind()/connect()/accept() anywhere outside src/net/,
// exactly like raw file I/O is confined to src/io/. Everything above
// this layer works in frames and messages.
//
// Local (AF_UNIX) sockets only: the store serves co-located clients —
// the paper's application-level checkpoint regime — and a filesystem
// path doubles as the service's access control.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "util/bytes.hpp"

namespace wck::net {

/// A connected Unix-domain stream. Movable, closes on destruction.
class UnixStream {
 public:
  UnixStream() = default;
  explicit UnixStream(int fd) noexcept : fd_(fd) {}
  ~UnixStream();

  UnixStream(UnixStream&& other) noexcept;
  UnixStream& operator=(UnixStream&& other) noexcept;
  UnixStream(const UnixStream&) = delete;
  UnixStream& operator=(const UnixStream&) = delete;

  /// Connects to the listener at `path`. A non-negative `timeout_ms`
  /// bounds the wait (a full backlog on a wedged server otherwise
  /// blocks forever) and expiry throws TimeoutError; -1 waits without
  /// limit. Throws IoError on other failures.
  [[nodiscard]] static UnixStream connect_to(const std::string& path, int timeout_ms = -1);

  /// Sends the whole buffer (handles short writes / EINTR). A
  /// non-negative `timeout_ms` bounds the wait for *each* round of
  /// socket-buffer space — a peer that stops draining trips
  /// TimeoutError instead of wedging the sender. Throws IoError on a
  /// closed or failing peer.
  void send_all(std::span<const std::byte> data, int timeout_ms = -1);

  /// Receives up to `max_bytes` into `out` (appending). Returns the
  /// number of bytes received; 0 means orderly EOF. A non-negative
  /// `timeout_ms` bounds the wait for the first byte; expiry throws
  /// TimeoutError (nothing consumed). Throws IoError otherwise.
  std::size_t recv_some(Bytes& out, std::size_t max_bytes, int timeout_ms = -1);

  /// Disallows further sends and receives; any thread blocked in
  /// recv_some() on this stream wakes with EOF. Safe to call while
  /// another thread uses the stream (the fd stays open until
  /// destruction, so there is no fd-reuse race).
  void shutdown_both() noexcept;

  /// Disallows further receives only: a thread blocked in recv_some()
  /// wakes with EOF, but queued outbound data still flushes to the
  /// peer. This is the graceful-drain primitive — the server stops
  /// listening for new requests while in-flight replies depart intact.
  void shutdown_read() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A bound+listening Unix-domain socket. Unlinks its path on close.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();

  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Binds `path` (removing a stale socket file first) and listens.
  /// Throws IoError; also when `path` exceeds sockaddr_un limits.
  [[nodiscard]] static UnixListener bind_and_listen(const std::string& path,
                                                   int backlog = 128);

  /// Blocks for the next connection. Throws IoError when the listener
  /// has been closed (the accept loop's shutdown signal).
  [[nodiscard]] UnixStream accept_next();

  /// Wakes a blocked accept_next() and invalidates the listener: the
  /// socket file is unlinked first so no new client can connect, then
  /// the fd is shut down (accept fails with a typed IoError).
  void close() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace wck::net
