#include "net/protocol.hpp"

#include "util/error.hpp"

namespace wck::net {
namespace {

void put_shape(ByteWriter& w, const Shape& shape) {
  w.u8(static_cast<std::uint8_t>(shape.rank()));
  for (std::size_t a = 0; a < shape.rank(); ++a) w.varint(shape[a]);
}

[[nodiscard]] Shape get_shape(ByteReader& r) {
  const std::uint8_t rank = r.u8();
  if (rank == 0 || rank > kMaxRank) {
    throw FormatError("net message: shape rank " + std::to_string(rank) +
                      " outside 1.." + std::to_string(kMaxRank));
  }
  Shape shape = Shape::of_rank(rank);
  for (std::size_t a = 0; a < rank; ++a) {
    const std::uint64_t ext = r.varint();
    if (ext == 0) throw FormatError("net message: zero shape extent");
    shape[a] = static_cast<std::size_t>(ext);
  }
  return shape;
}

void put_values(ByteWriter& w, const Shape& shape, const std::vector<double>& values) {
  if (values.size() != shape.size()) {
    throw InvalidArgumentError("net message: " + std::to_string(values.size()) +
                               " values for shape " + shape.to_string());
  }
  w.varint(values.size());
  w.f64_array(values);
}

/// Reads the value block for `shape`, cross-checking the declared count
/// against both the shape and the bytes actually present *before*
/// allocating — a mutated count cannot allocation-bomb the decoder.
[[nodiscard]] std::vector<double> get_values(ByteReader& r, const Shape& shape) {
  const std::uint64_t count = r.varint();
  if (count != shape.size()) {
    throw FormatError("net message: value count " + std::to_string(count) +
                      " does not match shape " + shape.to_string());
  }
  if (count > r.remaining() / sizeof(double)) {
    throw FormatError("net message: value block truncated");
  }
  std::vector<double> values(static_cast<std::size_t>(count));
  r.f64_array(values);
  return values;
}

void expect_exhausted(const ByteReader& r, const char* what) {
  if (!r.exhausted()) {
    throw FormatError(std::string("net message: trailing bytes after ") + what);
  }
}

/// Appends the request's trace context as a 24-byte suffix — or nothing
/// when the context is all-zero, keeping the encoding byte-identical to
/// the pre-trace wire format (what an old or telemetry-off peer sends).
void put_trace(ByteWriter& w, const TraceContext& trace) {
  if (trace.zero()) return;
  w.u64(trace.trace_id);
  w.u64(trace.span_id);
  w.u64(trace.parent_span_id);
}

constexpr std::size_t kTraceSuffixBytes = 3 * sizeof(std::uint64_t);

/// Reads the optional trailing trace context: absent (reader exhausted)
/// decodes as the zero context; anything between 1 and 23 bytes is a
/// truncated suffix and rejected, as are bytes *after* a full suffix.
[[nodiscard]] TraceContext get_trace(ByteReader& r, const char* what) {
  if (r.exhausted()) return TraceContext{};
  if (r.remaining() < kTraceSuffixBytes) {
    throw FormatError(std::string("net message: truncated trace context after ") + what);
  }
  TraceContext trace;
  trace.trace_id = r.u64();
  trace.span_id = r.u64();
  trace.parent_span_id = r.u64();
  expect_exhausted(r, what);
  return trace;
}

[[nodiscard]] Bytes empty_body() { return Bytes{}; }

/// A request whose only payload is its optional trace suffix.
[[nodiscard]] Bytes trace_only_body(const TraceContext& trace) {
  if (trace.zero()) return empty_body();
  ByteWriter w;
  put_trace(w, trace);
  return w.take();
}

}  // namespace

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kQuotaExceeded: return "quota-exceeded";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kTimeout: return "timeout";
  }
  return "unknown";
}

Bytes encode(const PingRequest& m) { return trace_only_body(m.trace); }
Bytes encode(const ShutdownRequest& m) { return trace_only_body(m.trace); }
Bytes encode(const PongResponse&) { return empty_body(); }
Bytes encode(const ShutdownOkResponse&) { return empty_body(); }

Bytes encode(const PutRequest& m) {
  ByteWriter w;
  w.str(m.tenant);
  w.u64(m.step);
  w.u64(m.request_id);
  put_shape(w, m.shape);
  put_values(w, m.shape, m.values);
  put_trace(w, m.trace);
  return w.take();
}

Bytes encode(const GetRequest& m) {
  ByteWriter w;
  w.str(m.tenant);
  put_trace(w, m.trace);
  return w.take();
}

Bytes encode(const StatRequest& m) {
  ByteWriter w;
  w.str(m.tenant);
  put_trace(w, m.trace);
  return w.take();
}

Bytes encode(const PutOkResponse& m) {
  ByteWriter w;
  w.u64(m.step);
  w.u64(m.stored_bytes);
  w.u64(m.total_bytes);
  w.u32(m.generations);
  w.u64(m.request_id);
  w.u8(m.deduplicated ? 1 : 0);
  return w.take();
}

Bytes encode(const GetOkResponse& m) {
  ByteWriter w;
  w.u64(m.step);
  w.u8(m.source);
  put_shape(w, m.shape);
  put_values(w, m.shape, m.values);
  return w.take();
}

Bytes encode(const StatOkResponse& m) {
  ByteWriter w;
  w.u64(m.tenants);
  w.varint(m.stats.size());
  for (const TenantStat& s : m.stats) {
    w.str(s.name);
    w.u64(s.generations);
    w.u64(s.stored_bytes);
    w.u64(s.quota_bytes);
    w.u64(s.newest_step);
  }
  // Health block: one record per entry, *after* all base entries, so a
  // pre-health client's decoder fails loudly (trailing bytes) instead of
  // misparsing, and a pre-health server's reply (no block) decodes here
  // with default health.
  for (const TenantStat& s : m.stats) {
    w.u64(s.quarantined);
    w.u64(s.scrub_age_ms);
    w.str(s.last_error);
  }
  return w.take();
}

Bytes encode(const ErrorResponse& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(m.code));
  w.str(m.message);
  return w.take();
}

AnyMessage decode_message(const Frame& frame) {
  ByteReader r{std::span<const std::byte>(frame.payload)};
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kPing: {
      PingRequest m;
      m.trace = get_trace(r, "ping");
      return m;
    }
    case MessageType::kShutdown: {
      ShutdownRequest m;
      m.trace = get_trace(r, "shutdown");
      return m;
    }
    case MessageType::kPong: {
      expect_exhausted(r, "pong");
      return PongResponse{};
    }
    case MessageType::kShutdownOk: {
      expect_exhausted(r, "shutdown-ok");
      return ShutdownOkResponse{};
    }
    case MessageType::kPut: {
      PutRequest m;
      m.tenant = r.str();
      m.step = r.u64();
      m.request_id = r.u64();
      m.shape = get_shape(r);
      m.values = get_values(r, m.shape);
      m.trace = get_trace(r, "put");
      return m;
    }
    case MessageType::kGet: {
      GetRequest m;
      m.tenant = r.str();
      m.trace = get_trace(r, "get");
      return m;
    }
    case MessageType::kStat: {
      StatRequest m;
      m.tenant = r.str();
      m.trace = get_trace(r, "stat");
      return m;
    }
    case MessageType::kPutOk: {
      PutOkResponse m;
      m.step = r.u64();
      m.stored_bytes = r.u64();
      m.total_bytes = r.u64();
      m.generations = r.u32();
      m.request_id = r.u64();
      const std::uint8_t dedup = r.u8();
      if (dedup > 1) {
        throw FormatError("net message: put-ok dedup flag " + std::to_string(dedup));
      }
      m.deduplicated = dedup == 1;
      expect_exhausted(r, "put-ok");
      return m;
    }
    case MessageType::kGetOk: {
      GetOkResponse m;
      m.step = r.u64();
      m.source = r.u8();
      m.shape = get_shape(r);
      m.values = get_values(r, m.shape);
      expect_exhausted(r, "get-ok");
      return m;
    }
    case MessageType::kStatOk: {
      StatOkResponse m;
      m.tenants = r.u64();
      const std::uint64_t n = r.varint();
      // Each entry needs at least its four u64 fields plus a length
      // byte; bound the reserve by what the payload could actually hold.
      if (n > r.remaining() / 33) {
        throw FormatError("net message: stat entry count exceeds payload");
      }
      m.stats.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        TenantStat s;
        s.name = r.str();
        s.generations = r.u64();
        s.stored_bytes = r.u64();
        s.quota_bytes = r.u64();
        s.newest_step = r.u64();
        m.stats.push_back(std::move(s));
      }
      // Optional trailing health block (absent in pre-health replies:
      // the entries above decode with TenantStat's defaults).
      if (!r.exhausted()) {
        for (TenantStat& s : m.stats) {
          s.quarantined = r.u64();
          s.scrub_age_ms = r.u64();
          s.last_error = r.str();
        }
      }
      expect_exhausted(r, "stat-ok");
      return m;
    }
    case MessageType::kError: {
      ErrorResponse m;
      const std::uint8_t code = r.u8();
      if (code < 1 || code > static_cast<std::uint8_t>(ErrorCode::kTimeout)) {
        throw FormatError("net message: unknown error code " + std::to_string(code));
      }
      m.code = static_cast<ErrorCode>(code);
      m.message = r.str();
      expect_exhausted(r, "error");
      return m;
    }
  }
  throw FormatError("net message: unknown frame type " + std::to_string(frame.type));
}

}  // namespace wck::net
