#include "net/socket.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace wck::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Polls `fd` for `events` within `timeout_ms` (-1 = forever). Returns
/// the revents on readiness; throws TimeoutError on expiry. Retries
/// EINTR against the original deadline so signal storms cannot extend
/// the wait.
short poll_or_timeout(int fd, short events, int timeout_ms, const char* what) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return pfd.revents;
    if (n == 0) {
      throw TimeoutError(std::string(what) + " timed out after " +
                         std::to_string(timeout_ms) + "ms");
    }
    if (errno != EINTR) throw_errno(what);
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      timeout_ms = static_cast<int>(std::max<std::int64_t>(left.count(), 0));
    }
  }
}

[[nodiscard]] sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw IoError("unix socket path too long (" + std::to_string(path.size()) +
                  " bytes, limit " + std::to_string(sizeof(addr.sun_path) - 1) + "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

// ------------------------------------------------------------ UnixStream

UnixStream::~UnixStream() { close(); }

UnixStream::UnixStream(UnixStream&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

UnixStream& UnixStream::operator=(UnixStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

UnixStream UnixStream::connect_to(const std::string& path, int timeout_ms) {
  const sockaddr_un addr = make_addr(path);
  // Non-blocking connect + poll when a deadline is set: an AF_UNIX
  // connect blocks only while the server's backlog is full, which is
  // exactly the wedged-server case the deadline exists for.
  const int flags = timeout_ms >= 0 ? SOCK_NONBLOCK : 0;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | flags, 0);
  if (fd < 0) throw_errno("socket");
  UnixStream stream(fd);  // owns the fd through every exit below
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) break;
    if (errno == EINTR) continue;
    if (timeout_ms >= 0 && (errno == EAGAIN || errno == EINPROGRESS)) {
      poll_or_timeout(fd, POLLOUT, timeout_ms, "connect");
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) throw_errno("getsockopt");
      if (err != 0) {
        errno = err;
        throw_errno("connect " + path);
      }
      break;
    }
    throw_errno("connect " + path);
  }
  if (flags != 0) {
    const int fl = ::fcntl(fd, F_GETFL);
    if (fl < 0 || ::fcntl(fd, F_SETFL, fl & ~O_NONBLOCK) != 0) throw_errno("fcntl");
  }
  return stream;
}

void UnixStream::send_all(std::span<const std::byte> data, int timeout_ms) {
  if (fd_ < 0) throw IoError("send on closed stream");
  const auto* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    // MSG_NOSIGNAL: a vanished peer is a typed IoError, not SIGPIPE.
    // MSG_DONTWAIT under a deadline: wait for buffer space in poll
    // (which can time out), never in the kernel's blocking send.
    const int flags = MSG_NOSIGNAL | (timeout_ms >= 0 ? MSG_DONTWAIT : 0);
    const ssize_t n = ::send(fd_, p, left, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (timeout_ms >= 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        poll_or_timeout(fd_, POLLOUT, timeout_ms, "send");
        continue;
      }
      throw_errno("send");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::size_t UnixStream::recv_some(Bytes& out, std::size_t max_bytes, int timeout_ms) {
  if (fd_ < 0) throw IoError("recv on closed stream");
  if (timeout_ms >= 0) {
    const short revents = poll_or_timeout(fd_, POLLIN, timeout_ms, "recv");
    // POLLHUP/POLLERR fall through to recv(), which reports EOF or the
    // precise errno — poll only decides *whether* to wait longer.
    (void)revents;
  }
  std::byte chunk[64 * 1024];
  const std::size_t want = std::min(max_bytes, sizeof(chunk));
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A peer that died mid-conversation reads as EOF, not a distinct
      // failure mode: the caller's framing already decides whether the
      // stream ended cleanly (frame boundary) or not.
      if (errno == ECONNRESET) return 0;
      throw_errno("recv");
    }
    out.insert(out.end(), chunk, chunk + n);
    return static_cast<std::size_t>(n);
  }
}

void UnixStream::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void UnixStream::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void UnixStream::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------- UnixListener

namespace {

/// The listener couples the listening fd with a self-pipe so close()
/// can wake a blocked accept_next() deterministically: accept_next
/// polls both fds and treats a readable pipe as "listener closed".
/// (Closing a listening fd out from under a blocked accept() is a
/// fd-reuse race, and shutdown() semantics on listening AF_UNIX sockets
/// are not portable — the pipe is.)
struct ListenerPipes {
  int wake_rd = -1;
  int wake_wr = -1;
};

// One pipe pair per listener, keyed by the listening fd. Listeners are
// few (one per server); a tiny linear registry keeps the header free of
// platform types.
ListenerPipes& pipes_for(int fd) {
  static thread_local ListenerPipes dummy;
  static ListenerPipes table[64];
  if (fd >= 0 && fd < 64 * 1024) return table[fd % 64];
  return dummy;
}

}  // namespace

UnixListener::~UnixListener() {
  close();
  if (fd_ >= 0) {
    ListenerPipes& p = pipes_for(fd_);
    if (p.wake_rd >= 0) ::close(p.wake_rd);
    if (p.wake_wr >= 0) ::close(p.wake_wr);
    p.wake_rd = p.wake_wr = -1;
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    this->~UnixListener();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

UnixListener UnixListener::bind_and_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  UnixListener listener;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  ::unlink(path.c_str());  // a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("bind " + path);
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = err;
    throw_errno("listen " + path);
  }
  int wake[2] = {-1, -1};
  if (::pipe2(wake, O_CLOEXEC) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = err;
    throw_errno("pipe2");
  }
  ListenerPipes& p = pipes_for(fd);
  p.wake_rd = wake[0];
  p.wake_wr = wake[1];
  listener.fd_ = fd;
  listener.path_ = path;
  return listener;
}

UnixStream UnixListener::accept_next() {
  if (fd_ < 0) throw IoError("accept on closed listener");
  const ListenerPipes& p = pipes_for(fd_);
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {p.wake_rd, POLLIN, 0};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if ((fds[1].revents & (POLLIN | POLLHUP)) != 0) {
      throw IoError("listener closed");
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept");
    }
    return UnixStream(client);
  }
}

void UnixListener::close() noexcept {
  if (fd_ < 0 || path_.empty()) return;
  // Unlink first: no new client can reach the socket once the path is
  // gone. Then wake any blocked accept via the self-pipe. The fds stay
  // open until destruction, so a concurrently blocked accept_next never
  // touches a recycled descriptor.
  ::unlink(path_.c_str());
  path_.clear();
  const ListenerPipes& p = pipes_for(fd_);
  if (p.wake_wr >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(p.wake_wr, &byte, 1);
  }
}

}  // namespace wck::net
